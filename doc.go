// Package tbwf is a Go reproduction of "Timeliness-Based Wait-Freedom: A
// Gracefully Degrading Progress Condition" (Aguilera and Toueg, PODC 2008).
//
// The library lives under internal/ (see DESIGN.md for the inventory):
//
//   - internal/core — the TBWF universal transformation (Figures 7–8) and
//     run-level progress verdicts;
//   - internal/omega, internal/omegaab — the dynamic leader elector Ω∆
//     from atomic registers (Figure 3) and from abortable registers only
//     (Figures 4–6);
//   - internal/monitor — dynamic activity monitors A(p,q) (Figure 2);
//   - internal/qa — wait-free query-abortable objects from abortable
//     registers; internal/objtype — ready-made sequential types;
//   - internal/sim, internal/rt — the deterministic step-level simulation
//     kernel and the live goroutine runtime the algorithms run on;
//   - internal/register — atomic, safe and abortable registers with
//     pluggable abort adversaries;
//   - internal/baseline, internal/consensus — the boosting baselines the
//     paper contrasts with, and consensus from abortable registers + Ω;
//   - internal/exp — the E1–E10 experiment harness behind cmd/tbwf-bench.
//
// The benchmarks in bench_test.go (this directory) cover one experiment
// each; run them with:
//
//	go test -bench=. -benchmem
package tbwf
