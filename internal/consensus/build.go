package consensus

import (
	"fmt"

	"tbwf/internal/omega"
	"tbwf/internal/omegaab"
	"tbwf/internal/prim"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// SimRegisters returns consensus register factories backed by the
// simulation kernel's abortable registers.
func SimRegisters[V comparable](k *sim.Kernel, opts ...register.AbOption) Registers[V] {
	return Registers[V]{
		Ballot: func(name string, writer int) prim.AbortableRegister[int64] {
			return register.NewAbortable(k, name, int64(0), append(opts, register.WithRoles(writer, -1))...)
		},
		Accept: func(name string, writer int) prim.AbortableRegister[accepted[V]] {
			return register.NewAbortable(k, name, accepted[V]{}, append(opts, register.WithRoles(writer, -1))...)
		},
		Msg: func(name string, writer, reader int) prim.AbortableRegister[decision[V]] {
			return register.NewAbortable(k, name, decision[V]{}, append(opts, register.WithRoles(writer, reader))...)
		},
	}
}

// BuildSim wires a full consensus deployment on the kernel — Ω∆ from
// abortable registers (or atomic registers when atomicOmega is set), one
// consensus instance, and one participant task per process proposing
// proposals[p] — and spawns everything.
func BuildSim[V comparable](k *sim.Kernel, proposals []V, atomicOmega bool, opts ...register.AbOption) ([]*Participant[V], error) {
	n := k.N()
	if len(proposals) != n {
		return nil, fmt.Errorf("consensus: %d proposals for %d processes", len(proposals), n)
	}
	var endpoints []*omega.Instance
	if atomicOmega {
		sys, err := omega.BuildRegisters(k)
		if err != nil {
			return nil, fmt.Errorf("consensus: %w", err)
		}
		endpoints = sys.Instances
	} else {
		sys, err := omegaab.Build(k, opts...)
		if err != nil {
			return nil, fmt.Errorf("consensus: %w", err)
		}
		endpoints = sys.Instances
	}
	inst, err := New(n, SimRegisters[V](k, opts...))
	if err != nil {
		return nil, err
	}
	parts := make([]*Participant[V], n)
	for p := 0; p < n; p++ {
		part, task, err := Task(p, inst, endpoints[p], proposals[p])
		if err != nil {
			return nil, err
		}
		parts[p] = part
		k.Spawn(p, fmt.Sprintf("consensus[%d]", p), task)
	}
	return parts, nil
}

// DecidedAll reports whether every process in procs has decided, and if
// so, whether they agree; it returns the agreed value.
func DecidedAll[V comparable](parts []*Participant[V], procs []int) (val V, all bool, agree bool) {
	var zero V
	first := true
	agree = true
	for _, p := range procs {
		if !parts[p].Decided.Get() {
			return zero, false, false
		}
		v := parts[p].Value.Get()
		if first {
			val, first = v, false
		} else if v != val {
			agree = false
		}
	}
	return val, true, agree
}
