package consensus

import (
	"fmt"

	"tbwf/internal/omega"
	"tbwf/internal/omegaab"
	"tbwf/internal/prim"
	"tbwf/internal/register"
)

// SubstrateRegisters returns consensus register factories backed by any
// substrate's abortable registers (the simulation kernel's concrete typed
// ones on a sim substrate).
func SubstrateRegisters[V comparable](sub prim.Substrate, opts ...register.AbOption) Registers[V] {
	return Registers[V]{
		Ballot: func(name string, writer int) prim.AbortableRegister[int64] {
			return register.SubstrateAbortable(sub, name, int64(0), append(opts, register.WithRoles(writer, -1))...)
		},
		Accept: func(name string, writer int) prim.AbortableRegister[accepted[V]] {
			return register.SubstrateAbortable(sub, name, accepted[V]{}, append(opts, register.WithRoles(writer, -1))...)
		},
		Msg: func(name string, writer, reader int) prim.AbortableRegister[decision[V]] {
			return register.SubstrateAbortable(sub, name, decision[V]{}, append(opts, register.WithRoles(writer, reader))...)
		},
	}
}

// Build wires a full consensus deployment on any substrate — Ω∆ from
// abortable registers (or atomic registers when atomicOmega is set), one
// consensus instance, and one participant task per process proposing
// proposals[p] — and spawns everything.
func Build[V comparable](sub prim.Substrate, proposals []V, atomicOmega bool, opts ...register.AbOption) ([]*Participant[V], error) {
	n := sub.N()
	if len(proposals) != n {
		return nil, fmt.Errorf("consensus: %d proposals for %d processes", len(proposals), n)
	}
	var endpoints []*omega.Instance
	if atomicOmega {
		dep, err := omega.BuildWith(n, sub, func(name string, init int64) prim.Register[int64] {
			return register.SubstrateAtomic(sub, name, init)
		}, omega.BuildOptions{})
		if err != nil {
			return nil, fmt.Errorf("consensus: %w", err)
		}
		endpoints = dep.Instances
	} else {
		sys, err := omegaab.Build(sub, opts...)
		if err != nil {
			return nil, fmt.Errorf("consensus: %w", err)
		}
		endpoints = sys.Instances
	}
	inst, err := New(n, SubstrateRegisters[V](sub, opts...))
	if err != nil {
		return nil, err
	}
	parts := make([]*Participant[V], n)
	for p := 0; p < n; p++ {
		part, task, err := Task(p, inst, endpoints[p], proposals[p])
		if err != nil {
			return nil, err
		}
		parts[p] = part
		sub.Spawn(p, fmt.Sprintf("consensus[%d]", p), task)
	}
	return parts, nil
}

// DecidedAll reports whether every process in procs has decided, and if
// so, whether they agree; it returns the agreed value.
func DecidedAll[V comparable](parts []*Participant[V], procs []int) (val V, all bool, agree bool) {
	var zero V
	first := true
	agree = true
	for _, p := range procs {
		if !parts[p].Decided.Get() {
			return zero, false, false
		}
		v := parts[p].Value.Get()
		if first {
			val, first = v, false
		} else if v != val {
			agree = false
		}
	}
	return val, true, agree
}
