package consensus

import (
	"fmt"
	"testing"

	"tbwf/internal/register"
	"tbwf/internal/sim"
)

func props(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(100 + i)
	}
	return out
}

func checkDecision(t *testing.T, parts []*Participant[int64], procs []int, proposals []int64) {
	t.Helper()
	val, all, agree := DecidedAll(parts, procs)
	if !all {
		t.Fatal("not every correct process decided")
	}
	if !agree {
		t.Fatal("processes decided different values (agreement violated)")
	}
	valid := false
	for _, p := range proposals {
		if p == val {
			valid = true
			break
		}
	}
	if !valid {
		t.Fatalf("decided %d, which no process proposed (validity violated)", val)
	}
}

// The headline: consensus from abortable registers only, everyone timely.
func TestConsensusFromAbortableRegisters(t *testing.T) {
	const n = 4
	k := sim.New(n)
	proposals := props(n)
	parts, err := Build(register.Substrate(k), proposals, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_500_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	checkDecision(t, parts, []int{0, 1, 2, 3}, proposals)
}

// One timely process suffices (the paper's condition): the others are
// untimely with growing gaps, yet everyone correct decides.
func TestConsensusWithOneTimelyProcess(t *testing.T) {
	const n = 3
	k := sim.New(n, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{
		0: sim.GrowingGaps(300, 500, 1.5),
		1: sim.GrowingGaps(300, 800, 1.5),
	})))
	proposals := props(n)
	parts, err := Build(register.Substrate(k), proposals, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(4_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	// The timely process must decide; the untimely ones are correct, so
	// they must decide too, eventually — the budget is sized for their
	// observed gaps.
	checkDecision(t, parts, []int{0, 1, 2}, proposals)
}

// Crashing the first elected leader must not block the decision.
func TestConsensusSurvivesLeaderCrash(t *testing.T) {
	const n = 3
	k := sim.New(n)
	proposals := props(n)
	parts, err := Build(register.Substrate(k), proposals, false)
	if err != nil {
		t.Fatal(err)
	}
	// Crash process 0 early: with all counters equal, the (counter, id)
	// rule makes it the likely first leader.
	k.CrashAt(0, 50_000)
	if _, err := k.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	checkDecision(t, parts, []int{1, 2}, proposals)
}

// Agreement and validity must hold across random schedules and abort
// policies — liveness may vary, safety may not.
func TestConsensusSafetySweep(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			const n = 4
			k := sim.New(n, sim.WithSchedule(sim.Random(seed, nil)))
			proposals := props(n)
			parts, err := Build(register.Substrate(k), proposals, false,
				register.WithAbortPolicy(register.ProbAbort(0.7, seed*31)),
				register.WithEffectPolicy(register.ProbEffect(0.5, seed*17)))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := k.Run(2_000_000); err != nil {
				t.Fatal(err)
			}
			k.Shutdown()
			// Safety: whoever decided must agree on a proposed value.
			var decided []int64
			for p := 0; p < n; p++ {
				if parts[p].Decided.Get() {
					decided = append(decided, parts[p].Value.Get())
				}
			}
			for _, v := range decided {
				if v != decided[0] {
					t.Fatalf("disagreement: %v", decided)
				}
				valid := false
				for _, pr := range proposals {
					valid = valid || pr == v
				}
				if !valid {
					t.Fatalf("decided unproposed value %d", v)
				}
			}
			if len(decided) == 0 {
				t.Log("nobody decided within budget under this adversary (allowed; safety-only check)")
			}
		})
	}
}

// Consensus also runs over the atomic-register Ω∆ (Figure 3).
func TestConsensusWithAtomicOmega(t *testing.T) {
	const n = 3
	k := sim.New(n)
	proposals := props(n)
	parts, err := Build(register.Substrate(k), proposals, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	checkDecision(t, parts, []int{0, 1, 2}, proposals)
}

func TestBuildValidation(t *testing.T) {
	k := sim.New(2)
	if _, err := Build(register.Substrate(k), []int64{1}, false); err == nil {
		t.Error("mismatched proposal count accepted")
	}
	if _, err := New[int64](0, Registers[int64]{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New[int64](2, Registers[int64]{}); err == nil {
		t.Error("nil factories accepted")
	}
}
