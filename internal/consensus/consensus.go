// Package consensus solves consensus from abortable registers and Ω,
// realizing the paper's closing remark of Section 1.2: since Ω∆ — and
// hence the failure detector Ω, which is sufficient to solve consensus
// (Chandra, Hadzilacos, Toueg) — can be implemented from abortable
// registers provided at least one process is timely, consensus itself
// needs nothing stronger than abortable registers plus one timely process.
//
// The algorithm is leader-driven ballot voting over single-writer abortable
// registers (the same structure that backs the qa log slots): the process
// that Ω currently names leader runs ballots — claim a ballot in X[me],
// check no higher ballot, adopt the highest accepted value from Y[...],
// vote in Y[me], re-check X — and on success broadcasts the decision.
//
// The broadcast deliberately follows the paper's single-writer
// single-reader discipline: a decided process ships the decision to each
// peer through a dedicated Figure 4 Messenger channel (write until one
// write succeeds; the reader backs off on aborts). A single shared
// multi-reader decision register would livelock: two symmetric pollers
// whose reads keep colliding grow their back-offs in lockstep and probe
// together forever. Figure 4's mechanism is sound precisely because each
// register has one reader.
//
// Ω is obtained from Ω∆ by making every participant a permanent candidate.
package consensus

import (
	"fmt"

	"tbwf/internal/omega"
	"tbwf/internal/omegaab"
	"tbwf/internal/prim"
)

// accepted is one process's vote: the highest ballot at which it accepted
// a value.
type accepted[V any] struct {
	Has    bool
	Ballot int64
	V      V
}

// decision is the message broadcast once a ballot succeeds.
type decision[V any] struct {
	Decided bool
	V       V
}

// Instance is one consensus instance's shared state: the ballot/vote
// registers plus the per-pair decision channels. V must be comparable
// because the Figure 4 Messenger compares consecutive reads.
type Instance[V comparable] struct {
	n int
	x []prim.AbortableRegister[int64]
	y []prim.AbortableRegister[accepted[V]]
	// dch[p][q] carries p's decision broadcast to q (SWSR).
	dch [][]prim.AbortableRegister[decision[V]]
}

// Registers abstracts the substrate: factories for the instance's
// abortable registers. X[p] and Y[p] are single-writer by p, multi-reader;
// Msg(p,q) is single-writer p, single-reader q.
type Registers[V comparable] struct {
	Ballot func(name string, writer int) prim.AbortableRegister[int64]
	Accept func(name string, writer int) prim.AbortableRegister[accepted[V]]
	Msg    func(name string, writer, reader int) prim.AbortableRegister[decision[V]]
}

// New creates a consensus instance for n processes.
func New[V comparable](n int, regs Registers[V]) (*Instance[V], error) {
	if n < 1 {
		return nil, fmt.Errorf("consensus: n = %d, need at least 1", n)
	}
	if regs.Ballot == nil || regs.Accept == nil || regs.Msg == nil {
		return nil, fmt.Errorf("consensus: incomplete register factories")
	}
	inst := &Instance[V]{
		n:   n,
		x:   make([]prim.AbortableRegister[int64], n),
		y:   make([]prim.AbortableRegister[accepted[V]], n),
		dch: make([][]prim.AbortableRegister[decision[V]], n),
	}
	for p := 0; p < n; p++ {
		inst.x[p] = regs.Ballot(fmt.Sprintf("consensus.X[%d]", p), p)
		inst.y[p] = regs.Accept(fmt.Sprintf("consensus.Y[%d]", p), p)
		inst.dch[p] = make([]prim.AbortableRegister[decision[V]], n)
		for q := 0; q < n; q++ {
			if p != q {
				inst.dch[p][q] = regs.Msg(fmt.Sprintf("consensus.D[%d,%d]", p, q), p, q)
			}
		}
	}
	return inst, nil
}

// tryBallot runs one ballot for value v. It returns the value this ballot
// decided, or ok=false if a register operation aborted or a higher ballot
// was observed.
func (c *Instance[V]) tryBallot(me int, ballot int64, v V) (V, bool) {
	var zero V
	if !c.x[me].Write(ballot) {
		return zero, false
	}
	for q := 0; q < c.n; q++ {
		if q == me {
			continue
		}
		b, ok := c.x[q].Read()
		if !ok || b > ballot {
			return zero, false
		}
	}
	best := accepted[V]{}
	for q := 0; q < c.n; q++ {
		a, ok := c.y[q].Read()
		if !ok {
			return zero, false
		}
		if a.Has && (!best.Has || a.Ballot > best.Ballot) {
			best = a
		}
	}
	if best.Has {
		v = best.V
	}
	if !c.y[me].Write(accepted[V]{Has: true, Ballot: ballot, V: v}) {
		return zero, false
	}
	for q := 0; q < c.n; q++ {
		if q == me {
			continue
		}
		b, ok := c.x[q].Read()
		if !ok || b > ballot {
			return zero, false
		}
	}
	return v, true
}

// Participant is one process's endpoint: it reports the decision through
// output variables so harness hooks can observe it without taking steps.
type Participant[V comparable] struct {
	// Decided flips to true when the process learns the decision.
	Decided *prim.Var[bool]
	// Value holds the decision once Decided is true.
	Value *prim.Var[V]
}

// Task returns the participant task for process me proposing v: it makes
// the process a permanent candidate of Ω∆ (turning it into Ω), runs
// ballots while it is the leader, receives decision broadcasts otherwise,
// and once decided keeps shipping the decision to every peer until each
// channel write has succeeded. The task never returns (a decided process
// keeps serving late joiners); read the outcome from the Participant.
func Task[V comparable](me int, inst *Instance[V], endpoint *omega.Instance, v V) (*Participant[V], func(prim.Proc), error) {
	out := make([]prim.AbortableRegister[decision[V]], inst.n)
	in := make([]prim.AbortableRegister[decision[V]], inst.n)
	for q := 0; q < inst.n; q++ {
		if q != me {
			out[q] = inst.dch[me][q]
			in[q] = inst.dch[q][me]
		}
	}
	msgr, err := omegaab.NewMessenger(me, inst.n, out, in, decision[V]{})
	if err != nil {
		return nil, nil, fmt.Errorf("consensus: %w", err)
	}
	part := &Participant[V]{
		Decided: prim.NewVar(false),
		Value:   prim.NewVar(*new(V)),
	}
	task := func(p prim.Proc) {
		endpoint.Candidate.Set(true) // permanent candidate: Ω∆ acts as Ω

		var (
			attempt    int64
			decided    bool
			decidedVal V
			msgTo      = make([]decision[V], inst.n)
		)
		for {
			if decided {
				if !part.Decided.Get() {
					part.Value.Set(decidedVal)
					part.Decided.Set(true)
					for q := range msgTo {
						msgTo[q] = decision[V]{Decided: true, V: decidedVal}
					}
				}
				// Ship the (never-changing) decision to every peer; the
				// Figure 4 mechanism guarantees delivery to each timely-
				// reachable reader, and is idempotent once done.
				msgr.WriteMsgs(msgTo)
				p.Step()
				continue
			}

			// Receive decision broadcasts.
			for _, m := range msgr.ReadMsgs() {
				if m.Decided {
					decided, decidedVal = true, m.V
					break
				}
			}
			if decided {
				continue
			}

			if endpoint.Leader.Get() == me {
				attempt++
				ballot := attempt*int64(inst.n) + int64(me) + 1
				if val, ok := inst.tryBallot(me, ballot, v); ok {
					decided, decidedVal = true, val
					continue
				}
			}
			p.Step()
		}
	}
	return part, task, nil
}
