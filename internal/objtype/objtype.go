// Package objtype provides sequential type specifications (qa.Type
// implementations) for the object types used by the examples, tests and
// benchmarks: counter, read/write/CAS register, test-and-set, FIFO queue,
// stack, key-value store and integer set.
//
// The paper's universal construction works for *any* type T (Theorem 15);
// these are the types its introduction motivates — ordinary shared objects
// whose operations are not commutative, so progress genuinely requires
// arbitration.
//
// All Apply implementations are persistent: they never mutate the input
// state, as package qa requires (every process replays the operation log
// independently).
package objtype

import "tbwf/internal/qa"

// Counter is a fetch-and-add counter. State is the count.
type Counter struct{}

var _ qa.Type[int64, CounterOp, int64] = Counter{}

// CounterOp adds Delta to the counter (Delta 0 is a read).
type CounterOp struct {
	Delta int64
}

// Init implements qa.Type.
func (Counter) Init() int64 { return 0 }

// Apply adds op.Delta and returns the *previous* value (fetch-and-add).
func (Counter) Apply(s int64, op CounterOp) (int64, int64) {
	return s + op.Delta, s
}

// RegOpKind selects a Register operation.
type RegOpKind int

const (
	// RegRead returns the current value.
	RegRead RegOpKind = iota + 1
	// RegWrite stores New and returns the previous value.
	RegWrite
	// RegCAS stores New if the current value equals Old; the response
	// reports the previous value and whether the swap happened.
	RegCAS
)

// Register is a read/write/compare-and-swap register — the classic
// universal-construction demo, since CAS has consensus number ∞.
type Register struct{}

var _ qa.Type[int64, RegOp, RegResp] = Register{}

// RegOp is one register operation.
type RegOp struct {
	Kind RegOpKind
	Old  int64
	New  int64
}

// RegResp is a register operation's response.
type RegResp struct {
	// Prev is the value before the operation.
	Prev int64
	// Swapped reports whether a RegCAS took effect.
	Swapped bool
}

// Init implements qa.Type.
func (Register) Init() int64 { return 0 }

// Apply implements qa.Type.
func (Register) Apply(s int64, op RegOp) (int64, RegResp) {
	switch op.Kind {
	case RegWrite:
		return op.New, RegResp{Prev: s}
	case RegCAS:
		if s == op.Old {
			return op.New, RegResp{Prev: s, Swapped: true}
		}
		return s, RegResp{Prev: s}
	default: // RegRead
		return s, RegResp{Prev: s}
	}
}

// TestAndSet is a one-shot test-and-set bit.
type TestAndSet struct{}

var _ qa.Type[bool, struct{}, bool] = TestAndSet{}

// Init implements qa.Type.
func (TestAndSet) Init() bool { return false }

// Apply sets the bit and returns its previous value: the first caller gets
// false (it won), everyone else true.
func (TestAndSet) Apply(s bool, _ struct{}) (bool, bool) {
	return true, s
}

// Queue is a FIFO queue of int64 values.
type Queue struct{}

var _ qa.Type[[]int64, QueueOp, QueueResp] = Queue{}

// QueueOp enqueues V (Enq true) or dequeues (Enq false).
type QueueOp struct {
	Enq bool
	V   int64
}

// QueueResp is a queue operation's response: for dequeue, the value and
// whether the queue was non-empty; for enqueue, Ok is always true.
type QueueResp struct {
	V  int64
	Ok bool
}

// Init implements qa.Type.
func (Queue) Init() []int64 { return nil }

// Apply implements qa.Type persistently (the stored slice is never
// mutated).
func (Queue) Apply(s []int64, op QueueOp) ([]int64, QueueResp) {
	if op.Enq {
		next := make([]int64, len(s)+1)
		copy(next, s)
		next[len(s)] = op.V
		return next, QueueResp{V: op.V, Ok: true}
	}
	if len(s) == 0 {
		return s, QueueResp{}
	}
	next := make([]int64, len(s)-1)
	copy(next, s[1:])
	return next, QueueResp{V: s[0], Ok: true}
}

// Stack is a LIFO stack of int64 values.
type Stack struct{}

var _ qa.Type[[]int64, StackOp, StackResp] = Stack{}

// StackOp pushes V (Push true) or pops (Push false).
type StackOp struct {
	Push bool
	V    int64
}

// StackResp is a stack operation's response: for pop, the value and
// whether the stack was non-empty.
type StackResp struct {
	V  int64
	Ok bool
}

// Init implements qa.Type.
func (Stack) Init() []int64 { return nil }

// Apply implements qa.Type persistently.
func (Stack) Apply(s []int64, op StackOp) ([]int64, StackResp) {
	if op.Push {
		next := make([]int64, len(s)+1)
		copy(next, s)
		next[len(s)] = op.V
		return next, StackResp{V: op.V, Ok: true}
	}
	if len(s) == 0 {
		return s, StackResp{}
	}
	top := s[len(s)-1]
	next := make([]int64, len(s)-1)
	copy(next, s[:len(s)-1])
	return next, StackResp{V: top, Ok: true}
}

// KVStore is a string-keyed store.
type KVStore struct{}

var _ qa.Type[map[string]string, KVOp, KVResp] = KVStore{}

// KVOpKind selects a KVStore operation.
type KVOpKind int

const (
	// KVGet reads Key.
	KVGet KVOpKind = iota + 1
	// KVPut stores Value under Key.
	KVPut
	// KVDelete removes Key.
	KVDelete
)

// KVOp is one store operation.
type KVOp struct {
	Kind  KVOpKind
	Key   string
	Value string
}

// KVResp reports the value previously under the key (Found tells whether
// there was one).
type KVResp struct {
	Value string
	Found bool
}

// Init implements qa.Type.
func (KVStore) Init() map[string]string { return nil }

// Apply implements qa.Type persistently (reads share the map; writes copy
// it).
func (KVStore) Apply(s map[string]string, op KVOp) (map[string]string, KVResp) {
	prev, found := s[op.Key]
	resp := KVResp{Value: prev, Found: found}
	switch op.Kind {
	case KVPut:
		next := make(map[string]string, len(s)+1)
		for k, v := range s {
			next[k] = v
		}
		next[op.Key] = op.Value
		return next, resp
	case KVDelete:
		if !found {
			return s, resp
		}
		next := make(map[string]string, len(s))
		for k, v := range s {
			if k != op.Key {
				next[k] = v
			}
		}
		return next, resp
	default: // KVGet
		return s, resp
	}
}

// IntSet is a set of int64 values.
type IntSet struct{}

var _ qa.Type[map[int64]struct{}, SetOp, bool] = IntSet{}

// SetOpKind selects an IntSet operation.
type SetOpKind int

const (
	// SetAdd inserts V; the response reports whether V was already present.
	SetAdd SetOpKind = iota + 1
	// SetRemove deletes V; the response reports whether V was present.
	SetRemove
	// SetContains tests V.
	SetContains
)

// SetOp is one set operation.
type SetOp struct {
	Kind SetOpKind
	V    int64
}

// Init implements qa.Type.
func (IntSet) Init() map[int64]struct{} { return nil }

// Apply implements qa.Type persistently.
func (IntSet) Apply(s map[int64]struct{}, op SetOp) (map[int64]struct{}, bool) {
	_, present := s[op.V]
	switch op.Kind {
	case SetAdd:
		if present {
			return s, true
		}
		next := make(map[int64]struct{}, len(s)+1)
		for k := range s {
			next[k] = struct{}{}
		}
		next[op.V] = struct{}{}
		return next, false
	case SetRemove:
		if !present {
			return s, false
		}
		next := make(map[int64]struct{}, len(s))
		for k := range s {
			if k != op.V {
				next[k] = struct{}{}
			}
		}
		return next, true
	default: // SetContains
		return s, present
	}
}
