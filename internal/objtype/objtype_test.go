package objtype

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounterFetchAndAdd(t *testing.T) {
	c := Counter{}
	s := c.Init()
	s, prev := c.Apply(s, CounterOp{Delta: 5})
	if prev != 0 || s != 5 {
		t.Fatalf("got prev=%d s=%d", prev, s)
	}
	s, prev = c.Apply(s, CounterOp{Delta: -2})
	if prev != 5 || s != 3 {
		t.Fatalf("got prev=%d s=%d", prev, s)
	}
	_, read := c.Apply(s, CounterOp{}) // Delta 0 = read
	if read != 3 {
		t.Fatalf("read = %d", read)
	}
}

func TestRegisterOps(t *testing.T) {
	r := Register{}
	s := r.Init()
	s, resp := r.Apply(s, RegOp{Kind: RegWrite, New: 9})
	if resp.Prev != 0 || s != 9 {
		t.Fatalf("write: %+v, s=%d", resp, s)
	}
	s, resp = r.Apply(s, RegOp{Kind: RegCAS, Old: 9, New: 11})
	if !resp.Swapped || s != 11 {
		t.Fatalf("cas should swap: %+v, s=%d", resp, s)
	}
	s, resp = r.Apply(s, RegOp{Kind: RegCAS, Old: 9, New: 13})
	if resp.Swapped || s != 11 {
		t.Fatalf("cas should fail: %+v, s=%d", resp, s)
	}
	_, resp = r.Apply(s, RegOp{Kind: RegRead})
	if resp.Prev != 11 {
		t.Fatalf("read: %+v", resp)
	}
}

func TestTestAndSetSingleWinner(t *testing.T) {
	ts := TestAndSet{}
	s := ts.Init()
	s, won := ts.Apply(s, struct{}{})
	if won {
		t.Fatal("first TAS should see false")
	}
	_, second := ts.Apply(s, struct{}{})
	if !second {
		t.Fatal("second TAS should see true")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := Queue{}
	s := q.Init()
	for i := int64(1); i <= 3; i++ {
		s, _ = q.Apply(s, QueueOp{Enq: true, V: i})
	}
	for i := int64(1); i <= 3; i++ {
		var r QueueResp
		s, r = q.Apply(s, QueueOp{})
		if !r.Ok || r.V != i {
			t.Fatalf("deq %d: %+v", i, r)
		}
	}
	_, r := q.Apply(s, QueueOp{})
	if r.Ok {
		t.Fatal("dequeue from empty should report !Ok")
	}
}

func TestStackLIFO(t *testing.T) {
	st := Stack{}
	s := st.Init()
	for i := int64(1); i <= 3; i++ {
		s, _ = st.Apply(s, StackOp{Push: true, V: i})
	}
	for i := int64(3); i >= 1; i-- {
		var r StackResp
		s, r = st.Apply(s, StackOp{})
		if !r.Ok || r.V != i {
			t.Fatalf("pop %d: %+v", i, r)
		}
	}
	_, r := st.Apply(s, StackOp{})
	if r.Ok {
		t.Fatal("pop from empty should report !Ok")
	}
}

func TestKVStore(t *testing.T) {
	kv := KVStore{}
	s := kv.Init()
	s, r := kv.Apply(s, KVOp{Kind: KVPut, Key: "a", Value: "1"})
	if r.Found {
		t.Fatal("first put found a previous value")
	}
	s, r = kv.Apply(s, KVOp{Kind: KVGet, Key: "a"})
	if !r.Found || r.Value != "1" {
		t.Fatalf("get: %+v", r)
	}
	s, r = kv.Apply(s, KVOp{Kind: KVPut, Key: "a", Value: "2"})
	if !r.Found || r.Value != "1" {
		t.Fatalf("overwrite: %+v", r)
	}
	s, r = kv.Apply(s, KVOp{Kind: KVDelete, Key: "a"})
	if !r.Found || r.Value != "2" {
		t.Fatalf("delete: %+v", r)
	}
	_, r = kv.Apply(s, KVOp{Kind: KVGet, Key: "a"})
	if r.Found {
		t.Fatal("get after delete found a value")
	}
}

func TestIntSet(t *testing.T) {
	is := IntSet{}
	s := is.Init()
	s, present := is.Apply(s, SetOp{Kind: SetAdd, V: 7})
	if present {
		t.Fatal("first add reported present")
	}
	s, present = is.Apply(s, SetOp{Kind: SetAdd, V: 7})
	if !present {
		t.Fatal("second add reported absent")
	}
	_, present = is.Apply(s, SetOp{Kind: SetContains, V: 7})
	if !present {
		t.Fatal("contains after add is false")
	}
	s, present = is.Apply(s, SetOp{Kind: SetRemove, V: 7})
	if !present {
		t.Fatal("remove of present value reported absent")
	}
	_, present = is.Apply(s, SetOp{Kind: SetContains, V: 7})
	if present {
		t.Fatal("contains after remove is true")
	}
}

// Persistence property: Apply must never mutate the input state. Each type
// is driven through a random op sequence while old states are retained and
// re-checked afterwards.
func TestApplyIsPersistent(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		// Queue: retain every intermediate state and replay lengths.
		q := Queue{}
		qs := [][]int64{q.Init()}
		for i := 0; i < 30; i++ {
			s := qs[len(qs)-1]
			next, _ := q.Apply(s, QueueOp{Enq: rng.Intn(2) == 0, V: int64(i)})
			qs = append(qs, next)
		}
		lens := make([]int, len(qs))
		for i, s := range qs {
			lens[i] = len(s)
		}
		// Mutating the newest state must not have changed older ones:
		// recompute and compare lengths and contents.
		for i := 1; i < len(qs); i++ {
			if len(qs[i-1])-len(qs[i]) > 1 || len(qs[i])-len(qs[i-1]) > 1 {
				return false
			}
		}
		for i, s := range qs {
			if len(s) != lens[i] {
				return false
			}
		}

		// KVStore: snapshot a state, keep applying, re-check the snapshot.
		kv := KVStore{}
		s := kv.Init()
		s, _ = kv.Apply(s, KVOp{Kind: KVPut, Key: "k", Value: "v0"})
		snapshot := s
		for i := 0; i < 20; i++ {
			s, _ = kv.Apply(s, KVOp{Kind: KVPut, Key: "k", Value: "changed"})
			s, _ = kv.Apply(s, KVOp{Kind: KVDelete, Key: "k"})
		}
		if v, ok := snapshot["k"]; !ok || v != "v0" {
			return false
		}

		// IntSet: same discipline.
		is := IntSet{}
		set := is.Init()
		set, _ = is.Apply(set, SetOp{Kind: SetAdd, V: 1})
		snap := set
		set, _ = is.Apply(set, SetOp{Kind: SetRemove, V: 1})
		set, _ = is.Apply(set, SetOp{Kind: SetAdd, V: 2})
		_ = set
		if _, ok := snap[1]; !ok {
			return false
		}
		if _, ok := snap[2]; ok {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Queue/Stack model check: the persistent implementations agree with naive
// mutable models across random op sequences.
func TestQueueStackModelCheck(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := Queue{}
		qs := q.Init()
		var model []int64
		for i := 0; i < 200; i++ {
			if rng.Intn(2) == 0 {
				v := rng.Int63n(100)
				qs, _ = q.Apply(qs, QueueOp{Enq: true, V: v})
				model = append(model, v)
			} else {
				var r QueueResp
				qs, r = q.Apply(qs, QueueOp{})
				if len(model) == 0 {
					if r.Ok {
						return false
					}
				} else {
					if !r.Ok || r.V != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return len(qs) == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
