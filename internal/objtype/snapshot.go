package objtype

import "tbwf/internal/qa"

// Snapshot is an m-component atomic snapshot object: update writes one
// component, scan returns an instantaneous view of all of them. Atomic
// snapshots are a classic shared-memory abstraction with famously
// intricate direct implementations; as a sequential type under the
// paper's universal construction it comes for free — a demonstration of
// "every type T" (Theorem 15).
type Snapshot struct {
	// Components is the number of segments m (at least 1).
	Components int
}

var _ qa.Type[[]int64, SnapOp, SnapResp] = Snapshot{}

// SnapOp is one snapshot operation: an update of component Index to V, or
// a scan (Update false).
type SnapOp struct {
	Update bool
	Index  int
	V      int64
}

// SnapResp carries a scan's view (nil for updates; updates report the
// component's previous value in Prev).
type SnapResp struct {
	View []int64
	Prev int64
}

// Init implements qa.Type.
func (s Snapshot) Init() []int64 {
	m := s.Components
	if m < 1 {
		m = 1
	}
	return make([]int64, m)
}

// Apply implements qa.Type persistently. Out-of-range updates are ignored
// (the response reports Prev 0) rather than panicking: operations are data
// by the time they reach the log.
func (s Snapshot) Apply(state []int64, op SnapOp) ([]int64, SnapResp) {
	if !op.Update {
		view := make([]int64, len(state))
		copy(view, state)
		return state, SnapResp{View: view}
	}
	if op.Index < 0 || op.Index >= len(state) {
		return state, SnapResp{}
	}
	next := make([]int64, len(state))
	copy(next, state)
	prev := next[op.Index]
	next[op.Index] = op.V
	return next, SnapResp{Prev: prev}
}
