package objtype

import (
	"testing"
)

func TestSnapshotUpdateAndScan(t *testing.T) {
	sn := Snapshot{Components: 3}
	s := sn.Init()
	s, r := sn.Apply(s, SnapOp{Update: true, Index: 1, V: 7})
	if r.Prev != 0 {
		t.Fatalf("prev = %d", r.Prev)
	}
	s, r = sn.Apply(s, SnapOp{Update: true, Index: 1, V: 9})
	if r.Prev != 7 {
		t.Fatalf("prev = %d, want 7", r.Prev)
	}
	s, r = sn.Apply(s, SnapOp{Update: true, Index: 2, V: 5})
	_, r = sn.Apply(s, SnapOp{})
	want := []int64{0, 9, 5}
	for i, v := range want {
		if r.View[i] != v {
			t.Fatalf("view = %v, want %v", r.View, want)
		}
	}
}

func TestSnapshotScanViewIsACopy(t *testing.T) {
	sn := Snapshot{Components: 2}
	s := sn.Init()
	s, _ = sn.Apply(s, SnapOp{Update: true, Index: 0, V: 1})
	_, r := sn.Apply(s, SnapOp{})
	r.View[0] = 999
	_, r2 := sn.Apply(s, SnapOp{})
	if r2.View[0] != 1 {
		t.Fatal("mutating a scan's view corrupted the state")
	}
}

func TestSnapshotPersistence(t *testing.T) {
	sn := Snapshot{Components: 2}
	s0 := sn.Init()
	s1, _ := sn.Apply(s0, SnapOp{Update: true, Index: 0, V: 42})
	if s0[0] != 0 {
		t.Fatal("update mutated the previous state")
	}
	if s1[0] != 42 {
		t.Fatal("update lost")
	}
}

func TestSnapshotOutOfRangeIgnored(t *testing.T) {
	sn := Snapshot{Components: 2}
	s := sn.Init()
	s2, _ := sn.Apply(s, SnapOp{Update: true, Index: 5, V: 1})
	if len(s2) != 2 || s2[0] != 0 || s2[1] != 0 {
		t.Fatalf("out-of-range update changed state: %v", s2)
	}
	if _, r := sn.Apply(s, SnapOp{Update: true, Index: -1, V: 1}); r.Prev != 0 {
		t.Fatal("negative index not ignored")
	}
}

func TestSnapshotZeroComponentsDefaultsToOne(t *testing.T) {
	sn := Snapshot{}
	if got := len(sn.Init()); got != 1 {
		t.Fatalf("init length = %d, want 1", got)
	}
}
