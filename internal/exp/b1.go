package exp

import (
	"fmt"

	"tbwf/internal/deploy"
	"tbwf/internal/elector"
	"tbwf/internal/omega"
	"tbwf/internal/sim"
)

// B1Config parameterizes the leader-elector bake-off.
type B1Config struct {
	// N is the system size (default 3).
	N int
	// Steps is the per-run budget (default 2M; slow-process runs get ×3).
	Steps int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// bakeoffScenario is one candidacy/timeliness regime every elector faces.
type bakeoffScenario struct {
	name string
	// candidate reports process p's initial candidacy.
	candidate func(p int) bool
	// avail optionally slows processes (layered over round-robin).
	avail func(n int) map[int]sim.Availability
	// drive optionally manipulates candidacies during the run.
	drive func(k *sim.Kernel, instances []*omega.Instance)
	// members is the agreement set judged at the end of the run.
	members func(n int) []int
	// accept restricts who may be the stable leader (nil = any member).
	accept func(n int, ell int) bool
	// stepsFactor stretches the budget (0 = 1×).
	stepsFactor int64
}

func bakeoffScenarios() []bakeoffScenario {
	notZero := func(n, ell int) bool { return ell != 0 }
	tail := func(n int) []int { return ids(1, n) }
	return []bakeoffScenario{
		{
			name:      "all-timely-permanent",
			candidate: func(p int) bool { return true },
			members:   func(n int) []int { return ids(0, n) },
		},
		{
			name:      "non-candidate-0",
			candidate: func(p int) bool { return p != 0 },
			members:   tail,
			accept:    notZero,
		},
		{
			name:      "slow-process-0",
			candidate: func(p int) bool { return true },
			avail: func(n int) map[int]sim.Availability {
				return map[int]sim.Availability{0: sim.GrowingGaps(400, 2_000, 1.5)}
			},
			members:     tail,
			accept:      notZero,
			stepsFactor: 3, // the growing gaps need room to dominate
		},
		{
			name:      "repeated-candidate-churn",
			candidate: func(p int) bool { return true },
			drive: func(k *sim.Kernel, instances []*omega.Instance) {
				k.AfterStep(func(step int64) {
					if step%20_000 == 0 {
						inst := instances[0]
						inst.Candidate.Set(!inst.Candidate.Get())
					}
				})
			},
			members: tail,
			accept:  notZero,
		},
	}
}

// B1ElectorBakeoff runs every registered elector through the same four
// candidacy/timeliness regimes on identical schedules and tabulates
// stabilization step, leader churn, and spec conformance — the bake-off
// behind the pluggable seam (EXPERIMENTS.md BAKEOFF; the live-service p99
// leg of the comparison runs through tbwf-serve/tbwf-load).
func B1ElectorBakeoff(cfg B1Config) (*Table, error) {
	if cfg.N == 0 {
		cfg.N = 3
	}
	if cfg.Steps == 0 {
		cfg.Steps = 2_000_000
	}
	t := &Table{
		ID:      "B1",
		Title:   fmt.Sprintf("leader-elector bake-off: n=%d, %d steps/run", cfg.N, cfg.Steps),
		Columns: []string{"elector", "scenario", "leader", "stabilized at", "leader changes", "as specified"},
		Notes: []string{
			"every elector runs the same schedules behind the same seam; 'as specified' means the members agreed on an acceptable leader (never the non-candidate, the slow process, or the churning process)",
			"stabilization and churn are the Ω∆ quality axes; the live-service p99 axis runs via tbwf-serve -elector ... + tbwf-load (see EXPERIMENTS.md BAKEOFF)",
		},
	}
	var scs []Scenario
	for _, name := range elector.Names() {
		builder, err := elector.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, sc := range bakeoffScenarios() {
			name, builder, sc := name, builder, sc
			scs = append(scs, Scenario{Name: fmt.Sprintf("%s/%s", name, sc.name), Run: func(res *Result) error {
				steps := cfg.Steps
				if sc.stepsFactor > 0 {
					steps *= sc.stepsFactor
				}
				sched := sim.Schedule(sim.RoundRobin())
				if sc.avail != nil {
					sched = sim.Restrict(sched, sc.avail(cfg.N))
				}
				k := sim.New(cfg.N, sim.WithSchedule(sched))
				el, err := builder.Build(deploy.Sim(k), elector.Config{})
				if err != nil {
					return err
				}
				insts := el.Instances()
				members := sc.members(cfg.N)
				obs := omega.NewObserver(insts) // full vector, for agreement
				// Stabilization and churn are judged at the members only, so
				// a churning process's own flapping output does not mask the
				// electors' differences.
				memberInsts := make([]*omega.Instance, len(members))
				for i, m := range members {
					memberInsts[i] = insts[m]
				}
				mobs := omega.NewObserver(memberInsts)
				k.AfterStep(obs.Sample)
				k.AfterStep(mobs.Sample)
				for p, inst := range insts {
					if sc.candidate(p) {
						inst.Candidate.Set(true)
					}
				}
				if sc.drive != nil {
					sc.drive(k, insts)
				}
				if _, err := k.Run(steps); err != nil {
					return err
				}
				k.Shutdown()
				res.Record(k)

				ell := obs.AgreedLeader(members)
				leader := fmt.Sprint(ell)
				ok := ell != omega.NoLeader
				if ok && sc.accept != nil {
					ok = sc.accept(cfg.N, ell)
				}
				if ell == omega.NoLeader {
					leader = "none"
				}
				if sc.name == "non-candidate-0" && el.Leaders()[0] != omega.NoLeader {
					ok = false // the Ncandidate must output ?
				}
				res.AddRow(name, sc.name, leader, mobs.StabilizedAt(), mobs.Changes(), ok)
				return nil
			}})
		}
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}
