package exp

import (
	"fmt"

	"tbwf/internal/deploy"
	"tbwf/internal/omega"
	"tbwf/internal/sim"
)

// E6Config parameterizes the write-efficiency measurement.
type E6Config struct {
	// N is the process count (default 4).
	N int
	// Steps is the run budget (default 600k).
	Steps int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// E6WriteEfficiency measures shared-register write traffic before and
// after the Figure 3 Ω∆ stabilizes (DESIGN.md E6, validating the closing
// remark of Section 5.2: eventually only the leader — plus any repeated
// candidates — writes shared registers).
func E6WriteEfficiency(cfg E6Config) (*Table, error) {
	if cfg.N == 0 {
		cfg.N = 4
	}
	if cfg.Steps == 0 {
		cfg.Steps = 600_000
	}
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("write efficiency of Ω∆ (Figure 3), n=%d, %d steps", cfg.N, cfg.Steps),
		Columns: []string{"phase", "window steps", "writes", "writes/1k steps", "non-leader writes"},
		Notes: []string{
			"expected shape: after stabilization every shared write is the leader's heartbeat — non-leader writes drop to zero (total volume stays similar; the point is who writes)",
		},
	}
	scs := []Scenario{{Name: "write-log", Run: func(res *Result) error {
		k := sim.New(cfg.N, sim.WithWriteLog(true))
		sys, err := omega.BuildRegisters(k)
		if err != nil {
			return err
		}
		obs := omega.NewObserver(sys.Instances)
		k.AfterStep(obs.Sample)
		for _, inst := range sys.Instances {
			inst.Candidate.Set(true)
		}
		if _, err := k.Run(cfg.Steps); err != nil {
			return err
		}
		k.Shutdown()
		res.Record(k)

		stable := obs.StabilizedAt() + 20_000 // settling margin
		ell := obs.AgreedLeader(ids(0, cfg.N))

		var before, after int64
		writersAfter := map[int]int64{}
		for _, ev := range k.Trace().Writes() {
			if ev.Step < stable {
				before++
			} else {
				after++
				writersAfter[ev.Proc]++
			}
		}
		beforeWindow := stable
		afterWindow := cfg.Steps - stable
		perK := func(cnt, window int64) float64 {
			if window <= 0 {
				return 0
			}
			return 1000 * float64(cnt) / float64(window)
		}
		nonLeader := int64(0)
		for proc, c := range writersAfter {
			if proc != ell {
				nonLeader += c
			}
		}
		res.AddNote("stable leader %d from step %d (plus 20k margin)", ell, obs.StabilizedAt())
		res.AddRow("before stabilization", beforeWindow, before, perK(before, beforeWindow), "-")
		res.AddRow("after stabilization", afterWindow, after, perK(after, afterWindow), nonLeader)
		return nil
	}}}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}

// E7Config parameterizes the canonical-use fairness experiment.
type E7Config struct {
	// N is the process count (default 3).
	N int
	// Steps is the run budget (default 3M).
	Steps int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// E7Canonical contrasts the canonical Figure 7 protocol with the variant
// that skips the line 2 wait (DESIGN.md E7, validating Theorems 7/8 and the
// monopolization discussion of Section 7). All processes are timely and
// hammer the object; the table reports how completions distribute.
func E7Canonical(cfg E7Config) (*Table, error) {
	if cfg.N == 0 {
		cfg.N = 3
	}
	if cfg.Steps == 0 {
		cfg.Steps = 3_000_000
	}
	t := &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("canonical vs non-canonical use of Ω∆, n=%d, %d steps", cfg.N, cfg.Steps),
		Columns: []string{"protocol", "ops per process", "total", "top share"},
		Notes: []string{
			"expected shape: canonical ≈ uniform; non-canonical monopolized by one client (top share → 1)",
		},
	}
	var scs []Scenario
	for _, nonCanonical := range []bool{false, true} {
		nonCanonical := nonCanonical
		name := "canonical"
		if nonCanonical {
			name = "non-canonical"
		}
		scs = append(scs, Scenario{Name: name, Run: func(res *Result) error {
			k := sim.New(cfg.N)
			st, err := buildCounterStack(k, deploy.BuildConfig{NonCanonical: nonCanonical})
			if err != nil {
				return err
			}
			spawnHammers(k, st)
			if _, err := k.Run(cfg.Steps); err != nil {
				return err
			}
			k.Shutdown()
			res.Record(k)
			completed := st.CompletedOps()
			var total, top int64
			for _, c := range completed {
				total += c
				if c > top {
					top = c
				}
			}
			share := 0.0
			if total > 0 {
				share = float64(top) / float64(total)
			}
			res.AddRow(name, fmt.Sprint(completed), total, share)
			return nil
		}})
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}
