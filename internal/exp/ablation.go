package exp

import (
	"fmt"

	"tbwf/internal/omega"
	"tbwf/internal/omegaab"
	"tbwf/internal/prim"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// This file holds the ablation experiments of DESIGN.md §7: each removes
// one design element the paper's algorithms rely on and demonstrates the
// failure the element prevents.

// A1Config parameterizes the dual-heartbeat ablation.
type A1Config struct {
	// Steps is the run budget (default 400k).
	Steps int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// A1DualHeartbeat contrasts the paper's dual-register heartbeat (Figure 5)
// with a naive single-register variant. The sender is correct but so slow
// that each of its register writes spans an entire scheduling gap; every
// read of the in-flight register aborts, and an abort alone only proves
// liveness, not timeliness. The single-register receiver therefore keeps
// the sender "active" essentially forever, while the dual-register receiver
// notices the other register going stale and suspects it.
func A1DualHeartbeat(cfg A1Config) (*Table, error) {
	if cfg.Steps == 0 {
		cfg.Steps = 400_000
	}
	t := &Table{
		ID:      "A1",
		Title:   fmt.Sprintf("ablation: dual vs single heartbeat registers, %d steps", cfg.Steps),
		Columns: []string{"receiver", "suffix samples active", "verdict"},
		Notes: []string{
			"sender is correct but each write spans a whole scheduling gap (bursts of 1 step)",
			"expected shape: the dual-register receiver suspects the slow sender; the single-register one is fooled by aborts",
		},
	}
	var scs []Scenario
	for _, variant := range []string{"dual (paper)", "single (ablated)"} {
		variant := variant
		scs = append(scs, Scenario{Name: variant, Run: func(res *Result) error {
			k := sim.New(2, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{
				0: sim.GrowingGaps(1, 2_000, 1.3),
			})))
			r1 := register.NewAbortableSWSR(k, "Hb1", int64(0), 0, 1)
			r2 := register.NewAbortableSWSR(k, "Hb2", int64(0), 0, 1)
			in1 := []prim.AbortableRegister[int64]{r1, nil}
			in2 := []prim.AbortableRegister[int64]{r2, nil}
			hb, err := omegaab.NewHeartbeat(1, 2,
				make([]prim.AbortableRegister[int64], 2), make([]prim.AbortableRegister[int64], 2),
				in1, in2)
			if err != nil {
				return err
			}
			single := variant != "dual (paper)"
			if single {
				hb.AblateSingleRegister()
			}
			// Sender: the naive single-register protocol writes one register;
			// the paper's protocol alternates both.
			k.Spawn(0, "sender", func(p prim.Proc) {
				var c int64
				for {
					c++
					r1.Write(c)
					if !single {
						r2.Write(c)
					}
				}
			})
			var active []bool
			k.Spawn(1, "receiver", func(p prim.Proc) {
				for {
					active = hb.Receive()
					p.Step()
				}
			})
			var samples, activeSamples int64
			k.AfterStep(func(step int64) {
				if step > cfg.Steps/2 && active != nil {
					samples++
					if active[0] {
						activeSamples++
					}
				}
			})
			if _, err := k.Run(cfg.Steps); err != nil {
				return err
			}
			k.Shutdown()
			res.Record(k)
			frac := float64(activeSamples) / float64(max(samples, 1))
			verdict := "suspects the slow sender"
			if frac > 0.5 {
				verdict = "fooled: believes the sender timely"
			}
			res.AddRow(variant, fmt.Sprintf("%.0f%%", 100*frac), verdict)
			return nil
		}})
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}

// A2Config parameterizes the self-punishment ablation.
type A2Config struct {
	// Steps is the run budget (default 1.2M).
	Steps int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// A2SelfPunishment contrasts Figure 3 with and without its self-punishment
// rule (lines 7–8). Process 0 joins and leaves the competition forever;
// with the rule its counter grows on every re-entry and the other
// candidates' leadership stabilizes; without it process 0 re-enters with
// the smallest counter every time and leadership at the permanent
// candidates oscillates forever — exactly the scenario the paper gives for
// why the rule exists.
func A2SelfPunishment(cfg A2Config) (*Table, error) {
	if cfg.Steps == 0 {
		cfg.Steps = 1_200_000
	}
	t := &Table{
		ID:      "A2",
		Title:   fmt.Sprintf("ablation: Figure 3 self-punishment under candidacy churn, %d steps", cfg.Steps),
		Columns: []string{"variant", "leader changes 1st half", "2nd half", "verdict"},
		Notes: []string{
			"changes counted at the two permanent candidates only; process 0 toggles candidacy every 20k steps throughout",
			"expected shape: with self-punishment churn stops influencing leadership; without it every re-entry steals leadership back",
		},
	}
	var scs []Scenario
	for _, ablate := range []bool{false, true} {
		ablate := ablate
		name := "with self-punishment"
		if ablate {
			name = "without (ablated)"
		}
		scs = append(scs, Scenario{Name: name, Run: func(res *Result) error {
			k := sim.New(3)
			dep, err := omega.BuildWith(3, k, func(name string, init int64) prim.Register[int64] {
				return register.NewAtomic(k, name, init)
			}, omega.BuildOptions{AblateSelfPunishment: ablate})
			if err != nil {
				return err
			}
			obs := omega.NewObserver(dep.Instances[1:]) // permanent candidates only
			k.AfterStep(obs.Sample)
			for _, inst := range dep.Instances {
				inst.Candidate.Set(true)
			}
			k.AfterStep(func(step int64) {
				if step%20_000 == 0 {
					inst := dep.Instances[0]
					inst.Candidate.Set(!inst.Candidate.Get())
				}
			})
			if _, err := k.Run(cfg.Steps / 2); err != nil {
				return err
			}
			firstHalf := obs.Changes()
			if _, err := k.Run(cfg.Steps / 2); err != nil {
				return err
			}
			k.Shutdown()
			res.Record(k)
			secondHalf := obs.Changes() - firstHalf
			verdict := "stable despite churn"
			if secondHalf > 4 {
				verdict = "oscillates forever"
			}
			res.AddRow(name, firstHalf, secondHalf, verdict)
			return nil
		}})
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}

// A3Config parameterizes the reader back-off ablation.
type A3Config struct {
	// Steps is the run budget (default 300k).
	Steps int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// A3ReaderBackoff contrasts Figure 4's WriteMsgs/ReadMsgs with and without
// the reader's adaptive back-off, under a strictly alternating schedule
// that phase-locks the writer and the reader. Every write then overlaps a
// read: without back-off both sides abort forever and the value is never
// delivered; with back-off the reader's probes become sparse, the writer
// eventually writes solo, and the value lands.
func A3ReaderBackoff(cfg A3Config) (*Table, error) {
	if cfg.Steps == 0 {
		cfg.Steps = 300_000
	}
	t := &Table{
		ID:      "A3",
		Title:   fmt.Sprintf("ablation: Figure 4 reader back-off under a phase-locked schedule, %d steps", cfg.Steps),
		Columns: []string{"variant", "outcome", "reader aborts", "verdict"},
		Notes: []string{
			"schedule strictly alternates the two processes, so operation windows always overlap",
			"expected shape: with back-off the final value is delivered; without it the messenger starves",
		},
	}
	var scs []Scenario
	for _, ablate := range []bool{false, true} {
		ablate := ablate
		scs = append(scs, Scenario{Name: variantName(ablate), Run: func(res *Result) error {
			k := sim.New(2, sim.WithSchedule(sim.Pattern(0, 1)))
			reg := register.NewAbortableSWSR(k, "Msg[0,1]", 0, 0, 1)
			w, err := omegaab.NewMessenger(0, 2,
				[]prim.AbortableRegister[int]{nil, reg}, make([]prim.AbortableRegister[int], 2), 0)
			if err != nil {
				return err
			}
			r, err := omegaab.NewMessenger(1, 2,
				make([]prim.AbortableRegister[int], 2), []prim.AbortableRegister[int]{reg, nil}, 0)
			if err != nil {
				return err
			}
			if ablate {
				r.AblateBackoff()
			}
			k.Spawn(0, "writer", func(p prim.Proc) {
				msg := []int{0, 99}
				for {
					w.WriteMsgs(msg)
					p.Step()
				}
			})
			got := 0
			k.Spawn(1, "reader", func(p prim.Proc) {
				for {
					got = r.ReadMsgs()[0]
					p.Step()
				}
			})
			if _, err := k.Run(cfg.Steps); err != nil {
				return err
			}
			k.Shutdown()
			res.Record(k)
			outcome := "not delivered"
			verdict := "starves"
			if got == 99 {
				outcome = "delivered"
				verdict = "back-off breaks the phase lock"
			}
			res.AddRow(variantName(ablate), outcome, reg.Stats().ReadAborts, verdict)
			return nil
		}})
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}

func variantName(ablate bool) string {
	if ablate {
		return "without back-off (ablated)"
	}
	return "with back-off (paper)"
}
