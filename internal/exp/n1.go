package exp

import (
	"fmt"

	"tbwf/internal/elector"
	"tbwf/internal/net"
	"tbwf/internal/omega"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// N1Config parameterizes the quorum-register cost measurement.
type N1Config struct {
	// N is the system size (default 3).
	N int
	// OpsEach is how many write+read pairs every process performs on the
	// shared register (default 40).
	OpsEach int64
	// Steps is the per-run budget; runs normally finish early once all
	// processes complete their ops (default 8M).
	Steps int64
	// Delays are the fabric MaxDelay values swept (default 1,2,4,8).
	Delays []int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// N1NetRegister measures what an ABD quorum round costs on the message
// fabric: every process hammers one shared atomic register with
// write+read pairs, and the table reports kernel steps per completed
// operation as the delivery delay grows — with and without message loss,
// which adds retransmission rounds on top (EXPERIMENTS.md NET).
func N1NetRegister(cfg N1Config) (*Table, error) {
	if cfg.N == 0 {
		cfg.N = 3
	}
	if cfg.OpsEach == 0 {
		cfg.OpsEach = 40
	}
	if cfg.Steps == 0 {
		cfg.Steps = 8_000_000
	}
	if len(cfg.Delays) == 0 {
		cfg.Delays = []int64{1, 2, 4, 8}
	}
	t := &Table{
		ID: "N1",
		Title: fmt.Sprintf("quorum-register cost on the fabric: n=%d, %d write+read pairs/process",
			cfg.N, cfg.OpsEach),
		Columns: []string{"max delay", "drop prob", "ops", "steps", "steps/op", "dropped"},
		Notes: []string{
			"each operation is a two-phase majority round (ABD): cost scales with the message delay, not with contention",
			"with loss, retransmission (every 64 parked steps) recovers the round at the price of extra steps and duplicate traffic",
		},
	}
	var scs []Scenario
	for _, delay := range cfg.Delays {
		for _, drop := range []float64{0, 0.2} {
			delay, drop := delay, drop
			scs = append(scs, Scenario{Name: fmt.Sprintf("delay-%d/drop-%.1f", delay, drop), Run: func(res *Result) error {
				k := sim.New(cfg.N)
				sub, fab, err := net.NewFabric(k,
					net.FabricConfig{Seed: 11, MinDelay: 1, MaxDelay: delay, DropProb: drop},
					net.Config{})
				if err != nil {
					return err
				}
				reg := prim.NewRegister[int64](sub, "n1.shared", 0)
				for p := 0; p < cfg.N; p++ {
					p := p
					sub.Spawn(p, fmt.Sprintf("hammer[%d]", p), func(pp prim.Proc) {
						for i := int64(0); i < cfg.OpsEach; i++ {
							reg.Write(int64(p)<<32 | i)
							reg.Read()
						}
					})
				}
				r, err := k.Run(cfg.Steps)
				if err != nil {
					return err
				}
				k.Shutdown()
				res.Record(k)
				if !r.Idle {
					res.AddNote("N1 delay-%d/drop-%.1f exhausted its %d-step budget before finishing", delay, drop, cfg.Steps)
				}
				ops := 2 * cfg.OpsEach * int64(cfg.N)
				res.AddRow(delay, fmt.Sprintf("%.1f", drop), ops, r.Steps,
					fmt.Sprintf("%.0f", float64(r.Steps)/float64(ops)), fab.Dropped())
				return nil
			}})
		}
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}

// N2Config parameterizes the delay sweep for elector stabilization.
type N2Config struct {
	// N is the system size (default 3).
	N int
	// Steps is the per-run budget (default 8M; slower fabrics need the
	// room — every heartbeat write is a quorum round).
	Steps int64
	// Delays are the fabric MaxDelay values swept (default 1,4,8,16 —
	// below ~4 the elector stabilizes as fast as on shared memory).
	Delays []int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// N2NetDelaySweep deploys the default Ω∆ elector on the fabric with all
// processes candidates and sweeps the delivery delay: the table reports
// when the leader vector stabilizes and how often it churned first. The
// timeliness the elector's analysis assumes of shared memory is exactly
// what the fabric degrades, so stabilization stretches with the delay —
// the graceful-degradation story told at the network layer
// (EXPERIMENTS.md NET).
func N2NetDelaySweep(cfg N2Config) (*Table, error) {
	if cfg.N == 0 {
		cfg.N = 3
	}
	if cfg.Steps == 0 {
		cfg.Steps = 8_000_000
	}
	if len(cfg.Delays) == 0 {
		cfg.Delays = []int64{1, 4, 8, 16}
	}
	builder, err := elector.Resolve("", "")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "N2",
		Title: fmt.Sprintf("elector stabilization vs fabric delay: n=%d, %d steps/run, %s Ω∆",
			cfg.N, cfg.Steps, builder.FlagName()),
		Columns: []string{"max delay", "leader", "stabilized at", "leader changes", "dropped"},
		Notes: []string{
			"all processes are candidates; the observer samples the full leader vector every kernel step",
			"each heartbeat read/write is a quorum round, so delay multiplies directly into the elector's observation cadence",
			"'stabilized at' is the last observed leader change within the budget: past delay ~8 churn recurs intermittently for the whole run — the timeliness the elector's analysis assumes is gone, and only the graceful-degradation guarantees remain",
		},
	}
	var scs []Scenario
	for _, delay := range cfg.Delays {
		delay := delay
		scs = append(scs, Scenario{Name: fmt.Sprintf("delay-%d", delay), Run: func(res *Result) error {
			k := sim.New(cfg.N)
			sub, fab, err := net.NewFabric(k,
				net.FabricConfig{Seed: 23, MinDelay: 1, MaxDelay: delay},
				net.Config{})
			if err != nil {
				return err
			}
			el, err := builder.Build(sub, elector.Config{})
			if err != nil {
				return err
			}
			insts := el.Instances()
			obs := omega.NewObserver(insts)
			k.AfterStep(obs.Sample)
			for _, inst := range insts {
				inst.Candidate.Set(true)
			}
			if _, err := k.Run(cfg.Steps); err != nil {
				return err
			}
			k.Shutdown()
			res.Record(k)
			ell := obs.AgreedLeader(ids(0, cfg.N))
			leader := fmt.Sprint(ell)
			if ell == omega.NoLeader {
				leader = "none"
			}
			res.AddRow(delay, leader, obs.StabilizedAt(), obs.Changes(), fab.Dropped())
			return nil
		}})
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}
