package exp

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// The runner must produce byte-identical tables whatever the pool size:
// rows, notes, and stats are committed in scenario order.
func TestRunnerDeterministicOrdering(t *testing.T) {
	build := func() []Scenario {
		scs := make([]Scenario, 20)
		for i := range scs {
			i := i
			scs[i] = Scenario{Name: fmt.Sprintf("s%d", i), Run: func(res *Result) error {
				// Uneven amounts of work so parallel completion order differs
				// from scenario order.
				sum := 0
				for j := 0; j < (i%7)*50_000; j++ {
					sum += j
				}
				_ = sum
				res.AddRow(i, fmt.Sprintf("row-%d", i))
				if i%5 == 0 {
					res.AddNote("note-%d", i)
				}
				return nil
			}}
		}
		return scs
	}
	render := func(parallel int) string {
		tb := &Table{ID: "T", Title: "runner", Columns: []string{"i", "label"}}
		if err := RunScenarios(tb, parallel, build()); err != nil {
			t.Fatal(err)
		}
		return tb.String()
	}
	serial := render(1)
	for _, p := range []int{2, 8, 0} {
		if got := render(p); got != serial {
			t.Errorf("parallel=%d table differs from serial:\n%s\nvs\n%s", p, got, serial)
		}
	}
}

// A panicking scenario is isolated: it becomes that scenario's error, the
// other scenarios still run, and the reported error is the lowest-index
// failure regardless of pool size.
func TestRunnerPanicIsolationAndErrorOrder(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		var ran atomic.Int64
		scs := []Scenario{
			{Name: "ok-0", Run: func(res *Result) error { ran.Add(1); return nil }},
			{Name: "boom", Run: func(res *Result) error { ran.Add(1); panic("kaboom") }},
			{Name: "fail", Run: func(res *Result) error { ran.Add(1); return errors.New("late error") }},
			{Name: "ok-3", Run: func(res *Result) error { ran.Add(1); return nil }},
		}
		tb := &Table{ID: "T", Columns: []string{"x"}}
		err := RunScenarios(tb, parallel, scs)
		if err == nil {
			t.Fatalf("parallel=%d: want error", parallel)
		}
		if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("parallel=%d: want the lowest-index failure (the panic), got: %v", parallel, err)
		}
		if ran.Load() != 4 {
			t.Errorf("parallel=%d: %d scenarios ran, want all 4 despite failures", parallel, ran.Load())
		}
		if len(tb.Rows) != 0 {
			t.Errorf("parallel=%d: rows committed despite error", parallel)
		}
	}
}

// A real experiment renders byte-identically whatever the pool size
// (EXPERIMENTS.md's determinism check, in miniature).
func TestExperimentParallelDeterminism(t *testing.T) {
	render := func(parallel int) string {
		tb, err := E10AbortableComm(E10Config{Steps: 120_000, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return tb.String()
	}
	serial := render(1)
	if got := render(4); got != serial {
		t.Errorf("-parallel 4 table differs from -parallel 1:\n%s\nvs\n%s", got, serial)
	}
}

// Workers clamps to the scenario count and maps <=0 to the CPU count.
func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Errorf("Workers(3) = %d", Workers(3))
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("Workers must be at least 1 for non-positive input")
	}
}
