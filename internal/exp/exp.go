package exp

import "fmt"

// Options selects how an experiment runs.
type Options struct {
	// Quick trims budgets for smoke runs.
	Quick bool
	// Parallel is the scenario worker-pool size (<= 0: one worker per
	// CPU). Tables are byte-identical whatever the value; it only affects
	// wall-clock time.
	Parallel int
}

// Experiment is one runnable experiment.
type Experiment struct {
	// ID is the DESIGN.md experiment id.
	ID string
	// Name is a short slug (used for CSV filenames and CLI selection).
	Name string
	// Run executes the experiment with its default configuration,
	// adjusted by opts.
	Run func(opts Options) (*Table, error)
}

// All returns every experiment, in id order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "degradation", Run: func(o Options) (*Table, error) {
			cfg := E1Config{}
			if o.Quick {
				cfg = E1Config{N: 4, Steps: 1_200_000, Wanted: 8}
			}
			cfg.Parallel = o.Parallel
			return E1Degradation(cfg)
		}},
		{ID: "E2", Name: "baselines", Run: func(o Options) (*Table, error) {
			cfg := E2Config{}
			if o.Quick {
				cfg = E2Config{Steps: 2_000_000}
			}
			cfg.Parallel = o.Parallel
			return E2Baselines(cfg)
		}},
		{ID: "E3", Name: "omega-atomic", Run: func(o Options) (*Table, error) {
			cfg := E3Config{}
			if o.Quick {
				cfg = E3Config{Ns: []int{2, 4}, Steps: 600_000}
			}
			cfg.Parallel = o.Parallel
			return E3OmegaAtomic(cfg)
		}},
		{ID: "E4", Name: "omega-abortable", Run: func(o Options) (*Table, error) {
			cfg := E3Config{}
			if o.Quick {
				cfg = E3Config{Ns: []int{2, 3}, Steps: 1_000_000}
			}
			cfg.Parallel = o.Parallel
			return E4OmegaAbortable(cfg)
		}},
		{ID: "E5", Name: "monitor", Run: func(o Options) (*Table, error) {
			cfg := E5Config{}
			if o.Quick {
				cfg = E5Config{Steps: 200_000}
			}
			cfg.Parallel = o.Parallel
			return E5Monitor(cfg)
		}},
		{ID: "E6", Name: "write-efficiency", Run: func(o Options) (*Table, error) {
			cfg := E6Config{}
			if o.Quick {
				cfg = E6Config{N: 3, Steps: 300_000}
			}
			cfg.Parallel = o.Parallel
			return E6WriteEfficiency(cfg)
		}},
		{ID: "E7", Name: "canonical", Run: func(o Options) (*Table, error) {
			cfg := E7Config{}
			if o.Quick {
				cfg = E7Config{Steps: 1_200_000}
			}
			cfg.Parallel = o.Parallel
			return E7Canonical(cfg)
		}},
		{ID: "E8", Name: "qa-object", Run: func(o Options) (*Table, error) {
			cfg := E8Config{}
			if o.Quick {
				cfg = E8Config{N: 3, OpsEach: 10, Steps: 10_000_000}
			}
			cfg.Parallel = o.Parallel
			return E8QAObject(cfg)
		}},
		{ID: "E9", Name: "consensus", Run: func(o Options) (*Table, error) {
			cfg := E9Config{}
			if o.Quick {
				cfg = E9Config{Ns: []int{3}, Steps: 2_500_000}
			}
			cfg.Parallel = o.Parallel
			return E9Consensus(cfg)
		}},
		{ID: "E10", Name: "abortable-comm", Run: func(o Options) (*Table, error) {
			cfg := E10Config{}
			if o.Quick {
				cfg = E10Config{Steps: 300_000}
			}
			cfg.Parallel = o.Parallel
			return E10AbortableComm(cfg)
		}},
		{ID: "B1", Name: "elector-bakeoff", Run: func(o Options) (*Table, error) {
			cfg := B1Config{}
			if o.Quick {
				cfg = B1Config{N: 3, Steps: 600_000}
			}
			cfg.Parallel = o.Parallel
			return B1ElectorBakeoff(cfg)
		}},
		{ID: "A1", Name: "ablate-dual-heartbeat", Run: func(o Options) (*Table, error) {
			cfg := A1Config{}
			if o.Quick {
				cfg = A1Config{Steps: 200_000}
			}
			cfg.Parallel = o.Parallel
			return A1DualHeartbeat(cfg)
		}},
		{ID: "A2", Name: "ablate-self-punishment", Run: func(o Options) (*Table, error) {
			cfg := A2Config{}
			if o.Quick {
				cfg = A2Config{Steps: 600_000}
			}
			cfg.Parallel = o.Parallel
			return A2SelfPunishment(cfg)
		}},
		{ID: "A3", Name: "ablate-reader-backoff", Run: func(o Options) (*Table, error) {
			cfg := A3Config{}
			if o.Quick {
				cfg = A3Config{Steps: 150_000}
			}
			cfg.Parallel = o.Parallel
			return A3ReaderBackoff(cfg)
		}},
		{ID: "N1", Name: "net-register", Run: func(o Options) (*Table, error) {
			cfg := N1Config{}
			if o.Quick {
				cfg = N1Config{OpsEach: 10, Steps: 2_000_000, Delays: []int64{1, 2}}
			}
			cfg.Parallel = o.Parallel
			return N1NetRegister(cfg)
		}},
		{ID: "N2", Name: "net-delay-sweep", Run: func(o Options) (*Table, error) {
			cfg := N2Config{}
			if o.Quick {
				cfg = N2Config{Steps: 1_500_000, Delays: []int64{1, 8}}
			}
			cfg.Parallel = o.Parallel
			return N2NetDelaySweep(cfg)
		}},
		{ID: "S1", Name: "shard-keyspace", Run: func(o Options) (*Table, error) {
			cfg := S1Config{}
			if o.Quick {
				cfg = S1Config{Steps: 600_000, Shards: []int{1, 4}, Dists: []string{"uniform", "zipf:1.2"}}
			}
			cfg.Parallel = o.Parallel
			return S1ShardKeyspace(cfg)
		}},
	}
}

// ByID returns the experiment with the given id or name.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id || e.Name == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}
