package exp

import "fmt"

// Experiment is one runnable experiment.
type Experiment struct {
	// ID is the DESIGN.md experiment id.
	ID string
	// Name is a short slug (used for CSV filenames and CLI selection).
	Name string
	// Run executes the experiment with its default configuration; quick
	// trims budgets for smoke runs.
	Run func(quick bool) (*Table, error)
}

// All returns every experiment, in id order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "degradation", Run: func(q bool) (*Table, error) {
			cfg := E1Config{}
			if q {
				cfg = E1Config{N: 4, Steps: 1_200_000, Wanted: 8}
			}
			return E1Degradation(cfg)
		}},
		{ID: "E2", Name: "baselines", Run: func(q bool) (*Table, error) {
			cfg := E2Config{}
			if q {
				cfg = E2Config{Steps: 2_000_000}
			}
			return E2Baselines(cfg)
		}},
		{ID: "E3", Name: "omega-atomic", Run: func(q bool) (*Table, error) {
			cfg := E3Config{}
			if q {
				cfg = E3Config{Ns: []int{2, 4}, Steps: 600_000}
			}
			return E3OmegaAtomic(cfg)
		}},
		{ID: "E4", Name: "omega-abortable", Run: func(q bool) (*Table, error) {
			cfg := E3Config{}
			if q {
				cfg = E3Config{Ns: []int{2, 3}, Steps: 1_000_000}
			}
			return E4OmegaAbortable(cfg)
		}},
		{ID: "E5", Name: "monitor", Run: func(q bool) (*Table, error) {
			cfg := E5Config{}
			if q {
				cfg = E5Config{Steps: 200_000}
			}
			return E5Monitor(cfg)
		}},
		{ID: "E6", Name: "write-efficiency", Run: func(q bool) (*Table, error) {
			cfg := E6Config{}
			if q {
				cfg = E6Config{N: 3, Steps: 300_000}
			}
			return E6WriteEfficiency(cfg)
		}},
		{ID: "E7", Name: "canonical", Run: func(q bool) (*Table, error) {
			cfg := E7Config{}
			if q {
				cfg = E7Config{Steps: 1_200_000}
			}
			return E7Canonical(cfg)
		}},
		{ID: "E8", Name: "qa-object", Run: func(q bool) (*Table, error) {
			cfg := E8Config{}
			if q {
				cfg = E8Config{N: 3, OpsEach: 10, Steps: 10_000_000}
			}
			return E8QAObject(cfg)
		}},
		{ID: "E9", Name: "consensus", Run: func(q bool) (*Table, error) {
			cfg := E9Config{}
			if q {
				cfg = E9Config{Ns: []int{3}, Steps: 2_500_000}
			}
			return E9Consensus(cfg)
		}},
		{ID: "E10", Name: "abortable-comm", Run: func(q bool) (*Table, error) {
			cfg := E10Config{}
			if q {
				cfg = E10Config{Steps: 300_000}
			}
			return E10AbortableComm(cfg)
		}},
		{ID: "A1", Name: "ablate-dual-heartbeat", Run: func(q bool) (*Table, error) {
			cfg := A1Config{}
			if q {
				cfg = A1Config{Steps: 200_000}
			}
			return A1DualHeartbeat(cfg)
		}},
		{ID: "A2", Name: "ablate-self-punishment", Run: func(q bool) (*Table, error) {
			cfg := A2Config{}
			if q {
				cfg = A2Config{Steps: 600_000}
			}
			return A2SelfPunishment(cfg)
		}},
		{ID: "A3", Name: "ablate-reader-backoff", Run: func(q bool) (*Table, error) {
			cfg := A3Config{}
			if q {
				cfg = A3Config{Steps: 150_000}
			}
			return A3ReaderBackoff(cfg)
		}},
	}
}

// ByID returns the experiment with the given id or name.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id || e.Name == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}
