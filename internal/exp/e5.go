package exp

import (
	"fmt"

	"tbwf/internal/monitor"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// E5Config parameterizes the activity-monitor property matrix.
type E5Config struct {
	// Steps is the per-run budget (default 400k).
	Steps int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// E5Monitor exercises the activity monitor A(p,q) across the input/behaviour
// regimes of Definition 9 and reports the observed outputs (DESIGN.md E5,
// validating Theorem 10). Process 0 monitors process 1.
func E5Monitor(cfg E5Config) (*Table, error) {
	if cfg.Steps == 0 {
		cfg.Steps = 400_000
	}
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("activity monitor A(p,q) property matrix, %d steps/run", cfg.Steps),
		Columns: []string{"scenario", "final status", "faultCntr @half", "faultCntr @end", "growth", "property"},
		Notes: []string{
			"expected shape: status matches the regime (Props 1–4); faultCntr frozen between half and end in every bounded case (Prop 5) and still growing in the untimely case (Prop 6)",
		},
	}

	type scenario struct {
		name     string
		sched    func() sim.Schedule
		setup    func(k *sim.Kernel, m *monitor.Pair)
		property string
	}
	scenarios := []scenario{
		{
			name:     "monitoring-off",
			sched:    func() sim.Schedule { return sim.RoundRobin() },
			setup:    func(k *sim.Kernel, m *monitor.Pair) { m.ActiveFor.Set(true) },
			property: "P1/P5d: status ?, bounded",
		},
		{
			name:  "q-timely-active",
			sched: func() sim.Schedule { return sim.RoundRobin() },
			setup: func(k *sim.Kernel, m *monitor.Pair) {
				m.Monitoring.Set(true)
				m.ActiveFor.Set(true)
			},
			property: "P2/P4/P5a: status active, bounded",
		},
		{
			name:  "q-willing-stop",
			sched: func() sim.Schedule { return sim.RoundRobin() },
			setup: func(k *sim.Kernel, m *monitor.Pair) {
				m.Monitoring.Set(true)
				m.ActiveFor.Set(true)
				k.AfterStep(func(step int64) {
					if step == 10_000 {
						m.ActiveFor.Set(false)
					}
				})
			},
			property: "P3/P5c: status inactive, bounded",
		},
		{
			name:  "q-crashes",
			sched: func() sim.Schedule { return sim.RoundRobin() },
			setup: func(k *sim.Kernel, m *monitor.Pair) {
				m.Monitoring.Set(true)
				m.ActiveFor.Set(true)
				k.CrashAt(1, 10_000)
			},
			property: "P3/P5b: status inactive, bounded",
		},
		{
			name: "q-untimely-active",
			sched: func() sim.Schedule {
				return sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{
					1: sim.GrowingGaps(50, 100, 1.5),
				})
			},
			setup: func(k *sim.Kernel, m *monitor.Pair) {
				m.Monitoring.Set(true)
				m.ActiveFor.Set(true)
			},
			property: "P6: faultCntr grows without bound",
		},
		{
			name:  "q-flickers-timely",
			sched: func() sim.Schedule { return sim.RoundRobin() },
			setup: func(k *sim.Kernel, m *monitor.Pair) {
				m.Monitoring.Set(true)
				m.ActiveFor.Set(true)
				k.AfterStep(func(step int64) {
					if step%2_000 == 0 {
						m.ActiveFor.Set(!m.ActiveFor.Get())
					}
				})
			},
			property: "P5a with flicker: bounded",
		},
	}

	scs := make([]Scenario, 0, len(scenarios))
	for _, sc := range scenarios {
		sc := sc
		scs = append(scs, Scenario{Name: sc.name, Run: func(res *Result) error {
			k := sim.New(2, sim.WithSchedule(sc.sched()))
			hb := register.NewAtomic(k, "Hb[1,0]", int64(-1))
			m := monitor.NewPair(0, 1, hb)
			k.Spawn(1, "monitored", m.MonitoredTask())
			k.Spawn(0, "monitoring", m.MonitoringTask())
			sc.setup(k, m)
			if _, err := k.Run(cfg.Steps / 2); err != nil {
				return err
			}
			half := m.FaultCntr.Get()
			if _, err := k.Run(cfg.Steps / 2); err != nil {
				return err
			}
			k.Shutdown()
			res.Record(k)
			end := m.FaultCntr.Get()
			growth := "frozen"
			if end > half {
				growth = "growing"
			}
			res.AddRow(sc.name, m.Status.Get(), half, end, growth, sc.property)
			return nil
		}})
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}
