package exp

import (
	"fmt"

	"tbwf/internal/deploy"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// CounterStack is the concrete TBWF stack type used across experiments: a
// shared fetch-and-add counter.
type CounterStack = deploy.Stack[int64, objtype.CounterOp, int64]

// buildCounterStack builds a TBWF counter stack on k.
func buildCounterStack(k *sim.Kernel, cfg deploy.BuildConfig) (*CounterStack, error) {
	return deploy.Build[int64, objtype.CounterOp, int64](deploy.Sim(k), objtype.Counter{}, cfg)
}

// spawnHammers gives every process a task that invokes Add(1) through its
// TBWF client forever.
func spawnHammers(k *sim.Kernel, st *CounterStack) {
	for p := 0; p < k.N(); p++ {
		p := p
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			for {
				st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
			}
		})
	}
}

// untimelyGrowing returns the availability map that makes processes
// 0..u-1 untimely with staggered, geometrically growing gaps.
func untimelyGrowing(u int) map[int]sim.Availability {
	m := make(map[int]sim.Availability, u)
	for p := 0; p < u; p++ {
		m[p] = sim.GrowingGaps(400, int64(600+200*p), 1.5)
	}
	return m
}

// classStats summarizes completions over a set of processes.
type classStats struct {
	min, max, sum int64
	n             int
}

func classify(completed []int64, members []int) classStats {
	s := classStats{}
	for i, p := range members {
		c := completed[p]
		if i == 0 || c < s.min {
			s.min = c
		}
		if c > s.max {
			s.max = c
		}
		s.sum += c
		s.n++
	}
	return s
}

func (s classStats) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.n)
}

// ids returns [from, to).
func ids(from, to int) []int {
	out := make([]int, 0, to-from)
	for p := from; p < to; p++ {
		out = append(out, p)
	}
	return out
}
