package exp

import (
	"strings"
	"testing"
)

func TestBarChartScalesAndLabels(t *testing.T) {
	out := BarChart("demo", []string{"a", "bb"}, []float64{2, 4}, 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[1], "█████ 2") {
		t.Errorf("half-scale bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "██████████ 4") {
		t.Errorf("full-scale bar wrong: %q", lines[2])
	}
}

func TestBarChartTinyNonZeroVisible(t *testing.T) {
	out := BarChart("demo", []string{"x", "y"}, []float64{0.001, 100}, 10)
	if !strings.Contains(out, "x █ ") {
		t.Errorf("tiny value invisible:\n%s", out)
	}
}

func TestStaircaseChartFromE1(t *testing.T) {
	tb := &Table{ID: "E1", Columns: []string{"k timely", "timely done"}}
	tb.AddRow(0, "0/0")
	tb.AddRow(2, "2/2")
	chart, err := StaircaseChart(tb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "k=2") {
		t.Errorf("chart missing label:\n%s", chart)
	}
	if _, err := StaircaseChart(&Table{ID: "E2"}); err == nil {
		t.Error("non-E1 table accepted")
	}
	bad := &Table{ID: "E1"}
	bad.AddRow(0, "garbage")
	if _, err := StaircaseChart(bad); err == nil {
		t.Error("malformed cell accepted")
	}
}
