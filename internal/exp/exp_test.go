package exp

import (
	"strconv"
	"strings"
	"testing"
)

// These tests run every experiment in quick mode and assert the *shapes*
// the paper predicts (DESIGN.md §4). Runs are deterministic (seeded
// schedules, seeded policies), so the assertions are exact reruns, not
// statistical.

func cell(t *testing.T, tb *Table, row, col int) string {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d); table:\n%s", tb.ID, row, col, tb)
	}
	return tb.Rows[row][col]
}

func cellInt(t *testing.T, tb *Table, row, col int) int64 {
	t.Helper()
	v, err := strconv.ParseInt(cell(t, tb, row, col), 10, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q is not an integer", tb.ID, row, col, cell(t, tb, row, col))
	}
	return v
}

func cellFloat(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tb, row, col), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q is not a float", tb.ID, row, col, cell(t, tb, row, col))
	}
	return v
}

// E1: the staircase — every row reports k/k timely processes satisfied and
// a true TBWF verdict.
func TestE1Shape(t *testing.T) {
	tb, err := E1Degradation(E1Config{N: 4, Steps: 1_200_000, Wanted: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("want 5 rows (k=0..4), got %d", len(tb.Rows))
	}
	for k, row := range tb.Rows {
		want := strconv.Itoa(k) + "/" + strconv.Itoa(k)
		if row[1] != want {
			t.Errorf("k=%d: timely done = %s, want %s\n%s", k, row[1], want, tb)
		}
		if row[5] != "true" {
			t.Errorf("k=%d: TBWF verdict %s, want true", k, row[5])
		}
	}
}

// E2: TBWF's 2nd/1st ratio stays near 1 with one untimely process; both
// boosters collapse below 0.5.
func TestE2Shape(t *testing.T) {
	tb, err := E2Baselines(E2Config{Steps: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	ratios := map[string]float64{}
	for _, row := range tb.Rows {
		ratios[row[0]+"/"+row[1]] = mustFloat(t, row[4])
	}
	if r := ratios["tbwf/one-untimely"]; r < 0.6 {
		t.Errorf("tbwf collapsed under one untimely process: ratio %.3f", r)
	}
	for _, sys := range []string{"panic-booster", "ack-booster"} {
		if r := ratios[sys+"/all-timely"]; r < 0.6 {
			t.Errorf("%s failed even with everyone timely: ratio %.3f", sys, r)
		}
		if r := ratios[sys+"/one-untimely"]; r > 0.5 {
			t.Errorf("%s did not collapse: ratio %.3f", sys, r)
		}
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a float: %q", s)
	}
	return v
}

// E3/E4: every scenario ends "as specified" with a concrete leader.
func TestE3E4Shape(t *testing.T) {
	for _, run := range []func() (*Table, error){
		func() (*Table, error) { return E3OmegaAtomic(E3Config{Ns: []int{2, 4}, Steps: 600_000}) },
		func() (*Table, error) { return E4OmegaAbortable(E3Config{Ns: []int{2, 3}, Steps: 1_000_000}) },
	} {
		tb, err := run()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tb.Rows {
			last := row[len(row)-1]
			if last != "true" {
				t.Errorf("%s: scenario %q not as specified:\n%s", tb.ID, row[1], tb)
			}
			if row[2] == "none" {
				t.Errorf("%s: scenario %q elected nobody", tb.ID, row[1])
			}
		}
	}
}

// E5: statuses and growth classes match Definition 9 exactly.
func TestE5Shape(t *testing.T) {
	tb, err := E5Monitor(E5Config{Steps: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]string{ // scenario -> {status, growth}
		"monitoring-off":    {"?", "frozen"},
		"q-timely-active":   {"active", "frozen"},
		"q-willing-stop":    {"inactive", "frozen"},
		"q-crashes":         {"inactive", "frozen"},
		"q-untimely-active": {"inactive", "growing"},
		"q-flickers-timely": {"", "frozen"}, // status depends on the phase at cut-off
	}
	for _, row := range tb.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Fatalf("unknown scenario %q", row[0])
		}
		if w[0] != "" && row[1] != w[0] {
			t.Errorf("%s: status %q, want %q", row[0], row[1], w[0])
		}
		if row[4] != w[1] {
			t.Errorf("%s: growth %q, want %q", row[0], row[4], w[1])
		}
	}
}

// E6: zero non-leader writes after stabilization.
func TestE6Shape(t *testing.T) {
	tb, err := E6WriteEfficiency(E6Config{N: 3, Steps: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tb, 1, 4); got != "0" {
		t.Errorf("non-leader writes after stabilization = %s, want 0\n%s", got, tb)
	}
	if cellInt(t, tb, 1, 2) == 0 {
		t.Error("leader stopped writing entirely")
	}
}

// E7: canonical top share ≈ 1/n; non-canonical ≈ 1.
func TestE7Shape(t *testing.T) {
	tb, err := E7Canonical(E7Config{Steps: 1_200_000})
	if err != nil {
		t.Fatal(err)
	}
	if s := cellFloat(t, tb, 0, 3); s > 0.5 {
		t.Errorf("canonical run not fair: top share %.3f", s)
	}
	if s := cellFloat(t, tb, 1, 3); s < 0.9 {
		t.Errorf("non-canonical run not monopolized: top share %.3f", s)
	}
}

// E8: every policy finishes all ops with a consistent final state, and the
// strongest adversary costs the most calls per op.
func TestE8Shape(t *testing.T) {
	tb, err := E8QAObject(E8Config{N: 3, OpsEach: 10, Steps: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	var worst, best float64
	for i, row := range tb.Rows {
		if row[6] != "true" {
			t.Errorf("policy %s/%s: inconsistent final state", row[0], row[1])
		}
		if cellInt(t, tb, i, 2) != 30 {
			t.Errorf("policy %s/%s: completed %s/30 ops", row[0], row[1], row[2])
		}
		cpo := cellFloat(t, tb, i, 5)
		if i == 0 {
			worst = cpo
		}
		best = cpo
	}
	if worst <= best {
		t.Errorf("always-abort (%.1f calls/op) should cost more than prob-0.1 (%.1f)", worst, best)
	}
}

// E9: agreement + validity + termination in every row.
func TestE9Shape(t *testing.T) {
	tb, err := E9Consensus(E9Config{Ns: []int{3}, Steps: 2_500_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		for col := 2; col <= 4; col++ {
			if row[col] != "true" {
				t.Errorf("n=%s %s: column %q = %s, want true", row[0], row[1], tb.Columns[col], row[col])
			}
		}
	}
}

// E10: every row as specified; the timely writer delivers, the others
// demonstrably do not in these constructed runs.
func TestE10Shape(t *testing.T) {
	tb, err := E10AbortableComm(E10Config{Steps: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[3] != "true" {
			t.Errorf("%s/%s: not as specified\n%s", row[0], row[1], tb)
		}
	}
	if got := cell(t, tb, 0, 2); got != "delivered" {
		t.Errorf("timely writer: %s", got)
	}
	for row := 1; row <= 2; row++ {
		if got := cell(t, tb, row, 2); !strings.HasPrefix(got, "not delivered") {
			t.Errorf("row %d: %s, want non-delivery in the constructed run", row, got)
		}
	}
}

// A1: the single-register receiver is fooled; the dual one is not.
func TestA1Shape(t *testing.T) {
	tb, err := A1DualHeartbeat(A1Config{Steps: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tb, 0, 2); got != "suspects the slow sender" {
		t.Errorf("dual receiver: %s", got)
	}
	if got := cell(t, tb, 1, 2); got != "fooled: believes the sender timely" {
		t.Errorf("single receiver: %s", got)
	}
}

// A2: self-punishment stops churn from stealing leadership.
func TestA2Shape(t *testing.T) {
	tb, err := A2SelfPunishment(A2Config{Steps: 600_000})
	if err != nil {
		t.Fatal(err)
	}
	if got := cellInt(t, tb, 0, 2); got > 2 {
		t.Errorf("with self-punishment: %d second-half changes, want ~0", got)
	}
	if got := cellInt(t, tb, 1, 2); got < 10 {
		t.Errorf("ablated variant should oscillate, saw only %d second-half changes", got)
	}
}

// A3: the back-off is what defeats the phase-locked adversary.
func TestA3Shape(t *testing.T) {
	tb, err := A3ReaderBackoff(A3Config{Steps: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tb, 0, 1); got != "delivered" {
		t.Errorf("with back-off: %s", got)
	}
	if got := cell(t, tb, 1, 1); got != "not delivered" {
		t.Errorf("without back-off: %s", got)
	}
}

// S1: sharding + batching under skew — every cell of the sweep completes
// ops on both the timely and the flickering process, one shard folds the
// whole burst into one QA round, and skew raises the hot shard's mean
// batch above the uniform run's.
func TestS1Shape(t *testing.T) {
	tb, err := S1ShardKeyspace(S1Config{Steps: 600_000, Shards: []int{1, 4}, Dists: []string{"uniform", "zipf:1.2"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("want 4 rows (2 shard counts x 2 dists), got %d\n%s", len(tb.Rows), tb)
	}
	batch := map[string]float64{}
	for i, row := range tb.Rows {
		ops, timely, slow := cellInt(t, tb, i, 2), cellInt(t, tb, i, 6), cellInt(t, tb, i, 7)
		if timely <= 0 || slow <= 0 || ops != timely+slow {
			t.Errorf("s=%s/%s: ops %d != timely %d + slow %d (or a side starved)",
				row[0], row[1], ops, timely, slow)
		}
		if timely <= slow {
			t.Errorf("s=%s/%s: flickering process out-produced the timely ones (%d vs %d)",
				row[0], row[1], slow, timely)
		}
		batch[row[0]+"/"+row[1]] = cellFloat(t, tb, i, 4)
	}
	if b := batch["1/uniform"]; b < 2 {
		t.Errorf("one shard should fold the whole burst into one round: mean batch %.2f", b)
	}
	if u, z := batch["4/uniform"], batch["4/zipf:1.2"]; z <= u {
		t.Errorf("skew should raise the hot shard's mean batch: zipf %.2f <= uniform %.2f", z, u)
	}
}

// The registry must resolve ids and names and reject junk.
func TestRegistry(t *testing.T) {
	if len(All()) != 17 {
		t.Fatalf("want 17 experiments, got %d", len(All()))
	}
	if _, err := ByID("B1"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("net-delay-sweep"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("E1"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("degradation"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

// Table rendering round-trips content into both ASCII and CSV.
func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Columns: []string{"a", "b"}}
	tb.AddRow(1, "x,y")
	tb.AddRow(2.5, `quote"inside`)
	s := tb.String()
	if !strings.Contains(s, "T — demo") || !strings.Contains(s, "x,y") {
		t.Errorf("ascii rendering broken:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"quote""inside"`) {
		t.Errorf("csv escaping broken:\n%s", csv)
	}
}
