package exp

import (
	"fmt"

	"tbwf/internal/baseline"
	"tbwf/internal/deploy"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// E2Config parameterizes the baseline comparison.
type E2Config struct {
	// N is the process count (default 3).
	N int
	// Steps is the per-run budget (default 4M).
	Steps int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

func (c *E2Config) defaults() {
	if c.N == 0 {
		c.N = 3
	}
	if c.Steps == 0 {
		c.Steps = 4_000_000
	}
}

// Schedule seeds for E2's seeded random bases, surfaced in the table notes
// (the scenarios construct their own schedule values: the rng inside a
// seeded schedule is mutable and must not be shared across workers).
const (
	e2BaseScheduleSeed     = 9
	e2UntimelyScheduleSeed = 17
)

// invokerClient is what the E2 drivers need from any of the systems.
type invokerClient interface {
	Invoke(p prim.Proc, op objtype.CounterOp) int64
	Completed() int64
}

// E2Baselines compares the TBWF stack against the non-gracefully-degrading
// boosters (DESIGN.md E2, validating Sections 1.2 and 2). Every system
// runs the same workload twice — all processes timely, then with process 0
// untimely — and the table reports the *timely* processes' completions in
// the first and second half of the budget. A gracefully degrading system
// keeps the two halves comparable; the boosters' second half collapses.
//
// The baselines run under a weaker (probabilistic) abort adversary than
// the TBWF stack tolerates — under the strongest adversary their
// unarbitrated phases livelock even with everyone timely. The panic
// booster's untimely run is a *constructed* run (the paper: "it is not
// difficult to construct runs..."): process 0's gaps begin exactly when it
// holds the panic priority.
func E2Baselines(cfg E2Config) (*Table, error) {
	cfg.defaults()
	t := &Table{
		ID:    "E2",
		Title: fmt.Sprintf("boosters vs TBWF, n=%d, %d steps, timely-class ops per half", cfg.N, cfg.Steps),
		Columns: []string{
			"system", "scenario", "1st half", "2nd half", "2nd/1st",
		},
		Notes: []string{
			"expected shape: TBWF ratio ≈ 1 in both scenarios; boosters' ratio ≈ 1 when all timely, ≪ 1 with one untimely process",
			"of-only guarantees nothing under contention; its numbers are luck, not a guarantee",
			fmt.Sprintf("schedule seeds: %d (all-timely base), %d (one-untimely base); rerunning with these seeds reproduces the rows exactly",
				e2BaseScheduleSeed, e2UntimelyScheduleSeed),
		},
	}

	// weak is the probabilistic abort adversary the baselines run under.
	// Constructed per scenario: the policy holds a mutable rng, so sharing
	// one instance across parallel scenarios would race.
	weak := func() register.AbOption {
		return register.WithAbortPolicy(register.ProbAbort(0.5, 23))
	}

	type setup struct {
		name          string
		build         func(k *sim.Kernel) ([]invokerClient, error)
		untimelySched func(clients *[]invokerClient) sim.Schedule
	}
	oblivious := func(*[]invokerClient) sim.Schedule {
		return sim.Restrict(sim.Random(e2UntimelyScheduleSeed, nil), map[int]sim.Availability{
			0: sim.GrowingGaps(400, 800, 1.6),
		})
	}
	setups := []setup{
		{
			name: "tbwf",
			build: func(k *sim.Kernel) ([]invokerClient, error) {
				st, err := buildCounterStack(k, deploy.BuildConfig{})
				if err != nil {
					return nil, err
				}
				out := make([]invokerClient, cfg.N)
				for p := range out {
					out[p] = st.Clients[p]
				}
				return out, nil
			},
			untimelySched: oblivious,
		},
		{
			name: "of-only",
			build: func(k *sim.Kernel) ([]invokerClient, error) {
				cs, err := baseline.BuildOF[int64, objtype.CounterOp, int64](deploy.Sim(k), objtype.Counter{}, weak())
				if err != nil {
					return nil, err
				}
				out := make([]invokerClient, cfg.N)
				for p := range out {
					out[p] = cs[p]
				}
				return out, nil
			},
			untimelySched: oblivious,
		},
		{
			name: "panic-booster",
			build: func(k *sim.Kernel) ([]invokerClient, error) {
				cs, err := baseline.BuildPanic[int64, objtype.CounterOp, int64](deploy.Sim(k), objtype.Counter{}, weak())
				if err != nil {
					return nil, err
				}
				out := make([]invokerClient, cfg.N)
				for p := range out {
					out[p] = cs[p]
				}
				return out, nil
			},
			untimelySched: func(clients *[]invokerClient) sim.Schedule {
				// Constructed run: suppress process 0 (growing gaps with
				// recovery bursts) whenever it advertises a panic
				// timestamp.
				var gapUntil, burstUntil int64
				gap := int64(10_000)
				const burst = 5_000
				avail := func(step int64) bool {
					if step < gapUntil {
						return false
					}
					if step < burstUntil {
						return true
					}
					if len(*clients) > 0 {
						pc := (*clients)[0].(*baseline.PanicClient[int64, objtype.CounterOp, int64])
						if pc.Panicking() {
							gapUntil = step + gap
							gap *= 2
							burstUntil = gapUntil + burst
							return false
						}
					}
					return true
				}
				return sim.Restrict(sim.Random(e2UntimelyScheduleSeed, nil), map[int]sim.Availability{0: avail})
			},
		},
		{
			name: "ack-booster",
			build: func(k *sim.Kernel) ([]invokerClient, error) {
				cs, err := baseline.BuildAck[int64, objtype.CounterOp, int64](deploy.Sim(k), objtype.Counter{}, weak())
				if err != nil {
					return nil, err
				}
				out := make([]invokerClient, cfg.N)
				for p := range out {
					out[p] = cs[p]
				}
				return out, nil
			},
			untimelySched: oblivious,
		},
	}

	var scs []Scenario
	for _, s := range setups {
		for _, scenario := range []string{"all-timely", "one-untimely"} {
			s, scenario := s, scenario
			scs = append(scs, Scenario{Name: s.name + "/" + scenario, Run: func(res *Result) error {
				var clients []invokerClient
				var sched sim.Schedule = sim.Random(e2BaseScheduleSeed, nil)
				if scenario == "one-untimely" {
					sched = s.untimelySched(&clients)
				}
				k := sim.New(cfg.N, sim.WithSchedule(sched))
				cs, err := s.build(k)
				if err != nil {
					return err
				}
				clients = cs
				for p := 0; p < cfg.N; p++ {
					p := p
					k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
						for {
							clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
						}
					})
				}
				if _, err := k.Run(cfg.Steps / 2); err != nil {
					return err
				}
				var first int64
				for p := 1; p < cfg.N; p++ { // timely class: everyone but 0
					first += clients[p].Completed()
				}
				if _, err := k.Run(cfg.Steps / 2); err != nil {
					return err
				}
				k.Shutdown()
				res.Record(k)
				var total int64
				for p := 1; p < cfg.N; p++ {
					total += clients[p].Completed()
				}
				second := total - first
				ratio := 0.0
				if first > 0 {
					ratio = float64(second) / float64(first)
				}
				res.AddRow(s.name, scenario, first, second, ratio)
				return nil
			}})
		}
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}
