// Package exp is the experiment harness: it builds the scenarios behind
// experiments E1–E10 of DESIGN.md, runs them on the simulation kernel, and
// renders the tables that EXPERIMENTS.md records and cmd/tbwf-bench
// regenerates.
//
// The paper is theory-only — it has no empirical tables of its own — so
// each experiment here validates one stated claim or theorem; the mapping
// is in DESIGN.md §4.
package exp

import (
	"fmt"
	"strings"

	"tbwf/internal/sim"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment id (e.g. "E1").
	ID string
	// Title is a one-line description.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Notes carry the expected shape and any caveats.
	Notes []string
	// Stats aggregates the kernel execution statistics of the scenarios
	// behind the table (not rendered; frontends report it under -stats).
	Stats sim.RunStats
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", max(total-2, 1)))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteString("\n")
	}
	return b.String()
}
