package exp

import (
	"fmt"
	"strings"
)

// BarChart renders a horizontal ASCII bar chart — the "figure" form of a
// table's series column. Values must be non-negative; bars are scaled to
// width characters.
func BarChart(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if i < len(labels) && len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		if v > 0 && n == 0 {
			n = 1 // visible trace for tiny non-zero values
		}
		fmt.Fprintf(&b, "%-*s %s %.4g\n", maxLabel, label, strings.Repeat("█", n), v)
	}
	return b.String()
}

// StaircaseChart renders the E1 figure: completed timely processes per k.
// It re-derives the series from an E1 table.
func StaircaseChart(t *Table) (string, error) {
	if t.ID != "E1" {
		return "", fmt.Errorf("exp: StaircaseChart wants an E1 table, got %s", t.ID)
	}
	labels := make([]string, len(t.Rows))
	values := make([]float64, len(t.Rows))
	for i, row := range t.Rows {
		labels[i] = "k=" + row[0]
		// "done/total" -> done
		var done, total int
		if _, err := fmt.Sscanf(row[1], "%d/%d", &done, &total); err != nil {
			return "", fmt.Errorf("exp: bad cell %q: %w", row[1], err)
		}
		values[i] = float64(done)
	}
	return BarChart("timely processes that completed their target, by k timely", labels, values, 40), nil
}
