package exp

import (
	"fmt"

	"tbwf/internal/consensus"
	"tbwf/internal/deploy"
	"tbwf/internal/omegaab"
	"tbwf/internal/prim"
	"tbwf/internal/qa"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// e8ScheduleSeed is the seeded random schedule every E8 row runs under,
// surfaced in the table notes (each scenario constructs its own schedule
// value: the rng inside is mutable and must not be shared across workers).
const e8ScheduleSeed = 5

// E8Config parameterizes the query-abortable object sweep.
type E8Config struct {
	// N is the client count (default 4).
	N int
	// OpsEach is the per-client operation target (default 40).
	OpsEach int
	// Steps is the run budget (default 40M; calls are cheap, budgets
	// generous so every fate settles).
	Steps int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// E8QAObject sweeps abort/effect policies over the query-abortable object
// under concurrent clients and reports the call economy (DESIGN.md E8,
// validating the Section 7 substrate: wait-freedom with ⊥, exact query
// fates). Every client drives the Figure 8 protocol for a fixed number of
// operations; the table shows how many O_QA calls each completed operation
// cost and how often calls aborted.
func E8QAObject(cfg E8Config) (*Table, error) {
	if cfg.N == 0 {
		cfg.N = 4
	}
	if cfg.OpsEach == 0 {
		cfg.OpsEach = 40
	}
	if cfg.Steps == 0 {
		cfg.Steps = 40_000_000
	}
	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("query-abortable object under contention, n=%d, %d ops/client", cfg.N, cfg.OpsEach),
		Columns: []string{"abort policy", "effect policy", "ops done", "calls", "aborted calls", "calls/op", "final state ok"},
		Notes: []string{
			"expected shape: every policy preserves safety (final state equals applied ops); weaker adversaries cost fewer calls per operation",
			fmt.Sprintf("schedule seed %d for every row: the policies compete under one identical schedule", e8ScheduleSeed),
		},
	}
	type policy struct {
		name, effName string
		// opts builds the abort adversary; a factory because the
		// probabilistic policies hold mutable rngs that must not be shared
		// across parallel scenarios.
		opts func() []register.AbOption
	}
	policies := []policy{
		{"always-abort", "no-effect", func() []register.AbOption { return nil }},
		{"prob-0.9", "no-effect", func() []register.AbOption {
			return []register.AbOption{register.WithAbortPolicy(register.ProbAbort(0.9, 41))}
		}},
		{"prob-0.5", "no-effect", func() []register.AbOption {
			return []register.AbOption{register.WithAbortPolicy(register.ProbAbort(0.5, 42))}
		}},
		{"prob-0.5", "effect-0.5", func() []register.AbOption {
			return []register.AbOption{
				register.WithAbortPolicy(register.ProbAbort(0.5, 43)),
				register.WithEffectPolicy(register.ProbEffect(0.5, 44)),
			}
		}},
		{"prob-0.1", "no-effect", func() []register.AbOption {
			return []register.AbOption{register.WithAbortPolicy(register.ProbAbort(0.1, 45))}
		}},
	}
	var scs []Scenario
	for _, pol := range policies {
		pol := pol
		scs = append(scs, Scenario{Name: pol.name + "/" + pol.effName, Run: func(res *Result) error {
			k := sim.New(cfg.N, sim.WithSchedule(sim.Random(e8ScheduleSeed, nil)))
			so, err := qa.NewSim[int64, int64, int64](k,
				qa.TypeFuncs[int64, int64, int64]{
					InitFn:  func() int64 { return 0 },
					ApplyFn: func(s, d int64) (int64, int64) { return s + d, s },
				}, pol.opts()...)
			if err != nil {
				return err
			}
			var done, calls, aborted int64
			for p := 0; p < cfg.N; p++ {
				p := p
				k.Spawn(p, "client", func(pp prim.Proc) {
					h := so.Handle(p)
					for i := 0; i < cfg.OpsEach; i++ {
						doQuery := false
						for {
							if doQuery {
								calls++
								_, out := h.Query()
								if out == qa.QueryApplied {
									done++
									break
								}
								if out == qa.QueryNotApplied {
									doQuery = false
								} else {
									aborted++
								}
							} else {
								calls++
								if _, ok := h.Invoke(1); ok {
									done++
									break
								}
								aborted++
								doQuery = true
							}
							pp.Step()
						}
					}
				})
			}
			if _, err := k.Run(cfg.Steps); err != nil {
				return err
			}
			// Solo verification of the final state.
			var final int64
			var okSync bool
			k.Spawn(0, "verifier", func(pp prim.Proc) {
				final, okSync = so.Handle(0).Sync()
			})
			if _, err := k.Run(5_000_000); err != nil {
				return err
			}
			k.Shutdown()
			res.Record(k)
			callsPerOp := 0.0
			if done > 0 {
				callsPerOp = float64(calls) / float64(done)
			}
			stateOK := okSync && final == done
			res.AddRow(pol.name, pol.effName, done, calls, aborted, callsPerOp, stateOK)
			return nil
		}})
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}

// E9Config parameterizes the consensus experiment.
type E9Config struct {
	// Ns are the system sizes (default 3, 5).
	Ns []int
	// Steps is the per-run budget (default 4M).
	Steps int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// E9Consensus runs consensus from abortable registers across system sizes
// and timeliness mixes (DESIGN.md E9, validating the Section 1.2 closing
// remark). It reports when each class of process decided.
func E9Consensus(cfg E9Config) (*Table, error) {
	if len(cfg.Ns) == 0 {
		cfg.Ns = []int{3, 5}
	}
	if cfg.Steps == 0 {
		cfg.Steps = 4_000_000
	}
	t := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("consensus from abortable registers + Ω, %d steps/run", cfg.Steps),
		Columns: []string{"n", "scenario", "all decided", "agreement", "validity", "decided at (first/last)"},
		Notes: []string{
			"expected shape: agreement and validity always; termination for every correct process, with one timely process sufficing",
		},
	}
	var scs []Scenario
	for _, n := range cfg.Ns {
		for _, scenario := range []string{"all-timely", "one-timely"} {
			n, scenario := n, scenario
			scs = append(scs, Scenario{Name: fmt.Sprintf("n=%d/%s", n, scenario), Run: func(res *Result) error {
				sched := sim.Schedule(sim.RoundRobin())
				if scenario == "one-timely" {
					sched = sim.Restrict(sim.RoundRobin(), untimelyGrowing(n-1))
				}
				k := sim.New(n, sim.WithSchedule(sched))
				proposals := make([]int64, n)
				for p := range proposals {
					proposals[p] = int64(100 + p)
				}
				parts, err := consensus.Build(deploy.Sim(k), proposals, false)
				if err != nil {
					return err
				}
				firstAt, lastAt := int64(-1), int64(-1)
				decidedKnown := make([]bool, n)
				k.AfterStep(func(step int64) {
					for p := 0; p < n; p++ {
						if !decidedKnown[p] && parts[p].Decided.Get() {
							decidedKnown[p] = true
							if firstAt < 0 {
								firstAt = step
							}
							lastAt = step
						}
					}
				})
				if _, err := k.Run(cfg.Steps); err != nil {
					return err
				}
				k.Shutdown()
				res.Record(k)
				val, all, agree := consensus.DecidedAll(parts, ids(0, n))
				valid := false
				for _, pr := range proposals {
					valid = valid || pr == val
				}
				res.AddRow(n, scenario, all, agree, valid && all, fmt.Sprintf("%d/%d", firstAt, lastAt))
				return nil
			}})
		}
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}

// E10Config parameterizes the abortable-communication experiment.
type E10Config struct {
	// Steps is the per-run budget (default 600k).
	Steps int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// E10AbortableComm exercises the two Section 6 communication substrates
// in isolation (DESIGN.md E10, validating Figures 4 and 5): the Messenger
// delivers the final value of a variable that stops changing iff the
// writer is reader-timely, and the dual-register heartbeat classifies
// senders by their timeliness.
func E10AbortableComm(cfg E10Config) (*Table, error) {
	if cfg.Steps == 0 {
		cfg.Steps = 600_000
	}
	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("abortable-register communication substrates, %d steps/run", cfg.Steps),
		Columns: []string{"mechanism", "writer/sender", "outcome", "as specified"},
		Notes: []string{
			"expected shape: messenger delivers exactly when the writer is timely and the value freezes; heartbeat keeps a timely sender active, drops crashed and untimely ones",
		},
	}

	var scs []Scenario

	// Messenger scenarios: (writer regime) -> delivered final value?
	for _, sc := range []struct {
		name  string
		avail func() sim.Availability
		crash int64
		want  bool
	}{
		{"timely writer", nil, 0, true},
		// Bursts of 2 steps: the writer's single register write spans a
		// whole gap, so the reader's probes always overlap it and the
		// write itself keeps aborting — the run the paper describes where
		// an untimely writer communicates nothing.
		{"untimely writer", func() sim.Availability { return sim.GrowingGaps(2, 30_000, 2.0) }, 0, false},
		// Crash before the first write's response step: nothing was ever
		// communicated.
		{"crashed writer", nil, 2, false},
	} {
		sc := sc
		scs = append(scs, Scenario{Name: "messenger/" + sc.name, Run: func(res *Result) error {
			k := sim.New(2)
			if sc.avail != nil {
				k = sim.New(2, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{0: sc.avail()})))
			}
			out := register.NewAbortableSWSR(k, "Msg[0,1]", 0, 0, 1)
			m0, err := omegaab.NewMessenger(0, 2, []prim.AbortableRegister[int]{nil, out}, []prim.AbortableRegister[int]{nil, out}, 0)
			if err != nil {
				return err
			}
			// Reader side needs its own messenger with in[0] = the register.
			m1, err := omegaab.NewMessenger(1, 2, []prim.AbortableRegister[int]{out, nil}, []prim.AbortableRegister[int]{out, nil}, 0)
			if err != nil {
				return err
			}
			const finalValue = 77
			k.Spawn(0, "writer", func(p prim.Proc) {
				msgTo := []int{0, finalValue}
				for {
					m0.WriteMsgs(msgTo)
					p.Step()
				}
			})
			var got []int
			k.Spawn(1, "reader", func(p prim.Proc) {
				for {
					got = m1.ReadMsgs()
					p.Step()
				}
			})
			if sc.crash > 0 {
				k.CrashAt(0, sc.crash)
			}
			if _, err := k.Run(cfg.Steps); err != nil {
				return err
			}
			k.Shutdown()
			res.Record(k)
			delivered := len(got) > 0 && got[0] == finalValue
			outcome := "not delivered"
			if delivered {
				outcome = "delivered"
			}
			// For untimely/crashed writers delivery is not guaranteed but not
			// forbidden; the specified behaviour is only the timely case.
			asSpec := true
			if sc.want {
				asSpec = delivered
			} else if !delivered {
				outcome += " (none guaranteed)"
			}
			res.AddRow("messenger", sc.name, outcome, asSpec)
			return nil
		}})
	}

	// Heartbeat scenarios: (sender regime) -> receiver's final view.
	for _, sc := range []struct {
		name   string
		avail  func() sim.Availability
		crash  int64
		expect string
	}{
		{"timely sender", nil, 0, "active"},
		{"untimely sender", func() sim.Availability { return sim.GrowingGaps(100, 50_000, 2.0) }, 0, "suspected"},
		{"crashed sender", nil, 2_000, "suspected"},
	} {
		sc := sc
		scs = append(scs, Scenario{Name: "heartbeat/" + sc.name, Run: func(res *Result) error {
			k := sim.New(2)
			if sc.avail != nil {
				k = sim.New(2, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{0: sc.avail()})))
			}
			sys, err := omegaab.Build(deploy.Sim(k))
			if err != nil {
				return err
			}
			// Drive the full Ω∆ with both processes candidates: the heartbeat
			// layer is what classifies the sender.
			sys.Instances[0].Candidate.Set(true)
			sys.Instances[1].Candidate.Set(true)
			if sc.crash > 0 {
				k.CrashAt(0, sc.crash)
			}
			if _, err := k.Run(cfg.Steps); err != nil {
				return err
			}
			k.Shutdown()
			res.Record(k)
			// Receiver 1's verdict: does it believe 0 leads, or itself?
			leader := sys.Instances[1].Leader.Get()
			view := "suspected"
			if leader == 0 {
				view = "active"
			}
			res.AddRow("heartbeat", sc.name, view, view == sc.expect)
			return nil
		}})
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}
