package exp

import (
	"fmt"

	"tbwf/internal/core"
	"tbwf/internal/deploy"
	"tbwf/internal/sim"
)

// E1Config parameterizes the graceful-degradation sweep.
type E1Config struct {
	// N is the process count (default 8).
	N int
	// Steps is the per-run budget (default 3M).
	Steps int64
	// Wanted is the per-process operation target used for the
	// "satisfied" verdict (default 20).
	Wanted int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

func (c *E1Config) defaults() {
	if c.N == 0 {
		c.N = 8
	}
	if c.Steps == 0 {
		c.Steps = 5_000_000
	}
	if c.Wanted == 0 {
		c.Wanted = 20
	}
}

// E1Degradation runs the graceful-degradation sweep (DESIGN.md E1,
// validating Section 1.1): for k = 0..n, k timely processes and n−k
// untimely ones all hammer a TBWF counter for a fixed step budget. The
// paper predicts a staircase: every timely process completes its target
// (the k timely are wait-free in the run) regardless of how many untimely
// processes compete; untimely processes may lag arbitrarily.
//
// The untimely processes get the LOW ids: the (counter, id) tie-break
// favors them, so this is the adversarial corner.
func E1Degradation(cfg E1Config) (*Table, error) {
	cfg.defaults()
	t := &Table{
		ID:    "E1",
		Title: fmt.Sprintf("graceful degradation, n=%d, %d steps, target %d ops/proc", cfg.N, cfg.Steps, cfg.Wanted),
		Columns: []string{
			"k timely", "timely done", "timely min ops", "timely mean ops",
			"untimely mean ops", "TBWF holds",
		},
		Notes: []string{
			"expected shape: 'timely done' = k for every k (staircase to wait-freedom)",
			"untimely processes are allowed anything; they must merely not hinder the timely ones",
		},
	}
	scs := make([]Scenario, 0, cfg.N+1)
	for k := 0; k <= cfg.N; k++ {
		k := k
		scs = append(scs, Scenario{Name: fmt.Sprintf("k=%d", k), Run: func(res *Result) error {
			u := cfg.N - k // untimely count, at ids 0..u-1
			kern := sim.New(cfg.N, sim.WithSchedule(
				sim.Restrict(sim.RoundRobin(), untimelyGrowing(u))))
			st, err := buildCounterStack(kern, deploy.BuildConfig{})
			if err != nil {
				return err
			}
			spawnHammers(kern, st)
			if _, err := kern.Run(cfg.Steps); err != nil {
				return err
			}
			kern.Shutdown()
			res.Record(kern)

			completed := st.CompletedOps()
			wanted := make([]int64, cfg.N)
			for p := range wanted {
				wanted[p] = cfg.Wanted
			}
			timeliness, err := kern.Trace().Analyze()
			if err != nil {
				return err
			}
			rep, err := core.Evaluate(timeliness, completed, wanted, 256)
			if err != nil {
				return err
			}
			done, _ := rep.TimelyCompleted()
			timely := classify(completed, ids(u, cfg.N))
			untimely := classify(completed, ids(0, u))
			res.AddRow(k, fmt.Sprintf("%d/%d", done, k), timely.min, timely.mean(), untimely.mean(), rep.TBWFHolds())
			return nil
		}})
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}
