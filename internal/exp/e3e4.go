package exp

import (
	"fmt"

	"tbwf/internal/deploy"
	"tbwf/internal/omega"
	"tbwf/internal/omegaab"
	"tbwf/internal/sim"
)

// E3Config parameterizes the Ω∆ stabilization experiments.
type E3Config struct {
	// Ns are the system sizes to sweep (default 2, 4, 8 for E3;
	// E4 trims to ≤ 6).
	Ns []int
	// Steps is the per-run budget (default 1M for E3, 2M for E4).
	Steps int64
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// omegaScenario is one stabilization scenario.
type omegaScenario struct {
	name string
	// sched builds the schedule for n processes.
	sched func(n int) sim.Schedule
	// drive optionally manipulates candidacies during the run.
	drive func(k *sim.Kernel, instances []*omega.Instance)
	// expectLeader restricts who may be the stable leader (nil = any
	// permanent candidate).
	expectLeader func(n int) []int
}

func omegaScenarios() []omegaScenario {
	return []omegaScenario{
		{
			name:  "all-timely-permanent",
			sched: func(n int) sim.Schedule { return sim.RoundRobin() },
		},
		{
			name: "one-timely-rest-untimely",
			sched: func(n int) sim.Schedule {
				return sim.Restrict(sim.RoundRobin(), untimelyGrowing(n-1))
			},
			expectLeader: func(n int) []int { return []int{n - 1} },
		},
		{
			name:  "repeated-candidate-churn",
			sched: func(n int) sim.Schedule { return sim.RoundRobin() },
			drive: func(k *sim.Kernel, instances []*omega.Instance) {
				// Process 0 joins and leaves the competition forever; the
				// self-punishment rule must keep it from holding
				// leadership.
				k.AfterStep(func(step int64) {
					if step%20_000 == 0 {
						inst := instances[0]
						inst.Candidate.Set(!inst.Candidate.Get())
					}
				})
			},
			expectLeader: func(n int) []int { return ids(1, n) },
		},
	}
}

// runOmegaScenario runs one scenario on a pre-built Ω∆ deployment.
func runOmegaScenario(k *sim.Kernel, instances []*omega.Instance, sc omegaScenario, steps int64) (*omega.Observer, error) {
	obs := omega.NewObserver(instances)
	k.AfterStep(obs.Sample)
	for _, inst := range instances {
		inst.Candidate.Set(true)
	}
	if sc.drive != nil {
		sc.drive(k, instances)
	}
	if _, err := k.Run(steps); err != nil {
		return nil, err
	}
	k.Shutdown()
	return obs, nil
}

// summarizeOmega turns an observer into table cells: the stable leader (or
// "none"), the stabilization step, churn, and whether the leader is
// acceptable for the scenario.
func summarizeOmega(obs *omega.Observer, sc omegaScenario, n int, steps int64) (leader string, stab int64, churn int64, ok bool) {
	// Agreement among processes that are permanent candidates; under
	// churn, process 0 is excluded.
	members := ids(0, n)
	if sc.name == "repeated-candidate-churn" {
		members = ids(1, n)
	}
	ell := obs.AgreedLeader(members)
	leader = fmt.Sprint(ell)
	if ell == omega.NoLeader {
		return "none", obs.StabilizedAt(), obs.Changes(), false
	}
	ok = true
	if sc.expectLeader != nil {
		ok = false
		for _, want := range sc.expectLeader(n) {
			if ell == want {
				ok = true
			}
		}
	}
	return leader, obs.StabilizedAt(), obs.Changes(), ok
}

// E3OmegaAtomic measures stabilization of the Figure 3 Ω∆ (atomic
// registers) across system sizes and candidacy scenarios (DESIGN.md E3,
// validating Theorems 11/12).
func E3OmegaAtomic(cfg E3Config) (*Table, error) {
	if len(cfg.Ns) == 0 {
		cfg.Ns = []int{2, 4, 8}
	}
	if cfg.Steps == 0 {
		cfg.Steps = 1_000_000
	}
	t := &Table{
		ID:      "E3",
		Title:   fmt.Sprintf("Ω∆ from atomic registers: stabilization, %d steps/run", cfg.Steps),
		Columns: []string{"n", "scenario", "leader", "stabilized at", "leader changes", "as specified"},
		Notes: []string{
			"expected shape: a stable leader in every run; in 'one-timely' it is the timely process; under churn the flickering process never holds stable leadership",
		},
	}
	var scs []Scenario
	for _, n := range cfg.Ns {
		for _, sc := range omegaScenarios() {
			if sc.name == "repeated-candidate-churn" && n < 3 {
				continue
			}
			n, sc := n, sc
			scs = append(scs, Scenario{Name: fmt.Sprintf("n=%d/%s", n, sc.name), Run: func(res *Result) error {
				k := sim.New(n, sim.WithSchedule(sc.sched(n)))
				sys, err := omega.BuildRegisters(k)
				if err != nil {
					return err
				}
				obs, err := runOmegaScenario(k, sys.Instances, sc, cfg.Steps)
				if err != nil {
					return err
				}
				res.Record(k)
				leader, stab, churn, ok := summarizeOmega(obs, sc, n, cfg.Steps)
				res.AddRow(n, sc.name, leader, stab, churn, ok)
				return nil
			}})
		}
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}

// E4OmegaAbortable measures stabilization of the Figure 4–6 Ω∆ (abortable
// registers only, strongest adversary) plus its abort traffic (DESIGN.md
// E4, validating Theorem 13).
func E4OmegaAbortable(cfg E3Config) (*Table, error) {
	if len(cfg.Ns) == 0 {
		cfg.Ns = []int{2, 3, 4, 6}
	}
	if cfg.Steps == 0 {
		cfg.Steps = 2_000_000
	}
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("Ω∆ from abortable registers: stabilization, %d steps/run", cfg.Steps),
		Columns: []string{"n", "scenario", "leader", "stabilized at", "leader changes", "abort rate", "as specified"},
		Notes: []string{
			"expected shape: same stabilization structure as E3 at higher step cost; abort rate is the fraction of register operations returning ⊥",
		},
	}
	var scs []Scenario
	for _, n := range cfg.Ns {
		for _, sc := range omegaScenarios() {
			if sc.name == "repeated-candidate-churn" && n < 3 {
				continue
			}
			n, sc := n, sc
			scs = append(scs, Scenario{Name: fmt.Sprintf("n=%d/%s", n, sc.name), Run: func(res *Result) error {
				steps := cfg.Steps
				if sc.name == "one-timely-rest-untimely" {
					steps *= 3 // untimely convergence needs the gaps to play out
				}
				k := sim.New(n, sim.WithSchedule(sc.sched(n)))
				sys, err := omegaab.Build(deploy.Sim(k))
				if err != nil {
					return err
				}
				obs, err := runOmegaScenario(k, sys.Instances, sc, steps)
				if err != nil {
					return err
				}
				res.Record(k)
				leader, stab, churn, ok := summarizeOmega(obs, sc, n, steps)
				ab := sys.Aborts()
				rate := 0.0
				if ops := ab.MsgOps + ab.HbOps; ops > 0 {
					rate = float64(ab.MsgAborts+ab.HbAborts) / float64(ops)
				}
				res.AddRow(n, sc.name, leader, stab, churn, rate, ok)
				return nil
			}})
		}
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}
