package exp

import (
	"fmt"
	"math/rand"

	"tbwf/internal/deploy"
	"tbwf/internal/prim"
	"tbwf/internal/serve/loadgen"
	"tbwf/internal/shard"
	"tbwf/internal/sim"
)

// S1Config parameterizes the sharded-keyspace sweep.
type S1Config struct {
	// N is the system size (default 3); process N-1 is untimely.
	N int
	// Keys sizes the keyspace (default 32).
	Keys int
	// Burst is each load task's open-loop submission burst (default 4) —
	// the source of batchable queue depth.
	Burst int
	// MaxBatch bounds ops folded into one QA round (default 8).
	MaxBatch int
	// Steps is the per-run budget (default 1.5M).
	Steps int64
	// Shards are the shard counts swept (default 1,2,4,8).
	Shards []int
	// Dists are the key distributions swept (default uniform, zipf:0.8,
	// zipf:1.2 — the zipfian θs bracket the skew regimes).
	Dists []string
	// Parallel is the scenario worker-pool size (<= 0: one per CPU).
	Parallel int
}

// S1ShardKeyspace sweeps shard count against key-distribution skew on
// the sim kernel: every process runs a closed-loop keyed load task
// through a shard.Map while process N-1 steps with geometrically growing
// gaps. The table reports throughput (kernel steps per completed op),
// the hot shard's mean batch size (the amortization bought by folding
// queued ops into one Ω∆ read + QA round), admission sheds, and the
// timely/slow completion split — TBWF's per-process degradation story,
// now per shard: adding shards multiplies independent stacks, skew
// concentrates load on few of them, and batching is what absorbs the
// concentration.
func S1ShardKeyspace(cfg S1Config) (*Table, error) {
	if cfg.N == 0 {
		cfg.N = 3
	}
	if cfg.Keys == 0 {
		cfg.Keys = 32
	}
	if cfg.Burst == 0 {
		cfg.Burst = 4
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 8
	}
	if cfg.Steps == 0 {
		cfg.Steps = 1_500_000
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 2, 4, 8}
	}
	if len(cfg.Dists) == 0 {
		cfg.Dists = []string{"uniform", "zipf:0.8", "zipf:1.2"}
	}
	t := &Table{
		ID: "S1",
		Title: fmt.Sprintf("sharded keyspace: n=%d, %d keys, burst %d, max batch %d, process %d flickering",
			cfg.N, cfg.Keys, cfg.Burst, cfg.MaxBatch, cfg.N-1),
		Columns: []string{"shards", "dist", "ops", "steps/op", "hot mean batch", "shed", "timely ops", "slow ops"},
		Notes: []string{
			"each shard is an independent TBWF stack; a key routes by hash, so skew concentrates load on few stacks",
			"hot mean batch > 1 means queued ops rode one QA round together — the amortization batching buys under skew",
			"timely = ops completed by processes 0..n-2; slow = the untimely process's — per-shard stacks degrade per process, not globally",
		},
	}
	var scs []Scenario
	for _, shards := range cfg.Shards {
		for _, dist := range cfg.Dists {
			shards, dist := shards, dist
			scs = append(scs, Scenario{Name: fmt.Sprintf("s-%d/%s", shards, dist), Run: func(res *Result) error {
				sampler, err := loadgen.ParseDist(dist, cfg.Keys)
				if err != nil {
					return err
				}
				// Process N-1 flickers (400 steps on, 1200 off): untimely but
				// not starved, so the slow column stays non-zero and the
				// timely/slow throughput gap is the measurement.
				k := sim.New(cfg.N, sim.WithSchedule(sim.Restrict(sim.RoundRobin(),
					map[int]sim.Availability{cfg.N - 1: sim.Flicker(400, 1_200, 0)})))
				m, err := shard.New(deploy.Sim(k), shard.Config{
					Shards:     shards,
					QueueDepth: cfg.Burst,
					MaxBatch:   cfg.MaxBatch,
				})
				if err != nil {
					return err
				}
				m.Start()
				ops := make([]int64, cfg.N)
				sheds := make([]int64, cfg.N)
				for p := 0; p < cfg.N; p++ {
					p := p
					rng := rand.New(rand.NewSource(int64(31*shards + p)))
					k.Spawn(p, fmt.Sprintf("load[%d]", p), func(pp prim.Proc) {
						pds := make([]*shard.Pending, 0, cfg.Burst)
						for {
							pds = pds[:0]
							for len(pds) < cfg.Burst {
								key := loadgen.KeyName(sampler(rng))
								pd := shard.NewPending()
								if _, _, err := m.Submit(key, p, shard.Op{Kind: shard.Add, Val: 1}, pd); err != nil {
									sheds[p]++
									break
								}
								pds = append(pds, pd)
							}
							for _, pd := range pds {
								for {
									if _, ok := pd.Poll(); ok {
										break
									}
									pp.Step()
								}
							}
							ops[p] += int64(len(pds))
							pp.Step()
						}
					})
				}
				r, err := k.Run(cfg.Steps)
				if err != nil {
					return err
				}
				k.Shutdown()
				res.Record(k)
				var total, timely, slow, shed int64
				for p := 0; p < cfg.N; p++ {
					total += ops[p]
					shed += sheds[p]
					if p == cfg.N-1 {
						slow += ops[p]
					} else {
						timely += ops[p]
					}
				}
				if total == 0 {
					return fmt.Errorf("S1 s-%d/%s: no operations completed in %d steps", shards, dist, cfg.Steps)
				}
				hot := 0
				for s := 0; s < m.Shards(); s++ {
					if m.Stats(s).Accepted > m.Stats(hot).Accepted {
						hot = s
					}
				}
				res.AddRow(shards, dist, total,
					fmt.Sprintf("%.0f", float64(r.Steps)/float64(total)),
					fmt.Sprintf("%.2f", m.MeanBatch(hot)),
					shed, timely, slow)
				return nil
			}})
		}
	}
	if err := RunScenarios(t, cfg.Parallel, scs); err != nil {
		return nil, err
	}
	return t, nil
}
