package exp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"tbwf/internal/sim"
)

// This file is the shared scenario runner behind every experiment. Each
// experiment is a list of independent scenarios — a scenario builds and
// owns its kernel, so scenarios are embarrassingly parallel — executed on
// a bounded worker pool. Results are committed to the table in scenario
// order, so the rendered table is byte-identical whatever the pool size
// (EXPERIMENTS.md's determinism check), and a panicking scenario is
// isolated and reported as that scenario's error instead of tearing down
// the whole suite.

// Scenario is one independent unit of an experiment: one (or a few) table
// rows produced by a self-contained simulation. Its Run function must not
// share mutable state (kernels, registers, rngs, abort policies) with any
// other scenario.
type Scenario struct {
	// Name labels the scenario in error messages, e.g. "k=3" or
	// "n=4/one-timely".
	Name string
	// Run executes the scenario, adding rows (and optionally notes and
	// kernel stats) to res.
	Run func(res *Result) error
}

// Result collects what one scenario produced. The runner commits results
// to the experiment's table in scenario order.
type Result struct {
	rows  [][]any
	notes []string
	stats sim.RunStats
}

// AddRow appends one table row, cells formatted later by Table.AddRow.
func (r *Result) AddRow(cells ...any) {
	r.rows = append(r.rows, cells)
}

// AddNote appends a table note.
func (r *Result) AddNote(format string, args ...any) {
	r.notes = append(r.notes, fmt.Sprintf(format, args...))
}

// Record folds the kernel's execution statistics into the scenario's
// result. Call it once per kernel, after its last Run.
func (r *Result) Record(k *sim.Kernel) {
	r.stats = r.stats.Add(k.Stats())
}

// Workers normalizes a parallelism setting: n if positive, else one worker
// per available CPU.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(0), …, fn(n-1) on a worker pool of the given size (<= 0
// means one worker per CPU). Items are claimed in index order; fn must be
// safe to call concurrently for distinct indices. It is the pool behind
// RunScenarios, exported so other fan-out consumers (the schedule-space
// fuzzer in internal/explore) share the same bounded-parallelism behaviour.
func ForEach(parallel, n int, fn func(i int)) {
	workers := Workers(parallel)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// PanicError is a recovered panic from a scenario (or any other pooled
// unit of work), carrying the recovered value and the stack captured at
// recovery time so a fuzz-found panic is diagnosable from a stored
// artifact alone.
type PanicError struct {
	// Value is the recovered value, rendered with %v.
	Value string
	// Stack is the goroutine stack at the recovery point.
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("scenario panicked: %s\n%s", e.Value, e.Stack)
}

// RunScenarios executes the scenarios on a worker pool of the given size
// (<= 0 means one worker per CPU) and appends their rows and notes to t in
// scenario order, accumulating kernel stats into t.Stats. All scenarios
// run even if one fails; the error reported is the failing scenario with
// the lowest index, so error behaviour is independent of the pool size
// too. A panic inside a scenario is recovered and returned as that
// scenario's error (a *PanicError wrapping the recovered value and its
// stack trace).
func RunScenarios(t *Table, parallel int, scs []Scenario) error {
	results := make([]Result, len(scs))
	errs := make([]error, len(scs))
	ForEach(parallel, len(scs), func(i int) {
		errs[i] = runScenario(&scs[i], &results[i])
	})
	for i := range scs {
		if errs[i] != nil {
			return fmt.Errorf("%s %s: %w", t.ID, scs[i].Name, errs[i])
		}
	}
	for i := range results {
		for _, row := range results[i].rows {
			t.AddRow(row...)
		}
		t.Notes = append(t.Notes, results[i].notes...)
		t.Stats = t.Stats.Add(results[i].stats)
	}
	return nil
}

// runScenario runs one scenario with panic isolation.
func runScenario(sc *Scenario, res *Result) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	return sc.Run(res)
}
