package monitor

import (
	"testing"

	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// Both directions at once — A(0,1) and A(1,0) on the same two processes,
// as Figure 3 deploys them — must behave independently: each side's
// monitor tracks its own peer without interference.
func TestBidirectionalMonitors(t *testing.T) {
	k := sim.New(2)
	hb01 := register.NewAtomic(k, "Hb[1,0]", int64(-1))
	hb10 := register.NewAtomic(k, "Hb[0,1]", int64(-1))
	m01 := NewPair(0, 1, hb01) // 0 monitors 1
	m10 := NewPair(1, 0, hb10) // 1 monitors 0
	k.Spawn(1, "A(0,1).monitored", m01.MonitoredTask())
	k.Spawn(0, "A(0,1).monitoring", m01.MonitoringTask())
	k.Spawn(0, "A(1,0).monitored", m10.MonitoredTask())
	k.Spawn(1, "A(1,0).monitoring", m10.MonitoringTask())

	m01.Monitoring.Set(true)
	m10.Monitoring.Set(true)
	m01.ActiveFor.Set(true) // 1 is active for 0
	// 0 is NOT active for 1 (m10.ActiveFor stays false).

	if _, err := k.Run(20_000); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()

	if got := m01.Status.Get(); got != StatusActive {
		t.Errorf("A(0,1) status = %v, want active (1 is active and timely)", got)
	}
	if got := m10.Status.Get(); got != StatusInactive {
		t.Errorf("A(1,0) status = %v, want inactive (0 never activated)", got)
	}
	if m10.FaultCntr.Get() != 0 {
		t.Errorf("A(1,0) charged %d faults to a willingly inactive peer", m10.FaultCntr.Get())
	}
}

// Many monitors on one process (the n−1 pairs of Figure 3) share its steps
// without starving each other.
func TestManyMonitorsShareSteps(t *testing.T) {
	const n = 5
	k := sim.New(n)
	pairs := make([]*Pair, 0, n-1)
	for q := 1; q < n; q++ {
		hb := register.NewAtomic(k, "Hb", int64(-1))
		m := NewPair(0, q, hb)
		pairs = append(pairs, m)
		k.Spawn(q, "monitored", m.MonitoredTask())
		k.Spawn(0, "monitoring", m.MonitoringTask())
		m.Monitoring.Set(true)
		m.ActiveFor.Set(true)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()
	for i, m := range pairs {
		if got := m.Status.Get(); got != StatusActive {
			t.Errorf("monitor %d: status %v, want active", i, got)
		}
	}
}
