package monitor

import (
	"testing"

	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// wire builds A(0,1) on a fresh kernel: process 0 monitors process 1.
func wire(k *sim.Kernel) *Pair {
	hb := register.NewAtomic(k, "Hb[1,0]", int64(-1))
	m := NewPair(0, 1, hb)
	k.Spawn(1, "monitored", m.MonitoredTask())
	k.Spawn(0, "monitoring", m.MonitoringTask())
	return m
}

func run(t *testing.T, k *sim.Kernel, steps int64) {
	t.Helper()
	if _, err := k.Run(steps); err != nil {
		t.Fatal(err)
	}
}

// Property 1: if eventually monitoring=off then eventually status=?.
func TestProperty1StatusUnknownWhenNotMonitoring(t *testing.T) {
	k := sim.New(2)
	m := wire(k)
	m.Monitoring.Set(true)
	m.ActiveFor.Set(true)
	run(t, k, 2000)
	if m.Status.Get() == StatusUnknown {
		t.Fatal("status still ? while monitoring is on")
	}
	m.Monitoring.Set(false)
	run(t, k, 2000)
	k.Shutdown()
	if got := m.Status.Get(); got != StatusUnknown {
		t.Fatalf("status = %v after monitoring off, want ?", got)
	}
}

// Property 2: if eventually monitoring=on then eventually status≠?.
func TestProperty2StatusKnownWhenMonitoring(t *testing.T) {
	k := sim.New(2)
	m := wire(k)
	m.Monitoring.Set(true) // q stays inactive: status must still become known
	run(t, k, 2000)
	k.Shutdown()
	if got := m.Status.Get(); got == StatusUnknown {
		t.Fatal("status still ? while monitoring is on")
	}
}

// Property 3 (willing stop): if eventually active-for=off then eventually
// status ≠ active.
func TestProperty3InactiveAfterWillingStop(t *testing.T) {
	k := sim.New(2)
	m := wire(k)
	m.Monitoring.Set(true)
	m.ActiveFor.Set(true)
	run(t, k, 2000)
	if m.Status.Get() != StatusActive {
		t.Fatalf("status = %v while q is active and timely, want active", m.Status.Get())
	}
	m.ActiveFor.Set(false)
	run(t, k, 4000)
	k.Shutdown()
	if got := m.Status.Get(); got == StatusActive {
		t.Fatal("status still active after q willingly stopped")
	}
}

// Property 3 (crash): if q crashes then eventually status ≠ active.
func TestProperty3InactiveAfterCrash(t *testing.T) {
	k := sim.New(2)
	m := wire(k)
	m.Monitoring.Set(true)
	m.ActiveFor.Set(true)
	run(t, k, 2000)
	k.Crash(1)
	run(t, k, 20000) // adaptive timeout may need a while to fire
	k.Shutdown()
	if got := m.Status.Get(); got == StatusActive {
		t.Fatal("status still active long after q crashed")
	}
}

// Property 4: if q is p-timely and eventually active-for=on then eventually
// status ≠ inactive.
func TestProperty4ActiveWhenTimely(t *testing.T) {
	k := sim.New(2) // round-robin: q is 2-timely
	m := wire(k)
	m.Monitoring.Set(true)
	m.ActiveFor.Set(true)
	run(t, k, 2000)
	// Sample the suffix: after convergence, status must never be inactive.
	bad := 0
	k.AfterStep(func(step int64) {
		if m.Status.Get() == StatusInactive {
			bad++
		}
	})
	run(t, k, 8000)
	k.Shutdown()
	if bad != 0 {
		t.Fatalf("status was inactive on %d suffix steps despite timely active q", bad)
	}
}

// Property 5a: if q is p-timely, faultCntr is bounded.
func TestProperty5aBoundedWhenTimely(t *testing.T) {
	k := sim.New(2)
	m := wire(k)
	m.Monitoring.Set(true)
	m.ActiveFor.Set(true)
	run(t, k, 20000)
	mid := m.FaultCntr.Get()
	run(t, k, 80000)
	k.Shutdown()
	end := m.FaultCntr.Get()
	if end != mid {
		t.Fatalf("faultCntr grew from %d to %d with a timely q; want bounded (stable)", mid, end)
	}
}

// Property 5b: if q crashes, faultCntr is bounded (the allow-increment gate
// charges a crashed process at most once more).
func TestProperty5bBoundedAfterCrash(t *testing.T) {
	k := sim.New(2)
	m := wire(k)
	m.Monitoring.Set(true)
	m.ActiveFor.Set(true)
	run(t, k, 2000)
	k.Crash(1)
	run(t, k, 5000)
	afterSettle := m.FaultCntr.Get()
	run(t, k, 50000)
	k.Shutdown()
	if got := m.FaultCntr.Get(); got != afterSettle {
		t.Fatalf("faultCntr grew from %d to %d after crash; want frozen", afterSettle, got)
	}
}

// Property 5c: if eventually active-for=off, faultCntr is bounded: reading
// −1 never increments it.
func TestProperty5cBoundedAfterWillingStop(t *testing.T) {
	k := sim.New(2)
	m := wire(k)
	m.Monitoring.Set(true)
	m.ActiveFor.Set(true)
	run(t, k, 2000)
	m.ActiveFor.Set(false)
	run(t, k, 5000)
	afterSettle := m.FaultCntr.Get()
	run(t, k, 50000)
	k.Shutdown()
	if got := m.FaultCntr.Get(); got != afterSettle {
		t.Fatalf("faultCntr grew from %d to %d after willing stop; want frozen", afterSettle, got)
	}
}

// Property 5d: if eventually monitoring=off, faultCntr is bounded.
func TestProperty5dBoundedWhenNotMonitoring(t *testing.T) {
	k := sim.New(2)
	m := wire(k)
	m.Monitoring.Set(true)
	m.ActiveFor.Set(true)
	run(t, k, 2000)
	m.Monitoring.Set(false)
	run(t, k, 2000)
	frozen := m.FaultCntr.Get()
	run(t, k, 20000)
	k.Shutdown()
	if got := m.FaultCntr.Get(); got != frozen {
		t.Fatalf("faultCntr grew from %d to %d while not monitoring", frozen, got)
	}
}

// Property 6: if q is correct but NOT p-timely, and both sides stay on,
// faultCntr increases without bound.
func TestProperty6UnboundedWhenUntimely(t *testing.T) {
	// q's scheduling gaps grow geometrically: it is correct (infinitely
	// many steps) but not p-timely (no fixed bound works).
	k := sim.New(2, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{
		1: sim.GrowingGaps(50, 100, 1.5),
	})))
	m := wire(k)
	m.Monitoring.Set(true)
	m.ActiveFor.Set(true)
	run(t, k, 50000)
	mid := m.FaultCntr.Get()
	run(t, k, 250000)
	k.Shutdown()
	end := m.FaultCntr.Get()
	if end <= mid {
		t.Fatalf("faultCntr stalled at %d (was %d) despite q being untimely; want growth", end, mid)
	}
	if end < 5 {
		t.Fatalf("faultCntr = %d after 300k steps of untimely q; want several suspicions", end)
	}
}

// A flickering but timely q (active-for toggles forever) must not inflate
// faultCntr forever — the −1 write on willing stops is what protects it
// (Property 5a with intermittent activity, the paper's condition (a) on
// the increment gate).
func TestFlickeringTimelyProcessNotPunishedForever(t *testing.T) {
	k := sim.New(2)
	m := wire(k)
	m.Monitoring.Set(true)
	m.ActiveFor.Set(true)
	// Toggle active-for every 500 steps, forever.
	k.AfterStep(func(step int64) {
		if step%500 == 0 {
			m.ActiveFor.Set(!m.ActiveFor.Get())
		}
	})
	run(t, k, 30000)
	mid := m.FaultCntr.Get()
	run(t, k, 120000)
	k.Shutdown()
	end := m.FaultCntr.Get()
	// The adaptive timeout keeps growing only while faults happen; a
	// timely q must stop being suspected eventually. Allow slack for the
	// transition races but require clear flattening.
	if end-mid > 3 {
		t.Fatalf("faultCntr kept growing (%d -> %d) for a timely flickering q", mid, end)
	}
}

func TestStatusStringNotation(t *testing.T) {
	if StatusUnknown.String() != "?" || StatusActive.String() != "active" || StatusInactive.String() != "inactive" {
		t.Fatal("Status.String does not match the paper's notation")
	}
}
