// Package monitor implements the paper's dynamic activity monitors
// (Section 5.1, Figures 1 and 2).
//
// For an ordered pair of processes (p, q), the activity monitor A(p,q)
// helps p determine whether q is currently active for p and whether q is
// p-timely. It is fully dynamic: p turns monitoring on and off through the
// local input variable monitoring_p[q], and q turns its participation on
// and off through active-for_q[p]. The monitor's outputs at p are
// status_p[q] ∈ {active, inactive, ?} and faultCntr_p[q], the number of
// times q was suspected of not being p-timely (Definition 9 lists the six
// properties these outputs satisfy; monitor tests verify them).
//
// The implementation is Figure 2, line for line: q writes an increasing
// heartbeat counter to a shared register while it is active for p, and -1
// when it stops willingly; p reads the register on an adaptive timeout
// (measured in p's own steps, so "time" is relative to process speed
// exactly as in the partial-synchrony model) and gates faultCntr increments
// so that the counter stays bounded when q is p-timely, crashes, or stops
// being active for p.
package monitor

import "tbwf/internal/prim"

// Status is the monitor's estimate of the monitored process's state:
// the paper's status_p[q] ∈ {?, active, inactive}.
type Status int

const (
	// StatusUnknown is the paper's "?" output: the monitor offers no
	// estimate (monitoring is off, or no estimate has been computed yet).
	StatusUnknown Status = iota
	// StatusActive estimates that q is currently active for p.
	StatusActive
	// StatusInactive estimates that q is currently inactive for p.
	StatusInactive
)

// String returns the paper's notation for the status.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusInactive:
		return "inactive"
	default:
		return "?"
	}
}

// stoppedHeartbeat is the special value −1 that q writes to announce it is
// stopping willingly (as opposed to crashing).
const stoppedHeartbeat int64 = -1

// Pair is one activity monitor A(p,q) for a fixed ordered pair of
// processes: the shared heartbeat register plus the four local variables of
// Figure 1. Create it with NewPair, then spawn MonitoredTask on process q
// and MonitoringTask on process p.
type Pair struct {
	// P is the monitoring process; Q the monitored one.
	P, Q int

	// Monitoring is A(p,q)'s input at p: does p want to monitor q?
	Monitoring *prim.Var[bool]
	// ActiveFor is A(p,q)'s input at q: is q active for p?
	ActiveFor *prim.Var[bool]

	// Status is A(p,q)'s first output at p: the estimate of q's status.
	Status *prim.Var[Status]
	// FaultCntr is A(p,q)'s second output at p: how many times q was
	// suspected of not being p-timely.
	FaultCntr *prim.Var[int64]

	// Hb is the shared register HbRegister[q,p], written by q and read
	// by p.
	Hb prim.Register[int64]

	// ablateFaultGate disables the allow-increment gating of Figure 2
	// (lines 18–26); see AblateFaultGate.
	ablateFaultGate bool
}

// NewPair wires an activity monitor A(p,q) over the given heartbeat
// register (initialized to −1 by convention, matching Figure 2's initial
// state).
func NewPair(p, q int, hb prim.Register[int64]) *Pair {
	return &Pair{
		P:          p,
		Q:          q,
		Monitoring: prim.NewVar(false),
		ActiveFor:  prim.NewVar(false),
		Status:     prim.NewVar(StatusUnknown),
		FaultCntr:  prim.NewVar[int64](0),
		Hb:         hb,
	}
}

// Telemetry is a consistent-enough snapshot of one monitor's outputs for
// dashboards and metrics endpoints.
type Telemetry struct {
	// P monitors Q.
	P, Q int
	// Status is the current estimate of Q's state at P.
	Status Status
	// FaultCntr is the number of times Q was suspected of not being
	// P-timely.
	FaultCntr int64
}

// Telemetry returns the monitor's current outputs. A read-only tap: it
// consumes no process steps and may be called from any goroutine.
func (m *Pair) Telemetry() Telemetry {
	return Telemetry{P: m.P, Q: m.Q, Status: m.Status.Get(), FaultCntr: m.FaultCntr.Get()}
}

// AblateFaultGate removes the allow-increment gating of Figure 2: every
// suspicion then bumps faultCntr, so a crashed q is charged over and over
// instead of at most once (Definition 9, Property 5b fails). Ablation for
// tests and the schedule-space fuzzer only; call before spawning the
// monitoring task.
func (m *Pair) AblateFaultGate() { m.ablateFaultGate = true }

// MonitoredTask returns the task to run on process q: the top half of
// Figure 2. While active-for_q[p] is on, it writes an increasing heartbeat
// counter; when it turns off, it writes −1 once to signal a willing stop
// and then waits.
func (m *Pair) MonitoredTask() func(prim.Proc) {
	return func(p prim.Proc) {
		var hbCounter int64
		for { // repeat forever
			m.Hb.Write(stoppedHeartbeat) // line 2
			for !m.ActiveFor.Get() {     // line 3: while off do skip
				p.Step()
			}
			for m.ActiveFor.Get() { // line 4
				hbCounter++ // line 5: the increment is a state-change step
				p.Step()
				m.Hb.Write(hbCounter) // line 6
			}
		}
	}
}

// MonitoringTask returns the task to run on process p: the bottom half of
// Figure 2. It polls the heartbeat register every hbTimeout of its own
// loop iterations; hbTimeout adapts upward each time q is suspected, and
// the allow-increment flag implements the two gating conditions of the
// paper: faultCntr is bumped only when the register is not −1 (so a
// willingly stopping q does not count as untimely — Property 5c) and only
// if the counter increased since the last bump (so a crashed q is charged
// at most once — Property 5b).
func (m *Pair) MonitoringTask() func(prim.Proc) {
	return func(p prim.Proc) {
		var (
			hbTimeout      int64 = 1
			hbTimer        int64 = 1
			hbCounter      int64
			prevHbCounter  int64
			allowIncrement = true
		)
		for { // line 7: repeat forever
			m.Status.Set(StatusUnknown) // line 8
			for !m.Monitoring.Get() {   // line 9: while off do skip
				p.Step()
			}
			hbTimer = hbTimeout // line 10

			for m.Monitoring.Get() { // line 11
				if hbTimer >= 1 { // line 12
					hbTimer--
				}
				if hbTimer == 0 { // line 13
					hbTimer = hbTimeout       // line 14
					prevHbCounter = hbCounter // line 15
					hbCounter = m.Hb.Read()   // line 16
					switch {
					case hbCounter < 0: // line 17
						m.Status.Set(StatusInactive)
					case hbCounter > prevHbCounter: // lines 18–20
						m.Status.Set(StatusActive)
						allowIncrement = true
					default: // lines 21–26: hbCounter >= 0 && <= prev
						m.Status.Set(StatusInactive)
						if allowIncrement || m.ablateFaultGate {
							m.FaultCntr.Set(m.FaultCntr.Get() + 1)
							hbTimeout++
							allowIncrement = false
						}
					}
				}
				p.Step() // one loop iteration = one step
			}
		}
	}
}
