// Package core implements the paper's primary contribution: the
// timeliness-based wait-free (TBWF) universal transformation of Section 7
// (Figures 7 and 8).
//
// TBWF (Definition 3) is the progress condition: in every run, every
// process that is *timely* (Definition 2 — its scheduling gaps are bounded
// relative to the other processes) completes each of its operations in a
// finite number of its own steps. The condition degrades gracefully with
// synchrony: with no timely processes it is obstruction-freedom, with k
// timely processes those k are guaranteed progress, and with all processes
// timely it is wait-freedom (Section 1.1).
//
// The transformation takes any dynamic leader elector Ω∆ (package omega,
// with implementations from atomic registers in omega and from abortable
// registers in omegaab) and a wait-free query-abortable object O_QA
// (package qa, from abortable registers) and yields a TBWF object of the
// underlying type T: a client first waits until it is not the leader (the
// *canonical use* of Ω∆, Definition 6 — without it, one timely process
// could monopolize the object forever), then competes for leadership, and
// while it is the leader drives the Figure 8 state machine on O_QA: invoke
// op; on ⊥ query until the fate settles; on F re-invoke; on a real
// response withdraw candidacy and return.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"tbwf/internal/omega"
	"tbwf/internal/prim"
	"tbwf/internal/qa"
)

// Client is one process's endpoint of a TBWF object: its Ω∆ endpoint plus
// its handle on the underlying query-abortable object. All operations of a
// process must go through its single Client, from its own task.
type Client[S, O, R any] struct {
	me     int
	omega  *omega.Instance
	handle *qa.Handle[S, O, R]

	// canonical selects the Figure 7 line 2 wait; disabling it (see
	// NewClientNonCanonical) reproduces the monopolization failure the
	// paper warns about and exists only for that experiment.
	canonical bool

	completed  atomic.Int64
	invokes    atomic.Int64
	queries    atomic.Int64
	aborts     atomic.Int64
	lastDoneNS atomic.Int64
}

// NewClient wires process me's endpoint from its Ω∆ instance and its
// query-abortable handle, using the canonical protocol.
func NewClient[S, O, R any](inst *omega.Instance, h *qa.Handle[S, O, R]) (*Client[S, O, R], error) {
	if inst == nil || h == nil {
		return nil, fmt.Errorf("core: nil omega instance or qa handle")
	}
	if inst.Me != h.Me() {
		return nil, fmt.Errorf("core: omega endpoint of process %d wired to qa handle of process %d", inst.Me, h.Me())
	}
	return &Client[S, O, R]{me: inst.Me, omega: inst, handle: h, canonical: true}, nil
}

// NewClientNonCanonical builds a client that skips the canonical wait of
// Figure 7 line 2. The paper points out that this allows a timely process
// to win every leadership competition and starve the other timely
// processes; the E7 experiment demonstrates exactly that. Do not use it
// for anything else.
func NewClientNonCanonical[S, O, R any](inst *omega.Instance, h *qa.Handle[S, O, R]) (*Client[S, O, R], error) {
	c, err := NewClient(inst, h)
	if err != nil {
		return nil, err
	}
	c.canonical = false
	return c, nil
}

// Me returns the client's process id.
func (c *Client[S, O, R]) Me() int { return c.me }

// markDone records a completed operation and stamps the completion time.
func (c *Client[S, O, R]) markDone() {
	c.completed.Add(1)
	c.lastDoneNS.Store(time.Now().UnixNano())
}

// Invoke executes op on the TBWF object and blocks until it completes,
// returning the operation's response. It is the procedure invoke(op, O, T)
// of Figure 7. If the calling process is timely in the run, the call
// completes in a finite number of the process's steps; an untimely caller
// may wait forever without ever impeding the timely processes.
//
// p must be the calling task's own process handle.
func (c *Client[S, O, R]) Invoke(p prim.Proc, op O) R {
	// Line 2: canonical use — after our previous withdrawal, wait until
	// Ω∆ stops naming us leader before competing again.
	if c.canonical {
		for c.omega.Leader.Get() == c.me {
			p.Step()
		}
	}
	c.omega.Candidate.Set(true) // line 3: compete for leadership

	doQuery := false // false: op' = op; true: op' = query (line 4)
	for {            // line 5: repeat forever
		if c.omega.Leader.Get() == c.me { // line 6
			if doQuery {
				c.queries.Add(1)
				r, out := c.handle.Query() // line 7 with op' = query
				switch out {
				case qa.QueryApplied: // line 8: res ∉ {⊥, F}
					c.omega.Candidate.Set(false)
					c.markDone()
					return r
				case qa.QueryNotApplied: // line 10: res = F → op' ← op
					doQuery = false
				default: // line 9: res = ⊥ → keep querying
					c.aborts.Add(1)
				}
			} else {
				c.invokes.Add(1)
				r, ok := c.handle.Invoke(op) // line 7 with op' = op
				if ok {                      // line 8
					c.omega.Candidate.Set(false)
					c.markDone()
					return r
				}
				c.aborts.Add(1)
				doQuery = true // line 9: res = ⊥ → op' ← query
			}
		}
		p.Step()
	}
}

// Stats is a snapshot of a client's counters.
type Stats struct {
	// Completed counts operations that returned.
	Completed int64
	// Invokes and Queries count calls on the underlying O_QA.
	Invokes, Queries int64
	// Aborts counts ⊥ outcomes from those calls.
	Aborts int64
	// LastCompletedUnixNano is the wall-clock time of the latest
	// completion (0 if none yet). A growing age flags a client that is
	// currently failing to make progress — the telemetry layer's live
	// liveness signal.
	LastCompletedUnixNano int64
}

// Stats returns a snapshot of the client's counters. It is safe to call
// from harness hooks while the client is running.
func (c *Client[S, O, R]) Stats() Stats {
	return Stats{
		Completed:             c.completed.Load(),
		Invokes:               c.invokes.Load(),
		Queries:               c.queries.Load(),
		Aborts:                c.aborts.Load(),
		LastCompletedUnixNano: c.lastDoneNS.Load(),
	}
}

// Completed returns the number of operations the client has finished.
func (c *Client[S, O, R]) Completed() int64 { return c.completed.Load() }
