package core

import (
	"fmt"

	"tbwf/internal/omega"
	"tbwf/internal/omegaab"
	"tbwf/internal/qa"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// OmegaKind selects which Ω∆ implementation a TBWF stack runs on.
type OmegaKind int

const (
	// OmegaRegisters is the Figure 3 implementation from activity
	// monitors and atomic registers (Section 5).
	OmegaRegisters OmegaKind = iota + 1
	// OmegaAbortable is the Figure 4–6 implementation from abortable
	// registers only (Section 6). Together with the qa construction it
	// realizes Theorem 15: a TBWF object of any type from abortable
	// registers alone.
	OmegaAbortable
)

// String names the kind.
func (k OmegaKind) String() string {
	switch k {
	case OmegaRegisters:
		return "atomic-registers"
	case OmegaAbortable:
		return "abortable-registers"
	default:
		return fmt.Sprintf("OmegaKind(%d)", int(k))
	}
}

// BuildConfig configures a TBWF stack.
type BuildConfig struct {
	// Kind selects the Ω∆ implementation; default OmegaRegisters.
	Kind OmegaKind
	// NonCanonical disables the Figure 7 line 2 wait (experiment E7 only).
	NonCanonical bool
	// RegisterOptions apply to every abortable register in the stack
	// (the qa object's, and Ω∆'s when Kind is OmegaAbortable).
	RegisterOptions []register.AbOption
}

// Stack is a fully wired TBWF object deployment on a simulation kernel:
// Ω∆ (its tasks already spawned), the underlying query-abortable object,
// and one client per process. Client *tasks* are not spawned — the caller
// drives Clients[p].Invoke from its own workload tasks.
type Stack[S, O, R any] struct {
	Kind OmegaKind
	// Instances[p] is process p's Ω∆ endpoint.
	Instances []*omega.Instance
	// Object is the shared query-abortable object.
	Object *qa.SharedObject[S, O, R]
	// Clients[p] is process p's TBWF endpoint.
	Clients []*Client[S, O, R]
}

// Build wires a TBWF object of the given sequential type for every process
// of the kernel.
func Build[S, O, R any](k *sim.Kernel, typ qa.Type[S, O, R], cfg BuildConfig) (*Stack[S, O, R], error) {
	if cfg.Kind == 0 {
		cfg.Kind = OmegaRegisters
	}
	var instances []*omega.Instance
	switch cfg.Kind {
	case OmegaRegisters:
		sys, err := omega.BuildRegisters(k)
		if err != nil {
			return nil, fmt.Errorf("core: build Ω∆ (registers): %w", err)
		}
		instances = sys.Instances
	case OmegaAbortable:
		sys, err := omegaab.Build(k, cfg.RegisterOptions...)
		if err != nil {
			return nil, fmt.Errorf("core: build Ω∆ (abortable): %w", err)
		}
		instances = sys.Instances
	default:
		return nil, fmt.Errorf("core: unknown omega kind %d", int(cfg.Kind))
	}

	obj, err := qa.NewSim(k, typ, cfg.RegisterOptions...)
	if err != nil {
		return nil, fmt.Errorf("core: build qa object: %w", err)
	}

	st := &Stack[S, O, R]{
		Kind:      cfg.Kind,
		Instances: instances,
		Object:    obj,
		Clients:   make([]*Client[S, O, R], k.N()),
	}
	for p := 0; p < k.N(); p++ {
		var c *Client[S, O, R]
		var err error
		if cfg.NonCanonical {
			c, err = NewClientNonCanonical(instances[p], obj.Handle(p))
		} else {
			c, err = NewClient(instances[p], obj.Handle(p))
		}
		if err != nil {
			return nil, fmt.Errorf("core: client %d: %w", p, err)
		}
		st.Clients[p] = c
	}
	return st, nil
}

// CompletedOps returns each client's completed-operation count.
func (st *Stack[S, O, R]) CompletedOps() []int64 {
	out := make([]int64, len(st.Clients))
	for p, c := range st.Clients {
		out[p] = c.Completed()
	}
	return out
}
