package core

import (
	"fmt"
	"strings"

	"tbwf/internal/sim"
)

// This file turns a finished run into a progress-condition verdict.
//
// TBWF (Definition 3) quantifies over infinite runs; for a finite simulated
// run we check the natural finite analogue: every process that was observed
// timely (its scheduling bound is at most a caller-chosen threshold) and
// that had work to do must have completed all of it within the step budget.
// Untimely processes are allowed anything — the condition never promises
// them progress, only that they cannot hinder the timely ones.

// ProcProgress is one process's row in a progress report.
type ProcProgress struct {
	Proc int
	// Bound is the observed timeliness bound (sim.Unbounded if the
	// process took no steps).
	Bound int64
	// Timely reports whether Bound is finite and at most the report's
	// threshold.
	Timely bool
	// Completed and Wanted count operations done vs. assigned.
	Completed int64
	Wanted    int64
}

// Satisfied reports whether the process completed everything it wanted.
func (p ProcProgress) Satisfied() bool { return p.Completed >= p.Wanted }

// Report is the progress verdict for one run.
type Report struct {
	// Threshold is the timeliness bound used to classify processes.
	Threshold int64
	Procs     []ProcProgress
}

// Evaluate classifies each process by its observed timeliness bound
// (threshold picks who counts as timely) and records its operation counts.
// completed and wanted must have length rep.N.
func Evaluate(rep *sim.TimelinessReport, completed, wanted []int64, threshold int64) (Report, error) {
	if len(completed) != rep.N || len(wanted) != rep.N {
		return Report{}, fmt.Errorf("core: Evaluate: slice lengths %d/%d, want %d", len(completed), len(wanted), rep.N)
	}
	r := Report{Threshold: threshold, Procs: make([]ProcProgress, rep.N)}
	for p := 0; p < rep.N; p++ {
		b := rep.Bound[p]
		r.Procs[p] = ProcProgress{
			Proc:      p,
			Bound:     b,
			Timely:    b != sim.Unbounded && b <= threshold,
			Completed: completed[p],
			Wanted:    wanted[p],
		}
	}
	return r, nil
}

// TBWFHolds reports whether every timely process with assigned work
// completed all of it — the finite-run reading of Definition 3.
func (r Report) TBWFHolds() bool {
	for _, p := range r.Procs {
		if p.Timely && !p.Satisfied() {
			return false
		}
	}
	return true
}

// Violations returns the timely processes that did not finish their work.
func (r Report) Violations() []int {
	var out []int
	for _, p := range r.Procs {
		if p.Timely && !p.Satisfied() {
			out = append(out, p.Proc)
		}
	}
	return out
}

// TimelyCompleted counts timely processes that finished their work, and
// the total number of timely processes with work — the (k completed, k
// timely) pair the graceful-degradation experiment plots.
func (r Report) TimelyCompleted() (done, total int) {
	for _, p := range r.Procs {
		if !p.Timely || p.Wanted == 0 {
			continue
		}
		total++
		if p.Satisfied() {
			done++
		}
	}
	return done, total
}

// String renders the report as a fixed-width table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "proc  bound      timely  completed/wanted\n")
	for _, p := range r.Procs {
		bound := "∞"
		if p.Bound != sim.Unbounded {
			bound = fmt.Sprintf("%d", p.Bound)
		}
		fmt.Fprintf(&b, "%4d  %-9s  %-6v  %d/%d\n", p.Proc, bound, p.Timely, p.Completed, p.Wanted)
	}
	return b.String()
}
