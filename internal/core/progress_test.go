package core

import (
	"strings"
	"testing"

	"tbwf/internal/sim"
)

func mkReport(t *testing.T, sched []int32, n int, completed, wanted []int64, threshold int64) Report {
	t.Helper()
	rep, err := Evaluate(sim.Analyze(sched, n), completed, wanted, threshold)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEvaluateClassifiesTimeliness(t *testing.T) {
	// Process 0 steps every other step (bound 2); process 1 appears once
	// (huge bound); process 2 never (unbounded).
	sched := []int32{0, 1, 0, 0, 0, 0, 0, 0}
	rep := mkReport(t, sched, 3, []int64{5, 0, 0}, []int64{5, 5, 0}, 4)
	if !rep.Procs[0].Timely {
		t.Error("process 0 should be timely")
	}
	if rep.Procs[1].Timely || rep.Procs[2].Timely {
		t.Error("processes 1 and 2 should be untimely")
	}
	if rep.Procs[2].Bound != sim.Unbounded {
		t.Errorf("process 2 bound = %d, want Unbounded", rep.Procs[2].Bound)
	}
}

func TestTBWFHoldsOnlyWhenTimelySatisfied(t *testing.T) {
	sched := []int32{0, 1, 0, 1, 0, 1}
	// Both timely; 0 satisfied, 1 not.
	rep := mkReport(t, sched, 2, []int64{3, 1}, []int64{3, 3}, 4)
	if rep.TBWFHolds() {
		t.Error("TBWF should not hold: timely process 1 incomplete")
	}
	if v := rep.Violations(); len(v) != 1 || v[0] != 1 {
		t.Errorf("violations = %v, want [1]", v)
	}
	// An untimely unsatisfied process does not violate TBWF.
	rep2 := mkReport(t, []int32{0, 0, 0, 0, 1, 0, 0, 0, 0}, 2, []int64{3, 0}, []int64{3, 3}, 2)
	if !rep2.TBWFHolds() {
		t.Error("TBWF should hold: the starving process is untimely")
	}
}

func TestTimelyCompletedCounts(t *testing.T) {
	sched := []int32{0, 1, 2, 0, 1, 2}
	rep := mkReport(t, sched, 3, []int64{5, 2, 9}, []int64{5, 5, 0}, 4)
	done, total := rep.TimelyCompleted()
	// Process 2 has no work (wanted 0), so total counts 0 and 1 only.
	if total != 2 || done != 1 {
		t.Errorf("done/total = %d/%d, want 1/2", done, total)
	}
}

func TestEvaluateRejectsBadLengths(t *testing.T) {
	if _, err := Evaluate(sim.Analyze(nil, 2), []int64{1}, []int64{1, 1}, 4); err == nil {
		t.Error("mismatched completed length accepted")
	}
}

func TestReportString(t *testing.T) {
	sched := []int32{0, 0, 0}
	rep := mkReport(t, sched, 2, []int64{1, 0}, []int64{1, 1}, 4)
	s := rep.String()
	if !strings.Contains(s, "∞") {
		t.Errorf("unbounded process not rendered as ∞:\n%s", s)
	}
	if !strings.Contains(s, "1/1") {
		t.Errorf("completed/wanted missing:\n%s", s)
	}
}
