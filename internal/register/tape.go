package register

import "math/rand"

// Tape is a recorded source of policy coin flips: every decision it hands
// out is appended to a replayable record, and a tape built from a previous
// record re-issues those decisions verbatim before falling back to fresh
// seeded draws. Abort/effect policies drawing from a tape make a simulated
// run a pure function of (seed, record): the schedule-space fuzzer
// (internal/explore) stores the record in its failure artifacts, so a
// replayed run sees byte-identical policy behaviour even though the
// policies are nominally probabilistic.
//
// A tape is not safe for concurrent use; share one tape only among the
// registers of a single kernel (where the step baton serializes all policy
// consultations).
type Tape struct {
	seed int64
	rng  *rand.Rand
	bits []byte // '1' (true) or '0' (false), one per decision, in draw order
	pos  int    // replay cursor into bits
}

// NewTape returns an empty tape whose fresh draws come from the given seed.
func NewTape(seed int64) *Tape {
	return &Tape{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// ReplayTape returns a tape that re-issues the recorded bits verbatim and
// then extends the record deterministically from seed. bits is a string of
// '0'/'1' as returned by Bits; any other byte is treated as '0'.
func ReplayTape(seed int64, bits string) *Tape {
	t := NewTape(seed)
	t.bits = []byte(bits)
	return t
}

// Bool returns the next decision: the next recorded bit when one remains,
// otherwise a fresh draw that is true with probability p. Either way the
// decision is part of the tape's record afterwards.
func (t *Tape) Bool(p float64) bool {
	if t.pos < len(t.bits) {
		b := t.bits[t.pos] == '1'
		t.pos++
		return b
	}
	b := t.rng.Float64() < p
	if b {
		t.bits = append(t.bits, '1')
	} else {
		t.bits = append(t.bits, '0')
	}
	t.pos++
	return b
}

// Seed returns the seed fresh draws come from.
func (t *Tape) Seed() int64 { return t.seed }

// Bits returns the decision record so far as a '0'/'1' string.
func (t *Tape) Bits() string { return string(t.bits) }

// Len returns the number of decisions recorded so far.
func (t *Tape) Len() int { return len(t.bits) }

// TapedAbort aborts each contended operation according to the tape: fresh
// draws abort with probability p. With p = 1 it behaves like AlwaysAbort
// while still recording (and replaying) every decision.
func TapedAbort(p float64, t *Tape) AbortPolicy {
	return AbortPolicyFunc(func(Op) bool { return t.Bool(p) })
}

// TapedEffect makes each aborted write take effect according to the tape:
// fresh draws take effect with probability p.
func TapedEffect(p float64, t *Tape) EffectPolicy {
	return EffectPolicyFunc(func(Op) bool { return t.Bool(p) })
}
