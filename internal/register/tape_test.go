package register

import "testing"

func TestTapeRecordsAndReplays(t *testing.T) {
	orig := NewTape(7)
	var want []bool
	for i := 0; i < 100; i++ {
		want = append(want, orig.Bool(0.5))
	}
	if orig.Len() != 100 {
		t.Fatalf("recorded %d decisions, want 100", orig.Len())
	}

	// Replaying the record reproduces every decision regardless of the
	// probabilities passed (they were folded in when recorded).
	rep := ReplayTape(7, orig.Bits())
	for i, w := range want {
		if got := rep.Bool(0.99); got != w {
			t.Fatalf("replayed decision %d = %v, want %v", i, got, w)
		}
	}
	// Past the record, the replayed tape extends deterministically from the
	// seed: two replays agree with each other.
	rep2 := ReplayTape(7, orig.Bits())
	for i := 0; i < 100; i++ {
		rep2.Bool(0.99)
	}
	for i := 0; i < 50; i++ {
		a, b := rep.Bool(0.3), rep2.Bool(0.3)
		if a != b {
			t.Fatalf("post-record extension diverges at draw %d: %v vs %v", i, a, b)
		}
	}
}

func TestTapeProbabilityExtremes(t *testing.T) {
	always := NewTape(1)
	never := NewTape(1)
	for i := 0; i < 64; i++ {
		if !always.Bool(1) {
			t.Fatal("p=1 drew false")
		}
		if never.Bool(0) {
			t.Fatal("p=0 drew true")
		}
	}
}

func TestTapedPolicies(t *testing.T) {
	tape := NewTape(3)
	abort := TapedAbort(1, tape)
	effect := TapedEffect(0, tape)
	if !abort.Abort(Op{}) {
		t.Fatal("taped abort with p=1 did not abort")
	}
	if effect.TakesEffect(Op{}) {
		t.Fatal("taped effect with p=0 took effect")
	}
	if got := tape.Bits(); got != "10" {
		t.Fatalf("tape bits = %q, want %q", got, "10")
	}
	// A replayed tape drives the policies identically.
	rep := ReplayTape(3, tape.Bits())
	if !TapedAbort(0, rep).Abort(Op{}) {
		t.Fatal("replayed abort decision lost")
	}
	if TapedEffect(1, rep).TakesEffect(Op{}) {
		t.Fatal("replayed effect decision lost")
	}
}
