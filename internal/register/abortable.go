package register

import (
	"fmt"

	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// Abortable is an abortable register simulated on the kernel: it behaves
// like an atomic register except that an operation whose [invocation,
// response] window overlaps another operation's window on the same register
// is *contended* and may abort, returning ⊥ (ok=false). An aborted write may
// or may not take effect (EffectPolicy); the writer cannot tell which.
//
// Crash semantics: a process that crashes between an operation's invocation
// and response stops interfering — the pending operation is discarded (a
// crash-interrupted write takes effect iff the EffectPolicy says so).
// Operations that overlapped its active window remain contended. This
// mirrors a register implemented from weaker primitives: once a process
// stops taking steps it can no longer cause aborts, which is exactly what
// the dual-heartbeat mechanism of Figure 5 relies on to tell a crashed
// writer from a slow one.
//
// The register is MWMR by default; NewAbortableSWSR restricts it to a
// single designated writer and reader, the flavor used throughout
// Section 6, and panics on a wiring mistake (a programmer error, like
// sync misuse).
type Abortable[T any] struct {
	k      *sim.Kernel
	name   string
	val    T
	abort  AbortPolicy
	effect EffectPolicy
	writer int // -1 = any
	reader int // -1 = any

	inFlight map[int]*abOp[T] // keyed by kernel task id
	stats    Stats
}

var _ prim.AbortableRegister[int] = (*Abortable[int])(nil)

type abOp[T any] struct {
	contended bool
	isWrite   bool
	val       T
	finished  bool
}

// NewAbortable creates an abortable register named name with initial value
// init. Without options it is MWMR with the strongest adversary: every
// contended operation aborts and aborted writes take no effect.
func NewAbortable[T any](k *sim.Kernel, name string, init T, opts ...AbOption) *Abortable[T] {
	cfg := prim.ApplyAbOptions(opts...)
	return &Abortable[T]{
		k:        k,
		name:     name,
		val:      init,
		abort:    cfg.Abort,
		effect:   cfg.Effect,
		writer:   cfg.Writer,
		reader:   cfg.Reader,
		inFlight: make(map[int]*abOp[T]),
	}
}

// NewAbortableSWSR creates a single-writer single-reader abortable register,
// the flavor used by the algorithms of Section 6.
func NewAbortableSWSR[T any](k *sim.Kernel, name string, init T, writer, reader int, opts ...AbOption) *Abortable[T] {
	return NewAbortable(k, name, init, append(opts, WithRoles(writer, reader))...)
}

// Name returns the register's name.
func (r *Abortable[T]) Name() string { return r.name }

// Stats returns a snapshot of the register's operation counters.
func (r *Abortable[T]) Stats() Stats { return r.stats }

// Peek returns the register's current value without simulating an
// operation. For assertions in tests and harness hooks only.
func (r *Abortable[T]) Peek() T { return r.val }

// Read returns the register's value, or ok=false if the read aborted.
func (r *Abortable[T]) Read() (T, bool) {
	proc := r.k.CurrentProc()
	if r.reader >= 0 && proc != r.reader {
		panic(fmt.Sprintf("register: %s: process %d read an SWSR register owned by reader %d", r.name, proc, r.reader))
	}
	r.k.Metrics().Reads[proc]++
	r.stats.Reads++
	op := r.begin(false)
	defer r.discard(op)
	r.k.OpStep() // invocation step
	r.k.OpStep() // response step
	if r.finish(op, proc) {
		r.k.Metrics().ReadAborts[proc]++
		r.stats.ReadAborts++
		var zero T
		return zero, false
	}
	return r.val, true
}

// Write stores v, or reports ok=false if the write aborted, in which case
// it may or may not have taken effect.
func (r *Abortable[T]) Write(v T) bool {
	proc := r.k.CurrentProc()
	if r.writer >= 0 && proc != r.writer {
		panic(fmt.Sprintf("register: %s: process %d wrote an SWSR register owned by writer %d", r.name, proc, r.writer))
	}
	r.k.Metrics().Writes[proc]++
	r.stats.Writes++
	op := r.begin(true)
	op.val = v
	defer r.discard(op)
	r.k.OpStep()      // invocation step
	r.k.EffectDelay() // Δ adversary: a longer window means more contention
	r.k.OpStep()      // response step
	aborted := r.finish(op, proc)
	if aborted {
		r.k.Metrics().WriteAborts[proc]++
		r.stats.WriteAborts++
		if r.effect.TakesEffect(Op{Register: r.name, Proc: proc, IsWrite: true, Step: r.k.Step()}) {
			r.val = v
		}
	} else {
		r.val = v
	}
	r.k.Trace().RecordWrite(sim.WriteEvent{
		Step: r.k.Step(), Proc: proc, Register: r.name, Aborted: aborted,
	})
	return !aborted
}

// begin registers a new in-flight operation and marks contention with every
// operation currently in flight.
func (r *Abortable[T]) begin(isWrite bool) *abOp[T] {
	op := &abOp[T]{isWrite: isWrite}
	if len(r.inFlight) > 0 {
		op.contended = true
		for _, o := range r.inFlight {
			o.contended = true
		}
	}
	r.inFlight[r.k.CurrentTask()] = op
	return op
}

// finish completes op and reports whether it aborted.
func (r *Abortable[T]) finish(op *abOp[T], proc int) (aborted bool) {
	op.finished = true
	delete(r.inFlight, r.k.CurrentTask())
	if !op.contended {
		return false
	}
	return r.abort.Abort(Op{Register: r.name, Proc: proc, IsWrite: op.isWrite, Step: r.k.Step()})
}

// discard cleans up after a crash-interrupted operation: the deferred call
// runs when OpStep unwinds the task mid-operation. The pending operation is
// removed (the crashed process stops interfering) and an interrupted write
// takes effect iff the EffectPolicy says so.
func (r *Abortable[T]) discard(op *abOp[T]) {
	if op.finished {
		return
	}
	delete(r.inFlight, r.k.CurrentTask())
	if op.isWrite && r.effect.TakesEffect(Op{Register: r.name, Proc: r.k.CurrentProc(), IsWrite: true, Step: r.k.Step()}) {
		r.val = op.val
	}
}
