package register_test

import (
	"fmt"
	"testing"

	"tbwf/internal/lincheck"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// Non-aborted operations on an abortable register must be linearizable.
// Random schedules, strongest adversary, NoEffect (so aborted writes
// vanish entirely and the successful-op history is self-contained); the
// Wing–Gong checker is the judge.
func TestAbortableSuccessfulOpsLinearize(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			const n = 3
			k := sim.New(n, sim.WithSchedule(sim.Random(seed, nil)))
			r := register.NewAbortable(k, "r", int64(0))
			var history []lincheck.Op[objtype.RegOp, objtype.RegResp]
			for p := 0; p < n; p++ {
				p := p
				k.Spawn(p, "client", func(pp prim.Proc) {
					for i := 0; i < 12; i++ {
						invoke := k.Step()
						if i%2 == 0 {
							v := int64(100*p + i + 1) // unique values per writer
							if r.Write(v) {
								history = append(history, lincheck.Op[objtype.RegOp, objtype.RegResp]{
									Proc: p, Invoke: invoke, Response: k.Step(),
									Arg:  objtype.RegOp{Kind: objtype.RegWrite, New: v},
									Resp: objtype.RegResp{Prev: -1}, // prev unknown; see below
								})
							}
						} else {
							if v, ok := r.Read(); ok {
								history = append(history, lincheck.Op[objtype.RegOp, objtype.RegResp]{
									Proc: p, Invoke: invoke, Response: k.Step(),
									Arg:  objtype.RegOp{Kind: objtype.RegRead},
									Resp: objtype.RegResp{Prev: v},
								})
							}
						}
						// Let phases drift so some ops run solo.
						for j := 0; j < (p+1)*3; j++ {
							pp.Step()
						}
					}
				})
			}
			if _, err := k.Run(3_000_000); err != nil {
				t.Fatal(err)
			}
			k.Shutdown()
			if len(history) == 0 {
				t.Skip("adversary aborted everything; nothing to check")
			}
			if len(history) > 60 {
				history = history[:60] // checker's bitset budget
			}
			// The register interface does not return the previous value on
			// writes, so compare write responses loosely: any Prev matches.
			opts := lincheck.Options[int64, objtype.RegResp]{
				Equal: func(a, b objtype.RegResp) bool {
					if a.Prev == -1 || b.Prev == -1 {
						return true // write: response unobserved
					}
					return a == b
				},
			}
			_, ok, err := lincheck.Check[int64](objtype.Register{}, history, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("successful-op history not linearizable:\n%+v", history)
			}
		})
	}
}
