package register

import (
	"tbwf/internal/prim"
	"tbwf/internal/rt"
	"tbwf/internal/sim"
)

// Substrate adapts a simulation kernel to prim.Substrate, so the unified
// composition root (internal/deploy) can wire the paper's stacks on it.
// The adapter also advertises the kernel through SimKernel, which the
// typed fast paths below probe to hand back this package's concrete
// register types — keeping the hot simulation paths free of interface
// boxing.
func Substrate(k *sim.Kernel) prim.Substrate { return simSubstrate{k: k} }

type simSubstrate struct{ k *sim.Kernel }

// SimKernel exposes the wrapped kernel; the typed register fast paths and
// substrate-aware builders probe for it.
func (s simSubstrate) SimKernel() *sim.Kernel { return s.k }

func (s simSubstrate) Spawn(proc int, name string, fn func(p prim.Proc)) {
	s.k.Spawn(proc, name, fn)
}

func (s simSubstrate) N() int                { return s.k.N() }
func (s simSubstrate) SubstrateName() string { return "sim" }

func (s simSubstrate) NewRegisterAny(name string, init any) prim.Register[any] {
	return NewAtomic[any](s.k, name, init)
}

func (s simSubstrate) NewAbortableAny(name string, init any, opts ...prim.AbOption) prim.AbortableRegister[any] {
	return NewAbortable[any](s.k, name, init, opts...)
}

// simKerneler is the capability a substrate advertises when it wraps a
// simulation kernel.
type simKerneler interface{ SimKernel() *sim.Kernel }

// Kernel returns the simulation kernel behind a substrate, if any.
func Kernel(sub prim.Substrate) (*sim.Kernel, bool) {
	if sk, ok := sub.(simKerneler); ok {
		return sk.SimKernel(), true
	}
	return nil, false
}

// SubstrateAtomic creates a typed atomic register on any substrate. On a
// simulation-kernel substrate it returns this package's concrete
// *Atomic[T] (no boxing, byte-identical behavior to NewAtomic); on the
// real-time runtime it returns rt's concrete *rt.Atomic[T] — the live
// invoke path's zero-alloc fast path, since the type-erased fallback
// boxes every struct-typed Write into a fresh interface allocation.
// Other substrates (net) go through the type-erased factory.
func SubstrateAtomic[T any](sub prim.Substrate, name string, init T) prim.Register[T] {
	if k, ok := Kernel(sub); ok {
		return NewAtomic(k, name, init)
	}
	if _, ok := sub.(*rt.Runtime); ok {
		return rt.NewNamedAtomic(name, init)
	}
	return prim.NewRegister(sub, name, init)
}

// SubstrateAbortable creates a typed abortable register on any substrate,
// with the same sim/rt fast paths as SubstrateAtomic.
func SubstrateAbortable[T any](sub prim.Substrate, name string, init T, opts ...AbOption) prim.AbortableRegister[T] {
	if k, ok := Kernel(sub); ok {
		return NewAbortable(k, name, init, opts...)
	}
	if _, ok := sub.(*rt.Runtime); ok {
		return rt.NewNamedAbortable(name, init, opts...)
	}
	return prim.NewAbortable(sub, name, init, opts...)
}
