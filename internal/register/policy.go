// Package register implements the shared registers of the paper's model on
// top of the simulation kernel (internal/sim): atomic registers (Sections
// 3 and 5) and abortable registers (Section 6), plus safe registers for the
// paper's "weaker than safe" comparison.
//
// On the kernel, a register operation spans two steps — invocation and
// response — so two operations are *concurrent* when their [invoke,
// response] windows overlap. Abortable registers detect overlap exactly and
// delegate to an AbortPolicy whether each contended operation aborts, and to
// an EffectPolicy whether an aborted write takes effect. The defaults are
// the strongest adversary the specification allows (every contended
// operation aborts; aborted writes take no effect): the paper's algorithms
// must work against it, and tests sweep the weaker policies.
package register

import "math/rand"

// Op describes one register operation for policy decisions.
type Op struct {
	// Register is the register's name.
	Register string
	// Proc is the invoking process.
	Proc int
	// IsWrite distinguishes writes from reads.
	IsWrite bool
	// Step is the step at which the operation completes.
	Step int64
}

// AbortPolicy decides whether a contended operation on an abortable
// register aborts. It is consulted only for operations that actually
// overlapped another operation on the same register; non-contended
// operations never abort.
type AbortPolicy interface {
	Abort(op Op) bool
}

// EffectPolicy decides whether an aborted write takes effect. The paper:
// "a write operation that aborts may or may not take effect and, since the
// writer gets back ⊥ in either case, it does not know whether its write
// operation succeeded or not."
type EffectPolicy interface {
	TakesEffect(op Op) bool
}

// AbortPolicyFunc adapts a function to AbortPolicy.
type AbortPolicyFunc func(op Op) bool

// Abort implements AbortPolicy.
func (f AbortPolicyFunc) Abort(op Op) bool { return f(op) }

// EffectPolicyFunc adapts a function to EffectPolicy.
type EffectPolicyFunc func(op Op) bool

// TakesEffect implements EffectPolicy.
func (f EffectPolicyFunc) TakesEffect(op Op) bool { return f(op) }

// AlwaysAbort aborts every contended operation: the strongest adversary and
// the default.
func AlwaysAbort() AbortPolicy {
	return AbortPolicyFunc(func(Op) bool { return true })
}

// NeverAbort never aborts; the abortable register then behaves atomically.
// Useful as a sanity baseline in tests.
func NeverAbort() AbortPolicy {
	return AbortPolicyFunc(func(Op) bool { return false })
}

// ProbAbort aborts each contended operation independently with probability
// p, using a deterministic seeded source.
func ProbAbort(p float64, seed int64) AbortPolicy {
	rng := rand.New(rand.NewSource(seed))
	return AbortPolicyFunc(func(Op) bool { return rng.Float64() < p })
}

// AbortWrites aborts only contended writes; contended reads succeed.
// An ablation policy for tests.
func AbortWrites() AbortPolicy {
	return AbortPolicyFunc(func(op Op) bool { return op.IsWrite })
}

// NoEffect makes aborted writes never take effect (default).
func NoEffect() EffectPolicy {
	return EffectPolicyFunc(func(Op) bool { return false })
}

// AlwaysEffect makes aborted writes always take effect.
func AlwaysEffect() EffectPolicy {
	return EffectPolicyFunc(func(Op) bool { return true })
}

// ProbEffect makes each aborted write take effect with probability p, using
// a deterministic seeded source.
func ProbEffect(p float64, seed int64) EffectPolicy {
	rng := rand.New(rand.NewSource(seed))
	return EffectPolicyFunc(func(Op) bool { return rng.Float64() < p })
}
