// Package register implements the shared registers of the paper's model on
// top of the simulation kernel (internal/sim): atomic registers (Sections
// 3 and 5) and abortable registers (Section 6), plus safe registers for the
// paper's "weaker than safe" comparison.
//
// On the kernel, a register operation spans two steps — invocation and
// response — so two operations are *concurrent* when their [invoke,
// response] windows overlap. Abortable registers detect overlap exactly and
// delegate to an AbortPolicy whether each contended operation aborts, and to
// an EffectPolicy whether an aborted write takes effect. The defaults are
// the strongest adversary the specification allows (every contended
// operation aborts; aborted writes take no effect): the paper's algorithms
// must work against it, and tests sweep the weaker policies.
//
// The policy and option vocabulary itself is substrate-neutral and lives in
// internal/prim (both the simulation and the real-time registers consume
// it); this package re-exports it under its historical names and adds the
// seeded probabilistic policies and the recording Tape.
package register

import (
	"math/rand"

	"tbwf/internal/prim"
)

// Op describes one register operation for policy decisions.
type Op = prim.Op

// AbortPolicy decides whether a contended operation on an abortable
// register aborts.
type AbortPolicy = prim.AbortPolicy

// EffectPolicy decides whether an aborted write takes effect.
type EffectPolicy = prim.EffectPolicy

// AbortPolicyFunc adapts a function to AbortPolicy.
type AbortPolicyFunc = prim.AbortPolicyFunc

// EffectPolicyFunc adapts a function to EffectPolicy.
type EffectPolicyFunc = prim.EffectPolicyFunc

// AbOption configures an abortable register on any substrate.
type AbOption = prim.AbOption

// AlwaysAbort aborts every contended operation: the strongest adversary and
// the default.
func AlwaysAbort() AbortPolicy { return prim.AlwaysAbort() }

// NeverAbort never aborts; the abortable register then behaves atomically.
// Useful as a sanity baseline in tests.
func NeverAbort() AbortPolicy { return prim.NeverAbort() }

// AbortWrites aborts only contended writes; contended reads succeed.
// An ablation policy for tests.
func AbortWrites() AbortPolicy { return prim.AbortWrites() }

// NoEffect makes aborted writes never take effect (default).
func NoEffect() EffectPolicy { return prim.NoEffect() }

// AlwaysEffect makes aborted writes always take effect.
func AlwaysEffect() EffectPolicy { return prim.AlwaysEffect() }

// WithAbortPolicy overrides the abort policy (default AlwaysAbort).
func WithAbortPolicy(p AbortPolicy) AbOption { return prim.WithAbortPolicy(p) }

// WithEffectPolicy overrides the effect policy for aborted writes
// (default NoEffect).
func WithEffectPolicy(p EffectPolicy) AbOption { return prim.WithEffectPolicy(p) }

// WithRoles restricts the register to one writer and one reader process
// (single-writer single-reader), as in Section 6.
func WithRoles(writer, reader int) AbOption { return prim.WithRoles(writer, reader) }

// ProbAbort aborts each contended operation independently with probability
// p, using a deterministic seeded source.
func ProbAbort(p float64, seed int64) AbortPolicy {
	rng := rand.New(rand.NewSource(seed))
	return AbortPolicyFunc(func(Op) bool { return rng.Float64() < p })
}

// ProbEffect makes each aborted write take effect with probability p, using
// a deterministic seeded source.
func ProbEffect(p float64, seed int64) EffectPolicy {
	rng := rand.New(rand.NewSource(seed))
	return EffectPolicyFunc(func(Op) bool { return rng.Float64() < p })
}
