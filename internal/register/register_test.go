package register

import (
	"testing"

	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

func TestAtomicReadWrite(t *testing.T) {
	k := sim.New(2)
	r := NewAtomic(k, "r", 0)
	got := make([]int, 0, 4)
	k.Spawn(0, "writer", func(p prim.Proc) {
		for i := 1; i <= 4; i++ {
			r.Write(i)
		}
	})
	k.Spawn(1, "reader", func(p prim.Proc) {
		for {
			got = append(got, r.Read())
			p.Step()
		}
	})
	if _, err := k.Run(200); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	// Reads must be monotone (writer only increases the value).
	prev := 0
	for _, v := range got {
		if v < prev {
			t.Fatalf("non-monotone reads: %v", got)
		}
		prev = v
	}
	if r.Peek() != 4 {
		t.Fatalf("final value = %d, want 4", r.Peek())
	}
	if s := r.Stats(); s.Writes != 4 {
		t.Fatalf("write count = %d, want 4", s.Writes)
	}
}

func TestAtomicOpCostsTwoSteps(t *testing.T) {
	k := sim.New(1)
	r := NewAtomic(k, "r", 0)
	ops := 0
	k.Spawn(0, "w", func(p prim.Proc) {
		for {
			r.Write(ops)
			ops++
		}
	})
	if _, err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	// 2 steps per op in steady state, with a 1-step pipeline fill at the
	// first activation.
	if ops < 49 || ops > 50 {
		t.Fatalf("completed %d ops in 100 steps, want about 50 (2 steps/op)", ops)
	}
}

func TestAbortableSoloOpsNeverAbort(t *testing.T) {
	k := sim.New(2)
	r := NewAbortable(k, "r", 0)
	okWrites, okReads := 0, 0
	k.Spawn(0, "w", func(p prim.Proc) {
		for i := 0; i < 10; i++ {
			if r.Write(i) {
				okWrites++
			}
			// Idle long enough that ops never overlap the reader's.
			for j := 0; j < 10; j++ {
				p.Step()
			}
		}
	})
	// A different idle period makes the two processes' operation phases
	// drift, so some operations run without overlap and must succeed.
	k.Spawn(1, "r", func(p prim.Proc) {
		for {
			if _, ok := r.Read(); ok {
				okReads++
			}
			for j := 0; j < 17; j++ {
				p.Step()
			}
		}
	})
	if _, err := k.Run(400); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if okWrites == 0 || okReads == 0 {
		t.Fatalf("okWrites=%d okReads=%d; with sparse ops some must succeed", okWrites, okReads)
	}
}

func TestAbortableContendedOpsAbort(t *testing.T) {
	k := sim.New(2)
	r := NewAbortable(k, "r", 0) // AlwaysAbort default
	writeAborts, readAborts := 0, 0
	k.Spawn(0, "w", func(p prim.Proc) {
		for i := 0; ; i++ {
			if !r.Write(i) {
				writeAborts++
			}
		}
	})
	k.Spawn(1, "r", func(p prim.Proc) {
		for {
			if _, ok := r.Read(); !ok {
				readAborts++
			}
		}
	})
	if _, err := k.Run(400); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	// Back-to-back ops under round-robin always overlap: everything aborts.
	if writeAborts == 0 || readAborts == 0 {
		t.Fatalf("writeAborts=%d readAborts=%d; contended ops must abort", writeAborts, readAborts)
	}
	if r.Peek() != 0 {
		t.Fatalf("aborted writes took effect: value = %d, want 0 (NoEffect policy)", r.Peek())
	}
}

func TestAbortableEffectPolicy(t *testing.T) {
	k := sim.New(2)
	r := NewAbortable(k, "r", 0, WithEffectPolicy(AlwaysEffect()))
	k.Spawn(0, "w", func(p prim.Proc) {
		for i := 1; ; i++ {
			r.Write(i)
		}
	})
	k.Spawn(1, "r", func(p prim.Proc) {
		for {
			r.Read()
		}
	})
	if _, err := k.Run(200); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if r.Peek() == 0 {
		t.Fatal("with AlwaysEffect, aborted writes must take effect")
	}
}

func TestAbortableNeverAbortBehavesAtomically(t *testing.T) {
	k := sim.New(2)
	r := NewAbortable(k, "r", 0, WithAbortPolicy(NeverAbort()))
	fails := 0
	k.Spawn(0, "w", func(p prim.Proc) {
		for i := 1; ; i++ {
			if !r.Write(i) {
				fails++
			}
		}
	})
	k.Spawn(1, "r", func(p prim.Proc) {
		for {
			if _, ok := r.Read(); !ok {
				fails++
			}
		}
	})
	if _, err := k.Run(200); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if fails != 0 {
		t.Fatalf("NeverAbort register aborted %d ops", fails)
	}
}

func TestAbortableSWSREnforcesRoles(t *testing.T) {
	k := sim.New(2)
	r := NewAbortableSWSR(k, "r", 0, 0, 1)
	k.Spawn(1, "bad-writer", func(p prim.Proc) {
		r.Write(1) // process 1 is the reader; this must panic
	})
	_, err := k.Run(10)
	k.Shutdown()
	if err == nil {
		t.Fatal("expected wiring-violation panic to surface as a run error")
	}
}

func TestAbortableCrashMidOpStopsInterfering(t *testing.T) {
	k := sim.New(2)
	r := NewAbortable(k, "r", 0)
	k.Spawn(0, "w", func(p prim.Proc) {
		for i := 1; ; i++ {
			r.Write(i)
		}
	})
	k.CrashAt(0, 3) // crash mid-operation
	succ := 0
	k.Spawn(1, "r", func(p prim.Proc) {
		for {
			if _, ok := r.Read(); ok {
				succ++
			}
		}
	})
	if _, err := k.Run(200); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if succ == 0 {
		t.Fatal("reads must succeed once the crashed writer stops interfering")
	}
}

func TestSafeReadDuringWriteIsGarbled(t *testing.T) {
	k := sim.New(2)
	r := NewSafe(k, "r", 7, 0, func(int) int { return -999 })
	sawGarbage, sawClean := false, false
	k.Spawn(0, "w", func(p prim.Proc) {
		for i := 0; ; i++ {
			r.Write(7) // value never changes; only overlap matters
			p.Step()
		}
	})
	k.Spawn(1, "r", func(p prim.Proc) {
		for {
			switch r.Read() {
			case -999:
				sawGarbage = true
			case 7:
				sawClean = true
			default:
				t.Error("safe register returned a value that was never garbled nor written")
			}
			p.Step()
		}
	})
	if _, err := k.Run(400); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if !sawGarbage {
		t.Error("never observed a garbled read despite constant write overlap")
	}
	_ = sawClean // overlap pattern may garble everything; that is allowed
}

func TestSafeWriteAlwaysTakesEffect(t *testing.T) {
	// The separation the paper leans on: safe writes always take effect;
	// abortable writes may not.
	k := sim.New(2)
	r := NewSafe(k, "r", 0, 0, nil)
	k.Spawn(0, "w", func(p prim.Proc) { r.Write(42) })
	k.Spawn(1, "r", func(p prim.Proc) {
		for {
			r.Read()
		}
	})
	if _, err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if r.Peek() != 42 {
		t.Fatalf("safe write lost: value = %d, want 42", r.Peek())
	}
}
