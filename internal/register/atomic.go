package register

import (
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// Stats counts the operations performed on one register.
type Stats = prim.Stats

// Atomic is a multi-writer multi-reader atomic register simulated on the
// kernel. Each operation takes two steps (invocation, response) and
// linearizes at its response step.
type Atomic[T any] struct {
	k     *sim.Kernel
	name  string
	val   T
	stats Stats
}

var _ prim.Register[int] = (*Atomic[int])(nil)

// NewAtomic creates an atomic register named name with initial value init.
func NewAtomic[T any](k *sim.Kernel, name string, init T) *Atomic[T] {
	return &Atomic[T]{k: k, name: name, val: init}
}

// Name returns the register's name.
func (r *Atomic[T]) Name() string { return r.name }

// Stats returns a snapshot of the register's operation counters.
func (r *Atomic[T]) Stats() Stats { return r.stats }

// Read returns the register's value, linearized at the read's response step.
func (r *Atomic[T]) Read() T {
	proc := r.k.CurrentProc()
	r.k.Metrics().Reads[proc]++
	r.stats.Reads++
	r.k.OpStep() // invocation step
	r.k.OpStep() // response step
	return r.val
}

// Write replaces the register's value, linearized at the write's response
// step. A write interrupted by a crash between its invocation and response
// does not take effect.
func (r *Atomic[T]) Write(v T) {
	proc := r.k.CurrentProc()
	r.k.Metrics().Writes[proc]++
	r.stats.Writes++
	r.k.OpStep()      // invocation step
	r.k.EffectDelay() // Δ adversary: the effect may be held in flight
	r.k.OpStep()      // response step
	r.val = v
	r.k.Trace().RecordWrite(sim.WriteEvent{
		Step: r.k.Step(), Proc: proc, Register: r.name,
	})
}

// Peek returns the register's current value without simulating an
// operation. For assertions in tests and harness hooks only; algorithm
// code must use Read.
func (r *Atomic[T]) Peek() T { return r.val }
