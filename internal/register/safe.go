package register

import (
	"math/rand"

	"tbwf/internal/sim"
)

// Safe is a single-writer multi-reader *safe* register: a read that does
// not overlap any write returns the most recently written value; a read
// that overlaps a write may return an arbitrary value of the type.
//
// The paper uses safe registers only as a yardstick — its point is that
// TBWF is achievable from abortable registers, which are *weaker than safe*
// (a safe write always takes effect; an aborted abortable write may not,
// and the writer cannot tell). Safe is provided so tests can demonstrate
// that separation, and for inventory completeness.
type Safe[T any] struct {
	k      *sim.Kernel
	name   string
	val    T
	writer int
	garble func(current T) T

	writesInFlight int
	readsGarbled   map[int]bool // task id -> overlapped a write
	stats          Stats
}

// NewSafe creates a safe register named name with initial value init,
// writable only by writer. garble produces the arbitrary value returned by
// reads that overlap a write; nil means "return the zero value", the
// simplest adversarial choice.
func NewSafe[T any](k *sim.Kernel, name string, init T, writer int, garble func(current T) T) *Safe[T] {
	if garble == nil {
		garble = func(T) T { var zero T; return zero }
	}
	return &Safe[T]{
		k: k, name: name, val: init, writer: writer,
		garble:       garble,
		readsGarbled: make(map[int]bool),
	}
}

// GarbleRandomBool returns a garble function for boolean safe registers
// that flips a seeded coin — handy for property tests.
func GarbleRandomBool(seed int64) func(bool) bool {
	rng := rand.New(rand.NewSource(seed))
	return func(bool) bool { return rng.Intn(2) == 0 }
}

// Name returns the register's name.
func (r *Safe[T]) Name() string { return r.name }

// Stats returns a snapshot of the register's operation counters.
func (r *Safe[T]) Stats() Stats { return r.stats }

// Read returns the register's value; if the read overlapped a write it
// returns the garbled (arbitrary) value instead.
func (r *Safe[T]) Read() T {
	proc := r.k.CurrentProc()
	r.k.Metrics().Reads[proc]++
	r.stats.Reads++
	tid := r.k.CurrentTask()
	r.readsGarbled[tid] = r.writesInFlight > 0
	defer delete(r.readsGarbled, tid)
	r.k.OpStep() // invocation step
	r.k.OpStep() // response step
	if r.readsGarbled[tid] {
		return r.garble(r.val)
	}
	return r.val
}

// Write stores v. A safe write always takes effect (at the response step),
// even when concurrent with reads.
func (r *Safe[T]) Write(v T) {
	proc := r.k.CurrentProc()
	if proc != r.writer {
		panic("register: safe register written by non-owner process")
	}
	r.k.Metrics().Writes[proc]++
	r.stats.Writes++
	r.writesInFlight++
	for tid := range r.readsGarbled {
		r.readsGarbled[tid] = true
	}
	defer func() { r.writesInFlight-- }()
	r.k.OpStep() // invocation step
	r.k.OpStep() // response step
	r.val = v
	r.k.Trace().RecordWrite(sim.WriteEvent{Step: r.k.Step(), Proc: proc, Register: r.name})
}

// Peek returns the register's current value without simulating an
// operation. For assertions in tests only.
func (r *Safe[T]) Peek() T { return r.val }
