package omega

import (
	"testing"

	"tbwf/internal/prim"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// runSpecScenario builds the Figure 3 stack (optionally with the A2
// ablation), drives a mixed candidacy scenario — P-candidates, an
// N-candidate, an R-candidate churning forever — and returns the recorder,
// the kernel, and the timeliness report.
func runSpecScenario(t *testing.T, ablateSelfPunish bool, steps int64) (*Recorder, *sim.Kernel, *sim.TimelinessReport) {
	t.Helper()
	const n = 4
	k := sim.New(n)
	dep, err := BuildWith(n, k, func(name string, init int64) prim.Register[int64] {
		return register.NewAtomic(k, name, init)
	}, BuildOptions{AblateSelfPunishment: ablateSelfPunish})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(dep.Instances)
	k.AfterStep(rec.Sample)
	// 0: R-candidate (churns forever); 1, 2: P-candidates; 3: N-candidate.
	dep.Instances[0].Candidate.Set(true)
	dep.Instances[1].Candidate.Set(true)
	dep.Instances[2].Candidate.Set(true)
	k.AfterStep(func(step int64) {
		if step%20_000 == 0 {
			inst := dep.Instances[0]
			inst.Candidate.Set(!inst.Candidate.Get())
		}
	})
	if _, err := k.Run(steps); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	return rec, k, sim.Analyze(k.Trace().Schedule(), n)
}

// The Figure 3 implementation satisfies Definition 5 on a mixed
// N/P/R-candidate run, checked by the spec checker itself rather than by
// scenario-specific assertions.
func TestDefinition5HoldsForFigure3(t *testing.T) {
	rec, k, rep := runSpecScenario(t, false, 1_000_000)
	classes := rec.Classify(200_000, k.Crashed)
	// Sanity on the classification: 0 churns, 1-2 permanent, 3 never.
	if classes[0] != ClassR || classes[1] != ClassP || classes[2] != ClassP || classes[3] != ClassN {
		t.Fatalf("classification = %v, want [R P P N]", classes)
	}
	if v := rec.CheckDefinition5(rep, 64, 200_000, k.Crashed); v != nil {
		t.Fatalf("Definition 5 violated:\n%v", v)
	}
}

// The A2-ablated variant (no self-punishment) must FAIL the same check:
// the churning candidate keeps stealing leadership, so no stable ℓ exists.
func TestDefinition5CatchesAblatedVariant(t *testing.T) {
	rec, k, rep := runSpecScenario(t, true, 1_000_000)
	if v := rec.CheckDefinition5(rep, 64, 200_000, k.Crashed); v == nil {
		t.Fatal("the checker accepted the self-punishment ablation; it should detect oscillation")
	}
}

// The checker is vacuously satisfied when no timely permanent candidate
// exists (Definition 5's premise).
func TestDefinition5VacuousWithoutTimelyPCandidate(t *testing.T) {
	const n = 2
	k := sim.New(n)
	dep, err := BuildWith(n, k, func(name string, init int64) prim.Register[int64] {
		return register.NewAtomic(k, name, init)
	}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(dep.Instances)
	k.AfterStep(rec.Sample)
	// Nobody ever competes.
	if _, err := k.Run(200_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	rep := sim.Analyze(k.Trace().Schedule(), n)
	if v := rec.CheckDefinition5(rep, 64, 50_000, k.Crashed); v != nil {
		t.Fatalf("vacuous case reported violations: %v", v)
	}
}

func TestCandidateClassString(t *testing.T) {
	if ClassN.String() != "N" || ClassP.String() != "P" || ClassR.String() != "R" || ClassNone.String() != "crashed" {
		t.Fatal("class names do not match the paper's letters")
	}
}
