// Package omega implements the paper's dynamic leader elector Ω∆
// (Sections 4 and 5.2).
//
// Ω∆ lets processes dynamically compete for leadership: each process p
// tells Ω∆ whether it currently wants to be a candidate through the local
// input variable candidate_p, and Ω∆ tells p who it thinks the current
// leader is through the local output variable leader_p (the value "?" —
// NoLeader here — means no information).
//
// The specification (Definition 5) is stated in terms of the timeliness of
// the processes that compete: partition the correct processes into
// Ncandidates (eventually never candidate), Pcandidates (eventually always
// candidate) and Rcandidates (switch forever). If Pcandidates ∩ Timely ≠ ∅,
// then there is ℓ ∈ (Pcandidates ∪ Rcandidates) ∩ Timely such that
// eventually leader_ℓ = ℓ, every Pcandidate's leader is ℓ, and every
// Rcandidate's leader is in {?, ℓ}; every Ncandidate eventually outputs ?.
// Under the *canonical use* (Definition 6: after dropping out, wait until
// leader_p ≠ p before competing again) the elected ℓ is moreover in
// Pcandidates ∩ Timely (Theorem 7).
//
// This package provides the Figure 3 implementation from activity monitors
// and atomic registers; package omegaab provides the Figure 4–6
// implementation from abortable registers only. Both expose the same
// per-process Instance so the TBWF construction (internal/core) is agnostic
// to which one it runs on.
package omega

import "tbwf/internal/prim"

// NoLeader is the paper's "?" output: Ω∆ offers no leader information.
const NoLeader = -1

// Instance is one process's endpoint of Ω∆: the input variable candidate_p
// and the output variable leader_p of Section 4.
type Instance struct {
	// Me is the process this endpoint belongs to.
	Me int
	// Candidate is the Ω∆ input: set true to compete for leadership.
	Candidate *prim.Var[bool]
	// Leader is the Ω∆ output: the current leader estimate, or NoLeader.
	Leader *prim.Var[int]
}

// NewInstance returns an endpoint for process me with candidate=false and
// leader=? (the initial state of Figures 3 and 6).
func NewInstance(me int) *Instance {
	return &Instance{
		Me:        me,
		Candidate: prim.NewVar(false),
		Leader:    prim.NewVar(NoLeader),
	}
}

// minByCounterThenID returns ℓ such that (counter[ℓ], ℓ) is the
// lexicographic minimum over the given set — the leader choice rule used
// by both implementations (Figure 3 line 14, Figure 6 line 48).
func minByCounterThenID(set []int, counter []int64) int {
	best := -1
	for _, q := range set {
		if best == -1 || counter[q] < counter[best] || (counter[q] == counter[best] && q < best) {
			best = q
		}
	}
	return best
}
