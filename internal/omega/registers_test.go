package omega

import (
	"testing"

	"tbwf/internal/sim"
)

// buildSys wires the Figure 2+3 stack on a kernel and attaches an observer.
func buildSys(t *testing.T, k *sim.Kernel) (*System, *Observer) {
	t.Helper()
	sys, err := BuildRegisters(k)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(sys.Instances)
	k.AfterStep(obs.Sample)
	return sys, obs
}

func runK(t *testing.T, k *sim.Kernel, steps int64) {
	t.Helper()
	if _, err := k.Run(steps); err != nil {
		t.Fatal(err)
	}
}

// All processes are timely permanent candidates: a unique, stable, common
// leader must emerge, and it must output itself as leader (Definition 5.1a/b
// with everyone in Pcandidates ∩ Timely).
func TestAllTimelyPermanentCandidatesElectStableLeader(t *testing.T) {
	const n = 4
	k := sim.New(n)
	sys, obs := buildSys(t, k)
	for p := 0; p < n; p++ {
		sys.Instances[p].Candidate.Set(true)
	}
	runK(t, k, 150000)
	defer k.Shutdown()

	all := []int{0, 1, 2, 3}
	ell := obs.AgreedLeader(all)
	if ell == NoLeader {
		t.Fatalf("no common leader after 150k steps: %v", obs.Leaders())
	}
	if got := sys.Instances[ell].Leader.Get(); got != ell {
		t.Fatalf("leader %d outputs %d, want itself", ell, got)
	}
	// Stability: the leader vector must have stopped changing well before
	// the end.
	if obs.StabilizedAt() > 120000 {
		t.Fatalf("leader vector still changing at step %d", obs.StabilizedAt())
	}
}

// A non-candidate must eventually output "?" (Definition 5.2), and must
// never become leader.
func TestNonCandidateOutputsUnknown(t *testing.T) {
	const n = 3
	k := sim.New(n)
	sys, obs := buildSys(t, k)
	sys.Instances[0].Candidate.Set(true)
	sys.Instances[1].Candidate.Set(true)
	// Process 2 never competes.
	runK(t, k, 100000)
	defer k.Shutdown()

	if got := sys.Instances[2].Leader.Get(); got != NoLeader {
		t.Fatalf("non-candidate outputs leader %d, want ?", got)
	}
	ell := obs.AgreedLeader([]int{0, 1})
	if ell != 0 && ell != 1 {
		t.Fatalf("candidates agreed on %d, want one of the candidates", ell)
	}
}

// When the current leader crashes, the surviving candidates must elect a
// new (timely) leader.
func TestLeaderCrashTriggersReelection(t *testing.T) {
	const n = 3
	k := sim.New(n)
	sys, obs := buildSys(t, k)
	for p := 0; p < n; p++ {
		sys.Instances[p].Candidate.Set(true)
	}
	runK(t, k, 100000)
	first := obs.AgreedLeader([]int{0, 1, 2})
	if first == NoLeader {
		t.Fatalf("no leader before crash: %v", obs.Leaders())
	}
	k.Crash(first)
	runK(t, k, 400000) // adaptive timeouts may have grown; give time
	defer k.Shutdown()

	survivors := make([]int, 0, 2)
	for p := 0; p < n; p++ {
		if p != first {
			survivors = append(survivors, p)
		}
	}
	second := obs.AgreedLeader(survivors)
	if second == NoLeader || second == first {
		t.Fatalf("after leader %d crashed, survivors output %v; want agreement on a survivor",
			first, obs.Leaders())
	}
}

// The heart of Ω∆ (Definition 5.1): with one timely permanent candidate and
// the other candidates untimely, the timely one must be elected — by every
// permanent candidate, including the untimely ones.
func TestTimelyCandidateWinsOverUntimelyOnes(t *testing.T) {
	const n = 4
	// Process 3 is the only timely candidate; 0 and 1 have geometrically
	// growing gaps (correct but untimely); 2 is timely but never competes.
	// Giving the untimely ones the *smallest* ids makes this the hard
	// case: the (counter, id) rule prefers them until punishments
	// accumulate.
	k := sim.New(n, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{
		0: sim.GrowingGaps(200, 400, 1.6),
		1: sim.GrowingGaps(200, 600, 1.6),
	})))
	sys, obs := buildSys(t, k)
	sys.Instances[0].Candidate.Set(true)
	sys.Instances[1].Candidate.Set(true)
	sys.Instances[3].Candidate.Set(true)

	runK(t, k, 1500000)
	defer k.Shutdown()

	// The timely permanent candidate 3 must consider itself leader.
	if got := sys.Instances[3].Leader.Get(); got != 3 {
		t.Fatalf("timely candidate outputs leader %d, want itself; leaders=%v counters=%v",
			got, obs.Leaders(), counterValues(sys))
	}
	// Untimely candidates' outputs are sampled at the end of the run;
	// they must have converged to 3 as well (they are Pcandidates).
	for _, p := range []int{0, 1} {
		if got := sys.Instances[p].Leader.Get(); got != 3 {
			t.Errorf("untimely candidate %d outputs leader %d, want 3", p, got)
		}
	}
	// And the non-candidate still outputs ?.
	if got := sys.Instances[2].Leader.Get(); got != NoLeader {
		t.Errorf("non-candidate outputs %d, want ?", got)
	}
}

func counterValues(sys *System) []int64 {
	out := make([]int64, sys.N)
	for q := range out {
		out[q] = sys.CounterReg[q].Peek()
	}
	return out
}

// Write-efficiency (Section 5.2, closing remark): once a sole timely
// permanent candidate stabilizes as leader, the only process writing shared
// registers is the leader itself.
func TestWriteEfficiencyAfterStabilization(t *testing.T) {
	const n = 3
	k := sim.New(n, sim.WithWriteLog(true))
	sys, obs := buildSys(t, k)
	for p := 0; p < n; p++ {
		sys.Instances[p].Candidate.Set(true)
	}
	runK(t, k, 200000)
	defer k.Shutdown()

	ell := obs.AgreedLeader([]int{0, 1, 2})
	if ell == NoLeader {
		t.Fatalf("no stable leader: %v", obs.Leaders())
	}
	stable := obs.StabilizedAt()
	// Give the system a settling margin after the last leader change, then
	// require that only the leader writes.
	margin := stable + 20000
	writers := map[int]int64{}
	for _, ev := range k.Trace().Writes() {
		if ev.Step >= margin {
			writers[ev.Proc]++
		}
	}
	for proc, cnt := range writers {
		if proc != ell {
			t.Errorf("process %d wrote %d times after stabilization (leader is %d)", proc, cnt, ell)
		}
	}
	if writers[ell] == 0 {
		t.Error("leader stopped heartbeating after stabilization")
	}
}

// A candidate that withdraws must stop being leader at the others.
func TestLeaderWithdrawalHandsOverLeadership(t *testing.T) {
	const n = 3
	k := sim.New(n)
	sys, obs := buildSys(t, k)
	for p := 0; p < n; p++ {
		sys.Instances[p].Candidate.Set(true)
	}
	runK(t, k, 100000)
	first := obs.AgreedLeader([]int{0, 1, 2})
	if first == NoLeader {
		t.Fatal("no initial leader")
	}
	sys.Instances[first].Candidate.Set(false)
	runK(t, k, 400000)
	defer k.Shutdown()

	if got := sys.Instances[first].Leader.Get(); got != NoLeader {
		t.Errorf("withdrawn candidate outputs %d, want ?", got)
	}
	survivors := make([]int, 0, 2)
	for p := 0; p < n; p++ {
		if p != first {
			survivors = append(survivors, p)
		}
	}
	second := obs.AgreedLeader(survivors)
	if second == NoLeader || second == first {
		t.Fatalf("remaining candidates output %v after leader withdrew", obs.Leaders())
	}
}

func TestRegistersTaskRejectsBadWiring(t *testing.T) {
	if _, err := RegistersTask(RegistersConfig{N: 1, Me: 0}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := RegistersTask(RegistersConfig{N: 3, Me: 5}); err == nil {
		t.Error("out-of-range me accepted")
	}
	if _, err := RegistersTask(RegistersConfig{N: 3, Me: 0, Endpoint: NewInstance(0)}); err == nil {
		t.Error("missing slices accepted")
	}
}
