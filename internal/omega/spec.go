package omega

import (
	"fmt"

	"tbwf/internal/sim"
)

// This file checks recorded runs against the Ω∆ specification
// (Definition 5) directly: it classifies candidates as the paper does
// (Ncandidates / Pcandidates / Rcandidates, Definition 4), computes the
// timely set from the schedule, and verifies the leader outputs on the
// run's suffix. Definition 5 quantifies over infinite suffixes; the finite
// reading used here is "over the last Window steps of the run".

// Recorder samples every process's candidate input and leader output once
// per step (attach Sample via Kernel.AfterStep).
type Recorder struct {
	instances []*Instance
	// candTrue[p]/candFalse[p] are the last steps candidate_p was seen
	// true/false (−1 = never).
	candTrue, candFalse []int64
	// candChanges[p] counts candidate transitions (flicker intensity).
	candChanges []int64
	lastCand    []bool
	// leaderAt[p] is the last sampled leader output; leaderStable[p] is
	// the step since which it has not changed.
	leaderAt     []int
	leaderStable []int64
	steps        int64
}

// NewRecorder returns a recorder over the per-process endpoints.
func NewRecorder(instances []*Instance) *Recorder {
	n := len(instances)
	r := &Recorder{
		instances:    instances,
		candTrue:     make([]int64, n),
		candFalse:    make([]int64, n),
		candChanges:  make([]int64, n),
		lastCand:     make([]bool, n),
		leaderAt:     make([]int, n),
		leaderStable: make([]int64, n),
	}
	for p := 0; p < n; p++ {
		r.candTrue[p] = -1
		r.candFalse[p] = -1
		r.leaderAt[p] = NoLeader
	}
	return r
}

// Sample records the current inputs/outputs; call from an AfterStep hook.
func (r *Recorder) Sample(step int64) {
	r.steps = step
	for p, inst := range r.instances {
		c := inst.Candidate.Get()
		if c {
			r.candTrue[p] = step
		} else {
			r.candFalse[p] = step
		}
		if step > 1 && c != r.lastCand[p] {
			r.candChanges[p]++
		}
		r.lastCand[p] = c
		l := inst.Leader.Get()
		if l != r.leaderAt[p] {
			r.leaderAt[p] = l
			r.leaderStable[p] = step
		}
	}
}

// CandidateClass is the paper's Definition 4 partition.
type CandidateClass int

const (
	// ClassNone is a crashed process (excluded from the partition).
	ClassNone CandidateClass = iota
	// ClassN is Ncandidates: eventually never a candidate.
	ClassN
	// ClassP is Pcandidates: eventually always a candidate.
	ClassP
	// ClassR is Rcandidates: a candidate infinitely often and a
	// non-candidate infinitely often.
	ClassR
)

// String names the class with the paper's letters.
func (c CandidateClass) String() string {
	switch c {
	case ClassN:
		return "N"
	case ClassP:
		return "P"
	case ClassR:
		return "R"
	default:
		return "crashed"
	}
}

// Classify assigns each correct process its Definition 4 class using the
// run's last window steps: P if candidate throughout the window, N if
// non-candidate throughout, R otherwise.
func (r *Recorder) Classify(window int64, crashed func(p int) bool) []CandidateClass {
	from := r.steps - window
	out := make([]CandidateClass, len(r.instances))
	for p := range r.instances {
		if crashed != nil && crashed(p) {
			out[p] = ClassNone
			continue
		}
		sawTrue := r.candTrue[p] >= from
		sawFalse := r.candFalse[p] >= from
		switch {
		case sawTrue && !sawFalse:
			out[p] = ClassP
		case sawFalse && !sawTrue:
			out[p] = ClassN
		default:
			out[p] = ClassR
		}
	}
	return out
}

// CheckDefinition5 verifies the recorded run against Definition 5 over the
// final window steps. timelyBound classifies processes as timely via the
// schedule analysis. It returns nil when the specification holds, or a
// list of human-readable violations.
//
// Finite-run reading: "there is a time after which X" becomes "X holds and
// has held for the whole window".
func (r *Recorder) CheckDefinition5(rep *sim.TimelinessReport, timelyBound, window int64, crashed func(p int) bool) []string {
	classes := r.Classify(window, crashed)
	from := r.steps - window
	timely := map[int]bool{}
	for _, p := range rep.TimelyWithin(timelyBound) {
		timely[p] = true
	}

	var violations []string
	stableLeaderOf := func(p int) (int, bool) {
		return r.leaderAt[p], r.leaderStable[p] <= from
	}

	// Property 2: every Ncandidate eventually outputs ?.
	for p, cls := range classes {
		if cls != ClassN {
			continue
		}
		if l, stable := stableLeaderOf(p); !stable || l != NoLeader {
			violations = append(violations,
				fmt.Sprintf("Ncandidate %d outputs %d (stable=%v), want stable ?", p, l, stable))
		}
	}

	// Property 1: if some timely Pcandidate exists, there must be a timely
	// ℓ ∈ P∪R with (a) leader_ℓ = ℓ stably, (b) every Pcandidate stably
	// outputs ℓ, (c) every Rcandidate's output ∈ {?, ℓ}.
	hasTimelyP := false
	for p, cls := range classes {
		if cls == ClassP && timely[p] {
			hasTimelyP = true
		}
	}
	if !hasTimelyP {
		return violations // premise false: nothing more to check
	}
	// Find ℓ from the Pcandidates' agreement.
	ell := NoLeader
	for p, cls := range classes {
		if cls != ClassP {
			continue
		}
		l, stable := stableLeaderOf(p)
		if !stable {
			violations = append(violations,
				fmt.Sprintf("Pcandidate %d has an unstable leader output (last change at %d, window from %d)", p, r.leaderStable[p], from))
			return violations
		}
		if ell == NoLeader {
			ell = l
		} else if l != ell {
			violations = append(violations,
				fmt.Sprintf("Pcandidates disagree on the leader: %d vs %d", ell, l))
			return violations
		}
	}
	if ell == NoLeader {
		violations = append(violations, "no Pcandidate outputs a leader")
		return violations
	}
	if cls := classes[ell]; cls != ClassP && cls != ClassR {
		violations = append(violations,
			fmt.Sprintf("elected leader %d is in class %v, want P or R", ell, cls))
	}
	if !timely[ell] {
		violations = append(violations,
			fmt.Sprintf("elected leader %d is not timely (bound %d)", ell, rep.Bound[ell]))
	}
	// (a) ℓ outputs itself.
	if l, stable := stableLeaderOf(ell); !stable || l != ell {
		violations = append(violations,
			fmt.Sprintf("leader %d outputs %d (stable=%v), want itself", ell, l, stable))
	}
	// (c) Rcandidates output ? or ℓ. Their output may flap between the
	// two, so only the *value set* is constrained; sampling the current
	// value suffices for the finite check.
	for p, cls := range classes {
		if cls != ClassR {
			continue
		}
		if l := r.leaderAt[p]; l != NoLeader && l != ell {
			violations = append(violations,
				fmt.Sprintf("Rcandidate %d outputs %d, want ? or %d", p, l, ell))
		}
	}
	return violations
}
