package omega

import (
	"fmt"

	"tbwf/internal/monitor"
	"tbwf/internal/prim"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// Deployment is a fully wired Ω∆ over atomic registers on any substrate:
// per-process endpoints, the n(n−1) activity monitors, and the shared
// counter registers. The monitor and Figure 3 tasks are already spawned.
type Deployment struct {
	N int
	// Instances[p] is process p's Ω∆ endpoint.
	Instances []*Instance
	// Monitors[p][q] is A(p,q); the diagonal is nil.
	Monitors [][]*monitor.Pair
	// CounterReg[q] is the shared CounterRegister[q].
	CounterReg []prim.Register[int64]
}

// BuildOptions collects the optional knobs of BuildWith.
type BuildOptions struct {
	// AblateSelfPunishment disables Figure 3's self-punishment rule
	// (RegistersConfig.AblateSelfPunishment) — the A2 ablation,
	// experiments only.
	AblateSelfPunishment bool
}

// BuildWith wires the Figure 2 + Figure 3 stack for n processes on an
// arbitrary substrate: sp spawns the tasks, newReg creates the shared
// atomic registers (heartbeat registers and counter registers). For every
// ordered pair (p,q) it spawns the monitoring task of A(p,q) on p and the
// monitored task on q, plus each process's Ω∆ main loop.
func BuildWith(n int, sp prim.Spawner, newReg func(name string, init int64) prim.Register[int64], opts BuildOptions) (*Deployment, error) {
	if n < 2 {
		return nil, fmt.Errorf("omega: n = %d, need at least 2 processes", n)
	}
	if sp == nil || newReg == nil {
		return nil, fmt.Errorf("omega: nil spawner or register factory")
	}
	d := &Deployment{
		N:          n,
		Instances:  make([]*Instance, n),
		Monitors:   make([][]*monitor.Pair, n),
		CounterReg: make([]prim.Register[int64], n),
	}
	for p := 0; p < n; p++ {
		d.Instances[p] = NewInstance(p)
		d.Monitors[p] = make([]*monitor.Pair, n)
		d.CounterReg[p] = newReg(fmt.Sprintf("CounterRegister[%d]", p), 0)
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p == q {
				continue
			}
			hb := newReg(fmt.Sprintf("HbRegister[%d,%d]", q, p), -1)
			m := monitor.NewPair(p, q, hb)
			d.Monitors[p][q] = m
			sp.Spawn(q, fmt.Sprintf("A(%d,%d).monitored", p, q), m.MonitoredTask())
			sp.Spawn(p, fmt.Sprintf("A(%d,%d).monitoring", p, q), m.MonitoringTask())
		}
	}
	for p := 0; p < n; p++ {
		cfg := RegistersConfig{
			N:                    n,
			Me:                   p,
			Endpoint:             d.Instances[p],
			Monitoring:           make([]*prim.Var[bool], n),
			Status:               make([]*prim.Var[monitor.Status], n),
			FaultCntr:            make([]*prim.Var[int64], n),
			ActiveFor:            make([]*prim.Var[bool], n),
			CounterReg:           d.CounterReg,
			AblateSelfPunishment: opts.AblateSelfPunishment,
		}
		for q := 0; q < n; q++ {
			if q == p {
				continue
			}
			cfg.Monitoring[q] = d.Monitors[p][q].Monitoring
			cfg.Status[q] = d.Monitors[p][q].Status
			cfg.FaultCntr[q] = d.Monitors[p][q].FaultCntr
			cfg.ActiveFor[q] = d.Monitors[q][p].ActiveFor
		}
		task, err := RegistersTask(cfg)
		if err != nil {
			return nil, fmt.Errorf("wire process %d: %w", p, err)
		}
		sp.Spawn(p, fmt.Sprintf("omega[%d]", p), task)
	}
	return d, nil
}

// Leaders returns the current leader output of every process — a
// telemetry tap; it consumes no process steps.
func (d *Deployment) Leaders() []int {
	out := make([]int, d.N)
	for p := range out {
		out[p] = d.Instances[p].Leader.Get()
	}
	return out
}

// FaultMatrix returns the current faultCntr_p[q] matrix (diagonal 0): how
// many times each monitoring process has suspected each monitored one of
// not being timely. A telemetry tap; it consumes no process steps.
func (d *Deployment) FaultMatrix() [][]int64 {
	out := make([][]int64, d.N)
	for p := 0; p < d.N; p++ {
		out[p] = make([]int64, d.N)
		for q := 0; q < d.N; q++ {
			if m := d.Monitors[p][q]; m != nil {
				out[p][q] = m.FaultCntr.Get()
			}
		}
	}
	return out
}

// System is a Deployment on the simulation kernel, with concrete register
// types exposed so tests and experiments can Peek at counter values.
type System struct {
	N int
	// Instances[p] is process p's Ω∆ endpoint.
	Instances []*Instance
	// Monitors[p][q] is A(p,q); the diagonal is nil.
	Monitors [][]*monitor.Pair
	// CounterReg[q] is the shared CounterRegister[q].
	CounterReg []*register.Atomic[int64]
}

// BuildRegisters wires the Figure 2 + Figure 3 stack on a simulation
// kernel.
func BuildRegisters(k *sim.Kernel) (*System, error) {
	d, err := BuildWith(k.N(), k, func(name string, init int64) prim.Register[int64] {
		return register.NewAtomic(k, name, init)
	}, BuildOptions{})
	if err != nil {
		return nil, err
	}
	s := &System{
		N:          d.N,
		Instances:  d.Instances,
		Monitors:   d.Monitors,
		CounterReg: make([]*register.Atomic[int64], d.N),
	}
	for q, r := range d.CounterReg {
		ar, ok := r.(*register.Atomic[int64])
		if !ok {
			return nil, fmt.Errorf("omega: unexpected register type %T", r)
		}
		s.CounterReg[q] = ar
	}
	return s, nil
}

// Leaders returns the current leader output of every process. Intended for
// AfterStep hooks and assertions; it does not consume simulation steps.
func (s *System) Leaders() []int {
	out := make([]int, s.N)
	for p := range out {
		out[p] = s.Instances[p].Leader.Get()
	}
	return out
}
