package omega

import (
	"fmt"

	"tbwf/internal/monitor"
	"tbwf/internal/prim"
)

// RegistersConfig wires one process's Figure 3 task: its Ω∆ endpoint, its
// side of every activity monitor, and the shared counter registers.
//
// For each peer q ≠ p, process p holds the monitoring side of A(p,q)
// (inputs Monitoring[q], outputs Status[q] and FaultCntr[q]) and the
// monitored side of A(q,p) (input ActiveFor[q]). CounterReg[q] is the
// shared atomic register CounterRegister[q], which counts roughly how many
// times q has been considered "bad" for leadership; it is written by any
// process (multi-writer), read by all.
//
// The self slot (index p) of the four monitor slices is unused and may be
// nil: the paper notes that A(p,p) is trivial, and Figure 3 always places p
// itself in its active set.
type RegistersConfig struct {
	N  int
	Me int

	// Endpoint is the process's Ω∆ input/output pair.
	Endpoint *Instance

	// Monitoring[q] is A(p,q)'s input at p.
	Monitoring []*prim.Var[bool]
	// Status[q] and FaultCntr[q] are A(p,q)'s outputs at p.
	Status    []*prim.Var[monitor.Status]
	FaultCntr []*prim.Var[int64]
	// ActiveFor[q] is A(q,p)'s input at p: "p is active for q".
	ActiveFor []*prim.Var[bool]

	// CounterReg[q] is the shared register CounterRegister[q].
	CounterReg []prim.Register[int64]

	// AblateSelfPunishment skips Figure 3 lines 7–8 (the counter bump on
	// every candidacy entry). The paper warns that without it a process
	// that joins and leaves the competition forever keeps the smallest
	// counter and leadership oscillates forever; experiment A2
	// demonstrates exactly that. Never enable it outside experiments.
	AblateSelfPunishment bool
}

func (c *RegistersConfig) validate() error {
	if c.N < 2 {
		return fmt.Errorf("omega: n = %d, need at least 2 processes", c.N)
	}
	if c.Me < 0 || c.Me >= c.N {
		return fmt.Errorf("omega: me = %d out of range [0,%d)", c.Me, c.N)
	}
	if c.Endpoint == nil {
		return fmt.Errorf("omega: nil endpoint")
	}
	if len(c.Monitoring) != c.N || len(c.Status) != c.N || len(c.FaultCntr) != c.N ||
		len(c.ActiveFor) != c.N || len(c.CounterReg) != c.N {
		return fmt.Errorf("omega: monitor/register slices must have length n=%d", c.N)
	}
	for q := 0; q < c.N; q++ {
		if q == c.Me {
			continue
		}
		if c.Monitoring[q] == nil || c.Status[q] == nil || c.FaultCntr[q] == nil || c.ActiveFor[q] == nil {
			return fmt.Errorf("omega: nil monitor wiring for peer %d", q)
		}
		if c.CounterReg[q] == nil {
			return fmt.Errorf("omega: nil counter register for process %d", q)
		}
	}
	if c.CounterReg[c.Me] == nil {
		return fmt.Errorf("omega: nil counter register for self")
	}
	return nil
}

// RegistersTask returns the Figure 3 main loop for one process: the Ω∆
// implementation from activity monitors and atomic registers. It returns
// an error only for invalid wiring.
func RegistersTask(cfg RegistersConfig) (func(prim.Proc), error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return func(p prim.Proc) {
		me, n := cfg.Me, cfg.N
		var (
			status       = make([]monitor.Status, n)
			faultCntr    = make([]int64, n)
			maxFaultCntr = make([]int64, n)
			counter      = make([]int64, n)
			activeSet    []int
		)
		for { // line 1: repeat forever
			cfg.Endpoint.Leader.Set(NoLeader) // line 2
			for q := 0; q < n; q++ {          // lines 3–4
				if q == me {
					continue
				}
				cfg.Monitoring[q].Set(false)
				cfg.ActiveFor[q].Set(false)
			}

			for !cfg.Endpoint.Candidate.Get() { // line 5: while not candidate do skip
				p.Step()
			}

			for q := 0; q < n; q++ { // line 6
				if q != me {
					cfg.Monitoring[q].Set(true)
				}
			}
			// Lines 7–8: self-punishment on (re-)entry, so a process that
			// joins and leaves the competition forever accumulates an
			// unbounded counter and is eventually never chosen.
			if !cfg.AblateSelfPunishment {
				counter[me] = cfg.CounterReg[me].Read()
				cfg.CounterReg[me].Write(counter[me] + 1)
			}

			for cfg.Endpoint.Candidate.Get() { // line 9
				// Lines 10–11: consult A(p,q) until every status is known.
				for q := 0; q < n; q++ {
					if q == me {
						continue
					}
					for {
						status[q] = cfg.Status[q].Get()
						faultCntr[q] = cfg.FaultCntr[q].Get()
						if status[q] != monitor.StatusUnknown {
							break
						}
						p.Step()
					}
				}
				// Line 12: activeSet ← {q : status[q] = active} ∪ {p}.
				activeSet = activeSet[:0]
				for q := 0; q < n; q++ {
					if q == me || status[q] == monitor.StatusActive {
						activeSet = append(activeSet, q)
					}
				}
				// Line 13.
				for q := 0; q < n; q++ {
					counter[q] = cfg.CounterReg[q].Read()
				}
				// Line 14.
				leader := minByCounterThenID(activeSet, counter)
				cfg.Endpoint.Leader.Set(leader)
				// Lines 15–17: a process advertises itself as active only
				// while it considers itself the leader.
				iAmLeader := leader == me
				for q := 0; q < n; q++ {
					if q != me {
						cfg.ActiveFor[q].Set(iAmLeader)
					}
				}
				// Lines 18–21: punish processes whose fault counter grew.
				for q := 0; q < n; q++ {
					if q == me {
						continue
					}
					if faultCntr[q] > maxFaultCntr[q] {
						cfg.CounterReg[q].Write(counter[q] + 1)
						maxFaultCntr[q] = faultCntr[q]
					}
				}
				p.Step()
			}
		}
	}, nil
}
