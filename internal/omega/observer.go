package omega

import "tbwf/internal/prim"

// Observer samples every process's leader output once per simulation step
// (attach Sample via Kernel.AfterStep) and tracks when the leader vector
// last changed — the run's stabilization point. It reads the Instances'
// output variables directly, so it consumes no simulation steps and does
// not perturb timeliness.
type Observer struct {
	instances []*Instance
	last      []int
	// lastChange is the latest step at which any leader output changed.
	lastChange int64
	// changes counts leader-output transitions (per process, summed):
	// a measure of election churn.
	changes int64
}

// NewObserver returns an observer over the given per-process endpoints.
func NewObserver(instances []*Instance) *Observer {
	last := make([]int, len(instances))
	for i := range last {
		last[i] = NoLeader
	}
	return &Observer{instances: instances, last: last}
}

// Sample records the current leader outputs; call it from an AfterStep
// hook.
func (o *Observer) Sample(step int64) {
	for p, inst := range o.instances {
		cur := inst.Leader.Get()
		if cur != o.last[p] {
			o.last[p] = cur
			o.lastChange = step
			o.changes++
		}
	}
}

// Leaders returns the most recently sampled leader vector.
func (o *Observer) Leaders() []int {
	out := make([]int, len(o.last))
	copy(out, o.last)
	return out
}

// StabilizedAt returns the step after which no leader output changed.
func (o *Observer) StabilizedAt() int64 { return o.lastChange }

// Changes returns the total number of leader-output transitions observed.
func (o *Observer) Changes() int64 { return o.changes }

// AgreedLeader returns the leader every process in procs currently outputs,
// or NoLeader if they disagree (outputs of processes not in procs are
// ignored).
func (o *Observer) AgreedLeader(procs []int) int {
	leader := NoLeader
	for _, p := range procs {
		v := o.last[p]
		if leader == NoLeader {
			leader = v
		}
		if v != leader {
			return NoLeader
		}
	}
	return leader
}

// Endpoints is a convenience that extracts the Instances' endpoints as the
// candidate input variables, for scenario drivers that toggle candidacy.
func Endpoints(instances []*Instance) []*prim.Var[bool] {
	out := make([]*prim.Var[bool], len(instances))
	for i, inst := range instances {
		out[i] = inst.Candidate
	}
	return out
}
