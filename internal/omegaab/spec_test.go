package omegaab

import (
	"testing"

	"tbwf/internal/omega"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// The Figure 4–6 implementation must satisfy Definition 5 under the same
// mixed N/P/R scenario as the atomic-register one, checked by the shared
// spec checker (omega.Recorder) under the strongest abort adversary.
func TestDefinition5HoldsForAbortableImplementation(t *testing.T) {
	const n = 4
	k := sim.New(n)
	sys, err := Build(register.Substrate(k))
	if err != nil {
		t.Fatal(err)
	}
	rec := omega.NewRecorder(sys.Instances)
	k.AfterStep(rec.Sample)
	// 0: R-candidate; 1, 2: P-candidates; 3: N-candidate.
	sys.Instances[0].Candidate.Set(true)
	sys.Instances[1].Candidate.Set(true)
	sys.Instances[2].Candidate.Set(true)
	k.AfterStep(func(step int64) {
		if step%50_000 == 0 {
			inst := sys.Instances[0]
			inst.Candidate.Set(!inst.Candidate.Get())
		}
	})
	if _, err := k.Run(2_500_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	rep := sim.Analyze(k.Trace().Schedule(), n)
	if v := rec.CheckDefinition5(rep, 64, 400_000, k.Crashed); v != nil {
		t.Fatalf("Definition 5 violated by the abortable implementation:\n%v", v)
	}
}
