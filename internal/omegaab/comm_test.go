package omegaab

import (
	"fmt"
	"testing"

	"tbwf/internal/prim"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// wireMessengers builds, for n processes on k, a full Messenger mesh over
// fresh SWSR abortable registers with the strongest adversary.
func wireMessengers(t *testing.T, k *sim.Kernel, n int) []*Messenger[int] {
	t.Helper()
	regs := make([][]*register.Abortable[int], n)
	for p := 0; p < n; p++ {
		regs[p] = make([]*register.Abortable[int], n)
		for q := 0; q < n; q++ {
			if p != q {
				regs[p][q] = register.NewAbortableSWSR(k, fmt.Sprintf("Msg[%d,%d]", p, q), 0, p, q)
			}
		}
	}
	ms := make([]*Messenger[int], n)
	for p := 0; p < n; p++ {
		out := make([]prim.AbortableRegister[int], n)
		in := make([]prim.AbortableRegister[int], n)
		for q := 0; q < n; q++ {
			if q == p {
				out[q] = nil
				in[q] = nil
				continue
			}
			out[q] = regs[p][q]
			in[q] = regs[q][p]
		}
		m, err := NewMessenger(p, n, out, in, 0)
		if err != nil {
			t.Fatal(err)
		}
		ms[p] = m
	}
	return ms
}

// The Figure 4 guarantee: if the writer is reader-timely and the value
// stops changing, the reader eventually learns the final value — even
// though every contended operation aborts.
func TestMessengerDeliversFinalValue(t *testing.T) {
	const n = 2
	k := sim.New(n)
	ms := wireMessengers(t, k, n)

	// Writer: value changes a few times, then freezes at 42.
	src := prim.NewVar(0)
	k.Spawn(0, "writer", func(p prim.Proc) {
		msgTo := make([]int, n)
		for {
			msgTo[1] = src.Get()
			ms[0].WriteMsgs(msgTo)
			p.Step()
		}
	})
	var got []int
	k.Spawn(1, "reader", func(p prim.Proc) {
		for {
			got = ms[1].ReadMsgs()
			p.Step()
		}
	})
	k.AfterStep(func(step int64) {
		switch step {
		case 100:
			src.Set(7)
		case 300:
			src.Set(42) // final value
		}
	})
	if _, err := k.Run(50000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if got[0] != 42 {
		t.Fatalf("reader's final message from writer = %d, want 42", got[0])
	}
}

// Symmetric mesh: every process both writes and reads; all final values are
// delivered pairwise.
func TestMessengerFullMesh(t *testing.T) {
	const n = 3
	k := sim.New(n)
	ms := wireMessengers(t, k, n)
	finals := make([][]int, n)
	for p := 0; p < n; p++ {
		p := p
		finals[p] = make([]int, n)
		k.Spawn(p, "msgr", func(pp prim.Proc) {
			msgTo := make([]int, n)
			for q := 0; q < n; q++ {
				msgTo[q] = 100*p + q // distinct per (p,q), never changes
			}
			for {
				ms[p].WriteMsgs(msgTo)
				copy(finals[p], ms[p].ReadMsgs())
				pp.Step()
			}
		})
	}
	if _, err := k.Run(100000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p == q {
				continue
			}
			if finals[q][p] != 100*p+q {
				t.Errorf("process %d read %d from %d, want %d", q, finals[q][p], p, 100*p+q)
			}
		}
	}
}

// The reader's back-off is what unblocks the writer: with AlwaysAbort, a
// reader probing at a fixed rate could collide with every write forever.
// Verify the timeout actually grows under contention and resets on
// progress, indirectly: the reader still converges when the writer is much
// slower than the reader.
func TestMessengerSlowWriterFastReader(t *testing.T) {
	const n = 2
	// Writer gets 1 step out of 11.
	k := sim.New(n, sim.WithSchedule(sim.SmoothWeighted([]int{1, 10})))
	ms := wireMessengers(t, k, n)
	k.Spawn(0, "writer", func(p prim.Proc) {
		msgTo := []int{0, 99}
		for {
			ms[0].WriteMsgs(msgTo)
			p.Step()
		}
	})
	var got []int
	k.Spawn(1, "reader", func(p prim.Proc) {
		for {
			got = ms[1].ReadMsgs()
			p.Step()
		}
	})
	if _, err := k.Run(200000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if got[0] != 99 {
		t.Fatalf("reader got %d from slow writer, want 99", got[0])
	}
}

func TestHeartbeatTimelySenderStaysActive(t *testing.T) {
	const n = 2
	k := sim.New(n)
	hb := wireHeartbeats(t, k, n)
	dest := []bool{false, true}
	k.Spawn(0, "sender", func(p prim.Proc) {
		for {
			hb[0].Send(dest)
			p.Step()
		}
	})
	var active []bool
	k.Spawn(1, "receiver", func(p prim.Proc) {
		for {
			active = hb[1].Receive()
			p.Step()
		}
	})
	// Sample the suffix: after warm-up, 0 must always be active at 1.
	inactive := 0
	k.AfterStep(func(step int64) {
		if step > 20000 && active != nil && !active[0] {
			inactive++
		}
	})
	if _, err := k.Run(60000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if inactive > 0 {
		t.Fatalf("timely sender was inactive on %d suffix steps", inactive)
	}
	if !active[1] {
		t.Fatal("receiver must always consider itself active")
	}
}

func TestHeartbeatCrashedSenderRemoved(t *testing.T) {
	const n = 2
	k := sim.New(n)
	hb := wireHeartbeats(t, k, n)
	dest := []bool{false, true}
	k.Spawn(0, "sender", func(p prim.Proc) {
		for {
			hb[0].Send(dest)
			p.Step()
		}
	})
	var active []bool
	k.Spawn(1, "receiver", func(p prim.Proc) {
		for {
			active = hb[1].Receive()
			p.Step()
		}
	})
	k.CrashAt(0, 5000)
	if _, err := k.Run(100000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if active[0] {
		t.Fatal("crashed sender still active at receiver")
	}
}

// The dual-register rationale: an untimely sender (growing gaps) must be
// suspected over and over — single aborts alone never keep it active
// forever.
func TestHeartbeatUntimelySenderSuspected(t *testing.T) {
	const n = 2
	k := sim.New(n, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{
		0: sim.GrowingGaps(100, 200, 1.6),
	})))
	hb := wireHeartbeats(t, k, n)
	dest := []bool{false, true}
	k.Spawn(0, "sender", func(p prim.Proc) {
		for {
			hb[0].Send(dest)
			p.Step()
		}
	})
	var active []bool
	k.Spawn(1, "receiver", func(p prim.Proc) {
		for {
			active = hb[1].Receive()
			p.Step()
		}
	})
	suspectedAfter := int64(-1)
	k.AfterStep(func(step int64) {
		if step > 100000 && active != nil && !active[0] && suspectedAfter < 0 {
			suspectedAfter = step
		}
	})
	if _, err := k.Run(400000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if suspectedAfter < 0 {
		t.Fatal("untimely sender was never suspected in the long suffix")
	}
}

func wireHeartbeats(t *testing.T, k *sim.Kernel, n int) []*Heartbeat {
	t.Helper()
	reg1 := make([][]*register.Abortable[int64], n)
	reg2 := make([][]*register.Abortable[int64], n)
	for p := 0; p < n; p++ {
		reg1[p] = make([]*register.Abortable[int64], n)
		reg2[p] = make([]*register.Abortable[int64], n)
		for q := 0; q < n; q++ {
			if p != q {
				reg1[p][q] = register.NewAbortableSWSR(k, fmt.Sprintf("Hb1[%d,%d]", p, q), int64(0), p, q)
				reg2[p][q] = register.NewAbortableSWSR(k, fmt.Sprintf("Hb2[%d,%d]", p, q), int64(0), p, q)
			}
		}
	}
	hs := make([]*Heartbeat, n)
	for p := 0; p < n; p++ {
		out1 := make([]prim.AbortableRegister[int64], n)
		out2 := make([]prim.AbortableRegister[int64], n)
		in1 := make([]prim.AbortableRegister[int64], n)
		in2 := make([]prim.AbortableRegister[int64], n)
		for q := 0; q < n; q++ {
			if q == p {
				continue
			}
			out1[q], out2[q] = reg1[p][q], reg2[p][q]
			in1[q], in2[q] = reg1[q][p], reg2[q][p]
		}
		h, err := NewHeartbeat(p, n, out1, out2, in1, in2)
		if err != nil {
			t.Fatal(err)
		}
		hs[p] = h
	}
	return hs
}

func TestWiringValidation(t *testing.T) {
	if _, err := NewMessenger[int](0, 1, nil, nil, 0); err == nil {
		t.Error("n=1 messenger accepted")
	}
	if _, err := NewHeartbeat(3, 2, nil, nil, nil, nil); err == nil {
		t.Error("out-of-range heartbeat accepted")
	}
	if _, err := Task(Config{N: 2, Me: 0}); err == nil {
		t.Error("task with nil wiring accepted")
	}
}
