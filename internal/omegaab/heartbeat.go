package omegaab

import (
	"fmt"

	"tbwf/internal/prim"
)

// hbValue is what a heartbeat read yielded: a counter value or ⊥. The
// receiver compares the *outcome* of consecutive reads, and ⊥ is a first-
// class outcome — an abort proves the writer was mid-operation.
type hbValue struct {
	val int64
	bot bool
}

// Heartbeat implements Figure 5 for one process: Send writes an increasing
// counter to the two heartbeat registers of each selected peer, Receive
// decides which peers are timely with respect to this process.
//
// Two registers per direction are essential: an abort on one register only
// proves the writer is alive, not that it is timely — a slow writer might
// hang in a single write forever while every read of that register aborts.
// By alternating writes across two registers and requiring *both* reads to
// abort or change, a writer stuck in one register is caught by the other
// one going stale (Section 6, "Communicating a heartbeat").
type Heartbeat struct {
	me int
	n  int
	// out1[q]/out2[q] are HbRegister1/2[me,q]; in1[q]/in2[q] are
	// HbRegister1/2[q,me].
	out1, out2 []prim.AbortableRegister[int64]
	in1, in2   []prim.AbortableRegister[int64]

	hbSendCounter int64
	hbTimer       []int64
	hbTimeout     []int64
	prev1, prev2  []hbValue
	cur1, cur2    []hbValue
	active        []bool

	// single drops the second register from Receive's freshness check —
	// the ablation of the dual-register design (experiment A1). With it, a
	// writer stuck mid-write keeps aborting the reader's probes forever
	// and is wrongly deemed timely; never enable it outside experiments.
	single bool
}

// AblateSingleRegister makes Receive consult only the first heartbeat
// register, for the A1 ablation. See the field comment.
func (h *Heartbeat) AblateSingleRegister() { h.single = true }

// NewHeartbeat wires Figure 5's state for process me of n. The four
// register slices must have length n with non-nil entries for every q ≠ me;
// registers start at 0.
func NewHeartbeat(me, n int, out1, out2, in1, in2 []prim.AbortableRegister[int64]) (*Heartbeat, error) {
	if err := checkPairSlices(me, n, len(out1), len(out2), len(in1), len(in2)); err != nil {
		return nil, fmt.Errorf("omegaab: heartbeat: %w", err)
	}
	h := &Heartbeat{
		me: me, n: n,
		out1: out1, out2: out2, in1: in1, in2: in2,
		hbTimer:   make([]int64, n),
		hbTimeout: make([]int64, n),
		prev1:     make([]hbValue, n),
		prev2:     make([]hbValue, n),
		cur1:      make([]hbValue, n),
		cur2:      make([]hbValue, n),
		active:    make([]bool, n),
	}
	for q := 0; q < n; q++ {
		h.hbTimer[q] = 1
		h.hbTimeout[q] = 1
	}
	h.active[me] = true // activeSet starts as {p} and me is never removed
	return h, nil
}

// Send is Figure 5 lines 20–25: bump the send counter and write it to both
// heartbeat registers of every peer q with dest[q] set. Aborts are ignored
// — for a heartbeat, causing an abort at the reader is itself a sign of
// life.
func (h *Heartbeat) Send(dest []bool) {
	h.hbSendCounter++ // line 21
	for q := 0; q < h.n; q++ {
		if q == h.me || !dest[q] {
			continue
		}
		h.out1[q].Write(h.hbSendCounter) // line 24
		h.out2[q].Write(h.hbSendCounter) // line 25
	}
}

// Receive is Figure 5 lines 26–40: for each peer q, every hbTimeout[q]
// invocations read both of q's heartbeat registers; q is deemed active
// (q-timely for this process) iff each read either aborted or returned a
// different outcome than last time. Otherwise q is dropped from the active
// set and its timeout grows.
//
// The returned slice is indexed by process id (active[me] is always true,
// matching the paper's activeSet = {p} ∪ …); it is the Heartbeat's own
// state — treat it as read-only and valid until the next call.
func (h *Heartbeat) Receive() []bool {
	for q := 0; q < h.n; q++ {
		if q == h.me {
			continue
		}
		if h.hbTimer[q] >= 1 { // line 28
			h.hbTimer[q]--
		}
		if h.hbTimer[q] == 0 { // line 29
			h.hbTimer[q] = h.hbTimeout[q] // line 30
			h.prev1[q] = h.cur1[q]        // line 31
			h.prev2[q] = h.cur2[q]        // line 32
			v1, ok1 := h.in1[q].Read()    // line 33
			v2, ok2 := h.in2[q].Read()    // line 34
			h.cur1[q] = hbValue{val: v1, bot: !ok1}
			h.cur2[q] = hbValue{val: v2, bot: !ok2}
			fresh1 := h.cur1[q].bot || h.cur1[q] != h.prev1[q]
			fresh2 := h.cur2[q].bot || h.cur2[q] != h.prev2[q]
			if h.single {
				fresh2 = true // A1 ablation: ignore the second register
			}
			if fresh1 && fresh2 { // line 35
				h.active[q] = true // line 36
			} else { // lines 37–39
				h.active[q] = false
				h.hbTimeout[q]++
			}
		}
	}
	return h.active // line 40
}
