package omegaab

import (
	"fmt"

	"tbwf/internal/omega"
	"tbwf/internal/prim"
	"tbwf/internal/register"
)

// System is a fully wired Ω∆ deployment over abortable registers on any
// substrate. Build it with Build; the Figure 6 tasks are already spawned.
// The register matrices are kept for statistics (abort rates).
type System struct {
	N int
	// Instances[p] is process p's Ω∆ endpoint.
	Instances []*omega.Instance
	// MsgRegs[p][q] is MsgRegister[p,q]; Hb1[p][q] and Hb2[p][q] are
	// HbRegister1/2[p,q]. Diagonals are nil. On the simulation substrate
	// these are concrete *register.Abortable values (the typed fast path).
	MsgRegs  [][]prim.AbortableRegister[Msg]
	Hb1, Hb2 [][]prim.AbortableRegister[int64]
}

// Build wires the Figure 4–6 stack for all n processes of the substrate:
// 3·n·(n−1) single-writer single-reader abortable registers plus one main
// task per process. The register options (abort and effect policies) apply
// to every register; the default is the strongest adversary.
func Build(sub prim.Substrate, opts ...register.AbOption) (*System, error) {
	n := sub.N()
	if n < 2 {
		return nil, fmt.Errorf("omegaab: substrate has %d processes, need at least 2", n)
	}
	s := &System{
		N:         n,
		Instances: make([]*omega.Instance, n),
		MsgRegs:   make([][]prim.AbortableRegister[Msg], n),
		Hb1:       make([][]prim.AbortableRegister[int64], n),
		Hb2:       make([][]prim.AbortableRegister[int64], n),
	}
	for p := 0; p < n; p++ {
		s.Instances[p] = omega.NewInstance(p)
		s.MsgRegs[p] = make([]prim.AbortableRegister[Msg], n)
		s.Hb1[p] = make([]prim.AbortableRegister[int64], n)
		s.Hb2[p] = make([]prim.AbortableRegister[int64], n)
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p == q {
				continue
			}
			role := register.WithRoles(p, q)
			s.MsgRegs[p][q] = register.SubstrateAbortable(sub, fmt.Sprintf("MsgRegister[%d,%d]", p, q), Msg{}, append(opts, role)...)
			s.Hb1[p][q] = register.SubstrateAbortable(sub, fmt.Sprintf("HbRegister1[%d,%d]", p, q), int64(0), append(opts, role)...)
			s.Hb2[p][q] = register.SubstrateAbortable(sub, fmt.Sprintf("HbRegister2[%d,%d]", p, q), int64(0), append(opts, role)...)
		}
	}
	for p := 0; p < n; p++ {
		msgOut := make([]prim.AbortableRegister[Msg], n)
		msgIn := make([]prim.AbortableRegister[Msg], n)
		hbOut1 := make([]prim.AbortableRegister[int64], n)
		hbOut2 := make([]prim.AbortableRegister[int64], n)
		hbIn1 := make([]prim.AbortableRegister[int64], n)
		hbIn2 := make([]prim.AbortableRegister[int64], n)
		for q := 0; q < n; q++ {
			if q == p {
				continue
			}
			msgOut[q] = s.MsgRegs[p][q]
			msgIn[q] = s.MsgRegs[q][p]
			hbOut1[q] = s.Hb1[p][q]
			hbOut2[q] = s.Hb2[p][q]
			hbIn1[q] = s.Hb1[q][p]
			hbIn2[q] = s.Hb2[q][p]
		}
		msgr, err := NewMessenger(p, n, msgOut, msgIn, Msg{})
		if err != nil {
			return nil, fmt.Errorf("wire process %d: %w", p, err)
		}
		hb, err := NewHeartbeat(p, n, hbOut1, hbOut2, hbIn1, hbIn2)
		if err != nil {
			return nil, fmt.Errorf("wire process %d: %w", p, err)
		}
		task, err := Task(Config{N: n, Me: p, Endpoint: s.Instances[p], Msgr: msgr, Hb: hb})
		if err != nil {
			return nil, fmt.Errorf("wire process %d: %w", p, err)
		}
		sub.Spawn(p, fmt.Sprintf("omegaab[%d]", p), task)
	}
	return s, nil
}

// AbortStats sums abort counts over all the system's registers: total
// operations and total aborts, split by register family.
type AbortStats struct {
	MsgOps, MsgAborts int64
	HbOps, HbAborts   int64
}

// Aborts aggregates operation/abort counters across the register matrices.
func (s *System) Aborts() AbortStats {
	var a AbortStats
	for p := 0; p < s.N; p++ {
		for q := 0; q < s.N; q++ {
			if p == q {
				continue
			}
			ms, _ := prim.RegisterStats(s.MsgRegs[p][q])
			a.MsgOps += ms.Reads + ms.Writes
			a.MsgAborts += ms.ReadAborts + ms.WriteAborts
			for _, r := range []prim.AbortableRegister[int64]{s.Hb1[p][q], s.Hb2[p][q]} {
				hs, _ := prim.RegisterStats(r)
				a.HbOps += hs.Reads + hs.Writes
				a.HbAborts += hs.ReadAborts + hs.WriteAborts
			}
		}
	}
	return a
}
