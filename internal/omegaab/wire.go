package omegaab

import "tbwf/internal/prim"

// Msg crosses MsgRegister[p,q] as `any` on type-erased substrates; a
// serializing transport (the net substrate's TCP frames) needs its
// concrete type registered up front.
func init() {
	prim.RegisterWireType(Msg{})
}
