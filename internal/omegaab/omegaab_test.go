package omegaab

import (
	"testing"

	"tbwf/internal/omega"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

func buildSys(t *testing.T, k *sim.Kernel, opts ...register.AbOption) (*System, *omega.Observer) {
	t.Helper()
	sys, err := Build(register.Substrate(k), opts...)
	if err != nil {
		t.Fatal(err)
	}
	obs := omega.NewObserver(sys.Instances)
	k.AfterStep(obs.Sample)
	return sys, obs
}

func runK(t *testing.T, k *sim.Kernel, steps int64) {
	t.Helper()
	if _, err := k.Run(steps); err != nil {
		t.Fatal(err)
	}
}

// Theorem 13, easy case: all processes timely permanent candidates, the
// strongest abort adversary — a stable common leader must emerge.
func TestAbortableAllTimelyCandidatesElectStableLeader(t *testing.T) {
	const n = 4
	k := sim.New(n)
	sys, obs := buildSys(t, k)
	for p := 0; p < n; p++ {
		sys.Instances[p].Candidate.Set(true)
	}
	runK(t, k, 400000)
	defer k.Shutdown()

	ell := obs.AgreedLeader([]int{0, 1, 2, 3})
	if ell == omega.NoLeader {
		t.Fatalf("no common leader: %v", obs.Leaders())
	}
	if got := sys.Instances[ell].Leader.Get(); got != ell {
		t.Fatalf("leader %d outputs %d, want itself", ell, got)
	}
	if obs.StabilizedAt() > 350000 {
		t.Fatalf("leader vector still changing at step %d", obs.StabilizedAt())
	}
}

// Same as above under a seeded random schedule, where operation windows
// genuinely collide: the election must still stabilize, and this time the
// abort adversary is demonstrably exercised. (Under deterministic
// round-robin the operation phases happen never to overlap.)
func TestAbortableElectionUnderRandomSchedule(t *testing.T) {
	const n = 4
	k := sim.New(n, sim.WithSchedule(sim.Random(99, nil)))
	sys, obs := buildSys(t, k)
	for p := 0; p < n; p++ {
		sys.Instances[p].Candidate.Set(true)
	}
	runK(t, k, 600000)
	defer k.Shutdown()

	ell := obs.AgreedLeader([]int{0, 1, 2, 3})
	if ell == omega.NoLeader {
		t.Fatalf("no common leader: %v", obs.Leaders())
	}
	if a := sys.Aborts(); a.MsgAborts == 0 && a.HbAborts == 0 {
		t.Error("no aborts recorded; the adversary was not exercised")
	}
}

// A non-candidate must output ? and never compete.
func TestAbortableNonCandidateOutputsUnknown(t *testing.T) {
	const n = 3
	k := sim.New(n)
	sys, obs := buildSys(t, k)
	sys.Instances[0].Candidate.Set(true)
	sys.Instances[2].Candidate.Set(true)
	runK(t, k, 300000)
	defer k.Shutdown()

	if got := sys.Instances[1].Leader.Get(); got != omega.NoLeader {
		t.Fatalf("non-candidate outputs %d, want ?", got)
	}
	ell := obs.AgreedLeader([]int{0, 2})
	if ell != 0 && ell != 2 {
		t.Fatalf("candidates agreed on %d, want one of them; leaders=%v", ell, obs.Leaders())
	}
}

// Theorem 13, hard case: one timely permanent candidate among untimely
// lower-id ones must eventually win at every permanent candidate.
func TestAbortableTimelyCandidateWins(t *testing.T) {
	const n = 3
	k := sim.New(n, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{
		0: sim.GrowingGaps(300, 500, 1.6),
	})))
	sys, obs := buildSys(t, k)
	sys.Instances[0].Candidate.Set(true) // untimely
	sys.Instances[2].Candidate.Set(true) // timely
	runK(t, k, 2500000)
	defer k.Shutdown()

	if got := sys.Instances[2].Leader.Get(); got != 2 {
		t.Fatalf("timely candidate outputs leader %d, want itself; leaders=%v", got, obs.Leaders())
	}
	if got := sys.Instances[0].Leader.Get(); got != 2 {
		t.Errorf("untimely permanent candidate outputs %d, want 2", got)
	}
}

// Crash of the elected leader must trigger re-election among survivors.
func TestAbortableLeaderCrashReelection(t *testing.T) {
	const n = 3
	k := sim.New(n)
	sys, obs := buildSys(t, k)
	for p := 0; p < n; p++ {
		sys.Instances[p].Candidate.Set(true)
	}
	runK(t, k, 300000)
	first := obs.AgreedLeader([]int{0, 1, 2})
	if first == omega.NoLeader {
		t.Fatalf("no leader before crash: %v", obs.Leaders())
	}
	k.Crash(first)
	runK(t, k, 1200000)
	defer k.Shutdown()

	var survivors []int
	for p := 0; p < n; p++ {
		if p != first {
			survivors = append(survivors, p)
		}
	}
	second := obs.AgreedLeader(survivors)
	if second == omega.NoLeader || second == first {
		t.Fatalf("survivors output %v after leader %d crashed", obs.Leaders(), first)
	}
}

// The algorithm must also work when aborted writes sometimes take effect
// and contended operations only sometimes abort — the spec allows any such
// mix, and correctness may not depend on the strongest adversary.
func TestAbortablePolicySweep(t *testing.T) {
	policies := []struct {
		name string
		opts []register.AbOption
	}{
		{"prob-abort-50", []register.AbOption{register.WithAbortPolicy(register.ProbAbort(0.5, 11))}},
		{"always-abort-effect-always", []register.AbOption{register.WithEffectPolicy(register.AlwaysEffect())}},
		{"prob-abort-90-effect-50", []register.AbOption{
			register.WithAbortPolicy(register.ProbAbort(0.9, 12)),
			register.WithEffectPolicy(register.ProbEffect(0.5, 13)),
		}},
		{"never-abort", []register.AbOption{register.WithAbortPolicy(register.NeverAbort())}},
	}
	for _, tc := range policies {
		t.Run(tc.name, func(t *testing.T) {
			const n = 3
			k := sim.New(n)
			sys, obs := buildSys(t, k, tc.opts...)
			for p := 0; p < n; p++ {
				sys.Instances[p].Candidate.Set(true)
			}
			runK(t, k, 400000)
			defer k.Shutdown()
			ell := obs.AgreedLeader([]int{0, 1, 2})
			if ell == omega.NoLeader {
				t.Fatalf("no common leader under %s: %v", tc.name, obs.Leaders())
			}
			if got := sys.Instances[ell].Leader.Get(); got != ell {
				t.Fatalf("leader %d outputs %d under %s", ell, got, tc.name)
			}
		})
	}
}

// A candidate that withdraws stops being anyone's leader.
func TestAbortableWithdrawalHandsOver(t *testing.T) {
	const n = 3
	k := sim.New(n)
	sys, obs := buildSys(t, k)
	for p := 0; p < n; p++ {
		sys.Instances[p].Candidate.Set(true)
	}
	runK(t, k, 300000)
	first := obs.AgreedLeader([]int{0, 1, 2})
	if first == omega.NoLeader {
		t.Fatal("no initial leader")
	}
	sys.Instances[first].Candidate.Set(false)
	runK(t, k, 1200000)
	defer k.Shutdown()

	if got := sys.Instances[first].Leader.Get(); got != omega.NoLeader {
		t.Errorf("withdrawn candidate outputs %d, want ?", got)
	}
	var survivors []int
	for p := 0; p < n; p++ {
		if p != first {
			survivors = append(survivors, p)
		}
	}
	second := obs.AgreedLeader(survivors)
	if second == omega.NoLeader || second == first {
		t.Fatalf("remaining candidates output %v after withdrawal", obs.Leaders())
	}
}
