package omegaab

import (
	"testing"

	"tbwf/internal/prim"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// The Messenger is generic over any comparable payload; the consensus
// package ships decision structs through it, and here strings round-trip
// too — guarding the generic instantiation path.
func TestMessengerGenericPayloads(t *testing.T) {
	const n = 2
	k := sim.New(n)
	reg := register.NewAbortableSWSR(k, "Msg[0,1]", "", 0, 1)
	w, err := NewMessenger(0, n,
		[]prim.AbortableRegister[string]{nil, reg}, make([]prim.AbortableRegister[string], n), "")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewMessenger(1, n,
		make([]prim.AbortableRegister[string], n), []prim.AbortableRegister[string]{reg, nil}, "")
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn(0, "writer", func(p prim.Proc) {
		msg := []string{"", "final-value"}
		for {
			w.WriteMsgs(msg)
			p.Step()
		}
	})
	var got string
	k.Spawn(1, "reader", func(p prim.Proc) {
		for {
			got = r.ReadMsgs()[0]
			p.Step()
		}
	})
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if got != "final-value" {
		t.Fatalf("got %q", got)
	}
}

// WriteMsgs keeps retrying the *previous* value until one write succeeds
// before picking up a new one (Figure 4 line 4) — the register must end up
// holding a value that was actually current at some point, never a torn
// mix.
func TestMessengerFinishesPreviousValueFirst(t *testing.T) {
	const n = 2
	k := sim.New(n)
	reg := register.NewAbortableSWSR(k, "Msg[0,1]", 0, 0, 1)
	w, err := NewMessenger(0, n,
		[]prim.AbortableRegister[int]{nil, reg}, make([]prim.AbortableRegister[int], n), 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	values := []int{1, 2, 3}
	k.Spawn(0, "writer", func(p prim.Proc) {
		for _, v := range values {
			msg := []int{0, v}
			// Call WriteMsgs a few times per value, as the main loop does.
			for i := 0; i < 5; i++ {
				w.WriteMsgs(msg)
				p.Step()
			}
		}
	})
	k.AfterStep(func(step int64) {
		seen[reg.Peek()] = true
	})
	if _, err := k.Run(200_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	for v := range seen {
		if v != 0 && v != 1 && v != 2 && v != 3 {
			t.Fatalf("register held %d, which was never a message", v)
		}
	}
	if !seen[3] {
		t.Fatal("final value never reached the register despite a solo writer")
	}
}
