package omegaab

import (
	"fmt"

	"tbwf/internal/omega"
	"tbwf/internal/prim"
)

// Msg is the pair ⟨counter_p[p], actrTo_p[q]⟩ that Figure 6 ships through
// the Messenger: the sender's own counter and the punishment it is asking
// the receiver to apply to itself.
type Msg struct {
	// Counter is the sender's view of its own counter.
	Counter int64
	// Punish asks the receiver to raise its own counter to at least this
	// value (0 = no punishment).
	Punish int64
}

// Config wires one process's Figure 6 task.
type Config struct {
	N  int
	Me int
	// Endpoint is the process's Ω∆ input/output pair.
	Endpoint *omega.Instance
	// Msgr is the process's Figure 4 messenger.
	Msgr *Messenger[Msg]
	// Hb is the process's Figure 5 heartbeat pair.
	Hb *Heartbeat
}

func (c *Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("omegaab: n = %d, need at least 2", c.N)
	}
	if c.Me < 0 || c.Me >= c.N {
		return fmt.Errorf("omegaab: me = %d out of range [0,%d)", c.Me, c.N)
	}
	if c.Endpoint == nil || c.Msgr == nil || c.Hb == nil {
		return fmt.Errorf("omegaab: nil endpoint, messenger or heartbeat")
	}
	return nil
}

// Task returns the Figure 6 main loop for one process: the Ω∆
// implementation from abortable registers. It returns an error only for
// invalid wiring.
func Task(cfg Config) (func(prim.Proc), error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return func(p prim.Proc) {
		n, me := cfg.N, cfg.Me
		leader := me                 // local leader estimate
		counter := make([]int64, n)  // counter[q]: p's view of q's counter
		actrTo := make([]int64, n)   // punishment p is sending to q
		writeDone := make([]bool, n) // whom to heartbeat (init false)
		msgTo := make([]Msg, n)

		for { // line 41: repeat forever
			cfg.Endpoint.Leader.Set(omega.NoLeader) // line 42
			for !cfg.Endpoint.Candidate.Get() {     // line 43
				p.Step()
			}
			// Line 44: self-punishment on (re-)entry, bounded so that
			// counter[me] stops changing once the leadership stabilizes —
			// otherwise WriteMsgs could never deliver its final value.
			counter[me] = max(counter[me], counter[leader]+1)

			for { // lines 45–59: do … while candidate
				// Line 46: heartbeat only the peers whose register we
				// managed to write — the gating that guarantees "if q
				// considers p active forever then q learns p's final
				// counter".
				cfg.Hb.Send(writeDone)
				active := cfg.Hb.Receive() // line 47

				// Line 48: leader ← min (counter, id) over the active set.
				leader = -1
				for q := 0; q < n; q++ {
					if !active[q] {
						continue
					}
					if leader == -1 || counter[q] < counter[leader] ||
						(counter[q] == counter[leader] && q < leader) {
						leader = q
					}
				}
				cfg.Endpoint.Leader.Set(leader) // line 49

				for q := 0; q < n; q++ { // lines 50–53
					if q == me {
						continue
					}
					if !active[q] { // punish inactive processes
						actrTo[q] = max(actrTo[q], counter[leader]+1)
					}
					msgTo[q] = Msg{Counter: counter[me], Punish: actrTo[q]}
				}
				copy(writeDone, cfg.Msgr.WriteMsgs(msgTo)) // line 54
				msgFrom := cfg.Msgr.ReadMsgs()             // line 55
				for q := 0; q < n; q++ {                   // lines 56–58
					if q == me {
						continue
					}
					counter[q] = msgFrom[q].Counter
					counter[me] = max(counter[me], msgFrom[q].Punish)
				}

				p.Step()                           // one main-loop iteration consumes at least a step
				if !cfg.Endpoint.Candidate.Get() { // line 59
					break
				}
			}
		}
	}, nil
}
