// Package omegaab implements Ω∆ from single-writer single-reader abortable
// registers only (Section 6 of the paper, Figures 4, 5 and 6).
//
// Abortable registers are very weak: any operation that is concurrent with
// another operation on the same register may abort, and an aborted write
// may or may not take effect. The implementation is built from two
// communication mechanisms:
//
//   - Messenger (Figure 4) lets p communicate the *final* value of a
//     variable that eventually stops changing: p re-writes until a write
//     succeeds, while the reader q backs off geometrically whenever its
//     reads abort or return stale values, so that a q-timely writer
//     eventually writes solo and succeeds.
//   - Heartbeat (Figure 5) lets q decide whether p is q-timely using *two*
//     alternating registers: an abort tells q that p is mid-write (alive),
//     but only a writer fast enough to complete writes on both registers
//     between q's probes is deemed timely.
//
// The main loop (Figure 6) combines them: counters elect the minimum
// (counter, id) among the active set, punishments are shipped through the
// Messenger, and heartbeats are gated by WriteMsgs' success vector so that
// a process that q considers active forever also delivers q its final
// counter value.
package omegaab

import (
	"fmt"

	"tbwf/internal/prim"
)

// Messenger implements Figure 4 for one process: WriteMsgs communicates the
// content of a per-peer variable to every peer, ReadMsgs collects the last
// successfully read content from every peer. T must be comparable because
// the reader backs off when a read returns an unchanged value.
type Messenger[T comparable] struct {
	me int
	n  int
	// out[q] is MsgRegister[me,q] (written by me, read by q);
	// in[q] is MsgRegister[q,me] (written by q, read by me).
	out []prim.AbortableRegister[T]
	in  []prim.AbortableRegister[T]

	msgCurr       []T
	prevWriteDone []bool
	prevMsgFrom   []T
	readTimer     []int64
	readTimeout   []int64

	// noBackoff freezes readTimeout at 1 — the ablation of Figure 4's
	// reader back-off (experiment A3). Without the back-off, a reader
	// phase-locked with the writer collides with every write forever and
	// the final value is never delivered; never enable it outside
	// experiments.
	noBackoff bool
}

// AblateBackoff disables the reader back-off, for the A3 ablation. See the
// field comment.
func (m *Messenger[T]) AblateBackoff() { m.noBackoff = true }

// NewMessenger wires Figure 4's state for process me of n. out[q] and in[q]
// must be non-nil for every q ≠ me; init is the registers' initial value
// (the paper's ⟨0,0⟩).
func NewMessenger[T comparable](me, n int, out, in []prim.AbortableRegister[T], init T) (*Messenger[T], error) {
	if err := checkPairSlices(me, n, len(out), len(in)); err != nil {
		return nil, fmt.Errorf("omegaab: messenger: %w", err)
	}
	m := &Messenger[T]{
		me: me, n: n, out: out, in: in,
		msgCurr:       make([]T, n),
		prevWriteDone: make([]bool, n),
		prevMsgFrom:   make([]T, n),
		readTimer:     make([]int64, n),
		readTimeout:   make([]int64, n),
	}
	for q := 0; q < n; q++ {
		m.msgCurr[q] = init
		m.prevMsgFrom[q] = init
		m.prevWriteDone[q] = true
		m.readTimer[q] = 1
		m.readTimeout[q] = 1
	}
	return m, nil
}

// WriteMsgs is Figure 4 lines 1–7: for each peer q, (re-)write msgTo[q]
// until a write succeeds; a new value is picked up only after the previous
// one was written successfully. It returns the prevWriteDone vector:
// prevWriteDone[q] reports whether the latest value handed to the register
// readable by q has been written successfully.
//
// The returned slice is the messenger's own state; callers must treat it
// as read-only and valid until the next call.
func (m *Messenger[T]) WriteMsgs(msgTo []T) []bool {
	for q := 0; q < m.n; q++ {
		if q == m.me {
			continue
		}
		if !m.prevWriteDone[q] || m.msgCurr[q] != msgTo[q] { // line 3
			if m.prevWriteDone[q] { // line 4
				m.msgCurr[q] = msgTo[q]
			}
			ok := m.out[q].Write(m.msgCurr[q]) // line 5
			m.prevWriteDone[q] = ok            // line 6
		}
	}
	return m.prevWriteDone // line 7
}

// ReadMsgs is Figure 4 lines 8–19: for each peer q, read MsgRegister[q,me]
// every readTimeout[q] invocations; back off (increment the timeout) when
// the read aborts or returns an unchanged value, so that a writer that is
// trying and failing to write eventually executes solo.
//
// It returns the prevMsgFrom vector: the last successfully read message
// from every peer. The returned slice is the messenger's own state; treat
// it as read-only and valid until the next call.
func (m *Messenger[T]) ReadMsgs() []T {
	for q := 0; q < m.n; q++ {
		if q == m.me {
			continue
		}
		if m.readTimer[q] >= 1 { // line 10
			m.readTimer[q]--
		}
		if m.readTimer[q] == 0 { // line 11
			m.readTimer[q] = m.readTimeout[q]   // line 12
			res, ok := m.in[q].Read()           // line 13
			if !ok || res == m.prevMsgFrom[q] { // line 14
				if !m.noBackoff { // A3 ablation switch
					m.readTimeout[q]++ // line 15
				}
			} else { // lines 16–18
				m.prevMsgFrom[q] = res
				m.readTimeout[q] = 1
			}
		}
	}
	return m.prevMsgFrom // line 19
}

func checkPairSlices(me, n int, lens ...int) error {
	if n < 2 {
		return fmt.Errorf("n = %d, need at least 2", n)
	}
	if me < 0 || me >= n {
		return fmt.Errorf("me = %d out of range [0,%d)", me, n)
	}
	for _, l := range lens {
		if l != n {
			return fmt.Errorf("register slice length %d, want n=%d", l, n)
		}
	}
	return nil
}
