// Package shard turns the single-stack TBWF deployment into a sharded
// object space: a Map hash-partitions string keys across S independent
// TBWF stacks (each assembled through deploy.Build, each with its own
// Ω∆ elector picked from the internal/elector registry), a per-shard
// worker pool batches queued invocations so one leader read / QA
// agreement round is amortized across a whole batch, and admission
// control (token bucket per shard plus a global in-flight cap) sheds
// load under overload instead of queueing without bound.
//
// The keyspace object is a string→int64 KV map. Every operation —
// get, put, add, cas — returns the key's previous value, so a full
// service history is checkable for linearizability per key: an
// add-only workload's prev values totally order the ops.
//
// The Map runs on one substrate: all S stacks share the substrate's N
// processes, so per-process timeliness faults degrade every shard's
// replica p at once — exactly the production shape the paper's
// per-process progress guarantee is supposed to survive.
package shard

// Kind selects a KV operation.
type Kind uint8

const (
	// Get reads the key (Resp.Prev is its value, Resp.Found its presence).
	Get Kind = iota + 1
	// Put stores Val.
	Put
	// Add adds Val (a delta) to the key; absent keys count from 0.
	Add
	// CAS stores Val if the key's current value is Old (absent reads as 0).
	CAS
)

// String returns the wire name of the kind.
func (k Kind) String() string {
	switch k {
	case Get:
		return "get"
	case Put:
		return "put"
	case Add:
		return "add"
	case CAS:
		return "cas"
	}
	return "invalid"
}

// Op is one keyed operation.
type Op struct {
	Kind Kind
	Key  string
	// Val is Put's stored value, Add's delta, and CAS's new value.
	Val int64
	// Old is CAS's expected current value.
	Old int64
}

// Resp is one operation's response. Every kind reports the key's value
// before the op took effect, which keeps histories order-checkable.
type Resp struct {
	// Prev is the key's value before the op (0 when absent).
	Prev int64
	// Found reports whether the key existed before the op.
	Found bool
	// Swapped reports whether a CAS took effect.
	Swapped bool
}

// KV is the single-operation sequential specification of the keyspace
// object (qa.Type). It exists for checkers: the lincheck oracles verify
// per-shard service histories against it. The deployed stacks run
// BatchKV, whose batches fold to exactly this spec.
type KV struct{}

// Init returns the empty map.
func (KV) Init() map[string]int64 { return nil }

// Apply applies one op persistently: mutating kinds copy the map.
func (KV) Apply(s map[string]int64, op Op) (map[string]int64, Resp) {
	prev, found := s[op.Key]
	r := Resp{Prev: prev, Found: found}
	write := func(v int64) map[string]int64 {
		next := make(map[string]int64, len(s)+1)
		for k, val := range s {
			next[k] = val
		}
		next[op.Key] = v
		return next
	}
	switch op.Kind {
	case Put:
		return write(op.Val), r
	case Add:
		return write(prev + op.Val), r
	case CAS:
		if prev == op.Old {
			r.Swapped = true
			return write(op.Val), r
		}
	}
	return s, r
}

// BatchKV is the batched sequential specification the shard workers
// deploy (qa.Type over []Op): one QA round agrees on a whole batch, and
// replay applies its ops in submission order. The single map copy per
// batch — instead of one per op — is the state-side half of the
// batching amortization; the protocol-side half is one Ω∆ leader read
// and one agreement round for the batch.
type BatchKV struct{}

// Init returns the empty map.
func (BatchKV) Init() map[string]int64 { return nil }

// Apply applies the batch persistently (one copy, then in-place) and
// returns one response per op, index-aligned with the batch. The fence
// between batch order and response order is what the fuzzer's
// nobatchfence ablation breaks.
func (BatchKV) Apply(s map[string]int64, ops []Op) (map[string]int64, []Resp) {
	next := make(map[string]int64, len(s)+len(ops))
	for k, v := range s {
		next[k] = v
	}
	resps := make([]Resp, len(ops))
	for i, op := range ops {
		prev, found := next[op.Key]
		r := Resp{Prev: prev, Found: found}
		switch op.Kind {
		case Put:
			next[op.Key] = op.Val
		case Add:
			next[op.Key] = prev + op.Val
		case CAS:
			if prev == op.Old {
				r.Swapped = true
				next[op.Key] = op.Val
			}
		}
		resps[i] = r
	}
	return next, resps
}

// KeyShard maps a key to its shard: FNV-1a over the key bytes, mod the
// shard count. Exported so clients (the load generator) can compute a
// key's shard without a server round-trip — shed responses included.
func KeyShard(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(shards))
}
