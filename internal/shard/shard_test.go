package shard

import (
	"fmt"
	"testing"

	"tbwf/internal/deploy"
	"tbwf/internal/elector"
	"tbwf/internal/sim"
)

// simMap deploys a Map on a fresh kernel. Admission's clock is the
// kernel's step counter so tests are deterministic.
func simMap(t *testing.T, n int, cfg Config) (*sim.Kernel, *Map) {
	t.Helper()
	k := sim.New(n)
	if cfg.Admission.RefillEvery > 0 && cfg.Admission.Now == nil {
		cfg.Admission.Now = func() int64 { return k.Step() }
	}
	m, err := New(deploy.Sim(k), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return k, m
}

// submitAll pushes ops for one key onto one replica's queue back to
// back (no kernel steps in between, so the worker sees them together).
func submitAll(t *testing.T, m *Map, key string, replica int, ops []Op) []*Pending {
	t.Helper()
	pds := make([]*Pending, len(ops))
	for i, op := range ops {
		pds[i] = NewPending()
		if _, _, err := m.Submit(key, replica, op, pds[i]); err != nil {
			t.Fatalf("submit op %d: %v", i, err)
		}
	}
	return pds
}

func results(t *testing.T, pds []*Pending) []Resp {
	t.Helper()
	out := make([]Resp, len(pds))
	for i, pd := range pds {
		r, ok := pd.Poll()
		if !ok {
			t.Fatalf("op %d never completed", i)
		}
		out[i] = r.Resp
	}
	return out
}

// TestBatchFlushOnQueueDrain: fewer queued ops than MaxBatch complete
// as one batch — the worker flushes what is there instead of waiting
// for a full batch.
func TestBatchFlushOnQueueDrain(t *testing.T) {
	k, m := simMap(t, 2, Config{Shards: 1, MaxBatch: 8, QueueDepth: 16})
	m.Start()
	ops := []Op{{Kind: Add, Val: 1}, {Kind: Add, Val: 2}, {Kind: Add, Val: 4}}
	pds := submitAll(t, m, "k", 0, ops)
	if _, err := k.Run(400_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	rs := results(t, pds)
	for i, want := range []int64{0, 1, 3} {
		if rs[i].Prev != want {
			t.Fatalf("op %d: prev %d, want %d (FIFO within the batch)", i, rs[i].Prev, want)
		}
	}
	if st := m.Stats(0); st.Batches != 1 || st.Served != 3 {
		t.Fatalf("wanted one 3-op batch, got stats %+v", st)
	}
	if h := m.BatchHist(0); h[3] != 1 {
		t.Fatalf("batch hist %v, want one batch of size 3", h)
	}
	if mb := m.MeanBatch(0); mb != 3 {
		t.Fatalf("mean batch %.1f, want 3", mb)
	}
}

// TestBatchFlushOnMaxBatchBoundary: more queued ops than MaxBatch split
// at the boundary: one full batch, then the remainder.
func TestBatchFlushOnMaxBatchBoundary(t *testing.T) {
	const maxBatch = 4
	k, m := simMap(t, 2, Config{Shards: 1, MaxBatch: maxBatch, QueueDepth: 16})
	m.Start()
	ops := make([]Op, maxBatch+2)
	for i := range ops {
		ops[i] = Op{Kind: Add, Val: 1}
	}
	pds := submitAll(t, m, "k", 0, ops)
	if _, err := k.Run(400_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	rs := results(t, pds)
	for i, r := range rs {
		if r.Prev != int64(i) {
			t.Fatalf("op %d: prev %d, want %d", i, r.Prev, i)
		}
	}
	st := m.Stats(0)
	if st.Batches != 2 || st.Served != maxBatch+2 {
		t.Fatalf("wanted a full batch plus the remainder, got stats %+v", st)
	}
	h := m.BatchHist(0)
	if h[maxBatch] != 1 || h[2] != 1 {
		t.Fatalf("batch hist %v, want one batch of %d and one of 2", h, maxBatch)
	}
}

// TestBatchSemanticsMixedOps: a batched mixed-kind sequence on one key
// must fold exactly like the sequential spec, in submission order.
func TestBatchSemanticsMixedOps(t *testing.T) {
	k, m := simMap(t, 2, Config{Shards: 1, MaxBatch: 16, QueueDepth: 32})
	m.Start()
	ops := []Op{
		{Kind: Get},
		{Kind: Put, Val: 10},
		{Kind: Add, Val: 5},
		{Kind: CAS, Old: 15, Val: 40},
		{Kind: CAS, Old: 15, Val: 99},
		{Kind: Get},
	}
	pds := submitAll(t, m, "k", 1, ops)
	if _, err := k.Run(400_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	got := results(t, pds)
	state := KV{}.Init()
	for i, op := range ops {
		op.Key = "k"
		var want Resp
		state, want = KV{}.Apply(state, op)
		if got[i] != want {
			t.Fatalf("op %d (%+v): got %+v, want %+v", i, op, got[i], want)
		}
	}
}

// TestSingleShardMatchesUnshardedRouting: with S=1 every key routes to
// shard 0 and the per-replica queues behave exactly like the unsharded
// serve path's (bounded FIFO, one worker per replica).
func TestSingleShardMatchesUnshardedRouting(t *testing.T) {
	k, m := simMap(t, 3, Config{Shards: 1, MaxBatch: 1, QueueDepth: 8})
	m.Start()
	if m.Shards() != 1 {
		t.Fatalf("Shards() = %d", m.Shards())
	}
	for _, key := range []string{"a", "b", "zz", "hot"} {
		if s := m.ShardFor(key); s != 0 {
			t.Fatalf("ShardFor(%q) = %d with one shard", key, s)
		}
	}
	// MaxBatch 1 disables batching: every op is its own QA round, the
	// unsharded backend's exact behavior.
	var pds []*Pending
	for i := 0; i < 3; i++ {
		pds = append(pds, submitAll(t, m, fmt.Sprintf("key%d", i), i%m.N(), []Op{{Kind: Add, Val: 1}})...)
	}
	if _, err := k.Run(400_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	results(t, pds)
	st := m.Stats(0)
	if st.Batches != st.Served {
		t.Fatalf("MaxBatch=1 must mean one batch per op: %+v", st)
	}
	if mb := m.MeanBatch(0); mb != 1 {
		t.Fatalf("mean batch %.2f, want exactly 1", mb)
	}
}

// TestSubmitAdmissionOrder: an empty token bucket sheds with
// ErrRateLimited (429-class) even when queues have room; with tokens,
// a full queue sheds ErrQueueFull and a tripped in-flight cap
// ErrInFlight (503-class). Workers are never started, so queue
// occupancy is fully controlled.
func TestSubmitAdmissionOrder(t *testing.T) {
	_, m := simMap(t, 2, Config{
		Shards: 1, QueueDepth: 2,
		Admission: Admission{RefillEvery: 1 << 40, Burst: 3, MaxInFlight: 10},
	})
	take := func() (int, int, error) {
		return m.Submit("k", 0, Op{Kind: Add, Val: 1}, NewPending())
	}
	for i := 0; i < 2; i++ {
		if _, _, err := take(); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Third token: the queue (depth 2) is full, so this must be the
	// 503-class queue shed, not a rate limit.
	if _, _, err := take(); err != ErrQueueFull {
		t.Fatalf("full queue: got %v, want ErrQueueFull", err)
	}
	// Bucket now empty: rate limit wins over queue state.
	if _, _, err := take(); err != ErrRateLimited {
		t.Fatalf("empty bucket: got %v, want ErrRateLimited", err)
	}
	st := m.Stats(0)
	if st.ShedQueueFull != 1 || st.ShedRateLimit != 1 || st.Accepted != 2 {
		t.Fatalf("stats %+v", st)
	}
	if m.InFlight() != 2 {
		t.Fatalf("in-flight %d, want 2", m.InFlight())
	}
}

// TestSubmitInFlightCap: the global cap sheds across shards.
func TestSubmitInFlightCap(t *testing.T) {
	_, m := simMap(t, 2, Config{
		Shards: 4, QueueDepth: 64,
		Admission: Admission{MaxInFlight: 3},
	})
	accepted := 0
	var lastErr error
	for i := 0; i < 8; i++ {
		if _, _, err := m.Submit(fmt.Sprintf("key%d", i), 0, Op{Kind: Get}, NewPending()); err != nil {
			lastErr = err
		} else {
			accepted++
		}
	}
	if accepted != 3 || lastErr != ErrInFlight {
		t.Fatalf("accepted %d (want 3), last error %v (want ErrInFlight)", accepted, lastErr)
	}
	var shed int64
	for s := 0; s < m.Shards(); s++ {
		shed += m.Stats(s).ShedInFlight
	}
	if shed != 5 {
		t.Fatalf("in-flight sheds %d, want 5", shed)
	}
}

// TestPerShardElectors: the elector list cycles across shards and each
// shard's stack reports its own elector.
func TestPerShardElectors(t *testing.T) {
	k := sim.New(2)
	m, err := New(deploy.Sim(k), Config{
		Shards:   3,
		Electors: []elector.Builder{elector.Atomic, elector.Nerio},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantFlags := []string{"atomic", "nerio", "atomic"}
	for s := 0; s < 3; s++ {
		if m.ElectorFlag(s) != wantFlags[s] {
			t.Fatalf("shard %d elector %q, want %q", s, m.ElectorFlag(s), wantFlags[s])
		}
		if len(m.Leaders(s)) != 2 {
			t.Fatalf("shard %d leader vector %v", s, m.Leaders(s))
		}
	}
	k.Shutdown()
}

// TestAblateBatchFenceHasTeeth: rotating response assignment inside a
// multi-op batch visibly corrupts the prev chain of same-key adds —
// this is the defect the fuzzer's shard/kv-nobatchfence target must
// catch via its per-shard linearizability oracle.
func TestAblateBatchFenceHasTeeth(t *testing.T) {
	k, m := simMap(t, 2, Config{Shards: 1, MaxBatch: 8, QueueDepth: 16, AblateBatchFence: true})
	m.Start()
	pds := submitAll(t, m, "k", 0, []Op{{Kind: Add, Val: 1}, {Kind: Add, Val: 1}, {Kind: Add, Val: 1}})
	if _, err := k.Run(400_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	rs := results(t, pds)
	// Sound prevs would be 0,1,2; the rotated assignment yields 1,2,0.
	if rs[0].Prev == 0 && rs[1].Prev == 1 && rs[2].Prev == 2 {
		t.Fatalf("ablation had no observable effect: prevs %+v", rs)
	}
}
