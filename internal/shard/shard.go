package shard

import (
	"fmt"
	"sync/atomic"
	"time"

	"tbwf/internal/deploy"
	"tbwf/internal/elector"
	"tbwf/internal/mpsc"
	"tbwf/internal/prim"
	"tbwf/internal/register"
	"tbwf/internal/serve/telemetry"
)

// Config sizes a sharded keyspace deployment.
type Config struct {
	// Shards is the number of independent TBWF stacks (default 1).
	Shards int
	// QueueDepth bounds each (shard, replica) request queue (default 64).
	QueueDepth int
	// MaxBatch bounds how many queued ops one worker turn folds into a
	// single QA round (default 16; 1 disables batching).
	MaxBatch int
	// Electors are cycled across shards: shard s gets Electors[s mod len].
	// Empty defaults every shard to elector.Atomic.
	Electors []elector.Builder
	// Admission is the overload policy (zero value: admit everything).
	Admission Admission
	// RegisterOptions apply to every abortable register of every stack.
	RegisterOptions []register.AbOption
	// Hooks observe served and shed operations (telemetry taps).
	Hooks Hooks
	// AblateBatchFence, for the fuzzer's negative control only, rotates
	// response assignment within multi-op batches — breaking the fence
	// between batch order and response order that makes batching
	// transparent. The per-shard linearizability oracle must catch it.
	AblateBatchFence bool
}

// Hooks observe Map events. Both are optional; Served fires from
// substrate worker tasks and Shed from the submitter, so neither may
// block.
type Hooks struct {
	// Served fires after replica p of shard s completes pd as part of a
	// batch of the given size, before the result is delivered.
	Served func(s, p int, pd *Pending, batch int, lat time.Duration)
	// Shed fires when a submission to shard s is refused with err (one of
	// ErrRateLimited, ErrQueueFull, ErrInFlight).
	Shed func(s int, err error)
}

// Pending is one in-flight keyed request. Create with NewPending,
// Submit it, then block on Done (the HTTP path) or Poll cooperatively
// (sim tasks must never block on channels).
type Pending struct {
	// Tag is caller correlation data, carried through untouched.
	Tag any

	start time.Time
	done  chan Result
}

// NewPending prepares an in-flight slot for one operation.
func NewPending() *Pending {
	return &Pending{start: time.Now(), done: make(chan Result, 1)}
}

// Done exposes the completion channel; exactly one Result arrives.
func (pd *Pending) Done() <-chan Result { return pd.done }

// Poll returns the result without blocking; ok is false while the
// operation is in flight.
func (pd *Pending) Poll() (Result, bool) {
	select {
	case r := <-pd.done:
		return r, true
	default:
		return Result{}, false
	}
}

// Result is one completed keyed operation.
type Result struct {
	Resp Resp
	// Latency is submit-to-completion wall time (meaningful on the live
	// substrate; host time, not steps, on the sim kernel).
	Latency time.Duration
}

// queued pairs a keyed op with its in-flight slot inside a
// (shard, replica) lane. The lanes are the repo's single bounded MPSC
// queue implementation (internal/mpsc), shared with the serve layer: sim
// tasks poll it without blocking, and pop order is exactly linearized
// push order on both substrates.
type queued struct {
	op Op
	pd *Pending
}

// Stats is one shard's counter snapshot.
type Stats struct {
	// Accepted counts admitted submissions; Served completed ones;
	// Batches the QA rounds they were folded into.
	Accepted int64
	Served   int64
	Batches  int64
	// ShedRateLimit counts 429-class sheds (empty token bucket);
	// ShedQueueFull and ShedInFlight the 503-class ones.
	ShedRateLimit int64
	ShedQueueFull int64
	ShedInFlight  int64
}

// mapShard is one shard: a full TBWF stack plus its queues and counters.
type mapShard struct {
	stack   *deploy.Stack[map[string]int64, []Op, []Resp]
	flag    string // the elector's canonical flag name
	queues  []*mpsc.Queue[queued]
	bucket  *bucket
	rr      atomic.Int64
	served  telemetry.Counter
	accept  telemetry.Counter
	batches telemetry.Counter
	shedRL  telemetry.Counter
	shedQF  telemetry.Counter
	shedIF  telemetry.Counter
	// hist[size] counts completed batches of that size (1..MaxBatch).
	hist []telemetry.Counter
}

// Map is a sharded keyspace over one substrate: S independent TBWF
// stacks sharing the substrate's N processes. Create with New, then
// Start to spawn the S×N worker tasks.
type Map struct {
	sub      prim.Substrate
	cfg      Config
	shards   []*mapShard
	inflight atomic.Int64
}

// New deploys cfg.Shards stacks on the substrate. Workers are not
// spawned yet — call Start (after telemetry hooks are in place).
func New(sub prim.Substrate, cfg Config) (*Map, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	electors := cfg.Electors
	if len(electors) == 0 {
		electors = []elector.Builder{elector.Atomic}
	}
	m := &Map{sub: sub, cfg: cfg, shards: make([]*mapShard, cfg.Shards)}
	for s := range m.shards {
		builder := electors[s%len(electors)]
		stack, err := deploy.Build[map[string]int64, []Op, []Resp](sub, BatchKV{}, deploy.BuildConfig{
			Elector:         builder,
			RegisterOptions: cfg.RegisterOptions,
		})
		if err != nil {
			return nil, fmt.Errorf("shard: build shard %d: %w", s, err)
		}
		sh := &mapShard{
			stack:  stack,
			flag:   builder.FlagName(),
			queues: make([]*mpsc.Queue[queued], sub.N()),
			bucket: newBucket(cfg.Admission),
			hist:   make([]telemetry.Counter, cfg.MaxBatch+1),
		}
		for p := range sh.queues {
			sh.queues[p] = mpsc.New[queued](cfg.QueueDepth)
		}
		m.shards[s] = sh
	}
	return m, nil
}

// Start spawns one worker task per (shard, replica). Each worker drains
// its queue in batches: it pops up to MaxBatch queued ops in one turn —
// flushing whatever is there when the queue drains, and at the MaxBatch
// boundary when it does not — and pushes the whole batch through the
// replica's TBWF client as a single invocation, so the batch costs one
// Ω∆ leader read and one QA agreement round. Responses are distributed
// back index-aligned (the batch fence). An empty queue costs a
// substrate step, keeping the worker's timeliness observable by Ω∆.
func (m *Map) Start() {
	for s, sh := range m.shards {
		for p := 0; p < m.sub.N(); p++ {
			s, sh, p := s, sh, p
			q := sh.queues[p]
			client := sh.stack.Clients[p]
			m.sub.Spawn(p, fmt.Sprintf("shard[%d]-worker[%d]", s, p), func(pp prim.Proc) {
				buf := make([]queued, m.cfg.MaxBatch)
				for {
					n := q.PopBatch(buf)
					if n == 0 {
						pp.Step()
						continue
					}
					items := buf[:n]
					// The QA log retains the batch slice; give it its own.
					ops := make([]Op, len(items))
					for i := range items {
						ops[i] = items[i].op
					}
					resps := client.Invoke(pp, ops)
					if len(resps) != len(items) {
						panic(fmt.Sprintf("shard: %d responses for a %d-op batch", len(resps), len(items)))
					}
					if m.cfg.AblateBatchFence && len(items) > 1 {
						resps = append(append([]Resp(nil), resps[1:]...), resps[0])
					}
					size := len(items)
					sh.batches.Inc()
					sh.hist[size].Inc()
					for i, it := range items {
						lat := time.Since(it.pd.start)
						sh.served.Inc()
						m.inflight.Add(-1)
						if m.cfg.Hooks.Served != nil {
							m.cfg.Hooks.Served(s, p, it.pd, size, lat)
						}
						it.pd.done <- Result{Resp: resps[i], Latency: lat}
						items[i] = queued{} // don't retain the Pending
					}
				}
			})
		}
	}
}

// ShardFor returns the shard a key routes to.
func (m *Map) ShardFor(key string) int { return KeyShard(key, len(m.shards)) }

// Submit routes op (keyed by key; op.Key is overwritten) through
// admission control onto a replica's queue. replica < 0 round-robins
// within the shard. It returns the target shard and replica along with
// the admission verdict: nil, or one of ErrRateLimited (429),
// ErrQueueFull / ErrInFlight (503). On success the result arrives on
// pd.Done.
//
// Admission order: the shard's token bucket first (rate policy, cheap,
// "client should slow down"), then the global in-flight cap, then the
// bounded queue (both "service is overloaded").
func (m *Map) Submit(key string, replica int, op Op, pd *Pending) (int, int, error) {
	s := m.ShardFor(key)
	sh := m.shards[s]
	op.Key = key
	if replica < 0 {
		replica = int(sh.rr.Add(1)-1) % m.sub.N()
	} else if replica >= m.sub.N() {
		return s, replica, fmt.Errorf("shard: replica %d out of range [0,%d)", replica, m.sub.N())
	}
	shed := func(c *telemetry.Counter, err error) (int, int, error) {
		c.Inc()
		if m.cfg.Hooks.Shed != nil {
			m.cfg.Hooks.Shed(s, err)
		}
		return s, replica, err
	}
	if !sh.bucket.take() {
		return shed(&sh.shedRL, ErrRateLimited)
	}
	if max := m.cfg.Admission.MaxInFlight; max > 0 && m.inflight.Add(1) > max {
		m.inflight.Add(-1)
		return shed(&sh.shedIF, ErrInFlight)
	} else if max <= 0 {
		m.inflight.Add(1)
	}
	if !sh.queues[replica].Push(queued{op: op, pd: pd}) {
		m.inflight.Add(-1)
		return shed(&sh.shedQF, ErrQueueFull)
	}
	sh.accept.Inc()
	return s, replica, nil
}

// Shards returns the shard count.
func (m *Map) Shards() int { return len(m.shards) }

// N returns the substrate's process (replica) count.
func (m *Map) N() int { return m.sub.N() }

// MaxBatch returns the effective batch bound.
func (m *Map) MaxBatch() int { return m.cfg.MaxBatch }

// InFlight returns the operations admitted but not yet completed.
func (m *Map) InFlight() int64 { return m.inflight.Load() }

// Stats snapshots shard s's counters.
func (m *Map) Stats(s int) Stats {
	sh := m.shards[s]
	return Stats{
		Accepted:      sh.accept.Load(),
		Served:        sh.served.Load(),
		Batches:       sh.batches.Load(),
		ShedRateLimit: sh.shedRL.Load(),
		ShedQueueFull: sh.shedQF.Load(),
		ShedInFlight:  sh.shedIF.Load(),
	}
}

// BatchHist returns shard s's batch-size histogram: index i counts
// completed batches of size i (index 0 is always 0).
func (m *Map) BatchHist(s int) []int64 {
	sh := m.shards[s]
	out := make([]int64, len(sh.hist))
	for i := range sh.hist {
		out[i] = sh.hist[i].Load()
	}
	return out
}

// MeanBatch returns shard s's mean completed-batch size (0 before any
// batch completes). Above 1 means the amortization is real: multiple
// ops rode one QA round.
func (m *Map) MeanBatch(s int) float64 {
	sh := m.shards[s]
	b := sh.batches.Load()
	if b == 0 {
		return 0
	}
	return float64(sh.served.Load()) / float64(b)
}

// QueueDepth returns the current occupancy of shard s's replica-p queue.
func (m *Map) QueueDepth(s, p int) int { return m.shards[s].queues[p].Len() }

// Leaders returns shard s's per-process Ω∆ leader outputs.
func (m *Map) Leaders(s int) []int { return m.shards[s].stack.Leaders() }

// ElectorName returns shard s's Ω∆ implementation name; ElectorFlag its
// canonical registry flag name.
func (m *Map) ElectorName(s int) string { return m.shards[s].stack.Elector.Name() }
func (m *Map) ElectorFlag(s int) string { return m.shards[s].flag }

// Slots returns shard s's allocated QA log slots.
func (m *Map) Slots(s int) int64 { return m.shards[s].stack.Object.Slots() }

// Completed returns shard s's per-replica completed batch-invocation
// counts (the TBWF clients' counters; each completion is one batch).
func (m *Map) Completed(s int) []int64 { return m.shards[s].stack.CompletedOps() }

// FaultMatrix returns shard s's elector fault matrix, if it keeps one.
func (m *Map) FaultMatrix(s int) ([][]int64, bool) { return m.shards[s].stack.FaultMatrix() }
