package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

// randOp draws one op over a small keyspace.
func randOp(rng *rand.Rand) Op {
	keys := []string{"a", "b", "c", "d"}
	op := Op{Key: keys[rng.Intn(len(keys))]}
	switch rng.Intn(4) {
	case 0:
		op.Kind = Get
	case 1:
		op.Kind = Put
		op.Val = rng.Int63n(100)
	case 2:
		op.Kind = Add
		op.Val = 1 + rng.Int63n(9)
	default:
		op.Kind = CAS
		op.Old = rng.Int63n(20)
		op.Val = rng.Int63n(100)
	}
	return op
}

// TestBatchKVFoldsToKV: applying a batch through BatchKV must produce
// exactly the state and responses of folding the ops one at a time
// through the single-op spec — batching is an amortization, not a
// semantic change.
func TestBatchKVFoldsToKV(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		state := KV{}.Init()
		bstate := BatchKV{}.Init()
		for round := 0; round < 4; round++ {
			ops := make([]Op, 1+rng.Intn(8))
			for i := range ops {
				ops[i] = randOp(rng)
			}
			var want []Resp
			for _, op := range ops {
				var r Resp
				state, r = KV{}.Apply(state, op)
				want = append(want, r)
			}
			var got []Resp
			bstate, got = BatchKV{}.Apply(bstate, ops)
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d responses for %d ops", trial, len(got), len(ops))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d op %d (%+v): batch resp %+v, fold resp %+v",
						trial, i, ops[i], got[i], want[i])
				}
			}
			if fmt.Sprint(state) != fmt.Sprint(bstate) {
				t.Fatalf("trial %d: batch state %v, fold state %v", trial, bstate, state)
			}
		}
	}
}

// TestKVApplyPersistent: Apply must never mutate its input state.
func TestKVApplyPersistent(t *testing.T) {
	s0 := map[string]int64{"x": 5}
	s1, r := KV{}.Apply(s0, Op{Kind: Add, Key: "x", Val: 3})
	if s0["x"] != 5 {
		t.Fatalf("Apply mutated its input: %v", s0)
	}
	if s1["x"] != 8 || r.Prev != 5 || !r.Found {
		t.Fatalf("add: state %v resp %+v", s1, r)
	}
	b1, rs := BatchKV{}.Apply(s0, []Op{{Kind: Put, Key: "x", Val: 1}, {Kind: Add, Key: "x", Val: 1}})
	if s0["x"] != 5 {
		t.Fatalf("batch Apply mutated its input: %v", s0)
	}
	if b1["x"] != 2 || rs[0].Prev != 5 || rs[1].Prev != 1 {
		t.Fatalf("batch: state %v resps %+v", b1, rs)
	}
}

// TestKVSemantics pins the per-kind responses.
func TestKVSemantics(t *testing.T) {
	s := KV{}.Init()
	var r Resp
	_, r = KV{}.Apply(s, Op{Kind: Get, Key: "k"})
	if r.Found || r.Prev != 0 {
		t.Fatalf("get on empty: %+v", r)
	}
	s, r = KV{}.Apply(s, Op{Kind: CAS, Key: "k", Old: 0, Val: 7})
	if !r.Swapped || r.Found {
		t.Fatalf("cas from absent-as-0 should swap: %+v", r)
	}
	s, r = KV{}.Apply(s, Op{Kind: CAS, Key: "k", Old: 3, Val: 9})
	if r.Swapped || r.Prev != 7 {
		t.Fatalf("cas with wrong old should not swap: %+v", r)
	}
	if s["k"] != 7 {
		t.Fatalf("failed cas wrote: %v", s)
	}
}

// TestKeyShard: stable, in-range, and actually spreading.
func TestKeyShard(t *testing.T) {
	if KeyShard("anything", 1) != 0 || KeyShard("anything", 0) != 0 {
		t.Fatal("degenerate shard counts must map to 0")
	}
	const shards = 8
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("k%04d", i)
		s := KeyShard(k, shards)
		if s < 0 || s >= shards {
			t.Fatalf("KeyShard(%q, %d) = %d out of range", k, shards, s)
		}
		if s != KeyShard(k, shards) {
			t.Fatalf("KeyShard(%q) unstable", k)
		}
		seen[s] = true
	}
	if len(seen) != shards {
		t.Fatalf("256 keys hit only %d of %d shards", len(seen), shards)
	}
}
