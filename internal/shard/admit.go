package shard

import (
	"errors"
	"sync"
	"time"
)

// The admission errors split overload into "you, slow down" and "us,
// overloaded": a rate-limited submission maps to HTTP 429, a full
// replica queue or a tripped global in-flight cap to HTTP 503.
var (
	// ErrRateLimited means the target shard's token bucket is empty.
	ErrRateLimited = errors.New("shard: rate limited")
	// ErrQueueFull means the target replica's bounded queue is full.
	ErrQueueFull = errors.New("shard: replica queue full")
	// ErrInFlight means the map-wide in-flight cap is reached.
	ErrInFlight = errors.New("shard: in-flight cap reached")
)

// Admission parameterizes overload control. The zero value admits
// everything (no rate limit, no in-flight cap); queues stay bounded
// regardless.
type Admission struct {
	// RefillEvery is the number of clock ticks between token grants to
	// each shard's bucket; 0 disables rate limiting.
	RefillEvery int64
	// Burst is each bucket's capacity (and initial fill). Defaults to 1
	// when rate limiting is on.
	Burst int64
	// MaxInFlight caps operations admitted but not yet completed across
	// the whole map; 0 means unlimited.
	MaxInFlight int64
	// Now is the admission clock, in the same ticks as RefillEvery. Nil
	// defaults to wall-clock nanoseconds; deterministic deployments (the
	// sim kernel) pass the kernel's step counter so runs replay exactly.
	Now func() int64
}

// bucket is one shard's token bucket. A mutex, not atomics: take is a
// few arithmetic ops, the bucket is per shard, and both substrates'
// tasks may only ever block on it momentarily.
type bucket struct {
	mu     sync.Mutex
	refill int64
	burst  int64
	tokens int64
	last   int64
	now    func() int64
}

// newBucket compiles an Admission into a shard's bucket; nil when rate
// limiting is off.
func newBucket(a Admission) *bucket {
	if a.RefillEvery <= 0 {
		return nil
	}
	burst := a.Burst
	if burst <= 0 {
		burst = 1
	}
	now := a.Now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return &bucket{refill: a.RefillEvery, burst: burst, tokens: burst, last: now(), now: now}
}

// take consumes one token, refilling first from elapsed clock ticks.
func (b *bucket) take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if now := b.now(); now > b.last {
		if add := (now - b.last) / b.refill; add > 0 {
			b.tokens += add
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
			b.last += add * b.refill
		}
	}
	if b.tokens <= 0 {
		return false
	}
	b.tokens--
	return true
}
