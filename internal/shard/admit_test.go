package shard

import "testing"

// TestBucketRefill drives a bucket on a fake clock: burst drains, then
// exactly one token per RefillEvery ticks, capped at burst.
func TestBucketRefill(t *testing.T) {
	now := int64(0)
	b := newBucket(Admission{RefillEvery: 10, Burst: 2, Now: func() int64 { return now }})
	if !b.take() || !b.take() {
		t.Fatal("burst of 2 should admit 2")
	}
	if b.take() {
		t.Fatal("empty bucket admitted")
	}
	now = 9 // not a full refill interval yet
	if b.take() {
		t.Fatal("admitted before the refill interval elapsed")
	}
	now = 10
	if !b.take() {
		t.Fatal("one interval should grant one token")
	}
	if b.take() {
		t.Fatal("one interval granted more than one token")
	}
	now = 1000 // long idle: refill caps at burst
	if !b.take() || !b.take() {
		t.Fatal("long idle should refill to burst")
	}
	if b.take() {
		t.Fatal("refill exceeded burst")
	}
}

// TestBucketDisabled: zero RefillEvery means no rate limit.
func TestBucketDisabled(t *testing.T) {
	b := newBucket(Admission{})
	for i := 0; i < 1000; i++ {
		if !b.take() {
			t.Fatal("disabled bucket refused a take")
		}
	}
}

// TestBucketDefaultBurst: rate limiting with no burst defaults to 1.
func TestBucketDefaultBurst(t *testing.T) {
	now := int64(0)
	b := newBucket(Admission{RefillEvery: 5, Now: func() int64 { return now }})
	if !b.take() {
		t.Fatal("default burst should admit 1")
	}
	if b.take() {
		t.Fatal("default burst admitted 2")
	}
}
