package rt_test

import (
	"sync/atomic"
	"testing"
	"time"

	"tbwf/internal/deploy"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/rt"
)

func TestAtomicRegisterConcurrent(t *testing.T) {
	r := rt.New(4, nil)
	reg := rt.NewAtomic(int64(0))
	var reads atomic.Int64
	for p := 0; p < 4; p++ {
		p := p
		r.Spawn(p, "w", func(pp prim.Proc) {
			for i := 0; i < 1000; i++ {
				reg.Write(int64(p))
				reg.Read()
				reads.Add(1)
				pp.Step()
			}
		})
	}
	time.Sleep(50 * time.Millisecond)
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if reads.Load() == 0 {
		t.Fatal("no reads happened")
	}
}

func TestAbortableRegisterSoloSucceeds(t *testing.T) {
	r := rt.New(1, nil)
	reg := rt.NewAbortable(int64(0))
	fails := 0
	done := make(chan struct{})
	r.Spawn(0, "w", func(p prim.Proc) {
		defer close(done)
		for i := int64(1); i <= 100; i++ {
			if !reg.Write(i) {
				fails++
			}
			p.Step()
		}
	})
	<-done
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if fails != 0 {
		t.Fatalf("%d solo writes aborted", fails)
	}
	if v, ok := reg.Read(); !ok || v != 100 {
		t.Fatalf("final read = (%d,%v), want (100,true)", v, ok)
	}
}

func TestCrashStopsTasks(t *testing.T) {
	r := rt.New(2, nil)
	var steps0, steps1 atomic.Int64
	spin := func(ctr *atomic.Int64) func(prim.Proc) {
		return func(p prim.Proc) {
			for {
				ctr.Add(1)
				p.Step()
			}
		}
	}
	r.Spawn(0, "spin", spin(&steps0))
	r.Spawn(1, "spin", spin(&steps1))
	time.Sleep(10 * time.Millisecond)
	r.Crash(0)
	time.Sleep(10 * time.Millisecond)
	at := steps0.Load()
	time.Sleep(20 * time.Millisecond)
	if got := steps0.Load(); got != at {
		t.Fatalf("crashed process kept stepping: %d -> %d", at, got)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if steps1.Load() <= steps0.Load() {
		t.Fatal("surviving process did not outrun the crashed one")
	}
}

// The full TBWF stack on real goroutines: all-timely processes complete
// their counter operations and the responses are distinct.
func TestTBWFStackLive(t *testing.T) {
	const n, opsEach = 3, 5
	r := rt.New(n, rt.Steady(0))
	st, err := deploy.Build[int64, objtype.CounterOp, int64](r, objtype.Counter{}, deploy.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	resps := make([][]int64, n)
	dones := make([]chan struct{}, n)
	for p := 0; p < n; p++ {
		p := p
		dones[p] = make(chan struct{})
		r.Spawn(p, "client", func(pp prim.Proc) {
			defer close(dones[p])
			for i := 0; i < opsEach; i++ {
				resps[p] = append(resps[p], st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1}))
			}
		})
	}
	deadline := time.After(30 * time.Second)
	for p := 0; p < n; p++ {
		select {
		case <-dones[p]:
		case <-deadline:
			t.Fatalf("client %d did not finish in time (completed %d ops)", p, st.Clients[p].Completed())
		}
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for p := 0; p < n; p++ {
		if len(resps[p]) != opsEach {
			t.Fatalf("client %d finished %d/%d ops", p, len(resps[p]), opsEach)
		}
		for _, v := range resps[p] {
			if seen[v] {
				t.Fatalf("duplicate fetch-and-add response %d", v)
			}
			seen[v] = true
		}
	}
}
