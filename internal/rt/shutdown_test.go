package rt_test

import (
	"runtime"
	"testing"
	"time"

	"tbwf/internal/deploy"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/rt"
)

// Stopping a full deploy.Build deployment must tear down every goroutine the
// runtime spawned (monitors, Ω∆ tasks, clients), and a second Stop must be
// a harmless no-op.
func TestStopTearsDownDeployment(t *testing.T) {
	before := runtime.NumGoroutine()

	r := rt.New(3, nil)
	stack, err := deploy.Build[int64, objtype.CounterOp, int64](r, objtype.Counter{}, deploy.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Drive one operation per process so the deployment demonstrably ran
	// before being stopped.
	done := make(chan int64, 3)
	for p := 0; p < 3; p++ {
		p := p
		r.Spawn(p, "client", func(pp prim.Proc) {
			done <- stack.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
		})
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("deployment made no progress")
		}
	}

	if err := r.Stop(); err != nil {
		t.Fatalf("first stop: %v", err)
	}

	// Stop waits for every spawned task, but the goroutines themselves may
	// still be winding down their exit path; poll briefly for the count to
	// return to the pre-deployment level.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before deployment, %d after stop\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := r.Stop(); err != nil {
		t.Fatalf("second stop is not a no-op: %v", err)
	}
}

// Stop must also be prompt and idempotent when a process is mid-gap in a
// degraded profile (the sleep is interruptible).
func TestStopInterruptsDegradedProcess(t *testing.T) {
	r := rt.New(2, nil)
	r.SetProfile(1, rt.GrowingGaps(1, 30*time.Second, 1))
	stepped := make(chan struct{})
	r.Spawn(1, "sleeper", func(pp prim.Proc) {
		close(stepped)
		for {
			pp.Step() // first step draws the 30s gap
		}
	})
	<-stepped
	time.Sleep(10 * time.Millisecond) // let the task enter the gap sleep
	start := time.Now()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("stop took %v with a process mid-gap", d)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
}
