package rt

import (
	"fmt"

	"tbwf/internal/core"
	"tbwf/internal/omega"
	"tbwf/internal/prim"
	"tbwf/internal/qa"
)

// QAFactories returns qa register factories backed by the real-time
// substrate's abortable registers.
func QAFactories[O any]() qa.Factories[O] {
	return qa.Factories[O]{
		Ballot: func(name string, writer int) prim.AbortableRegister[int64] {
			return NewAbortable(int64(0))
		},
		Accept: func(name string, writer int) prim.AbortableRegister[qa.Accepted[O]] {
			return NewAbortable(qa.Accepted[O]{})
		},
		Decide: func(name string) prim.AbortableRegister[qa.Decision[O]] {
			return NewAbortable(qa.Decision[O]{})
		},
	}
}

// TBWFStack is a TBWF object deployment on the real-time substrate: Ω∆
// over atomic registers (Figures 2–3), the query-abortable object, and a
// client per process. The Ω∆ and monitor tasks are spawned; the caller
// drives Clients[p].Invoke from its own workload tasks.
type TBWFStack[S, O, R any] struct {
	Instances []*omega.Instance
	Object    *qa.SharedObject[S, O, R]
	Clients   []*core.Client[S, O, R]
	// Omega is the full Ω∆ deployment (monitors included), exposed so
	// telemetry layers can tap leader outputs and fault counters.
	Omega *omega.Deployment
}

// BuildTBWF wires a TBWF object of the given sequential type on the
// runtime.
func BuildTBWF[S, O, R any](r *Runtime, typ qa.Type[S, O, R]) (*TBWFStack[S, O, R], error) {
	dep, err := omega.BuildWith(r.N(), r, func(name string, init int64) prim.Register[int64] {
		return NewAtomic(init)
	})
	if err != nil {
		return nil, fmt.Errorf("rt: %w", err)
	}
	obj, err := qa.New(typ, r.N(), QAFactories[O](), 0)
	if err != nil {
		return nil, fmt.Errorf("rt: %w", err)
	}
	st := &TBWFStack[S, O, R]{
		Instances: dep.Instances,
		Object:    obj,
		Clients:   make([]*core.Client[S, O, R], r.N()),
		Omega:     dep,
	}
	for p := 0; p < r.N(); p++ {
		c, err := core.NewClient(dep.Instances[p], obj.Handle(p))
		if err != nil {
			return nil, fmt.Errorf("rt: %w", err)
		}
		st.Clients[p] = c
	}
	return st, nil
}
