package rt_test

import (
	"sync"
	"testing"
	"time"

	"tbwf/internal/lincheck"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/rt"
)

// Successful operations on the real-time abortable register must be
// linearizable — the goroutine analogue of
// internal/register/lincheck_test.go's simulation check. Three processes
// hammer one register with real concurrency (run it under -race);
// operations that abort take no effect and are excluded, and the
// Wing–Gong checker judges the rest against the sequential register spec
// using wall-clock invocation/response timestamps.
func TestAbortableSuccessfulOpsLinearize(t *testing.T) {
	const n = 3
	const attempts = 14
	r := rt.New(n, nil)
	defer r.Stop()
	reg := rt.NewAbortable(int64(0))

	var mu sync.Mutex
	var history []lincheck.Op[objtype.RegOp, objtype.RegResp]
	record := func(p int, invoke, response int64, arg objtype.RegOp, resp objtype.RegResp) {
		mu.Lock()
		history = append(history, lincheck.Op[objtype.RegOp, objtype.RegResp]{
			Proc: p, Invoke: invoke, Response: response, Arg: arg, Resp: resp,
		})
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		r.Spawn(p, "client", func(pp prim.Proc) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				if i%2 == 0 {
					v := int64(100*p + i + 1) // unique values per writer
					invoke := time.Now().UnixNano()
					ok := reg.Write(v)
					response := time.Now().UnixNano()
					if ok {
						record(p, invoke, response,
							objtype.RegOp{Kind: objtype.RegWrite, New: v},
							objtype.RegResp{Prev: -1}) // prev unobserved
					}
				} else {
					invoke := time.Now().UnixNano()
					v, ok := reg.Read()
					response := time.Now().UnixNano()
					if ok {
						record(p, invoke, response,
							objtype.RegOp{Kind: objtype.RegRead},
							objtype.RegResp{Prev: v})
					}
				}
				// Let the processes drift out of phase so some operations
				// run solo (the adversary aborts every overlapped pair).
				time.Sleep(time.Duration(p+1) * 200 * time.Microsecond)
				pp.Step()
			}
		})
	}
	wg.Wait()

	if len(history) == 0 {
		t.Skip("every operation overlapped and aborted; nothing to check")
	}
	// The register interface does not return the previous value on writes,
	// so write responses compare loosely: any Prev matches the sentinel.
	opts := lincheck.Options[int64, objtype.RegResp]{
		Equal: func(a, b objtype.RegResp) bool {
			if a.Prev == -1 || b.Prev == -1 {
				return true
			}
			return a == b
		},
	}
	_, ok, err := lincheck.Check[int64](objtype.Register{}, history, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("successful-op history not linearizable:\n%+v", history)
	}
	t.Logf("%d of %d operations succeeded and linearize", len(history), n*attempts)
}
