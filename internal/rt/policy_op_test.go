package rt

import (
	"sync"
	"testing"

	"tbwf/internal/prim"
)

// The runtime cannot attribute a conflicting operation to a process (the
// conflict is another goroutine's overlapping window), so the documented
// prim.Op contract is Proc == -1 — the same contract the net substrate's
// quorum engine follows. Regression test: hammer an abortable register
// from two goroutines until the policy is consulted, and check every Op
// it ever sees.
func TestAbortPolicyOpProcIsMinusOne(t *testing.T) {
	var (
		mu  sync.Mutex
		ops []prim.Op
	)
	capture := prim.AbortPolicyFunc(func(op prim.Op) bool {
		mu.Lock()
		ops = append(ops, op)
		mu.Unlock()
		return true
	})
	reg := NewNamedAbortable("contended", int64(0), prim.WithAbortPolicy(capture))
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				reg.Write(int64(i))
				reg.Read()
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(ops) == 0 {
		t.Skip("no contention observed in 20000 overlapping operations")
	}
	for _, op := range ops {
		if op.Proc != -1 {
			t.Fatalf("policy op fabricated a process id: %+v", op)
		}
		if op.Register != "contended" {
			t.Fatalf("policy op names register %q, want contended", op.Register)
		}
	}
}
