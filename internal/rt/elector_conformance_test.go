package rt_test

import (
	"fmt"
	"testing"
	"time"

	"tbwf/internal/elector"
	"tbwf/internal/elector/electortest"
	"tbwf/internal/rt"
)

// Every registered elector passes the elector conformance suite on the
// real-time runtime. Tasks are goroutines paced by gates, so the harness
// polls the done condition in wall-clock time; CI runs this package under
// -race, which makes the suite double as a data-race check on each
// elector's registers and telemetry taps.
func TestElectorConformanceRuntime(t *testing.T) {
	for _, name := range elector.Names() {
		builder, err := elector.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			electortest.Run(t, builder, func(t *testing.T) *electortest.Harness {
				r := rt.New(3, nil)
				t.Cleanup(func() {
					if err := r.Stop(); err != nil {
						t.Errorf("runtime stop: %v", err)
					}
				})
				return &electortest.Harness{
					Sub: r,
					Run: func(done func() bool) error {
						deadline := time.Now().Add(30 * time.Second)
						for !done() {
							if time.Now().After(deadline) {
								return fmt.Errorf("runtime did not reach the done condition in 30s")
							}
							time.Sleep(time.Millisecond)
						}
						return nil
					},
				}
			})
		})
	}
}
