package rt

import (
	"runtime"
	"sync"

	"tbwf/internal/prim"
)

// Atomic is a linearizable register on the real-time substrate: a plain
// mutex-protected value. Multi-writer, multi-reader.
type Atomic[T any] struct {
	mu  sync.RWMutex
	val T
}

var _ prim.Register[int] = (*Atomic[int])(nil)

// NewAtomic creates an atomic register with initial value init.
func NewAtomic[T any](init T) *Atomic[T] {
	return &Atomic[T]{val: init}
}

// Read returns the register's value.
func (r *Atomic[T]) Read() T {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.val
}

// Write replaces the register's value.
func (r *Atomic[T]) Write(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.val = v
}

// Abortable is an abortable register on the real-time substrate with true
// concurrency detection: every operation registers itself as in flight,
// briefly yields (so overlap is genuinely possible), and aborts if any
// other operation on the register was in flight at any point during its
// window — the strongest adversary allowed by the specification, matching
// the simulation substrate's default. Aborted writes take no effect.
type Abortable[T any] struct {
	mu       sync.Mutex
	val      T
	nextOp   int64
	inFlight map[int64]*rtOp
}

var _ prim.AbortableRegister[int] = (*Abortable[int])(nil)

type rtOp struct {
	contended bool
}

// NewAbortable creates an abortable register with initial value init.
func NewAbortable[T any](init T) *Abortable[T] {
	return &Abortable[T]{val: init, inFlight: make(map[int64]*rtOp)}
}

func (r *Abortable[T]) begin() (int64, *rtOp) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op := &rtOp{}
	if len(r.inFlight) > 0 {
		op.contended = true
		for _, o := range r.inFlight {
			o.contended = true
		}
	}
	r.nextOp++
	id := r.nextOp
	r.inFlight[id] = op
	return id, op
}

// Read returns the register's value, or ok=false if the read overlapped
// another operation. The completion check and the value read happen under
// one lock acquisition, which is the read's linearization point.
func (r *Abortable[T]) Read() (T, bool) {
	id, _ := r.begin()
	runtime.Gosched() // give the operation a real window
	r.mu.Lock()
	defer r.mu.Unlock()
	op := r.inFlight[id]
	delete(r.inFlight, id)
	if op.contended {
		var zero T
		return zero, false
	}
	return r.val, true
}

// Write stores v, or reports false if the write overlapped another
// operation, in which case it took no effect.
func (r *Abortable[T]) Write(v T) bool {
	id, _ := r.begin()
	runtime.Gosched()
	r.mu.Lock()
	defer r.mu.Unlock()
	op := r.inFlight[id]
	delete(r.inFlight, id)
	if op.contended {
		return false
	}
	r.val = v
	return true
}
