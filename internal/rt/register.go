package rt

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tbwf/internal/prim"
)

// Atomic is a linearizable register on the real-time substrate: a plain
// mutex-protected value. Multi-writer, multi-reader.
type Atomic[T any] struct {
	mu   sync.RWMutex
	name string
	val  T

	reads, writes atomic.Int64 // counted outside the lock: reads stay shared
}

var _ prim.Register[int] = (*Atomic[int])(nil)

// NewAtomic creates an unnamed atomic register with initial value init.
func NewAtomic[T any](init T) *Atomic[T] { return NewNamedAtomic("", init) }

// NewNamedAtomic creates an atomic register named name, so telemetry and
// traces can attribute its operations on both substrates.
func NewNamedAtomic[T any](name string, init T) *Atomic[T] {
	return &Atomic[T]{name: name, val: init}
}

// Name returns the register's name ("" for unnamed registers).
func (r *Atomic[T]) Name() string { return r.name }

// Stats returns a snapshot of the register's operation counters.
func (r *Atomic[T]) Stats() prim.Stats {
	return prim.Stats{Reads: r.reads.Load(), Writes: r.writes.Load()}
}

// Read returns the register's value.
func (r *Atomic[T]) Read() T {
	r.reads.Add(1)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.val
}

// Write replaces the register's value.
func (r *Atomic[T]) Write(v T) {
	r.writes.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.val = v
}

// Reset reinitializes the register to v, as if freshly created. It exists
// so a recycled consensus slot can reuse its registers instead of
// allocating new ones; callers must guarantee no operation is in flight.
func (r *Atomic[T]) Reset(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.val = v
}

// Abortable is an abortable register on the real-time substrate with true
// concurrency detection: every operation registers itself as in flight,
// briefly yields (so overlap is genuinely possible), and is *contended* if
// any other operation on the register was in flight at any point during
// its window. Whether a contended operation aborts is the AbortPolicy's
// call, and whether an aborted write takes effect is the EffectPolicy's —
// the defaults (every contended operation aborts, aborted writes take no
// effect) are the strongest adversary allowed by the specification,
// matching the simulation substrate's default.
//
// Policy decisions see Proc = -1 (the runtime cannot attribute an
// operation to a process) and Step = the register's own operation
// sequence number. SWSR roles from WithRoles are recorded for telemetry
// but not enforced, for the same reason.
type Abortable[T any] struct {
	mu     sync.Mutex
	name   string
	cfg    prim.AbConfig
	val    T
	active int   // operations currently inside their overlap window
	opGen  int64 // bumped on every begin; doubles as the op's policy Step
	stats  prim.Stats
}

var _ prim.AbortableRegister[int] = (*Abortable[int])(nil)

// NewAbortable creates an unnamed abortable register with initial value
// init and the default (strongest-adversary) policies.
func NewAbortable[T any](init T) *Abortable[T] { return NewNamedAbortable("", init) }

// NewNamedAbortable creates an abortable register named name, configured
// by the same options vocabulary as the simulation substrate's registers.
func NewNamedAbortable[T any](name string, init T, opts ...prim.AbOption) *Abortable[T] {
	return &Abortable[T]{
		name: name,
		cfg:  prim.ApplyAbOptions(opts...),
		val:  init,
	}
}

// Name returns the register's name ("" for unnamed registers).
func (r *Abortable[T]) Name() string { return r.name }

// Roles returns the recorded SWSR roles (-1, -1 when unrestricted).
func (r *Abortable[T]) Roles() (writer, reader int) { return r.cfg.Writer, r.cfg.Reader }

// Stats returns a snapshot of the register's operation counters.
func (r *Abortable[T]) Stats() prim.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// begin opens an operation's overlap window. It returns the operation's
// id (its generation number) and whether it is already contended because
// other operations were in flight when it began. No per-operation heap
// object exists: an operation is contended iff active > 0 at its begin or
// opGen advanced during its window (some other operation began before it
// ended) — exactly the "overlapped at any point" relation the old
// in-flight map tracked, in two ints.
func (r *Abortable[T]) begin(isWrite bool) (id int64, contended bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if isWrite {
		r.stats.Writes++
	} else {
		r.stats.Reads++
	}
	contended = r.active > 0
	r.active++
	r.opGen++
	return r.opGen, contended
}

// Read returns the register's value, or ok=false if the read overlapped
// another operation and the abort policy aborted it. The completion check
// and the value read happen under one lock acquisition, which is the
// read's linearization point.
func (r *Abortable[T]) Read() (T, bool) {
	id, contended := r.begin(false)
	runtime.Gosched() // give the operation a real window
	r.mu.Lock()
	defer r.mu.Unlock()
	r.active--
	if (contended || r.opGen > id) && r.cfg.Abort.Abort(prim.Op{Register: r.name, Proc: -1, IsWrite: false, Step: id}) {
		r.stats.ReadAborts++
		var zero T
		return zero, false
	}
	return r.val, true
}

// Write stores v, or reports false if the write overlapped another
// operation and the abort policy aborted it; an aborted write takes
// effect iff the effect policy says so.
func (r *Abortable[T]) Write(v T) bool {
	id, contended := r.begin(true)
	runtime.Gosched()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.active--
	if contended || r.opGen > id {
		pop := prim.Op{Register: r.name, Proc: -1, IsWrite: true, Step: id}
		if r.cfg.Abort.Abort(pop) {
			r.stats.WriteAborts++
			if r.cfg.Effect.TakesEffect(pop) {
				r.val = v
			}
			return false
		}
	}
	r.val = v
	return true
}

// Reset reinitializes the register to v, as if freshly created, so a
// recycled consensus slot can reuse its registers. Callers must guarantee
// no operation is in flight.
func (r *Abortable[T]) Reset(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.val = v
}
