package rt_test

import (
	"testing"
	"time"

	"tbwf/internal/deploy"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/rt"
)

// Graceful degradation on real goroutines: one process gets growing
// wall-clock gaps, the other two stay at full speed. The timely clients
// must complete their operation targets promptly; the untimely one lags;
// everything that completes is consistent.
func TestLiveGracefulDegradation(t *testing.T) {
	const n, opsEach = 3, 6
	r := rt.New(n, rt.Steady(0))
	// Process 0 degrades: after each burst of 200 steps it sleeps, with
	// the sleep doubling — unbounded gaps, hence untimely.
	r.SetProfile(0, rt.GrowingGaps(200, 2*time.Millisecond, 2))

	st, err := deploy.Build[int64, objtype.CounterOp, int64](r, objtype.Counter{}, deploy.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	resps := make([][]int64, n)
	done := make([]chan struct{}, n)
	for p := 0; p < n; p++ {
		p := p
		done[p] = make(chan struct{})
		r.Spawn(p, "client", func(pp prim.Proc) {
			defer close(done[p])
			for i := 0; i < opsEach; i++ {
				resps[p] = append(resps[p], st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1}))
			}
		})
	}
	// The timely clients (1, 2) must finish well within the deadline.
	deadline := time.After(30 * time.Second)
	for _, p := range []int{1, 2} {
		select {
		case <-done[p]:
		case <-deadline:
			t.Fatalf("timely client %d did not finish (completed %d/%d)", p, st.Clients[p].Completed(), opsEach)
		}
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	// Consistency across everything that completed.
	seen := map[int64]bool{}
	for p := 0; p < n; p++ {
		for _, v := range resps[p] {
			if seen[v] {
				t.Fatalf("duplicate fetch-and-add response %d", v)
			}
			seen[v] = true
		}
	}
	for _, p := range []int{1, 2} {
		if len(resps[p]) != opsEach {
			t.Fatalf("timely client %d completed %d/%d", p, len(resps[p]), opsEach)
		}
	}
}

func TestProfileShapes(t *testing.T) {
	s := rt.Steady(3 * time.Millisecond)
	for i := int64(0); i < 5; i++ {
		if s(i) != 3*time.Millisecond {
			t.Fatal("steady profile not constant")
		}
	}
	g := rt.GrowingGaps(3, time.Millisecond, 2)
	var gaps []time.Duration
	for i := int64(0); i < 12; i++ {
		if d := g(i); d > 0 {
			gaps = append(gaps, d)
		}
	}
	if len(gaps) < 2 {
		t.Fatalf("expected several gaps, got %v", gaps)
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] <= gaps[i-1] {
			t.Fatalf("gaps not growing: %v", gaps)
		}
	}
}
