package rt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbwf/internal/prim"
)

// spawnStepper runs a task on process p that steps forever, counting steps.
// Returns the counter and a channel closed once the task has started.
func spawnStepper(r *Runtime, p int) (*atomic.Int64, chan struct{}) {
	var steps atomic.Int64
	started := make(chan struct{})
	r.Spawn(p, "stepper", func(pp prim.Proc) {
		close(started)
		for {
			pp.Step()
			steps.Add(1)
		}
	})
	return &steps, started
}

// Crash must interrupt a task parked inside a long gap — the task exits
// now, not when its 30s pause would have expired.
func TestCrashInterruptsParkedGap(t *testing.T) {
	r := New(2, nil)
	r.SetProfile(1, GrowingGaps(1, 30*time.Second, 1))
	_, started := spawnStepper(r, 1)
	<-started
	time.Sleep(20 * time.Millisecond) // let the task park in the gap

	done := make(chan struct{})
	go func() {
		r.Crash(1)
		// Stop would wait for all tasks anyway; here we only want to know
		// the crashed task's goroutine is gone promptly.
		r.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("crash did not interrupt a parked gap")
	}
}

// A live profile retune must wake a parked task, which then re-draws its
// delay from the new profile — the /v1/fault "heal" path.
func TestRetuneWakesParkedTask(t *testing.T) {
	r := New(1, nil)
	defer r.Stop()
	r.SetProfile(0, GrowingGaps(1, 30*time.Second, 1))
	steps, started := spawnStepper(r, 0)
	<-started
	time.Sleep(20 * time.Millisecond) // task is now parked in a 30s gap

	base := steps.Load()
	r.SetProfile(0, nil) // heal: zero-delay
	deadline := time.Now().Add(5 * time.Second)
	for steps.Load() <= base {
		if time.Now().After(deadline) {
			t.Fatalf("retune did not wake the parked task (steps still %d)", steps.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// A retune to a *different positive* profile must re-draw the gap rather
// than serve out the stale one: park at 30s, retune to 5ms, expect steps
// to resume at 5ms cadence.
func TestRetuneRedrawsGap(t *testing.T) {
	r := New(1, nil)
	defer r.Stop()
	r.SetProfile(0, Steady(30*time.Second))
	steps, started := spawnStepper(r, 0)
	<-started
	time.Sleep(20 * time.Millisecond)

	base := steps.Load()
	r.SetProfile(0, Steady(5*time.Millisecond))
	deadline := time.Now().Add(5 * time.Second)
	for steps.Load() <= base {
		if time.Now().After(deadline) {
			t.Fatalf("retuned task did not re-draw its gap (steps still %d)", steps.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// The zero-delay fast path must not allocate: steady-state pacing is an
// atomic bump plus a Gosched.
func TestZeroPaceAllocs(t *testing.T) {
	g := &Gate{stopped: new(atomic.Bool), stopCh: make(chan struct{}), wake: make(chan struct{})}
	g.zero.Store(true)
	if avg := testing.AllocsPerRun(1000, g.pace); avg != 0 {
		t.Fatalf("zero-delay pace allocates %.1f objects/op, want 0", avg)
	}
}

// Paced (positive-delay) stepping must also be allocation-free in steady
// state: parking timers come from a pool.
func TestPacedStepAllocs(t *testing.T) {
	g := &Gate{stopped: new(atomic.Bool), stopCh: make(chan struct{}), wake: make(chan struct{})}
	g.profile = Steady(10 * time.Microsecond)
	g.pace() // warm the timer pool
	if avg := testing.AllocsPerRun(100, g.pace); avg > 0.1 {
		t.Fatalf("paced step allocates %.2f objects/op amortized, want ~0", avg)
	}
}

// Concurrent tasks of one process fold telemetry through the same gate;
// the EWMA read-modify-write must not lose updates or race. Run with
// -race for the memory-model teeth; the value assertion below checks the
// fold still converges to the gap scale rather than being torn.
func TestObserveGapConcurrent(t *testing.T) {
	g := &Gate{stopped: new(atomic.Bool), stopCh: make(chan struct{}), wake: make(chan struct{})}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				g.observeGap(time.Now().UnixNano())
			}
		}()
	}
	wg.Wait()
	if max, avg := g.maxGapNS.Load(), g.ewmaGapNS.Load(); avg < 0 || avg > max {
		t.Fatalf("EWMA fold out of range: avg=%d max=%d", avg, max)
	}
}

// Repeated deploy/stop cycles with parked and crashed processes must not
// accumulate goroutines — the leak-delta extension of shutdown_test.go.
func TestStopCyclesLeakNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for cycle := 0; cycle < 10; cycle++ {
		r := New(3, nil)
		r.SetProfile(2, GrowingGaps(1, time.Hour, 1))
		for p := 0; p < 3; p++ {
			spawnStepper(r, p)
		}
		time.Sleep(5 * time.Millisecond)
		r.Crash(1)
		if err := r.Stop(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked over stop cycles: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
