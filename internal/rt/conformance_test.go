package rt

import (
	"fmt"
	"testing"
	"time"

	"tbwf/internal/prim/primtest"
)

// The real-time runtime passes the prim conformance suite. Tasks are real
// goroutines paced by gates, so the harness polls the done condition in
// wall-clock time; CI runs this package under -race, which makes the suite
// double as a data-race check on the runtime's registers and gates.
func TestRuntimeSubstrateConformance(t *testing.T) {
	primtest.Run(t, func(t *testing.T) *primtest.Harness {
		r := New(3, nil)
		t.Cleanup(func() {
			if err := r.Stop(); err != nil {
				t.Errorf("runtime stop: %v", err)
			}
		})
		return &primtest.Harness{
			Sub: r,
			Run: func(done func() bool) error {
				deadline := time.Now().Add(20 * time.Second)
				for !done() {
					if time.Now().After(deadline) {
						return fmt.Errorf("runtime did not reach the done condition in 20s")
					}
					time.Sleep(time.Millisecond)
				}
				return nil
			},
			Crash: r.Crash,
		}
	})
}
