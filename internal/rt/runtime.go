// Package rt is the real-time substrate: it runs the same algorithm code
// as the simulation kernel (internal/sim) on plain goroutines, with
// genuinely concurrent registers and wall-clock pacing instead of a
// step-sequencing scheduler.
//
// Timeliness is shaped by per-process pacing profiles: every call to
// Proc.Step consults the process's Gate, which may sleep. A process with a
// steady (or zero) pace is timely relative to the others; a process whose
// gaps grow without bound is the paper's untimely "flickering" process.
// The examples use this substrate to show the TBWF stack working live;
// tests and benchmarks use internal/sim, where runs are deterministic and
// timeliness is measured exactly.
package rt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tbwf/internal/prim"
)

// Profile maps a process's step number to the delay taken at that step.
// Profiles may keep internal state; each process gets its own instance.
// A nil Profile means "no delay": the gate takes its zero-cost fast path
// (atomic step bump + Gosched) without ever locking or calling a func.
type Profile func(step int64) time.Duration

// Steady returns a profile with a constant delay per step. A non-positive
// delay returns nil — the canonical timely profile — so a zero pace rides
// the gate's fast path instead of paying a profile call per step.
func Steady(d time.Duration) Profile {
	if d <= 0 {
		return nil
	}
	return func(int64) time.Duration { return d }
}

// GrowingGaps returns a profile that runs burst steps at full speed, then
// pauses for a gap that grows geometrically: a correct but untimely
// process (its gaps exceed any fixed bound).
func GrowingGaps(burst int64, firstGap time.Duration, factor float64) Profile {
	if burst <= 0 {
		burst = 1
	}
	if factor < 1 {
		factor = 1
	}
	gap := firstGap
	var inBurst int64
	return func(int64) time.Duration {
		inBurst++
		if inBurst >= burst {
			inBurst = 0
			d := gap
			gap = time.Duration(float64(gap) * factor)
			return d
		}
		return 0
	}
}

// Gate paces one process and carries its crash/stop state. All of a
// process's task goroutines share one gate, and profiles may keep internal
// state, so profile invocation is serialized (the sleep itself is not —
// only the task that drew the gap sleeps, mirroring how a single slow task
// does not freeze its siblings mid-call).
//
// Parking protocol: a task that drew a positive gap parks on a pooled
// timer, selecting against the runtime's stopCh and the gate's wake
// channel. SetProfile and Crash close-and-replace wake, so Stop, a crash,
// and a live profile retune all interrupt a parked task immediately — a
// process deep in a grown gap reacts to /v1/fault now, not when its old
// gap expires. A retuned task re-draws its gap from the new profile.
//
// The zero-delay fast path: when the profile is nil the gate never takes
// mu at all — pace is the crash/stop loads, the telemetry fold, an atomic
// step bump, and a Gosched.
type Gate struct {
	zero    atomic.Bool // profile == nil: take the fast path
	mu      sync.Mutex  // guards profile invocation and wake rotation
	profile Profile
	wake    chan struct{} // closed+replaced by SetProfile/Crash; wakes parked tasks
	step    atomic.Int64
	crashed atomic.Bool
	stopped *atomic.Bool  // the runtime's stop flag, shared
	stopCh  chan struct{} // closed by Stop; interrupts in-progress gap sleeps

	// Step-gap telemetry, updated on every pace. Gaps are wall-clock
	// nanoseconds between consecutive steps of the process (any of its
	// tasks), the live analogue of the paper's scheduling gaps.
	lastStepNS atomic.Int64 // UnixNano of the latest step; 0 before the first
	maxGapNS   atomic.Int64
	ewmaGapNS  atomic.Int64 // exponentially weighted moving average, α=1/16
}

// timerPool recycles parking timers across all gates, so steady-state
// paced stepping allocates no timer or channel per gap.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer, fired bool) {
	if !fired && !t.Stop() {
		// The timer fired while we were being woken some other way; drain
		// so the next Reset starts from a clean channel.
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

func (g *Gate) pace() {
	if g.stopped.Load() {
		prim.ExitTask("runtime stopped")
	}
	if g.crashed.Load() {
		prim.ExitTask("process crashed")
	}
	g.observeGap(time.Now().UnixNano())
	step := g.step.Add(1)
	if g.zero.Load() {
		runtime.Gosched()
		return
	}
	g.mu.Lock()
	var d time.Duration
	if g.profile != nil {
		d = g.profile(step)
	}
	wake := g.wake
	g.mu.Unlock()
	for d > 0 {
		t := getTimer(d)
		select {
		case <-t.C:
			putTimer(t, true)
			return
		case <-g.stopCh:
			putTimer(t, false)
			prim.ExitTask("runtime stopped")
		case <-wake:
			putTimer(t, false)
			// Woken early: either the process crashed or its profile was
			// retuned. Re-check, then re-draw the gap from the (possibly
			// new) profile rather than serving out the stale one.
			if g.crashed.Load() {
				prim.ExitTask("process crashed")
			}
			g.mu.Lock()
			if g.profile == nil {
				d = 0
			} else {
				d = g.profile(step)
			}
			wake = g.wake
			g.mu.Unlock()
		}
	}
	runtime.Gosched()
}

// observeGap folds one inter-step gap into the gate's telemetry. Both
// folds are CAS loops: concurrent tasks of one process pace through the
// same gate, and a plain load/store read-modify-write would lose updates.
func (g *Gate) observeGap(now int64) {
	prev := g.lastStepNS.Swap(now)
	if prev == 0 || now <= prev {
		return
	}
	gap := now - prev
	for {
		max := g.maxGapNS.Load()
		if gap <= max || g.maxGapNS.CompareAndSwap(max, gap) {
			break
		}
	}
	for {
		old := g.ewmaGapNS.Load()
		next := old + (gap-old)/16
		if next == old || g.ewmaGapNS.CompareAndSwap(old, next) {
			break
		}
	}
}

// interrupt wakes every task currently parked on this gate. Callers must
// hold g.mu.
func (g *Gate) interrupt() {
	close(g.wake)
	g.wake = make(chan struct{})
}

// Runtime hosts n processes as goroutine groups.
type Runtime struct {
	n        int
	gates    []*Gate
	stopped  atomic.Bool
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu  sync.Mutex
	err error
}

var _ prim.Spawner = (*Runtime)(nil)

// New creates a runtime for n processes, all with the given default
// profile (nil means Steady(0)). Use SetProfile to differentiate before
// spawning.
func New(n int, def Profile) *Runtime {
	r := &Runtime{n: n, gates: make([]*Gate, n), stopCh: make(chan struct{})}
	for p := 0; p < n; p++ {
		g := &Gate{profile: def, stopped: &r.stopped, stopCh: r.stopCh, wake: make(chan struct{})}
		g.zero.Store(def == nil)
		r.gates[p] = g
	}
	return r
}

// N returns the number of processes.
func (r *Runtime) N() int { return r.n }

// SetProfile replaces process p's pacing profile (nil means no delay). It
// may be called while tasks are running (e.g. to degrade or heal a process
// mid-run); tasks parked inside a gap wake immediately and re-draw their
// delay from the new profile.
func (r *Runtime) SetProfile(p int, prof Profile) {
	g := r.gates[p]
	g.mu.Lock()
	g.profile = prof
	g.zero.Store(prof == nil)
	g.interrupt()
	g.mu.Unlock()
}

// Crash crashes process p: its tasks exit at their next step, and tasks
// parked inside a gap exit now instead of sleeping out the remainder.
func (r *Runtime) Crash(p int) {
	g := r.gates[p]
	g.crashed.Store(true)
	g.mu.Lock()
	g.interrupt()
	g.mu.Unlock()
}

// proc implements prim.Proc for one task of one process.
type proc struct {
	id   int
	gate *Gate
}

func (p proc) ID() int { return p.id }
func (p proc) Step()   { p.gate.pace() }

// Spawn starts a task on process pr. It implements prim.Spawner.
func (r *Runtime) Spawn(pr int, name string, fn func(p prim.Proc)) {
	if pr < 0 || pr >= r.n {
		panic(fmt.Sprintf("rt: Spawn: process %d out of range [0,%d)", pr, r.n))
	}
	r.wg.Add(1)
	gate := r.gates[pr]
	go func() {
		defer r.wg.Done()
		defer func() {
			if rec := recover(); rec != nil && !prim.RecoverTaskExit(rec) {
				r.mu.Lock()
				if r.err == nil {
					r.err = fmt.Errorf("rt: process %d task %q panicked: %v", pr, name, rec)
				}
				r.mu.Unlock()
			}
		}()
		fn(proc{id: pr, gate: gate})
	}()
}

// Stop asks every task to exit at its next step (interrupting any
// in-progress gap sleep) and waits for them. It returns the first task
// panic, if any. Stop is idempotent: a second call only re-reads the
// error.
func (r *Runtime) Stop() error {
	r.stopOnce.Do(func() {
		r.stopped.Store(true)
		close(r.stopCh)
	})
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Stopping returns a channel closed when Stop is first called. Service
// code whose tasks block on their own channels (rather than in Step)
// selects on it to exit promptly.
func (r *Runtime) Stopping() <-chan struct{} { return r.stopCh }

// StepOf returns how many steps process p has taken — a rough liveness
// indicator for demos.
func (r *Runtime) StepOf(p int) int64 { return r.gates[p].step.Load() }

// ProcStats is a live snapshot of one process's pacing telemetry.
type ProcStats struct {
	// Steps is the number of steps the process has taken.
	Steps int64
	// MaxGap is the largest wall-clock gap observed between two
	// consecutive steps; AvgGap is an EWMA (α=1/16) of the same series.
	MaxGap, AvgGap time.Duration
	// SinceLastStep is the time elapsed since the latest step (0 if the
	// process has not stepped yet) — a growing value flags a process that
	// is currently inside a gap.
	SinceLastStep time.Duration
	// Crashed reports whether the process was crashed.
	Crashed bool
}

// ProcStats returns process p's step-gap telemetry. Safe to call from any
// goroutine while the runtime runs.
func (r *Runtime) ProcStats(p int) ProcStats {
	g := r.gates[p]
	s := ProcStats{
		Steps:   g.step.Load(),
		MaxGap:  time.Duration(g.maxGapNS.Load()),
		AvgGap:  time.Duration(g.ewmaGapNS.Load()),
		Crashed: g.crashed.Load(),
	}
	if last := g.lastStepNS.Load(); last > 0 {
		if d := time.Now().UnixNano() - last; d > 0 {
			s.SinceLastStep = time.Duration(d)
		}
	}
	return s
}
