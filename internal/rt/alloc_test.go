package rt_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"tbwf/internal/deploy"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/rt"
)

// TestInvokePathZeroAlloc pins the headline property of the zero-alloc
// campaign: once pools are warm and the QA slot window has reached steady
// state, a direct Stack invocation on the rt substrate allocates no heap
// objects amortized — not in the client, not in the QA log (slots recycle
// through the store's free list), not in the typed rt registers, and not
// in the Ω∆ elector tasks running alongside. testing.AllocsPerRun
// measures process-global mallocs, so the elector's steady-state churn
// and the second client running concurrently are included in the budget,
// making this an end-to-end claim about the whole stack.
//
// The second client must keep invoking during the measurement: slot
// recycling is bounded by the laggiest handle's replay position, so an
// idle process would pin the reclaim floor and every measured op would
// construct a fresh slot of registers.
func TestInvokePathZeroAlloc(t *testing.T) {
	r := rt.New(2, nil)
	st, err := deploy.Build[int64, objtype.CounterOp, int64](r, objtype.Counter{}, deploy.BuildConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var stop atomic.Bool
	r.Spawn(1, "peer", func(pp prim.Proc) {
		for !stop.Load() {
			st.Clients[1].Invoke(pp, objtype.CounterOp{Delta: 1})
		}
	})
	res := make(chan float64, 1)
	r.Spawn(0, "client", func(pp prim.Proc) {
		c := st.Clients[0]
		// Warm-up: fill the timer/slot/pending pools, let the elector
		// settle, and let the slot store discover it can recycle.
		for i := 0; i < 400; i++ {
			c.Invoke(pp, objtype.CounterOp{Delta: 1})
		}
		res <- testing.AllocsPerRun(1500, func() {
			c.Invoke(pp, objtype.CounterOp{Delta: 1})
		})
	})
	got := <-res
	stop.Store(true)
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	t.Logf("steady-state allocs/op = %v (slots materialized=%d, freshly constructed=%d)",
		got, st.Object.Slots(), st.Object.SlotsAllocated())
	// Amortized zero: allow the stray allocation a GC cycle or a rare
	// elector transition may cost across the 1500 measured ops.
	if got > 0.05 {
		t.Fatalf("steady-state invoke path allocates %.3f objects/op, want amortized 0", got)
	}
}

// TestInvokePathRecyclingSoakRace hammers one stack from every process
// concurrently (run it with -race) and then checks that the QA slot store
// recycled: the slots freshly constructed must stay well below the log
// length. Without recycling every decided operation permanently retains a
// slot of 2n+1 registers and the two counts grow together.
func TestInvokePathRecyclingSoakRace(t *testing.T) {
	const n, opsPer = 3, 200
	r := rt.New(n, nil)
	st, err := deploy.Build[int64, objtype.CounterOp, int64](r, objtype.Counter{}, deploy.BuildConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		r.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
			}
		})
	}
	wg.Wait()
	var total int64
	for p := 0; p < n; p++ {
		total += st.Clients[p].Completed()
	}
	if total != n*opsPer {
		t.Fatalf("completed %d ops, want %d", total, n*opsPer)
	}
	slots, fresh := st.Object.Slots(), st.Object.SlotsAllocated()
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	t.Logf("ops = %d, log length = %d, slots freshly constructed = %d", total, slots, fresh)
	if slots < total {
		t.Fatalf("log length %d below completed ops %d", slots, total)
	}
	if fresh >= slots/2 {
		t.Fatalf("%d of %d slots freshly constructed — recycling is not happening", fresh, slots)
	}
}
