package rt

import "tbwf/internal/prim"

// The runtime is a full prim.Substrate: together with the simulation
// kernel's adapter (register.Substrate / deploy.Sim) this lets the single
// composition root in internal/deploy wire the paper's stacks — including
// the abortable-register Ω∆ of Theorem 15 — on live goroutines.
var _ prim.Substrate = (*Runtime)(nil)

// SubstrateName identifies the substrate for telemetry.
func (r *Runtime) SubstrateName() string { return "rt" }

// NewRegisterAny creates a named atomic register. Deployment code goes
// through the typed adapters (prim.NewRegister, register.SubstrateAtomic).
func (r *Runtime) NewRegisterAny(name string, init any) prim.Register[any] {
	return NewNamedAtomic(name, init)
}

// NewAbortableAny creates a named abortable register honoring the shared
// option vocabulary (abort/effect policies; roles are recorded, not
// enforced).
func (r *Runtime) NewAbortableAny(name string, init any, opts ...prim.AbOption) prim.AbortableRegister[any] {
	return NewNamedAbortable(name, init, opts...)
}
