package explore

import (
	"encoding/json"
	"fmt"
)

// ArtifactVersion is bumped when the artifact encoding changes shape.
const ArtifactVersion = 1

// Artifact is the self-contained JSON record of one failing run: the plan
// pinned to the executed schedule and policy tape, plus what the run
// produced. Replaying the plan reproduces the verdicts and the trace hash
// byte-exactly (see the package determinism contract).
type Artifact struct {
	Version int `json:"version"`
	// Plan is the pinned plan: Prefix holds the full executed schedule and
	// Tape the full policy decision record.
	Plan Plan `json:"plan"`
	// Verdicts are the oracle verdicts the run produced.
	Verdicts []Verdict `json:"verdicts"`
	// TraceHash is the run's execution fingerprint.
	TraceHash string `json:"trace_hash"`
	// Steps is the number of steps the run actually executed.
	Steps int64 `json:"steps"`
	// Err is the kernel error (task panic with stack), if any.
	Err string `json:"err,omitempty"`
	// Note records provenance ("found by fuzzing", shrink statistics, …).
	Note string `json:"note,omitempty"`
}

// NewArtifact pins a plan to its outcome: the executed schedule becomes the
// plan's prefix and the recorded policy tape its tape, so the artifact
// replays without consulting the strategy generator or fresh policy draws.
// The plan's budget is deliberately NOT trimmed to the executed step count:
// a run that died in a task panic aborted *mid-step*, and replaying with a
// budget of exactly the recorded steps would end cleanly one step short of
// the panic.
func NewArtifact(p Plan, o *Outcome) *Artifact {
	p.Prefix = append([]int32(nil), o.Schedule...)
	p.Tape = o.Tape
	return &Artifact{
		Version:   ArtifactVersion,
		Plan:      p,
		Verdicts:  append([]Verdict(nil), o.Verdicts...),
		TraceHash: o.TraceHash,
		Steps:     o.Steps,
		Err:       o.Err,
	}
}

// Encode renders the artifact as indented JSON with a trailing newline.
func (a *Artifact) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("explore: encode artifact: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeArtifact parses an artifact and validates its version.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("explore: decode artifact: %w", err)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("explore: artifact version %d, this build reads %d", a.Version, ArtifactVersion)
	}
	if a.Plan.Target == "" {
		return nil, fmt.Errorf("explore: artifact has no target")
	}
	return &a, nil
}

// ReplayResult reports how a replayed run compared to its artifact.
type ReplayResult struct {
	// Outcome is the fresh run's outcome.
	Outcome *Outcome
	// HashMatch reports whether the trace hash matches the artifact's.
	HashMatch bool
	// VerdictsMatch reports whether the verdict list is identical.
	VerdictsMatch bool
}

// Exact reports a byte-exact reproduction: same trace, same verdicts.
func (r *ReplayResult) Exact() bool { return r.HashMatch && r.VerdictsMatch }

// Replay re-executes the artifact's plan and compares the outcome against
// the stored record.
func Replay(a *Artifact) (*ReplayResult, error) {
	out, err := SafeExecute(a.Plan)
	if err != nil {
		return nil, err
	}
	return &ReplayResult{
		Outcome:       out,
		HashMatch:     out.TraceHash == a.TraceHash,
		VerdictsMatch: verdictsEqual(out.Verdicts, a.Verdicts),
	}, nil
}

func verdictsEqual(a, b []Verdict) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
