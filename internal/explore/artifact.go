package explore

import (
	"encoding/json"
	"fmt"
)

// ArtifactVersion is bumped when the artifact encoding changes shape.
// History: v1 — original record; v2 — plans may carry a DLS adversary
// policy (Plan.DLS) and outcomes a state signature, so v1 readers would
// silently replay a dls artifact under the wrong schedule.
const ArtifactVersion = 2

// Artifact is the self-contained JSON record of one failing run: the plan
// pinned to the executed schedule and policy tape, plus what the run
// produced. Replaying the plan reproduces the verdicts and the trace hash
// byte-exactly (see the package determinism contract).
type Artifact struct {
	Version int `json:"version"`
	// Plan is the pinned plan: Prefix holds the full executed schedule and
	// Tape the full policy decision record.
	Plan Plan `json:"plan"`
	// Verdicts are the oracle verdicts the run produced.
	Verdicts []Verdict `json:"verdicts"`
	// TraceHash is the run's execution fingerprint.
	TraceHash string `json:"trace_hash"`
	// Steps is the number of steps the run actually executed.
	Steps int64 `json:"steps"`
	// Err is the kernel error (task panic with stack), if any.
	Err string `json:"err,omitempty"`
	// Note records provenance ("found by fuzzing", shrink statistics, …).
	Note string `json:"note,omitempty"`
}

// NewArtifact pins a plan to its outcome: the executed schedule becomes the
// plan's prefix and the recorded policy tape its tape, so the artifact
// replays without consulting the strategy generator or fresh policy draws.
// The plan's budget is deliberately NOT trimmed to the executed step count:
// a run that died in a task panic aborted *mid-step*, and replaying with a
// budget of exactly the recorded steps would end cleanly one step short of
// the panic.
func NewArtifact(p Plan, o *Outcome) *Artifact {
	p.Prefix = append([]int32(nil), o.Schedule...)
	p.Tape = o.Tape
	return &Artifact{
		Version:   ArtifactVersion,
		Plan:      p,
		Verdicts:  append([]Verdict(nil), o.Verdicts...),
		TraceHash: o.TraceHash,
		Steps:     o.Steps,
		Err:       o.Err,
	}
}

// FirstFailingVerdict renders the artifact's first failing verdict, or ""
// when every recorded verdict passed.
func (a *Artifact) FirstFailingVerdict() string {
	for _, v := range a.Verdicts {
		if !v.OK {
			return v.String()
		}
	}
	return ""
}

// Encode renders the artifact as indented JSON with a trailing newline.
func (a *Artifact) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("explore: encode artifact: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeArtifact parses an artifact and validates its version. The version
// is probed *before* the full decode: a future-versioned artifact may have
// fields this build's Plan cannot even unmarshal, and the error the user
// needs is "expected version 2, found 3", not a decode panic deep in a
// field that did not exist yet.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var probe struct {
		Version *int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("explore: decode artifact: %w", err)
	}
	if probe.Version == nil {
		return nil, fmt.Errorf("explore: not an artifact: no version field (expected version %d)", ArtifactVersion)
	}
	if *probe.Version != ArtifactVersion {
		return nil, fmt.Errorf("explore: artifact version mismatch: expected %d, found %d", ArtifactVersion, *probe.Version)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("explore: decode artifact: %w", err)
	}
	if a.Plan.Target == "" {
		return nil, fmt.Errorf("explore: artifact has no target")
	}
	return &a, nil
}

// ReplayResult reports how a replayed run compared to its artifact.
type ReplayResult struct {
	// Outcome is the fresh run's outcome.
	Outcome *Outcome
	// HashMatch reports whether the trace hash matches the artifact's.
	HashMatch bool
	// VerdictsMatch reports whether the verdict list is identical.
	VerdictsMatch bool
}

// Exact reports a byte-exact reproduction: same trace, same verdicts.
func (r *ReplayResult) Exact() bool { return r.HashMatch && r.VerdictsMatch }

// Replay re-executes the artifact's plan and compares the outcome against
// the stored record.
func Replay(a *Artifact) (*ReplayResult, error) {
	out, err := SafeExecute(a.Plan)
	if err != nil {
		return nil, err
	}
	return &ReplayResult{
		Outcome:       out,
		HashMatch:     out.TraceHash == a.TraceHash,
		VerdictsMatch: verdictsEqual(out.Verdicts, a.Verdicts),
	}, nil
}

func verdictsEqual(a, b []Verdict) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
