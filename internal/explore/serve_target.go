package explore

import (
	"fmt"
	"time"

	"tbwf/internal/deploy"
	"tbwf/internal/lincheck"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/serve"
	"tbwf/internal/sim"
)

// The serve/* targets fuzz the *service layer*, not just the TBWF stack:
// each replica runs the real internal/serve backend — bounded ring queue,
// backpressure, one worker task per replica draining the queue through the
// process's TBWF client — deployed on the simulation kernel through the
// same composition root (deploy.Build) the live HTTP service uses. A
// seed-derived load script per replica submits wire-encoded operations,
// retries through ErrQueueFull, and polls completions cooperatively, so
// the fuzzer explores end-to-end service histories: queueing delays,
// backpressure rejections, and TBWF client scheduling all interleave under
// the plan's schedule, and every run replays byte-exactly.
const (
	// serveOpsPerProc caps the load script (the exact count is
	// seed-derived in [2, serveOpsPerProc]).
	serveOpsPerProc = 4
	// serveQueueDepth keeps the ring tiny so backpressure is reachable.
	serveQueueDepth = 2
	// serveMinSteps is the budget below which the stack plus queueing
	// cannot be expected to drain the whole load (the oracles go vacuous,
	// they do not fail).
	serveMinSteps = 400_000
)

// serveTargets returns the service-level registry entries.
func serveTargets() []Target {
	return []Target{
		{
			Name:      "serve/counter",
			Desc:      "sim-deployed service backend (queue+backpressure+TBWF counter); FIFO, accounting and lincheck oracles",
			Oracles:   []string{"serve-fifo", "serve-accounting", "serve-lincheck"},
			N:         3,
			Steps:     800_000,
			NoCrashes: true, // the oracles need every accepted op to settle
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildServe(k, env, "counter")
			},
		},
		{
			Name:      "serve/register",
			Desc:      "sim-deployed service backend over the register object (read/write/cas wire ops); FIFO, accounting and lincheck oracles",
			Oracles:   []string{"serve-fifo", "serve-accounting", "serve-lincheck"},
			N:         3,
			Steps:     800_000,
			NoCrashes: true,
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildServe(k, env, "register")
			},
		},
	}
}

// serveScript is one replica's seed-derived load: wire ops plus their
// typed counterparts for the linearizability oracle (register target).
type serveScript struct {
	wire  []serve.WireOp
	typed []objtype.RegOp
}

func makeServeScript(env *Env, object string, p int) serveScript {
	var s serveScript
	ops := 2 + env.Rand().Intn(serveOpsPerProc-1)
	for i := 0; i < ops; i++ {
		switch object {
		case "counter":
			s.wire = append(s.wire, serve.WireOp{Kind: "add", Delta: 1 + env.Rand().Int63n(9)})
		case "register":
			v := int64(100*p + i)
			switch env.Rand().Intn(3) {
			case 0:
				s.wire = append(s.wire, serve.WireOp{Kind: "write", Value: v})
				s.typed = append(s.typed, objtype.RegOp{Kind: objtype.RegWrite, New: v})
			case 1:
				s.wire = append(s.wire, serve.WireOp{Kind: "read"})
				s.typed = append(s.typed, objtype.RegOp{Kind: objtype.RegRead})
			default:
				old := env.Rand().Int63n(4) * 100
				s.wire = append(s.wire, serve.WireOp{Kind: "cas", Old: old, New: v})
				s.typed = append(s.typed, objtype.RegOp{Kind: objtype.RegCAS, Old: old, New: v})
			}
		}
	}
	return s
}

// buildServe deploys the service backend on the kernel, spawns one load
// task per replica, and returns a check with three oracles: per-replica
// FIFO (completion order is a prefix of accept order), accounting
// (client-completed counts equal served counts; effected ops fit the log),
// and linearizability of the observed wire history.
func buildServe(k *sim.Kernel, env *Env, object string) (Check, error) {
	n := k.N()
	sub := deploy.Sim(k)

	// Per-replica accounting. Everything below is written only from kernel
	// tasks (the Served hook fires inside a worker task), and the kernel
	// runs one task at a time, so plain slices are safe.
	acceptOrder := make([][]int64, n) // tag sequence in queue-accept order
	serveOrder := make([][]int64, n)  // tag sequence in completion order
	rejects := make([]int64, n)
	loadsDone := 0
	var seq int64

	backend, err := serve.NewBackend(sub, serve.BackendConfig{
		Object:     object,
		QueueDepth: serveQueueDepth,
		Build: deploy.BuildConfig{
			RegisterOptions: tapedRegisterOptions(env),
		},
	}, serve.Hooks{
		Served: func(p int, pd *serve.Pending, _ time.Duration) {
			serveOrder[p] = append(serveOrder[p], pd.Tag.(int64))
		},
		Rejected: func(p int) { rejects[p]++ },
	})
	if err != nil {
		return nil, err
	}
	backend.Start()

	scripts := make([]serveScript, n)
	for p := range scripts {
		scripts[p] = makeServeScript(env, object, p)
	}

	var counterHist []lincheck.Op[objtype.CounterOp, int64]
	var registerHist []lincheck.Op[objtype.RegOp, objtype.RegResp]

	for p := 0; p < n; p++ {
		p := p
		script := scripts[p]
		k.Spawn(p, fmt.Sprintf("load[%d]", p), func(pp prim.Proc) {
			for i, op := range script.wire {
				pd := serve.NewPending(op.Kind)
				for { // submit, riding out backpressure
					pd.Tag = seq
					err := backend.Submit(p, op, pd)
					if err == nil {
						acceptOrder[p] = append(acceptOrder[p], seq)
						seq++
						break
					}
					if err != serve.ErrQueueFull {
						panic(fmt.Sprintf("serve target: scripted op rejected: %v", err))
					}
					pp.Step()
				}
				invokeAt := k.Step()
				for { // poll the completion cooperatively
					res, ok := pd.Poll()
					if !ok {
						pp.Step()
						continue
					}
					switch object {
					case "counter":
						counterHist = append(counterHist, lincheck.Op[objtype.CounterOp, int64]{
							Proc:     p,
							Invoke:   invokeAt,
							Response: k.Step(),
							Arg:      objtype.CounterOp{Delta: op.Delta},
							Resp:     res.Raw.(int64),
						})
					case "register":
						registerHist = append(registerHist, lincheck.Op[objtype.RegOp, objtype.RegResp]{
							Proc:     p,
							Invoke:   invokeAt,
							Response: k.Step(),
							Arg:      script.typed[i],
							Resp:     res.Raw.(objtype.RegResp),
						})
					}
					break
				}
			}
			loadsDone++
		})
	}

	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		var vs []Verdict

		// FIFO: a replica's single worker drains its ring in accept order,
		// so the completion sequence must be a prefix of the accept
		// sequence — queueing may delay but never reorder.
		const fifoOracle = "serve-fifo"
		fifoOK := true
		for p := 0; p < n; p++ {
			if len(serveOrder[p]) > len(acceptOrder[p]) {
				vs = append(vs, failf(fifoOracle, "replica %d completed %d ops but accepted only %d",
					p, len(serveOrder[p]), len(acceptOrder[p])))
				fifoOK = false
				continue
			}
			for i, tag := range serveOrder[p] {
				if tag != acceptOrder[p][i] {
					vs = append(vs, failf(fifoOracle, "replica %d completion %d: tag %d, accept order has %d",
						p, i, tag, acceptOrder[p][i]))
					fifoOK = false
					break
				}
			}
		}
		if fifoOK {
			var total, rej int64
			for p := 0; p < n; p++ {
				total += int64(len(serveOrder[p]))
				rej += rejects[p]
			}
			vs = append(vs, okf(fifoOracle, "%d completions in accept order (%d backpressure rejections)", total, rej))
		}

		// Accounting: the worker's client completes exactly the served
		// ops (markDone, the Served hook and the done-channel send happen
		// within one scheduled step), and effected ops never exceed the
		// allocated log slots.
		const acctOracle = "serve-accounting"
		acctOK := true
		var completedTotal int64
		for p := 0; p < n; p++ {
			completed := backend.ClientStats(p).Completed
			completedTotal += completed
			if completed != int64(len(serveOrder[p])) {
				vs = append(vs, failf(acctOracle, "replica %d: client completed %d ops, hooks observed %d",
					p, completed, len(serveOrder[p])))
				acctOK = false
			}
		}
		if slots := backend.Slots(); completedTotal > slots {
			vs = append(vs, failf(acctOracle, "%d completed ops exceed %d allocated log slots", completedTotal, slots))
			acctOK = false
		}
		if acctOK {
			vs = append(vs, okf(acctOracle, "%d completions consistent across hooks, clients and log", completedTotal))
		}

		// Linearizability of the service history. The workers poll forever
		// so the run never goes idle; the gate is the load scripts having
		// finished, which means every accepted operation settled.
		const linOracle = "serve-lincheck"
		for p := 0; p < n; p++ {
			if k.Crashed(p) {
				return append(vs, vacuousf(linOracle, "process %d crashed: history may be incomplete", p))
			}
		}
		if loadsDone < n {
			if res.Steps < serveMinSteps {
				return append(vs, vacuousf(linOracle, "budget %d < %d: load did not finish (%d/%d)",
					res.Steps, serveMinSteps, loadsDone, n))
			}
			return append(vs, vacuousf(linOracle, "load did not drain (%d/%d replicas finished): history incomplete", loadsDone, n))
		}
		switch object {
		case "counter":
			if len(counterHist) == 0 {
				return append(vs, vacuousf(linOracle, "empty history"))
			}
			_, ok, err := lincheck.Check(objtype.Counter{}, counterHist, lincheck.Options[int64, int64]{})
			if err != nil {
				return append(vs, vacuousf(linOracle, "checker rejected the history: %v", err))
			}
			if !ok {
				return append(vs, failf(linOracle, "service history of %d counter ops is not linearizable", len(counterHist)))
			}
			vs = append(vs, okf(linOracle, "%d counter ops linearizable", len(counterHist)))
		case "register":
			if len(registerHist) == 0 {
				return append(vs, vacuousf(linOracle, "empty history"))
			}
			_, ok, err := lincheck.Check(objtype.Register{}, registerHist, lincheck.Options[int64, objtype.RegResp]{})
			if err != nil {
				return append(vs, vacuousf(linOracle, "checker rejected the history: %v", err))
			}
			if !ok {
				return append(vs, failf(linOracle, "service history of %d register ops is not linearizable", len(registerHist)))
			}
			vs = append(vs, okf(linOracle, "%d register ops linearizable", len(registerHist)))
		}
		return vs
	}
	return check, nil
}
