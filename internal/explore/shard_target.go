package explore

import (
	"fmt"
	"time"

	"tbwf/internal/deploy"
	"tbwf/internal/lincheck"
	"tbwf/internal/prim"
	"tbwf/internal/shard"
	"tbwf/internal/sim"
)

// The shard/* targets fuzz the sharded keyspace layer: a shard.Map over
// two TBWF stacks on the simulation kernel, with a seed-derived keyed
// load script per process submitted in bursts (so multi-op batches are
// reachable) and polled cooperatively. Three oracles judge a run:
// per-(shard,replica) FIFO, accounting (hook completions vs shard
// counters, zero residual in-flight), and per-shard linearizability of
// the keyed history against the sequential shard.KV spec. The ablated
// variant rotates each multi-op batch's responses across its ops — the
// batch-fence negative control the lincheck oracle must catch.
const (
	// shardKVShards keeps two independent stacks so a run exercises
	// cross-shard routing while histories stay under the checker's cap.
	shardKVShards = 2
	// shardKVQueue / shardKVBatch keep the rings small enough that both
	// backpressure and multi-op batches are reachable.
	shardKVQueue = 4
	shardKVBatch = 4
	// shardBurstsPerProc / shardMaxBurst bound each process's script:
	// at most 3*2*4 = 24 ops total, far under the 64-op lincheck cap
	// even if one shard absorbs everything.
	shardBurstsPerProc = 2
	shardMaxBurst      = 4
	// shardMinSteps is the budget below which two stacks plus queueing
	// cannot be expected to drain the load (oracles go vacuous).
	shardMinSteps = 400_000
)

// shardTargets returns the sharded-keyspace registry entries.
func shardTargets() []Target {
	return []Target{
		{
			Name:      "shard/kv",
			Desc:      "sharded keyspace (2 TBWF stacks, batched workers); FIFO, accounting and per-shard lincheck oracles",
			Oracles:   []string{"shard-fifo", "shard-accounting", "shard-lincheck"},
			N:         3,
			Steps:     800_000,
			NoCrashes: true, // the oracles need every accepted op to settle
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildShardKV(k, env, false)
			},
		},
		{
			Name:      "shard/kv-nobatchfence",
			Desc:      "ablated: batch responses rotated across the batch's ops; per-shard lincheck must fail",
			Oracles:   []string{"shard-fifo", "shard-accounting", "shard-lincheck"},
			N:         3,
			Steps:     800_000,
			Ablated:   true,
			NoCrashes: true,
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildShardKV(k, env, true)
			},
		},
	}
}

// shardScriptOp is one scripted keyed operation.
type shardScriptOp struct {
	key string
	op  shard.Op
}

// makeShardScript derives one process's bursts. Adds carry globally
// distinct deltas and puts globally distinct values (*seq advances per
// op), so batch-response rotation is visible to the checker: two
// rotated responses can only coincide while their keys' sums collide,
// which distinct updates quickly break.
func makeShardScript(env *Env, seq *int64) [][]shardScriptOp {
	bursts := make([][]shardScriptOp, shardBurstsPerProc)
	for b := range bursts {
		n := 2 + env.Rand().Intn(shardMaxBurst-1)
		for i := 0; i < n; i++ {
			*seq++
			key := fmt.Sprintf("k%d", env.Rand().Intn(4))
			var op shard.Op
			switch r := env.Rand().Float64(); {
			case r < 0.7:
				op = shard.Op{Kind: shard.Add, Key: key, Val: *seq}
			case r < 0.8:
				op = shard.Op{Kind: shard.Get, Key: key}
			case r < 0.9:
				op = shard.Op{Kind: shard.Put, Key: key, Val: 1000 + *seq}
			default:
				op = shard.Op{Kind: shard.CAS, Key: key, Old: env.Rand().Int63n(4), Val: 2000 + *seq}
			}
			bursts[b] = append(bursts[b], shardScriptOp{key: key, op: op})
		}
	}
	return bursts
}

// buildShardKV wires the sharded keyspace on the kernel, spawns one
// burst-submitting load task per process, and returns the three-oracle
// check described in the package comment above.
func buildShardKV(k *sim.Kernel, env *Env, ablate bool) (Check, error) {
	n := k.N()

	// Per-(shard,replica) accounting. All writes happen inside kernel
	// tasks (the Served hook fires in a worker task), one task at a time,
	// so plain slices are safe.
	acceptOrder := make([][][]int64, shardKVShards)
	serveOrder := make([][][]int64, shardKVShards)
	for s := range acceptOrder {
		acceptOrder[s] = make([][]int64, n)
		serveOrder[s] = make([][]int64, n)
	}
	loadsDone := 0

	m, err := shard.New(deploy.Sim(k), shard.Config{
		Shards:           shardKVShards,
		QueueDepth:       shardKVQueue,
		MaxBatch:         shardKVBatch,
		RegisterOptions:  tapedRegisterOptions(env),
		AblateBatchFence: ablate,
		Hooks: shard.Hooks{
			Served: func(s, p int, pd *shard.Pending, batch int, _ time.Duration) {
				serveOrder[s][p] = append(serveOrder[s][p], pd.Tag.(int64))
			},
		},
	})
	if err != nil {
		return nil, err
	}
	m.Start()

	var seq int64
	scripts := make([][][]shardScriptOp, n)
	for p := range scripts {
		scripts[p] = makeShardScript(env, &seq)
	}

	histories := make([][]lincheck.Op[shard.Op, shard.Resp], shardKVShards)
	var tag int64
	for p := 0; p < n; p++ {
		p := p
		script := scripts[p]
		k.Spawn(p, fmt.Sprintf("load[%d]", p), func(pp prim.Proc) {
			pseudo := p * 100 // in-flight burst ops overlap; give each its own proc id
			for _, burst := range script {
				type inflight struct {
					pd       *shard.Pending
					op       shard.Op
					shardIdx int
					invoke   int64
				}
				var flying []inflight
				for _, so := range burst {
					pd := shard.NewPending()
					for { // submit, riding out backpressure
						pd.Tag = tag
						sh, _, err := m.Submit(so.key, p, so.op, pd)
						if err == nil {
							acceptOrder[sh][p] = append(acceptOrder[sh][p], tag)
							tag++
							flying = append(flying, inflight{pd: pd, op: so.op, shardIdx: sh, invoke: k.Step()})
							break
						}
						if err != shard.ErrQueueFull {
							panic(fmt.Sprintf("shard target: scripted op rejected: %v", err))
						}
						pp.Step()
					}
				}
				for _, f := range flying { // poll the whole burst cooperatively
					for {
						res, ok := f.pd.Poll()
						if !ok {
							pp.Step()
							continue
						}
						histories[f.shardIdx] = append(histories[f.shardIdx], lincheck.Op[shard.Op, shard.Resp]{
							Proc:     pseudo,
							Invoke:   f.invoke,
							Response: k.Step(),
							Arg:      f.op,
							Resp:     res.Resp,
						})
						pseudo++
						break
					}
				}
			}
			loadsDone++
		})
	}

	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		var vs []Verdict

		// FIFO: each (shard,replica) ring drains in accept order, and a
		// batch's responses are delivered in batch index order, so the
		// completion sequence must be a prefix of the accept sequence.
		const fifoOracle = "shard-fifo"
		fifoOK := true
		for s := 0; s < shardKVShards; s++ {
			for p := 0; p < n; p++ {
				if len(serveOrder[s][p]) > len(acceptOrder[s][p]) {
					vs = append(vs, failf(fifoOracle, "shard %d replica %d completed %d ops but accepted only %d",
						s, p, len(serveOrder[s][p]), len(acceptOrder[s][p])))
					fifoOK = false
					continue
				}
				for i, got := range serveOrder[s][p] {
					if got != acceptOrder[s][p][i] {
						vs = append(vs, failf(fifoOracle, "shard %d replica %d completion %d: tag %d, accept order has %d",
							s, p, i, got, acceptOrder[s][p][i]))
						fifoOK = false
						break
					}
				}
			}
		}
		if fifoOK {
			var total int64
			for s := 0; s < shardKVShards; s++ {
				for p := 0; p < n; p++ {
					total += int64(len(serveOrder[s][p]))
				}
			}
			vs = append(vs, okf(fifoOracle, "%d completions in per-(shard,replica) accept order", total))
		}

		// Accounting: the Map's counters must agree with the hook
		// observations, completed ops must fit each shard's log, and a
		// drained load leaves nothing in flight.
		const acctOracle = "shard-accounting"
		acctOK := true
		for s := 0; s < shardKVShards; s++ {
			var observed int64
			for p := 0; p < n; p++ {
				observed += int64(len(serveOrder[s][p]))
			}
			st := m.Stats(s)
			if st.Served != observed {
				vs = append(vs, failf(acctOracle, "shard %d: counters say %d served, hooks observed %d", s, st.Served, observed))
				acctOK = false
			}
			if st.Served > st.Accepted {
				vs = append(vs, failf(acctOracle, "shard %d: served %d > accepted %d", s, st.Served, st.Accepted))
				acctOK = false
			}
			// One batch is one stack invocation, so batches — not items —
			// occupy log slots; items beyond batches are the amortization.
			if slots := m.Slots(s); st.Batches > slots {
				vs = append(vs, failf(acctOracle, "shard %d: %d batches exceed %d allocated log slots", s, st.Batches, slots))
				acctOK = false
			}
			var invocations int64
			for _, c := range m.Completed(s) {
				invocations += c
			}
			if invocations != st.Batches {
				vs = append(vs, failf(acctOracle, "shard %d: stack completed %d invocations, counters say %d batches",
					s, invocations, st.Batches))
				acctOK = false
			}
		}
		if loadsDone == n && m.InFlight() != 0 {
			vs = append(vs, failf(acctOracle, "load drained but %d ops still counted in flight", m.InFlight()))
			acctOK = false
		}
		if acctOK {
			vs = append(vs, okf(acctOracle, "shard counters, hooks, logs and in-flight gauge agree"))
		}

		// Per-shard linearizability against the sequential KV spec. Ops on
		// different shards touch disjoint keys (routing is by key hash), so
		// checking each shard's history independently is sound and keeps
		// both searches under the 64-op cap.
		const linOracle = "shard-lincheck"
		if loadsDone < n {
			if res.Steps < shardMinSteps {
				return append(vs, vacuousf(linOracle, "budget %d < %d: load did not finish (%d/%d)",
					res.Steps, shardMinSteps, loadsDone, n))
			}
			return append(vs, vacuousf(linOracle, "load did not drain (%d/%d processes finished): history incomplete", loadsDone, n))
		}
		linTotal := 0
		for s := 0; s < shardKVShards; s++ {
			hist := histories[s]
			if len(hist) == 0 {
				continue
			}
			_, ok, err := lincheck.Check(shard.KV{}, hist, lincheck.Options[map[string]int64, shard.Resp]{})
			if err != nil {
				return append(vs, vacuousf(linOracle, "shard %d: checker rejected the history: %v", s, err))
			}
			if !ok {
				return append(vs, failf(linOracle, "shard %d: history of %d keyed ops is not linearizable", s, len(hist)))
			}
			linTotal += len(hist)
		}
		if linTotal == 0 {
			return append(vs, vacuousf(linOracle, "empty history"))
		}
		return append(vs, okf(linOracle, "%d keyed ops linearizable per shard", linTotal))
	}
	return check, nil
}
