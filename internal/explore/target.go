package explore

import (
	"fmt"
	"strings"

	"tbwf/internal/core"
	"tbwf/internal/deploy"
	"tbwf/internal/elector"
	"tbwf/internal/lincheck"
	"tbwf/internal/monitor"
	"tbwf/internal/objtype"
	"tbwf/internal/omega"
	"tbwf/internal/omegaab"
	"tbwf/internal/prim"
	"tbwf/internal/qa"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// Check judges a finished run: it is returned by a target's Build and
// called once after Kernel.Run with the run result. It must only read.
type Check func(k *sim.Kernel, res sim.RunResult) []Verdict

// Target is one fuzzable system-under-test: a wiring recipe plus its
// property oracles. The registry (Targets) covers the repo's main
// constructions and, for each design element the paper motivates, an
// *ablated* variant whose oracle is expected to fail — the campaign's
// built-in proof that the oracles have teeth.
type Target struct {
	// Name is the registry key, stored in plans and artifacts.
	Name string
	// Desc is a one-line description for -list output.
	Desc string
	// N is the kernel's process count.
	N int
	// Steps is the default step budget when the plan does not set one.
	Steps int64
	// Oracles names the property oracles the target's check emits, for
	// -list output and the frontier map's per-oracle rate rows. (The
	// kernel-level "no-panic" oracle can additionally appear on any
	// target whose run panics.)
	Oracles []string
	// Ablated marks deliberately broken variants: excluded from "all"
	// campaigns unless asked for, and *expected* to produce failures.
	Ablated bool
	// Fabric marks targets whose registers are quorum protocols over
	// net.Fabric: the DLS adversary's Δ routes into the fabric's link
	// delay distribution (the target reads env.DLS) instead of the
	// kernel's effect-delay hook, so the bound is charged once.
	Fabric bool
	// NoCrashes excludes the target from random crash injection (its
	// oracle's premise cannot survive a crash).
	NoCrashes bool
	// CrashProc, when >= 0, makes every generated plan crash this process
	// mid-run (for oracles *about* crash handling). -1 means none.
	CrashProc int
	// Strategies restricts plan generation to these strategies; nil means
	// all of them.
	Strategies []Strategy
	// Partitions marks net/* targets: the plan generator adds a seeded
	// majority-preserving partition/heal schedule to every plan, which the
	// target's fabric applies mid-run.
	Partitions bool
	// Avail optionally restricts per-process availability (layered over the
	// plan's schedule via sim.Restrict), for targets whose property needs a
	// structurally slow process.
	Avail func(env *Env) map[int]sim.Availability
	// Build wires the system on the kernel (registers, tasks, probes) and
	// returns the run's check. It must derive all randomness from env.
	Build func(k *sim.Kernel, env *Env) (Check, error)
}

// Oracle conditioning constants. Each is the premise under which the
// corresponding property is actually asserted; outside it the verdict is
// vacuous (see Verdict).
const (
	// qaOpsPerProc is the per-process operation count of the lincheck
	// workload (3 procs × 4 ops is far under the checker's 64-op cap).
	qaOpsPerProc = 4
	// progressThreshold classifies processes as timely for the TBWF
	// progress oracle (core.Evaluate).
	progressThreshold = 2048
	// atomicStackMinSteps / abortableStackMinSteps are the budgets below
	// which the TBWF stacks cannot be expected to have stabilized, so the
	// progress oracle stays vacuous.
	atomicStackMinSteps    = 400_000
	abortableStackMinSteps = 2_000_000
	// def5TimelyBound is the suffix bound under which the Ω∆ Definition 5
	// and churn oracles consider a process timely.
	def5TimelyBound = 64
	// churnTolerance bounds the 2nd-half leader changes at the permanent
	// candidates under candidacy churn (with self-punishment the observed
	// value is ~0–2; without it, two per churn cycle).
	churnTolerance = 8
	// churnMinSteps is the budget below which monitor timeouts have not
	// adapted yet and churn stability cannot be expected.
	churnMinSteps = 150_000
	// messengerTimelyBound / messengerMinSteps condition the delivery
	// oracle: both processes must stay timely through the run's last
	// quarter and the run must be long enough for the back-off to win.
	messengerTimelyBound = 32
	messengerMinSteps    = 50_000
)

// Targets returns the registry of fuzz targets: the stack-level entries
// below plus the service-level serve/* entries (serveTargets).
func Targets() []Target {
	ts := []Target{
		{
			Name:      "qa-counter",
			Desc:      "query-abortable counter under taped abort/effect adversaries; lincheck oracle",
			Oracles:   []string{"lincheck"},
			N:         3,
			Steps:     200_000,
			NoCrashes: true, // lincheck needs a complete history
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildQACounter(k, env, false)
			},
		},
		{
			Name:      "qa-counter-misreport",
			Desc:      "ablated: one response misreported to the checker; lincheck must fail",
			Oracles:   []string{"lincheck"},
			N:         3,
			Steps:     200_000,
			Ablated:   true,
			NoCrashes: true,
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildQACounter(k, env, true)
			},
		},
		{
			Name:      "counter-atomic",
			Desc:      "full TBWF counter stack on Ω∆-from-atomic-registers; progress + log-accounting oracles",
			Oracles:   []string{"log-accounting", "tbwf-progress"},
			N:         3,
			Steps:     600_000,
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildStack(k, env, elector.Atomic, atomicStackMinSteps)
			},
		},
		{
			Name:      "counter-abortable",
			Desc:      "full TBWF counter stack on Ω∆-from-abortable-registers (Theorem 15); progress + log-accounting oracles",
			Oracles:   []string{"log-accounting", "tbwf-progress"},
			N:         3,
			Steps:     2_500_000,
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildStack(k, env, elector.Abortable, abortableStackMinSteps)
			},
		},
		{
			Name:      "omega-registers",
			Desc:      "Ω∆ from atomic registers, all candidates; Definition 5 oracle",
			Oracles:   []string{"omega-def5"},
			N:         3,
			Steps:     400_000,
			NoCrashes: true, // a late crash legitimately destabilizes the check window
			CrashProc: -1,
			Build:     buildOmegaDef5,
		},
		{
			Name:      "omega-churn",
			Desc:      "Ω∆ under perpetual candidacy churn; leadership-stability oracle",
			Oracles:   []string{"omega-churn-stability"},
			N:         3,
			Steps:     400_000,
			CrashProc: -1,
			// The churn-stability oracle is calibrated for adversaries whose
			// timing regime is stationary: the DLS schedule rotates its
			// starvation victim every era, so monitor timeouts keep being
			// re-surprised and second-half leadership stability is not a
			// sound expectation at high phi (a premise, not a protocol bug).
			Strategies: []Strategy{StrategyWalk, StrategyPattern, StrategyPBound},
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildOmegaChurn(k, env, false)
			},
		},
		{
			Name:      "omega-churn-noselfpunish",
			Desc:      "ablated (A2): Figure 3 without self-punishment; churn steals leadership forever",
			Oracles:   []string{"omega-churn-stability"},
			N:         3,
			Steps:     400_000,
			Ablated:   true,
			CrashProc: -1,
			// The churn-stability oracle is calibrated for adversaries whose
			// timing regime is stationary: the DLS schedule rotates its
			// starvation victim every era, so monitor timeouts keep being
			// re-surprised and second-half leadership stability is not a
			// sound expectation at high phi (a premise, not a protocol bug).
			Strategies: []Strategy{StrategyWalk, StrategyPattern, StrategyPBound},
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildOmegaChurn(k, env, true)
			},
		},
		{
			Name:      "elector-atomic",
			Desc:      "bake-off: Figure 3 elector through the pluggable seam, process 0 non-candidate; Definition 5 oracle",
			Oracles:   []string{"elector-def5"},
			N:         3,
			Steps:     400_000,
			NoCrashes: true, // a late crash legitimately destabilizes the check window
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildElectorDef5(k, env, elector.Atomic)
			},
		},
		{
			Name:      "elector-abortable",
			Desc:      "bake-off: Figure 6 elector through the pluggable seam (default abort policy), process 0 non-candidate; Definition 5 oracle",
			Oracles:   []string{"elector-def5"},
			N:         3,
			Steps:     800_000,
			NoCrashes: true,
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildElectorDef5(k, env, elector.Abortable)
			},
		},
		{
			Name:      "elector-nerio",
			Desc:      "bake-off: Nerio epoch/lease elector, process 0 non-candidate; Definition 5 oracle",
			Oracles:   []string{"elector-def5"},
			N:         3,
			Steps:     400_000,
			NoCrashes: true,
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildElectorDef5(k, env, elector.Nerio)
			},
		},
		{
			Name:      "elector-nerio-nodepose",
			Desc:      "ablated: Nerio without deposition; the epoch freezes on the non-candidate and Definition 5 must fail",
			Oracles:   []string{"elector-def5"},
			N:         3,
			Steps:     400_000,
			Ablated:   true,
			NoCrashes: true,
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildElectorDef5(k, env, elector.NewNerio(elector.NerioOptions{NoDepose: true}))
			},
		},
		{
			Name:      "elector-reputation",
			Desc:      "bake-off: reputation-penalty elector, process 0 non-candidate; Definition 5 oracle",
			Oracles:   []string{"elector-def5"},
			N:         3,
			Steps:     400_000,
			NoCrashes: true,
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildElectorDef5(k, env, elector.Reputation)
			},
		},
		{
			Name:      "elector-reputation-churn",
			Desc:      "bake-off: reputation-penalty elector under perpetual candidacy churn; leadership-stability oracle",
			Oracles:   []string{"elector-churn-stability"},
			N:         3,
			Steps:     400_000,
			CrashProc: -1,
			// The churn-stability oracle is calibrated for adversaries whose
			// timing regime is stationary: the DLS schedule rotates its
			// starvation victim every era, so monitor timeouts keep being
			// re-surprised and second-half leadership stability is not a
			// sound expectation at high phi (a premise, not a protocol bug).
			Strategies: []Strategy{StrategyWalk, StrategyPattern, StrategyPBound},
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildElectorChurn(k, env, elector.Reputation)
			},
		},
		{
			Name:      "elector-reputation-nopenalty",
			Desc:      "ablated: reputation without penalties; churn steals leadership forever and the stability oracle must fail",
			Oracles:   []string{"elector-churn-stability"},
			N:         3,
			Steps:     400_000,
			Ablated:   true,
			CrashProc: -1,
			// The churn-stability oracle is calibrated for adversaries whose
			// timing regime is stationary: the DLS schedule rotates its
			// starvation victim every era, so monitor timeouts keep being
			// re-surprised and second-half leadership stability is not a
			// sound expectation at high phi (a premise, not a protocol bug).
			Strategies: []Strategy{StrategyWalk, StrategyPattern, StrategyPBound},
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildElectorChurn(k, env, elector.NewReputation(elector.ReputationOptions{NoPenalty: true}))
			},
		},
		{
			Name:      "heartbeat-dual",
			Desc:      "Figure 5 dual-register heartbeat vs a pathologically slow sender; suspicion oracle",
			Oracles:   []string{"hb-suspects-slow-sender"},
			N:         2,
			Steps:     400_000,
			CrashProc: -1,
			Avail:     slowSenderAvail,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildHeartbeat(k, env, false)
			},
		},
		{
			Name:      "heartbeat-single",
			Desc:      "ablated (A1): single-register heartbeat; aborts alone fool the receiver",
			Oracles:   []string{"hb-suspects-slow-sender"},
			N:         2,
			Steps:     400_000,
			Ablated:   true,
			CrashProc: -1,
			Avail:     slowSenderAvail,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildHeartbeat(k, env, true)
			},
		},
		{
			Name:      "messenger-backoff",
			Desc:      "Figure 4 messenger with reader back-off; delivery oracle",
			Oracles:   []string{"messenger-delivery"},
			N:         2,
			Steps:     150_000,
			NoCrashes: true, // a crashed writer never delivers, trivially
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildMessenger(k, env, false)
			},
		},
		{
			Name:      "messenger-nobackoff",
			Desc:      "ablated (A3): no reader back-off; phase-locked schedules starve delivery",
			Oracles:   []string{"messenger-delivery"},
			N:         2,
			Steps:     150_000,
			Ablated:   true,
			NoCrashes: true,
			CrashProc: -1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildMessenger(k, env, true)
			},
		},
		{
			Name:      "monitor-pair",
			Desc:      "activity monitor A(p,q) with q crashing mid-run; Definition 9 Property 5b oracle",
			Oracles:   []string{"monitor-5b"},
			N:         2,
			Steps:     150_000,
			CrashProc: 1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildMonitor(k, env, false)
			},
		},
		{
			Name:      "monitor-nogate",
			Desc:      "ablated: fault-counter gate removed; a crashed process is charged forever",
			Oracles:   []string{"monitor-5b"},
			N:         2,
			Steps:     150_000,
			Ablated:   true,
			CrashProc: 1,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildMonitor(k, env, true)
			},
		},
		{
			Name:      "selftest-panic",
			Desc:      "ablated: a task that panics at a seed-derived step; exercises the panic artifact path",
			Oracles:   []string{"selftest", "no-panic"},
			N:         1,
			Steps:     20_000,
			Ablated:   true,
			NoCrashes: true,
			CrashProc: -1,
			Build:     buildSelftestPanic,
		},
	}
	ts = append(ts, netTargets()...)
	ts = append(ts, serveTargets()...)
	ts = append(ts, shardTargets()...)
	return append(ts, frontierTargets()...)
}

// TargetNames returns the registered target names, registry order.
func TargetNames() []string {
	ts := Targets()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

// TargetByName resolves a registry entry.
func TargetByName(name string) (Target, error) {
	for _, t := range Targets() {
		if t.Name == name {
			return t, nil
		}
	}
	return Target{}, fmt.Errorf("explore: unknown target %q (known: %s)", name, strings.Join(TargetNames(), ", "))
}

// tapedRegisterOptions derives a taped abort/effect adversary for this run:
// the probabilities come from the target stream, every decision goes through
// the plan's tape. The abort probability is kept >= 0.5 so contention stays
// adversarial.
func tapedRegisterOptions(env *Env) []register.AbOption {
	pAbort := 0.5 + 0.5*env.Rand().Float64()
	pEffect := env.Rand().Float64()
	return []register.AbOption{
		register.WithAbortPolicy(register.TapedAbort(pAbort, env.Tape)),
		register.WithEffectPolicy(register.TapedEffect(pEffect, env.Tape)),
	}
}

// buildQACounter wires the query-abortable counter with one client task per
// process running a small settled-operation workload, and a lincheck oracle
// over the effected operations. With corrupt set, one recorded response is
// deliberately misreported — the oracle's self-test.
func buildQACounter(k *sim.Kernel, env *Env, corrupt bool) (Check, error) {
	obj, err := qa.NewSim(k, objtype.Counter{}, tapedRegisterOptions(env)...)
	if err != nil {
		return nil, err
	}
	n := k.N()
	var history []lincheck.Op[objtype.CounterOp, int64]
	deltas := make([]int64, n)
	for p := range deltas {
		deltas[p] = 1 + env.Rand().Int63n(9)
	}
	for p := 0; p < n; p++ {
		p := p
		h := obj.Handle(p)
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(proc prim.Proc) {
			// The kernel runs one task at a time, so appending to the shared
			// history needs no locking.
			record := func(invokeAt int64, resp int64) {
				history = append(history, lincheck.Op[objtype.CounterOp, int64]{
					Proc:     p,
					Invoke:   invokeAt,
					Response: k.Step(),
					Arg:      objtype.CounterOp{Delta: deltas[p]},
					Resp:     resp,
				})
			}
			backoff := int64(2)
			for i := 0; i < qaOpsPerProc; i++ {
				invokeAt := k.Step()
			attempt:
				for {
					if resp, ok := h.Invoke(objtype.CounterOp{Delta: deltas[p]}); ok {
						record(invokeAt, resp)
						break
					}
					// ⊥: settle the fate before doing anything else.
					for {
						resp, out := h.Query()
						if out == qa.QueryApplied {
							record(invokeAt, resp)
							break attempt
						}
						if out == qa.QueryNotApplied {
							break
						}
						proc.Step() // query aborted; retry it after a step
					}
					// Definitely not applied: back off before re-invoking. The
					// per-process growth factors differ so phase-locked
					// contenders desynchronize; a seed that still livelocks
					// simply never goes idle and the oracle stays vacuous.
					for s := int64(0); s < backoff; s++ {
						proc.Step()
					}
					backoff = backoff*2 + int64(p) + 1
					if backoff > 4096 {
						backoff = 4096 + int64(p)
					}
				}
			}
		})
	}
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		const oracle = "lincheck"
		hist := history
		if corrupt && len(hist) > 0 {
			hist = append([]lincheck.Op[objtype.CounterOp, int64](nil), hist...)
			hist[0].Resp++ // the deliberate misreport under test
		}
		for p := 0; p < k.N(); p++ {
			if k.Crashed(p) {
				return []Verdict{vacuousf(oracle, "process %d crashed: its in-flight operation may have taken effect unrecorded", p)}
			}
		}
		if !res.Idle {
			// Soundness: an unfinished Invoke may already have taken effect;
			// checking the recorded prefix could report a false violation.
			return []Verdict{vacuousf(oracle, "run did not go idle (%d ops settled): history may be incomplete", len(hist))}
		}
		if len(hist) == 0 {
			return []Verdict{vacuousf(oracle, "no operation took effect")}
		}
		_, ok, err := lincheck.Check(objtype.Counter{}, hist, lincheck.Options[int64, int64]{})
		if err != nil {
			return []Verdict{vacuousf(oracle, "checker rejected the history: %v", err)}
		}
		if !ok {
			return []Verdict{failf(oracle, "history of %d effected ops is not linearizable", len(hist))}
		}
		return []Verdict{okf(oracle, "%d effected ops linearizable", len(hist))}
	}
	return check, nil
}

// buildStack wires the full TBWF counter stack with hammer clients and two
// oracles: TBWF progress (every timely process completes its quota) and log
// accounting (completed operations never exceed allocated log slots).
func buildStack(k *sim.Kernel, env *Env, builder elector.Builder, minSteps int64) (Check, error) {
	st, err := deploy.Build[int64, objtype.CounterOp, int64](deploy.Sim(k), objtype.Counter{}, deploy.BuildConfig{
		Elector:         builder,
		RegisterOptions: tapedRegisterOptions(env),
	})
	if err != nil {
		return nil, err
	}
	for p := 0; p < k.N(); p++ {
		p := p
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			for {
				st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
			}
		})
	}
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		completed := st.CompletedOps()
		var sum int64
		for _, c := range completed {
			sum += c
		}
		verdicts := []Verdict{}
		if slots := st.Object.Slots(); sum > slots {
			verdicts = append(verdicts, failf("log-accounting",
				"%d completed ops but only %d log slots allocated", sum, slots))
		} else {
			verdicts = append(verdicts, okf("log-accounting", "%d completed ops over %d log slots", sum, slots))
		}
		const oracle = "tbwf-progress"
		if res.Steps < minSteps {
			verdicts = append(verdicts, vacuousf(oracle,
				"budget %d below the %d the %s stack needs to stabilize", res.Steps, minSteps, st.Elector.Name()))
			return verdicts
		}
		rep := sim.Analyze(k.Trace().Schedule(), k.N())
		wanted := make([]int64, k.N())
		for p := range wanted {
			if !k.Crashed(p) {
				wanted[p] = 2
			}
		}
		rpt, err := core.Evaluate(rep, completed, wanted, progressThreshold)
		if err != nil {
			return append(verdicts, failf(oracle, "evaluate: %v", err))
		}
		if !rpt.TBWFHolds() {
			return append(verdicts, failf(oracle,
				"timely processes %v did not complete their quota; completed=%v", rpt.Violations(), completed))
		}
		done, total := rpt.TimelyCompleted()
		return append(verdicts, okf(oracle, "%d/%d timely processes completed their quota", done, total))
	}
	return check, nil
}

// buildOmegaDef5 wires Ω∆ from atomic registers with every process a
// permanent candidate and checks Definition 5 over the run's second half.
// Two premises gate the check: every process must stay suffix-timely (the
// finite spec reading presumes candidates keep taking steps), and the
// leader outputs must have stabilized before the window — Definition 5 is
// an *eventual* property and stabilization time is finite but unbounded, so
// a still-settling run proves nothing either way. What remains has teeth:
// a stable leader vector must agree on a timely, self-electing leader.
func buildOmegaDef5(k *sim.Kernel, env *Env) (Check, error) {
	sys, err := omega.BuildRegisters(k)
	if err != nil {
		return nil, err
	}
	rec := omega.NewRecorder(sys.Instances)
	obs := omega.NewObserver(sys.Instances)
	k.AfterStep(rec.Sample)
	k.AfterStep(obs.Sample)
	for _, inst := range sys.Instances {
		inst.Candidate.Set(true)
	}
	env.RecordState(func() string { return fmt.Sprint(obs.Leaders()) })
	half := env.Steps / 2
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		const oracle = "omega-def5"
		procs := allProcs(k.N())
		suffix := suffixReport(k, half)
		if !allTimely(suffix, procs, def5TimelyBound) {
			return []Verdict{vacuousf(oracle,
				"not all processes are suffix-timely within %d (bounds %v)", def5TimelyBound, suffix.Bound)}
		}
		if obs.StabilizedAt() > half {
			return []Verdict{vacuousf(oracle,
				"leader outputs still settling (last change at step %d, window from %d)", obs.StabilizedAt(), half)}
		}
		rep := sim.Analyze(k.Trace().Schedule(), k.N())
		if viols := rec.CheckDefinition5(rep, def5TimelyBound, half, k.Crashed); len(viols) > 0 {
			return []Verdict{failf(oracle, "%s", strings.Join(viols, "; "))}
		}
		return []Verdict{okf(oracle, "Definition 5 holds over the final %d steps (stabilized at %d)", half, obs.StabilizedAt())}
	}
	return check, nil
}

// buildOmegaChurn wires Ω∆ with process 0 toggling candidacy forever (the
// A2 scenario) and asserts that leadership at the two permanent candidates
// stops reacting to the churn — which needs Figure 3's self-punishment rule.
func buildOmegaChurn(k *sim.Kernel, env *Env, ablate bool) (Check, error) {
	dep, err := omega.BuildWith(k.N(), k, func(name string, init int64) prim.Register[int64] {
		return register.NewAtomic(k, name, init)
	}, omega.BuildOptions{AblateSelfPunishment: ablate})
	if err != nil {
		return nil, err
	}
	obs := omega.NewObserver(dep.Instances[1:]) // the permanent candidates
	k.AfterStep(obs.Sample)
	for _, inst := range dep.Instances {
		inst.Candidate.Set(true)
	}
	env.RecordState(func() string { return fmt.Sprint(obs.Leaders()) })
	period := env.Steps / 30
	if period < 2_000 {
		period = 2_000
	}
	half := env.Steps / 2
	var firstHalf int64
	k.AfterStep(func(step int64) {
		if step%period == 0 {
			inst := dep.Instances[0]
			inst.Candidate.Set(!inst.Candidate.Get())
		}
		if step == half {
			firstHalf = obs.Changes()
		}
	})
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		const oracle = "omega-churn-stability"
		if res.Steps < churnMinSteps {
			return []Verdict{vacuousf(oracle, "budget %d below the %d the monitors need to adapt", res.Steps, churnMinSteps)}
		}
		suffix := suffixReport(k, half)
		if !allTimely(suffix, allProcs(k.N()), def5TimelyBound) {
			return []Verdict{vacuousf(oracle,
				"not all processes are suffix-timely within %d (bounds %v)", def5TimelyBound, suffix.Bound)}
		}
		second := obs.Changes() - firstHalf
		if second > churnTolerance {
			return []Verdict{failf(oracle,
				"%d leader changes at the permanent candidates in the 2nd half (tolerance %d): churn keeps stealing leadership",
				second, churnTolerance)}
		}
		return []Verdict{okf(oracle, "%d leader changes in the 2nd half despite churn every %d steps", second, period)}
	}
	return check, nil
}

// buildElectorDef5 deploys one pluggable elector through the elector seam
// — the same Builder contract the composition root consumes — with process
// 0 a permanent *non*-candidate and the rest permanent candidates, and
// checks Definition 5 over the run's second half. This is the bake-off's
// conformance oracle: the paper's two constructions and the two imported
// competitors (nerio, reputation) all face the same check, and the ablated
// variants (NoDepose, NoPenalty) are the negative controls proving it has
// teeth. The premises mirror buildOmegaDef5: every process suffix-timely,
// leader outputs stabilized before the window.
func buildElectorDef5(k *sim.Kernel, env *Env, builder elector.Builder) (Check, error) {
	el, err := builder.Build(deploy.Sim(k), elector.Config{})
	if err != nil {
		return nil, err
	}
	insts := el.Instances()
	rec := omega.NewRecorder(insts)
	obs := omega.NewObserver(insts)
	k.AfterStep(rec.Sample)
	k.AfterStep(obs.Sample)
	for _, inst := range insts[1:] { // process 0 stays an Ncandidate
		inst.Candidate.Set(true)
	}
	env.RecordState(func() string { return fmt.Sprint(obs.Leaders()) })
	half := env.Steps / 2
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		const oracle = "elector-def5"
		suffix := suffixReport(k, half)
		if !allTimely(suffix, allProcs(k.N()), def5TimelyBound) {
			return []Verdict{vacuousf(oracle,
				"not all processes are suffix-timely within %d (bounds %v)", def5TimelyBound, suffix.Bound)}
		}
		if obs.StabilizedAt() > half {
			return []Verdict{vacuousf(oracle,
				"%s leader outputs still settling (last change at step %d, window from %d)", el.Name(), obs.StabilizedAt(), half)}
		}
		rep := sim.Analyze(k.Trace().Schedule(), k.N())
		if viols := rec.CheckDefinition5(rep, def5TimelyBound, half, k.Crashed); len(viols) > 0 {
			return []Verdict{failf(oracle, "%s: %s", el.Name(), strings.Join(viols, "; "))}
		}
		return []Verdict{okf(oracle,
			"%s satisfies Definition 5 over the final %d steps (stabilized at %d)", el.Name(), half, obs.StabilizedAt())}
	}
	return check, nil
}

// buildElectorChurn runs one pluggable elector through the A2 scenario —
// process 0 toggling candidacy forever — and asserts leadership at the two
// permanent candidates stops reacting to the churn. The sound reputation
// elector passes because its self-punishment rule prices re-entries; the
// NoPenalty ablation leaves every score at 0, so the lowest-id process
// steals leadership on every re-entry and the oracle fails.
func buildElectorChurn(k *sim.Kernel, env *Env, builder elector.Builder) (Check, error) {
	el, err := builder.Build(deploy.Sim(k), elector.Config{})
	if err != nil {
		return nil, err
	}
	insts := el.Instances()
	obs := omega.NewObserver(insts[1:]) // the permanent candidates
	k.AfterStep(obs.Sample)
	for _, inst := range insts {
		inst.Candidate.Set(true)
	}
	env.RecordState(func() string { return fmt.Sprint(obs.Leaders()) })
	period := env.Steps / 30
	if period < 2_000 {
		period = 2_000
	}
	half := env.Steps / 2
	var firstHalf int64
	k.AfterStep(func(step int64) {
		if step%period == 0 {
			inst := insts[0]
			inst.Candidate.Set(!inst.Candidate.Get())
		}
		if step == half {
			firstHalf = obs.Changes()
		}
	})
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		const oracle = "elector-churn-stability"
		if res.Steps < churnMinSteps {
			return []Verdict{vacuousf(oracle,
				"budget %d below the %d the %s elector needs to adapt", res.Steps, churnMinSteps, el.Name())}
		}
		suffix := suffixReport(k, half)
		if !allTimely(suffix, allProcs(k.N()), def5TimelyBound) {
			return []Verdict{vacuousf(oracle,
				"not all processes are suffix-timely within %d (bounds %v)", def5TimelyBound, suffix.Bound)}
		}
		second := obs.Changes() - firstHalf
		if second > churnTolerance {
			return []Verdict{failf(oracle,
				"%s: %d leader changes at the permanent candidates in the 2nd half (tolerance %d): churn keeps stealing leadership",
				el.Name(), second, churnTolerance)}
		}
		return []Verdict{okf(oracle,
			"%s: %d leader changes in the 2nd half despite churn every %d steps", el.Name(), second, period)}
	}
	return check, nil
}

// slowSenderAvail makes process 0 (the heartbeat sender) available only in
// 1-step bursts with geometrically growing gaps — correct but so slow that
// every register write spans a whole gap.
func slowSenderAvail(env *Env) map[int]sim.Availability {
	return map[int]sim.Availability{0: sim.GrowingGaps(1, 2_000, 1.3)}
}

// buildHeartbeat wires the A1 scenario: a pathologically slow sender and a
// Figure 5 receiver. The oracle asserts the receiver suspects the slow
// sender for most of the run's second half; the single-register ablation is
// fooled by aborts and fails it.
func buildHeartbeat(k *sim.Kernel, env *Env, single bool) (Check, error) {
	r1 := register.NewAbortableSWSR(k, "Hb1", int64(0), 0, 1)
	r2 := register.NewAbortableSWSR(k, "Hb2", int64(0), 0, 1)
	hb, err := omegaab.NewHeartbeat(1, 2,
		make([]prim.AbortableRegister[int64], 2), make([]prim.AbortableRegister[int64], 2),
		[]prim.AbortableRegister[int64]{r1, nil}, []prim.AbortableRegister[int64]{r2, nil})
	if err != nil {
		return nil, err
	}
	if single {
		hb.AblateSingleRegister()
	}
	k.Spawn(0, "sender", func(p prim.Proc) {
		var c int64
		for {
			c++
			r1.Write(c)
			if !single { // the naive protocol writes only one register
				r2.Write(c)
			}
		}
	})
	var active []bool
	k.Spawn(1, "receiver", func(p prim.Proc) {
		for {
			active = hb.Receive()
			p.Step()
		}
	})
	var samples, activeSamples int64
	half := env.Steps / 2
	k.AfterStep(func(step int64) {
		if step > half && active != nil {
			samples++
			if active[0] {
				activeSamples++
			}
		}
	})
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		const oracle = "hb-suspects-slow-sender"
		if k.Crashed(1) {
			return []Verdict{vacuousf(oracle, "receiver crashed: suffix samples are frozen")}
		}
		if samples == 0 {
			return []Verdict{vacuousf(oracle, "no suffix samples (receiver never ran past step %d)", half)}
		}
		frac := float64(activeSamples) / float64(samples)
		if frac > 0.5 {
			return []Verdict{failf(oracle,
				"receiver believed the slow sender timely in %.0f%% of %d suffix samples", 100*frac, samples)}
		}
		return []Verdict{okf(oracle, "sender suspected in %.0f%% of %d suffix samples", 100*(1-frac), samples)}
	}
	return check, nil
}

// buildMessenger wires the A3 scenario: a Figure 4 writer shipping a final
// value to a reader. The oracle asserts delivery whenever both processes
// stay timely to the end — which the back-off guarantees and its ablation
// loses under phase-locked (alternating) schedules.
func buildMessenger(k *sim.Kernel, env *Env, ablate bool) (Check, error) {
	reg := register.NewAbortableSWSR(k, "Msg[0,1]", 0, 0, 1)
	w, err := omegaab.NewMessenger(0, 2,
		[]prim.AbortableRegister[int]{nil, reg}, make([]prim.AbortableRegister[int], 2), 0)
	if err != nil {
		return nil, err
	}
	r, err := omegaab.NewMessenger(1, 2,
		make([]prim.AbortableRegister[int], 2), []prim.AbortableRegister[int]{reg, nil}, 0)
	if err != nil {
		return nil, err
	}
	if ablate {
		r.AblateBackoff()
	}
	k.Spawn(0, "writer", func(p prim.Proc) {
		msg := []int{0, 99}
		for {
			w.WriteMsgs(msg)
			p.Step()
		}
	})
	got := 0
	k.Spawn(1, "reader", func(p prim.Proc) {
		for {
			got = r.ReadMsgs()[0]
			p.Step()
		}
	})
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		const oracle = "messenger-delivery"
		if res.Steps < messengerMinSteps {
			return []Verdict{vacuousf(oracle, "budget %d below the %d the back-off needs to win", res.Steps, messengerMinSteps)}
		}
		suffix := suffixReport(k, env.Steps*3/4)
		if !allTimely(suffix, []int{0, 1}, messengerTimelyBound) {
			return []Verdict{vacuousf(oracle,
				"writer/reader not both suffix-timely within %d (bounds %v): delivery not promised", messengerTimelyBound, suffix.Bound)}
		}
		if got != 99 {
			return []Verdict{failf(oracle,
				"final value never delivered (reader saw %d after %d steps, %d read aborts)", got, res.Steps, reg.Stats().ReadAborts)}
		}
		return []Verdict{okf(oracle, "final value delivered (%d read aborts along the way)", reg.Stats().ReadAborts)}
	}
	return check, nil
}

// buildMonitor wires one activity monitor A(0,1) with the monitored process
// crashing mid-run (the plan generator injects the crash — CrashProc) and
// checks Definition 9 Property 5b: a crashed process is suspected at most
// once more.
func buildMonitor(k *sim.Kernel, env *Env, ablateGate bool) (Check, error) {
	hbReg := register.NewAtomic(k, "HbRegister[1,0]", int64(-1))
	m := monitor.NewPair(0, 1, hbReg)
	if ablateGate {
		m.AblateFaultGate()
	}
	m.Monitoring.Set(true)
	m.ActiveFor.Set(true)
	k.Spawn(1, "monitored", m.MonitoredTask())
	k.Spawn(0, "monitoring", m.MonitoringTask())
	var crashSeen bool
	var cntrAtCrash int64
	k.AfterStep(func(step int64) {
		if !crashSeen && k.Crashed(1) {
			crashSeen = true
			cntrAtCrash = m.FaultCntr.Get()
		}
	})
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		const oracle = "monitor-5b"
		if !crashSeen {
			return []Verdict{vacuousf(oracle, "the monitored process never crashed in this run")}
		}
		inc := m.FaultCntr.Get() - cntrAtCrash
		if inc > 1 {
			return []Verdict{failf(oracle,
				"faultCntr grew by %d after the crash; Definition 9 Property 5b allows at most 1", inc)}
		}
		return []Verdict{okf(oracle, "faultCntr grew by %d after the crash", inc)}
	}
	return check, nil
}

// buildSelftestPanic spawns a task that panics after a seed-derived number
// of its own steps: the deliberate failure that exercises the kernel-error
// artifact path (the "no-panic" verdict, stack capture, replay of a
// panicking run).
func buildSelftestPanic(k *sim.Kernel, env *Env) (Check, error) {
	activate := 200 + env.Rand().Int63n(800)
	k.Spawn(0, "bomb", func(p prim.Proc) {
		for i := int64(0); ; i++ {
			if i == activate {
				panic(fmt.Sprintf("selftest bomb after %d steps", activate))
			}
			p.Step()
		}
	})
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		const oracle = "selftest"
		// The fuse counts the task's own steps, which lag the kernel's step
		// counter by spawn overhead; the slack keeps budget-boundary runs
		// vacuous instead of misreported.
		if res.Steps < activate+16 {
			return []Verdict{vacuousf(oracle, "budget %d at or below the bomb's %d-step fuse", res.Steps, activate)}
		}
		// Reaching here means the kernel ran well past the fuse without the
		// panic surfacing — a determinism bug worth failing loudly on.
		return []Verdict{failf(oracle, "the bomb should have fired at step %d but the run finished cleanly", activate)}
	}
	return check, nil
}

// allProcs returns [0, n).
func allProcs(n int) []int {
	out := make([]int, n)
	for p := range out {
		out[p] = p
	}
	return out
}
