package explore

import (
	"fmt"
	"strings"

	"tbwf/internal/exp"
)

// Config parameterizes a fuzz campaign.
type Config struct {
	// Targets are the fuzz targets to sweep (e.g. Targets(), or a subset).
	Targets []Target
	// Seeds is the number of seeds per target (default 16).
	Seeds int
	// BaseSeed offsets the seed range: target runs use seeds
	// BaseSeed, BaseSeed+1, …, BaseSeed+Seeds-1.
	BaseSeed int64
	// Budget overrides every target's default step budget when positive.
	Budget int64
	// Parallel is the worker-pool size (<= 0: one worker per CPU).
	Parallel int
	// Shrink minimizes every failure artifact after the sweep.
	Shrink bool
	// ShrinkAttempts caps re-executions per shrink (<= 0: default).
	ShrinkAttempts int
}

// Finding is one failing run of a campaign.
type Finding struct {
	// Target and Seed locate the run.
	Target string
	Seed   int64
	// Artifact is the pinned, replayable failure record.
	Artifact *Artifact
	// Shrunk is the minimized artifact (when Config.Shrink was set and the
	// reduction succeeded).
	Shrunk *Artifact
	// ShrinkStats describes the reduction (nil when not shrunk).
	ShrinkStats *ShrinkStats
}

// TargetSummary aggregates one target's runs.
type TargetSummary struct {
	Target string
	// Runs, Failures, Vacuous count total runs, failing runs, and passing
	// runs in which at least one oracle was vacuous (premise not met).
	Runs, Failures, Vacuous int
}

// Summary is a campaign's result.
type Summary struct {
	Runs, Failures int
	PerTarget      []TargetSummary
	Findings       []Finding
	// Coverage counts the distinct behaviors the campaign reached (blind
	// campaigns report it too, as the baseline the guided loop is compared
	// against; Corpus/Mutants stay zero here).
	Coverage Coverage
	// Errors are infrastructure errors (a run that could not execute at
	// all), distinct from oracle failures.
	Errors []string
}

// Fuzz sweeps Seeds plans per target across the worker pool and collects
// every failure as a pinned artifact. Results are deterministic in
// (Targets, Seeds, BaseSeed, Budget) and independent of Parallel.
func Fuzz(cfg Config) (*Summary, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("explore: no targets")
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 16
	}

	type unit struct {
		target Target
		seed   int64
	}
	var units []unit
	for _, tgt := range cfg.Targets {
		for j := 0; j < cfg.Seeds; j++ {
			units = append(units, unit{target: tgt, seed: cfg.BaseSeed + int64(j)})
		}
	}

	type result struct {
		finding   *Finding
		vacuous   bool
		hash, sig string
		err       error
	}
	results := make([]result, len(units))
	exp.ForEach(cfg.Parallel, len(units), func(i int) {
		u := units[i]
		plan := NewPlan(u.target, u.seed, cfg.Budget)
		out, err := SafeExecute(plan)
		if err != nil {
			results[i].err = fmt.Errorf("%s seed %d: %w", u.target.Name, u.seed, err)
			return
		}
		results[i].hash, results[i].sig = out.TraceHash, out.StateSig
		if out.Failed() {
			results[i].finding = &Finding{
				Target:   u.target.Name,
				Seed:     u.seed,
				Artifact: NewArtifact(plan, out),
			}
			return
		}
		for _, v := range out.Verdicts {
			if strings.HasPrefix(v.Detail, "vacuous:") {
				results[i].vacuous = true
				break
			}
		}
	})

	sum := &Summary{}
	per := make(map[string]*TargetSummary)
	for _, tgt := range cfg.Targets {
		ts := &TargetSummary{Target: tgt.Name}
		per[tgt.Name] = ts
		sum.PerTarget = append(sum.PerTarget, *ts)
	}
	hashes, sigs := map[string]bool{}, map[string]bool{}
	for i, r := range results {
		ts := per[units[i].target.Name]
		ts.Runs++
		sum.Runs++
		if r.err == nil {
			hashes[r.hash], sigs[r.sig] = true, true
		}
		switch {
		case r.err != nil:
			sum.Errors = append(sum.Errors, r.err.Error())
		case r.finding != nil:
			ts.Failures++
			sum.Failures++
			sum.Findings = append(sum.Findings, *r.finding)
		case r.vacuous:
			ts.Vacuous++
		}
	}
	sum.Coverage.TraceHashes = len(hashes)
	sum.Coverage.StateSigs = len(sigs)
	for i := range sum.PerTarget {
		sum.PerTarget[i] = *per[sum.PerTarget[i].Target]
	}

	if cfg.Shrink && len(sum.Findings) > 0 {
		exp.ForEach(cfg.Parallel, len(sum.Findings), func(i int) {
			f := &sum.Findings[i]
			shrunk, stats, err := Shrink(f.Artifact, cfg.ShrinkAttempts)
			if err != nil {
				return // keep the unshrunk artifact; the failure still stands
			}
			f.Shrunk = shrunk
			f.ShrinkStats = stats
		})
	}
	return sum, nil
}
