package explore

import (
	"tbwf/internal/adversary"
	"tbwf/internal/prim"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// The frontier/* targets are purpose-built probes for the (Φ,Δ) frontier
// map: a two-process heartbeat monitor whose *only* tunable is its timeout
// policy, run exclusively under the DLS adversary. The sender bumps an
// atomic register on every step it gets; the receiver polls it and
// suspects the sender after T consecutive unchanged polls. Every suspicion
// here is false — the sender never crashes — so the oracle simply counts
// second-half suspicion onsets.
//
// Why this shape: under DLS(Φ,Δ) the gap between heartbeat arrivals at the
// receiver is bounded by the interarrival the adversary can legally
// manufacture — the sender needs 2+Δ of its own steps per write (the two
// linearization half-steps plus the effect delay) and can be frozen for up
// to Φ·n global steps between them. A timeout calibrated for one (Φ,Δ)
// point is therefore *exactly* the kind of assumption the paper's
// graceful-degradation story is about:
//
//   - monitor-adaptive (sound) doubles T on every false suspicion, the
//     EPFD-style adaptation, so its onset count is logarithmic and lands in
//     the first half at every swept cell — it passes across the whole map;
//   - monitor-fixed (ablated) pins T to Guard(Φ=1,Δ=0) = 5, the mildest
//     cell's bound, so its failure rate climbs along *both* axes;
//   - monitor-fixed-wide (ablated) pins T to Guard(Φ=4,Δ=8) = 22: the same
//     defect with the frontier pushed outward — it passes a band of mild
//     cells that monitor-fixed already fails, and still collapses at high Δ.
//
// Together they make the frontier map legible: one surface that stays
// green, two that degrade in the direction the timing parameters predict.

const (
	// frontierSteps is the budget: small enough that a full grid sweep is
	// cheap, large enough that the second-half window has hundreds of eras.
	frontierSteps = 150_000
	// frontierMinSteps is the vacuity floor — below this the adaptive
	// monitor has not finished doubling and the onset counts mean nothing.
	frontierMinSteps = 60_000
	// frontierTolerance allows the stray late onset an era switch can cause
	// even after adaptation (observed 0–1; the fixed monitors produce tens).
	frontierTolerance = 3
)

// frontierTargets returns the frontier probe registry entries.
func frontierTargets() []Target {
	mk := func(name, desc string, ablated bool, timeout int64, adaptive bool) Target {
		return Target{
			Name:       name,
			Desc:       desc,
			Oracles:    []string{"monitor-frontier"},
			N:          2,
			Steps:      frontierSteps,
			Ablated:    ablated,
			NoCrashes:  true, // every suspicion must be attributable to timing alone
			CrashProc:  -1,
			Strategies: []Strategy{StrategyDLS},
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildFrontierMonitor(k, env, timeout, adaptive)
			},
		}
	}
	return []Target{
		mk("frontier/monitor-adaptive",
			"heartbeat monitor that doubles its timeout on false suspicion; sound at every (phi,delta)",
			false, adversary.DLS{Phi: 1}.Guard(), true),
		mk("frontier/monitor-fixed",
			"ablated: timeout fixed at the phi=1,delta=0 guard; false suspicions grow along both axes",
			true, adversary.DLS{Phi: 1}.Guard(), false),
		mk("frontier/monitor-fixed-wide",
			"ablated: timeout fixed at the phi=4,delta=8 guard; frontier shifted outward, still collapses",
			true, adversary.DLS{Phi: 4, Delta: 8}.Guard(), false),
	}
}

// buildFrontierMonitor wires the two-process probe. timeout is the initial
// suspicion threshold in receiver polls; adaptive doubles it on every
// false suspicion (the sound policy), a fixed monitor keeps it forever.
func buildFrontierMonitor(k *sim.Kernel, env *Env, timeout int64, adaptive bool) (Check, error) {
	hb := register.NewAtomic(k, "Hb", int64(0))
	k.Spawn(0, "sender", func(p prim.Proc) {
		var c int64
		for {
			c++
			hb.Write(c)
		}
	})
	half := env.Steps / 2
	var (
		polls, beats   int64 // receiver polls / observed value changes
		onsets         int64 // false-suspicion onsets, second half only
		suspected      bool
		finalTimeout   = timeout
		worstUnchanged int64
	)
	k.Spawn(1, "receiver", func(p prim.Proc) {
		var last, unchanged int64
		for {
			v := hb.Read()
			polls++
			if v != last {
				last = v
				beats++
				if suspected && adaptive {
					// A heartbeat from a suspected sender proves the timeout
					// too tight for this timing regime; double it (EPFD96).
					finalTimeout *= 2
				}
				suspected = false
				unchanged = 0
				continue
			}
			unchanged++
			if unchanged > worstUnchanged {
				worstUnchanged = unchanged
			}
			if !suspected && unchanged > finalTimeout {
				suspected = true
				if k.Step() >= half {
					onsets++
				}
			}
		}
	})
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		const oracle = "monitor-frontier"
		if env.Steps < frontierMinSteps {
			return []Verdict{vacuousf(oracle,
				"budget %d below %d: adaptation window incomplete", env.Steps, frontierMinSteps)}
		}
		if k.Crashed(0) || k.Crashed(1) {
			return []Verdict{vacuousf(oracle, "a probe process crashed: onsets are not attributable to timing")}
		}
		if beats == 0 || polls == 0 {
			return []Verdict{vacuousf(oracle, "no heartbeats observed (%d polls)", polls)}
		}
		if onsets > frontierTolerance {
			return []Verdict{failf(oracle,
				"%d false-suspicion onsets in the second half (timeout %d→%d, worst unchanged run %d, %d beats/%d polls)",
				onsets, timeout, finalTimeout, worstUnchanged, beats, polls)}
		}
		return []Verdict{okf(oracle,
			"%d false-suspicion onsets ≤ tolerance %d (timeout %d→%d, worst unchanged run %d)",
			onsets, frontierTolerance, timeout, finalTimeout, worstUnchanged)}
	}
	return check, nil
}
