package explore

import (
	"math/rand"

	"tbwf/internal/adversary"
	"tbwf/internal/net"
	"tbwf/internal/sim"
)

// This file is the scheduling half of the engine: plan-driven schedules
// whose every choice is either pinned by the plan's prefix or derived
// deterministically from the seed. The kernel's schedule trace records
// what actually executed, and that record becomes the next plan's prefix —
// the recording/replay loop the artifacts are built on.

// maxPreemptions bounds the context switches a pbound schedule performs.
const maxPreemptions = 8

// planSchedule serves the plan's explicit prefix first and delegates to
// the seed-derived strategy schedule past it. Prefix holes (-1) and
// entries naming a process that is not currently schedulable fall back to
// a stateless step-indexed rotation over the alive set, so a mutated
// prefix still yields a deterministic run.
type planSchedule struct {
	prefix []int32
	base   sim.Schedule
}

func newPlanSchedule(p Plan, steps int64) *planSchedule {
	return &planSchedule{
		prefix: p.Prefix,
		base:   newStrategySchedule(p, mix(p.Seed, streamSchedule), steps),
	}
}

// Next implements sim.Schedule.
func (s *planSchedule) Next(step int64, alive []int) int {
	if step < int64(len(s.prefix)) {
		if want := int(s.prefix[step]); want >= 0 {
			for _, p := range alive {
				if p == want {
					return p
				}
			}
		}
		return alive[int(step)%len(alive)]
	}
	return s.base.Next(step, alive)
}

// newStrategySchedule builds the seeded base schedule for a plan's
// strategy. The alive-set size is discovered at the first Next call, so
// the same schedule value works for any target. Execute normalizes the
// plan before this runs, so a dls plan always carries its policy.
func newStrategySchedule(p Plan, seed, steps int64) sim.Schedule {
	switch p.Strategy {
	case StrategyPattern:
		return newPatternSchedule(seed)
	case StrategyPBound:
		return newSegmentSchedule(seed, steps)
	case StrategyDLS:
		d := adversary.DLS{Phi: 1}
		if p.DLS != nil {
			d = *p.DLS
		}
		return adversary.NewSchedule(d, seed)
	default:
		return sim.Random(seed, nil)
	}
}

// patternSchedule repeats a short seed-derived pattern over the process
// ids it sees alive. Half the time the pattern is a permutation of the
// alive set — strict alternations and rotations, the phase-locking
// adversaries — and otherwise a uniform random digit string.
type patternSchedule struct {
	rng *rand.Rand
	pat []int
	i   int
}

func newPatternSchedule(seed int64) *patternSchedule {
	return &patternSchedule{rng: rand.New(rand.NewSource(seed))}
}

// Next implements sim.Schedule.
func (s *patternSchedule) Next(step int64, alive []int) int {
	if s.pat == nil {
		if s.rng.Float64() < 0.5 {
			// A random permutation of the ids alive right now.
			s.pat = append(s.pat, alive...)
			s.rng.Shuffle(len(s.pat), func(i, j int) { s.pat[i], s.pat[j] = s.pat[j], s.pat[i] })
		} else {
			l := 2 + s.rng.Intn(4)
			for i := 0; i < l; i++ {
				s.pat = append(s.pat, alive[s.rng.Intn(len(alive))])
			}
		}
	}
	want := s.pat[s.i%len(s.pat)]
	s.i++
	return nextAliveAtOrAfter(alive, want)
}

// segmentSchedule divides the run into at most maxPreemptions+1 contiguous
// segments, each owned by one seed-chosen process: schedules with very few
// context switches, which starve everyone but the owner for long
// stretches.
type segmentSchedule struct {
	rng    *rand.Rand
	bounds []int64 // ascending segment end steps; last is the budget
	owners []int
}

func newSegmentSchedule(seed, steps int64) *segmentSchedule {
	s := &segmentSchedule{rng: rand.New(rand.NewSource(seed))}
	if steps < 1 {
		steps = 1
	}
	segments := 2 + s.rng.Intn(maxPreemptions)
	for i := 0; i < segments-1; i++ {
		s.bounds = append(s.bounds, s.rng.Int63n(steps))
	}
	s.bounds = append(s.bounds, steps)
	sortInt64s(s.bounds)
	return s
}

// Next implements sim.Schedule.
func (s *segmentSchedule) Next(step int64, alive []int) int {
	seg := 0
	for seg < len(s.bounds)-1 && step >= s.bounds[seg] {
		seg++
	}
	// Owners are drawn lazily at first use so the process-id range adapts
	// to whatever alive set the target has.
	for len(s.owners) <= seg {
		s.owners = append(s.owners, alive[s.rng.Intn(len(alive))])
	}
	return nextAliveAtOrAfter(alive, s.owners[seg])
}

// nextAliveAtOrAfter picks the smallest alive id at or after want, wrapping
// cyclically to the smallest alive id.
func nextAliveAtOrAfter(alive []int, want int) int {
	best, min := -1, alive[0]
	for _, p := range alive {
		if p < min {
			min = p
		}
		if p >= want && (best == -1 || p < best) {
			best = p
		}
	}
	if best != -1 {
		return best
	}
	return min
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// NewPlan generates a fresh exploration plan for a target from a seed:
// strategy, crash set, and (empty) tape, all derived deterministically.
// budget overrides the target's default step budget when positive.
func NewPlan(tgt Target, seed, budget int64) Plan {
	steps := budget
	if steps <= 0 {
		steps = tgt.Steps
	}
	rng := rand.New(rand.NewSource(mix(seed, streamGen)))
	strategies := tgt.Strategies
	if len(strategies) == 0 {
		strategies = []Strategy{StrategyWalk, StrategyPattern, StrategyPBound, StrategyDLS}
	}
	p := Plan{
		Target:   tgt.Name,
		Seed:     seed,
		Steps:    steps,
		Strategy: strategies[rng.Intn(len(strategies))],
	}
	if p.Strategy == StrategyDLS {
		// Pin the (Φ,Δ) point explicitly so the plan documents it (and the
		// shrinker can relax it); same conservative caps as defaultDLS.
		d := adversary.DLS{Phi: 1 + rng.Int63n(8), Delta: rng.Int63n(17)}
		p.DLS = &d
	}
	if tgt.CrashProc >= 0 {
		// The target wants this process crashed in every run (its oracle is
		// about crash handling); land the crash in the second quarter so
		// there is run left to observe.
		at := steps/4 + rng.Int63n(maxInt64(steps/4, 1))
		p.Crashes = append(p.Crashes, Crash{Proc: tgt.CrashProc, Step: at})
	}
	if !tgt.NoCrashes && rng.Float64() < 0.25 {
		p.Crashes = append(p.Crashes, Crash{Proc: rng.Intn(tgt.N), Step: rng.Int63n(steps)})
	}
	if tgt.Partitions {
		// A majority-preserving cut in the second quarter — one process is
		// isolated from the rest — healed within a quarter, so quorum
		// operations stall, retransmit, and must still linearize.
		iso := rng.Intn(tgt.N)
		rest := make([]int, 0, tgt.N-1)
		for q := 0; q < tgt.N; q++ {
			if q != iso {
				rest = append(rest, q)
			}
		}
		cut := steps/4 + rng.Int63n(maxInt64(steps/4, 1))
		heal := cut + 1 + rng.Int63n(maxInt64(steps/4, 1))
		p.Partitions = []net.PartitionEvent{
			{Step: cut, Groups: [][]int{rest, {iso}}},
			{Step: heal},
		}
	}
	return p
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
