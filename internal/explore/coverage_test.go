package explore

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"tbwf/internal/adversary"
)

// TestPlanJSONRoundTripAllStrategies: a plan for every strategy — including
// a dls plan carrying its adversary policy — survives the JSON round trip
// field-for-field, and a non-dls plan omits the policy entirely.
func TestPlanJSONRoundTripAllStrategies(t *testing.T) {
	for _, strat := range []Strategy{StrategyWalk, StrategyPattern, StrategyPBound, StrategyDLS} {
		p := Plan{
			Target:   "qa-counter",
			Seed:     42,
			Steps:    10_000,
			Strategy: strat,
			Prefix:   []int32{0, -1, 2},
			Tape:     "0110",
			Crashes:  []Crash{{Proc: 1, Step: 5_000}},
		}
		if strat == StrategyDLS {
			p.DLS = &adversary.DLS{Phi: 5, Delta: 12}
		}
		enc, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if strat != StrategyDLS && strings.Contains(string(enc), "dls") {
			t.Fatalf("%s: plan encoding mentions dls: %s", strat, enc)
		}
		var back Plan
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", strat, back, p)
		}
	}
}

// TestDLSArtifactReplaysByteExactly: a dls-strategy failure artifact
// replays to the same trace hash and verdicts through the full
// encode/decode cycle — the recording/replay contract extended to the
// fourth strategy.
func TestDLSArtifactReplaysByteExactly(t *testing.T) {
	tgt, err := TargetByName("frontier/monitor-fixed")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(tgt, 3, 80_000)
	p.Strategy = StrategyDLS
	p.DLS = &adversary.DLS{Phi: 8, Delta: 16}
	out, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Failed() {
		t.Fatalf("monitor-fixed under dls(8,16) should fail: %v", out.Verdicts)
	}
	enc, err := NewArtifact(p, out).Encode()
	if err != nil {
		t.Fatal(err)
	}
	a, err := DecodeArtifact(enc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan.DLS == nil || *a.Plan.DLS != (adversary.DLS{Phi: 8, Delta: 16}) {
		t.Fatalf("decoded artifact lost the DLS policy: %+v", a.Plan.DLS)
	}
	res, err := Replay(a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact() {
		t.Fatalf("dls replay diverged (hash %v, verdicts %v)", res.HashMatch, res.VerdictsMatch)
	}
}

// TestShrinkPreservesDLSPolicy: the shrinker's reduction moves carry the
// plan's adversary policy through unchanged, and its dedicated relaxation
// move only drops the axis the failure does not need (here Δ — the fixed
// monitor fails on the speed bound alone).
func TestShrinkPreservesDLSPolicy(t *testing.T) {
	tgt, err := TargetByName("frontier/monitor-fixed")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(tgt, 3, 80_000)
	p.Strategy = StrategyDLS
	p.DLS = &adversary.DLS{Phi: 8, Delta: 16}
	out, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Failed() {
		t.Fatalf("monitor-fixed under dls(8,16) should fail: %v", out.Verdicts)
	}
	min, stats, err := Shrink(NewArtifact(p, out), 40)
	if err != nil {
		t.Fatal(err)
	}
	if min.Plan.Strategy != StrategyDLS || min.Plan.DLS == nil {
		t.Fatalf("shrink dropped the DLS policy: strategy=%s dls=%+v", min.Plan.Strategy, min.Plan.DLS)
	}
	if min.Plan.DLS.Phi != 8 {
		t.Fatalf("shrink changed the needed speed bound: %+v (stats %s)", min.Plan.DLS, stats)
	}
	if p.DLS.Delta != 16 {
		t.Fatal("shrink mutated the input plan's policy in place")
	}
}

// TestGuidedCoverageBeatsBlind is the tentpole's acceptance assertion: at
// an equal plan budget, the coverage-guided loop reaches strictly more
// distinct state signatures than the blind sweep on the same target.
func TestGuidedCoverageBeatsBlind(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage comparison is a multi-run campaign")
	}
	tgt, err := TargetByName("qa-counter")
	if err != nil {
		t.Fatal(err)
	}
	// 144 plans sits past the blind sweep's saturation knee on this target
	// (fresh seeds keep finding new signatures up to ~100 runs; beyond it
	// the corpus-guided mutants pull ahead). Both campaigns are pure
	// functions of their configs, so the comparison is exact, not flaky.
	const plans, budget = 144, 50_000
	blind, err := Fuzz(Config{Targets: []Target{tgt}, Seeds: plans, BaseSeed: 1, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	guided, err := FuzzGuided(GuidedConfig{Target: tgt, Plans: plans, BaseSeed: 1, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if guided.Runs != blind.Runs {
		t.Fatalf("unequal budgets: guided %d runs, blind %d", guided.Runs, blind.Runs)
	}
	t.Logf("blind: %d sigs / %d hashes; guided: %d sigs / %d hashes (%d mutants, corpus %d)",
		blind.Coverage.StateSigs, blind.Coverage.TraceHashes,
		guided.Coverage.StateSigs, guided.Coverage.TraceHashes,
		guided.Coverage.Mutants, guided.Coverage.Corpus)
	if guided.Coverage.StateSigs <= blind.Coverage.StateSigs {
		t.Fatalf("guided coverage (%d state sigs) does not beat blind (%d) at equal budget of %d plans",
			guided.Coverage.StateSigs, blind.Coverage.StateSigs, plans)
	}
	if guided.Coverage.Mutants == 0 {
		t.Fatal("guided loop executed no mutants: feedback is not wired")
	}
}

// TestFuzzGuidedDeterministic: the guided loop is a pure function of its
// config, independent of the worker-pool size.
func TestFuzzGuidedDeterministic(t *testing.T) {
	tgt, err := TargetByName("qa-counter")
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel int) *GuidedResult {
		res, err := FuzzGuided(GuidedConfig{Target: tgt, Plans: 12, BaseSeed: 7, Budget: 20_000, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("guided result depends on parallelism:\n p=1: %+v\n p=4: %+v", a, b)
	}
}

// TestArtifactVersionProbe: a stale or alien document is rejected with the
// expected-vs-found message before any full decode is attempted.
func TestArtifactVersionProbe(t *testing.T) {
	if _, err := DecodeArtifact([]byte(`{"version":1,"plan":{"target":"qa-counter"}}`)); err == nil ||
		!strings.Contains(err.Error(), "expected 2, found 1") {
		t.Fatalf("v1 artifact: got %v, want expected-vs-found version error", err)
	}
	if _, err := DecodeArtifact([]byte(`{"schema":"tbwf-bench/v1"}`)); err == nil ||
		!strings.Contains(err.Error(), "no version field") {
		t.Fatalf("versionless document: got %v, want no-version error", err)
	}
}
