// Package explore is a schedule-space exploration engine over the
// simulation kernel (internal/sim): a fuzzer for the paper's quantified
// guarantees. The paper's properties — TBWF (Definition 3), Ω∆ stability
// (Definition 5), the activity-monitor contract (Definition 9), and
// linearizability of the query-abortable construction — are quantified
// over *all* schedules, crash patterns, and abort/effect adversaries, but
// hand-written tests can only pin a handful of them. This package sweeps
// that space: it generates adversarial runs from a seed, checks them with
// property oracles adapted from the repo's existing checkers, and
// condenses every failure into a small, self-contained JSON artifact that
// replays byte-exactly.
//
// Determinism contract: a run is a pure function of its Plan. The three
// sources of nondeterminism are each pinned:
//
//   - scheduling — the executed schedule is recorded by the kernel's trace
//     and stored as the plan's explicit prefix, so a replay re-issues the
//     very same process picks (holes left by the shrinker fall back to a
//     stateless step-indexed rotation);
//   - crashes — generated up front from the seed and stored explicitly;
//   - abort/effect policy coin flips — drawn through a recording tape
//     (register.Tape) whose record is stored in the plan and replayed
//     verbatim.
//
// Everything else (target wiring, workload scripts) derives
// deterministically from the seed, so Execute(plan) always produces the
// same verdicts and the same trace hash. The delta-debugging shrinker
// (Shrink) leans on exactly this property.
package explore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime/debug"
	"strings"

	"tbwf/internal/adversary"
	"tbwf/internal/exp"
	"tbwf/internal/net"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// Crash schedules one crash injection: process Proc takes no steps from
// step Step on.
type Crash struct {
	Proc int   `json:"proc"`
	Step int64 `json:"step"`
}

// Strategy selects how the generator explores the schedule space past the
// plan's explicit prefix.
type Strategy string

const (
	// StrategyWalk is a seeded uniform random walk over the alive set.
	StrategyWalk Strategy = "walk"
	// StrategyPattern repeats a short seed-derived pattern forever —
	// phase-locking adversaries (strict alternations and their relatives)
	// that random walks almost never sustain.
	StrategyPattern Strategy = "pattern"
	// StrategyPBound is a preemption-bounded schedule: the run is divided
	// into a seed-chosen number of contiguous segments (at most
	// maxPreemptions switches), each owned by one process — the classic
	// few-context-switches adversary.
	StrategyPBound Strategy = "pbound"
	// StrategyDLS is the Dwork–Lynch–Stockmeyer partial-synchrony
	// adversary: scheduling honors the plan's Φ speed bound (a rotating
	// victim is starved up to Φ·|alive| consecutive global steps, never
	// more) and register/fabric effects are delayed up to Δ steps. The
	// policy point lives in Plan.DLS; a plan with this strategy and no
	// policy gets one derived from its seed.
	StrategyDLS Strategy = "dls"
)

// Plan is the complete, self-contained description of one exploration run.
// Execute(plan) is deterministic: same plan, same run, same verdicts.
type Plan struct {
	// Target names a registered fuzz target (see Targets).
	Target string `json:"target"`
	// Seed drives every derived choice: the strategy schedule, the policy
	// tape's fresh draws, and the target's internal workload script.
	Seed int64 `json:"seed"`
	// Steps is the run's step budget.
	Steps int64 `json:"steps"`
	// Strategy picks the schedule generator used past the prefix.
	Strategy Strategy `json:"strategy"`
	// Prefix holds explicit schedule choices for steps < len(Prefix): the
	// process to schedule at each step. An entry of -1 is a hole (left by
	// the shrinker): the step falls back to a stateless rotation over the
	// alive set. A failure artifact stores the full executed schedule
	// here, which is what makes replay byte-exact.
	Prefix []int32 `json:"prefix,omitempty"`
	// Crashes is the crash set, applied via Kernel.CrashAt.
	Crashes []Crash `json:"crashes,omitempty"`
	// Tape is the recorded abort/effect policy decision record ('0'/'1'
	// per decision, in draw order), replayed verbatim before fresh seeded
	// draws take over.
	Tape string `json:"tape,omitempty"`
	// Partitions is the network partition/heal schedule for net/* targets
	// (applied by the target's fabric at the listed kernel steps); empty
	// for shared-memory targets.
	Partitions []net.PartitionEvent `json:"partitions,omitempty"`
	// DLS pins the (Φ,Δ) adversary point when Strategy is StrategyDLS:
	// Phi bounds relative process speeds, Delta bounds effect delays
	// (kernel register writes on shared-memory targets, fabric link
	// delays on net/* targets). Nil with StrategyDLS means "derive the
	// point from the seed"; ignored for the other strategies.
	DLS *adversary.DLS `json:"dls,omitempty"`
}

// Env is what a target's Build receives: the deterministic context of one
// run.
type Env struct {
	// Seed is the plan's seed.
	Seed int64
	// Steps is the run's step budget, for scaling workload scripts.
	Steps int64
	// Tape is the policy coin-flip tape; wire it into abortable registers
	// via register.TapedAbort / register.TapedEffect.
	Tape *register.Tape
	// Partitions is the plan's partition/heal schedule; net/* targets pass
	// it to their fabric.
	Partitions []net.PartitionEvent
	// DLS is the plan's normalized adversary point (nil unless the plan
	// runs the dls strategy). Targets with their own delay machinery —
	// the net/* fabrics — read Delta here and route it into their link
	// delay distributions instead of the kernel's effect-delay hook.
	DLS      *adversary.DLS
	rng      *rand.Rand
	stateFns []func() string
}

// Rand is the target-local derivation stream: deterministic in the seed
// and independent of the schedule and tape streams. Build-time draws only.
func (e *Env) Rand() *rand.Rand { return e.rng }

// RecordState registers a post-run state reporter whose string joins the
// run's coarse state signature (Outcome.StateSig) — the coverage loop's
// novelty key. Targets register domain state the generic signature cannot
// see (the leader vector, say); the fn runs after the run ends and must
// only read plain memory (Peek-style accessors, observer snapshots).
func (e *Env) RecordState(fn func() string) { e.stateFns = append(e.stateFns, fn) }

// Outcome is what one executed plan produced.
type Outcome struct {
	// Target echoes the plan's target.
	Target string `json:"target"`
	// Steps is the number of steps actually executed (less than the budget
	// when the run went idle).
	Steps int64 `json:"steps"`
	// Idle reports whether the run ended with nothing schedulable.
	Idle bool `json:"idle"`
	// Verdicts are the target's oracle verdicts, in oracle order.
	Verdicts []Verdict `json:"verdicts"`
	// TraceHash fingerprints the executed run: schedule, per-process step
	// and register-operation counters. Two runs with equal hashes took the
	// same steps in the same order and issued the same operations.
	TraceHash string `json:"trace_hash"`
	// StateSig is the coarse state signature (see coverage.go): verdict
	// statuses × per-process gap/operation buckets × target-registered
	// state (leader vector). Much coarser than TraceHash — it buckets
	// runs by *what kind of behavior* they reached, which is the
	// coverage loop's novelty key.
	StateSig string `json:"state_sig"`
	// Err is the kernel error (a task panic with its stack), if any.
	Err string `json:"err,omitempty"`

	// Schedule is the executed schedule (the recorded choice tape); kept
	// out of the JSON encoding — artifacts carry it as the plan's Prefix.
	Schedule []int32 `json:"-"`
	// Tape is the policy decision record after the run.
	Tape string `json:"-"`
	// Writes is the run's register write log (step, process, register),
	// the anchor points for the coverage loop's preemption-pinch mutation
	// — schedule tightening around linearization points.
	Writes []sim.WriteEvent `json:"-"`
}

// Failed reports whether any oracle failed.
func (o *Outcome) Failed() bool {
	for _, v := range o.Verdicts {
		if !v.OK {
			return true
		}
	}
	return false
}

// FirstFailure returns the first failing verdict, or nil.
func (o *Outcome) FirstFailure() *Verdict {
	for i := range o.Verdicts {
		if !o.Verdicts[i].OK {
			return &o.Verdicts[i]
		}
	}
	return nil
}

// Execute runs a plan to completion and returns its outcome. It is a pure
// function of the plan (see the package comment's determinism contract).
func Execute(p Plan) (*Outcome, error) {
	tgt, err := TargetByName(p.Target)
	if err != nil {
		return nil, err
	}
	steps := p.Steps
	if steps <= 0 {
		steps = tgt.Steps
	}
	// Normalize the adversary point before anything derives from the plan:
	// a dls plan without an explicit policy gets a seed-derived one, so a
	// bare {strategy: "dls"} plan is still a complete run description.
	if p.Strategy == StrategyDLS && p.DLS == nil {
		d := defaultDLS(p.Seed)
		p.DLS = &d
	}
	if p.DLS != nil {
		d := p.DLS.Normalize()
		p.DLS = &d
	}
	env := &Env{
		Seed:       p.Seed,
		Steps:      steps,
		Tape:       register.ReplayTape(mix(p.Seed, streamTape), p.Tape),
		Partitions: p.Partitions,
		rng:        rand.New(rand.NewSource(mix(p.Seed, streamTarget))),
	}
	if p.Strategy == StrategyDLS {
		env.DLS = p.DLS
	}

	base := newPlanSchedule(p, steps)
	var sched sim.Schedule = base
	if tgt.Avail != nil {
		if m := tgt.Avail(env); len(m) > 0 {
			sched = sim.Restrict(base, m)
		}
	}
	k := sim.New(tgt.N, sim.WithSchedule(sched), sim.WithWriteLog(true))
	if env.DLS != nil && env.DLS.Delta > 0 && !tgt.Fabric {
		// The Δ half of the adversary: register write effects are held in
		// flight up to Delta steps. Fabric-backed targets skip the kernel
		// hook — their registers are quorum protocols whose every message
		// already pays a fabric delay drawn from the same Δ (the target
		// wires env.DLS into its FabricConfig), and stacking both would
		// double-charge the bound.
		k.SetEffectDelay(adversary.DelayFn(env.DLS.Delta, mix(p.Seed, streamDelay)))
	}
	for _, c := range p.Crashes {
		if c.Proc >= 0 && c.Proc < tgt.N && c.Step >= 0 {
			k.CrashAt(c.Proc, c.Step)
		}
	}
	check, err := tgt.Build(k, env)
	if err != nil {
		return nil, fmt.Errorf("explore: build target %s: %w", p.Target, err)
	}
	res, runErr := k.Run(steps)
	k.Shutdown()

	out := &Outcome{
		Target:   p.Target,
		Steps:    res.Steps,
		Idle:     res.Idle,
		Schedule: append([]int32(nil), k.Trace().Schedule()...),
		Tape:     env.Tape.Bits(),
		Writes:   k.Trace().Writes(),
	}
	if runErr != nil {
		// A task panicked: the panic (with the stack the kernel captured)
		// is the finding; the target's oracles never see a finished run.
		// The verdict detail keeps only the error's first line — the stack
		// below it carries goroutine ids and addresses that vary between
		// runs, and verdicts must replay byte-exactly. The full stack stays
		// in Err.
		out.Err = runErr.Error()
		detail := out.Err
		if i := strings.IndexByte(detail, '\n'); i >= 0 {
			detail = detail[:i]
		}
		out.Verdicts = []Verdict{{Oracle: "no-panic", OK: false, Detail: detail}}
	} else {
		out.Verdicts = check(k, res)
	}
	out.TraceHash = traceHash(k)
	out.StateSig = stateSig(k, out, env.stateExtra())
	return out, nil
}

// defaultDLS derives a seed-determined (Φ,Δ) point for dls plans that do
// not pin one: Φ in [1,8], Δ in [0,16]. The caps keep every process
// comfortably inside the oracles' timeliness premises (def5TimelyBound,
// messengerTimelyBound) so sound targets stay sound at any derived point;
// the frontier mapper pins harsher points explicitly.
func defaultDLS(seed int64) adversary.DLS {
	rng := rand.New(rand.NewSource(mix(seed, streamDelay)))
	return adversary.DLS{Phi: 1 + rng.Int63n(8), Delta: rng.Int63n(17)}
}

// SafeExecute is Execute with panic isolation: a panic escaping a target's
// Build or oracle code is returned as an *exp.PanicError instead of
// tearing down the caller (the fuzz campaign runs many plans on one worker
// pool).
func SafeExecute(p Plan) (out *Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = &exp.PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	return Execute(p)
}

// Seed-stream derivation constants: each consumer of the plan's seed draws
// from its own splitmix64-derived stream so that, e.g., adding a tape draw
// cannot perturb the schedule.
const (
	streamSchedule = 0x736368656475 // "schedu"
	streamTape     = 0x74617065     // "tape"
	streamTarget   = 0x746172676574 // "target"
	streamGen      = 0x67656e       // "gen"
	streamDelay    = 0x64656c6179   // "delay"
	streamMutant   = 0x6d7574       // "mut"
)

// mix derives an independent 63-bit stream seed from (seed, stream) with a
// splitmix64 finalizer.
func mix(seed, stream int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1)
}

// traceHash fingerprints the executed run with FNV-1a over the recorded
// schedule and the per-process step/operation counters.
func traceHash(k *sim.Kernel) string {
	h := fnv.New64a()
	var buf [8]byte
	wr := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wr(int64(k.N()))
	wr(k.Step())
	var buf4 [4]byte
	for _, s := range k.Trace().Schedule() {
		binary.LittleEndian.PutUint32(buf4[:], uint32(s))
		h.Write(buf4[:])
	}
	m := k.Metrics()
	for p := 0; p < k.N(); p++ {
		wr(m.Steps[p])
		wr(m.Reads[p])
		wr(m.Writes[p])
		wr(m.ReadAborts[p])
		wr(m.WriteAborts[p])
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}
