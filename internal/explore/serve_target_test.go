package explore

import (
	"strings"
	"testing"
)

// The service-level targets obey the same determinism contract as the
// stack-level ones: a plan fully determines the run, including the load
// scripts, queue admissions, backpressure rejections, and the service
// history the oracles judge.
func TestServeTargetIsDeterministic(t *testing.T) {
	for _, target := range []string{"serve/counter", "serve/register"} {
		t.Run(target, func(t *testing.T) {
			t.Parallel()
			p := Plan{Target: target, Seed: 7, Strategy: StrategyWalk}
			a, err := Execute(p)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Execute(p)
			if err != nil {
				t.Fatal(err)
			}
			if a.TraceHash != b.TraceHash {
				t.Fatalf("trace hashes differ: %s vs %s", a.TraceHash, b.TraceHash)
			}
			if !verdictsEqual(a.Verdicts, b.Verdicts) {
				t.Fatalf("verdicts differ: %v vs %v", a.Verdicts, b.Verdicts)
			}
			if a.Tape != b.Tape {
				t.Fatalf("tapes differ (%d vs %d bits)", len(a.Tape), len(b.Tape))
			}
		})
	}
}

// A pinned replay of a serve run — executed schedule and tape stored back
// into the plan — reproduces the identical trace hash and verdicts, which
// is what makes a fuzzer artifact from a serve/* failure actionable.
func TestServeTargetPinnedReplay(t *testing.T) {
	p := Plan{Target: "serve/counter", Seed: 3, Strategy: StrategyWalk}
	orig, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	pinned := p
	pinned.Prefix = orig.Schedule
	pinned.Tape = orig.Tape
	rep, err := Execute(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceHash != orig.TraceHash {
		t.Fatalf("pinned replay hash %s, want %s", rep.TraceHash, orig.TraceHash)
	}
	if !verdictsEqual(rep.Verdicts, orig.Verdicts) {
		t.Fatalf("pinned replay verdicts %v, want %v", rep.Verdicts, orig.Verdicts)
	}
}

// Under a plain random walk with the default budget the full load drains:
// all three oracles must return non-vacuous OK verdicts (the oracles have
// to actually engage, not just never fail).
func TestServeTargetOraclesEngage(t *testing.T) {
	out, err := Execute(Plan{Target: "serve/counter", Seed: 1, Strategy: StrategyWalk})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, v := range out.Verdicts {
		if !v.OK {
			t.Fatalf("verdict failed: %+v", v)
		}
		if strings.HasPrefix(v.Detail, "vacuous:") {
			t.Fatalf("verdict vacuous: %+v", v)
		}
		seen[v.Oracle] = true
	}
	for _, oracle := range []string{"serve-fifo", "serve-accounting", "serve-lincheck"} {
		if !seen[oracle] {
			t.Errorf("oracle %s produced no verdict (got %v)", oracle, out.Verdicts)
		}
	}
}

// The serve targets ride along in "all" campaigns (they are not ablated),
// and their registry names resolve.
func TestServeTargetsRegistered(t *testing.T) {
	for _, name := range []string{"serve/counter", "serve/register"} {
		tgt, err := TargetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if tgt.Ablated {
			t.Errorf("%s must not be ablated", name)
		}
		if !strings.HasPrefix(tgt.Name, "serve/") {
			t.Errorf("unexpected name %q", tgt.Name)
		}
	}
}
