package explore

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"tbwf/internal/adversary"
	"tbwf/internal/exp"
)

// The frontier mapper sweeps targets over an explicit (Φ,Δ) grid under the
// DLS adversary and records, per cell, how each oracle fared. The output
// is the paper's graceful-degradation story as data: sound constructions
// should hold (or go vacuous) across the whole grid, while
// assumption-calibrated ablations fail at a rate that grows with the
// timing parameters — the pass/fail frontier the map renders.

// FrontierSchema identifies the frontier artifact (BENCH_frontier.json).
const FrontierSchema = "tbwf-frontier/v1"

// FrontierConfig parameterizes a frontier sweep.
type FrontierConfig struct {
	// Targets are the systems to sweep.
	Targets []Target
	// Phis and Deltas are the grid axes, ascending.
	Phis, Deltas []int64
	// Seeds is the number of runs per (target, cell); default 4.
	Seeds int
	// BaseSeed offsets the seed range (same meaning as Config.BaseSeed).
	BaseSeed int64
	// Budget overrides every target's step budget when positive.
	Budget int64
	// Parallel is the worker-pool size (<= 0: one worker per CPU).
	Parallel int
}

// FrontierDoc is the JSON artifact a sweep produces.
type FrontierDoc struct {
	Schema string  `json:"schema"`
	Phis   []int64 `json:"phis"`
	Deltas []int64 `json:"deltas"`
	Seeds  int     `json:"seeds"`
	Budget int64   `json:"budget,omitempty"`
	// Targets holds one frontier per swept target, in sweep order.
	Targets []TargetFrontier `json:"targets"`
}

// TargetFrontier is one target's pass/fail surface.
type TargetFrontier struct {
	Target  string   `json:"target"`
	Ablated bool     `json:"ablated"`
	Oracles []string `json:"oracles,omitempty"`
	// Cells is the flattened grid, Φ-major then Δ: cells[0] is the mildest
	// corner (Phis[0], Deltas[0]) and the last cell the harshest.
	Cells []FrontierCell `json:"cells"`
}

// FrontierCell aggregates the runs at one (Φ,Δ) point.
type FrontierCell struct {
	Phi   int64 `json:"phi"`
	Delta int64 `json:"delta"`
	// Runs = Fails + Passes + Vacuous (+ Errors). A run counts as vacuous
	// only when no oracle failed and at least one was vacuous.
	Runs    int `json:"runs"`
	Fails   int `json:"fails"`
	Passes  int `json:"passes"`
	Vacuous int `json:"vacuous"`
	Errors  int `json:"errors,omitempty"`
	// Oracles breaks the counts down per oracle name.
	Oracles []OracleRate `json:"oracles,omitempty"`
}

// OracleRate is one oracle's verdict counts at one cell.
type OracleRate struct {
	Oracle  string `json:"oracle"`
	Fails   int    `json:"fails"`
	Passes  int    `json:"passes"`
	Vacuous int    `json:"vacuous"`
}

// MapFrontier sweeps the grid: Seeds plans per (target, cell), every plan
// forced onto the DLS strategy with that cell's policy pinned, executed on
// the worker pool. Deterministic in the config, independent of Parallel.
func MapFrontier(cfg FrontierConfig) (*FrontierDoc, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("explore: frontier sweep needs targets")
	}
	if len(cfg.Phis) == 0 || len(cfg.Deltas) == 0 {
		return nil, fmt.Errorf("explore: frontier sweep needs both phi and delta values")
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 4
	}

	type unit struct {
		target     int // index into cfg.Targets
		cell       int // index into the target's flattened cell grid
		phi, delta int64
		seed       int64
	}
	var units []unit
	cells := len(cfg.Phis) * len(cfg.Deltas)
	for t := range cfg.Targets {
		for pi, phi := range cfg.Phis {
			for di, delta := range cfg.Deltas {
				for s := 0; s < cfg.Seeds; s++ {
					units = append(units, unit{
						target: t, cell: pi*len(cfg.Deltas) + di,
						phi: phi, delta: delta,
						seed: cfg.BaseSeed + int64(s),
					})
				}
			}
		}
	}

	outs := make([]*Outcome, len(units))
	errs := make([]error, len(units))
	exp.ForEach(cfg.Parallel, len(units), func(i int) {
		u := units[i]
		p := NewPlan(cfg.Targets[u.target], u.seed, cfg.Budget)
		// Force the cell's adversary onto the plan, whatever strategy the
		// generator drew: the cell *is* the (Φ,Δ) hypothesis under test.
		p.Strategy = StrategyDLS
		d := adversary.DLS{Phi: u.phi, Delta: u.delta}.Normalize()
		p.DLS = &d
		outs[i], errs[i] = SafeExecute(p)
	})

	doc := &FrontierDoc{
		Schema: FrontierSchema,
		Phis:   cfg.Phis, Deltas: cfg.Deltas,
		Seeds: cfg.Seeds, Budget: cfg.Budget,
	}
	for _, tgt := range cfg.Targets {
		tf := TargetFrontier{Target: tgt.Name, Ablated: tgt.Ablated, Oracles: tgt.Oracles}
		tf.Cells = make([]FrontierCell, cells)
		for pi, phi := range cfg.Phis {
			for di, delta := range cfg.Deltas {
				tf.Cells[pi*len(cfg.Deltas)+di] = FrontierCell{Phi: phi, Delta: delta}
			}
		}
		doc.Targets = append(doc.Targets, tf)
	}
	for i, u := range units {
		cell := &doc.Targets[u.target].Cells[u.cell]
		cell.Runs++
		if errs[i] != nil {
			cell.Errors++
			continue
		}
		out := outs[i]
		switch {
		case out.Failed():
			cell.Fails++
		case anyVacuous(out.Verdicts):
			cell.Vacuous++
		default:
			cell.Passes++
		}
		for _, v := range out.Verdicts {
			r := oracleRate(cell, v.Oracle)
			switch {
			case !v.OK:
				r.Fails++
			case strings.HasPrefix(v.Detail, "vacuous:"):
				r.Vacuous++
			default:
				r.Passes++
			}
		}
	}
	return doc, nil
}

func anyVacuous(vs []Verdict) bool {
	for _, v := range vs {
		if strings.HasPrefix(v.Detail, "vacuous:") {
			return true
		}
	}
	return false
}

// oracleRate finds or appends the cell's rate row for an oracle.
func oracleRate(cell *FrontierCell, oracle string) *OracleRate {
	for i := range cell.Oracles {
		if cell.Oracles[i].Oracle == oracle {
			return &cell.Oracles[i]
		}
	}
	cell.Oracles = append(cell.Oracles, OracleRate{Oracle: oracle})
	return &cell.Oracles[len(cell.Oracles)-1]
}

// Encode renders the document as indented JSON with a trailing newline.
func (d *FrontierDoc) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("explore: encode frontier: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeFrontier parses a frontier document and validates its schema.
func DecodeFrontier(data []byte) (*FrontierDoc, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("explore: decode frontier: %w", err)
	}
	if probe.Schema != FrontierSchema {
		return nil, fmt.Errorf("explore: frontier schema mismatch: expected %q, found %q", FrontierSchema, probe.Schema)
	}
	var d FrontierDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("explore: decode frontier: %w", err)
	}
	return &d, nil
}

var frontierSpecRe = regexp.MustCompile(`^(phi|delta)=(\d+(?:\.\.\d+)?(?:,\d+(?:\.\.\d+)?)*)$`)

// ParseFrontierSpec parses a grid spec like "phi=1..8,delta=0..64" or
// "phi=1,2,4,8,delta=0,8,32". Each axis takes a comma list of values
// and/or inclusive lo..hi ranges; both axes are required. Values are
// deduplicated and sorted ascending.
func ParseFrontierSpec(spec string) (phis, deltas []int64, err error) {
	// Split on the axis keys, not on commas: commas separate both list
	// elements and the two axes, so "phi=1,2,delta=3" is only parseable by
	// finding where the next key begins.
	axes := map[string][]int64{}
	rest := strings.TrimSpace(spec)
	for rest != "" {
		// The current axis runs until the next ",phi=" or ",delta=".
		end := len(rest)
		for _, key := range []string{",phi=", ",delta="} {
			if i := strings.Index(rest, key); i >= 0 && i < end {
				end = i
			}
		}
		part := rest[:end]
		if end < len(rest) {
			rest = rest[end+1:]
		} else {
			rest = ""
		}
		m := frontierSpecRe.FindStringSubmatch(part)
		if m == nil {
			return nil, nil, fmt.Errorf("explore: bad frontier spec part %q (want phi=... or delta=...)", part)
		}
		if _, dup := axes[m[1]]; dup {
			return nil, nil, fmt.Errorf("explore: frontier spec repeats axis %q", m[1])
		}
		var vals []int64
		for _, tok := range strings.Split(m[2], ",") {
			if lo, hi, ok := strings.Cut(tok, ".."); ok {
				a, _ := strconv.ParseInt(lo, 10, 64)
				b, err := strconv.ParseInt(hi, 10, 64)
				if err != nil || b < a {
					return nil, nil, fmt.Errorf("explore: bad frontier range %q", tok)
				}
				if b-a > 256 {
					return nil, nil, fmt.Errorf("explore: frontier range %q too wide (max 257 values)", tok)
				}
				for v := a; v <= b; v++ {
					vals = append(vals, v)
				}
			} else {
				v, err := strconv.ParseInt(tok, 10, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("explore: bad frontier value %q", tok)
				}
				vals = append(vals, v)
			}
		}
		axes[m[1]] = vals
	}
	phis, deltas = dedupSort(axes["phi"]), dedupSort(axes["delta"])
	if len(phis) == 0 || len(deltas) == 0 {
		return nil, nil, fmt.Errorf("explore: frontier spec needs both phi= and delta= (got %q)", spec)
	}
	for _, phi := range phis {
		if phi < 1 {
			return nil, nil, fmt.Errorf("explore: phi must be >= 1 (got %d)", phi)
		}
	}
	for _, d := range deltas {
		if d < 0 {
			return nil, nil, fmt.Errorf("explore: delta must be >= 0 (got %d)", d)
		}
	}
	return phis, deltas, nil
}

func dedupSort(vals []int64) []int64 {
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// RenderFrontierMap renders the document as a markdown grid per target:
// rows are Φ, columns Δ, each cell the failure rate at that point ("·"
// for zero failures, "(v)" when every run was vacuous).
func RenderFrontierMap(d *FrontierDoc) string {
	var sb strings.Builder
	for ti, tf := range d.Targets {
		if ti > 0 {
			sb.WriteByte('\n')
		}
		mark := ""
		if tf.Ablated {
			mark = " (ablated — failures expected)"
		}
		fmt.Fprintf(&sb, "**%s**%s — oracles: %s\n\n", tf.Target, mark, strings.Join(tf.Oracles, ", "))
		sb.WriteString("| Φ \\ Δ |")
		for _, delta := range d.Deltas {
			fmt.Fprintf(&sb, " %d |", delta)
		}
		sb.WriteString("\n|---|")
		for range d.Deltas {
			sb.WriteString("---|")
		}
		sb.WriteByte('\n')
		for pi, phi := range d.Phis {
			fmt.Fprintf(&sb, "| **%d** |", phi)
			for di := range d.Deltas {
				cell := tf.Cells[pi*len(d.Deltas)+di]
				sb.WriteString(" " + renderCell(cell) + " |")
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func renderCell(c FrontierCell) string {
	if c.Runs == 0 {
		return "—"
	}
	if c.Fails == 0 {
		if c.Vacuous == c.Runs {
			return "(v)"
		}
		return "·"
	}
	return fmt.Sprintf("%d%%", (100*c.Fails+c.Runs/2)/c.Runs)
}
