package explore

import (
	"fmt"

	"tbwf/internal/sim"
)

// Verdict is one property oracle's judgement of one run.
//
// Oracles are *conditioned*: each asserts its property only when the run
// actually established the property's premise (the process was timely, the
// run went idle, the budget was large enough). When the premise failed the
// verdict is vacuously OK with a "vacuous:" detail — a fuzz campaign
// reports such runs as passing, and the detail says why no property was
// actually checked.
type Verdict struct {
	// Oracle names the property checked, e.g. "lincheck" or "tbwf-progress".
	Oracle string `json:"oracle"`
	// OK reports whether the property held (or was vacuous).
	OK bool `json:"ok"`
	// Detail is the human-readable explanation, mandatory for failures.
	Detail string `json:"detail,omitempty"`
}

// String renders the verdict one-per-line for logs and artifacts.
func (v Verdict) String() string {
	status := "ok"
	if !v.OK {
		status = "FAIL"
	}
	if v.Detail == "" {
		return fmt.Sprintf("%s: %s", v.Oracle, status)
	}
	return fmt.Sprintf("%s: %s (%s)", v.Oracle, status, v.Detail)
}

func failf(oracle, format string, args ...any) Verdict {
	return Verdict{Oracle: oracle, OK: false, Detail: fmt.Sprintf(format, args...)}
}

func okf(oracle, format string, args ...any) Verdict {
	return Verdict{Oracle: oracle, OK: true, Detail: fmt.Sprintf(format, args...)}
}

// vacuousf is a passing verdict whose premise did not hold: nothing was
// actually asserted about this run.
func vacuousf(oracle, format string, args ...any) Verdict {
	return Verdict{Oracle: oracle, OK: true, Detail: "vacuous: " + fmt.Sprintf(format, args...)}
}

// suffixReport analyzes the timeliness of the executed schedule's suffix
// starting at step from. Oracles use it to condition on *sustained*
// timeliness near the end of the run, where their properties are read off.
func suffixReport(k *sim.Kernel, from int64) *sim.TimelinessReport {
	sched := k.Trace().Schedule()
	if from < 0 {
		from = 0
	}
	if from > int64(len(sched)) {
		from = int64(len(sched))
	}
	return sim.Analyze(sched[from:], k.N())
}

// allTimely reports whether every process in procs has a finite bound at
// most limit in the report.
func allTimely(rep *sim.TimelinessReport, procs []int, limit int64) bool {
	for _, p := range procs {
		b := rep.Bound[p]
		if b == sim.Unbounded || b > limit {
			return false
		}
	}
	return true
}
