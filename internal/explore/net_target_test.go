package explore

import (
	"testing"
)

// TestNetPartitionReplaysByteExactly extends the recording/replay loop to
// the fabric targets: a run whose network suffered a mid-run
// majority-preserving partition replays byte-exactly from its pinned plan
// and from its encoded JSON artifact — the partition schedule travels in
// the plan, so the fabric re-injects the same cut and heal.
func TestNetPartitionReplaysByteExactly(t *testing.T) {
	tgt, err := TargetByName("net/partition")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(tgt, 1, 0)
	if len(p.Partitions) == 0 {
		t.Fatal("net/partition plan has no partition schedule")
	}
	orig, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Idle {
		t.Fatalf("net/partition seed 1 should settle within %d steps", p.Steps)
	}
	if orig.Failed() {
		t.Fatalf("net/partition seed 1 failed: %v", orig.Verdicts)
	}

	// Pin the executed schedule and tape, keep the partition schedule, and
	// switch the strategy: the run settles inside the prefix, so the (now
	// different) generator must never influence it.
	pinned := p
	pinned.Prefix = orig.Schedule
	pinned.Tape = orig.Tape
	pinned.Strategy = StrategyPattern
	rep, err := Execute(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceHash != orig.TraceHash {
		t.Fatalf("pinned replay hash %s, want %s", rep.TraceHash, orig.TraceHash)
	}
	if !verdictsEqual(rep.Verdicts, orig.Verdicts) {
		t.Fatalf("pinned replay verdicts %v, want %v", rep.Verdicts, orig.Verdicts)
	}

	// The JSON artifact round trip carries the partition schedule and
	// replays exactly.
	enc, err := NewArtifact(p, orig).Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeArtifact(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Plan.Partitions) != len(p.Partitions) {
		t.Fatalf("artifact lost the partition schedule: %v", dec.Plan.Partitions)
	}
	res, err := Replay(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact() {
		t.Fatalf("artifact replay diverged: hash=%v verdicts=%v", res.HashMatch, res.VerdictsMatch)
	}
}

// TestNetReorderTargetRuns sanity-checks the reordering target: a seeded
// run executes without infrastructure errors and produces a verdict from
// the net-def5 oracle (ok or vacuous; the non-ablated elector must not
// fail under duplication and jitter).
func TestNetReorderTargetRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("2M-step elector run skipped in -short mode")
	}
	tgt, err := TargetByName("net/reorder")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(NewPlan(tgt, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("net/reorder seed 1 failed: %v", out.Verdicts)
	}
	if len(out.Verdicts) != 1 || out.Verdicts[0].Oracle != "net-def5" {
		t.Fatalf("unexpected verdicts: %v", out.Verdicts)
	}
}
