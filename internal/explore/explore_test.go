package explore

import (
	"strings"
	"testing"
)

// TestExecuteIsPureFunctionOfPlan is the determinism contract: executing
// the same plan twice yields the same schedule, tape, verdicts, and trace
// hash — across every strategy.
func TestExecuteIsPureFunctionOfPlan(t *testing.T) {
	for _, strat := range []Strategy{StrategyWalk, StrategyPattern, StrategyPBound} {
		p := Plan{Target: "qa-counter", Seed: 11, Steps: 60_000, Strategy: strat}
		a, err := Execute(p)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		b, err := Execute(p)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if a.TraceHash != b.TraceHash {
			t.Fatalf("%s: trace hashes differ: %s vs %s", strat, a.TraceHash, b.TraceHash)
		}
		if !verdictsEqual(a.Verdicts, b.Verdicts) {
			t.Fatalf("%s: verdicts differ: %v vs %v", strat, a.Verdicts, b.Verdicts)
		}
		if a.Tape != b.Tape {
			t.Fatalf("%s: tapes differ (%d vs %d bits)", strat, len(a.Tape), len(b.Tape))
		}
		if len(a.Schedule) != len(b.Schedule) {
			t.Fatalf("%s: schedule lengths differ: %d vs %d", strat, len(a.Schedule), len(b.Schedule))
		}
		for i := range a.Schedule {
			if a.Schedule[i] != b.Schedule[i] {
				t.Fatalf("%s: schedules diverge at step %d", strat, i)
			}
		}
	}
}

// TestPinnedPrefixReplaysByteExactly checks the recording/replay loop: a
// run's executed schedule and tape, pinned back into the plan, reproduce
// the identical run even though the strategy generator is never consulted.
func TestPinnedPrefixReplaysByteExactly(t *testing.T) {
	p := Plan{Target: "qa-counter", Seed: 5, Steps: 50_000, Strategy: StrategyWalk}
	orig, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Idle {
		t.Fatalf("qa-counter should settle within %d steps", p.Steps)
	}
	// Pin the executed schedule and tape, then switch the strategy: the run
	// settles inside the prefix, so the (now different) generator must never
	// influence it. The seed stays — it also feeds the workload stream.
	pinned := p
	pinned.Prefix = orig.Schedule
	pinned.Tape = orig.Tape
	pinned.Strategy = StrategyPattern
	rep, err := Execute(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceHash != orig.TraceHash {
		t.Fatalf("pinned replay hash %s, want %s", rep.TraceHash, orig.TraceHash)
	}
	if !verdictsEqual(rep.Verdicts, orig.Verdicts) {
		t.Fatalf("pinned replay verdicts %v, want %v", rep.Verdicts, orig.Verdicts)
	}
}

// TestReplayDeterminismEndToEnd is the PR's acceptance path: fuzz an
// ablated target with a fixed seed, capture the induced failure as an
// artifact, shrink it, and replay the shrunk artifact to the same verdict
// and trace hash.
func TestReplayDeterminismEndToEnd(t *testing.T) {
	tgt, err := TargetByName("heartbeat-single")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Fuzz(Config{Targets: []Target{tgt}, Seeds: 8, BaseSeed: 1, Budget: 200_000, Parallel: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failures == 0 {
		t.Fatal("ablated heartbeat-single produced no failures in 8 seeds")
	}
	f := sum.Findings[0]

	// The artifact replays byte-exactly.
	res, err := Replay(f.Artifact)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact() {
		t.Fatalf("artifact replay diverged: hash=%v verdicts=%v", res.HashMatch, res.VerdictsMatch)
	}

	// Shrinking preserves the failing oracle and reduces the plan.
	min, stats, err := Shrink(f.Artifact, 40)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Oracle != "hb-suspects-slow-sender" {
		t.Fatalf("shrink preserved oracle %q, want hb-suspects-slow-sender", stats.Oracle)
	}
	if min.Plan.Steps >= f.Artifact.Plan.Steps && stats.PinnedAfter >= stats.PinnedBefore {
		t.Fatalf("shrink reduced nothing: %s", stats)
	}

	// The shrunk artifact still fails the same oracle and replays exactly.
	minRes, err := Replay(min)
	if err != nil {
		t.Fatal(err)
	}
	if !minRes.Exact() {
		t.Fatalf("shrunk artifact replay diverged: hash=%v verdicts=%v", minRes.HashMatch, minRes.VerdictsMatch)
	}
	if !failsSame(minRes.Outcome, stats.Oracle) {
		t.Fatalf("shrunk artifact no longer fails %s: %v", stats.Oracle, minRes.Outcome.Verdicts)
	}

	// Artifacts survive an encode/decode round trip.
	enc, err := min.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeArtifact(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TraceHash != min.TraceHash || dec.Plan.Target != min.Plan.Target || dec.Plan.Tape != min.Plan.Tape {
		t.Fatal("artifact round trip lost fields")
	}
}

// TestAblationTeeth is the other acceptance criterion: the fuzzer finds the
// A1–A3 ablation failures (and the oracle self-tests) within a CI-sized
// budget. The non-ablated counterparts stay green under the same sweep.
func TestAblationTeeth(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation sweep (~150 runs at 200k steps) skipped in -short mode")
	}
	// Seed counts are sized from measured failure rates at budget 200000
	// (heartbeat-single 18/32, churn 12/32, messenger 6/32, misreport 32/32,
	// nogate 27/32, nerio-nodepose 18/32, reputation-nopenalty 12/32):
	// enough seeds that each ablation reliably fires.
	cases := []struct {
		ablated, control string
		budget           int64
		seeds            int
	}{
		{"heartbeat-single", "heartbeat-dual", 200_000, 16},       // A1
		{"omega-churn-noselfpunish", "omega-churn", 200_000, 16},  // A2
		{"messenger-nobackoff", "messenger-backoff", 200_000, 32}, // A3
		{"qa-counter-misreport", "qa-counter", 200_000, 4},        // lincheck self-test
		{"monitor-nogate", "monitor-pair", 200_000, 8},            // Def 9 Property 5b
		// Bake-off negative controls: each non-Ω∆-correct elector must be
		// caught by the seam-level oracles its sound counterpart passes.
		{"elector-nerio-nodepose", "elector-nerio", 200_000, 16},
		{"elector-reputation-nopenalty", "elector-reputation-churn", 200_000, 16},
		// Quorum intersection: read quorum 1 on the ABD substrate lets
		// clients read replicas the write quorum never touched (measured
		// 4/32 at budget 300000); the majority-quorum control stays green.
		{"net/partition-rq1", "net/partition", 300_000, 32},
		// Batch fence: rotated batch responses break per-shard
		// linearizability (measured 26/32 at budget 800000); the fenced
		// control stays green.
		{"shard/kv-nobatchfence", "shard/kv", 800_000, 8},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.ablated, func(t *testing.T) {
			t.Parallel()
			abl, err := TargetByName(tc.ablated)
			if err != nil {
				t.Fatal(err)
			}
			ctl, err := TargetByName(tc.control)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := Fuzz(Config{Targets: []Target{abl, ctl}, Seeds: tc.seeds, BaseSeed: 1, Budget: tc.budget, Parallel: 0})
			if err != nil {
				t.Fatal(err)
			}
			if len(sum.Errors) > 0 {
				t.Fatalf("infrastructure errors: %v", sum.Errors)
			}
			var ablFails, ctlFails int
			for _, ts := range sum.PerTarget {
				switch ts.Target {
				case tc.ablated:
					ablFails = ts.Failures
				case tc.control:
					ctlFails = ts.Failures
				}
			}
			if ablFails == 0 {
				t.Errorf("ablated %s: no failures in %d seeds at budget %d", tc.ablated, tc.seeds, tc.budget)
			}
			if ctlFails != 0 {
				for _, f := range sum.Findings {
					if f.Target == tc.control {
						t.Errorf("control %s seed %d failed: %v", tc.control, f.Seed, f.Artifact.Verdicts)
					}
				}
			}
		})
	}
}

// TestPanicArtifactPath checks that a task panic becomes a failing
// "no-panic" verdict whose artifact replays deterministically, with the
// stack kept out of the (replay-compared) verdict but present in Err.
func TestPanicArtifactPath(t *testing.T) {
	tgt, err := TargetByName("selftest-panic")
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(tgt, 7, 10_000)
	out, err := SafeExecute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Failed() {
		t.Fatalf("selftest-panic did not fail: %v", out.Verdicts)
	}
	v := out.FirstFailure()
	if v.Oracle != "no-panic" {
		t.Fatalf("failing oracle %q, want no-panic", v.Oracle)
	}
	if strings.Contains(v.Detail, "goroutine") {
		t.Fatal("verdict detail contains a stack trace; replays would diverge")
	}
	if !strings.Contains(out.Err, "goroutine") {
		t.Fatal("outcome Err lost the captured stack")
	}
	res, err := Replay(NewArtifact(plan, out))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact() {
		t.Fatalf("panic artifact replay diverged: hash=%v verdicts=%v", res.HashMatch, res.VerdictsMatch)
	}
}

// TestPlanScheduleHolesAndDeadPids: prefix holes (-1) and entries naming a
// non-schedulable process fall back to the stateless rotation.
func TestPlanScheduleHolesAndDeadPids(t *testing.T) {
	s := newPlanSchedule(Plan{
		Seed:     1,
		Strategy: StrategyWalk,
		Prefix:   []int32{2, -1, 0, 7},
	}, 100)
	alive := []int{0, 2}
	if got := s.Next(0, alive); got != 2 {
		t.Fatalf("step 0: got %d, want pinned 2", got)
	}
	if got := s.Next(1, alive); got != alive[1%2] {
		t.Fatalf("step 1 (hole): got %d, want rotation %d", got, alive[1%2])
	}
	if got := s.Next(2, alive); got != 0 {
		t.Fatalf("step 2: got %d, want pinned 0", got)
	}
	if got := s.Next(3, alive); got != alive[3%2] {
		t.Fatalf("step 3 (dead pid 7): got %d, want rotation %d", got, alive[3%2])
	}
	// Past the prefix the strategy base takes over; it must pick an alive id.
	for step := int64(4); step < 50; step++ {
		got := s.Next(step, alive)
		if got != 0 && got != 2 {
			t.Fatalf("step %d: schedule picked dead process %d", step, got)
		}
	}
}

// TestStrategySchedulesStayInAliveSet exercises the pattern and segment
// generators over awkward alive sets, including a singleton.
func TestStrategySchedulesStayInAliveSet(t *testing.T) {
	for _, strat := range []Strategy{StrategyPattern, StrategyPBound, StrategyDLS} {
		for seed := int64(1); seed <= 20; seed++ {
			s := newStrategySchedule(Plan{Strategy: strat}, seed, 1_000)
			alive := []int{1, 3, 4}
			for step := int64(0); step < 200; step++ {
				if step == 100 {
					alive = []int{3} // processes 1 and 4 die
				}
				got := s.Next(step, alive)
				if !containsInt(alive, got) {
					t.Fatalf("%s seed %d step %d: picked %d, alive %v", strat, seed, step, got, alive)
				}
			}
		}
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestNewPlanGenerator: plans are deterministic in (target, seed), respect
// NoCrashes, and always crash CrashProc targets mid-run.
func TestNewPlanGenerator(t *testing.T) {
	mon, err := TargetByName("monitor-pair")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 50; seed++ {
		p := NewPlan(mon, seed, 0)
		q := NewPlan(mon, seed, 0)
		if p.Strategy != q.Strategy || len(p.Crashes) != len(q.Crashes) || p.Seed != q.Seed {
			t.Fatalf("seed %d: NewPlan is not deterministic: %+v vs %+v", seed, p, q)
		}
		// The forced CrashProc injection is always first, in the second
		// quarter of the run; a further random crash may follow it.
		if len(p.Crashes) == 0 || p.Crashes[0].Proc != 1 {
			t.Fatalf("seed %d: CrashProc target generated no forced crash: %v", seed, p.Crashes)
		}
		if c := p.Crashes[0]; c.Step < p.Steps/4 || c.Step >= p.Steps/2 {
			t.Fatalf("seed %d: forced crash at step %d outside [%d,%d)", seed, c.Step, p.Steps/4, p.Steps/2)
		}
	}
	qa, err := TargetByName("qa-counter")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 50; seed++ {
		if p := NewPlan(qa, seed, 0); len(p.Crashes) != 0 {
			t.Fatalf("seed %d: NoCrashes target got crashes %v", seed, p.Crashes)
		}
	}
}

// TestTargetRegistry: names are unique and resolvable; unknown names error.
func TestTargetRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, tgt := range Targets() {
		if tgt.Name == "" || tgt.N < 1 || tgt.Steps < 1 || tgt.Build == nil {
			t.Fatalf("malformed target %+v", tgt)
		}
		if seen[tgt.Name] {
			t.Fatalf("duplicate target name %q", tgt.Name)
		}
		seen[tgt.Name] = true
		if _, err := TargetByName(tgt.Name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := TargetByName("no-such-target"); err == nil {
		t.Fatal("TargetByName accepted an unknown name")
	}
	if _, err := Execute(Plan{Target: "no-such-target"}); err == nil {
		t.Fatal("Execute accepted an unknown target")
	}
}

// TestMixStreamsAreIndependent: derived stream seeds differ across streams
// and across seeds.
func TestMixStreamsAreIndependent(t *testing.T) {
	streams := []int64{streamSchedule, streamTape, streamTarget, streamGen}
	seen := map[int64]bool{}
	for seed := int64(0); seed < 100; seed++ {
		for _, st := range streams {
			v := mix(seed, st)
			if v < 0 {
				t.Fatalf("mix(%d,%d) = %d, want non-negative (rand.NewSource seed)", seed, st, v)
			}
			if seen[v] {
				t.Fatalf("mix collision at seed %d stream %#x", seed, st)
			}
			seen[v] = true
		}
	}
}

// TestFuzzSummaryDeterministic: the same campaign config yields the same
// summary regardless of worker-pool size.
func TestFuzzSummaryDeterministic(t *testing.T) {
	tgt, err := TargetByName("monitor-nogate")
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel int) *Summary {
		sum, err := Fuzz(Config{Targets: []Target{tgt}, Seeds: 4, BaseSeed: 3, Budget: 60_000, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(1), run(4)
	if a.Runs != b.Runs || a.Failures != b.Failures || len(a.Findings) != len(b.Findings) {
		t.Fatalf("summaries differ across pool sizes: %+v vs %+v", a, b)
	}
	for i := range a.Findings {
		if a.Findings[i].Seed != b.Findings[i].Seed || a.Findings[i].Artifact.TraceHash != b.Findings[i].Artifact.TraceHash {
			t.Fatalf("finding %d differs across pool sizes", i)
		}
	}
}
