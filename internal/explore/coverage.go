package explore

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"

	"tbwf/internal/adversary"
	"tbwf/internal/exp"
	"tbwf/internal/sim"
)

// This file is the coverage-feedback loop: blind plan generation (fuzz.go)
// upgraded to novelty search. Every executed run is keyed two ways — the
// exact FNV-1a trace hash, and the much coarser *state signature* below —
// and a run whose state signature is new joins the corpus and spawns a
// batch of mutants exploring near it. The signature is deliberately
// lossy: it buckets runs by what kind of behavior they exhibited (which
// oracles were vacuous, how starved each process was, how much abort
// traffic the registers saw, what the leader vector settled to), so two
// schedules that differ step-by-step but drive the system through the
// same regime collapse into one corpus entry, and the mutation budget
// concentrates on regimes not yet seen.

// stateSig renders the run's coarse state signature. Layout (all pieces
// deterministic in the outcome):
//
//	<verdict statuses>:<idle>:<sorted gap profile>:<total writes
//	bucket><total aborts bucket>[:<target extra>]
//
// Gap buckets are log4 of the per-process suffix step-gap bound (second
// half of the run), 'X' for a crashed process, 'U' for an unbounded gap,
// sorted into a multiset — the step-gap profile axis; the target extra is
// whatever the build registered via Env.RecordState (the leader vector
// axis).
func stateSig(k *sim.Kernel, out *Outcome, extra string) string {
	var sb strings.Builder
	for _, v := range out.Verdicts {
		switch {
		case !v.OK:
			sb.WriteByte('F')
		case strings.HasPrefix(v.Detail, "vacuous:"):
			sb.WriteByte('v')
		default:
			sb.WriteByte('p')
		}
	}
	sb.WriteByte(':')
	if out.Idle {
		sb.WriteByte('i')
	} else {
		sb.WriteByte('r')
	}
	sb.WriteByte(':')
	// The gap profile is the sorted multiset of per-process buckets: "one
	// process starved hard" is a regime, *which* process it was is noise
	// the mutation engine would otherwise chase run after run.
	suffix := suffixReport(k, k.Step()/2)
	gaps := make([]byte, k.N())
	for p := 0; p < k.N(); p++ {
		switch {
		case k.Crashed(p):
			gaps[p] = 'X'
		case suffix.Bound[p] < 0: // sim.Unbounded
			gaps[p] = 'U'
		default:
			gaps[p] = bucket(suffix.Bound[p])
		}
	}
	sortBytes(gaps)
	sb.Write(gaps)
	sb.WriteByte(':')
	m := k.Metrics()
	var writes, aborts int64
	for p := 0; p < k.N(); p++ {
		writes += m.Writes[p]
		aborts += m.ReadAborts[p] + m.WriteAborts[p]
	}
	sb.WriteByte(bucket(writes))
	sb.WriteByte(bucket(aborts))
	if extra != "" {
		sb.WriteByte(':')
		sb.WriteString(extra)
	}
	return sb.String()
}

// bucket maps a non-negative counter to a log4 character ('0' for zero,
// then 'a', 'b', … per two bits of magnitude), the signature's coarsening
// knob. Log4 rather than log2 is deliberate: at log2 granularity nearly
// every run on a tape-driven target is "novel" and novelty search
// degenerates into the blind sweep it is supposed to beat.
func bucket(v int64) byte {
	if v <= 0 {
		return '0'
	}
	n := (bits.Len64(uint64(v)) + 1) / 2
	if n > 25 {
		n = 25
	}
	return byte('a' + n - 1)
}

func sortBytes(b []byte) {
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && b[j] < b[j-1]; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}

// stateExtra joins the target-registered state reporters.
func (e *Env) stateExtra() string {
	if len(e.stateFns) == 0 {
		return ""
	}
	parts := make([]string, len(e.stateFns))
	for i, fn := range e.stateFns {
		parts[i] = fn()
	}
	return strings.Join(parts, ";")
}

// Coverage counts the distinct behaviors a campaign reached.
type Coverage struct {
	// TraceHashes counts distinct exact execution fingerprints.
	TraceHashes int `json:"trace_hashes"`
	// StateSigs counts distinct coarse state signatures — the novelty
	// metric the guided loop optimizes.
	StateSigs int `json:"state_sigs"`
	// Corpus is the number of runs that entered the corpus (one per new
	// state signature; equals StateSigs for a completed campaign).
	Corpus int `json:"corpus"`
	// Mutants is the number of executed plans that were mutations of a
	// corpus entry rather than fresh seeds.
	Mutants int `json:"mutants"`
}

// coverageTracker accumulates Coverage incrementally.
type coverageTracker struct {
	hashes map[string]bool
	sigs   map[string]bool
}

func newCoverageTracker() *coverageTracker {
	return &coverageTracker{hashes: map[string]bool{}, sigs: map[string]bool{}}
}

// observe records a run and reports whether its state signature is new.
func (c *coverageTracker) observe(out *Outcome) bool {
	c.hashes[out.TraceHash] = true
	fresh := !c.sigs[out.StateSig]
	c.sigs[out.StateSig] = true
	return fresh
}

func (c *coverageTracker) coverage() Coverage {
	return Coverage{TraceHashes: len(c.hashes), StateSigs: len(c.sigs)}
}

// GuidedConfig parameterizes a coverage-guided campaign on one target.
type GuidedConfig struct {
	// Target is the system under test.
	Target Target
	// Plans is the total execution budget (fresh seeds + mutants);
	// default 64. Comparing guided vs blind at equal budget means equal
	// Plans here and Seeds there.
	Plans int
	// BaseSeed offsets the fresh-seed stream (same meaning as Config).
	BaseSeed int64
	// Budget overrides the target's step budget when positive.
	Budget int64
	// Parallel is the worker-pool size (<= 0: one per CPU). Results are
	// independent of it: rounds are barriers and processed in order.
	Parallel int
	// MutantsPerHit is how many mutants a novel run spawns (default 4).
	MutantsPerHit int
}

// GuidedResult is a guided campaign's outcome.
type GuidedResult struct {
	Runs, Failures int
	Coverage       Coverage
	Findings       []Finding
	Errors         []string
}

// guidedBatch is the round size: the loop executes this many plans per
// barrier so novelty feedback lands every round while workers stay busy.
const guidedBatch = 8

// FuzzGuided runs the coverage-guided loop on one target: seed plans come
// from the blind generator, every run is keyed by trace hash and state
// signature, and a run reaching a new signature enqueues MutantsPerHit
// mutated neighbors (seed splice, prefix extension, crash jitter,
// preemption pinch around a recorded write, DLS jitter/graft). The mutant
// queue has priority over fresh seeds, so the budget concentrates around
// novel behavior. Deterministic in the config, independent of Parallel.
func FuzzGuided(cfg GuidedConfig) (*GuidedResult, error) {
	if cfg.Target.Name == "" {
		return nil, fmt.Errorf("explore: guided fuzz needs a target")
	}
	if cfg.Plans <= 0 {
		cfg.Plans = 64
	}
	if cfg.MutantsPerHit <= 0 {
		cfg.MutantsPerHit = 4
	}

	res := &GuidedResult{}
	tracker := newCoverageTracker()
	var queue []Plan // pending mutants, FIFO
	nextSeed := cfg.BaseSeed
	mutantsRun := 0

	for res.Runs < cfg.Plans {
		// Assemble one round: queued mutants first — but never more than
		// half the round. Mutants are correlated with their parents, and a
		// queue that monopolizes the budget turns the campaign into a
		// family tree of the first few seeds; keeping half of every round
		// fresh preserves the global exploration the corpus feeds on.
		round := make([]Plan, 0, guidedBatch)
		fromQueue := 0
		for len(round) < guidedBatch/2 && res.Runs+len(round) < cfg.Plans && fromQueue < len(queue) {
			round = append(round, queue[fromQueue])
			fromQueue++
		}
		queue = queue[fromQueue:]
		for len(round) < guidedBatch && res.Runs+len(round) < cfg.Plans {
			round = append(round, NewPlan(cfg.Target, nextSeed, cfg.Budget))
			nextSeed++
		}
		mutantsRun += fromQueue

		outs := make([]*Outcome, len(round))
		errs := make([]error, len(round))
		exp.ForEach(cfg.Parallel, len(round), func(i int) {
			outs[i], errs[i] = SafeExecute(round[i])
		})

		// Feedback, in round order (determinism).
		for i, out := range outs {
			res.Runs++
			if errs[i] != nil {
				res.Errors = append(res.Errors, fmt.Sprintf("%s seed %d: %v", round[i].Target, round[i].Seed, errs[i]))
				continue
			}
			if out.Failed() {
				res.Failures++
				res.Findings = append(res.Findings, Finding{
					Target:   round[i].Target,
					Seed:     round[i].Seed,
					Artifact: NewArtifact(round[i], out),
				})
			}
			if tracker.observe(out) {
				res.Coverage.Corpus++
				for m := 0; m < cfg.MutantsPerHit; m++ {
					queue = append(queue, mutate(cfg.Target, round[i], out, m))
				}
			}
		}
	}

	cov := tracker.coverage()
	res.Coverage.TraceHashes = cov.TraceHashes
	res.Coverage.StateSigs = cov.StateSigs
	res.Coverage.Mutants = mutantsRun
	return res, nil
}

// mutate derives the idx-th mutant of a corpus entry. Every mutant gets a
// fresh derived seed (so its strategy tail, tape draws and workload differ
// from the parent's) plus one structural edit keyed on idx:
//
//	0 — seed splice: the parent's plan shape under a new seed;
//	1 — prefix extension: pin a seed-chosen prefix of the parent's
//	    executed schedule and explore fresh past it;
//	2 — crash jitter: add or move a crash (NoCrashes targets get a seed
//	    splice instead — their oracles go vacuous on any crash, so a
//	    crash mutant would only buy vacuous "novelty");
//	3 — preemption pinch: pin the parent's schedule up to just past a
//	    recorded register write and hand the window around the write to
//	    the writer alone — preemption-budget tightening around a
//	    linearization point;
//	4+ — DLS jitter: nudge Φ/Δ one notch, or graft a DLS policy onto a
//	    non-DLS parent.
func mutate(tgt Target, parent Plan, out *Outcome, idx int) Plan {
	child := clonePlan(parent)
	child.Seed = mix(parent.Seed, streamMutant+int64(idx)+1)
	child.Prefix = nil
	child.Tape = ""
	rng := rand.New(rand.NewSource(child.Seed))

	// Structural operators first, the plain splice last: with the default
	// MutantsPerHit the whole structural repertoire runs per corpus hit.
	op := [5]int{1, 3, 4, 2, 0}[idx%5]
	if op == 2 && (tgt.NoCrashes || (len(child.Crashes) == 0 && len(out.Schedule) == 0)) {
		op = 0
	}
	switch op {
	case 1: // prefix extension
		if n := len(out.Schedule); n > 4 {
			cut := n/4 + rng.Intn(n/2)
			child.Prefix = append([]int32(nil), out.Schedule[:cut]...)
			// Keep the parent's tape draws for the pinned stretch so the
			// prefix replays the same policy decisions it was recorded under.
			if cut < len(out.Tape) {
				child.Tape = out.Tape[:cut]
			} else {
				child.Tape = out.Tape
			}
		}
	case 2: // crash jitter
		steps := child.Steps
		if steps <= 0 {
			steps = out.Steps + 1
		}
		at := steps/2 + rng.Int63n(maxInt64(steps/2, 1))
		if len(child.Crashes) > 0 && rng.Intn(2) == 0 {
			child.Crashes[rng.Intn(len(child.Crashes))].Step = at
		} else {
			child.Crashes = append(child.Crashes, Crash{Proc: rng.Intn(maxProc(out)), Step: at})
		}
	case 3: // preemption pinch around a register linearization point
		if len(out.Writes) > 0 && len(out.Schedule) > 0 {
			w := out.Writes[rng.Intn(len(out.Writes))]
			width := int64(8 + rng.Intn(25))
			start := w.Step - width
			if start < 0 {
				start = 0
			}
			end := w.Step + width
			if end > int64(len(out.Schedule)) {
				end = int64(len(out.Schedule))
			}
			child.Prefix = append([]int32(nil), out.Schedule[:end]...)
			for i := start; i < end; i++ {
				child.Prefix[i] = int32(w.Proc)
			}
		}
	case 4: // DLS jitter / graft
		if child.DLS != nil {
			// Octave jumps, not ±1 nudges: the fresh-plan generator caps
			// Φ at 8 and Δ at 16, so doubling is how mutants reach the
			// timing regimes (Φ up to 64, Δ up to 128) that only the
			// corpus feedback ever explores.
			d := *child.DLS
			switch rng.Intn(4) {
			case 0:
				d.Phi *= 2
			case 1:
				d.Phi /= 2
			case 2:
				d.Delta = d.Delta*2 + 1
			default:
				d.Delta /= 2
			}
			d = d.Normalize()
			if d.Phi > 64 {
				d.Phi = 64
			}
			if d.Delta > 128 {
				d.Delta = 128
			}
			child.DLS = &d
		} else {
			child.Strategy = StrategyDLS
			d := adversary.DLS{Phi: 1 + rng.Int63n(8), Delta: rng.Int63n(33)}
			child.DLS = &d
		}
	}
	return child
}

// maxProc bounds crash-proc draws by the run's process count.
func maxProc(out *Outcome) int {
	n := 1
	for _, p := range out.Schedule {
		if int(p)+1 > n {
			n = int(p) + 1
		}
	}
	return n
}
