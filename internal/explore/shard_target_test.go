package explore

import (
	"strings"
	"testing"
)

// The sharded-keyspace target obeys the determinism contract: a plan
// fully determines the run — shard routing, burst submissions, batch
// boundaries, and the per-shard histories the oracles judge.
func TestShardTargetIsDeterministic(t *testing.T) {
	p := Plan{Target: "shard/kv", Seed: 7, Strategy: StrategyWalk}
	a, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hashes differ: %s vs %s", a.TraceHash, b.TraceHash)
	}
	if !verdictsEqual(a.Verdicts, b.Verdicts) {
		t.Fatalf("verdicts differ: %v vs %v", a.Verdicts, b.Verdicts)
	}
	if a.Tape != b.Tape {
		t.Fatalf("tapes differ (%d vs %d bits)", len(a.Tape), len(b.Tape))
	}
}

// A pinned replay of a shard run reproduces the identical trace hash and
// verdicts — what makes a fuzzer artifact from a shard/* failure actionable.
func TestShardTargetPinnedReplay(t *testing.T) {
	p := Plan{Target: "shard/kv", Seed: 3, Strategy: StrategyWalk}
	orig, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	pinned := p
	pinned.Prefix = orig.Schedule
	pinned.Tape = orig.Tape
	rep, err := Execute(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceHash != orig.TraceHash {
		t.Fatalf("pinned replay hash %s, want %s", rep.TraceHash, orig.TraceHash)
	}
	if !verdictsEqual(rep.Verdicts, orig.Verdicts) {
		t.Fatalf("pinned replay verdicts %v, want %v", rep.Verdicts, orig.Verdicts)
	}
}

// Under a plain random walk with the default budget the load drains and
// all three oracles return non-vacuous OK verdicts.
func TestShardTargetOraclesEngage(t *testing.T) {
	out, err := Execute(Plan{Target: "shard/kv", Seed: 1, Strategy: StrategyWalk})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, v := range out.Verdicts {
		if !v.OK {
			t.Fatalf("verdict failed: %+v", v)
		}
		if strings.HasPrefix(v.Detail, "vacuous:") {
			t.Fatalf("verdict vacuous: %+v", v)
		}
		seen[v.Oracle] = true
	}
	for _, oracle := range []string{"shard-fifo", "shard-accounting", "shard-lincheck"} {
		if !seen[oracle] {
			t.Errorf("oracle %s produced no verdict (got %v)", oracle, out.Verdicts)
		}
	}
}

// shard/kv rides along in "all" campaigns; the batch-fence ablation is
// excluded unless asked for.
func TestShardTargetsRegistered(t *testing.T) {
	sound, err := TargetByName("shard/kv")
	if err != nil {
		t.Fatal(err)
	}
	if sound.Ablated {
		t.Error("shard/kv must not be ablated")
	}
	abl, err := TargetByName("shard/kv-nobatchfence")
	if err != nil {
		t.Fatal(err)
	}
	if !abl.Ablated {
		t.Error("shard/kv-nobatchfence must be ablated")
	}
}
