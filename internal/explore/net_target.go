package explore

import (
	"fmt"
	"strings"

	"tbwf/internal/elector"
	"tbwf/internal/lincheck"
	"tbwf/internal/net"
	"tbwf/internal/objtype"
	"tbwf/internal/omega"
	"tbwf/internal/prim"
	"tbwf/internal/qa"
	"tbwf/internal/sim"
)

// The net/* targets fuzz the message-passing substrate: the same stacks
// and oracles as the shared-memory targets, but every register operation
// is now an ABD quorum protocol over the deterministic fabric, and the
// adversary gains the network moves the ROADMAP says the other substrates
// cannot express — seeded link-delay jitter, duplication, loss, and the
// plan-carried partition/heal schedule (Plan.Partitions). The
// quorum-breaking ablation (read quorum of 1, so the read and write
// quorums no longer intersect) is the campaign's proof that the lincheck
// oracle still has teeth through a network.

// netTargets returns the message-passing substrate's registry entries.
func netTargets() []Target {
	return []Target{
		{
			Name:    "net/partition",
			Desc:    "query-abortable counter over ABD majority quorums on the fabric, seeded mid-run partition/heal; lincheck oracle",
			Oracles: []string{"lincheck"},
			N:       3,
			// ABD makes every register operation a two-phase quorum round
			// (~10-30 kernel steps), and a partitioned client stalls until
			// the heal; the budget covers both.
			Steps:      300_000,
			NoCrashes:  true, // lincheck needs a complete history
			CrashProc:  -1,
			Partitions: true,
			Fabric:     true,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildNetCounter(k, env, net.Config{})
			},
		},
		{
			Name:    "net/reorder",
			Desc:    "Ω∆ elector over ABD registers under delay jitter + duplicate faults; Definition 5 oracle",
			Oracles: []string{"net-def5"},
			N:       3,
			// The activity monitors need ~700k steps to adapt their
			// timeouts past ABD's quorum latency; the Definition 5 window
			// is the second half, so the budget leaves the whole
			// adaptation outside it.
			Steps:     2_000_000,
			NoCrashes: true, // a late crash legitimately destabilizes the check window
			CrashProc: -1,
			Fabric:    true,
			Build:     buildNetDef5,
		},
		{
			Name:       "net/partition-rq1",
			Desc:       "ablated: read quorum of 1 breaks quorum intersection; lincheck must fail",
			Oracles:    []string{"lincheck"},
			N:          3,
			Steps:      300_000,
			Ablated:    true,
			NoCrashes:  true,
			CrashProc:  -1,
			Partitions: true,
			Fabric:     true,
			Build: func(k *sim.Kernel, env *Env) (Check, error) {
				return buildNetCounter(k, env, net.Config{ReadQuorum: 1})
			},
		},
	}
}

// buildNetCounter is buildQACounter lifted onto the net substrate: the
// query-abortable counter's registers are ABD quorum registers on a
// seeded fabric, the plan's partition schedule cuts and heals the network
// mid-run, and the oracle is the same lincheck over effected operations.
// cfg carries the quorum sizes — the rq1 ablation passes ReadQuorum 1.
func buildNetCounter(k *sim.Kernel, env *Env, cfg net.Config) (Check, error) {
	fcfg := net.FabricConfig{
		Seed:     env.Rand().Int63(),
		MinDelay: 1,
		MaxDelay: 4 + env.Rand().Int63n(5),
		// Drops matter beyond forcing retransmits: once a quorum has
		// answered, the broadcast returns and a dropped third-replica
		// message is never resent, so that replica stays stale until a
		// later write-back repairs it. Majority quorums absorb that by
		// intersection; the rq1 ablation is exactly the configuration
		// that reads through it.
		DropProb:   0.1 + 0.2*env.Rand().Float64(),
		Partitions: env.Partitions,
	}
	// Under the DLS adversary the fabric *is* the Δ bound: link delays are
	// drawn from [1, 1+Δ] instead of the default jitter band. (The kernel's
	// effect-delay hook stays off for Fabric targets — see Target.Fabric —
	// so the bound is charged exactly once per message.)
	if env.DLS != nil {
		fcfg.MinDelay, fcfg.MaxDelay = 1, 1+env.DLS.Delta
	}
	sub, fab, err := net.NewFabric(k, fcfg, cfg)
	if err != nil {
		return nil, err
	}
	obj, err := qa.New(objtype.Counter{}, k.N(),
		qa.SubstrateFactories[objtype.CounterOp](sub, tapedRegisterOptions(env)...), 0)
	if err != nil {
		return nil, err
	}
	n := k.N()
	// The workload has two phases. A contention phase runs operations
	// back-to-back from every client — the staleness adversary for the
	// quorum ablation, where a read quorum of 1 can miss decided slots and
	// double-apply operations. A straddle phase then gates the remaining
	// operations around the plan's partition window, so operations are in
	// flight when the cut lands, stall while isolated, and must complete
	// (and still linearize) after the heal. 3×(16+4) = 60 operations stays
	// under the checker's 64-op cap.
	const contendOps, straddleOps = 16, 4
	var cut, heal int64
	for _, ev := range env.Partitions {
		if len(ev.Groups) > 0 && (cut == 0 || ev.Step < cut) {
			cut = ev.Step
		}
		if ev.Step > heal {
			heal = ev.Step
		}
	}
	var history []lincheck.Op[objtype.CounterOp, int64]
	deltas := make([]int64, n)
	for p := range deltas {
		deltas[p] = 1 + env.Rand().Int63n(9)
	}
	for p := 0; p < n; p++ {
		p := p
		h := obj.Handle(p)
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(proc prim.Proc) {
			record := func(invokeAt int64, resp int64) {
				history = append(history, lincheck.Op[objtype.CounterOp, int64]{
					Proc:     p,
					Invoke:   invokeAt,
					Response: k.Step(),
					Arg:      objtype.CounterOp{Delta: deltas[p]},
					Resp:     resp,
				})
			}
			settle := func() {
				backoff := int64(2)
				invokeAt := k.Step()
			attempt:
				for {
					if resp, ok := h.Invoke(objtype.CounterOp{Delta: deltas[p]}); ok {
						record(invokeAt, resp)
						break
					}
					for {
						resp, out := h.Query()
						if out == qa.QueryApplied {
							record(invokeAt, resp)
							break attempt
						}
						if out == qa.QueryNotApplied {
							break
						}
						proc.Step()
					}
					for s := int64(0); s < backoff; s++ {
						proc.Step()
					}
					// Cap low: an ABD propose spans hundreds of kernel steps,
					// so a large cap would serialize the clients and starve
					// the oracle of the overlapping proposals it is checking.
					backoff = backoff*2 + int64(p) + 1
					if backoff > 512 {
						backoff = 512 + int64(p)
					}
				}
			}
			for i := 0; i < contendOps; i++ {
				settle()
			}
			for j := 0; j < straddleOps; j++ {
				if heal > 0 {
					// Gate each straddle op so the batch spans the window:
					// the first is in flight when the cut lands, the last
					// starts after the heal.
					at := cut - 500 + int64(j)*((heal-cut)+1500)/int64(straddleOps-1)
					for k.Step() < at {
						proc.Step()
					}
				}
				settle()
			}
		})
	}
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		const oracle = "lincheck"
		for p := 0; p < k.N(); p++ {
			if k.Crashed(p) {
				return []Verdict{vacuousf(oracle, "process %d crashed: its in-flight operation may have taken effect unrecorded", p)}
			}
		}
		if !res.Idle {
			return []Verdict{vacuousf(oracle, "run did not go idle (%d ops settled): history may be incomplete", len(history))}
		}
		if len(history) == 0 {
			return []Verdict{vacuousf(oracle, "no operation took effect")}
		}
		_, ok, err := lincheck.Check(objtype.Counter{}, history, lincheck.Options[int64, int64]{})
		if err != nil {
			return []Verdict{vacuousf(oracle, "checker rejected the history: %v", err)}
		}
		if !ok {
			return []Verdict{failf(oracle,
				"history of %d effected ops over quorums %s is not linearizable (%d messages dropped)",
				len(history), quorumDesc(sub), fab.Dropped())}
		}
		return []Verdict{okf(oracle, "%d effected ops linearizable across partition/heal (%d messages dropped)", len(history), fab.Dropped())}
	}
	return check, nil
}

// buildNetDef5 deploys the Figure 3 elector on ABD registers over a
// fabric with heavy delay jitter plus duplicate/drop faults — the
// reordering adversary — with process 0 a permanent non-candidate, and
// checks Definition 5 over the run's second half under the usual premises
// (every process suffix-timely, leader outputs stabilized before the
// window).
func buildNetDef5(k *sim.Kernel, env *Env) (Check, error) {
	// Duplicates and delay jitter only — no loss. A dropped quorum
	// message stalls the sender until the retransmit timer fires, a
	// latency spike far beyond anything the monitors' adaptive timeouts
	// settle on, so persistent random loss means persistent spurious
	// suspicions and a leader that never stabilizes. Loss (and its
	// recovery) is the partition targets' domain; this target is the
	// reordering adversary.
	fcfg := net.FabricConfig{
		Seed:            env.Rand().Int63(),
		MinDelay:        1,
		MaxDelay:        2 + env.Rand().Int63n(4),
		DupProb:         0.1 + 0.15*env.Rand().Float64(),
		RetransmitEvery: 32,
	}
	// Δ routes into the link-delay band under the DLS adversary (see
	// buildNetCounter); the jitter the monitors must adapt to is then the
	// plan's pinned delay bound rather than a fixed draw.
	if env.DLS != nil {
		fcfg.MinDelay, fcfg.MaxDelay = 1, 1+env.DLS.Delta
	}
	sub, _, err := net.NewFabric(k, fcfg, net.Config{})
	if err != nil {
		return nil, err
	}
	el, err := elector.Atomic.Build(sub, elector.Config{})
	if err != nil {
		return nil, err
	}
	insts := el.Instances()
	rec := omega.NewRecorder(insts)
	obs := omega.NewObserver(insts)
	k.AfterStep(rec.Sample)
	k.AfterStep(obs.Sample)
	for _, inst := range insts[1:] {
		inst.Candidate.Set(true)
	}
	env.RecordState(func() string { return fmt.Sprint(obs.Leaders()) })
	half := env.Steps / 2
	check := func(k *sim.Kernel, res sim.RunResult) []Verdict {
		const oracle = "net-def5"
		suffix := suffixReport(k, half)
		if !allTimely(suffix, allProcs(k.N()), def5TimelyBound) {
			return []Verdict{vacuousf(oracle,
				"not all processes are suffix-timely within %d (bounds %v)", def5TimelyBound, suffix.Bound)}
		}
		if obs.StabilizedAt() > half {
			return []Verdict{vacuousf(oracle,
				"leader outputs still settling over the faulty network (last change at step %d, window from %d)", obs.StabilizedAt(), half)}
		}
		rep := sim.Analyze(k.Trace().Schedule(), k.N())
		if viols := rec.CheckDefinition5(rep, def5TimelyBound, half, k.Crashed); len(viols) > 0 {
			return []Verdict{failf(oracle, "%s", strings.Join(viols, "; "))}
		}
		return []Verdict{okf(oracle,
			"Definition 5 holds over the final %d steps despite reorder/dup/drop (stabilized at %d)", half, obs.StabilizedAt())}
	}
	return check, nil
}

// quorumDesc formats a substrate's read/write quorum sizes for verdicts.
func quorumDesc(sub *net.Substrate) string {
	r, w := sub.Quorums()
	return fmt.Sprintf("r=%d/w=%d", r, w)
}
