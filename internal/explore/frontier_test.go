package explore

import (
	"reflect"
	"strings"
	"testing"
)

func frontierTargetByName(t *testing.T, name string) Target {
	t.Helper()
	tgt, err := TargetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func TestParseFrontierSpec(t *testing.T) {
	for _, tc := range []struct {
		spec         string
		phis, deltas []int64
	}{
		{"phi=1..4,delta=0..2", []int64{1, 2, 3, 4}, []int64{0, 1, 2}},
		{"phi=1,2,4,8,delta=0,8,32", []int64{1, 2, 4, 8}, []int64{0, 8, 32}},
		{"delta=16,phi=2", []int64{2}, []int64{16}},
		{"phi=4,1..2,delta=0,0,3", []int64{1, 2, 4}, []int64{0, 3}},
	} {
		phis, deltas, err := ParseFrontierSpec(tc.spec)
		if err != nil {
			t.Fatalf("%q: %v", tc.spec, err)
		}
		if !reflect.DeepEqual(phis, tc.phis) || !reflect.DeepEqual(deltas, tc.deltas) {
			t.Fatalf("%q: got phi=%v delta=%v, want phi=%v delta=%v", tc.spec, phis, deltas, tc.phis, tc.deltas)
		}
	}
	for _, bad := range []string{
		"", "phi=1..4", "delta=0..2", "phi=0,delta=1", "phi=1,delta=-1",
		"phi=1,phi=2,delta=0", "phi=8..1,delta=0", "gamma=3,delta=0", "phi=a,delta=0",
	} {
		if _, _, err := ParseFrontierSpec(bad); err == nil {
			t.Fatalf("%q: expected parse error", bad)
		}
	}
}

// TestFrontierSweep runs the probe targets over a small grid and checks the
// acceptance shape: the adaptive monitor passes everywhere, the ablated
// fixed monitors fail at a rate that never decreases along either axis,
// pass at the mildest corner they were calibrated for, and collapse
// entirely at the harshest cell.
func TestFrontierSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier sweep is a multi-run campaign")
	}
	cfg := FrontierConfig{
		Targets: []Target{
			frontierTargetByName(t, "frontier/monitor-adaptive"),
			frontierTargetByName(t, "frontier/monitor-fixed"),
			frontierTargetByName(t, "frontier/monitor-fixed-wide"),
		},
		Phis:     []int64{1, 4, 8},
		Deltas:   []int64{0, 8, 32},
		Seeds:    2,
		BaseSeed: 1,
	}
	doc, err := MapFrontier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != FrontierSchema {
		t.Fatalf("schema %q, want %q", doc.Schema, FrontierSchema)
	}

	byName := map[string]TargetFrontier{}
	for _, tf := range doc.Targets {
		byName[tf.Target] = tf
		for _, c := range tf.Cells {
			if c.Runs != cfg.Seeds || c.Errors != 0 {
				t.Fatalf("%s (%d,%d): runs=%d errors=%d", tf.Target, c.Phi, c.Delta, c.Runs, c.Errors)
			}
			if got := c.Fails + c.Passes + c.Vacuous; got != c.Runs {
				t.Fatalf("%s (%d,%d): outcomes %d != runs %d", tf.Target, c.Phi, c.Delta, got, c.Runs)
			}
		}
	}

	for _, c := range byName["frontier/monitor-adaptive"].Cells {
		if c.Fails != 0 {
			t.Errorf("adaptive monitor fails at (%d,%d): the sound target must pass every cell", c.Phi, c.Delta)
		}
	}
	for _, name := range []string{"frontier/monitor-fixed", "frontier/monitor-fixed-wide"} {
		tf := byName[name]
		// Failure counts must be monotone non-decreasing along both axes.
		nd := len(cfg.Deltas)
		at := func(pi, di int) int { return tf.Cells[pi*nd+di].Fails }
		for pi := range cfg.Phis {
			for di := 1; di < nd; di++ {
				if at(pi, di) < at(pi, di-1) {
					t.Errorf("%s: fails decrease along delta at phi=%d: %d -> %d", name, cfg.Phis[pi], at(pi, di-1), at(pi, di))
				}
			}
		}
		for di := range cfg.Deltas {
			for pi := 1; pi < len(cfg.Phis); pi++ {
				if at(pi, di) < at(pi-1, di) {
					t.Errorf("%s: fails decrease along phi at delta=%d: %d -> %d", name, cfg.Deltas[di], at(pi-1, di), at(pi, di))
				}
			}
		}
		if last := tf.Cells[len(tf.Cells)-1]; last.Fails != last.Runs {
			t.Errorf("%s: harshest cell (%d,%d) fails %d/%d, want total collapse", name, last.Phi, last.Delta, last.Fails, last.Runs)
		}
	}
	if first := byName["frontier/monitor-fixed"].Cells[0]; first.Fails != 0 {
		t.Errorf("monitor-fixed fails %d/%d at its calibration point (1,0)", first.Fails, first.Runs)
	}

	// The JSON document round-trips through its schema check.
	enc, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeFrontier(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, dec) {
		t.Fatal("frontier document does not round-trip")
	}
	if _, err := DecodeFrontier([]byte(`{"schema":"tbwf-bench/v1"}`)); err == nil || !strings.Contains(err.Error(), FrontierSchema) {
		t.Fatalf("wrong-schema decode: got %v, want mention of %q", err, FrontierSchema)
	}

	// The rendered map names every target and shows the grid axes.
	rendered := RenderFrontierMap(doc)
	for _, want := range []string{"frontier/monitor-adaptive", "frontier/monitor-fixed", "ablated", "| Φ \\ Δ |", "**8**"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered map missing %q:\n%s", want, rendered)
		}
	}
}
