package explore

import (
	"fmt"
)

// The shrinker reduces a failure artifact to a smaller plan that still
// fails the *same oracle*. It is classic delta debugging adapted to the
// plan's structure; every candidate is judged by re-executing it, which the
// determinism contract makes exact (no flaky reductions).
//
// Reduction moves, in order:
//
//  1. unpinning — drop the whole prefix and tape: does the bare seed still
//     reproduce? (When it does, the minimal artifact is just a seed.)
//  2. budget halving — fewer steps, prefix trimmed to match;
//  3. crash removal — greedy, one crash at a time;
//  4. prefix hole-punching — ddmin-style: replace chunks of pinned schedule
//     entries with -1 holes at doubling granularity;
//  5. tape truncation — empty tape, then half tape.

// DefaultShrinkAttempts caps re-executions per Shrink call.
const DefaultShrinkAttempts = 200

// ShrinkStats summarizes what a Shrink call did.
type ShrinkStats struct {
	// Attempts is the number of candidate executions performed.
	Attempts int `json:"attempts"`
	// Oracle is the failing oracle the shrinker preserved.
	Oracle string `json:"oracle"`
	// StepsBefore/StepsAfter are the step budgets.
	StepsBefore int64 `json:"steps_before"`
	StepsAfter  int64 `json:"steps_after"`
	// PinnedBefore/PinnedAfter count non-hole prefix entries.
	PinnedBefore int `json:"pinned_before"`
	PinnedAfter  int `json:"pinned_after"`
	// CrashesBefore/CrashesAfter count crash injections.
	CrashesBefore int `json:"crashes_before"`
	CrashesAfter  int `json:"crashes_after"`
	// TapeBefore/TapeAfter are the tape lengths in bits.
	TapeBefore int `json:"tape_before"`
	TapeAfter  int `json:"tape_after"`
}

func (s ShrinkStats) String() string {
	return fmt.Sprintf("%d attempts: steps %d→%d, pinned %d→%d, crashes %d→%d, tape %d→%d (oracle %s)",
		s.Attempts, s.StepsBefore, s.StepsAfter, s.PinnedBefore, s.PinnedAfter,
		s.CrashesBefore, s.CrashesAfter, s.TapeBefore, s.TapeAfter, s.Oracle)
}

// failsSame reports whether the outcome fails the named oracle ("" matches
// any failure).
func failsSame(out *Outcome, oracle string) bool {
	for _, v := range out.Verdicts {
		if !v.OK && (oracle == "" || v.Oracle == oracle) {
			return true
		}
	}
	return false
}

// Shrink minimizes the artifact's plan while preserving its first failing
// oracle, re-executing candidates up to maxAttempts times (<= 0 uses
// DefaultShrinkAttempts). It returns a new artifact for the reduced plan
// (with fresh verdicts and trace hash) and the reduction statistics. The
// input artifact must reproduce its failure, or an error is returned.
func Shrink(a *Artifact, maxAttempts int) (*Artifact, *ShrinkStats, error) {
	if maxAttempts <= 0 {
		maxAttempts = DefaultShrinkAttempts
	}
	stats := &ShrinkStats{
		StepsBefore:   a.Plan.Steps,
		PinnedBefore:  countPinned(a.Plan.Prefix),
		CrashesBefore: len(a.Plan.Crashes),
		TapeBefore:    len(a.Plan.Tape),
	}

	// Baseline: the artifact must reproduce before reduction means anything.
	baseOut, err := SafeExecute(a.Plan)
	stats.Attempts++
	if err != nil {
		return nil, nil, fmt.Errorf("explore: shrink baseline: %w", err)
	}
	fail := baseOut.FirstFailure()
	if fail == nil {
		return nil, nil, fmt.Errorf("explore: artifact does not reproduce: all %d verdicts pass on replay", len(baseOut.Verdicts))
	}
	stats.Oracle = fail.Oracle

	best := clonePlan(a.Plan)
	bestOut := baseOut
	// try executes a candidate and adopts it when it still fails the same
	// oracle. It returns false once the attempt budget is exhausted.
	try := func(cand Plan) bool {
		if stats.Attempts >= maxAttempts {
			return false
		}
		stats.Attempts++
		out, err := SafeExecute(cand)
		if err != nil || !failsSame(out, stats.Oracle) {
			return false
		}
		best = cand
		bestOut = out
		return true
	}

	// 1. Unpin entirely: seed-only reproduction.
	bare := clonePlan(best)
	bare.Prefix = nil
	bare.Tape = ""
	try(bare)

	// 2. Budget halving.
	for best.Steps > 1_000 && stats.Attempts < maxAttempts {
		cand := clonePlan(best)
		cand.Steps = best.Steps / 2
		if int64(len(cand.Prefix)) > cand.Steps {
			cand.Prefix = cand.Prefix[:cand.Steps]
		}
		cand.Crashes = crashesWithin(cand.Crashes, cand.Steps)
		if !try(cand) {
			break
		}
	}

	// 3. Greedy crash removal.
	for i := 0; i < len(best.Crashes) && stats.Attempts < maxAttempts; {
		cand := clonePlan(best)
		cand.Crashes = append(append([]Crash(nil), cand.Crashes[:i]...), cand.Crashes[i+1:]...)
		if !try(cand) {
			i++
		}
	}

	// 4. Hole-punch the prefix at doubling granularity: first try wiping
	// large chunks, then smaller ones. A hole falls back to the stateless
	// rotation, so the remaining pinned entries are the schedule choices the
	// failure actually depends on.
	for chunks := 1; stats.Attempts < maxAttempts; chunks *= 2 {
		pinned := countPinned(best.Prefix)
		if pinned == 0 {
			break
		}
		size := (len(best.Prefix) + chunks - 1) / chunks
		if size < 1 {
			break
		}
		for start := 0; start < len(best.Prefix) && stats.Attempts < maxAttempts; start += size {
			end := start + size
			if end > len(best.Prefix) {
				end = len(best.Prefix)
			}
			if countPinned(best.Prefix[start:end]) == 0 {
				continue
			}
			cand := clonePlan(best)
			for i := start; i < end; i++ {
				cand.Prefix[i] = -1
			}
			try(cand)
		}
		if size == 1 {
			break
		}
	}

	// 5. Tape truncation: all-fresh draws, then keep only the first half.
	if best.Tape != "" {
		cand := clonePlan(best)
		cand.Tape = ""
		if !try(cand) && len(best.Tape) > 1 {
			cand = clonePlan(best)
			cand.Tape = best.Tape[:len(best.Tape)/2]
			try(cand)
		}
	}

	// 6. DLS relaxation: does the failure need the delay bound, the speed
	// bound, both? Each relaxation that still fails narrows the blamed
	// adversary axis (the policy fields themselves are otherwise preserved
	// verbatim through every move above — clonePlan deep-copies them).
	if best.DLS != nil && best.DLS.Delta > 0 {
		cand := clonePlan(best)
		cand.DLS.Delta = 0
		try(cand)
	}
	if best.DLS != nil && best.DLS.Phi > 1 {
		cand := clonePlan(best)
		cand.DLS.Phi = 1
		try(cand)
	}

	stats.StepsAfter = best.Steps
	stats.PinnedAfter = countPinned(best.Prefix)
	stats.CrashesAfter = len(best.Crashes)
	stats.TapeAfter = len(best.Tape)

	min := &Artifact{
		Version:   ArtifactVersion,
		Plan:      best,
		Verdicts:  append([]Verdict(nil), bestOut.Verdicts...),
		TraceHash: bestOut.TraceHash,
		Steps:     bestOut.Steps,
		Err:       bestOut.Err,
		Note:      "shrunk: " + stats.String(),
	}
	return min, stats, nil
}

func countPinned(prefix []int32) int {
	n := 0
	for _, v := range prefix {
		if v >= 0 {
			n++
		}
	}
	return n
}

func crashesWithin(crashes []Crash, steps int64) []Crash {
	var out []Crash
	for _, c := range crashes {
		if c.Step < steps {
			out = append(out, c)
		}
	}
	return out
}

func clonePlan(p Plan) Plan {
	p.Prefix = append([]int32(nil), p.Prefix...)
	p.Crashes = append([]Crash(nil), p.Crashes...)
	if p.DLS != nil {
		d := *p.DLS
		p.DLS = &d
	}
	return p
}
