package elector

import (
	"fmt"

	"tbwf/internal/omega"
	"tbwf/internal/prim"
	"tbwf/internal/register"
)

// Atomic is the paper's Figure 2 + Figure 3 construction: Ω∆ from activity
// monitors and atomic registers (Section 5). Its fault matrix is the
// monitors' faultCntr_p[q] counters.
var Atomic = NewBuilder("atomic", buildAtomic)

func init() {
	// "atomic-registers" is the construction's telemetry name; keeping it
	// as a parse alias lets stored configs round-trip through Parse.
	Register(Atomic, "atomic-registers")
}

// atomicElector wraps the omega.Deployment behind the Elector contract.
type atomicElector struct {
	dep *omega.Deployment
}

func buildAtomic(sub prim.Substrate, cfg Config) (Elector, error) {
	dep, err := omega.BuildWith(sub.N(), sub, func(name string, init int64) prim.Register[int64] {
		return register.SubstrateAtomic(sub, name, init)
	}, omega.BuildOptions{})
	if err != nil {
		return nil, fmt.Errorf("elector: build Ω∆ (registers): %w", err)
	}
	return &atomicElector{dep: dep}, nil
}

func (e *atomicElector) Name() string                 { return "atomic-registers" }
func (e *atomicElector) Instances() []*omega.Instance { return e.dep.Instances }
func (e *atomicElector) Leaders() []int               { return e.dep.Leaders() }
func (e *atomicElector) FaultMatrix() ([][]int64, bool) {
	return e.dep.FaultMatrix(), true
}

// Deployment exposes the underlying omega.Deployment when the elector is
// the atomic-registers construction — for tests and experiments that Peek
// at monitor internals. ok is false for every other implementation.
func Deployment(e Elector) (*omega.Deployment, bool) {
	a, ok := e.(*atomicElector)
	if !ok {
		return nil, false
	}
	return a.dep, true
}
