package elector

import (
	"fmt"

	"tbwf/internal/omega"
	"tbwf/internal/omegaab"
	"tbwf/internal/prim"
)

// Abortable is the paper's Figure 4–6 construction: Ω∆ from abortable
// registers only (Section 6). It maintains no fault matrix — heartbeat
// freshness, not per-pair suspicion counters, drives its leadership rule —
// so FaultMatrix reports not-supported.
var Abortable = NewBuilder("abortable", buildAbortable)

func init() {
	Register(Abortable, "abortable-registers")
}

type abortableElector struct {
	sys *omegaab.System
}

func buildAbortable(sub prim.Substrate, cfg Config) (Elector, error) {
	sys, err := omegaab.Build(sub, cfg.RegisterOptions...)
	if err != nil {
		return nil, fmt.Errorf("elector: build Ω∆ (abortable): %w", err)
	}
	return &abortableElector{sys: sys}, nil
}

func (e *abortableElector) Name() string                 { return "abortable-registers" }
func (e *abortableElector) Instances() []*omega.Instance { return e.sys.Instances }
func (e *abortableElector) Leaders() []int               { return leaderVector(e.sys.Instances) }
func (e *abortableElector) FaultMatrix() ([][]int64, bool) {
	return nil, false
}

// AbortableSystem exposes the underlying omegaab.System when the elector
// is the abortable-registers construction — for abort-statistics taps.
func AbortableSystem(e Elector) (*omegaab.System, bool) {
	a, ok := e.(*abortableElector)
	if !ok {
		return nil, false
	}
	return a.sys, true
}

// leaderVector reads every endpoint's current leader output — a telemetry
// tap; it consumes no process steps.
func leaderVector(insts []*omega.Instance) []int {
	out := make([]int, len(insts))
	for p := range out {
		out[p] = insts[p].Leader.Get()
	}
	return out
}
