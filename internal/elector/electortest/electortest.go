// Package electortest is a conformance suite for elector.Builder
// implementations. Every elector behind the pluggable seam — the paper's
// two constructions and the imported competitors alike — must present the
// same contract on any substrate: n per-process endpoints with correct
// telemetry shape, agreement on a self-electing candidate leader when all
// processes compete, ? at non-candidates, and recovery to a new leader
// when the incumbent withdraws its candidacy.
//
// A substrate test package builds a Harness around a fresh substrate and
// calls Run once per builder; like prim/primtest, the suite never imports
// a substrate itself, so it sits below both and cannot create an import
// cycle. The deterministic Definition 5 check (Recorder.CheckDefinition5
// over a recorded run) lives with the simulation-side tests, since only
// the kernel exposes a schedule to classify timeliness against; this suite
// covers the substrate-independent contract.
package electortest

import (
	"testing"

	"tbwf/internal/elector"
	"tbwf/internal/omega"
	"tbwf/internal/prim"
)

// Harness adapts one substrate instance to the suite.
//
// Run must drive the substrate until done() reports true and then return
// nil, or return an error if the substrate stalls (budget exhausted,
// timeout). It may be called several times in sequence: later calls
// continue the same run. On the simulation kernel that means pumping
// Kernel.Run; on the real-time runtime, polling done while the goroutines
// free-run.
type Harness struct {
	// Sub is the substrate under test, with at least three processes and
	// no tasks spawned yet.
	Sub prim.Substrate
	// Run drives spawned tasks until done() is true.
	Run func(done func() bool) error
}

// Run exercises the elector contract for one builder. mk must return a
// fresh Harness — a new substrate with no tasks — on every call, since
// each subtest deploys its own elector.
func Run(t *testing.T, builder elector.Builder, mk func(t *testing.T) *Harness) {
	t.Run("TelemetryShape", func(t *testing.T) { testTelemetryShape(t, builder, mk(t)) })
	t.Run("ElectsAmongCandidates", func(t *testing.T) { testElects(t, builder, mk(t)) })
	t.Run("NonCandidateOutputsNoLeader", func(t *testing.T) { testNonCandidate(t, builder, mk(t)) })
	t.Run("WithdrawalRecovers", func(t *testing.T) { testWithdrawal(t, builder, mk(t)) })
}

// agreedLeader reports whether the elector's current outputs form a stable-
// looking consensus under the given candidacy pattern: every non-candidate
// outputs ?, every candidate outputs the same ℓ, and ℓ is itself a
// candidate (hence, by the agreement, self-electing).
func agreedLeader(el elector.Elector, candidate []bool) (int, bool) {
	leaders := el.Leaders()
	ell := omega.NoLeader
	for p, l := range leaders {
		if !candidate[p] {
			if l != omega.NoLeader {
				return omega.NoLeader, false
			}
			continue
		}
		if ell == omega.NoLeader {
			ell = l
		} else if l != ell {
			return omega.NoLeader, false
		}
	}
	if ell == omega.NoLeader || ell < 0 || ell >= len(leaders) || !candidate[ell] {
		return omega.NoLeader, false
	}
	return ell, true
}

// The deployed elector exposes n endpoints with the right process IDs, a
// length-n leader vector, and — when supported — an n×n fault matrix.
func testTelemetryShape(t *testing.T, builder elector.Builder, h *Harness) {
	el, err := builder.Build(h.Sub, elector.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if el.Name() == "" {
		t.Error("elector reports an empty Name")
	}
	n := h.Sub.N()
	insts := el.Instances()
	if len(insts) != n {
		t.Fatalf("%d instances for %d processes", len(insts), n)
	}
	for p, inst := range insts {
		if inst.Me != p {
			t.Errorf("instance %d has Me=%d", p, inst.Me)
		}
	}
	if got := len(el.Leaders()); got != n {
		t.Errorf("leader vector has length %d, want %d", got, n)
	}
	if m, ok := el.FaultMatrix(); ok {
		if len(m) != n {
			t.Fatalf("fault matrix has %d rows, want %d", len(m), n)
		}
		for p, row := range m {
			if len(row) != n {
				t.Errorf("fault matrix row %d has %d columns, want %d", p, len(row), n)
			}
		}
	}
}

// With every process a candidate, the elector eventually agrees on one
// self-electing leader.
func testElects(t *testing.T, builder elector.Builder, h *Harness) {
	el, err := builder.Build(h.Sub, elector.Config{})
	if err != nil {
		t.Fatal(err)
	}
	candidate := make([]bool, h.Sub.N())
	for p, inst := range el.Instances() {
		candidate[p] = true
		inst.Candidate.Set(true)
	}
	done := func() bool { _, ok := agreedLeader(el, candidate); return ok }
	if err := h.Run(done); err != nil {
		t.Fatalf("%s never agreed on a leader: %v (leaders %v)", el.Name(), err, el.Leaders())
	}
}

// A permanent non-candidate outputs ? and is never elected: the candidates
// must agree on a leader among themselves (the Definition 5 Ncandidate
// obligations, substrate-independent reading).
func testNonCandidate(t *testing.T, builder elector.Builder, h *Harness) {
	el, err := builder.Build(h.Sub, elector.Config{})
	if err != nil {
		t.Fatal(err)
	}
	candidate := make([]bool, h.Sub.N())
	for p, inst := range el.Instances() {
		if p == 0 {
			continue // process 0 stays an Ncandidate
		}
		candidate[p] = true
		inst.Candidate.Set(true)
	}
	var ell int
	done := func() bool {
		l, ok := agreedLeader(el, candidate)
		if ok {
			ell = l
		}
		return ok
	}
	if err := h.Run(done); err != nil {
		t.Fatalf("%s never agreed around the non-candidate: %v (leaders %v)", el.Name(), err, el.Leaders())
	}
	if ell == 0 {
		t.Fatalf("%s elected the non-candidate process 0", el.Name())
	}
}

// When the incumbent withdraws its candidacy, the remaining candidates
// recover: they agree on a new leader and the withdrawn process returns
// to ?.
func testWithdrawal(t *testing.T, builder elector.Builder, h *Harness) {
	el, err := builder.Build(h.Sub, elector.Config{})
	if err != nil {
		t.Fatal(err)
	}
	candidate := make([]bool, h.Sub.N())
	for p, inst := range el.Instances() {
		candidate[p] = true
		inst.Candidate.Set(true)
	}
	var first int
	agreeFirst := func() bool {
		l, ok := agreedLeader(el, candidate)
		if ok {
			first = l
		}
		return ok
	}
	if err := h.Run(agreeFirst); err != nil {
		t.Fatalf("%s never agreed on an initial leader: %v (leaders %v)", el.Name(), err, el.Leaders())
	}

	candidate[first] = false
	el.Instances()[first].Candidate.Set(false)
	var second int
	agreeSecond := func() bool {
		l, ok := agreedLeader(el, candidate)
		if ok {
			second = l
		}
		return ok
	}
	if err := h.Run(agreeSecond); err != nil {
		t.Fatalf("%s never recovered from leader %d withdrawing: %v (leaders %v)", el.Name(), first, err, el.Leaders())
	}
	if second == first {
		t.Fatalf("%s re-elected the withdrawn leader %d", el.Name(), first)
	}
}
