package elector

import (
	"fmt"

	"tbwf/internal/omega"
	"tbwf/internal/prim"
	"tbwf/internal/register"
)

// Reputation is a penalty-based elector: every process accumulates a
// shared penalty score, and the leader is the active candidate with the
// lexicographically smallest (penalty, id). Two rules feed the scores —
// self-punishment on every candidacy (re-)entry, the paper's Figure 3
// lines 7–8 carried over verbatim, and heartbeat-stall suspicion with
// per-pair adaptive patience, the reputation-decay rule of the arXiv
// 2512.12409 line of work. Its fault matrix counts suspicions:
// matrix[p][q] is how many times p penalized q for a stalled heartbeat.
var Reputation = NewReputation(ReputationOptions{})

func init() {
	Register(Reputation, "reputation-penalty")
}

// reputationInitialPatience is the initial per-pair number of observation
// loops without a heartbeat advance before a candidate suspects a peer. It
// doubles on every suspicion, bounding false suspicions of timely peers.
const reputationInitialPatience = 16

// ReputationOptions selects deliberate ablations of the reputation
// elector for the bake-off's negative controls. The zero value is the
// sound elector.
type ReputationOptions struct {
	// NoPenalty removes every penalty write — both the self-punishment on
	// candidacy entry and the suspicion penalty. All scores stay 0, so the
	// smallest-id active candidate wins forever and perpetual candidacy
	// churn steals leadership on every re-entry — exactly the failure mode
	// the paper proves self-punishment prevents, and a non-Ω∆-correct
	// elector the churn-stability oracle must catch
	// (elector-reputation-nopenalty).
	NoPenalty bool
}

// NewReputation returns a Builder for the reputation elector with the
// given options. Ablated variants are for fuzz negative controls only and
// are not registered in the flag vocabulary.
func NewReputation(opts ReputationOptions) Builder {
	return NewBuilder("reputation", func(sub prim.Substrate, cfg Config) (Elector, error) {
		return buildReputation(sub, opts)
	})
}

type reputationElector struct {
	name      string
	instances []*omega.Instance
	// suspicions[p][q] counts p's heartbeat-stall suspicions of q — the
	// telemetry fault matrix.
	suspicions [][]*prim.Var[int64]
}

// reputationRegs is the shared-register wiring every process's task reads.
type reputationRegs struct {
	// hb[q] is q's heartbeat, written only by q, monotonically increasing.
	hb []prim.Register[int64]
	// cand[q] is q's candidacy advertisement (0/1), written only by q.
	cand []prim.Register[int64]
	// penalty[q] is q's shared penalty score, written by any process.
	penalty []prim.Register[int64]
}

func buildReputation(sub prim.Substrate, opts ReputationOptions) (Elector, error) {
	n := sub.N()
	if n < 2 {
		return nil, fmt.Errorf("elector: reputation: n = %d, need at least 2 processes", n)
	}
	regs := reputationRegs{
		hb:      make([]prim.Register[int64], n),
		cand:    make([]prim.Register[int64], n),
		penalty: make([]prim.Register[int64], n),
	}
	for p := 0; p < n; p++ {
		regs.hb[p] = register.SubstrateAtomic(sub, fmt.Sprintf("Rep/Hb[%d]", p), int64(0))
		regs.cand[p] = register.SubstrateAtomic(sub, fmt.Sprintf("Rep/Cand[%d]", p), int64(0))
		regs.penalty[p] = register.SubstrateAtomic(sub, fmt.Sprintf("Rep/Penalty[%d]", p), int64(0))
	}
	name := "reputation-penalty"
	if opts.NoPenalty {
		name = "reputation-penalty-nopenalty"
	}
	e := &reputationElector{
		name:       name,
		instances:  make([]*omega.Instance, n),
		suspicions: make([][]*prim.Var[int64], n),
	}
	for p := 0; p < n; p++ {
		e.instances[p] = omega.NewInstance(p)
		e.suspicions[p] = make([]*prim.Var[int64], n)
		for q := 0; q < n; q++ {
			e.suspicions[p][q] = prim.NewVar(int64(0))
		}
	}
	for p := 0; p < n; p++ {
		p := p
		sub.Spawn(p, fmt.Sprintf("reputation[%d]", p), func(proc prim.Proc) {
			reputationTask(proc, n, e.instances[p], regs, e.suspicions[p], opts)
		})
	}
	return e, nil
}

func (e *reputationElector) Name() string                 { return e.name }
func (e *reputationElector) Instances() []*omega.Instance { return e.instances }
func (e *reputationElector) Leaders() []int               { return leaderVector(e.instances) }
func (e *reputationElector) FaultMatrix() ([][]int64, bool) {
	n := len(e.instances)
	out := make([][]int64, n)
	for p := 0; p < n; p++ {
		out[p] = make([]int64, n)
		for q := 0; q < n; q++ {
			out[p][q] = e.suspicions[p][q].Get()
		}
	}
	return out, true
}

// reputationTask is one process's main loop. Non-candidates output ?,
// retract their advertisement, and stay out of the protocol; candidates
// heartbeat, watch their peers' heartbeats against per-pair adaptive
// patience, and elect the min-(penalty, id) unsuspected candidate.
func reputationTask(proc prim.Proc, n int, inst *omega.Instance,
	regs reputationRegs, suspicion []*prim.Var[int64], opts ReputationOptions) {
	me := inst.Me
	var (
		hbVal     int64
		lastHb    = make([]int64, n)
		miss      = make([]int64, n)
		patience  = make([]int64, n)
		suspected = make([]bool, n)
		penalty   = make([]int64, n)
		activeSet = make([]int, 0, n)
	)
	for q := 0; q < n; q++ {
		lastHb[q] = -1
		patience[q] = reputationInitialPatience
	}
	for {
		inst.Leader.Set(omega.NoLeader)
		regs.cand[me].Write(0)
		for !inst.Candidate.Get() {
			proc.Step()
		}
		// Self-punishment on (re-)entry (Figure 3 lines 7–8): a process
		// that joins and leaves the competition forever accumulates an
		// unbounded penalty and is eventually never chosen.
		if !opts.NoPenalty {
			regs.penalty[me].Write(regs.penalty[me].Read() + 1)
		}
		regs.cand[me].Write(1)
		for inst.Candidate.Get() {
			hbVal++
			regs.hb[me].Write(hbVal)
			activeSet = activeSet[:0]
			for q := 0; q < n; q++ {
				if q == me {
					activeSet = append(activeSet, q)
					continue
				}
				// A fresh heartbeat clears suspicion; a stall past the
				// pair's patience raises it once and doubles the patience,
				// so a timely peer is suspected only finitely often.
				if v := regs.hb[q].Read(); v != lastHb[q] {
					lastHb[q] = v
					miss[q] = 0
					suspected[q] = false
				} else if miss[q]++; miss[q] > patience[q] && !suspected[q] {
					suspected[q] = true
					patience[q] *= 2
					suspicion[q].Set(suspicion[q].Get() + 1)
					if !opts.NoPenalty {
						regs.penalty[q].Write(regs.penalty[q].Read() + 1)
					}
				}
				if !suspected[q] && regs.cand[q].Read() == 1 {
					activeSet = append(activeSet, q)
				}
			}
			for _, q := range activeSet {
				penalty[q] = regs.penalty[q].Read()
			}
			inst.Leader.Set(minByPenaltyThenID(activeSet, penalty))
			proc.Step()
		}
	}
}

// minByPenaltyThenID returns ℓ such that (penalty[ℓ], ℓ) is the
// lexicographic minimum over the given set — the same leader choice rule
// as Figure 3 line 14 and Figure 6 line 48.
func minByPenaltyThenID(set []int, penalty []int64) int {
	best := -1
	for _, q := range set {
		if best == -1 || penalty[q] < penalty[best] || (penalty[q] == penalty[best] && q < best) {
			best = q
		}
	}
	return best
}
