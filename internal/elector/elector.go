// Package elector is the pluggable Ω∆ seam: every leader-elector
// implementation in the repo deploys behind the same two-sided contract,
// so the composition root (internal/deploy), the telemetry layers
// (internal/serve, internal/monitor taps) and the fuzz/experiment drivers
// never name a concrete construction.
//
// The contract has two halves:
//
//   - Builder constructs an elector on any prim.Substrate. Builders are
//     registered by flag name ("atomic", "abortable", "nerio",
//     "reputation"); Parse maps the user-facing vocabulary — including the
//     legacy -omega aliases — onto them.
//   - Elector is a deployed instance: its tasks are already spawned, and it
//     exposes the uniform telemetry surface every consumer reads — the
//     per-process endpoints (omega.Instance: candidate_p in, leader_p out),
//     the live leader vector, and a per-pair fault/penalty matrix with an
//     explicit "not supported" shape instead of a nil sentinel.
//
// The paper's two constructions (internal/omega, Figures 2–3; and
// internal/omegaab, Figures 4–6) are two implementations among peers here;
// nerio.go and reputation.go add two competitors from the related work so
// that Definition 5 conformance is a differentiating, checkable property
// (see internal/elector/electortest and the explore elector-* fuzz
// targets) rather than an assumption baked into the composition root.
package elector

import (
	"fmt"
	"sort"
	"strings"

	"tbwf/internal/omega"
	"tbwf/internal/prim"
)

// Elector is a deployed Ω∆ implementation: per-process endpoints plus the
// uniform telemetry surface. All methods are telemetry taps — they consume
// no process steps and are safe to call from outside the substrate's tasks
// (samplers, AfterStep hooks, HTTP handlers).
type Elector interface {
	// Name identifies the implementation for telemetry and reports
	// ("atomic-registers", "abortable-registers", "nerio-lease",
	// "reputation-penalty").
	Name() string
	// Instances returns the per-process Ω∆ endpoints: Instances()[p] is
	// process p's candidate input and leader output.
	Instances() []*omega.Instance
	// Leaders returns every process's current leader output.
	Leaders() []int
	// FaultMatrix returns the implementation's per-pair fault/penalty
	// matrix — matrix[p][q] counts how many times p held q against the
	// leadership choice (suspicions, penalties, or depositions, per the
	// implementation) — or ok=false when the implementation maintains no
	// such matrix (the Figure 4–6 construction has no fault counters).
	FaultMatrix() (matrix [][]int64, ok bool)
}

// Config carries the substrate-independent knobs a Builder consumes.
type Config struct {
	// RegisterOptions apply to every abortable register the elector
	// creates. Electors built purely from atomic registers ignore them.
	RegisterOptions []prim.AbOption
}

// Builder constructs one elector implementation on a substrate. FlagName
// is the canonical user-facing name ("atomic", ...); Build wires the
// registers, spawns the tasks, and returns the deployed instance.
type Builder interface {
	FlagName() string
	Build(sub prim.Substrate, cfg Config) (Elector, error)
}

// builderFunc adapts a name and a function to Builder.
type builderFunc struct {
	name  string
	build func(sub prim.Substrate, cfg Config) (Elector, error)
}

func (b builderFunc) FlagName() string { return b.name }
func (b builderFunc) Build(sub prim.Substrate, cfg Config) (Elector, error) {
	return b.build(sub, cfg)
}

// NewBuilder wraps a construction function as a registrable Builder.
func NewBuilder(flagName string, build func(sub prim.Substrate, cfg Config) (Elector, error)) Builder {
	return builderFunc{name: flagName, build: build}
}

// registry maps flag names to builders; aliases maps the legacy -omega
// vocabulary (and the telemetry names) back onto flag names.
var (
	registry = map[string]Builder{}
	aliases  = map[string]string{}
)

// Register adds a builder to the registry. Registering a duplicate flag
// name panics: the registry is assembled at init time and a collision is a
// programming error.
func Register(b Builder, names ...string) {
	name := b.FlagName()
	if name == "" {
		panic("elector: builder with empty flag name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("elector: duplicate builder %q", name))
	}
	registry[name] = b
	for _, a := range names {
		if a == name {
			continue
		}
		if prev, dup := aliases[a]; dup && prev != name {
			panic(fmt.Sprintf("elector: alias %q already maps to %q", a, prev))
		}
		aliases[a] = name
	}
}

// Names returns the registered flag names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName resolves a registered builder by its exact flag name.
func ByName(name string) (Builder, error) {
	if b, ok := registry[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("elector: unknown elector %q (accepted values: %s)",
		name, strings.Join(Names(), ", "))
}

// Parse maps the user-facing flag vocabulary to a Builder: the canonical
// names, the registered aliases (the legacy -omega values and telemetry
// names), and "" for the default (atomic). The error lists the accepted
// values.
func Parse(s string) (Builder, error) {
	if s == "" {
		s = "atomic"
	}
	if canonical, ok := aliases[s]; ok {
		s = canonical
	}
	return ByName(s)
}

// Resolve maps the -elector flag and the legacy -omega alias flag to one
// builder. Either may be empty (both empty defaults to atomic); setting
// both to different electors is an error rather than a silent preference.
func Resolve(electorFlag, omegaFlag string) (Builder, error) {
	b, err := Parse(electorFlag)
	if err != nil {
		return nil, err
	}
	if omegaFlag == "" {
		return b, nil
	}
	legacy, err := Parse(omegaFlag)
	if err != nil {
		return nil, err
	}
	if electorFlag != "" && legacy.FlagName() != b.FlagName() {
		return nil, fmt.Errorf("elector: -elector %q conflicts with legacy -omega %q", electorFlag, omegaFlag)
	}
	if electorFlag == "" {
		return legacy, nil
	}
	return b, nil
}
