package elector

import (
	"fmt"

	"tbwf/internal/omega"
	"tbwf/internal/prim"
	"tbwf/internal/register"
)

// Nerio is an epoch/lease elector in the style of van Renesse's Nerio
// coordinator design: leadership is a deterministic function of a shared
// epoch number (leader of epoch e is process e mod n), the incumbent
// proves liveness by renewing a lease register, and a candidate that
// misses enough renewals deposes the incumbent by advancing the epoch.
// Each deposition a process performs doubles its own patience, so a timely
// incumbent is deposed only finitely often and the epoch — hence the
// leader — stabilizes. Its fault matrix counts depositions: matrix[p][q]
// is how many times p advanced the epoch away from incumbent q.
var Nerio = NewNerio(NerioOptions{})

func init() {
	Register(Nerio, "nerio-lease")
}

// nerioInitialPatience is the initial number of observation loops a
// candidate waits without seeing a lease renewal before deposing the
// incumbent. It doubles on every deposition the candidate performs, so the
// exact value only shifts how fast patience adapts.
const nerioInitialPatience = 16

// NerioOptions selects deliberate ablations of the Nerio elector for the
// bake-off's negative controls. The zero value is the sound elector.
type NerioOptions struct {
	// NoDepose removes the epoch advance: incumbents are never deposed,
	// so the epoch freezes at 0 and leadership sticks to process 0
	// regardless of candidacy, timeliness, or crashes — a non-Ω∆-correct
	// elector the Definition 5 oracle must catch (elector-nerio-nodepose).
	NoDepose bool
}

// NewNerio returns a Builder for the Nerio elector with the given
// options. Ablated variants are for fuzz negative controls only and are
// not registered in the flag vocabulary.
func NewNerio(opts NerioOptions) Builder {
	return NewBuilder("nerio", func(sub prim.Substrate, cfg Config) (Elector, error) {
		return buildNerio(sub, opts)
	})
}

type nerioElector struct {
	name      string
	instances []*omega.Instance
	// depositions[p][q] counts p's depositions of incumbent q — the
	// telemetry fault matrix. Vars are RWMutex-guarded, safe for samplers.
	depositions [][]*prim.Var[int64]
}

func buildNerio(sub prim.Substrate, opts NerioOptions) (Elector, error) {
	n := sub.N()
	if n < 2 {
		return nil, fmt.Errorf("elector: nerio: n = %d, need at least 2 processes", n)
	}
	epoch := register.SubstrateAtomic(sub, "Nerio/Epoch", int64(0))
	lease := make([]prim.Register[int64], n)
	for p := 0; p < n; p++ {
		lease[p] = register.SubstrateAtomic(sub, fmt.Sprintf("Nerio/Lease[%d]", p), int64(0))
	}
	name := "nerio-lease"
	if opts.NoDepose {
		name = "nerio-lease-nodepose"
	}
	e := &nerioElector{
		name:        name,
		instances:   make([]*omega.Instance, n),
		depositions: make([][]*prim.Var[int64], n),
	}
	for p := 0; p < n; p++ {
		e.instances[p] = omega.NewInstance(p)
		e.depositions[p] = make([]*prim.Var[int64], n)
		for q := 0; q < n; q++ {
			e.depositions[p][q] = prim.NewVar(int64(0))
		}
	}
	for p := 0; p < n; p++ {
		p := p
		sub.Spawn(p, fmt.Sprintf("nerio[%d]", p), func(proc prim.Proc) {
			nerioTask(proc, n, e.instances[p], epoch, lease, e.depositions[p], opts)
		})
	}
	return e, nil
}

func (e *nerioElector) Name() string                 { return e.name }
func (e *nerioElector) Instances() []*omega.Instance { return e.instances }
func (e *nerioElector) Leaders() []int               { return leaderVector(e.instances) }
func (e *nerioElector) FaultMatrix() ([][]int64, bool) {
	n := len(e.instances)
	out := make([][]int64, n)
	for p := 0; p < n; p++ {
		out[p] = make([]int64, n)
		for q := 0; q < n; q++ {
			out[p][q] = e.depositions[p][q].Get()
		}
	}
	return out, true
}

// nerioTask is one process's main loop. Non-candidates output ? and stay
// out of the protocol entirely (the Figure 3 idiom); candidates follow the
// epoch, the incumbent renews its lease once per loop, and observers count
// missed renewals against their adaptive patience.
func nerioTask(proc prim.Proc, n int, inst *omega.Instance,
	epochReg prim.Register[int64], lease []prim.Register[int64],
	depose []*prim.Var[int64], opts NerioOptions) {
	me := inst.Me
	var (
		epoch     int64
		leaseVal  int64 // my own lease counter, monotone across candidacies
		lastLease int64 = -1
		miss      int64
		patience  int64 = nerioInitialPatience
	)
	for {
		inst.Leader.Set(omega.NoLeader)
		for !inst.Candidate.Get() {
			proc.Step()
		}
		for inst.Candidate.Get() {
			if e := epochReg.Read(); e != epoch {
				epoch = e
				lastLease = -1
				miss = 0
			}
			ell := int(epoch % int64(n))
			inst.Leader.Set(ell)
			if ell == me {
				leaseVal++
				lease[me].Write(leaseVal)
			} else {
				v := lease[ell].Read()
				if v != lastLease {
					lastLease = v
					miss = 0
				} else if miss++; miss > patience && !opts.NoDepose {
					// Depose: advance the epoch iff nobody else already
					// has. Two racing deposers write the same successor, so
					// the epoch advances by exactly one either way.
					if cur := epochReg.Read(); cur == epoch {
						epochReg.Write(epoch + 1)
						depose[ell].Set(depose[ell].Get() + 1)
						patience *= 2
					}
					miss = 0
				}
			}
			proc.Step()
		}
	}
}
