// The external test package lets these tests borrow internal/deploy's Sim
// substrate adapter (deploy sits above elector in the import graph).
package elector_test

import (
	"strings"
	"testing"

	"tbwf/internal/deploy"
	. "tbwf/internal/elector"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// simSub adapts a fresh kernel to prim.Substrate for Build calls.
func simSub(n int) prim.Substrate { return deploy.Sim(sim.New(n)) }

func TestNamesCoversTheBakeoffField(t *testing.T) {
	got := Names()
	want := []string{"abortable", "atomic", "nerio", "reputation"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestParseResolvesCanonicalAliasAndDefault(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "atomic"}, // the default elector
		{"atomic", "atomic"},
		{"atomic-registers", "atomic"}, // legacy -omega vocabulary
		{"abortable", "abortable"},
		{"abortable-registers", "abortable"},
		{"nerio", "nerio"},
		{"nerio-lease", "nerio"},
		{"reputation", "reputation"},
		{"reputation-penalty", "reputation"},
	}
	for _, tc := range cases {
		b, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if b.FlagName() != tc.want {
			t.Errorf("Parse(%q) = %q, want %q", tc.in, b.FlagName(), tc.want)
		}
	}
}

func TestParseRejectsUnknownWithVocabulary(t *testing.T) {
	_, err := Parse("paxos")
	if err == nil {
		t.Fatal("Parse accepted an unknown elector")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

func TestResolveArbitratesElectorAndLegacyOmega(t *testing.T) {
	cases := []struct {
		elector, omega string
		want           string
		wantErr        bool
	}{
		{"", "", "atomic", false},                // both empty: default
		{"nerio", "", "nerio", false},            // -elector alone
		{"", "abortable", "abortable", false},    // legacy -omega alone
		{"nerio", "nerio-lease", "nerio", false}, // agreeing spellings
		{"nerio", "abortable", "", true},         // conflict is an error
		{"", "paxos", "", true},                  // unknown legacy value
		{"bogus", "", "", true},                  // unknown elector value
		{"atomic", "atomic-registers", "atomic", false},
	}
	for _, tc := range cases {
		b, err := Resolve(tc.elector, tc.omega)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Resolve(%q, %q) accepted, want error", tc.elector, tc.omega)
			}
			continue
		}
		if err != nil {
			t.Errorf("Resolve(%q, %q): %v", tc.elector, tc.omega, err)
			continue
		}
		if b.FlagName() != tc.want {
			t.Errorf("Resolve(%q, %q) = %q, want %q", tc.elector, tc.omega, b.FlagName(), tc.want)
		}
	}
}

// Ablated variants carry distinguishable telemetry names, so a fuzz
// artifact or serve report can never pass one off as the sound elector;
// they share the sound builder's flag name but are not registered.
func TestAblatedVariantsAreNamedAndUnregistered(t *testing.T) {
	cases := []struct {
		builder  Builder
		wantName string
	}{
		{NewNerio(NerioOptions{NoDepose: true}), "nerio-lease-nodepose"},
		{NewReputation(ReputationOptions{NoPenalty: true}), "reputation-penalty-nopenalty"},
	}
	for _, tc := range cases {
		el, err := tc.builder.Build(simSub(3), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if el.Name() != tc.wantName {
			t.Errorf("ablated elector Name() = %q, want %q", el.Name(), tc.wantName)
		}
		if _, err := Parse(tc.wantName); err == nil {
			t.Errorf("ablated name %q resolves via Parse; ablations must stay out of the flag vocabulary", tc.wantName)
		}
	}
}

// The concrete-type accessors recover the underlying deployments for
// consumers that need construction-specific telemetry, and refuse
// foreign electors.
func TestConcreteAccessors(t *testing.T) {
	at, err := Atomic.Build(simSub(3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Deployment(at); !ok {
		t.Error("Deployment() rejected the atomic elector")
	}
	if _, ok := AbortableSystem(at); ok {
		t.Error("AbortableSystem() accepted the atomic elector")
	}
	ab, err := Abortable.Build(simSub(3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := AbortableSystem(ab); !ok {
		t.Error("AbortableSystem() rejected the abortable elector")
	}
	if m, ok := ab.FaultMatrix(); ok || m != nil {
		t.Error("the abortable elector claims a fault matrix; Figures 4-6 keep no fault counters")
	}
}

func TestBuildersRejectTooFewProcesses(t *testing.T) {
	for _, name := range Names() {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Build(simSub(1), Config{}); err == nil {
			t.Errorf("%s accepted a 1-process substrate", name)
		}
	}
}
