package net

import "sync"

// Node is one ABD replica: a passive store mapping register names to the
// highest-timestamped (value, timestamp) pair it has been asked to hold.
// Handle is a pure request→reply state machine, so the same Node serves
// both transports: the fabric invokes it synchronously at message
// delivery, the TCP node server from its connection goroutines (hence the
// mutex — uncontended on the single-threaded fabric).
//
// Nodes are deliberately crash-free: the fault model puts crashes at the
// client processes (kernel crash injection, partition events that isolate
// a client) while the replica set plays the always-on majority that ABD
// assumes. A register survives any minority of nodes being unreachable.
type Node struct {
	mu   sync.Mutex
	id   int
	regs map[string]*slot

	// Handled counts processed requests, for telemetry and tests.
	handled int64
}

// slot is one register's replica state. A zero timestamp means "never
// written": the client substitutes the register's initial value, which it
// knows and every node would only have to agree on.
type slot struct {
	ts  Timestamp
	val any
}

// NewNode creates replica node id.
func NewNode(id int) *Node {
	return &Node{id: id, regs: make(map[string]*slot)}
}

// ID returns the node's replica index.
func (nd *Node) ID() int { return nd.id }

// Handled returns the number of requests the node has processed.
func (nd *Node) Handled() int64 {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.handled
}

// Handle processes one request and produces its reply. Write-phase
// requests are idempotent (the node only moves forward in timestamp
// order), so duplicated or retransmitted messages are harmless.
func (nd *Node) Handle(req Request) Reply {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.handled++
	s := nd.regs[req.Reg]
	if s == nil {
		s = &slot{}
		nd.regs[req.Reg] = s
	}
	rep := Reply{Op: req.Op, Phase: req.Phase, Node: nd.id, Src: req.Src}
	switch req.Phase {
	case phaseWrite:
		// Reply with the *prior* timestamp: a prior newer than the writer's
		// basis is the protocol's contention signal.
		rep.TS, rep.Has = s.ts, !s.ts.IsZero()
		if s.ts.Less(req.TS) {
			s.ts, s.val = req.TS, req.Val
		}
	default: // phaseRead
		rep.TS, rep.Val, rep.Has = s.ts, s.val, !s.ts.IsZero()
	}
	return rep
}
