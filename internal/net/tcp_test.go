package net

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"tbwf/internal/elector"
	"tbwf/internal/elector/electortest"
	"tbwf/internal/prim"
	"tbwf/internal/prim/primtest"
	"tbwf/internal/rt"
)

// Frames survive the length-prefixed gob round trip, including an untyped
// nil value (a register that was never written).
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{Op: 9, Phase: phaseWrite, Reg: "qa[0].D", To: 2, Src: -1, Client: 1,
		TS: Timestamp{C: 3, Tag: 513}, Val: int64(77)}
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || out.Phase != in.Phase || out.Reg != in.Reg || out.TS != in.TS || out.Val != in.Val {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	buf.Reset()
	rep := Reply{Op: 9, Phase: phaseRead, Node: 2, TS: Timestamp{}, Val: nil, Has: false}
	if err := writeFrame(&buf, &rep); err != nil {
		t.Fatal(err)
	}
	var got Reply
	if err := readFrame(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Val != nil || got.Has {
		t.Fatalf("nil value round trip: got %+v", got)
	}
}

// tcpFixture is a single-OS-process loopback deploy: an rt runtime hosts
// the tasks of all three processes, and three replica nodes listen on
// loopback TCP sockets.
type tcpFixture struct {
	rt  *rt.Runtime
	sub *Substrate
	tr  *TCP
}

func newTCPFixture(t *testing.T, cfg Config) *tcpFixture {
	t.Helper()
	r := rt.New(3, nil)
	peers := make([]string, 3)
	for i := 0; i < 3; i++ {
		srv, err := ListenNode("127.0.0.1:0", NewNode(i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		peers[i] = srv.Addr()
	}
	sub, tr, err := NewTCP(r, r.Stopping(), TCPConfig{
		Peers:           peers,
		RetransmitEvery: 5 * time.Millisecond,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := r.Stop(); err != nil {
			t.Errorf("runtime stop: %v", err)
		}
	})
	return &tcpFixture{rt: r, sub: sub, tr: tr}
}

func pollDone(timeout time.Duration) func(done func() bool) error {
	return func(done func() bool) error {
		deadline := time.Now().Add(timeout)
		for !done() {
			if time.Now().After(deadline) {
				return fmt.Errorf("done condition not reached in %v", timeout)
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}
}

// The TCP-backed net substrate passes the prim conformance suite. CI runs
// this package under -race, which makes the suite double as a data-race
// check on the engine, the per-peer outboxes, and the node servers.
func TestTCPSubstrateConformance(t *testing.T) {
	primtest.Run(t, func(t *testing.T) *primtest.Harness {
		f := newTCPFixture(t, Config{})
		return &primtest.Harness{
			Sub:   f.sub,
			Run:   pollDone(20 * time.Second),
			Crash: f.rt.Crash,
		}
	})
}

// The Figure 3 elector passes the elector conformance suite over real TCP
// sockets — same algorithm code, third substrate. One elector keeps the
// wall-clock cost bounded; the full bake-off matrix runs on the
// deterministic fabric (TestElectorConformanceFabric).
func TestTCPElectorConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("elector over TCP loopback needs wall-clock seconds; skipped in -short mode")
	}
	electortest.Run(t, elector.Atomic, func(t *testing.T) *electortest.Harness {
		f := newTCPFixture(t, Config{})
		return &electortest.Harness{
			Sub: f.sub,
			Run: pollDone(60 * time.Second),
		}
	})
}

// Block severs links at the transport: with a majority of replicas still
// reachable operations keep completing, and once too few remain the next
// operation stalls until the link is restored — the live partition-
// injection hook the serve layer exposes.
func TestTCPBlockPartitionsAndRecovers(t *testing.T) {
	f := newTCPFixture(t, Config{})
	reg := prim.NewRegister[int64](f.sub, "b", 0)
	step := make(chan struct{})
	vals := make(chan int64, 3)
	f.sub.Spawn(0, "prober", func(p prim.Proc) {
		for range step {
			reg.Write(1)
			vals <- reg.Read()
		}
	})
	next := func() int64 {
		t.Helper()
		step <- struct{}{}
		select {
		case v := <-vals:
			return v
		case <-time.After(10 * time.Second):
			t.Fatal("operation stalled")
			return 0
		}
	}
	if v := next(); v != 1 {
		t.Fatalf("read %d, want 1", v)
	}
	f.tr.Block(2, true) // one replica down: majority remains
	if v := next(); v != 1 {
		t.Fatalf("read %d with one node blocked, want 1", v)
	}
	f.tr.Block(1, true) // two down: no quorum — must stall
	stalled := make(chan struct{})
	go func() {
		step <- struct{}{}
		<-vals
		close(stalled)
	}()
	select {
	case <-stalled:
		t.Fatal("quorum operation completed with a majority of replicas blocked")
	case <-time.After(200 * time.Millisecond):
	}
	f.tr.Block(1, false)
	f.tr.Block(2, false)
	select {
	case <-stalled:
	case <-time.After(10 * time.Second):
		t.Fatal("operation did not recover after the heal")
	}
	if f.tr.Dropped() == 0 {
		t.Fatal("blocked links dropped no messages")
	}
	close(step)
}

// BenchmarkNetRegister measures quorum operation latency over TCP
// loopback: what one ABD read (two quorum round trips) and one write
// cost through real sockets. TCP register operations are driven directly
// from the bench goroutine — the transport parks on channels, not on a
// scheduler, so no task context is needed.
func BenchmarkNetRegister(b *testing.B) {
	r := rt.New(3, nil)
	peers := make([]string, 3)
	var servers []*NodeServer
	for i := 0; i < 3; i++ {
		srv, err := ListenNode("127.0.0.1:0", NewNode(i))
		if err != nil {
			b.Fatal(err)
		}
		servers = append(servers, srv)
		peers[i] = srv.Addr()
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()
	sub, _, err := NewTCP(r, r.Stopping(), TCPConfig{
		Peers:           peers,
		RetransmitEvery: 5 * time.Millisecond,
	}, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Stop()
	reg := prim.NewRegister[int64](sub, "bench", 0)
	reg.Write(1)
	b.Run("read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reg.Read()
		}
	})
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reg.Write(int64(i))
		}
	})
}
