package net

import (
	"fmt"
	"testing"

	"tbwf/internal/elector"
	"tbwf/internal/elector/electortest"
	"tbwf/internal/prim/primtest"
	"tbwf/internal/sim"
)

// The fabric-backed net substrate passes the prim conformance suite: the
// same contract the simulation and real-time substrates present, with
// every register operation now an ABD quorum round over the deterministic
// message fabric. The harness pumps the kernel in slices, exactly like the
// sim harness in internal/deploy.
func TestFabricSubstrateConformance(t *testing.T) {
	primtest.Run(t, func(t *testing.T) *primtest.Harness {
		k := sim.New(3)
		sub, _, err := NewFabric(k, FabricConfig{Seed: 42, MaxDelay: 3}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return &primtest.Harness{
			Sub: sub,
			Run: func(done func() bool) error {
				for i := 0; i < 100; i++ {
					res, err := k.Run(100_000)
					if err != nil {
						return err
					}
					if done() {
						return nil
					}
					if res.Idle {
						return fmt.Errorf("kernel idle at step %d with work unfinished", res.Steps)
					}
				}
				return fmt.Errorf("step budget exhausted at %d with work unfinished", k.Step())
			},
			Crash: k.Crash,
		}
	})
}

// Every registered elector passes the elector conformance suite on the
// fabric-backed net substrate with zero algorithm-code changes — the
// acceptance criterion that the quorum registers really are drop-in
// substitutes for shared memory.
func TestElectorConformanceFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("electors need millions of fabric steps to stabilize; skipped in -short mode")
	}
	for _, name := range elector.Names() {
		builder, err := elector.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			electortest.Run(t, builder, func(t *testing.T) *electortest.Harness {
				k := sim.New(3)
				sub, _, err := NewFabric(k, FabricConfig{Seed: 17, MaxDelay: 2}, Config{})
				if err != nil {
					t.Fatal(err)
				}
				return &electortest.Harness{
					Sub: sub,
					Run: func(done func() bool) error {
						for i := 0; i < 100; i++ {
							res, err := k.Run(100_000)
							if err != nil {
								return err
							}
							if done() {
								return nil
							}
							if res.Idle {
								return fmt.Errorf("kernel idle at step %d with the elector unsettled", res.Steps)
							}
						}
						return fmt.Errorf("step budget exhausted at %d with the elector unsettled", k.Step())
					},
				}
			})
		})
	}
}
