package net

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"tbwf/internal/sim"
)

// FabricConfig shapes the deterministic in-process network.
type FabricConfig struct {
	// Seed drives every random draw (delays, drops, duplicates). The same
	// seed and kernel schedule reproduce the same run byte-for-byte.
	Seed int64
	// MinDelay and MaxDelay bound per-message delivery delay in kernel
	// steps (uniform draw, inclusive). Zero values default to [1, 3].
	MinDelay, MaxDelay int64
	// DropProb and DupProb are per-message loss/duplication probabilities.
	DropProb, DupProb float64
	// RetransmitEvery is how many parked steps an operation waits before
	// resending to non-responding nodes (default 64). Retransmission is
	// what lets operations survive drops and heal after partitions.
	RetransmitEvery int64
	// Partitions is a schedule of partition events applied at their kernel
	// steps, in order. An event with no groups heals the network.
	Partitions []PartitionEvent
}

// PartitionEvent cuts the network into groups at a kernel step. Messages
// cross the cut in neither direction; a process listed in no group is a
// singleton (isolated). Groups cover both roles of a process index — its
// clients and its replica node — since a partition separates machines,
// not roles. Empty Groups heals all cuts.
type PartitionEvent struct {
	Step   int64   `json:"step"`
	Groups [][]int `json:"groups,omitempty"`
}

// envelope is one in-flight message. seq breaks delivery ties so heap
// order — and therefore the whole run — is deterministic.
type envelope struct {
	at  int64
	seq uint64
	src int // sending process (link-fault endpoint)
	dst int // receiving process
	req *Request
	rep *Reply
}

type envHeap []*envelope

func (h envHeap) Len() int { return len(h) }
func (h envHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h envHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *envHeap) Push(x any)   { *h = append(*h, x.(*envelope)) }
func (h *envHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Fabric is the deterministic in-process transport: messages travel as
// envelopes through a delay heap drained by a kernel AfterStep hook, so
// delivery interleaves with the schedule the fuzzer controls. All
// randomness comes from one seeded source drawn in deterministic order.
type Fabric struct {
	k     *sim.Kernel
	e     *engine
	nodes []*Node
	rng   *rand.Rand
	cfg   FabricConfig

	heap    envHeap
	seq     uint64
	group   []int // group[p] = partition group of process p; -1 isolated
	cut     bool
	events  []PartitionEvent
	dropped int64
}

// NewFabric builds a net substrate whose transport is a deterministic
// fabric driven by k's scheduler. The kernel must not have run yet (the
// fabric registers an AfterStep hook). One replica node per process.
func NewFabric(k *sim.Kernel, fcfg FabricConfig, cfg Config) (*Substrate, *Fabric, error) {
	if fcfg.MinDelay == 0 && fcfg.MaxDelay == 0 {
		fcfg.MinDelay, fcfg.MaxDelay = 1, 3
	}
	if fcfg.MinDelay < 0 || fcfg.MaxDelay < fcfg.MinDelay {
		return nil, nil, fmt.Errorf("net: delay range [%d,%d] invalid", fcfg.MinDelay, fcfg.MaxDelay)
	}
	if fcfg.RetransmitEvery <= 0 {
		fcfg.RetransmitEvery = 64
	}
	f := &Fabric{
		k:      k,
		rng:    rand.New(rand.NewSource(fcfg.Seed)),
		cfg:    fcfg,
		events: append([]PartitionEvent(nil), fcfg.Partitions...),
	}
	sort.SliceStable(f.events, func(i, j int) bool { return f.events[i].Step < f.events[j].Step })
	// The substrate's host is the raw kernel held behind hostSub, so the
	// SimKernel capability is not forwarded and internal/register's typed
	// fast paths cannot bypass the quorum protocol.
	sub, err := newSubstrate(k, f, cfg)
	if err != nil {
		return nil, nil, err
	}
	f.e = sub.e
	f.nodes = make([]*Node, k.N())
	for i := range f.nodes {
		f.nodes[i] = NewNode(i)
	}
	k.AfterStep(f.afterStep)
	return sub, f, nil
}

// Nodes exposes the replica nodes, for tests and telemetry.
func (f *Fabric) Nodes() []*Node { return f.nodes }

// Dropped returns how many messages faults have discarded.
func (f *Fabric) Dropped() int64 { return f.dropped }

// SetPartition cuts the network into groups immediately (see
// PartitionEvent for semantics). Call with no groups to heal.
func (f *Fabric) SetPartition(groups ...[]int) {
	if len(groups) == 0 {
		f.cut = false
		f.group = nil
		return
	}
	f.cut = true
	f.group = make([]int, f.k.N())
	for i := range f.group {
		f.group[i] = -1
	}
	for g, ps := range groups {
		for _, p := range ps {
			if p >= 0 && p < len(f.group) {
				f.group[p] = g
			}
		}
	}
}

// blocked reports whether the partition severs the src→dst link.
func (f *Fabric) blocked(src, dst int) bool {
	if !f.cut || src == dst {
		return false
	}
	if src < 0 || src >= len(f.group) || dst < 0 || dst >= len(f.group) {
		return true
	}
	return f.group[src] < 0 || f.group[dst] < 0 || f.group[src] != f.group[dst]
}

// post enqueues one message after drawing its fate (drop, duplicate,
// delay) from the seeded source. Draws happen in a fixed order per
// message so the stream stays aligned across replays.
func (f *Fabric) post(src, dst int, req *Request, rep *Reply) {
	drop := f.cfg.DropProb > 0 && f.rng.Float64() < f.cfg.DropProb
	dup := f.cfg.DupProb > 0 && f.rng.Float64() < f.cfg.DupProb
	copies := 1
	if drop {
		copies = 0
		f.dropped++
	} else if dup {
		copies = 2
	}
	for c := 0; c < copies; c++ {
		delay := f.cfg.MinDelay
		if f.cfg.MaxDelay > f.cfg.MinDelay {
			delay += f.rng.Int63n(f.cfg.MaxDelay - f.cfg.MinDelay + 1)
		}
		f.seq++
		heap.Push(&f.heap, &envelope{
			at: f.k.Step() + delay, seq: f.seq,
			src: src, dst: dst, req: req, rep: rep,
		})
	}
}

// send implements transport: requests enter the fabric from the calling
// task's process.
func (f *Fabric) send(req Request) {
	r := req
	r.Src = f.k.CurrentProc()
	f.post(r.Src, r.To, &r, nil)
}

// park implements transport: the operation yields one kernel step; every
// RetransmitEvery parks it resends to nodes that have not replied.
func (f *Fabric) park(p *pending) bool {
	f.k.OpStep()
	p.parks++
	return p.parks%f.cfg.RetransmitEvery == 0
}

// afterStep applies due partition events and delivers due messages. The
// partition check happens at delivery, not at send: a message in flight
// when the cut lands is lost, exactly like a real network.
func (f *Fabric) afterStep(step int64) {
	for len(f.events) > 0 && f.events[0].Step <= step {
		f.SetPartition(f.events[0].Groups...)
		f.events = f.events[1:]
	}
	for len(f.heap) > 0 && f.heap[0].at <= step {
		env := heap.Pop(&f.heap).(*envelope)
		if f.blocked(env.src, env.dst) {
			f.dropped++
			continue
		}
		if env.req != nil {
			rep := f.nodes[env.dst].Handle(*env.req)
			f.post(env.dst, env.req.Src, nil, &rep)
			continue
		}
		f.e.onReply(*env.rep)
	}
}
