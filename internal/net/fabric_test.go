package net

import (
	"sync/atomic"
	"testing"

	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// Two runs from the same fabric seed execute the same messages: same drop
// count, same per-node handled counts, same values read. This is the
// property the explore plans (and their replay artifacts) stand on.
func TestFabricDeterministic(t *testing.T) {
	run := func() (vals [3]int64, dropped int64, handled [3]int64) {
		k := sim.New(3)
		sub, fab, err := NewFabric(k, FabricConfig{
			Seed:     99,
			MinDelay: 1,
			MaxDelay: 4,
			DropProb: 0.2,
			DupProb:  0.1,
		}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		reg := prim.NewRegister[int64](sub, "d", 0)
		var done [3]atomic.Bool
		for p := 0; p < 3; p++ {
			p := p
			sub.Spawn(p, "worker", func(proc prim.Proc) {
				for i := 0; i < 8; i++ {
					reg.Write(int64(p*100 + i))
					vals[p] = reg.Read()
				}
				done[p].Store(true)
			})
		}
		if _, err := k.Run(200_000); err != nil {
			t.Fatal(err)
		}
		for p := range done {
			if !done[p].Load() {
				t.Fatalf("worker %d did not finish", p)
			}
		}
		k.Shutdown()
		for i, nd := range fab.Nodes() {
			handled[i] = nd.Handled()
		}
		return vals, fab.Dropped(), handled
	}
	v1, d1, h1 := run()
	v2, d2, h2 := run()
	if v1 != v2 || d1 != d2 || h1 != h2 {
		t.Fatalf("same seed diverged: vals %v vs %v, dropped %d vs %d, handled %v vs %v",
			v1, v2, d1, d2, h1, h2)
	}
	if d1 == 0 {
		t.Fatal("expected drops at DropProb 0.2")
	}
}

// A partition event stalls a minority-side client's quorum operation (its
// messages to the majority are cut), and the heal event lets the pending
// operation finish through retransmission.
func TestFabricPartitionStallsUntilHeal(t *testing.T) {
	const cut, heal = 100, 6_000
	k := sim.New(3)
	sub, fab, err := NewFabric(k, FabricConfig{
		Seed:            7,
		RetransmitEvery: 16,
		Partitions: []PartitionEvent{
			{Step: cut, Groups: [][]int{{0, 1}, {2}}},
			{Step: heal},
		},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := prim.NewRegister[int64](sub, "r", 0)
	var wroteAt atomic.Int64
	wroteAt.Store(-1)
	sub.Spawn(2, "isolated", func(proc prim.Proc) {
		for k.Step() < cut+10 {
			proc.Step()
		}
		reg.Write(42) // needs a majority: must stall until the heal
		wroteAt.Store(k.Step())
	})
	if _, err := k.Run(50_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if at := wroteAt.Load(); at < heal {
		t.Fatalf("isolated client's write finished at step %d, inside the partition window [%d, %d)", at, cut, heal)
	}
	if fab.Dropped() == 0 {
		t.Fatal("partition dropped no messages")
	}
}

// Configuration validation: quorum sizes must fit the process count, and
// Restrict needs a valid process.
func TestFabricConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		n    int
		cfg  Config
	}{
		{"read quorum too large", 3, Config{ReadQuorum: 4}},
		{"write quorum too small", 3, Config{WriteQuorum: -1}},
		{"restrict out of range", 3, Config{Restrict: true, Only: 5}},
		{"single process", 1, Config{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := sim.New(tc.n)
			defer k.Shutdown()
			if _, _, err := NewFabric(k, FabricConfig{Seed: 1}, tc.cfg); err == nil {
				t.Fatalf("NewFabric accepted %+v on n=%d", tc.cfg, tc.n)
			}
		})
	}
}

// The quorum engine cannot attribute a conflicting operation to a process,
// and the documented prim.Op contract for that case is Proc == -1 — never
// a fabricated id. Seed the replicas with disagreeing timestamps directly
// and watch every policy consultation.
func TestAbortPolicySeesProcMinusOne(t *testing.T) {
	k := sim.New(3)
	sub, fab, err := NewFabric(k, FabricConfig{Seed: 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Three replicas, three different histories for register "r": any read
	// quorum of two disagrees.
	for i, nd := range fab.Nodes() {
		nd.Handle(Request{Op: uint64(i + 1), Phase: phaseWrite, Reg: "r", To: i,
			TS: Timestamp{C: int64(i + 1), Tag: int64(i + 1)}, Val: int64(i * 10)})
	}
	var ops []prim.Op
	capture := prim.AbortPolicyFunc(func(op prim.Op) bool {
		ops = append(ops, op)
		return true
	})
	reg := prim.NewAbortable[int64](sub, "r", 0, prim.WithAbortPolicy(capture))
	var done atomic.Bool
	sub.Spawn(0, "prober", func(proc prim.Proc) {
		if _, ok := reg.Read(); ok {
			t.Error("disagreeing quorum read did not abort under AlwaysAbort-style policy")
		}
		done.Store(true)
	})
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if !done.Load() {
		t.Fatal("prober did not finish")
	}
	if len(ops) == 0 {
		t.Fatal("abort policy was never consulted")
	}
	for _, op := range ops {
		if op.Proc != -1 {
			t.Fatalf("policy op fabricated a process id: %+v", op)
		}
		if op.Register != "r" {
			t.Fatalf("policy op names register %q, want r", op.Register)
		}
	}
}

// The substrate must not forward the simulation kernel's identity to
// register.SubstrateAtomic's fast-path probe: every register op has to go
// through the quorum engine, or the fabric's faults would silently stop
// applying to "net" registers on a sim host.
func TestNoSimFastPathBypass(t *testing.T) {
	k := sim.New(3)
	sub, fab, err := NewFabric(k, FabricConfig{Seed: 5}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := prim.NewRegister[int64](sub, "fp", 0)
	var done atomic.Bool
	sub.Spawn(0, "writer", func(proc prim.Proc) {
		reg.Write(7)
		if got := reg.Read(); got != 7 {
			t.Errorf("read %d after write 7", got)
		}
		done.Store(true)
	})
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if !done.Load() {
		t.Fatal("writer did not finish")
	}
	var handled int64
	for _, nd := range fab.Nodes() {
		handled += nd.Handled()
	}
	if handled == 0 {
		t.Fatal("register ops bypassed the quorum engine: no replica handled a message")
	}
}
