package net

// The wire vocabulary of the ABD protocol: every register operation is one
// or two broadcast phases, each a Request fanned out to the replica nodes
// and a quorum of Replies collected back. The same structs cross both
// transports — in-process envelopes on the deterministic fabric, gob
// frames on TCP — so the protocol code is transport-blind.

// Timestamp orders writes. C is the ABD counter; Tag breaks ties between
// writes that picked the same counter concurrently (it encodes the writing
// engine and its operation sequence, so it is globally unique and the
// order on Timestamps is total).
type Timestamp struct {
	C   int64
	Tag int64
}

// Less is the total order on timestamps.
func (t Timestamp) Less(o Timestamp) bool {
	return t.C < o.C || (t.C == o.C && t.Tag < o.Tag)
}

// IsZero reports whether the timestamp predates every write.
func (t Timestamp) IsZero() bool { return t.C == 0 && t.Tag == 0 }

// Request phases. A read-phase request collects (timestamp, value) pairs;
// a write-phase request asks the node to advance the register to (TS, Val)
// if that is newer than what it holds.
const (
	phaseRead  uint8 = 1
	phaseWrite uint8 = 2
)

// Request is one client-to-node protocol message.
type Request struct {
	// Op identifies the broadcast: replies echo it so the engine can match
	// them to the waiting operation. Each phase is its own broadcast.
	Op uint64
	// Phase is phaseRead or phaseWrite.
	Phase uint8
	// Reg names the register.
	Reg string
	// To is the destination node.
	To int
	// Src is the sending process, used by the fabric for link-level fault
	// (partition) decisions; -1 when the transport cannot attribute (TCP).
	Src int
	// Client identifies the sending engine, for reply routing on
	// transports that need it.
	Client int
	// TS and Val carry the write-phase payload; unused on reads.
	TS  Timestamp
	Val any
}

// Reply is one node-to-client protocol message.
type Reply struct {
	// Op and Phase echo the request.
	Op    uint64
	Phase uint8
	// Node is the replying node.
	Node int
	// Src echoes the request's source process for fabric routing.
	Src int
	// TS is the node's timestamp: current on reads, prior (pre-apply) on
	// writes — the write-phase conflict signal.
	TS Timestamp
	// Val is the node's value on reads.
	Val any
	// Has reports whether the node holds a written value (TS is non-zero).
	Has bool
}
