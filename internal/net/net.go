// Package net is the message-passing substrate: a third prim.Substrate
// whose atomic and abortable registers are implemented by ABD-style
// majority replication over a pluggable transport, so the single
// composition root (internal/deploy) assembles every stack — the four
// object types, all registered electors, the abortable Ω∆ — on a set of
// replicas connected only by messages.
//
// The protocol is the classic two-phase quorum dance (Attiya, Bar-Noy,
// Dolev): a read phase collects (timestamp, value) pairs from a read
// quorum and takes the maximum; a write phase pushes a timestamped value
// to a write quorum (the written value for writes, the maximum back for
// reads, which is what makes reads linearizable). Timestamps are
// (counter, tag) pairs where the tag encodes the writing engine and its
// operation sequence, so concurrent writes at the same counter still have
// a total order. With both quorums a majority the registers are atomic
// under any pattern of message delay, loss, duplication and
// minority-isolating partition; shrinking the read quorum below the
// overlap threshold (Config.ReadQuorum = 1) is the fuzz campaign's
// quorum-breaking ablation.
//
// Abortable registers layer the paper's contention semantics on top: a
// read-phase quorum that disagrees on the timestamp reveals a write in
// flight, and a write-phase reply whose prior timestamp exceeds the
// operation's basis reveals a write that landed mid-operation. At either
// conflict point the engine consults the register's AbortPolicy —
// with Op.Proc = -1, since a quorum protocol cannot attribute the
// *other* operation (and on TCP not even its own) to a process — and, for
// conflicts seen before the write phase, the EffectPolicy decides whether
// the aborted write still goes out. A conflict that only surfaces in the
// write-phase replies aborts the operation after its effect, which the
// abortable-register contract explicitly allows ("an aborted write may or
// may not take effect").
//
// Two transports implement the seam: Fabric, an in-process deterministic
// network driven by the simulation kernel's scheduler with seeded
// per-link delays and injectable partition/reorder/duplicate/drop faults
// (fully replayable by the fuzzer's Plan machinery), and TCP, real
// sockets with length-prefixed gob frames and per-peer reconnect, so
// tbwf-serve deploys one replica per OS process.
package net

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tbwf/internal/prim"
)

// Config shapes a net substrate.
type Config struct {
	// ReadQuorum and WriteQuorum size the two phases' reply quorums; 0
	// means a majority (n/2+1). Linearizability needs
	// ReadQuorum+WriteQuorum > n; smaller read quorums are deliberate
	// ablations for the fuzz campaign.
	ReadQuorum, WriteQuorum int
	// Restrict limits Spawn to process Only. The distributed TCP deploy
	// runs one replica per OS process: each process builds the full stack
	// but only animates its own process's tasks. The zero value spawns
	// everything.
	Restrict bool
	Only     int
}

// hostSub is what the substrate needs from its host: task scheduling.
// Both sim.Kernel and rt.Runtime satisfy it.
type hostSub interface {
	prim.Spawner
	N() int
}

// transport carries protocol messages and parks waiting operations.
type transport interface {
	// send ships one request towards req.To; it may drop it (faults, dead
	// peers) — the engine's retransmit loop recovers.
	send(req Request)
	// park blocks or yields the calling task once; it returns true when
	// the engine should retransmit the operation's outstanding requests.
	park(p *pending) bool
}

// Substrate is a prim.Substrate whose registers are ABD-replicated over a
// transport. It deliberately does NOT expose a SimKernel capability even
// when fabric-hosted: the typed fast paths in internal/register must not
// bypass the quorum registers.
type Substrate struct {
	host hostSub
	e    *engine
	only int
}

var _ prim.Substrate = (*Substrate)(nil)

// newSubstrate validates cfg and wires the engine; the transport is
// installed by the transport-specific constructors.
func newSubstrate(host hostSub, tr transport, cfg Config) (*Substrate, error) {
	n := host.N()
	if n < 2 {
		return nil, fmt.Errorf("net: n = %d, need at least 2 replicas", n)
	}
	rq, wq := cfg.ReadQuorum, cfg.WriteQuorum
	if rq == 0 {
		rq = n/2 + 1
	}
	if wq == 0 {
		wq = n/2 + 1
	}
	if rq < 1 || rq > n || wq < 1 || wq > n {
		return nil, fmt.Errorf("net: quorums %d/%d out of range for n=%d", rq, wq, n)
	}
	only := -1
	if cfg.Restrict {
		if cfg.Only < 0 || cfg.Only >= n {
			return nil, fmt.Errorf("net: only=%d out of range for n=%d", cfg.Only, n)
		}
		only = cfg.Only
	}
	id := 0
	if only >= 0 {
		id = only
	}
	e := &engine{
		n:      n,
		id:     int64(id),
		tr:     tr,
		readQ:  rq,
		writeQ: wq,
		pend:   make(map[uint64]*pending),
	}
	return &Substrate{host: host, e: e, only: only}, nil
}

// Spawn implements prim.Spawner, filtered to the local process in
// one-replica-per-OS-process deploys.
func (s *Substrate) Spawn(proc int, name string, fn func(p prim.Proc)) {
	if s.only >= 0 && proc != s.only {
		return
	}
	s.host.Spawn(proc, name, fn)
}

// N returns the number of processes (= replica nodes).
func (s *Substrate) N() int { return s.e.n }

// SubstrateName identifies the substrate for telemetry.
func (s *Substrate) SubstrateName() string { return "net" }

// NewRegisterAny creates a named atomic quorum register.
func (s *Substrate) NewRegisterAny(name string, init any) prim.Register[any] {
	return &Atomic{reg: reg{e: s.e, name: name, init: init}}
}

// NewAbortableAny creates a named abortable quorum register honoring the
// shared abort/effect policy vocabulary.
func (s *Substrate) NewAbortableAny(name string, init any, opts ...prim.AbOption) prim.AbortableRegister[any] {
	return &Abortable{reg: reg{e: s.e, name: name, init: init}, cfg: prim.ApplyAbOptions(opts...)}
}

// Quorums returns the effective (read, write) quorum sizes.
func (s *Substrate) Quorums() (int, int) { return s.e.readQ, s.e.writeQ }

// pending is one in-flight broadcast phase: the engine waits until `need`
// distinct nodes have replied.
type pending struct {
	op      uint64
	need    int
	replies map[int]Reply
	ready   chan struct{} // closed when the quorum is complete (TCP park)
	parks   int64         // fabric park counter, drives retransmits
}

// engine runs the client half of the protocol: it broadcasts phases,
// matches replies, and retransmits to non-responding nodes. One engine is
// shared by every register of a substrate instance; on the fabric all
// operations run under the single-threaded kernel, on TCP the mutex earns
// its keep.
type engine struct {
	n      int
	id     int64 // engine identity, folded into write tags
	tr     transport
	readQ  int
	writeQ int

	mu   sync.Mutex
	seq  uint64
	pend map[uint64]*pending
}

// next allocates a broadcast/op sequence number.
func (e *engine) next() uint64 {
	e.mu.Lock()
	e.seq++
	s := e.seq
	e.mu.Unlock()
	return s
}

// tag builds a globally unique write tag: engine identity in the low
// bits, the engine-local sequence above. Engines are replica-indexed
// (< 256 in any sane deploy), so tags from different engines never
// collide.
func (e *engine) tag(seq uint64) int64 {
	return int64(seq)<<8 | (e.id & 0xff)
}

// onReply delivers one node reply; transports call it from their receive
// path.
func (e *engine) onReply(r Reply) {
	e.mu.Lock()
	p := e.pend[r.Op]
	if p != nil {
		if _, dup := p.replies[r.Node]; !dup {
			p.replies[r.Node] = r
			if len(p.replies) == p.need {
				close(p.ready)
			}
		}
	}
	e.mu.Unlock()
}

// broadcast runs one phase: fan a request out to every node and park until
// `need` distinct replies are in, retransmitting to the laggards whenever
// the transport says the operation has waited long enough.
func (e *engine) broadcast(reg string, phase uint8, ts Timestamp, val any, need int) map[int]Reply {
	op := e.next()
	p := &pending{op: op, need: need, replies: make(map[int]Reply, e.n), ready: make(chan struct{})}
	e.mu.Lock()
	e.pend[op] = p
	e.mu.Unlock()
	req := Request{Op: op, Phase: phase, Reg: reg, Client: int(e.id), TS: ts, Val: val}
	for q := 0; q < e.n; q++ {
		req.To = q
		e.tr.send(req)
	}
	for {
		e.mu.Lock()
		if len(p.replies) >= need {
			reps := p.replies
			delete(e.pend, op)
			e.mu.Unlock()
			return reps
		}
		e.mu.Unlock()
		if e.tr.park(p) {
			for q := 0; q < e.n; q++ {
				e.mu.Lock()
				_, have := p.replies[q]
				e.mu.Unlock()
				if !have {
					req.To = q
					e.tr.send(req)
				}
			}
		}
	}
}

// summarize reduces a read-phase quorum to the freshest (ts, val) pair,
// and reports whether any replying node held a written value and whether
// the quorum disagreed on the timestamp (the in-flight-write signal).
// All reductions are order-independent, so iterating the reply map is
// deterministic.
func summarize(reps map[int]Reply) (ts Timestamp, val any, has, disagree bool) {
	first := true
	for _, r := range reps {
		if r.Has {
			has = true
		}
		if first {
			ts, val, first = r.TS, r.Val, false
			continue
		}
		if r.TS != ts {
			disagree = true
		}
		if ts.Less(r.TS) {
			ts, val = r.TS, r.Val
		}
	}
	return ts, val, has, disagree
}

// reg is the shared half of both register flavors.
type reg struct {
	e    *engine
	name string
	init any

	ops    atomic.Int64 // per-register operation sequence, for policy Ops
	reads  atomic.Int64
	writes atomic.Int64
	rAbort atomic.Int64
	wAbort atomic.Int64
}

// Name returns the register's name.
func (r *reg) Name() string { return r.name }

// Stats returns the register's client-side operation counters.
func (r *reg) Stats() prim.Stats {
	return prim.Stats{
		Reads:       r.reads.Load(),
		Writes:      r.writes.Load(),
		ReadAborts:  r.rAbort.Load(),
		WriteAborts: r.wAbort.Load(),
	}
}

// readPhase runs the read phase and substitutes the initial value when no
// node has been written yet.
func (r *reg) readPhase() (ts Timestamp, val any, has, disagree bool) {
	ts, val, has, disagree = summarize(r.e.broadcast(r.name, phaseRead, Timestamp{}, nil, r.e.readQ))
	if !has {
		val = r.init
	}
	return ts, val, has, disagree
}

// Atomic is an ABD atomic register: reads write back the maximum they
// found, so non-concurrent reads never run backwards.
type Atomic struct{ reg }

var _ prim.Register[any] = (*Atomic)(nil)

// Read returns the register's current value.
func (r *Atomic) Read() any {
	r.reads.Add(1)
	r.ops.Add(1)
	ts, val, has, _ := r.readPhase()
	if has {
		// Write-back: once this read returns v, every later read finds a
		// timestamp >= ts in its own quorum.
		r.e.broadcast(r.name, phaseWrite, ts, val, r.e.writeQ)
	}
	return val
}

// Write replaces the register's value.
func (r *Atomic) Write(v any) {
	r.writes.Add(1)
	r.ops.Add(1)
	seq := r.e.next()
	ts, _, _, _ := r.readPhase()
	nt := Timestamp{C: ts.C + 1, Tag: r.e.tag(seq)}
	r.e.broadcast(r.name, phaseWrite, nt, v, r.e.writeQ)
}

// Abortable is the quorum register with the paper's contention semantics.
type Abortable struct {
	reg
	cfg prim.AbConfig
}

var _ prim.AbortableRegister[any] = (*Abortable)(nil)

// policyOp builds the Op handed to abort/effect policies. Proc is always
// -1: a quorum engine cannot attribute the conflicting operation — and on
// TCP not even its own — to a process, and the documented contract for
// such substrates is -1, never a fabricated id.
func (r *Abortable) policyOp(isWrite bool, seq int64) prim.Op {
	return prim.Op{Register: r.name, Proc: -1, IsWrite: isWrite, Step: seq}
}

// Read returns the value, or ok=false when contention aborted it. The
// write-back still repairs the quorum either way, so an aborted read
// leaves the register cleaner than it found it.
func (r *Abortable) Read() (any, bool) {
	r.reads.Add(1)
	seq := r.ops.Add(1)
	ts, val, has, disagree := r.readPhase()
	contended := disagree
	if has {
		for _, rp := range r.e.broadcast(r.name, phaseWrite, ts, val, r.e.writeQ) {
			if ts.Less(rp.TS) {
				contended = true // a write landed between the phases
			}
		}
	}
	if contended && r.cfg.Abort.Abort(r.policyOp(false, seq)) {
		r.rAbort.Add(1)
		return nil, false
	}
	return val, true
}

// Write replaces the value, or returns false when contention aborted it.
func (r *Abortable) Write(v any) bool {
	r.writes.Add(1)
	seq := r.ops.Add(1)
	op := r.policyOp(true, seq)
	wseq := r.e.next()
	ts, _, _, disagree := r.readPhase()
	nt := Timestamp{C: ts.C + 1, Tag: r.e.tag(wseq)}
	if disagree && r.cfg.Abort.Abort(op) {
		// Conflict seen before the write phase: the effect policy decides
		// whether the aborted write still goes out.
		if r.cfg.Effect.TakesEffect(op) {
			r.e.broadcast(r.name, phaseWrite, nt, v, r.e.writeQ)
		}
		r.wAbort.Add(1)
		return false
	}
	late := false
	for _, rp := range r.e.broadcast(r.name, phaseWrite, nt, v, r.e.writeQ) {
		if nt.Less(rp.TS) {
			late = true // a concurrent write beat us to a node
		}
	}
	if late && r.cfg.Abort.Abort(op) {
		// The conflict only surfaced in the write-phase replies: the write
		// took effect, which the contract allows for aborted writes.
		r.wAbort.Add(1)
		return false
	}
	return true
}
