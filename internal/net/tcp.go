package net

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	stdnet "net"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"tbwf/internal/prim"
)

// The TCP transport: real sockets between one OS process per replica.
// Each client process keeps one connection per peer node, managed by a
// writer goroutine that dials with backoff and a reader goroutine that
// feeds replies back to the engine. Frames are 4-byte big-endian length
// prefixes followed by a self-contained gob encoding (a fresh
// encoder/decoder per frame, so reconnects never desynchronize stream
// state). Loss is embraced rather than masked: a send to a dead, slow, or
// blocked peer is dropped and the engine's retransmit loop recovers, the
// same mechanism that rides out partitions on the fabric.

// gobInit registers every concrete type that may cross a register as
// `any`, from the prim wire-type registry plus the builtins.
var gobInit sync.Once

func registerGobTypes() {
	gobInit.Do(func() {
		seen := map[reflect.Type]bool{}
		reg := func(v any) {
			t := reflect.TypeOf(v)
			if v == nil || seen[t] {
				return
			}
			seen[t] = true
			gob.Register(v)
		}
		for _, v := range []any{int64(0), int(0), false, "", float64(0), Timestamp{}} {
			reg(v)
		}
		for _, v := range prim.WireTypes() {
			reg(v)
		}
	})
}

// TCPConfig shapes the TCP transport.
type TCPConfig struct {
	// Peers lists the replica node addresses, indexed by node id. Length
	// must equal the substrate's N.
	Peers []string
	// RetransmitEvery is how long an operation waits for its quorum before
	// resending to non-responding nodes (default 50ms).
	RetransmitEvery time.Duration
	// DialBackoffMax caps the reconnect backoff (default 2s; starts at
	// 100ms and doubles).
	DialBackoffMax time.Duration
	// OutboxDepth bounds each peer's send queue (default 1024); sends
	// beyond it drop, and retransmission recovers.
	OutboxDepth int
}

// TCP is the socket transport for a net substrate.
type TCP struct {
	e        *engine
	n        int
	stopping <-chan struct{}
	cfg      TCPConfig
	out      []chan Request
	blocked  []atomic.Bool
	sent     atomic.Int64
	dropped  atomic.Int64
}

// NewTCP builds a net substrate whose transport is real TCP. host drives
// the tasks (typically an rt.Runtime); stopping ends the transport's
// goroutines and unwinds parked operations. One replica node per process:
// cfg.Only selects which process's tasks this OS process animates (-1 for
// a single-process loopback deploy that runs them all).
func NewTCP(host interface {
	prim.Spawner
	N() int
}, stopping <-chan struct{}, tcfg TCPConfig, cfg Config) (*Substrate, *TCP, error) {
	registerGobTypes()
	if len(tcfg.Peers) != host.N() {
		return nil, nil, fmt.Errorf("net: %d peers for n=%d", len(tcfg.Peers), host.N())
	}
	if tcfg.RetransmitEvery <= 0 {
		tcfg.RetransmitEvery = 50 * time.Millisecond
	}
	if tcfg.DialBackoffMax <= 0 {
		tcfg.DialBackoffMax = 2 * time.Second
	}
	if tcfg.OutboxDepth <= 0 {
		tcfg.OutboxDepth = 1024
	}
	t := &TCP{
		n:        host.N(),
		stopping: stopping,
		cfg:      tcfg,
		out:      make([]chan Request, host.N()),
		blocked:  make([]atomic.Bool, host.N()),
	}
	sub, err := newSubstrate(host, t, cfg)
	if err != nil {
		return nil, nil, err
	}
	t.e = sub.e
	for i := range t.out {
		t.out[i] = make(chan Request, tcfg.OutboxDepth)
		go t.peerLoop(i)
	}
	return sub, t, nil
}

// Block severs (or restores) the link to one peer node: blocked sends are
// dropped before they reach the socket. It is the live partition-
// injection hook for serve deploys.
func (t *TCP) Block(node int, blocked bool) {
	if node >= 0 && node < t.n {
		t.blocked[node].Store(blocked)
	}
}

// Sent and Dropped report transport telemetry.
func (t *TCP) Sent() int64    { return t.sent.Load() }
func (t *TCP) Dropped() int64 { return t.dropped.Load() }

// send implements transport. TCP cannot attribute the sending task to a
// process, so Src stays -1 (the same contract that keeps Op.Proc at -1).
func (t *TCP) send(req Request) {
	req.Src = -1
	if t.blocked[req.To].Load() {
		t.dropped.Add(1)
		return
	}
	select {
	case t.out[req.To] <- req:
		t.sent.Add(1)
	default:
		t.dropped.Add(1)
	}
}

// park implements transport: wait for the quorum, a retransmit deadline,
// or shutdown.
func (t *TCP) park(p *pending) bool {
	timer := time.NewTimer(t.cfg.RetransmitEvery)
	defer timer.Stop()
	select {
	case <-p.ready:
		return false
	case <-t.stopping:
		prim.ExitTask("net: transport stopped")
		return false
	case <-timer.C:
		return true
	}
}

// peerLoop owns the connection to one peer node: dial with backoff, pump
// the outbox through it, feed replies back, redial on any error.
func (t *TCP) peerLoop(node int) {
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-t.stopping:
			return
		default:
		}
		conn, err := stdnet.DialTimeout("tcp", t.cfg.Peers[node], time.Second)
		if err != nil {
			select {
			case <-t.stopping:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > t.cfg.DialBackoffMax {
				backoff = t.cfg.DialBackoffMax
			}
			continue
		}
		backoff = 100 * time.Millisecond
		t.pump(node, conn)
	}
}

// pump writes outbox frames and reads reply frames until either direction
// fails or the transport stops.
func (t *TCP) pump(node int, conn stdnet.Conn) {
	defer conn.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			var rep Reply
			if err := readFrame(conn, &rep); err != nil {
				return
			}
			t.e.onReply(rep)
		}
	}()
	for {
		select {
		case <-t.stopping:
			return
		case <-done:
			return
		case req := <-t.out[node]:
			if err := writeFrame(conn, &req); err != nil {
				// The request is lost with the connection; retransmission
				// re-issues it once we redial.
				t.dropped.Add(1)
				return
			}
		}
	}
}

// NodeServer hosts one replica node behind a TCP listener.
type NodeServer struct {
	node *Node
	ln   stdnet.Listener

	mu    sync.Mutex
	conns map[stdnet.Conn]struct{}
	done  bool
}

// ListenNode serves node on addr (use "127.0.0.1:0" to pick a free port;
// Addr reports the bound address). Each accepted connection is a
// request→reply loop: decode a Request frame, Handle it, write the Reply.
func ListenNode(addr string, node *Node) (*NodeServer, error) {
	registerGobTypes()
	ln, err := stdnet.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &NodeServer{node: node, ln: ln, conns: make(map[stdnet.Conn]struct{})}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's bound address.
func (s *NodeServer) Addr() string { return s.ln.Addr().String() }

// Node returns the replica this server hosts.
func (s *NodeServer) Node() *Node { return s.node }

// Close stops the listener and all live connections.
func (s *NodeServer) Close() {
	s.mu.Lock()
	s.done = true
	conns := make([]stdnet.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (s *NodeServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *NodeServer) serveConn(conn stdnet.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		var req Request
		if err := readFrame(conn, &req); err != nil {
			return
		}
		rep := s.node.Handle(req)
		if err := writeFrame(conn, &rep); err != nil {
			return
		}
	}
}

// writeFrame encodes v with a fresh gob encoder behind a 4-byte
// big-endian length prefix, written in one Write call.
func writeFrame(w io.Writer, v any) error {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err := w.Write(b)
	return err
}

// maxFrame bounds a frame to keep a corrupt length prefix from forcing a
// giant allocation.
const maxFrame = 16 << 20

// readFrame reads one length-prefixed frame and gob-decodes it into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return fmt.Errorf("net: frame length %d out of range", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}
