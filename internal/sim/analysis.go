package sim

// This file measures timeliness from a recorded schedule, so experiments
// report which processes actually *were* timely in a run rather than
// assuming the schedule behaved as configured.
//
// Definitions from the paper (Section 3):
//
//	Def 1: p is q-timely if p is correct and there is an i ≥ 1 such that
//	       every time interval containing i steps of q has a step of p.
//	Def 2: p is timely if p is q-timely for every q; equivalently, there is
//	       an i such that every i consecutive system steps include a step
//	       of p.
//
// For a finite recorded run, the analyzer computes the *observed* bounds:
// the smallest i that works for the run seen so far. A process is reported
// timely relative to a caller-supplied threshold; unbounded (no steps at
// all) is reported as Unbounded.

// Unbounded is returned as a bound when no finite bound exists in the
// observed run (the process took no steps).
const Unbounded int64 = -1

// TimelinessReport summarizes the timeliness structure of a recorded
// schedule for n processes.
type TimelinessReport struct {
	// N is the number of processes.
	N int
	// Len is the number of steps analyzed.
	Len int64
	// StepsOf[p] counts p's steps.
	StepsOf []int64
	// Bound[p] is the smallest i such that every window of i consecutive
	// steps contains a step of p (Def 2, observed), or Unbounded.
	Bound []int64
	// PairBound[p][q] is the smallest i such that every interval
	// containing i steps of q has a step of p (Def 1, observed), or
	// Unbounded. PairBound[p][p] is 1 when p takes steps.
	PairBound [][]int64
}

// Analyze computes a TimelinessReport from a schedule recorded by the
// kernel (Trace.Schedule) for n processes.
func Analyze(schedule []int32, n int) *TimelinessReport {
	r := &TimelinessReport{
		N:         n,
		Len:       int64(len(schedule)),
		StepsOf:   make([]int64, n),
		Bound:     make([]int64, n),
		PairBound: make([][]int64, n),
	}
	// gap[p]: consecutive steps without p, in the current p-free run.
	// maxGap[p]: largest such run anywhere (including prefix/suffix).
	gap := make([]int64, n)
	maxGap := make([]int64, n)
	// since[p][q]: q's steps since p's last step; pairMax[p][q]: max over
	// all p-free intervals.
	since := make([][]int64, n)
	pairMax := make([][]int64, n)
	for p := 0; p < n; p++ {
		since[p] = make([]int64, n)
		pairMax[p] = make([]int64, n)
		r.PairBound[p] = make([]int64, n)
	}

	for _, s32 := range schedule {
		s := int(s32)
		if s < 0 || s >= n {
			continue
		}
		r.StepsOf[s]++
		for p := 0; p < n; p++ {
			if p == s {
				if gap[p] > maxGap[p] {
					maxGap[p] = gap[p]
				}
				gap[p] = 0
				for q := 0; q < n; q++ {
					if since[p][q] > pairMax[p][q] {
						pairMax[p][q] = since[p][q]
					}
					since[p][q] = 0
				}
			} else {
				gap[p]++
				since[p][s]++
			}
		}
	}
	for p := 0; p < n; p++ {
		if gap[p] > maxGap[p] {
			maxGap[p] = gap[p]
		}
		if r.StepsOf[p] == 0 {
			r.Bound[p] = Unbounded
		} else {
			r.Bound[p] = maxGap[p] + 1
		}
		for q := 0; q < n; q++ {
			if since[p][q] > pairMax[p][q] {
				pairMax[p][q] = since[p][q]
			}
			if r.StepsOf[p] == 0 {
				r.PairBound[p][q] = Unbounded
			} else {
				r.PairBound[p][q] = pairMax[p][q] + 1
			}
		}
	}
	return r
}

// TimelyWithin returns the processes whose observed system-wide bound is at
// most bound (and finite).
func (r *TimelinessReport) TimelyWithin(bound int64) []int {
	var out []int
	for p := 0; p < r.N; p++ {
		if r.Bound[p] != Unbounded && r.Bound[p] <= bound {
			out = append(out, p)
		}
	}
	return out
}

// MostTimely returns the process with the smallest finite observed bound,
// or -1 if no process took a step.
func (r *TimelinessReport) MostTimely() int {
	best := -1
	for p := 0; p < r.N; p++ {
		if r.Bound[p] == Unbounded {
			continue
		}
		if best == -1 || r.Bound[p] < r.Bound[best] {
			best = p
		}
	}
	return best
}
