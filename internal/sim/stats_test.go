package sim

import (
	"errors"
	"strings"
	"testing"

	"tbwf/internal/prim"
)

func spinTasks(k *Kernel, n int) {
	for p := 0; p < n; p++ {
		k.Spawn(p, "spin", func(pp prim.Proc) {
			for {
				pp.Step()
			}
		})
	}
}

// Run may be called repeatedly: the step counter continues where the
// previous call stopped and the schedule trace accumulates across calls,
// so an analysis at the end covers the whole concatenated run.
func TestRunReentrySemantics(t *testing.T) {
	k := New(2)
	spinTasks(k, 2)
	// Hooks observe the running step count (1-based); it must be contiguous
	// across Run calls. Violations are recorded, not asserted, because hooks
	// run on kernel goroutines.
	var last, jumped int64
	k.AfterStep(func(step int64) {
		if step != last+1 {
			jumped = step
		}
		last = step
	})
	for i := 0; i < 3; i++ {
		res, err := k.Run(1_000)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(1_000 * (i + 1)); res.Steps != want {
			t.Fatalf("call %d: cumulative steps %d, want %d", i, res.Steps, want)
		}
	}
	k.Shutdown()
	if jumped != 0 {
		t.Fatalf("step counter jumped to %d across Run calls", jumped)
	}
	if last != 3_000 {
		t.Fatalf("last step %d, want 3000", last)
	}
	if got := len(k.Trace().Schedule()); got != 3_000 {
		t.Fatalf("trace holds %d entries, want 3000 (appended across Runs)", got)
	}
	if _, err := k.Trace().Analyze(); err != nil {
		t.Fatalf("analyzing the concatenated trace: %v", err)
	}
	if s := k.Stats(); s.Steps != 3_000 {
		t.Fatalf("stats count %d steps, want 3000", s.Steps)
	}
}

// After a task panic, the error is returned and every later Run returns the
// same error instead of limping on.
func TestRunAfterPanicReturnsSameError(t *testing.T) {
	k := New(1)
	k.Spawn(0, "boom", func(pp prim.Proc) {
		pp.Step()
		panic("deliberate")
	})
	_, err := k.Run(100)
	if err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Fatalf("want the task panic, got %v", err)
	}
	if _, err2 := k.Run(100); err2 == nil || !strings.Contains(err2.Error(), "deliberate") {
		t.Fatalf("re-entry after panic: want the same error, got %v", err2)
	}
}

// A schedule that keeps naming invalid or dead processes is counted in
// ScheduleMisses and the kernel falls back to round-robin over the alive
// set, so the run still makes fair progress.
func TestScheduleMissFallback(t *testing.T) {
	bogus := ScheduleFunc(func(step int64, alive []int) int {
		if step%2 == 0 {
			return 97 // out of range
		}
		return alive[int(step)%len(alive)]
	})
	k := New(2, WithSchedule(bogus))
	spinTasks(k, 2)
	if _, err := k.Run(10_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	s := k.Stats()
	if s.ScheduleMisses != 5_000 {
		t.Fatalf("schedule misses = %d, want 5000 (every even step)", s.ScheduleMisses)
	}
	m := k.Metrics()
	if m.Steps[0] == 0 || m.Steps[1] == 0 {
		t.Fatalf("fallback starved a process: steps %v", m.Steps)
	}
}

// When every process has crashed the kernel reports an idle (short) run
// instead of spinning or deadlocking.
func TestAllCrashedReturnsIdle(t *testing.T) {
	k := New(2)
	spinTasks(k, 2)
	k.CrashAt(0, 10)
	k.CrashAt(1, 20)
	res, err := k.Run(1_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Idle {
		t.Fatal("want Idle after all processes crashed")
	}
	if res.Steps != 20 {
		t.Fatalf("ran %d steps, want 20 (crashes at 10 and 20)", res.Steps)
	}
	k.Shutdown()
}

// With schedule recording off, Trace.Analyze refuses with a clear error
// instead of reporting everything unbounded from an empty schedule.
func TestAnalyzeWithoutScheduleTraceErrors(t *testing.T) {
	k := New(2, WithScheduleTrace(false))
	spinTasks(k, 2)
	if _, err := k.Run(1_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	_, err := k.Trace().Analyze()
	if !errors.Is(err, ErrNoScheduleTrace) {
		t.Fatalf("want ErrNoScheduleTrace, got %v", err)
	}
	if !strings.Contains(err.Error(), "WithScheduleTrace") {
		t.Fatalf("error should name the option to flip: %v", err)
	}
}

// Consecutive steps of the same task take the handoff-free fast path; task
// switches are counted as handoffs. A solo spinning process is almost
// entirely fast-path.
func TestStatsFastPathAndHandoffs(t *testing.T) {
	k := New(1, WithScheduleTrace(false))
	spinTasks(k, 1)
	if _, err := k.Run(10_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	s := k.Stats()
	if s.Steps != 10_000 {
		t.Fatalf("steps = %d", s.Steps)
	}
	if s.FastPathSteps < 9_000 {
		t.Fatalf("fast-path steps = %d, want nearly all of 10000", s.FastPathSteps)
	}
	if s.TraceBytes != 0 {
		t.Fatalf("trace bytes = %d, want 0 with recording off", s.TraceBytes)
	}
	if s.StepsPerSec() <= 0 {
		t.Fatal("steps/sec should be positive")
	}

	// Alternating two processes forces a handoff every step: no fast path.
	k2 := New(2, WithSchedule(Pattern(0, 1)), WithScheduleTrace(false))
	spinTasks(k2, 2)
	if _, err := k2.Run(10_000); err != nil {
		t.Fatal(err)
	}
	k2.Shutdown()
	if s2 := k2.Stats(); s2.FastPathSteps != 0 {
		t.Fatalf("alternating schedule took %d fast-path steps, want 0", s2.FastPathSteps)
	}
}

// newTrace + reserve: the budget hint preallocates the schedule so steady
// recording does not regrow, and Bytes reports the reservation.
func TestTraceReservation(t *testing.T) {
	tr := newTrace(4)
	tr.reserve(1_000)
	if c := cap(tr.schedule); c < 1_000 {
		t.Fatalf("reserve(1000) capacity %d", c)
	}
	if tr.Bytes() < 4_000 {
		t.Fatalf("Bytes() = %d, want at least 4000 for 1000 reserved entries", tr.Bytes())
	}
	// The clamp keeps absurd budgets from reserving gigabytes.
	tr2 := newTrace(4)
	tr2.reserve(1 << 40)
	if c := cap(tr2.schedule); c > maxReserveSteps {
		t.Fatalf("reserve(1<<40) capacity %d exceeds the clamp %d", c, maxReserveSteps)
	}
}
