package sim

import "time"

// RunStats is an observability snapshot of a kernel's execution economy:
// how many steps it took, what they cost in goroutine handoffs and trace
// memory, and how fast they ran. The experiment runner (internal/exp)
// aggregates it per experiment, and cmd/tbwf-bench and cmd/tbwf-sim print
// it under their -stats flags.
type RunStats struct {
	// Steps is the total number of steps executed.
	Steps int64
	// Handoffs counts channel baton handoffs between goroutines. Every
	// task switch costs exactly one; the seed kernel's central loop cost
	// two per step regardless of switching.
	Handoffs int64
	// FastPathSteps counts steps that continued on the same goroutine
	// with no channel operation (consecutive steps of one task).
	FastPathSteps int64
	// ScheduleMisses counts schedule decisions that named a
	// non-schedulable process, forcing the round-robin fallback.
	ScheduleMisses int64
	// TraceBytes is the memory retained by the schedule and write traces.
	TraceBytes int64
	// Elapsed is the cumulative wall time spent inside Run.
	Elapsed time.Duration
}

// Stats returns a snapshot of the kernel's execution statistics. Valid
// after (or between) Run calls.
func (k *Kernel) Stats() RunStats {
	return RunStats{
		Steps:          k.step,
		Handoffs:       k.handoffs,
		FastPathSteps:  k.fastSteps,
		ScheduleMisses: k.metrics.ScheduleMisses,
		TraceBytes:     k.trace.Bytes(),
		Elapsed:        k.elapsed,
	}
}

// Add returns the field-wise sum of s and o, for aggregating the stats of
// independent kernels (one per scenario) into an experiment total.
func (s RunStats) Add(o RunStats) RunStats {
	return RunStats{
		Steps:          s.Steps + o.Steps,
		Handoffs:       s.Handoffs + o.Handoffs,
		FastPathSteps:  s.FastPathSteps + o.FastPathSteps,
		ScheduleMisses: s.ScheduleMisses + o.ScheduleMisses,
		TraceBytes:     s.TraceBytes + o.TraceBytes,
		Elapsed:        s.Elapsed + o.Elapsed,
	}
}

// StepsPerSec returns the average simulated-step throughput over the time
// spent inside Run, or 0 when no time was recorded.
func (s RunStats) StepsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Steps) / s.Elapsed.Seconds()
}
