package sim_test

import (
	"fmt"

	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// A minimal simulation: two processes count their own steps under a
// round-robin schedule, and the analyzer confirms both were timely with
// bound 2.
func ExampleKernel() {
	k := sim.New(2)
	counts := make([]int, 2)
	for p := 0; p < 2; p++ {
		p := p
		k.Spawn(p, "count", func(pp prim.Proc) {
			for {
				counts[p]++
				pp.Step()
			}
		})
	}
	if _, err := k.Run(100); err != nil {
		fmt.Println("error:", err)
		return
	}
	k.Shutdown()

	rep := sim.Analyze(k.Trace().Schedule(), 2)
	fmt.Println("steps:", counts[0], counts[1])
	fmt.Println("bounds:", rep.Bound[0], rep.Bound[1])
	// Output:
	// steps: 50 50
	// bounds: 2 2
}

// Shaping timeliness: process 1 only gets every fifth step, so its
// observed bound is five times looser.
func ExampleRestrict() {
	k := sim.New(2, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{
		1: func(step int64) bool { return step%5 == 0 },
	})))
	for p := 0; p < 2; p++ {
		k.Spawn(p, "spin", func(pp prim.Proc) {
			for {
				pp.Step()
			}
		})
	}
	if _, err := k.Run(1000); err != nil {
		fmt.Println("error:", err)
		return
	}
	k.Shutdown()
	rep := sim.Analyze(k.Trace().Schedule(), 2)
	fmt.Println("process 0 bound:", rep.Bound[0])
	fmt.Println("process 1 bound:", rep.Bound[1])
	// Output:
	// process 0 bound: 2
	// process 1 bound: 6
}
