// Package sim is a deterministic, step-sequenced simulation kernel for the
// shared-memory model of Section 3 of the paper.
//
// Processes are sets of cooperative tasks (one goroutine each). The kernel
// holds a global baton: exactly one task runs at any moment, and control
// passes back to the kernel at every step boundary. A pluggable Schedule
// decides which process takes each step, which makes the timeliness of every
// process (Definitions 1 and 2) a property the caller controls exactly and
// the analyzer (analysis.go) measures exactly.
//
// Because the baton is handed over unbuffered channels, every step happens
// before the next; simulation state (registers, traces, metrics) therefore
// needs no additional locking.
//
// A register operation spans two steps — its invocation and its response —
// so operations have duration and "concurrent operations" are well defined.
// That is what gives abortable registers (internal/register) their
// semantics.
package sim

import (
	"errors"
	"fmt"
	"runtime/debug"

	"tbwf/internal/prim"
)

// Kernel sequences every step of a simulated run.
// Create one with New, add tasks with Spawn, then call Run.
type Kernel struct {
	n     int
	sched Schedule

	tasks   []*task
	byProc  [][]*task // tasks indexed by process
	nextIdx []int     // per-process round-robin cursor over its tasks

	crashed  []bool
	crashAt  map[int]int64
	step     int64
	running  bool // inside Run, between baton handoffs
	shutdown bool

	current  *task
	stepDone chan struct{}

	afterStep []func(step int64)

	aliveBuf []int // reused by aliveProcs to keep the step loop allocation-free

	trace   *Trace
	metrics *Metrics

	err error // first non-sentinel panic from a task, with stack
}

// Option configures a Kernel.
type Option func(*Kernel)

// WithSchedule sets the scheduling policy. The default is RoundRobin.
func WithSchedule(s Schedule) Option {
	return func(k *Kernel) { k.sched = s }
}

// WithScheduleTrace controls whether the kernel records which process took
// each step (needed by the timeliness analyzer). It is on by default; turn
// it off for very long benchmark runs that do not inspect the schedule.
func WithScheduleTrace(on bool) Option {
	return func(k *Kernel) { k.trace.recordSchedule = on }
}

// WithWriteLog makes the kernel record every shared-register write event
// (step, process, register). Used by the write-efficiency experiment (E6).
func WithWriteLog(on bool) Option {
	return func(k *Kernel) { k.trace.recordWrites = on }
}

// New returns a kernel for n processes, numbered 0..n-1.
func New(n int, opts ...Option) *Kernel {
	if n < 1 {
		n = 1
	}
	k := &Kernel{
		n:        n,
		sched:    RoundRobin(),
		byProc:   make([][]*task, n),
		nextIdx:  make([]int, n),
		crashed:  make([]bool, n),
		crashAt:  make(map[int]int64),
		stepDone: make(chan struct{}),
		trace:    newTrace(n),
		metrics:  newMetrics(n),
	}
	for _, o := range opts {
		o(k)
	}
	return k
}

// N returns the number of processes.
func (k *Kernel) N() int { return k.n }

// Step returns the number of steps executed so far.
func (k *Kernel) Step() int64 { return k.step }

// Trace returns the run's trace (schedule and write log).
func (k *Kernel) Trace() *Trace { return k.trace }

// Metrics returns the run's aggregate counters.
func (k *Kernel) Metrics() *Metrics { return k.metrics }

// task is one cooperative activity of a process.
type task struct {
	id       int
	proc     int
	name     string
	resume   chan struct{}
	halt     bool
	finished bool
	started  bool
	fn       func(prim.Proc)
	k        *Kernel
}

// handle implements prim.Proc for a task.
type handle struct {
	t *task
}

func (h handle) ID() int { return h.t.proc }

func (h handle) Step() { h.t.k.yield(h.t) }

// Spawn adds a task named name to process proc. The task function receives
// the process handle; it runs when Run schedules its process. Spawn must be
// called before Run. Tasks are typically infinite loops (the paper's
// "repeat forever"); they are unwound when the process crashes or Shutdown
// is called.
func (k *Kernel) Spawn(proc int, name string, fn func(p prim.Proc)) {
	if proc < 0 || proc >= k.n {
		panic(fmt.Sprintf("sim: Spawn: process %d out of range [0,%d)", proc, k.n))
	}
	if k.running {
		panic("sim: Spawn called during Run")
	}
	t := &task{
		id:     len(k.tasks),
		proc:   proc,
		name:   name,
		resume: make(chan struct{}),
		fn:     fn,
		k:      k,
	}
	k.tasks = append(k.tasks, t)
	k.byProc[proc] = append(k.byProc[proc], t)
}

// CrashAt schedules process proc to crash at the given step: from that step
// on it takes no steps and its tasks are unwound. Crashing a process twice
// keeps the earlier step.
func (k *Kernel) CrashAt(proc int, step int64) {
	if cur, ok := k.crashAt[proc]; !ok || step < cur {
		k.crashAt[proc] = step
	}
}

// Crash crashes process proc immediately. Safe to call from an AfterStep
// hook (it takes effect before the next step).
func (k *Kernel) Crash(proc int) {
	if proc >= 0 && proc < k.n {
		k.crashAt[proc] = k.step
	}
}

// Crashed reports whether process proc has crashed.
func (k *Kernel) Crashed(proc int) bool { return k.crashed[proc] }

// AfterStep registers a hook invoked after every step, on the kernel's own
// goroutine, outside any simulated step. Hooks observe and steer runs
// (sampling output variables, injecting crashes) without consuming steps,
// so they do not perturb timeliness.
func (k *Kernel) AfterStep(fn func(step int64)) {
	k.afterStep = append(k.afterStep, fn)
}

// RunResult describes why Run returned.
type RunResult struct {
	// Steps is the total number of steps executed so far (across all Run
	// calls on this kernel).
	Steps int64
	// Idle is true when Run returned because no schedulable task remained
	// (every task finished or every process crashed) rather than because
	// the step budget was exhausted.
	Idle bool
}

// ErrTaskPanic wraps a panic raised by a task during Run.
var ErrTaskPanic = errors.New("sim: task panicked")

// Run executes up to steps additional steps and returns. It may be called
// repeatedly to extend a run; tasks stay parked between calls. Call
// Shutdown to unwind all tasks when done.
func (k *Kernel) Run(steps int64) (RunResult, error) {
	if k.shutdown {
		return RunResult{Steps: k.step, Idle: true}, errors.New("sim: Run after Shutdown")
	}
	k.running = true
	defer func() { k.running = false }()

	limit := k.step + steps
	for k.step < limit {
		k.applyCrashes()
		alive := k.aliveProcs()
		if len(alive) == 0 {
			return RunResult{Steps: k.step, Idle: true}, k.err
		}
		pid := k.sched.Next(k.step, alive)
		if !contains(alive, pid) {
			k.metrics.ScheduleMisses++
			pid = alive[int(k.step)%len(alive)]
		}
		t := k.nextTask(pid)
		if t == nil {
			// Race between aliveProcs and task completion cannot happen
			// (single-threaded), but stay defensive.
			k.metrics.ScheduleMisses++
			continue
		}
		k.dispatch(t)
		if k.err != nil {
			return RunResult{Steps: k.step, Idle: false}, k.err
		}
		k.metrics.Steps[pid]++
		k.trace.recordStep(pid)
		k.step++
		for _, fn := range k.afterStep {
			fn(k.step)
		}
	}
	return RunResult{Steps: k.step, Idle: false}, k.err
}

// Shutdown unwinds every unfinished task. After Shutdown the kernel cannot
// run again; traces and metrics remain readable.
func (k *Kernel) Shutdown() {
	if k.shutdown {
		return
	}
	k.shutdown = true
	for _, t := range k.tasks {
		if t.finished {
			continue
		}
		t.halt = true
		k.dispatchUntilFinished(t)
	}
}

// applyCrashes crashes processes whose crash step has arrived and unwinds
// their tasks.
func (k *Kernel) applyCrashes() {
	for proc, at := range k.crashAt {
		if k.step >= at && !k.crashed[proc] {
			k.crashed[proc] = true
			for _, t := range k.byProc[proc] {
				if t.finished {
					continue
				}
				t.halt = true
				k.dispatchUntilFinished(t)
			}
		}
	}
}

// aliveProcs returns the schedulable processes. The returned slice aliases
// a kernel-owned buffer valid until the next call; Schedule implementations
// must not retain it.
func (k *Kernel) aliveProcs() []int {
	if k.aliveBuf == nil {
		k.aliveBuf = make([]int, 0, k.n)
	}
	alive := k.aliveBuf[:0]
	for p := 0; p < k.n; p++ {
		if k.crashed[p] {
			continue
		}
		for _, t := range k.byProc[p] {
			if !t.finished {
				alive = append(alive, p)
				break
			}
		}
	}
	return alive
}

// nextTask picks the next unfinished task of process pid, round-robin.
func (k *Kernel) nextTask(pid int) *task {
	ts := k.byProc[pid]
	for range ts {
		i := k.nextIdx[pid] % len(ts)
		k.nextIdx[pid]++
		if !ts[i].finished {
			return ts[i]
		}
	}
	return nil
}

// dispatch hands the baton to t for one step and waits for it back.
func (k *Kernel) dispatch(t *task) {
	k.current = t
	if !t.started {
		t.started = true
		go k.runTask(t)
	}
	t.resume <- struct{}{}
	<-k.stepDone
	k.current = nil
}

// dispatchUntilFinished drives a halting task through its unwinding. A task
// asked to halt exits at its next step boundary, which is its very next
// activation, so a single dispatch suffices; loop defensively anyway.
func (k *Kernel) dispatchUntilFinished(t *task) {
	for !t.finished {
		k.dispatch(t)
	}
}

// runTask is the goroutine body wrapping a task function.
func (k *Kernel) runTask(t *task) {
	defer func() {
		if r := recover(); r != nil && !prim.RecoverTaskExit(r) {
			if k.err == nil {
				k.err = fmt.Errorf("%w: process %d task %q: %v\n%s",
					ErrTaskPanic, t.proc, t.name, r, debug.Stack())
			}
		}
		t.finished = true
		k.stepDone <- struct{}{}
	}()
	// The goroutine was started from inside dispatch; the first resume has
	// already been consumed by... no: dispatch sends resume after starting
	// us, so wait for it here before touching user code.
	<-t.resume
	if t.halt {
		prim.ExitTask("halt before first step")
	}
	t.fn(handle{t: t})
}

// yield ends the current activation of t (completing the current step) and
// blocks until the kernel schedules t again. If the task has been asked to
// halt, yield unwinds it instead of returning.
func (k *Kernel) yield(t *task) {
	k.stepDone <- struct{}{}
	<-t.resume
	if t.halt {
		prim.ExitTask("halted")
	}
}

// OpStep ends the current step of the currently running task and blocks
// until its next scheduled step. It is the hook internal/register uses to
// give register operations their two-step (invoke, respond) duration; it
// must only be called from code running inside a task.
func (k *Kernel) OpStep() {
	if k.current == nil {
		panic("sim: OpStep called outside a running task")
	}
	k.yield(k.current)
}

// CurrentProc returns the process id of the currently running task.
func (k *Kernel) CurrentProc() int {
	if k.current == nil {
		panic("sim: CurrentProc called outside a running task")
	}
	return k.current.proc
}

// CurrentTask returns the kernel-wide id of the currently running task,
// used by registers to identify distinct concurrent operations.
func (k *Kernel) CurrentTask() int {
	if k.current == nil {
		panic("sim: CurrentTask called outside a running task")
	}
	return k.current.id
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
