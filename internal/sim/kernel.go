// Package sim is a deterministic, step-sequenced simulation kernel for the
// shared-memory model of Section 3 of the paper.
//
// Processes are sets of cooperative tasks (one goroutine each). The kernel
// holds a global baton: exactly one goroutine runs at any moment, and
// control passes back to the scheduling logic at every step boundary. A
// pluggable Schedule decides which process takes each step, which makes the
// timeliness of every process (Definitions 1 and 2) a property the caller
// controls exactly and the analyzer (analysis.go) measures exactly.
//
// Because the baton is handed over unbuffered channels, every step happens
// before the next; simulation state (registers, traces, metrics) therefore
// needs no additional locking.
//
// For speed, the step loop is distributed: the goroutine that holds the
// baton also runs the end-of-step bookkeeping and picks the next task, so
// switching tasks costs one channel handoff (not a round trip through a
// central loop goroutine) and consecutive steps of the same task cost no
// channel operation at all. The kernel goroutine only takes over on the
// slow paths — run start/end, budget exhaustion, pending crashes, task
// panics — where it runs the same logic the original central loop did.
//
// A register operation spans two steps — its invocation and its response —
// so operations have duration and "concurrent operations" are well defined.
// That is what gives abortable registers (internal/register) their
// semantics.
package sim

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"time"

	"tbwf/internal/prim"
)

// Kernel sequences every step of a simulated run.
// Create one with New, add tasks with Spawn, then call Run.
type Kernel struct {
	n     int
	sched Schedule

	tasks   []*task
	byProc  [][]*task // tasks indexed by process
	nextIdx []int     // per-process round-robin cursor over its tasks

	crashed    []bool
	crashAt    []int64 // per-process scheduled crash step (crashNever = none)
	nextCrash  int64   // min over crashAt of non-crashed processes
	aliveCount []int   // per-process count of unfinished tasks
	step       int64
	limit      int64 // current Run's step budget boundary
	running    bool  // inside Run, between baton handoffs
	shutdown   bool

	current  *task
	stepDone chan struct{}

	afterStep []func(step int64)

	effectDelay func() int64 // Δ adversary: extra steps per register effect (nil = off)

	aliveBuf []int // reused by aliveProcs to keep the step loop allocation-free

	trace   *Trace
	metrics *Metrics

	handoffs  int64         // channel baton handoffs performed
	fastSteps int64         // steps continued on the same goroutine, no handoff
	elapsed   time.Duration // cumulative wall time inside Run

	err error // first non-sentinel panic from a task, with stack
}

// crashNever marks a process with no scheduled crash.
const crashNever = math.MaxInt64

// Option configures a Kernel.
type Option func(*Kernel)

// WithSchedule sets the scheduling policy. The default is RoundRobin.
func WithSchedule(s Schedule) Option {
	return func(k *Kernel) { k.sched = s }
}

// WithScheduleTrace controls whether the kernel records which process took
// each step (needed by the timeliness analyzer). It is on by default; turn
// it off for very long benchmark runs that do not inspect the schedule.
func WithScheduleTrace(on bool) Option {
	return func(k *Kernel) { k.trace.recordSchedule = on }
}

// WithWriteLog makes the kernel record every shared-register write event
// (step, process, register). Used by the write-efficiency experiment (E6).
func WithWriteLog(on bool) Option {
	return func(k *Kernel) { k.trace.recordWrites = on }
}

// New returns a kernel for n processes, numbered 0..n-1.
func New(n int, opts ...Option) *Kernel {
	if n < 1 {
		n = 1
	}
	k := &Kernel{
		n:          n,
		sched:      RoundRobin(),
		byProc:     make([][]*task, n),
		nextIdx:    make([]int, n),
		crashed:    make([]bool, n),
		crashAt:    make([]int64, n),
		nextCrash:  crashNever,
		aliveCount: make([]int, n),
		stepDone:   make(chan struct{}),
		aliveBuf:   make([]int, 0, n),
		trace:      newTrace(n),
		metrics:    newMetrics(n),
	}
	for p := range k.crashAt {
		k.crashAt[p] = crashNever
	}
	for _, o := range opts {
		o(k)
	}
	return k
}

// N returns the number of processes.
func (k *Kernel) N() int { return k.n }

// Step returns the number of steps executed so far.
func (k *Kernel) Step() int64 { return k.step }

// Trace returns the run's trace (schedule and write log).
func (k *Kernel) Trace() *Trace { return k.trace }

// Metrics returns the run's aggregate counters.
func (k *Kernel) Metrics() *Metrics { return k.metrics }

// task is one cooperative activity of a process.
type task struct {
	id       int
	proc     int
	name     string
	resume   chan struct{}
	halt     bool
	finished bool
	started  bool
	fn       func(prim.Proc)
	k        *Kernel
}

// handle implements prim.Proc for a task.
type handle struct {
	t *task
}

func (h handle) ID() int { return h.t.proc }

func (h handle) Step() { h.t.k.yield(h.t) }

// Spawn adds a task named name to process proc. The task function receives
// the process handle; it runs when Run schedules its process. Spawn must be
// called before Run. Tasks are typically infinite loops (the paper's
// "repeat forever"); they are unwound when the process crashes or Shutdown
// is called.
func (k *Kernel) Spawn(proc int, name string, fn func(p prim.Proc)) {
	if proc < 0 || proc >= k.n {
		panic(fmt.Sprintf("sim: Spawn: process %d out of range [0,%d)", proc, k.n))
	}
	if k.running {
		panic("sim: Spawn called during Run")
	}
	t := &task{
		id:     len(k.tasks),
		proc:   proc,
		name:   name,
		resume: make(chan struct{}),
		fn:     fn,
		k:      k,
	}
	k.tasks = append(k.tasks, t)
	k.byProc[proc] = append(k.byProc[proc], t)
	k.aliveCount[proc]++
}

// CrashAt schedules process proc to crash at the given step: from that step
// on it takes no steps and its tasks are unwound. Crashing a process twice
// keeps the earlier step.
func (k *Kernel) CrashAt(proc int, step int64) {
	if proc < 0 || proc >= k.n {
		panic(fmt.Sprintf("sim: CrashAt: process %d out of range [0,%d)", proc, k.n))
	}
	if step < k.crashAt[proc] {
		k.crashAt[proc] = step
	}
	if step < k.nextCrash {
		k.nextCrash = step
	}
}

// Crash crashes process proc immediately. Safe to call from an AfterStep
// hook (it takes effect before the next step).
func (k *Kernel) Crash(proc int) {
	if proc >= 0 && proc < k.n {
		k.CrashAt(proc, k.step)
	}
}

// Crashed reports whether process proc has crashed.
func (k *Kernel) Crashed(proc int) bool { return k.crashed[proc] }

// AfterStep registers a hook invoked after every step, outside any
// simulated step (the current-task accessors report no task while a hook
// runs). Hooks observe and steer runs (sampling output variables, injecting
// crashes) without consuming steps, so they do not perturb timeliness. They
// may run on any goroutine, but never concurrently with a task or with each
// other.
func (k *Kernel) AfterStep(fn func(step int64)) {
	k.afterStep = append(k.afterStep, fn)
}

// RunResult describes why Run returned.
type RunResult struct {
	// Steps is the total number of steps executed so far (across all Run
	// calls on this kernel).
	Steps int64
	// Idle is true when Run returned because no schedulable task remained
	// (every task finished or every process crashed) rather than because
	// the step budget was exhausted.
	Idle bool
}

// ErrTaskPanic wraps a panic raised by a task during Run.
var ErrTaskPanic = errors.New("sim: task panicked")

// Run executes up to steps additional steps and returns. It may be called
// repeatedly to extend a run: the step counter continues where the previous
// call stopped, the schedule trace keeps appending, and tasks stay parked
// at their step boundaries between calls (see also TestRunReentry). Spawn
// may add tasks between calls. After a task panic, Run returns the same
// error immediately without taking further steps. Call Shutdown to unwind
// all tasks when done.
func (k *Kernel) Run(steps int64) (RunResult, error) {
	if k.shutdown {
		return RunResult{Steps: k.step, Idle: true}, errors.New("sim: Run after Shutdown")
	}
	if k.err != nil {
		return RunResult{Steps: k.step, Idle: false}, k.err
	}
	k.running = true
	start := time.Now()
	defer func() {
		k.running = false
		k.elapsed += time.Since(start)
	}()

	k.limit = k.step + steps
	k.trace.reserve(steps)
	for k.step < k.limit {
		k.applyCrashes()
		t := k.pickNext()
		if t == nil {
			return RunResult{Steps: k.step, Idle: true}, k.err
		}
		// The baton leaves the kernel here. Tasks hand it among
		// themselves (stepEnd/handoff) and return it when the budget is
		// exhausted, a crash is due, a task panicked, or nothing is
		// schedulable.
		k.dispatch(t)
		if k.err != nil {
			return RunResult{Steps: k.step, Idle: false}, k.err
		}
	}
	return RunResult{Steps: k.step, Idle: false}, k.err
}

// Shutdown unwinds every unfinished task. After Shutdown the kernel cannot
// run again; traces and metrics remain readable.
func (k *Kernel) Shutdown() {
	if k.shutdown {
		return
	}
	k.shutdown = true
	for _, t := range k.tasks {
		if t.finished {
			continue
		}
		t.halt = true
		k.dispatchUntilFinished(t)
	}
}

// applyCrashes crashes processes whose crash step has arrived and unwinds
// their tasks, in ascending process order. Cheap when no crash is due: a
// single comparison against the precomputed next crash step.
func (k *Kernel) applyCrashes() {
	if k.step < k.nextCrash {
		return
	}
	next := int64(crashNever)
	for p := 0; p < k.n; p++ {
		if k.crashed[p] {
			continue
		}
		if k.crashAt[p] > k.step {
			if k.crashAt[p] < next {
				next = k.crashAt[p]
			}
			continue
		}
		k.crashed[p] = true
		for _, t := range k.byProc[p] {
			if t.finished {
				continue
			}
			t.halt = true
			k.dispatchUntilFinished(t)
		}
	}
	k.nextCrash = next
}

// aliveProcs returns the schedulable processes. The returned slice aliases
// a kernel-owned buffer valid until the next call; Schedule implementations
// must not retain it.
func (k *Kernel) aliveProcs() []int {
	alive := k.aliveBuf[:0]
	for p := 0; p < k.n; p++ {
		if !k.crashed[p] && k.aliveCount[p] > 0 {
			alive = append(alive, p)
		}
	}
	return alive
}

// pickNext consults the schedule and returns the task for the next step, or
// nil when no process is schedulable. Exactly one Schedule.Next call per
// returned task.
func (k *Kernel) pickNext() *task {
	alive := k.aliveProcs()
	if len(alive) == 0 {
		return nil
	}
	pid := k.sched.Next(k.step, alive)
	if pid < 0 || pid >= k.n || k.crashed[pid] || k.aliveCount[pid] == 0 {
		k.metrics.ScheduleMisses++
		pid = alive[int(k.step)%len(alive)]
	}
	return k.nextTask(pid)
}

// nextTask picks the next unfinished task of process pid, round-robin.
func (k *Kernel) nextTask(pid int) *task {
	ts := k.byProc[pid]
	for range ts {
		i := k.nextIdx[pid] % len(ts)
		k.nextIdx[pid]++
		if !ts[i].finished {
			return ts[i]
		}
	}
	return nil
}

// stepEnd closes out the step t just completed (accounting, hooks) and
// picks the task for the next step. It returns nil when the baton must go
// back to the kernel goroutine: budget exhausted, a crash due, or a task
// panic — the kernel then re-runs its slow-path loop, which applies crashes
// and consults the schedule exactly once per step, as the central loop
// always did. Runs on the goroutine currently holding the baton.
func (k *Kernel) stepEnd(t *task) *task {
	k.metrics.Steps[t.proc]++
	k.trace.recordStep(t.proc)
	k.step++
	if len(k.afterStep) > 0 {
		k.current = nil // hooks run outside any simulated step
		for _, fn := range k.afterStep {
			fn(k.step)
		}
	}
	if k.err != nil || k.step >= k.limit || k.step >= k.nextCrash {
		return nil
	}
	// No crash is due, so the yielding task's process is still alive and
	// the alive set is non-empty: pickNext cannot return nil here.
	return k.pickNext()
}

// handoff transfers the baton from the calling goroutine: to another task,
// or back to the kernel goroutine when next is nil.
func (k *Kernel) handoff(next *task) {
	k.handoffs++
	k.current = next
	if next == nil {
		k.stepDone <- struct{}{}
		return
	}
	if !next.started {
		next.started = true
		go k.runTask(next)
	}
	next.resume <- struct{}{}
}

// dispatch hands the baton to t and waits for it to come back to the
// kernel goroutine.
func (k *Kernel) dispatch(t *task) {
	k.handoff(t)
	<-k.stepDone
}

// dispatchUntilFinished drives a halting task through its unwinding. A task
// asked to halt exits at its next step boundary, which is its very next
// activation, so a single dispatch suffices; loop defensively anyway.
func (k *Kernel) dispatchUntilFinished(t *task) {
	for !t.finished {
		k.dispatch(t)
	}
}

// runTask is the goroutine body wrapping a task function.
func (k *Kernel) runTask(t *task) {
	defer func() {
		r := recover()
		if r != nil && !prim.RecoverTaskExit(r) {
			if k.err == nil {
				k.err = fmt.Errorf("%w: process %d task %q: %v\n%s",
					ErrTaskPanic, t.proc, t.name, r, debug.Stack())
			}
		}
		t.finished = true
		k.aliveCount[t.proc]--
		if t.halt || k.err != nil {
			// Unwinding (driven by the kernel goroutine, no step
			// charged) or a panic (the panicking activation is not
			// charged): baton straight back to the kernel.
			k.current = nil
			k.stepDone <- struct{}{}
			return
		}
		// The task function returned normally mid-activation; that final
		// activation counts as a step, then the baton moves on.
		k.handoff(k.stepEnd(t))
	}()
	// dispatch sends the first resume after starting this goroutine; wait
	// for it here before touching user code.
	<-t.resume
	if t.halt {
		prim.ExitTask("halt before first step")
	}
	t.fn(handle{t: t})
}

// yield ends the current activation of t (completing the current step) and
// blocks until the kernel schedules t again — except on the fast path: when
// the schedule picks the same task for the next step, yield returns
// immediately and the goroutine keeps the baton, with no channel traffic.
// If the task has been asked to halt, yield unwinds it instead of
// returning.
func (k *Kernel) yield(t *task) {
	next := k.stepEnd(t)
	if next == t {
		k.fastSteps++
		k.current = t
		return
	}
	k.handoff(next)
	<-t.resume
	if t.halt {
		prim.ExitTask("halted")
	}
}

// OpStep ends the current step of the currently running task and blocks
// until its next scheduled step. It is the hook internal/register uses to
// give register operations their two-step (invoke, respond) duration; it
// must only be called from code running inside a task.
func (k *Kernel) OpStep() {
	if k.current == nil {
		panic("sim: OpStep called outside a running task")
	}
	k.yield(k.current)
}

// SetEffectDelay installs the Δ effect-delay adversary: each EffectDelay
// call stretches the in-flight window of the current register operation by
// fn() extra steps. A nil fn disables the adversary (the default); the hot
// path then pays a single nil check. The draw function must be
// deterministic in its own seeded stream for runs to replay.
func (k *Kernel) SetEffectDelay(fn func() int64) { k.effectDelay = fn }

// EffectDelay yields the current task for the configured number of extra
// steps. Registers call it between an operation's invocation and response
// steps, so the operation stays in flight — contention windows lengthen,
// and a crash landing inside the stretched window still interrupts the
// operation — exactly the DLS adversary's "effects delayed up to Δ".
func (k *Kernel) EffectDelay() {
	if k.effectDelay == nil {
		return
	}
	t := k.current
	if t == nil {
		panic("sim: EffectDelay called outside a running task")
	}
	for i := k.effectDelay(); i > 0; i-- {
		k.yield(t)
	}
}

// CurrentProc returns the process id of the currently running task.
func (k *Kernel) CurrentProc() int {
	if k.current == nil {
		panic("sim: CurrentProc called outside a running task")
	}
	return k.current.proc
}

// CurrentTask returns the kernel-wide id of the currently running task,
// used by registers to identify distinct concurrent operations.
func (k *Kernel) CurrentTask() int {
	if k.current == nil {
		panic("sim: CurrentTask called outside a running task")
	}
	return k.current.id
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
