package sim

import (
	"testing"

	"tbwf/internal/prim"
)

// Spawning between Run calls is supported (the experiment harness uses it
// to add a solo verifier after the workload finishes).
func TestSpawnBetweenRuns(t *testing.T) {
	k := New(2)
	k.Spawn(0, "finite", func(p prim.Proc) {
		for i := 0; i < 5; i++ {
			p.Step()
		}
	})
	res, err := k.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Idle {
		t.Fatal("first phase should end idle")
	}
	ran := false
	k.Spawn(1, "late", func(p prim.Proc) {
		ran = true
		p.Step()
	})
	if _, err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if !ran {
		t.Fatal("task spawned between runs never ran")
	}
}

// Run after Shutdown is rejected, and Shutdown is idempotent.
func TestRunAfterShutdownRejected(t *testing.T) {
	k := New(1)
	k.Spawn(0, "spin", func(p prim.Proc) {
		for {
			p.Step()
		}
	})
	if _, err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	k.Shutdown() // idempotent
	if _, err := k.Run(10); err == nil {
		t.Fatal("Run after Shutdown accepted")
	}
}

// The write log records aborted and successful writes with the right
// attribution.
func TestWriteLogAttribution(t *testing.T) {
	k := New(1, WithWriteLog(true))
	k.Spawn(0, "w", func(p prim.Proc) {
		p.Step()
	})
	k.Trace().RecordWrite(WriteEvent{Step: 1, Proc: 0, Register: "x", Aborted: true})
	if _, err := k.Run(5); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	w := k.Trace().Writes()
	if len(w) != 1 || !w[0].Aborted || w[0].Register != "x" {
		t.Fatalf("writes = %+v", w)
	}
	if !k.Trace().WritesEnabled() {
		t.Fatal("write log should be enabled")
	}
}

// Metrics totals aggregate per-process counters.
func TestMetricsTotals(t *testing.T) {
	m := newMetrics(2)
	m.Reads[0] = 3
	m.Writes[1] = 4
	m.ReadAborts[0] = 1
	m.WriteAborts[1] = 2
	if m.TotalOps() != 7 {
		t.Fatalf("TotalOps = %d", m.TotalOps())
	}
	if m.TotalAborts() != 3 {
		t.Fatalf("TotalAborts = %d", m.TotalAborts())
	}
}
