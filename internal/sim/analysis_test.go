package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAnalyzeRoundRobin(t *testing.T) {
	sched := []int32{0, 1, 2, 0, 1, 2, 0, 1, 2}
	rep := Analyze(sched, 3)
	for p := 0; p < 3; p++ {
		if rep.StepsOf[p] != 3 {
			t.Errorf("steps of %d = %d, want 3", p, rep.StepsOf[p])
		}
		if rep.Bound[p] != 3 {
			t.Errorf("bound of %d = %d, want 3", p, rep.Bound[p])
		}
	}
	// Each process sees exactly 1 step of each other process between its own.
	if rep.PairBound[0][1] != 2 {
		t.Errorf("PairBound[0][1] = %d, want 2", rep.PairBound[0][1])
	}
}

func TestAnalyzeAbsentProcessUnbounded(t *testing.T) {
	sched := []int32{0, 0, 0, 0}
	rep := Analyze(sched, 2)
	if rep.Bound[1] != Unbounded {
		t.Errorf("bound of absent process = %d, want Unbounded", rep.Bound[1])
	}
	if rep.Bound[0] != 1 {
		t.Errorf("bound of solo process = %d, want 1", rep.Bound[0])
	}
	if got := rep.TimelyWithin(10); len(got) != 1 || got[0] != 0 {
		t.Errorf("TimelyWithin(10) = %v, want [0]", got)
	}
}

func TestAnalyzePrefixAndSuffixGapsCount(t *testing.T) {
	// Process 1 appears only once in the middle; its bound is set by the
	// longer of the prefix/suffix gaps.
	sched := []int32{0, 0, 0, 1, 0, 0, 0, 0, 0}
	rep := Analyze(sched, 2)
	// Suffix gap = 5 steps without p1 -> bound 6.
	if rep.Bound[1] != 6 {
		t.Errorf("bound of 1 = %d, want 6", rep.Bound[1])
	}
}

func TestAnalyzePairBoundDirectionality(t *testing.T) {
	// p0 steps often, p1 rarely: p0 is 1-timely w.r.t. few of p1's steps,
	// while p1 sees many p0 steps between its own.
	sched := []int32{0, 0, 0, 0, 1, 0, 0, 0, 0, 1}
	rep := Analyze(sched, 2)
	if rep.PairBound[0][1] > 2 {
		t.Errorf("PairBound[0][1] = %d, want <= 2 (p0 steps between every p1 pair)", rep.PairBound[0][1])
	}
	if rep.PairBound[1][0] != 5 {
		t.Errorf("PairBound[1][0] = %d, want 5 (4 p0-steps in a p1-free interval)", rep.PairBound[1][0])
	}
}

// Property: the reported bound is correct — every window of that size
// contains a step of the process, and some window of size bound-1 does not.
func TestAnalyzeBoundIsTight(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		length := 20 + rng.Intn(200)
		sched := make([]int32, length)
		for i := range sched {
			sched[i] = int32(rng.Intn(n))
		}
		rep := Analyze(sched, n)
		for p := 0; p < n; p++ {
			b := rep.Bound[p]
			if b == Unbounded {
				for _, s := range sched {
					if int(s) == p {
						return false // had steps but reported unbounded
					}
				}
				continue
			}
			// Every window of size b contains p.
			for start := 0; start+int(b) <= length; start++ {
				found := false
				for i := start; i < start+int(b); i++ {
					if int(sched[i]) == p {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			// Tightness: some window of size b-1 misses p (b > 1).
			if b > 1 {
				tight := false
				for start := 0; start+int(b)-1 <= length; start++ {
					miss := true
					for i := start; i < start+int(b)-1; i++ {
						if int(sched[i]) == p {
							miss = false
							break
						}
					}
					if miss {
						tight = true
						break
					}
				}
				if !tight {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: PairBound is correct — every interval containing that many
// q-steps includes a p-step.
func TestAnalyzePairBoundSound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		length := 20 + rng.Intn(150)
		sched := make([]int32, length)
		for i := range sched {
			sched[i] = int32(rng.Intn(n))
		}
		rep := Analyze(sched, n)
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				b := rep.PairBound[p][q]
				if b == Unbounded {
					continue
				}
				// Max q-steps in any p-free interval must be b-1.
				maxQ, cur := int64(0), int64(0)
				for _, s := range sched {
					switch int(s) {
					case p:
						if cur > maxQ {
							maxQ = cur
						}
						cur = 0
					case q:
						cur++
					}
				}
				if cur > maxQ {
					maxQ = cur
				}
				if maxQ != b-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMostTimely(t *testing.T) {
	sched := []int32{0, 1, 0, 2, 0, 1, 0, 2}
	rep := Analyze(sched, 3)
	if got := rep.MostTimely(); got != 0 {
		t.Fatalf("MostTimely = %d, want 0", got)
	}
	if rep := Analyze(nil, 3); rep.MostTimely() != -1 {
		t.Fatal("MostTimely on empty schedule should be -1")
	}
}
