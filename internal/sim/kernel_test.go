package sim

import (
	"testing"

	"tbwf/internal/prim"
)

// spin returns a task that increments *ctr once per step, forever.
func spin(ctr *int64) func(prim.Proc) {
	return func(p prim.Proc) {
		for {
			*ctr++
			p.Step()
		}
	}
}

func TestRoundRobinFairness(t *testing.T) {
	const n = 4
	k := New(n)
	ctrs := make([]int64, n)
	for i := 0; i < n; i++ {
		k.Spawn(i, "spin", spin(&ctrs[i]))
	}
	res, err := k.Run(4000)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()
	if res.Steps != 4000 {
		t.Fatalf("steps = %d, want 4000", res.Steps)
	}
	for i, c := range ctrs {
		if c != 1000 {
			t.Errorf("process %d took %d steps, want 1000", i, c)
		}
		if k.Metrics().Steps[i] != 1000 {
			t.Errorf("metrics: process %d charged %d steps, want 1000", i, k.Metrics().Steps[i])
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	run := func() []int32 {
		k := New(3, WithSchedule(Random(42, nil)))
		var sink int64
		for i := 0; i < 3; i++ {
			k.Spawn(i, "spin", spin(&sink))
		}
		if _, err := k.Run(500); err != nil {
			t.Fatal(err)
		}
		defer k.Shutdown()
		return append([]int32(nil), k.Trace().Schedule()...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestIncrementalRun(t *testing.T) {
	k := New(2)
	ctrs := make([]int64, 2)
	k.Spawn(0, "spin", spin(&ctrs[0]))
	k.Spawn(1, "spin", spin(&ctrs[1]))
	if _, err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	first := ctrs[0] + ctrs[1]
	if _, err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	second := ctrs[0] + ctrs[1]
	if first != 100 || second != 200 {
		t.Fatalf("counts after runs: %d then %d, want 100 then 200", first, second)
	}
}

func TestCrashStopsProcess(t *testing.T) {
	k := New(2)
	ctrs := make([]int64, 2)
	k.Spawn(0, "spin", spin(&ctrs[0]))
	k.Spawn(1, "spin", spin(&ctrs[1]))
	k.CrashAt(1, 50)
	if _, err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()
	if !k.Crashed(1) {
		t.Fatal("process 1 should have crashed")
	}
	if ctrs[1] > 30 {
		t.Errorf("crashed process took %d steps, want <= 30 (25 before crash)", ctrs[1])
	}
	if ctrs[0] < 900 {
		t.Errorf("surviving process took %d steps, want >= 900", ctrs[0])
	}
}

func TestTaskCompletionEndsRun(t *testing.T) {
	k := New(1)
	did := 0
	k.Spawn(0, "finite", func(p prim.Proc) {
		for i := 0; i < 10; i++ {
			did++
			p.Step()
		}
	})
	res, err := k.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if !res.Idle {
		t.Error("run should report idle after all tasks finished")
	}
	if did != 10 {
		t.Errorf("task did %d iterations, want 10", did)
	}
}

func TestMultipleTasksPerProcessShareSteps(t *testing.T) {
	k := New(1)
	var a, b int64
	k.Spawn(0, "a", spin(&a))
	k.Spawn(0, "b", spin(&b))
	if _, err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()
	if a+b != 1000 {
		t.Fatalf("total iterations %d, want 1000", a+b)
	}
	if a != 500 || b != 500 {
		t.Errorf("tasks got %d and %d steps, want 500 each (round-robin)", a, b)
	}
}

func TestTaskPanicSurfacesAsError(t *testing.T) {
	k := New(1)
	k.Spawn(0, "boom", func(p prim.Proc) {
		p.Step()
		panic("kaboom")
	})
	_, err := k.Run(100)
	k.Shutdown()
	if err == nil {
		t.Fatal("expected error from panicking task")
	}
}

func TestAfterStepHook(t *testing.T) {
	k := New(1)
	var sink int64
	k.Spawn(0, "spin", spin(&sink))
	var calls int64
	k.AfterStep(func(step int64) { calls++ })
	if _, err := k.Run(77); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if calls != 77 {
		t.Fatalf("hook called %d times, want 77", calls)
	}
}

func TestDynamicCrashFromHook(t *testing.T) {
	k := New(2)
	ctrs := make([]int64, 2)
	k.Spawn(0, "spin", spin(&ctrs[0]))
	k.Spawn(1, "spin", spin(&ctrs[1]))
	k.AfterStep(func(step int64) {
		if step == 100 {
			k.Crash(0)
		}
	})
	if _, err := k.Run(500); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()
	if !k.Crashed(0) {
		t.Fatal("process 0 should be crashed")
	}
	if ctrs[0] > 60 {
		t.Errorf("process 0 took %d steps after hook crash, want about 50", ctrs[0])
	}
}

func TestSoloAfterSchedule(t *testing.T) {
	k := New(3, WithSchedule(SoloAfter(RoundRobin(), 2, 300)))
	ctrs := make([]int64, 3)
	for i := 0; i < 3; i++ {
		k.Spawn(i, "spin", spin(&ctrs[i]))
	}
	if _, err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()
	sched := k.Trace().Schedule()
	for s := 300; s < 1000; s++ {
		if sched[s] != 2 {
			t.Fatalf("step %d went to process %d, want 2 (solo)", s, sched[s])
		}
	}
}
