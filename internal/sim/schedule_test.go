package sim

import (
	"testing"
	"testing/quick"

	"tbwf/internal/prim"
)

func collectSchedule(t *testing.T, s Schedule, n int, steps int64) []int32 {
	t.Helper()
	alive := make([]int, n)
	for i := range alive {
		alive[i] = i
	}
	out := make([]int32, steps)
	for i := int64(0); i < steps; i++ {
		p := s.Next(i, alive)
		if p < 0 || p >= n {
			t.Fatalf("schedule returned %d, out of range [0,%d)", p, n)
		}
		out[i] = int32(p)
	}
	return out
}

func TestSmoothWeightedShares(t *testing.T) {
	s := SmoothWeighted([]int{3, 1})
	sched := collectSchedule(t, s, 2, 4000)
	counts := make([]int64, 2)
	for _, p := range sched {
		counts[p]++
	}
	if counts[0] != 3000 || counts[1] != 1000 {
		t.Fatalf("shares = %v, want [3000 1000]", counts)
	}
	// Smoothness: process 1 must appear at least once in every window of 5.
	rep := Analyze(sched, 2)
	if rep.Bound[1] > 5 {
		t.Errorf("process 1 observed bound %d, want <= 5 (smooth interleave)", rep.Bound[1])
	}
}

func TestPatternRepeats(t *testing.T) {
	s := Pattern(0, 0, 1)
	sched := collectSchedule(t, s, 2, 9)
	want := []int32{0, 0, 1, 0, 0, 1, 0, 0, 1}
	for i := range want {
		if sched[i] != want[i] {
			t.Fatalf("sched = %v, want %v", sched, want)
		}
	}
}

func TestPatternSkipsDeadProcess(t *testing.T) {
	s := Pattern(0, 1)
	alive := []int{1} // process 0 is gone
	for i := int64(0); i < 10; i++ {
		if got := s.Next(i, alive); got != 1 {
			t.Fatalf("step %d: got %d, want 1", i, got)
		}
	}
}

func TestPatternWrapsBelowWant(t *testing.T) {
	// Regression: when every alive id is below the preferred one, the
	// choice must wrap cyclically to the smallest alive id — even when the
	// alive slice is not sorted, so the wrap cannot silently rely on
	// alive[0] being the minimum.
	s := Pattern(5)
	if got := s.Next(0, []int{1, 3}); got != 1 {
		t.Fatalf("Pattern(5) over alive [1 3] = %d, want 1 (cyclic wrap)", got)
	}
	s = Pattern(5)
	if got := s.Next(0, []int{3, 1}); got != 1 {
		t.Fatalf("Pattern(5) over alive [3 1] = %d, want 1 (cyclic wrap to the minimum)", got)
	}
}

func TestSmoothWeightedEmptyAndZeroWeights(t *testing.T) {
	// Empty weights: every alive process has weight 0, so the schedule must
	// fall back to the deterministic step-indexed rotation.
	s := SmoothWeighted(nil)
	alive := []int{0, 1, 2}
	for i := int64(0); i < 9; i++ {
		want := alive[int(i)%len(alive)]
		if got := s.Next(i, alive); got != want {
			t.Fatalf("empty weights: step %d picked %d, want fallback %d", i, got, want)
		}
	}
	// All-zero weights behave the same.
	s = SmoothWeighted([]int{0, 0})
	if got := s.Next(0, []int{0, 1}); got != 0 {
		t.Fatalf("zero weights: step 0 picked %d, want 0", got)
	}
}

func TestSmoothWeightedSingleAliveProcess(t *testing.T) {
	s := SmoothWeighted([]int{1, 7})
	for i := int64(0); i < 20; i++ {
		if got := s.Next(i, []int{1}); got != 1 {
			t.Fatalf("single alive process: picked %d, want 1", got)
		}
	}
}

func TestFlickerZeroIntensity(t *testing.T) {
	// A flicker with no on- or off-phase (period <= 0) degenerates to
	// Always: the process is never suppressed.
	for _, f := range []Availability{Flicker(0, 0, 0), Flicker(0, 0, 5), Flicker(-1, 1, 0)} {
		for i := int64(0); i < 50; i++ {
			if !f(i) {
				t.Fatalf("zero-intensity flicker suppressed step %d", i)
			}
		}
	}
	// Zero on-steps with a positive period: never available; Restrict must
	// then ignore the availability so time does not stop.
	off := Flicker(0, 3, 0)
	for i := int64(0); i < 9; i++ {
		if off(i) {
			t.Fatalf("Flicker(0,3) available at step %d, want never", i)
		}
	}
	s := Restrict(RoundRobin(), map[int]Availability{0: off})
	if got := s.Next(0, []int{0}); got != 0 {
		t.Fatalf("Restrict with a fully suppressed singleton returned %d, want 0", got)
	}
}

func TestCompositeSchedulesSingleAliveProcess(t *testing.T) {
	// Compositions (Restrict over SoloAfter over a weighted base) must stay
	// well defined when the alive set collapses to one process.
	s := Restrict(
		SoloAfter(SmoothWeighted([]int{2, 1}), 1, 100),
		map[int]Availability{0: Flicker(1, 1, 0)},
	)
	for i := int64(0); i < 200; i++ {
		if got := s.Next(i, []int{1}); got != 1 {
			t.Fatalf("composite schedule: step %d picked %d, want the only alive process 1", i, got)
		}
	}
}

func TestRandomScheduleExposesSeed(t *testing.T) {
	s := Random(42, nil)
	if got := s.Seed(); got != 42 {
		t.Fatalf("Seed() = %d, want 42", got)
	}
	var _ Seeded = s
	var _ Schedule = s
}

func TestFlickerAvailability(t *testing.T) {
	f := Flicker(3, 2, 0)
	want := []bool{true, true, true, false, false, true, true, true, false, false}
	for i, w := range want {
		if f(int64(i)) != w {
			t.Fatalf("flicker(%d) = %v, want %v", i, f(int64(i)), w)
		}
	}
}

func TestGrowingGapsIsEventuallySparse(t *testing.T) {
	g := GrowingGaps(2, 10, 2)
	// Count on-steps in two windows; the later window must be sparser.
	count := func(from, to int64) (c int64) {
		for s := from; s < to; s++ {
			if g(s) {
				c++
			}
		}
		return c
	}
	early := count(0, 1000)
	late := count(100000, 101000)
	if late >= early {
		t.Fatalf("growing gaps not sparser over time: early=%d late=%d", early, late)
	}
	if early == 0 {
		t.Fatal("process never available early on")
	}
}

func TestGrowingGapsRandomAccessConsistent(t *testing.T) {
	// Availability must be a pure function of the step even when queried
	// out of order (Restrict may probe steps non-monotonically after
	// crashes change the alive set).
	mk := func() Availability { return GrowingGaps(3, 5, 1.5) }
	seq := mk()
	inOrder := make([]bool, 5000)
	for i := range inOrder {
		inOrder[i] = seq(int64(i))
	}
	shuffled := mk()
	// Query backwards.
	for i := len(inOrder) - 1; i >= 0; i-- {
		if shuffled(int64(i)) != inOrder[i] {
			t.Fatalf("availability(%d) differs between in-order and reverse queries", i)
		}
	}
}

func TestRestrictFallsBackWhenAllSuppressed(t *testing.T) {
	s := Restrict(RoundRobin(), map[int]Availability{
		0: func(int64) bool { return false },
		1: func(int64) bool { return false },
	})
	alive := []int{0, 1}
	got := s.Next(0, alive)
	if got != 0 && got != 1 {
		t.Fatalf("restricted schedule returned %d with everyone suppressed", got)
	}
}

func TestRandomScheduleRespectsWeights(t *testing.T) {
	s := Random(7, []float64{0.9, 0.1})
	sched := collectSchedule(t, s, 2, 10000)
	var c0 int64
	for _, p := range sched {
		if p == 0 {
			c0++
		}
	}
	if c0 < 8500 || c0 > 9500 {
		t.Fatalf("process 0 got %d of 10000 steps, want about 9000", c0)
	}
}

func TestScheduleAlwaysReturnsAliveMember(t *testing.T) {
	schedules := map[string]func() Schedule{
		"roundrobin": RoundRobin,
		"pattern":    func() Schedule { return Pattern(0, 3, 1, 2) },
		"weighted":   func() Schedule { return SmoothWeighted([]int{1, 2, 3, 4}) },
		"random":     func() Schedule { return Random(1, nil) },
	}
	for name, mk := range schedules {
		s := mk()
		check := func(step int64, aliveMask uint8) bool {
			var alive []int
			for p := 0; p < 4; p++ {
				if aliveMask&(1<<p) != 0 {
					alive = append(alive, p)
				}
			}
			if len(alive) == 0 {
				return true
			}
			got := s.Next(step, alive)
			for _, p := range alive {
				if p == got {
					return true
				}
			}
			return false
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: schedule returned non-alive process: %v", name, err)
		}
	}
}

func TestReplayScheduleReproducesRun(t *testing.T) {
	// Record a random run, then replay it: the schedules must be identical.
	record := func(s Schedule) []int32 {
		k := New(3, WithSchedule(s))
		for p := 0; p < 3; p++ {
			k.Spawn(p, "spin", func(pp prim.Proc) {
				for {
					pp.Step()
				}
			})
		}
		if _, err := k.Run(500); err != nil {
			t.Fatal(err)
		}
		k.Shutdown()
		return append([]int32(nil), k.Trace().Schedule()...)
	}
	original := record(Random(123, nil))
	replayed := record(Replay(original))
	for i := range original {
		if original[i] != replayed[i] {
			t.Fatalf("replay diverges at step %d: %d vs %d", i, original[i], replayed[i])
		}
	}
}
