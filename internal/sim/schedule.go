package sim

import "math/rand"

// Schedule decides which process takes each step of a run. It is the
// adversary/scheduler of the paper's model: timeliness (Definitions 1 and 2)
// is entirely a property of the step sequence a Schedule produces.
//
// Next is called with the step number and the set of schedulable processes
// (alive, with at least one unfinished task; non-empty, ascending). It must
// return a member of alive; if it does not, the kernel falls back to
// round-robin and counts a schedule miss.
type Schedule interface {
	Next(step int64, alive []int) int
}

// ScheduleFunc adapts a function to the Schedule interface.
type ScheduleFunc func(step int64, alive []int) int

// Next implements Schedule.
func (f ScheduleFunc) Next(step int64, alive []int) int { return f(step, alive) }

// RoundRobin returns a schedule that cycles fairly through the alive
// processes. Under it, every correct process is timely with bound n.
func RoundRobin() Schedule {
	last := -1
	return ScheduleFunc(func(step int64, alive []int) int {
		// Pick the smallest alive id strictly greater than last,
		// wrapping around.
		pick := -1
		for _, p := range alive {
			if p > last {
				pick = p
				break
			}
		}
		if pick == -1 {
			pick = alive[0]
		}
		last = pick
		return pick
	})
}

// Pattern returns a schedule that repeats seq forever. If the preferred
// process is not schedulable at some step, the next alive process at or
// after it (cyclically by id) is chosen instead: when every alive id is
// below the preferred one, the choice wraps around to the smallest alive
// id, wherever it sits in the alive slice.
func Pattern(seq ...int) Schedule {
	if len(seq) == 0 {
		return RoundRobin()
	}
	pattern := append([]int(nil), seq...)
	var i int
	return ScheduleFunc(func(step int64, alive []int) int {
		want := pattern[i%len(pattern)]
		i++
		for _, p := range alive {
			if p >= want {
				return p
			}
		}
		// Cyclic wrap: no alive id is at or after want, so take the
		// smallest alive id explicitly rather than assuming alive[0] is it.
		min := alive[0]
		for _, p := range alive[1:] {
			if p < min {
				min = p
			}
		}
		return min
	})
}

// SmoothWeighted returns a schedule giving process p a share of steps
// proportional to weights[p], interleaved smoothly (the classic smooth
// weighted round-robin). Processes with weight zero or beyond the weights
// slice are scheduled only if no weighted process is alive. A timely process
// is one with a positive weight: its inter-step gap is bounded by roughly
// total/weight.
func SmoothWeighted(weights []int) Schedule {
	w := append([]int(nil), weights...)
	cur := make(map[int]int)
	return ScheduleFunc(func(step int64, alive []int) int {
		total := 0
		best := -1
		for _, p := range alive {
			wp := 0
			if p < len(w) {
				wp = w[p]
			}
			if wp <= 0 {
				continue
			}
			total += wp
			cur[p] += wp
			if best == -1 || cur[p] > cur[best] {
				best = p
			}
		}
		if best == -1 {
			return alive[int(step)%len(alive)]
		}
		cur[best] -= total
		return best
	})
}

// Seeded is implemented by schedules derived from a seed. Frontends use it
// to surface the seed in their output so any run is reproducible.
type Seeded interface {
	Seed() int64
}

// RandomSchedule is a seeded random schedule; see Random.
type RandomSchedule struct {
	seed int64
	w    []float64
	rng  *rand.Rand
}

// Random returns a seeded random schedule: each step picks an alive process
// with probability proportional to weights[p] (weight 1 for processes
// beyond the slice, minimum 0). Deterministic for a given seed.
func Random(seed int64, weights []float64) *RandomSchedule {
	return &RandomSchedule{
		seed: seed,
		w:    append([]float64(nil), weights...),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Seed returns the seed the schedule was built from.
func (s *RandomSchedule) Seed() int64 { return s.seed }

// Next implements Schedule.
func (s *RandomSchedule) Next(step int64, alive []int) int {
	total := 0.0
	for _, p := range alive {
		total += weightOf(s.w, p)
	}
	if total <= 0 {
		return alive[s.rng.Intn(len(alive))]
	}
	x := s.rng.Float64() * total
	for _, p := range alive {
		x -= weightOf(s.w, p)
		if x < 0 {
			return p
		}
	}
	return alive[len(alive)-1]
}

func weightOf(w []float64, p int) float64 {
	if p < len(w) {
		if w[p] < 0 {
			return 0
		}
		return w[p]
	}
	return 1
}

// Replay returns a schedule that re-issues a recorded schedule (from
// Trace.Schedule) verbatim, then falls back to round-robin past its end.
// Together with the kernel's determinism it allows exact re-runs of a
// previously observed interleaving for debugging.
func Replay(recorded []int32) Schedule {
	rr := RoundRobin()
	return ScheduleFunc(func(step int64, alive []int) int {
		if step < int64(len(recorded)) {
			want := int(recorded[step])
			for _, p := range alive {
				if p == want {
					return p
				}
			}
		}
		return rr.Next(step, alive)
	})
}

// Availability tells, per step, whether a process may be scheduled. It is
// how runs shape (un)timeliness: a process that is always available under a
// fair base schedule is timely; one whose unavailable stretches grow without
// bound is not.
type Availability func(step int64) bool

// Always is an Availability that never suppresses the process.
func Always(step int64) bool { return true }

// Flicker returns an Availability that alternates on for onSteps and off
// for offSteps, starting at phase. Note that a flickering process is still
// *timely* in the formal sense (its gaps are bounded by offSteps plus the
// scheduling gap); use GrowingGaps for a genuinely untimely process.
func Flicker(onSteps, offSteps, phase int64) Availability {
	period := onSteps + offSteps
	if period <= 0 {
		return Always
	}
	return func(step int64) bool {
		return (step+phase)%period < onSteps
	}
}

// GrowingGaps returns an Availability whose off-periods grow geometrically:
// on for onSteps, off for firstGap, on for onSteps, off for firstGap*factor,
// and so on. Because the gaps grow without bound, the process is untimely
// (Definition 2 fails for every bound i) while still being correct — the
// paper's "flickering" process whose speed fluctuates forever.
func GrowingGaps(onSteps, firstGap int64, factor float64) Availability {
	if onSteps <= 0 {
		onSteps = 1
	}
	if firstGap <= 0 {
		firstGap = 1
	}
	if factor < 1 {
		factor = 1
	}
	// Precompute cycle boundaries lazily.
	type cycle struct{ start, onEnd, end int64 }
	cycles := []cycle{{0, onSteps, onSteps + firstGap}}
	gap := float64(firstGap)
	return func(step int64) bool {
		for step >= cycles[len(cycles)-1].end {
			gap *= factor
			last := cycles[len(cycles)-1]
			start := last.end
			cycles = append(cycles, cycle{start, start + onSteps, start + onSteps + int64(gap)})
		}
		// Binary search not needed: steps are queried in order almost
		// always; scan from the back.
		for i := len(cycles) - 1; i >= 0; i-- {
			c := cycles[i]
			if step >= c.start {
				return step < c.onEnd
			}
		}
		return true
	}
}

// Restrict wraps base so that processes whose Availability reports false at
// a step are not offered to it. If every alive process is suppressed, the
// restriction is ignored for that step (time does not stop).
func Restrict(base Schedule, avail map[int]Availability) Schedule {
	return ScheduleFunc(func(step int64, alive []int) int {
		filtered := make([]int, 0, len(alive))
		for _, p := range alive {
			if fn, ok := avail[p]; ok && !fn(step) {
				continue
			}
			filtered = append(filtered, p)
		}
		if len(filtered) == 0 {
			filtered = alive
		}
		return base.Next(step, filtered)
	})
}

// SoloAfter wraps base so that from step fromStep on, only process proc is
// scheduled (while it is alive). It builds the obstruction-freedom scenario
// of Section 1.1: a process that eventually runs solo is timely by
// definition, however slow it is in real time.
func SoloAfter(base Schedule, proc int, fromStep int64) Schedule {
	return ScheduleFunc(func(step int64, alive []int) int {
		if step >= fromStep && contains(alive, proc) {
			return proc
		}
		return base.Next(step, alive)
	})
}
