package sim

import (
	"testing"

	"tbwf/internal/prim"
)

// TestEffectDelayStretchesOperations: with a constant-d delay installed,
// each EffectDelay call costs the task exactly d extra steps; without one
// it costs nothing.
func TestEffectDelayStretchesOperations(t *testing.T) {
	const d, ops = 3, 10
	run := func(install bool) int64 {
		k := New(1)
		if install {
			k.SetEffectDelay(func() int64 { return d })
		}
		k.Spawn(0, "writer", func(p prim.Proc) {
			for i := 0; i < ops; i++ {
				p.Step() // invocation
				k.EffectDelay()
				p.Step() // response
			}
		})
		res, err := k.Run(1_000)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		k.Shutdown()
		return res.Steps
	}
	base := run(false)
	delayed := run(true)
	if delayed-base != d*ops {
		t.Fatalf("delay cost %d steps over %d ops, want %d", delayed-base, ops, d*ops)
	}
}

// TestEffectDelayCrashInterrupt: a crash landing inside the stretched
// window unwinds the task there — the delayed effect is interruptible, not
// atomic with the invocation.
func TestEffectDelayCrashInterrupt(t *testing.T) {
	k := New(1)
	k.SetEffectDelay(func() int64 { return 100 })
	reached := false
	k.Spawn(0, "writer", func(p prim.Proc) {
		p.Step()
		k.EffectDelay()
		reached = true
	})
	k.CrashAt(0, 10)
	if _, err := k.Run(1_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	k.Shutdown()
	if reached {
		t.Fatal("task survived a crash scheduled inside its effect-delay window")
	}
}

// TestEffectDelayNilIsFree: no fn installed, EffectDelay consumes no steps
// and is callable from any task.
func TestEffectDelayNilIsFree(t *testing.T) {
	k := New(1)
	k.Spawn(0, "t", func(p prim.Proc) {
		k.EffectDelay()
		p.Step()
		k.EffectDelay()
	})
	res, err := k.Run(100)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	k.Shutdown()
	if !res.Idle || res.Steps != 2 {
		t.Fatalf("res = %+v, want idle after 2 steps", res)
	}
}
