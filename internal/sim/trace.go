package sim

// Trace records what happened during a run: which process took each step
// and, optionally, every shared-register write. The timeliness analyzer
// (analysis.go) and the experiment harness (internal/exp) consume it.
type Trace struct {
	recordSchedule bool
	recordWrites   bool

	// schedule[i] is the process that took step i.
	schedule []int32
	// writes are shared-register write events, in step order.
	writes []WriteEvent
}

// WriteEvent is one shared-register write.
type WriteEvent struct {
	Step     int64
	Proc     int
	Register string
	Aborted  bool
}

func newTrace(n int) *Trace {
	return &Trace{recordSchedule: true}
}

func (tr *Trace) recordStep(proc int) {
	if tr.recordSchedule {
		tr.schedule = append(tr.schedule, int32(proc))
	}
}

// RecordWrite appends a write event if the write log is enabled. It is
// called by internal/register.
func (tr *Trace) RecordWrite(ev WriteEvent) {
	if tr.recordWrites {
		tr.writes = append(tr.writes, ev)
	}
}

// WritesEnabled reports whether the write log is being recorded.
func (tr *Trace) WritesEnabled() bool { return tr.recordWrites }

// Schedule returns the recorded schedule: element i is the process that
// took step i. The returned slice is the trace's own storage; treat it as
// read-only.
func (tr *Trace) Schedule() []int32 { return tr.schedule }

// Writes returns the recorded write events. The returned slice is the
// trace's own storage; treat it as read-only.
func (tr *Trace) Writes() []WriteEvent { return tr.writes }

// Metrics holds aggregate counters for a run. All fields are written only
// between steps (single-threaded), so reads after Run are safe.
type Metrics struct {
	// Steps[p] counts the steps taken by process p.
	Steps []int64
	// Reads[p], Writes[p] count register operations issued by p
	// (including aborted ones).
	Reads  []int64
	Writes []int64
	// ReadAborts[p], WriteAborts[p] count aborted operations on abortable
	// registers issued by p.
	ReadAborts  []int64
	WriteAborts []int64
	// ScheduleMisses counts times the schedule policy returned a process
	// that was not schedulable and the kernel fell back to round-robin.
	ScheduleMisses int64
}

func newMetrics(n int) *Metrics {
	return &Metrics{
		Steps:       make([]int64, n),
		Reads:       make([]int64, n),
		Writes:      make([]int64, n),
		ReadAborts:  make([]int64, n),
		WriteAborts: make([]int64, n),
	}
}

// TotalOps returns the total number of register operations issued.
func (m *Metrics) TotalOps() int64 {
	var t int64
	for p := range m.Reads {
		t += m.Reads[p] + m.Writes[p]
	}
	return t
}

// TotalAborts returns the total number of aborted register operations.
func (m *Metrics) TotalAborts() int64 {
	var t int64
	for p := range m.ReadAborts {
		t += m.ReadAborts[p] + m.WriteAborts[p]
	}
	return t
}
