package sim

import "errors"

// Trace records what happened during a run: which process took each step
// and, optionally, every shared-register write. The timeliness analyzer
// (analysis.go) and the experiment harness (internal/exp) consume it.
type Trace struct {
	n              int // number of processes (for the analyzer)
	recordSchedule bool
	recordWrites   bool

	// schedule[i] is the process that took step i.
	schedule []int32
	// writes are shared-register write events, in step order.
	writes []WriteEvent
}

// WriteEvent is one shared-register write.
type WriteEvent struct {
	Step     int64
	Proc     int
	Register string
	Aborted  bool
}

func newTrace(n int) *Trace {
	return &Trace{n: n, recordSchedule: true}
}

// maxReserveSteps caps how much schedule storage a single Run budget
// preallocates (1M steps = 4 MiB). Budgets are often generous upper bounds
// that idle runs never reach; beyond the cap, amortized append growth takes
// over.
const maxReserveSteps = 1 << 20

// reserve preallocates schedule storage for up to budget more steps, so the
// per-step record is a plain indexed store instead of a grow-forever
// append. Called by Kernel.Run with its step budget.
func (tr *Trace) reserve(budget int64) {
	if !tr.recordSchedule || budget <= 0 {
		return
	}
	if budget > maxReserveSteps {
		budget = maxReserveSteps
	}
	need := len(tr.schedule) + int(budget)
	if cap(tr.schedule) >= need {
		return
	}
	grown := make([]int32, len(tr.schedule), need)
	copy(grown, tr.schedule)
	tr.schedule = grown
}

func (tr *Trace) recordStep(proc int) {
	if tr.recordSchedule {
		tr.schedule = append(tr.schedule, int32(proc))
	}
}

// RecordWrite appends a write event if the write log is enabled. It is
// called by internal/register.
func (tr *Trace) RecordWrite(ev WriteEvent) {
	if tr.recordWrites {
		tr.writes = append(tr.writes, ev)
	}
}

// WritesEnabled reports whether the write log is being recorded.
func (tr *Trace) WritesEnabled() bool { return tr.recordWrites }

// ScheduleEnabled reports whether the schedule is being recorded.
func (tr *Trace) ScheduleEnabled() bool { return tr.recordSchedule }

// Schedule returns the recorded schedule: element i is the process that
// took step i. The returned slice is the trace's own storage; treat it as
// read-only. It is nil when recording was disabled with
// WithScheduleTrace(false); use Analyze to get a clear error instead of an
// everyone-untimely misreading.
func (tr *Trace) Schedule() []int32 { return tr.schedule }

// Writes returns the recorded write events. The returned slice is the
// trace's own storage; treat it as read-only.
func (tr *Trace) Writes() []WriteEvent { return tr.writes }

// ErrNoScheduleTrace is returned by Trace.Analyze when schedule recording
// was disabled.
var ErrNoScheduleTrace = errors.New(
	"sim: schedule trace disabled (WithScheduleTrace(false)): timeliness cannot be analyzed")

// Analyze computes the timeliness report for the recorded schedule. Unlike
// calling the package-level Analyze on Schedule() directly, it fails
// clearly when recording was disabled — an empty schedule would otherwise
// report every process as having taken no steps (unbounded, untimely).
func (tr *Trace) Analyze() (*TimelinessReport, error) {
	if !tr.recordSchedule {
		return nil, ErrNoScheduleTrace
	}
	return Analyze(tr.schedule, tr.n), nil
}

// Bytes returns the memory retained by the trace's schedule and write
// buffers, for capacity accounting in RunStats.
func (tr *Trace) Bytes() int64 {
	const writeEventSize = 8 + 8 + 16 + 8 // step + proc + string header + bool, padded
	return int64(cap(tr.schedule))*4 + int64(cap(tr.writes))*writeEventSize
}

// Metrics holds aggregate counters for a run. All fields are written only
// between steps (single-threaded), so reads after Run are safe.
type Metrics struct {
	// Steps[p] counts the steps taken by process p.
	Steps []int64
	// Reads[p], Writes[p] count register operations issued by p
	// (including aborted ones).
	Reads  []int64
	Writes []int64
	// ReadAborts[p], WriteAborts[p] count aborted operations on abortable
	// registers issued by p.
	ReadAborts  []int64
	WriteAborts []int64
	// ScheduleMisses counts times the schedule policy returned a process
	// that was not schedulable and the kernel fell back to round-robin.
	ScheduleMisses int64
}

func newMetrics(n int) *Metrics {
	return &Metrics{
		Steps:       make([]int64, n),
		Reads:       make([]int64, n),
		Writes:      make([]int64, n),
		ReadAborts:  make([]int64, n),
		WriteAborts: make([]int64, n),
	}
}

// TotalOps returns the total number of register operations issued.
func (m *Metrics) TotalOps() int64 {
	var t int64
	for p := range m.Reads {
		t += m.Reads[p] + m.Writes[p]
	}
	return t
}

// TotalAborts returns the total number of aborted register operations.
func (m *Metrics) TotalAborts() int64 {
	var t int64
	for p := range m.ReadAborts {
		t += m.ReadAborts[p] + m.WriteAborts[p]
	}
	return t
}
