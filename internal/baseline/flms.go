package baseline

import (
	"fmt"
	"sync/atomic"

	"tbwf/internal/prim"
	"tbwf/internal/qa"
)

// PanicClient is the panic-mode booster in the style of [7] (Fich,
// Luchangco, Moir, Shavit: "Obstruction-free algorithms can be practically
// wait-free"). The fast path is an optimistic obstruction-free attempt; on
// contention (⊥) the process publishes a timestamp in its panic register
// and the whole system defers to the process with the minimum
// (timestamp, id) until that process finishes and clears its register.
//
// If all processes are timely, the priority holder runs effectively solo
// and finishes quickly, so every operation completes: obstruction-freedom
// is boosted to wait-freedom. If the priority holder is *untimely*, every
// other process — however timely — spins for the full length of its
// scheduling gaps: a partial loss of synchrony becomes a total loss of
// liveness, which is precisely the failure mode TBWF avoids (Section 1.2).
type PanicClient[S, O, R any] struct {
	me     int
	n      int
	handle *qa.Handle[S, O, R]
	// panicReg[q] holds q's panic timestamp (0 = not in panic mode).
	panicReg []prim.Register[int64]

	clock     int64
	completed atomic.Int64
	inPanic   atomic.Bool
}

// Panicking reports whether the client's panic timestamp is visible in the
// shared register (the flag is set only after the register write lands, so
// an observer never sees a panic before the other processes can). It is a
// harness observable (used to construct adversarial runs) and consumes no
// simulated steps.
func (c *PanicClient[S, O, R]) Panicking() bool { return c.inPanic.Load() }

// NewPanicClient wires process me's booster endpoint. panicReg[q] must be
// the shared panic register of process q (atomic, initialized to 0), for
// every q including me.
func NewPanicClient[S, O, R any](me int, h *qa.Handle[S, O, R], panicReg []prim.Register[int64]) (*PanicClient[S, O, R], error) {
	if h == nil {
		return nil, fmt.Errorf("baseline: nil qa handle")
	}
	if me < 0 || me >= len(panicReg) {
		return nil, fmt.Errorf("baseline: me = %d out of range for %d panic registers", me, len(panicReg))
	}
	for q, r := range panicReg {
		if r == nil {
			return nil, fmt.Errorf("baseline: nil panic register for process %d", q)
		}
	}
	return &PanicClient[S, O, R]{me: me, n: len(panicReg), handle: h, panicReg: panicReg}, nil
}

// anyPanicking reports whether some process currently advertises a panic
// timestamp. In [7] every operation checks the panic state first: once
// anyone panics, *all* processes serialize behind the priority queue —
// which is exactly what couples everyone's progress to the slowest
// panicking process.
func (c *PanicClient[S, O, R]) anyPanicking() bool {
	for q := 0; q < c.n; q++ {
		if q == c.me {
			continue
		}
		if c.panicReg[q].Read() != 0 {
			return true
		}
	}
	return false
}

// Invoke executes op: optimistically if no one is panicking, then through
// panic-mode arbitration. It blocks until the operation completes.
func (c *PanicClient[S, O, R]) Invoke(p prim.Proc, op O) R {
	attempted := false
	if !c.anyPanicking() {
		// Fast path: one optimistic obstruction-free attempt.
		attempted = true
		if r, ok := c.handle.Invoke(op); ok {
			c.completed.Add(1)
			return r
		}
	}
	// Enter panic mode. If the optimistic attempt ran, its fate is
	// unknown, so once we hold priority we start with a query.
	c.clock++
	myTS := c.clock
	c.panicReg[c.me].Write(myTS)
	c.inPanic.Store(true)
	doQuery := attempted
	for {
		// Find the minimum (timestamp, id) among panicking processes.
		winner, winTS := c.me, myTS
		for q := 0; q < c.n; q++ {
			if q == c.me {
				continue
			}
			ts := c.panicReg[q].Read()
			if ts != 0 && (ts < winTS || (ts == winTS && q < winner)) {
				winner, winTS = q, ts
			}
		}
		if winner == c.me {
			// We hold priority: drive the Figure 8 machine one transition.
			if doQuery {
				r, out := c.handle.Query()
				switch out {
				case qa.QueryApplied:
					c.panicReg[c.me].Write(0)
					c.inPanic.Store(false)
					c.completed.Add(1)
					return r
				case qa.QueryNotApplied:
					doQuery = false
				}
			} else {
				r, ok := c.handle.Invoke(op)
				if ok {
					c.panicReg[c.me].Write(0)
					c.inPanic.Store(false)
					c.completed.Add(1)
					return r
				}
				doQuery = true
			}
		}
		p.Step()
	}
}

// Completed returns the number of operations the client has finished.
func (c *PanicClient[S, O, R]) Completed() int64 { return c.completed.Load() }
