package baseline

import (
	"fmt"
	"testing"

	"tbwf/internal/register"

	"tbwf/internal/deploy"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// completer abstracts the three baseline clients for shared test drivers.
type completer interface {
	Completed() int64
}

// invoker is a client that can run counter ops.
type invoker interface {
	completer
	Invoke(p prim.Proc, op objtype.CounterOp) int64
}

// spawnHammer gives each process a task that invokes Add(1) forever.
func spawnHammer(k *sim.Kernel, clients []invoker) {
	for p := range clients {
		p := p
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			for {
				clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
			}
		})
	}
}

func asInvokers[C invoker](cs []C) []invoker {
	out := make([]invoker, len(cs))
	for i, c := range cs {
		out[i] = c
	}
	return out
}

// weakAdversary is the abort policy used for baseline runs; see the
// comment in TestBaselinesCompleteWhenAllTimely.
func weakAdversary() register.AbOption {
	return register.WithAbortPolicy(register.ProbAbort(0.5, 23))
}

// untimelySchedule makes process 0 untimely with geometrically growing
// gaps while the rest stay timely.
func untimelySchedule() sim.Schedule {
	return sim.Restrict(sim.Random(17, nil), map[int]sim.Availability{
		0: sim.GrowingGaps(400, 800, 1.6),
	})
}

// All three baselines do complete operations when everyone is timely —
// they are correct boosters under their own assumption.
func TestBaselinesCompleteWhenAllTimely(t *testing.T) {
	builders := map[string]func(k *sim.Kernel) ([]invoker, error){
		// The baselines get a *weaker* adversary than the TBWF tests use:
		// under the strongest always-abort adversary their unarbitrated
		// apply phases livelock even with everyone timely, which is
		// itself part of the paper's point. Probabilistic aborts let
		// their happy path work.
		"of-only": func(k *sim.Kernel) ([]invoker, error) {
			cs, err := BuildOF[int64, objtype.CounterOp, int64](register.Substrate(k), objtype.Counter{}, weakAdversary())
			return asInvokers(cs), err
		},
		"panic-booster": func(k *sim.Kernel) ([]invoker, error) {
			cs, err := BuildPanic[int64, objtype.CounterOp, int64](register.Substrate(k), objtype.Counter{}, weakAdversary())
			return asInvokers(cs), err
		},
		"ack-booster": func(k *sim.Kernel) ([]invoker, error) {
			cs, err := BuildAck[int64, objtype.CounterOp, int64](register.Substrate(k), objtype.Counter{}, weakAdversary())
			return asInvokers(cs), err
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			k := sim.New(3, sim.WithSchedule(sim.Random(9, nil)))
			clients, err := build(k)
			if err != nil {
				t.Fatal(err)
			}
			spawnHammer(k, clients)
			if _, err := k.Run(2_000_000); err != nil {
				t.Fatal(err)
			}
			k.Shutdown()
			for p, c := range clients {
				if c.Completed() == 0 {
					t.Errorf("process %d completed no ops with everyone timely", p)
				}
			}
		})
	}
}

// halves runs the scenario and returns each process's completions in the
// first and second half of the budget.
func halves(t *testing.T, k *sim.Kernel, clients []invoker, budget int64) (first, second []int64) {
	t.Helper()
	spawnHammer(k, clients)
	if _, err := k.Run(budget / 2); err != nil {
		t.Fatal(err)
	}
	first = make([]int64, len(clients))
	for p, c := range clients {
		first[p] = c.Completed()
	}
	if _, err := k.Run(budget / 2); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	second = make([]int64, len(clients))
	for p, c := range clients {
		second[p] = c.Completed() - first[p]
	}
	return first, second
}

// The panic booster's collapse: an untimely process that holds the minimum
// (timestamp, id) priority stalls the *timely* processes for the length of
// its growing gaps — their throughput decays instead of staying steady.
// The run is *constructed*, as the paper says it can be: process 0's
// scheduling gaps begin exactly when it holds the panic priority, and they
// grow without bound. A state-oblivious gap pattern would only stall the
// others when a gap happened to catch 0 inside panic mode.
func TestPanicBoosterCollapsesUnderOneUntimelyProcess(t *testing.T) {
	var cs []*PanicClient[int64, objtype.CounterOp, int64]
	// Adversarial availability for process 0: as soon as it publishes a
	// panic timestamp, suppress it for a gap that doubles each time, then
	// give it a burst long enough to finish its operation (so it stays
	// correct and untimely rather than effectively crashed).
	var gapUntil, burstUntil int64
	gap := int64(10_000)
	const burst = 5_000
	avail := func(step int64) bool {
		if step < gapUntil {
			return false
		}
		if step < burstUntil {
			return true
		}
		if len(cs) > 0 && cs[0].panicReg[0].(*register.Atomic[int64]).Peek() != 0 {
			gapUntil = step + gap
			gap *= 2
			burstUntil = gapUntil + burst
			return false
		}
		return true
	}
	sched := sim.Restrict(sim.Random(17, nil), map[int]sim.Availability{0: avail})
	k2 := sim.New(3, sim.WithSchedule(sched))
	cs, err := BuildPanic[int64, objtype.CounterOp, int64](register.Substrate(k2), objtype.Counter{}, weakAdversary())
	if err != nil {
		t.Fatal(err)
	}
	first, second := halves(t, k2, asInvokers(cs), 4_000_000)
	timelyFirst := first[1] + first[2]
	timelySecond := second[1] + second[2]
	if timelyFirst == 0 {
		t.Fatal("timely processes made no progress even early on")
	}
	if timelySecond*2 >= timelyFirst {
		t.Errorf("no collapse: timely completions first half %d, second half %d (want second < half of first)",
			timelyFirst, timelySecond)
	}
}

// The ack booster's collapse: adaptive timeouts for the untimely process
// grow without bound and every round waits for its gaps.
func TestAckBoosterCollapsesUnderOneUntimelyProcess(t *testing.T) {
	k := sim.New(3, sim.WithSchedule(untimelySchedule()))
	cs, err := BuildAck[int64, objtype.CounterOp, int64](register.Substrate(k), objtype.Counter{}, weakAdversary())
	if err != nil {
		t.Fatal(err)
	}
	first, second := halves(t, k, asInvokers(cs), 4_000_000)
	timelyFirst := first[1] + first[2]
	timelySecond := second[1] + second[2]
	if timelyFirst == 0 {
		t.Fatal("timely processes made no progress even early on")
	}
	if timelySecond*2 >= timelyFirst {
		t.Errorf("no collapse: timely completions first half %d, second half %d", timelyFirst, timelySecond)
	}
	// The mechanism: suspicion timeouts for process 0 grew at the timely
	// clients.
	if cs[1].Timeout(0) <= 16 && cs[2].Timeout(0) <= 16 {
		t.Errorf("suspicion timeouts for the untimely process never grew: %d, %d",
			cs[1].Timeout(0), cs[2].Timeout(0))
	}
}

// The contrast that is the paper's point: in the *same* scenario, the TBWF
// stack keeps the timely processes' throughput steady.
func TestTBWFDoesNotCollapseInSameScenario(t *testing.T) {
	k := sim.New(3, sim.WithSchedule(untimelySchedule()))
	st, err := deploy.Build[int64, objtype.CounterOp, int64](deploy.Sim(k), objtype.Counter{}, deploy.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		p := p
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			for {
				st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
			}
		})
	}
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	first := st.Clients[1].Completed() + st.Clients[2].Completed()
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	second := st.Clients[1].Completed() + st.Clients[2].Completed() - first
	if first == 0 {
		t.Fatal("TBWF timely processes made no progress in first half")
	}
	if second*2 < first {
		t.Errorf("TBWF throughput collapsed too: first half %d, second half %d", first, second)
	}
}
