package baseline

import (
	"fmt"
	"sync/atomic"

	"tbwf/internal/prim"
	"tbwf/internal/qa"
)

// AckClient is an acknowledgement-round booster in the style of [8]
// (Guerraoui, Kapalka, Kouznetsov: boosting via an eventually perfect
// failure detector). Before an operation may complete, the caller
// announces it and waits until every process it does not currently
// suspect has acknowledged the announcement. Suspicion uses per-process
// adaptive timeouts: a timeout that proves wrong (the suspected process
// later acknowledges) doubles, which is what gives the failure detector
// its eventual accuracy.
//
// The collapse: an untimely-but-correct process keeps disproving its
// suspicions, so its timeout grows without bound, and then every
// operation of every process waits for its (unboundedly growing) gaps.
// Crashed processes are harmless — they never disprove a suspicion, so
// their timeout freezes and rounds skip them after a fixed wait. That is
// the precise sense in which boosting through 3P-style detectors assumes
// all correct processes are timely (Section 2 of the paper).
type AckClient[S, O, R any] struct {
	me     int
	n      int
	handle *qa.Handle[S, O, R]
	// announce[p] is p's announcement register (the sequence number of
	// the operation p wants to complete).
	announce []prim.Register[int64]
	// acks[q][p] is q's acknowledgement of p's announcement.
	acks [][]prim.Register[int64]

	seq         int64
	timeout     []int64
	suspectedAt []int64 // seq at which q was last suspected; 0 = none pending
	completed   atomic.Int64
}

// NewAckClient wires process me's booster endpoint. announce[q] is q's
// announcement register; acks[q][p] is the register q uses to acknowledge
// p (both atomic, initialized to 0).
func NewAckClient[S, O, R any](me int, h *qa.Handle[S, O, R], announce []prim.Register[int64], acks [][]prim.Register[int64]) (*AckClient[S, O, R], error) {
	if h == nil {
		return nil, fmt.Errorf("baseline: nil qa handle")
	}
	n := len(announce)
	if me < 0 || me >= n || len(acks) != n {
		return nil, fmt.Errorf("baseline: inconsistent ack wiring (me=%d, %d announces, %d ack rows)", me, n, len(acks))
	}
	c := &AckClient[S, O, R]{
		me: me, n: n, handle: h,
		announce:    announce,
		acks:        acks,
		timeout:     make([]int64, n),
		suspectedAt: make([]int64, n),
	}
	for q := range c.timeout {
		c.timeout[q] = 16
	}
	return c, nil
}

// AckerTask returns the acknowledgement task every process must run: it
// watches the other processes' announcement registers and acknowledges
// each new announcement.
func (c *AckClient[S, O, R]) AckerTask() func(prim.Proc) {
	return func(p prim.Proc) {
		lastSeen := make([]int64, c.n)
		for {
			for q := 0; q < c.n; q++ {
				if q == c.me {
					continue
				}
				a := c.announce[q].Read()
				if a != lastSeen[q] {
					lastSeen[q] = a
					c.acks[c.me][q].Write(a)
				}
			}
			p.Step()
		}
	}
}

// Invoke executes op: announce, collect acknowledgements from every
// non-suspected process, then drive the operation to completion on the
// query-abortable object.
func (c *AckClient[S, O, R]) Invoke(p prim.Proc, op O) R {
	c.seq++
	c.announce[c.me].Write(c.seq)

	waited := make([]int64, c.n)
	pending := make([]bool, c.n)
	for q := 0; q < c.n; q++ {
		pending[q] = q != c.me
	}
	remaining := c.n - 1
	for remaining > 0 {
		for q := 0; q < c.n; q++ {
			if !pending[q] {
				continue
			}
			got := c.acks[q][c.me].Read()
			if got == c.seq {
				pending[q] = false
				remaining--
				// Eventual accuracy: an ack from a process we previously
				// suspected proves the suspicion false; grow its timeout.
				if c.suspectedAt[q] != 0 {
					c.timeout[q] *= 2
					c.suspectedAt[q] = 0
				}
				continue
			}
			waited[q]++
			if waited[q] > c.timeout[q] {
				// Suspect q and move on without its ack.
				pending[q] = false
				remaining--
				c.suspectedAt[q] = c.seq
			}
		}
		p.Step()
	}

	// Acknowledged (or suspected) by everyone: apply the operation.
	doQuery := false
	for {
		if doQuery {
			r, out := c.handle.Query()
			switch out {
			case qa.QueryApplied:
				c.completed.Add(1)
				return r
			case qa.QueryNotApplied:
				doQuery = false
			}
		} else {
			r, ok := c.handle.Invoke(op)
			if ok {
				c.completed.Add(1)
				return r
			}
			doQuery = true
		}
		p.Step()
	}
}

// Completed returns the number of operations the client has finished.
func (c *AckClient[S, O, R]) Completed() int64 { return c.completed.Load() }

// Timeout returns the client's current suspicion timeout for process q —
// observable evidence of the unbounded growth that causes the collapse.
func (c *AckClient[S, O, R]) Timeout(q int) int64 { return c.timeout[q] }
