// Package baseline implements the comparison systems the paper positions
// TBWF against (Sections 1.2 and 2):
//
//   - OFClient: a plain obstruction-free client — the Figure 8 retry loop
//     on the query-abortable object with *no* leader election. It
//     guarantees progress only to a process that eventually runs solo;
//     under contention it may livelock.
//   - PanicClient: a panic-mode booster in the style of Fich, Luchangco,
//     Moir and Shavit (DISC'05) [7]: on contention, processes publish
//     timestamps and defer to the minimum (timestamp, id). If every
//     process is timely this boosts obstruction-freedom to (near)
//     wait-freedom; if the priority holder is untimely, *everyone* stalls
//     for the length of its scheduling gaps — the non-graceful collapse
//     the paper describes.
//   - AckClient: an acknowledgement-round booster in the style of the
//     failure-detector boosting of Guerraoui, Kapalka and Kouznetsov [8]:
//     an operation completes only after every non-suspected process
//     acknowledges it, with adaptive suspicion timeouts (needed for
//     eventual accuracy). An untimely process forces the timeouts up and
//     then stalls every round for the length of its gaps, so throughput
//     degrades to zero for everyone.
//
// These are mechanism-level reimplementations, not line-by-line
// reproductions of [7] and [8]; they reproduce exactly the property the
// paper contrasts with — progress collapses for all processes once one
// process stops being timely — which the E2 experiment measures.
package baseline

import (
	"fmt"
	"sync/atomic"

	"tbwf/internal/prim"
	"tbwf/internal/qa"
)

// OFClient is an obstruction-free client of a query-abortable object: it
// retries the invoke/query state machine of Figure 8 until the operation
// lands. No arbitration: progress is guaranteed only in the absence of
// contention.
type OFClient[S, O, R any] struct {
	handle    *qa.Handle[S, O, R]
	completed atomic.Int64
}

// NewOFClient wraps a query-abortable handle.
func NewOFClient[S, O, R any](h *qa.Handle[S, O, R]) (*OFClient[S, O, R], error) {
	if h == nil {
		return nil, fmt.Errorf("baseline: nil qa handle")
	}
	return &OFClient[S, O, R]{handle: h}, nil
}

// Invoke executes op, retrying through ⊥ and F outcomes until it takes
// effect. It may never return under perpetual contention — that is the
// point of this baseline.
func (c *OFClient[S, O, R]) Invoke(p prim.Proc, op O) R {
	doQuery := false
	for {
		if doQuery {
			r, out := c.handle.Query()
			switch out {
			case qa.QueryApplied:
				c.completed.Add(1)
				return r
			case qa.QueryNotApplied:
				doQuery = false
			}
		} else {
			r, ok := c.handle.Invoke(op)
			if ok {
				c.completed.Add(1)
				return r
			}
			doQuery = true
		}
		p.Step()
	}
}

// Completed returns the number of operations the client has finished.
func (c *OFClient[S, O, R]) Completed() int64 { return c.completed.Load() }
