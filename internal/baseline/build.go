package baseline

import (
	"fmt"

	"tbwf/internal/prim"
	"tbwf/internal/qa"
	"tbwf/internal/register"
)

// BuildOF wires an obstruction-free client per substrate process over a
// fresh query-abortable object.
func BuildOF[S, O, R any](sub prim.Substrate, typ qa.Type[S, O, R], opts ...register.AbOption) ([]*OFClient[S, O, R], error) {
	obj, err := qa.New(typ, sub.N(), qa.SubstrateFactories[O](sub, opts...), 0)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	clients := make([]*OFClient[S, O, R], sub.N())
	for p := range clients {
		c, err := NewOFClient(obj.Handle(p))
		if err != nil {
			return nil, err
		}
		clients[p] = c
	}
	return clients, nil
}

// BuildPanic wires a panic-mode booster client per substrate process: a
// fresh query-abortable object plus one shared atomic panic register per
// process.
func BuildPanic[S, O, R any](sub prim.Substrate, typ qa.Type[S, O, R], opts ...register.AbOption) ([]*PanicClient[S, O, R], error) {
	obj, err := qa.New(typ, sub.N(), qa.SubstrateFactories[O](sub, opts...), 0)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	n := sub.N()
	panicRegs := make([]prim.Register[int64], n)
	for q := 0; q < n; q++ {
		panicRegs[q] = register.SubstrateAtomic(sub, fmt.Sprintf("Panic[%d]", q), int64(0))
	}
	clients := make([]*PanicClient[S, O, R], n)
	for p := range clients {
		c, err := NewPanicClient(p, obj.Handle(p), panicRegs)
		if err != nil {
			return nil, err
		}
		clients[p] = c
	}
	return clients, nil
}

// BuildAck wires an acknowledgement-round booster client per substrate
// process — a fresh query-abortable object, the announcement and ack
// register matrices — and spawns every process's acker task.
func BuildAck[S, O, R any](sub prim.Substrate, typ qa.Type[S, O, R], opts ...register.AbOption) ([]*AckClient[S, O, R], error) {
	obj, err := qa.New(typ, sub.N(), qa.SubstrateFactories[O](sub, opts...), 0)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	n := sub.N()
	announce := make([]prim.Register[int64], n)
	acks := make([][]prim.Register[int64], n)
	for q := 0; q < n; q++ {
		announce[q] = register.SubstrateAtomic(sub, fmt.Sprintf("Announce[%d]", q), int64(0))
		acks[q] = make([]prim.Register[int64], n)
		for p := 0; p < n; p++ {
			if p != q {
				acks[q][p] = register.SubstrateAtomic(sub, fmt.Sprintf("Ack[%d,%d]", q, p), int64(0))
			}
		}
	}
	clients := make([]*AckClient[S, O, R], n)
	for p := range clients {
		c, err := NewAckClient(p, obj.Handle(p), announce, acks)
		if err != nil {
			return nil, err
		}
		clients[p] = c
		sub.Spawn(p, fmt.Sprintf("acker[%d]", p), c.AckerTask())
	}
	return clients, nil
}
