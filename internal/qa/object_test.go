package qa

import (
	"fmt"
	"testing"

	"tbwf/internal/prim"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// counter is a fetch-and-add sequential type (duplicated minimally here to
// avoid an import cycle with objtype's tests).
type counter struct{}

func (counter) Init() int64                           { return 0 }
func (counter) Apply(s int64, d int64) (int64, int64) { return s + d, s }

// opFate is what a client learned about one of its operations.
type opFate struct {
	applied bool
	unknown bool
	resp    int64
}

// protocolOnce runs the Figure 8 client protocol for a single operation:
// invoke, and on ⊥ query until the fate settles, re-invoking on F. It
// gives up ("unknown") after maxCalls calls to keep tests bounded.
func protocolOnce(h *Handle[int64, int64, int64], p prim.Proc, op int64, maxCalls int) opFate {
	calls := 0
	for {
		if calls++; calls > maxCalls {
			return opFate{unknown: true}
		}
		resp, ok := h.Invoke(op)
		if ok {
			return opFate{applied: true, resp: resp}
		}
		for {
			if calls++; calls > maxCalls {
				return opFate{unknown: true}
			}
			r, out := h.Query()
			if out == QueryApplied {
				return opFate{applied: true, resp: r}
			}
			if out == QueryNotApplied {
				break // F: retry the invoke
			}
			p.Step() // ⊥: query again
		}
	}
}

// A solo process must complete every operation without a single ⊥
// (Invoke's solo-progress guarantee: the consensus ballot runs
// uncontended).
func TestSoloInvokesNeverAbort(t *testing.T) {
	k := sim.New(1)
	so, err := NewSim[int64, int64, int64](k, counter{})
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	k.Spawn(0, "client", func(p prim.Proc) {
		h := so.Handle(0)
		for i := 0; i < 50; i++ {
			resp, ok := h.Invoke(1)
			if !ok {
				t.Errorf("solo invoke %d aborted", i)
				return
			}
			got = append(got, resp)
		}
	})
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if len(got) != 50 {
		t.Fatalf("completed %d ops, want 50", len(got))
	}
	for i, r := range got {
		if r != int64(i) {
			t.Fatalf("fetch-and-add responses out of order: got[%d] = %d", i, r)
		}
	}
}

// Concurrent clients under a random schedule and probabilistic aborts:
// whatever the protocol reports as applied must be consistent — distinct
// fetch-and-add responses, and a final value bounded by the known/unknown
// fate counts.
func TestConcurrentFetchAddLinearizes(t *testing.T) {
	const n, opsEach = 4, 30
	k := sim.New(n, sim.WithSchedule(sim.Random(5, nil)))
	so, err := NewSim[int64, int64, int64](k, counter{},
		register.WithAbortPolicy(register.ProbAbort(0.3, 7)))
	if err != nil {
		t.Fatal(err)
	}
	fates := make([][]opFate, n)
	for p := 0; p < n; p++ {
		p := p
		k.Spawn(p, "client", func(pp prim.Proc) {
			h := so.Handle(p)
			for i := 0; i < opsEach; i++ {
				fates[p] = append(fates[p], protocolOnce(h, pp, 1, 4000))
			}
		})
	}
	if _, err := k.Run(30_000_000); err != nil {
		t.Fatal(err)
	}

	// Verify with a solo reader once the clients are done.
	var final int64
	var log []Desc[int64]
	k.Spawn(0, "verifier", func(p prim.Proc) {
		h := so.Handle(0)
		s, ok := h.Sync()
		if !ok {
			t.Error("solo sync aborted")
		}
		final = s
		log, ok = h.SnapshotLog()
		if !ok {
			t.Error("solo log snapshot aborted")
		}
	})
	if _, err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()

	applied, unknown := 0, 0
	seen := map[int64]bool{}
	for p := range fates {
		if len(fates[p]) != opsEach {
			t.Fatalf("process %d finished only %d/%d ops in budget", p, len(fates[p]), opsEach)
		}
		for _, f := range fates[p] {
			switch {
			case f.applied:
				applied++
				if seen[f.resp] {
					t.Fatalf("duplicate fetch-and-add response %d: two ops saw the same previous value", f.resp)
				}
				seen[f.resp] = true
			case f.unknown:
				unknown++
			}
		}
	}
	if int64(applied) > final || final > int64(applied+unknown) {
		t.Fatalf("final counter %d inconsistent with %d applied + %d unknown-fate ops", final, applied, unknown)
	}
	// The log's non-Nop entries must equal the final value, and each
	// response must lie in [0, final).
	effective := 0
	for _, d := range log {
		if !d.Nop {
			effective++
		}
	}
	if int64(effective) != final {
		t.Fatalf("log has %d effective ops but final state is %d", effective, final)
	}
	for r := range seen {
		if r < 0 || r >= final {
			t.Fatalf("applied response %d outside [0,%d)", r, final)
		}
	}
}

// Query must deterministically settle fates: after any ⊥ invoke, repeated
// queries converge to Applied-with-response or F, and F really means the
// op never shows up in the log.
func TestQuerySettlesFates(t *testing.T) {
	const n = 3
	k := sim.New(n, sim.WithSchedule(sim.Random(21, nil)))
	so, err := NewSim[int64, int64, int64](k, counter{}) // strongest adversary
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		proc int
		seq  int64
		fate opFate
	}
	var recs []rec
	for p := 0; p < n; p++ {
		p := p
		k.Spawn(p, "client", func(pp prim.Proc) {
			h := so.Handle(p)
			for i := 0; i < 15; i++ {
				f := protocolOnce(h, pp, 1, 20000)
				recs = append(recs, rec{proc: p, seq: h.seq, fate: f})
			}
		})
	}
	if _, err := k.Run(60_000_000); err != nil {
		t.Fatal(err)
	}
	var log []Desc[int64]
	k.Spawn(0, "verifier", func(p prim.Proc) {
		var ok bool
		log, ok = so.Handle(0).SnapshotLog()
		if !ok {
			t.Error("solo snapshot aborted")
		}
	})
	if _, err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()

	inLog := map[tag]bool{}
	for _, d := range log {
		if !d.Nop {
			th := tag{proc: d.Proc, seq: d.Seq}
			if inLog[th] {
				t.Fatalf("descriptor %+v decided twice", d)
			}
			inLog[th] = true
		}
	}
	for _, r := range recs {
		if r.fate.applied && !inLog[tag{proc: r.proc, seq: r.seq}] {
			t.Errorf("process %d op seq %d reported applied but is not in the log", r.proc, r.seq)
		}
	}
}

// Wait-freedom: under the strongest adversary and heavy contention, every
// single call still returns — clients complete a fixed number of *calls*
// regardless of how many abort.
func TestCallsAlwaysReturn(t *testing.T) {
	const n = 4
	k := sim.New(n, sim.WithSchedule(sim.Random(3, nil)))
	so, err := NewSim[int64, int64, int64](k, counter{})
	if err != nil {
		t.Fatal(err)
	}
	calls := make([]int, n)
	for p := 0; p < n; p++ {
		p := p
		k.Spawn(p, "client", func(pp prim.Proc) {
			h := so.Handle(p)
			for i := 0; i < 300; i++ {
				h.Invoke(1)
				h.Query()
				calls[p] += 2
			}
		})
	}
	if _, err := k.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	for p, c := range calls {
		if c != 600 {
			t.Errorf("process %d completed %d calls, want 600 (wait-freedom)", p, c)
		}
	}
}

// Query with no prior operation reports F, not ⊥.
func TestQueryWithoutInvoke(t *testing.T) {
	k := sim.New(1)
	so, err := NewSim[int64, int64, int64](k, counter{})
	if err != nil {
		t.Fatal(err)
	}
	var out QueryOutcome
	k.Spawn(0, "client", func(p prim.Proc) {
		_, out = so.Handle(0).Query()
	})
	if _, err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if out != QueryNotApplied {
		t.Fatalf("query without invoke = %v, want F", out)
	}
}

// The handle registry must hand back the same handle per process.
func TestHandleReuse(t *testing.T) {
	k := sim.New(2)
	so, err := NewSim[int64, int64, int64](k, counter{})
	if err != nil {
		t.Fatal(err)
	}
	if so.Handle(0) != so.Handle(0) {
		t.Fatal("Handle(0) returned two different handles")
	}
	if so.Handle(0) == so.Handle(1) {
		t.Fatal("distinct processes share a handle")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int64, int64, int64](counter{}, 0, Factories[int64]{}, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New[int64, int64, int64](counter{}, 2, Factories[int64]{}, 0); err == nil {
		t.Error("nil factories accepted")
	}
}

func TestQueryOutcomeString(t *testing.T) {
	for out, want := range map[QueryOutcome]string{
		QueryAborted:    "⊥",
		QueryApplied:    "applied",
		QueryNotApplied: "F",
	} {
		if out.String() != want {
			t.Errorf("%d.String() = %q, want %q", out, out.String(), want)
		}
	}
	_ = fmt.Sprint(QueryApplied) // exercised for coverage of Stringer use
}
