package qa

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultMaxScan bounds how many log slots one Invoke or Query call
// processes before giving up with ⊥, which is what makes every call
// wait-free. Leftover slots are finite at any time, so a process running
// solo still completes across calls: its log position only moves forward.
const DefaultMaxScan = 16

// SharedObject is the shared part of a query-abortable object of type
// T_QA: the operation log and its consensus slots. Each process interacts
// with it through its own Handle.
type SharedObject[S, O, R any] struct {
	typ     Type[S, O, R]
	n       int
	maxScan int
	store   slotStore[O]

	mu      sync.Mutex
	handles map[int]*Handle[S, O, R]
}

// New creates a query-abortable object for n processes with the given
// sequential type, allocating registers through f. maxScan bounds the
// per-call log scan; pass 0 for DefaultMaxScan.
func New[S, O, R any](typ Type[S, O, R], n int, f Factories[O], maxScan int) (*SharedObject[S, O, R], error) {
	if n < 1 {
		return nil, fmt.Errorf("qa: n = %d, need at least 1", n)
	}
	if f.Ballot == nil || f.Accept == nil || f.Decide == nil {
		return nil, fmt.Errorf("qa: incomplete register factories")
	}
	if maxScan <= 0 {
		maxScan = DefaultMaxScan
	}
	so := &SharedObject[S, O, R]{
		typ:     typ,
		n:       n,
		maxScan: maxScan,
		store:   slotStore[O]{n: n, f: f},
		handles: make(map[int]*Handle[S, O, R]),
	}
	so.store.minNext = so.minNext
	return so, nil
}

// minNext is the slot store's reclaim bound: the lowest replay position
// over all handles, or 0 while any handle is still uncreated (it would
// start replaying at 0). Handle positions only grow, so the returned
// value is a conservative lower bound on every future slot access.
func (so *SharedObject[S, O, R]) minNext() int64 {
	so.mu.Lock()
	defer so.mu.Unlock()
	if len(so.handles) < so.n {
		return 0
	}
	m := int64(-1)
	for _, h := range so.handles {
		if v := h.next.Load(); m < 0 || v < m {
			m = v
		}
	}
	if m < 0 {
		return 0
	}
	return m
}

// Slots returns how many log slots have been materialized so far (the
// absolute log length).
func (so *SharedObject[S, O, R]) Slots() int64 { return so.store.len() }

// SlotsAllocated returns how many slots were freshly constructed. On a
// recycling store (rt substrate with all handles advancing) it stays far
// below Slots; on sim and net the two are equal.
func (so *SharedObject[S, O, R]) SlotsAllocated() int64 { return so.store.allocated() }

// Handle returns process me's handle, creating it on first use. A process
// must funnel all its operations through its single handle: the handle
// holds the process's operation sequence numbers and its replay cache.
func (so *SharedObject[S, O, R]) Handle(me int) *Handle[S, O, R] {
	if me < 0 || me >= so.n {
		panic(fmt.Sprintf("qa: process %d out of range [0,%d)", me, so.n))
	}
	so.mu.Lock()
	defer so.mu.Unlock()
	if h, ok := so.handles[me]; ok {
		return h
	}
	h := &Handle[S, O, R]{
		so:         so,
		me:         me,
		state:      so.typ.Init(),
		appliedSeq: make([]int64, so.n),
	}
	so.handles[me] = h
	return h
}

// Handle is one process's endpoint of a query-abortable object.
type Handle[S, O, R any] struct {
	so *SharedObject[S, O, R]
	me int

	seq    int64 // identity of the current (last) non-query operation
	ballot int64 // proposer ballot counter, unique per process

	// Replay cache: the object state after applying decided slots
	// [0, next). next is atomic because the slot store's recycler reads
	// every handle's position from other goroutines; only the owning
	// task writes it.
	state S
	next  atomic.Int64
	// appliedSeq[p] is the highest Seq of process p applied so far; it
	// guards against a descriptor being applied twice during replay. By
	// construction duplicates cannot occur — and each process's
	// descriptors are decided at strictly increasing slots, hence replay
	// in strictly increasing Seq order, which is why a per-process
	// watermark carries the same information as the per-operation set it
	// replaced (that set grew one heap entry per applied op forever).
	appliedSeq []int64

	// Fate of the current operation, discovered during replay.
	curFound bool
	curResp  R

	// Slots at which the current operation was proposed. Invoke processes
	// slots in order, so at most the last of these can still be undecided.
	proposed []int64

	// Instrumentation counters, atomic so telemetry layers can snapshot
	// them while the owning task runs.
	nProposals    atomic.Int64 // descriptor proposals from Invoke
	nNopProposals atomic.Int64 // Nop proposals from Query
	nReplayed     atomic.Int64 // decided slots folded into the replay cache
}

// HandleStats is a snapshot of a handle's instrumentation counters.
type HandleStats struct {
	// Proposals counts operation-descriptor proposals (Invoke); NopProposals
	// counts the fate-settling Nop proposals (Query).
	Proposals, NopProposals int64
	// SlotsReplayed counts decided log slots folded into the handle's
	// replay cache — the handle's catch-up work.
	SlotsReplayed int64
}

// Stats returns a snapshot of the handle's counters. Safe to call from any
// goroutine.
func (h *Handle[S, O, R]) Stats() HandleStats {
	return HandleStats{
		Proposals:     h.nProposals.Load(),
		NopProposals:  h.nNopProposals.Load(),
		SlotsReplayed: h.nReplayed.Load(),
	}
}

// Me returns the handle's process id.
func (h *Handle[S, O, R]) Me() int { return h.me }

func (h *Handle[S, O, R]) nextBallot() int64 {
	h.ballot++
	return h.ballot*int64(h.so.n) + int64(h.me) + 1
}

// apply folds one decided descriptor into the replay cache and advances the
// log position.
func (h *Handle[S, O, R]) apply(d Desc[O]) {
	h.next.Add(1)
	h.nReplayed.Add(1)
	if d.Nop {
		return
	}
	if d.Seq <= h.appliedSeq[d.Proc] {
		// Cannot happen (one slot per decided descriptor); skipping keeps
		// the state correct if it ever did.
		return
	}
	h.appliedSeq[d.Proc] = d.Seq
	s, r := h.so.typ.Apply(h.state, d.Op)
	h.state = s
	if d.Proc == h.me && d.Seq == h.seq {
		h.curFound = true
		h.curResp = r
	}
}

// Invoke applies op to the object. ok=false is ⊥: the operation aborted
// because of contention and may or may not take effect — call Query to
// find out. A successful response means the operation took effect exactly
// once, linearized at its log slot.
func (h *Handle[S, O, R]) Invoke(op O) (R, bool) {
	var zero R
	h.seq++
	h.curFound = false
	h.curResp = zero
	h.proposed = h.proposed[:0]
	desc := Desc[O]{Proc: h.me, Seq: h.seq, Op: op}

	for scanned := 0; scanned < h.so.maxScan; scanned++ {
		s := h.so.store.slot(h.next.Load())
		dec, ok := s.readDecision()
		if !ok {
			return zero, false // ⊥ (op not yet proposed anywhere: fate is "not applied", settled by Query)
		}
		if dec.Decided {
			h.apply(dec.D)
			continue
		}
		// First undecided slot: propose our descriptor.
		h.proposed = append(h.proposed, h.next.Load())
		h.nProposals.Add(1)
		v, ok := s.propose(h.me, h.nextBallot(), desc)
		if !ok {
			return zero, false // ⊥ (fate unknown until Query)
		}
		h.apply(v)
		if h.curFound {
			return h.curResp, true
		}
		// The slot went to another process's descriptor (we helped decide
		// a leftover); keep scanning.
	}
	return zero, false // ⊥: scan budget exhausted under contention
}

// Query settles the fate of the handle's last Invoke (footnote 3 of the
// paper): QueryApplied with the operation's response if it took effect,
// QueryNotApplied (F) if it did not and never will, or QueryAborted (⊥) if
// the query itself hit contention — in which case nothing is settled and
// the caller should query again.
func (h *Handle[S, O, R]) Query() (R, QueryOutcome) {
	var zero R
	if h.seq == 0 {
		return zero, QueryNotApplied // no previous operation
	}
	if h.curFound {
		return h.curResp, QueryApplied // already settled during Invoke/replay
	}
	// Force a decision at every slot where the operation was proposed and
	// is not yet replayed. By construction that is at most the slot at
	// h.next; earlier proposed slots were decided and applied already.
	maxProposed := int64(-1)
	for _, k := range h.proposed {
		if k > maxProposed {
			maxProposed = k
		}
		if k < h.next.Load() {
			continue
		}
		s := h.so.store.slot(k)
		dec, ok := s.readDecision()
		if !ok {
			return zero, QueryAborted
		}
		if !dec.Decided {
			// Propose a Nop: whatever gets decided — possibly our own
			// leftover descriptor, adopted and finished on our behalf —
			// settles the slot.
			nop := Desc[O]{Proc: h.me, Seq: h.seq, Nop: true}
			h.nNopProposals.Add(1)
			if _, ok := s.propose(h.me, h.nextBallot(), nop); !ok {
				return zero, QueryAborted
			}
		}
	}
	// Replay up to and including the last proposed slot; every slot in
	// range is now decided unless a read aborts.
	for h.next.Load() <= maxProposed {
		dec, ok := h.so.store.slot(h.next.Load()).readDecision()
		if !ok {
			return zero, QueryAborted
		}
		if !dec.Decided {
			// Raced with a concurrent decision in progress: treat as ⊥.
			return zero, QueryAborted
		}
		h.apply(dec.D)
	}
	if h.curFound {
		return h.curResp, QueryApplied
	}
	return zero, QueryNotApplied
}

// SnapshotLog reads the decided prefix of the operation log with a fresh
// cursor (it does not touch the handle's replay cache). ok=false means a
// read aborted. The returned descriptors are the object's linearization
// order; verifiers use it to cross-check responses. On a recycling store
// (rt substrate) the cursor starts at the store's floor, so the snapshot
// is the still-retained decided suffix; the sim substrate never recycles
// and verifiers there see the full log from slot 0.
func (h *Handle[S, O, R]) SnapshotLog() ([]Desc[O], bool) {
	var log []Desc[O]
	for k := h.so.store.floor(); k < h.so.store.len(); k++ {
		dec, ok := h.so.store.slot(k).readDecision()
		if !ok {
			return log, false
		}
		if !dec.Decided {
			break
		}
		log = append(log, dec.D)
	}
	return log, true
}

// Sync replays all currently decided log slots into the handle's cache and
// returns the resulting state. ok=false means a read aborted (⊥). It is a
// read-only helper for verifiers and read-mostly clients; it performs no
// proposals.
func (h *Handle[S, O, R]) Sync() (S, bool) {
	for {
		if h.next.Load() >= h.so.store.len() {
			return h.state, true
		}
		dec, ok := h.so.store.slot(h.next.Load()).readDecision()
		if !ok {
			return h.state, false
		}
		if !dec.Decided {
			return h.state, true
		}
		h.apply(dec.D)
	}
}
