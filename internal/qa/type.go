// Package qa implements query-abortable objects (the paper's type T_QA,
// Section 7 and footnote 3) from abortable registers.
//
// An object of type T_QA behaves like an object of type T except that
// (i) an operation that runs concurrently with another operation may abort,
// returning ⊥, in which case it may or may not have taken effect; and
// (ii) an extra operation, query, tells the caller the fate of its last
// non-query operation: the response it produced if it took effect, or F if
// it did not. Query may itself abort.
//
// The paper takes the wait-free universal construction of T_QA from
// abortable registers as given (citing Aguilera, Frolund, Hadzilacos, Horn
// and Toueg, PODC'07). This package supplies that substrate with a
// construction in the same spirit, documented in DESIGN.md:
//
//   - the object is a log of operation descriptors; slot k of the log is
//     settled by an *abortable consensus* instance built from single-writer
//     abortable registers using ballot voting (a shared-memory Paxos round
//     that returns ⊥ instead of retrying when it detects contention);
//   - Invoke appends the caller's descriptor by proposing it at the first
//     undecided slot, helping decide leftover proposals it encounters;
//   - Query settles the fate of the last operation by forcing a decision
//     (proposing a no-op) at every slot where the operation was proposed,
//     then checking whether the operation's unique (process, sequence) tag
//     was decided.
//
// The construction is wait-free (every call returns in a bounded number of
// its own steps, with ⊥ an allowed outcome), non-aborted operations
// linearize in log order, and a process running solo eventually completes
// every operation without ⊥ — the properties Figure 7 relies on.
package qa

// Type is the sequential specification of an object type T: an initial
// state and a transition function. Apply must be *persistent*: it returns
// the successor state without mutating its input (each process replays the
// operation log independently, so shared mutable state would alias).
type Type[S, O, R any] interface {
	// Init returns the object's initial state.
	Init() S
	// Apply applies op to s, returning the successor state and the
	// operation's response. It must not mutate s.
	Apply(s S, op O) (S, R)
}

// TypeFuncs builds a Type from plain functions.
type TypeFuncs[S, O, R any] struct {
	InitFn  func() S
	ApplyFn func(s S, op O) (S, R)
}

// Init implements Type.
func (t TypeFuncs[S, O, R]) Init() S { return t.InitFn() }

// Apply implements Type.
func (t TypeFuncs[S, O, R]) Apply(s S, op O) (S, R) { return t.ApplyFn(s, op) }

// QueryOutcome is the result of a Query call.
type QueryOutcome int

const (
	// QueryAborted is ⊥: the query itself aborted; the fate of the last
	// operation remains unknown. Retry.
	QueryAborted QueryOutcome = iota
	// QueryApplied reports that the last operation took effect; the
	// accompanying response is the one the operation should have returned.
	QueryApplied
	// QueryNotApplied is the paper's F: the last operation definitely did
	// not take effect and never will.
	QueryNotApplied
)

// String returns the paper's notation for the outcome.
func (o QueryOutcome) String() string {
	switch o {
	case QueryApplied:
		return "applied"
	case QueryNotApplied:
		return "F"
	default:
		return "⊥"
	}
}
