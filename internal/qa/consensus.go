package qa

import (
	"fmt"
	"sync"

	"tbwf/internal/prim"
)

// Desc is an operation descriptor: the unit the log's consensus instances
// agree on. The (Proc, Seq) pair is the operation's unique identity; Nop
// descriptors are decided-but-skipped fillers used by Query to force a
// slot's fate.
type Desc[O any] struct {
	Proc int
	Seq  int64
	Op   O
	Nop  bool
}

// tag is an operation's identity.
type tag struct {
	proc int
	seq  int64
}

// Accepted is one acceptor's vote state: the highest ballot at which it
// accepted a descriptor.
type Accepted[O any] struct {
	Has    bool
	Ballot int64
	D      Desc[O]
}

// Decision caches a slot's decided descriptor.
type Decision[O any] struct {
	Decided bool
	D       Desc[O]
}

// Factories creates the abortable registers a slot needs; they abstract the
// substrate so the construction itself uses nothing but abortable
// registers. Ballot registers X[p] and vote registers Y[p] are single-
// writer (process p) multi-reader; the decision register is multi-writer —
// but every write to it carries the same agreed value.
type Factories[O any] struct {
	Ballot func(name string, writer int) prim.AbortableRegister[int64]
	Accept func(name string, writer int) prim.AbortableRegister[Accepted[O]]
	Decide func(name string) prim.AbortableRegister[Decision[O]]
}

// slot is one abortable consensus instance: a single shared-memory Paxos
// ballot that returns ⊥ on any contention (an aborted register operation or
// an observed higher ballot) instead of looping. A proposer running solo
// always decides; agreement follows the standard ballot-voting argument
// (DESIGN.md §"qa").
type slot[O any] struct {
	x []prim.AbortableRegister[int64]       // X[p]: p's current ballot
	y []prim.AbortableRegister[Accepted[O]] // Y[p]: p's latest vote
	d prim.AbortableRegister[Decision[O]]
}

func newSlot[O any](n int, index int64, f Factories[O]) *slot[O] {
	s := &slot[O]{
		x: make([]prim.AbortableRegister[int64], n),
		y: make([]prim.AbortableRegister[Accepted[O]], n),
		d: f.Decide(fmt.Sprintf("qa[%d].D", index)),
	}
	for p := 0; p < n; p++ {
		s.x[p] = f.Ballot(fmt.Sprintf("qa[%d].X[%d]", index, p), p)
		s.y[p] = f.Accept(fmt.Sprintf("qa[%d].Y[%d]", index, p), p)
	}
	return s
}

// readDecision reads the slot's decision cache. ok=false is ⊥.
func (s *slot[O]) readDecision() (Decision[O], bool) {
	return s.d.Read()
}

// propose runs one ballot with the caller's descriptor. It returns the
// slot's decided descriptor (which may be another process's — deciding a
// leftover proposal on its owner's behalf is the helping that makes solo
// progress possible), or ok=false (⊥) if any register operation aborted or
// a higher ballot was observed.
func (s *slot[O]) propose(me int, ballot int64, v Desc[O]) (Desc[O], bool) {
	var zero Desc[O]
	// Phase 0: a decision may already exist.
	if dec, ok := s.d.Read(); !ok {
		return zero, false
	} else if dec.Decided {
		return dec.D, true
	}
	// Phase 1: claim the ballot.
	if !s.x[me].Write(ballot) {
		return zero, false
	}
	for q := range s.x {
		if q == me {
			continue
		}
		b, ok := s.x[q].Read()
		if !ok || b > ballot {
			return zero, false
		}
	}
	// Phase 2: adopt the highest accepted descriptor, if any.
	best := Accepted[O]{}
	for q := range s.y {
		a, ok := s.y[q].Read()
		if !ok {
			return zero, false
		}
		if a.Has && (!best.Has || a.Ballot > best.Ballot) {
			best = a
		}
	}
	if best.Has {
		v = best.D
	}
	// Phase 3: vote, then re-check that no higher ballot intervened.
	if !s.y[me].Write(Accepted[O]{Has: true, Ballot: ballot, D: v}) {
		return zero, false
	}
	for q := range s.x {
		if q == me {
			continue
		}
		b, ok := s.x[q].Read()
		if !ok || b > ballot {
			return zero, false
		}
	}
	// Decided. Cache the decision; an aborted cache write is harmless —
	// everyone re-running this ballot protocol decides the same value.
	s.d.Write(Decision[O]{Decided: true, D: v})
	return v, true
}

// reset reinitializes every register of a recycled slot, so the slot can
// serve a fresh log index. It reports false if any register does not
// support in-place reinitialization (then the store never recycles).
// Recycled slots keep the register names from their first incarnation;
// per-register telemetry attributes a recycled slot's traffic to the old
// index, which is acceptable for the aggregate counters it feeds.
func (s *slot[O]) reset() bool {
	type r64 interface{ Reset(int64) }
	type racc[T any] interface{ Reset(T) }
	for p := range s.x {
		rx, okx := s.x[p].(r64)
		ry, oky := s.y[p].(racc[Accepted[O]])
		if !okx || !oky {
			return false
		}
		rx.Reset(0)
		ry.Reset(Accepted[O]{})
	}
	rd, ok := s.d.(racc[Decision[O]])
	if !ok {
		return false
	}
	rd.Reset(Decision[O]{})
	return true
}

// slotStore grows the log lazily and, where the substrate allows it,
// recycles slots whose index every handle has replayed past. The mutex
// only guards window bookkeeping: on the simulation substrate tasks are
// globally sequenced anyway, but the same code must be safe on a
// real-time substrate.
//
// Recycling is what makes the steady-state invoke path allocation-free:
// without it every decided operation permanently retains (and every new
// operation allocates) a slot of 2n+1 registers. A slot at absolute index
// k is reclaimable once k < min over all handles of their replay position
// (handles only ever touch slots at or after their position), so the
// store keeps a sliding window [base, base+len(window)) of live slots and
// a free list of reset slots ready for reuse. The reclaim bound comes
// from the minNext callback, which must be conservative: it returns 0
// until every one of the n handles exists (a handle created later would
// start replaying at 0). Recycling additionally requires every register
// to support Reset — true for the rt substrate's typed registers, false
// for sim and net, whose stores therefore just grow (sim runs are finite
// and SnapshotLog verifiers want the full prefix).
type slotStore[O any] struct {
	mu      sync.Mutex
	n       int
	f       Factories[O]
	minNext func() int64 // conservative lower bound on future slot accesses; nil disables recycling

	window  []*slot[O] // window[i] is absolute index base+i
	base    int64      // absolute index of window[0]
	free    []*slot[O] // reset slots ready for reuse
	probed  bool       // reset-capability probe result is valid
	canRecy bool       // every register supports Reset
	total   int64      // absolute log length ever materialized (telemetry)
	alloc   int64      // slots freshly constructed (not served from the free list)
}

func (st *slotStore[O]) slot(k int64) *slot[O] {
	st.mu.Lock()
	defer st.mu.Unlock()
	if k < st.base {
		// Unreachable by construction (minNext is a lower bound on every
		// handle's position); fail loudly rather than corrupt agreement by
		// handing out a reused slot for a stale index.
		panic(fmt.Sprintf("qa: slot %d requested below recycled base %d", k, st.base))
	}
	for st.base+int64(len(st.window)) <= k {
		st.reclaimLocked()
		var s *slot[O]
		if n := len(st.free); n > 0 {
			s = st.free[n-1]
			st.free[n-1] = nil
			st.free = st.free[:n-1]
		} else {
			s = newSlot(st.n, st.total, st.f)
			st.alloc++
			if !st.probed {
				st.probed = true
				st.canRecy = s.reset()
			}
		}
		st.window = append(st.window, s)
		st.total++
	}
	return st.window[k-st.base]
}

// reclaimLocked slides the window past slots no handle can touch again,
// resetting them onto the free list. The survivors are compacted to the
// front of the window slice in place — re-slicing the head off instead
// would bleed backing-array capacity and make every subsequent append
// reallocate, putting a heap allocation back on the steady-state invoke
// path this recycling exists to keep clean. Caller holds st.mu.
func (st *slotStore[O]) reclaimLocked() {
	if !st.canRecy || st.minNext == nil {
		return
	}
	m := st.minNext()
	k := 0
	for st.base+int64(k) < m && k < len(st.window) {
		s := st.window[k]
		s.reset()
		st.free = append(st.free, s)
		k++
	}
	if k == 0 {
		return
	}
	n := copy(st.window, st.window[k:])
	for i := n; i < len(st.window); i++ {
		st.window[i] = nil
	}
	st.window = st.window[:n]
	st.base += int64(k)
}

func (st *slotStore[O]) len() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// allocated returns how many slots were freshly constructed; on a
// recycling store it plateaus at roughly the handles' replay spread while
// len() keeps growing with the log.
func (st *slotStore[O]) allocated() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.alloc
}

// floor returns the lowest absolute index still held (0 unless slots have
// been recycled). SnapshotLog starts its cursor here.
func (st *slotStore[O]) floor() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.base
}
