package qa

import (
	"fmt"
	"sync"

	"tbwf/internal/prim"
)

// Desc is an operation descriptor: the unit the log's consensus instances
// agree on. The (Proc, Seq) pair is the operation's unique identity; Nop
// descriptors are decided-but-skipped fillers used by Query to force a
// slot's fate.
type Desc[O any] struct {
	Proc int
	Seq  int64
	Op   O
	Nop  bool
}

// tag is an operation's identity.
type tag struct {
	proc int
	seq  int64
}

// Accepted is one acceptor's vote state: the highest ballot at which it
// accepted a descriptor.
type Accepted[O any] struct {
	Has    bool
	Ballot int64
	D      Desc[O]
}

// Decision caches a slot's decided descriptor.
type Decision[O any] struct {
	Decided bool
	D       Desc[O]
}

// Factories creates the abortable registers a slot needs; they abstract the
// substrate so the construction itself uses nothing but abortable
// registers. Ballot registers X[p] and vote registers Y[p] are single-
// writer (process p) multi-reader; the decision register is multi-writer —
// but every write to it carries the same agreed value.
type Factories[O any] struct {
	Ballot func(name string, writer int) prim.AbortableRegister[int64]
	Accept func(name string, writer int) prim.AbortableRegister[Accepted[O]]
	Decide func(name string) prim.AbortableRegister[Decision[O]]
}

// slot is one abortable consensus instance: a single shared-memory Paxos
// ballot that returns ⊥ on any contention (an aborted register operation or
// an observed higher ballot) instead of looping. A proposer running solo
// always decides; agreement follows the standard ballot-voting argument
// (DESIGN.md §"qa").
type slot[O any] struct {
	x []prim.AbortableRegister[int64]       // X[p]: p's current ballot
	y []prim.AbortableRegister[Accepted[O]] // Y[p]: p's latest vote
	d prim.AbortableRegister[Decision[O]]
}

func newSlot[O any](n int, index int64, f Factories[O]) *slot[O] {
	s := &slot[O]{
		x: make([]prim.AbortableRegister[int64], n),
		y: make([]prim.AbortableRegister[Accepted[O]], n),
		d: f.Decide(fmt.Sprintf("qa[%d].D", index)),
	}
	for p := 0; p < n; p++ {
		s.x[p] = f.Ballot(fmt.Sprintf("qa[%d].X[%d]", index, p), p)
		s.y[p] = f.Accept(fmt.Sprintf("qa[%d].Y[%d]", index, p), p)
	}
	return s
}

// readDecision reads the slot's decision cache. ok=false is ⊥.
func (s *slot[O]) readDecision() (Decision[O], bool) {
	return s.d.Read()
}

// propose runs one ballot with the caller's descriptor. It returns the
// slot's decided descriptor (which may be another process's — deciding a
// leftover proposal on its owner's behalf is the helping that makes solo
// progress possible), or ok=false (⊥) if any register operation aborted or
// a higher ballot was observed.
func (s *slot[O]) propose(me int, ballot int64, v Desc[O]) (Desc[O], bool) {
	var zero Desc[O]
	// Phase 0: a decision may already exist.
	if dec, ok := s.d.Read(); !ok {
		return zero, false
	} else if dec.Decided {
		return dec.D, true
	}
	// Phase 1: claim the ballot.
	if !s.x[me].Write(ballot) {
		return zero, false
	}
	for q := range s.x {
		if q == me {
			continue
		}
		b, ok := s.x[q].Read()
		if !ok || b > ballot {
			return zero, false
		}
	}
	// Phase 2: adopt the highest accepted descriptor, if any.
	best := Accepted[O]{}
	for q := range s.y {
		a, ok := s.y[q].Read()
		if !ok {
			return zero, false
		}
		if a.Has && (!best.Has || a.Ballot > best.Ballot) {
			best = a
		}
	}
	if best.Has {
		v = best.D
	}
	// Phase 3: vote, then re-check that no higher ballot intervened.
	if !s.y[me].Write(Accepted[O]{Has: true, Ballot: ballot, D: v}) {
		return zero, false
	}
	for q := range s.x {
		if q == me {
			continue
		}
		b, ok := s.x[q].Read()
		if !ok || b > ballot {
			return zero, false
		}
	}
	// Decided. Cache the decision; an aborted cache write is harmless —
	// everyone re-running this ballot protocol decides the same value.
	s.d.Write(Decision[O]{Decided: true, D: v})
	return v, true
}

// slotStore grows the log lazily. The mutex only guards slice growth: on
// the simulation substrate tasks are globally sequenced anyway, but the
// same code must be safe on a real-time substrate.
type slotStore[O any] struct {
	mu    sync.Mutex
	n     int
	f     Factories[O]
	slots []*slot[O]
}

func (st *slotStore[O]) slot(k int64) *slot[O] {
	st.mu.Lock()
	defer st.mu.Unlock()
	for int64(len(st.slots)) <= k {
		st.slots = append(st.slots, newSlot(st.n, int64(len(st.slots)), st.f))
	}
	return st.slots[k]
}

func (st *slotStore[O]) len() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return int64(len(st.slots))
}
