package qa

import (
	"testing"

	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// A tiny maxScan forces Invoke to give up with ⊥ when the log outruns it;
// wait-freedom must survive (calls return), and the op's fate must still
// settle via Query.
func TestMaxScanExhaustionStillSettles(t *testing.T) {
	const n = 2
	k := sim.New(n)
	so, err := New[int64, int64, int64](counter{}, n, SimFactories[int64](k), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Process 0 fills the log with many ops; process 1 then tries one op
	// with maxScan=1 — its first Invoke may land behind several decided
	// slots and exhaust the budget.
	done0 := false
	k.Spawn(0, "filler", func(p prim.Proc) {
		h := so.Handle(0)
		for i := 0; i < 10; i++ {
			for {
				if _, ok := h.Invoke(1); ok {
					break
				}
				r, out := h.Query()
				_ = r
				if out == QueryApplied {
					break
				}
				p.Step()
			}
		}
		done0 = true
	})
	if _, err := k.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if !done0 {
		t.Fatal("filler did not finish")
	}
	var got int64 = -1
	k.Spawn(1, "late", func(p prim.Proc) {
		h := so.Handle(1)
		for {
			if r, ok := h.Invoke(1); ok {
				got = r
				return
			}
			for {
				r, out := h.Query()
				if out == QueryApplied {
					got = r
					return
				}
				if out == QueryNotApplied {
					break
				}
				p.Step()
			}
		}
	})
	if _, err := k.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if got != 10 {
		t.Fatalf("late op saw previous value %d, want 10", got)
	}
}

// Two independent objects on one kernel do not interfere.
func TestMultipleObjectsIndependent(t *testing.T) {
	k := sim.New(1)
	a, err := NewSim[int64, int64, int64](k, counter{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSim[int64, int64, int64](k, counter{})
	if err != nil {
		t.Fatal(err)
	}
	var ra, rb int64
	k.Spawn(0, "client", func(p prim.Proc) {
		ha, hb := a.Handle(0), b.Handle(0)
		for i := 0; i < 5; i++ {
			ra, _ = ha.Invoke(10)
		}
		for i := 0; i < 3; i++ {
			rb, _ = hb.Invoke(1)
		}
	})
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if ra != 40 || rb != 2 {
		t.Fatalf("last responses = %d, %d; want 40, 2", ra, rb)
	}
	if a.Slots() < 5 || b.Slots() < 3 {
		t.Fatalf("slot counts: %d, %d", a.Slots(), b.Slots())
	}
}

// SnapshotLog and Sync on a fresh object are empty and clean.
func TestEmptyObjectVerifiers(t *testing.T) {
	k := sim.New(1)
	so, err := NewSim[int64, int64, int64](k, counter{})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn(0, "verifier", func(p prim.Proc) {
		h := so.Handle(0)
		if s, ok := h.Sync(); !ok || s != 0 {
			t.Errorf("sync on empty object: %d, %v", s, ok)
		}
		if log, ok := h.SnapshotLog(); !ok || len(log) != 0 {
			t.Errorf("snapshot on empty object: %v, %v", log, ok)
		}
	})
	if _, err := k.Run(10_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
}

// The Handle panics on out-of-range processes (a wiring bug).
func TestHandleRangePanics(t *testing.T) {
	k := sim.New(2)
	so, err := NewSim[int64, int64, int64](k, counter{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range handle did not panic")
		}
	}()
	so.Handle(7)
}
