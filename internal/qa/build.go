package qa

import (
	"tbwf/internal/prim"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// SubstrateFactories returns register factories backed by any substrate's
// abortable registers. The ballot and vote registers are single-writer
// multi-reader; the decision cache is multi-writer. The register options
// (abort/effect policies) apply to every register; the default is the
// strongest adversary. On a simulation-kernel substrate the registers are
// the kernel's concrete typed ones (register.SubstrateAbortable's fast
// path); register names and roles propagate on every substrate.
func SubstrateFactories[O any](sub prim.Substrate, opts ...register.AbOption) Factories[O] {
	return Factories[O]{
		Ballot: func(name string, writer int) prim.AbortableRegister[int64] {
			return register.SubstrateAbortable(sub, name, int64(0), append(opts, register.WithRoles(writer, -1))...)
		},
		Accept: func(name string, writer int) prim.AbortableRegister[Accepted[O]] {
			return register.SubstrateAbortable(sub, name, Accepted[O]{}, append(opts, register.WithRoles(writer, -1))...)
		},
		Decide: func(name string) prim.AbortableRegister[Decision[O]] {
			return register.SubstrateAbortable(sub, name, Decision[O]{}, opts...)
		},
	}
}

// SimFactories returns register factories backed by the simulation
// kernel's abortable registers.
func SimFactories[O any](k *sim.Kernel, opts ...register.AbOption) Factories[O] {
	return SubstrateFactories[O](register.Substrate(k), opts...)
}

// NewSim creates a query-abortable object whose registers live on the
// given simulation kernel, for the kernel's process count.
func NewSim[S, O, R any](k *sim.Kernel, typ Type[S, O, R], opts ...register.AbOption) (*SharedObject[S, O, R], error) {
	return New(typ, k.N(), SimFactories[O](k, opts...), 0)
}
