// Package rtbench is the rt hot path's benchmark registry: the gate
// pacing fast path, the bounded MPSC queue behind the serve and shard
// layers, and the end-to-end zero-alloc invoke path. The leaves run both
// under `go test -bench` (through the wrappers in the repo root's
// bench_test.go) and under cmd/tbwf-bench -rt, which records them in
// BENCH_rt.json and gates perf regressions in CI.
//
// Every family carries its own in-run baseline — the pre-campaign
// implementation, kept here verbatim: the mutex ring the serve layer used
// before internal/mpsc, and the timer-per-gap parking the gate used
// before the pooled interruptible park. Regression gating compares
// current/baseline ratios and allocation counts, not absolute ns/op, so
// the committed snapshot stays meaningful across machines.
package rtbench

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbwf/internal/deploy"
	"tbwf/internal/mpsc"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/rt"
)

// Bench is one registered benchmark leaf.
type Bench struct {
	Name string
	F    func(b *testing.B)
}

// All returns every registered leaf, families in display order.
func All() []Bench {
	return []Bench{
		{"GatePace/zero", benchGateZero},
		{"GatePace/parked", benchGateParked},
		{"GatePace/timer-baseline", benchGateTimerBaseline},
		{"ServeQueue/ring/p=1", benchQueueRing(1)},
		{"ServeQueue/ring/p=4", benchQueueRing(4)},
		{"ServeQueue/ring/p=8", benchQueueRing(8)},
		{"ServeQueue/ring/p=16", benchQueueRing(16)},
		{"ServeQueue/mpsc/p=1", benchQueueMPSC(1)},
		{"ServeQueue/mpsc/p=4", benchQueueMPSC(4)},
		{"ServeQueue/mpsc/p=8", benchQueueMPSC(8)},
		{"ServeQueue/mpsc/p=16", benchQueueMPSC(16)},
		{"InvokePath/rt", benchInvokePath},
	}
}

// RunFamily runs every leaf whose name starts with prefix+"/" as a
// sub-benchmark of b. The root bench_test.go wrappers call it so the
// families appear under `go test -bench`.
func RunFamily(b *testing.B, prefix string) {
	found := false
	for _, l := range All() {
		if !strings.HasPrefix(l.Name, prefix+"/") {
			continue
		}
		found = true
		b.Run(strings.TrimPrefix(l.Name, prefix+"/"), l.F)
	}
	if !found {
		b.Fatalf("rtbench: no leaves under family %q", prefix)
	}
}

// parkGap is the gap used by the parked-gate legs. It is long enough that
// the task genuinely parks on a timer (exercising the pool and the wake
// plumbing) and identical between the pooled and the baseline leg, so
// their ns/op difference is pure bookkeeping overhead and their allocs/op
// difference is the point: the baseline pays a fresh timer per gap.
const parkGap = 5 * time.Microsecond

// benchGateZero measures the gate's zero-delay fast path: the whole
// per-step cost of a nil-profile process — crash/stop loads, the step-gap
// telemetry fold, the step bump, and a Gosched. This is the pace every
// timely process pays on every protocol step, so it must stay
// allocation-free and mutex-free.
func benchGateZero(b *testing.B) {
	r := rt.New(1, nil)
	runSpawned(b, r, func(pp prim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pp.Step()
		}
	})
}

// benchGateParked measures a paced step through the pooled interruptible
// park. ns/op is dominated by the gap itself; the leaf exists for its
// allocs/op (the pool must amortize the timer away) and as the numerator
// against the timer baseline below.
func benchGateParked(b *testing.B) {
	r := rt.New(1, rt.Steady(parkGap))
	runSpawned(b, r, func(pp prim.Proc) {
		pp.Step() // warm the timer pool before the clock starts
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pp.Step()
		}
	})
}

// benchGateTimerBaseline is the pre-campaign gate sleep, verbatim: a
// fresh time.NewTimer per gap, selected against the stop channel. Its
// allocs/op is what the pooled park deletes.
func benchGateTimerBaseline(b *testing.B) {
	stopCh := make(chan struct{})
	defer close(stopCh)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := time.NewTimer(parkGap)
		select {
		case <-t.C:
		case <-stopCh:
			t.Stop()
		}
	}
}

// runSpawned runs body as a task of r's process 0 and waits for it, so a
// benchmark loop can call pp.Step like real protocol code does.
func runSpawned(b *testing.B, r *rt.Runtime, body func(pp prim.Proc)) {
	done := make(chan struct{})
	r.Spawn(0, "bench", func(pp prim.Proc) {
		defer close(done)
		body(pp)
	})
	<-done
	b.StopTimer()
	if err := r.Stop(); err != nil {
		b.Fatalf("Stop: %v", err)
	}
}

// item mirrors the serve layer's queued entry: a small op plus the
// pointer to its in-flight slot.
type item struct {
	op int64
	pd *int64
}

// mutexRing is the queue the serve layer used before internal/mpsc — a
// mutex-guarded bounded FIFO popped one item per lock acquisition — kept
// verbatim as the in-run baseline the ServeQueue speedup is measured
// against.
type mutexRing struct {
	mu    sync.Mutex
	buf   []item
	head  int
	count int
}

func newMutexRing(capacity int) *mutexRing { return &mutexRing{buf: make([]item, capacity)} }

func (r *mutexRing) push(it item) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = it
	r.count++
	return true
}

func (r *mutexRing) pop() (item, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return item{}, false
	}
	it := r.buf[r.head]
	r.buf[r.head] = item{}
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return it, true
}

// queueDepth matches the serve/shard worker queues' default capacity.
const queueDepth = 256

// drainBatch matches the serve worker's PopBatch buffer size.
const drainBatch = 32

// benchQueueRing measures producers hammering the baseline mutex ring
// while one consumer drains it item-at-a-time — exactly the serve
// layer's pre-campaign Submit/worker shape. ns/op is per transferred
// item.
func benchQueueRing(producers int) func(b *testing.B) {
	return func(b *testing.B) {
		q := newMutexRing(queueDepth)
		runProducersConsumer(b, producers,
			func(it item) bool { return q.push(it) },
			func(got *int64) bool {
				it, ok := q.pop()
				if !ok {
					return false
				}
				*got += it.op
				return true
			})
	}
}

// benchQueueMPSC measures the same shape on internal/mpsc with the
// batched drain the serve and shard workers use.
func benchQueueMPSC(producers int) func(b *testing.B) {
	return func(b *testing.B) {
		q := mpsc.New[item](queueDepth)
		batch := make([]item, drainBatch)
		runProducersConsumer(b, producers,
			func(it item) bool { return q.Push(it) },
			func(got *int64) bool {
				n := q.PopBatch(batch)
				if n == 0 {
					return false
				}
				for i := 0; i < n; i++ {
					*got += batch[i].op
					batch[i] = item{}
				}
				return true
			})
	}
}

// runProducersConsumer transfers b.N items from `producers` goroutines to
// one consumer through push/drain. drain folds whatever it popped into
// its accumulator and reports whether it made progress. Spin loops yield:
// the benchmark must degrade gracefully on GOMAXPROCS=1, where a
// non-yielding spin starves the single P.
func runProducersConsumer(b *testing.B, producers int, push func(item) bool, drain func(*int64) bool) {
	slot := int64(0)
	per := b.N / producers
	total := per * producers
	if total == 0 {
		total, per = producers, 1
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			<-start
			for i := 0; i < per; i++ {
				for !push(item{op: 1, pd: &slot}) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	var got int64
	b.ResetTimer()
	close(start)
	for got < int64(total) {
		if !drain(&got) {
			runtime.Gosched()
		}
	}
	b.StopTimer()
	wg.Wait()
	if got != int64(total) {
		b.Fatalf("drained %d of %d items", got, total)
	}
}

// benchInvokePath measures the end-to-end direct Stack invocation on the
// rt substrate: Ω∆ leadership, the QA ballot, the typed registers, and
// the recycling slot store, all per op. A peer client invokes throughout
// so slot recycling keeps up (an idle handle pins the reclaim floor), so
// ns/op includes genuine two-client contention. The headline number is
// allocs/op: amortized zero once the pools and the slot window are warm.
func benchInvokePath(b *testing.B) {
	r := rt.New(2, nil)
	st, err := deploy.Build[int64, objtype.CounterOp, int64](r, objtype.Counter{}, deploy.BuildConfig{})
	if err != nil {
		b.Fatalf("Build: %v", err)
	}
	var stop atomic.Bool
	r.Spawn(1, "peer", func(pp prim.Proc) {
		for !stop.Load() {
			st.Clients[1].Invoke(pp, objtype.CounterOp{Delta: 1})
		}
	})
	runSpawned(b, r, func(pp prim.Proc) {
		c := st.Clients[0]
		for i := 0; i < 400; i++ { // warm pools, settle the elector
			c.Invoke(pp, objtype.CounterOp{Delta: 1})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Invoke(pp, objtype.CounterOp{Delta: 1})
		}
		b.StopTimer()
		stop.Store(true)
	})
	if want := int64(400 + b.N); st.Clients[0].Completed() != want {
		b.Fatalf("completed %d ops, want %d", st.Clients[0].Completed(), want)
	}
}
