// Package lincheck is a linearizability checker for concurrent histories
// in the Wing–Gong / Lowe style: given a sequential specification (a
// qa.Type) and a history of completed operations with invocation/response
// timestamps, it searches for a legal linearization — a total order that
// respects real-time precedence and replays to exactly the observed
// responses.
//
// It verifies the repo's concurrent objects *independently* of their own
// internals: the qa tests already cross-check against the operation log
// (the construction's built-in witness), and lincheck confirms the same
// histories linearize with no knowledge of that log.
//
// The search is exponential in the worst case; it memoizes on
// (linearized-set, state) and is comfortably fast for the history sizes
// the tests produce (≲ 64 operations with bounded concurrency).
package lincheck

import (
	"fmt"
	"math/bits"

	"tbwf/internal/qa"
)

// Op is one completed operation of a history.
type Op[O, R any] struct {
	// Proc is the invoking process (informational).
	Proc int
	// Invoke and Response are the operation's start and end times; any
	// monotone clock works (the tests use kernel step numbers). Response
	// must be ≥ Invoke, and operations of one process must not overlap.
	Invoke, Response int64
	// Arg is the operation and Resp the response it returned.
	Arg  O
	Resp R
}

// Options tunes a check.
type Options[S, R any] struct {
	// Equal compares responses; nil means comparison via fmt.Sprintf("%v").
	Equal func(a, b R) bool
	// StateKey fingerprints states for memoization; nil means
	// fmt.Sprintf("%v"), which is correct for any state whose %v form is
	// canonical (all objtype states qualify).
	StateKey func(S) string
	// MaxOps caps the history size (the checker uses a 64-bit set);
	// histories longer than 64 are rejected. 0 means 64.
	MaxOps int
}

// Check reports whether history is linearizable with respect to typ.
// It returns the linearization order (indices into history) when one
// exists.
func Check[S, O, R any](typ qa.Type[S, O, R], history []Op[O, R], opts Options[S, R]) (order []int, ok bool, err error) {
	maxOps := opts.MaxOps
	if maxOps == 0 || maxOps > 64 {
		maxOps = 64
	}
	if len(history) > maxOps {
		return nil, false, fmt.Errorf("lincheck: history has %d ops, max %d", len(history), maxOps)
	}
	eq := opts.Equal
	if eq == nil {
		eq = func(a, b R) bool { return fmt.Sprintf("%v", a) == fmt.Sprintf("%v", b) }
	}
	key := opts.StateKey
	if key == nil {
		key = func(s S) string { return fmt.Sprintf("%v", s) }
	}
	for i, op := range history {
		if op.Response < op.Invoke {
			return nil, false, fmt.Errorf("lincheck: op %d responds at %d before invoking at %d", i, op.Response, op.Invoke)
		}
	}

	n := len(history)
	c := &checker[S, O, R]{
		typ:     typ,
		history: history,
		eq:      eq,
		key:     key,
		visited: make(map[string]bool),
		order:   make([]int, 0, n),
	}
	if c.search(typ.Init(), 0) {
		return c.order, true, nil
	}
	return nil, false, nil
}

type checker[S, O, R any] struct {
	typ     qa.Type[S, O, R]
	history []Op[O, R]
	eq      func(a, b R) bool
	key     func(S) string
	visited map[string]bool
	order   []int
}

// search extends a partial linearization. done is the bitset of linearized
// operations.
func (c *checker[S, O, R]) search(state S, done uint64) bool {
	n := len(c.history)
	if bits.OnesCount64(done) == n {
		return true
	}
	memo := fmt.Sprintf("%d|%s", done, c.key(state))
	if c.visited[memo] {
		return false
	}
	c.visited[memo] = true

	// An operation may linearize next only if no *unlinearized* operation
	// responded strictly before it was invoked (real-time order).
	minResp := int64(1<<63 - 1)
	for i := 0; i < n; i++ {
		if done&(1<<i) == 0 && c.history[i].Response < minResp {
			minResp = c.history[i].Response
		}
	}
	for i := 0; i < n; i++ {
		if done&(1<<i) != 0 {
			continue
		}
		op := c.history[i]
		if op.Invoke > minResp {
			continue // some pending op finished before this one began
		}
		next, resp := c.typ.Apply(state, op.Arg)
		if !c.eq(resp, op.Resp) {
			continue
		}
		c.order = append(c.order, i)
		if c.search(next, done|1<<i) {
			return true
		}
		c.order = c.order[:len(c.order)-1]
	}
	return false
}
