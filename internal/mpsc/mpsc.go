// Package mpsc provides the repo's single bounded request-queue
// implementation: a lock-free multi-producer single-consumer ring used by
// every live-path queue (the serve layer's per-replica request queues and
// the shard layer's per-(shard,replica) lanes).
//
// The design is a CAS ring in the style of Vyukov's bounded queue: each
// cell carries a sequence number; producers claim cells by CAS on a shared
// ticket counter and publish by advancing the cell's sequence, the single
// consumer drains cells in ticket order without any CAS. Properties the
// call sites rely on:
//
//   - Pop order is exactly the linearized Push order (ticket order), so
//     the serve fuzzer's FIFO oracle holds on both substrates.
//   - Push never blocks and never allocates: a full ring reports false
//     immediately (the service's backpressure signal), and a simulation
//     task can call Push/Pop without ever blocking outside the kernel's
//     scheduling (the cardinal sim rule).
//   - PopBatch lets one consumer wake drain many queued items, so a worker
//     turn amortizes its queue check over a whole batch (mirroring the
//     shard layer's one-QA-round-per-batch amortization).
//
// The queue is sharded across the system one level up: every (replica) and
// every (shard, replica) pair owns an independent ring, so producers for
// different lanes never touch the same cache lines.
package mpsc

import "sync/atomic"

// pad keeps the hot cursors on their own cache lines so producers hammering
// tail do not false-share with the consumer advancing head.
type pad [56]byte

type cell[T any] struct {
	seq atomic.Int64
	val T
}

// Queue is a bounded multi-producer single-consumer FIFO. Any goroutine may
// Push; only one goroutine at a time may Pop/PopBatch. The zero value is
// not usable; create with New.
type Queue[T any] struct {
	mask int64
	buf  []cell[T]
	_    pad
	tail atomic.Int64 // next enqueue ticket (shared, CAS)
	_    pad
	head atomic.Int64 // next dequeue ticket (consumer-only writes)
	_    pad
}

// New creates a queue holding at least capacity items (rounded up to a
// power of two, minimum 2).
func New[T any](capacity int) *Queue[T] {
	c := int64(2)
	for c < int64(capacity) {
		c <<= 1
	}
	q := &Queue[T]{mask: c - 1, buf: make([]cell[T], c)}
	for i := range q.buf {
		q.buf[i].seq.Store(int64(i))
	}
	return q
}

// Cap returns the queue's capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Push enqueues v, or reports false if the queue is full. Lock-free:
// a producer that loses the CAS race retries against the fresh ticket; it
// never spins on another producer's unfinished publish.
func (q *Queue[T]) Push(v T) bool {
	pos := q.tail.Load()
	for {
		c := &q.buf[pos&q.mask]
		switch seq := c.seq.Load(); {
		case seq == pos:
			if q.tail.CompareAndSwap(pos, pos+1) {
				c.val = v
				c.seq.Store(pos + 1) // publish
				return true
			}
			pos = q.tail.Load()
		case seq < pos:
			// The cell still holds an unconsumed item from one lap ago:
			// the ring is full at this instant.
			return false
		default:
			// Another producer claimed this cell; chase the ticket.
			pos = q.tail.Load()
		}
	}
}

// Pop dequeues the oldest item; ok is false when the queue is empty (or
// the oldest claim is not yet published). Single consumer only.
func (q *Queue[T]) Pop() (T, bool) {
	pos := q.head.Load()
	c := &q.buf[pos&q.mask]
	if c.seq.Load() != pos+1 {
		var zero T
		return zero, false
	}
	v := c.val
	var zero T
	c.val = zero // do not retain popped values
	c.seq.Store(pos + q.mask + 1)
	q.head.Store(pos + 1)
	return v, true
}

// PopBatch dequeues up to len(buf) items into buf and returns how many it
// moved — one consumer wake servicing a whole run of queued items. Single
// consumer only.
func (q *Queue[T]) PopBatch(buf []T) int {
	n := 0
	pos := q.head.Load()
	for n < len(buf) {
		c := &q.buf[pos&q.mask]
		if c.seq.Load() != pos+1 {
			break
		}
		buf[n] = c.val
		var zero T
		c.val = zero
		c.seq.Store(pos + q.mask + 1)
		pos++
		n++
	}
	if n > 0 {
		q.head.Store(pos)
	}
	return n
}

// Len reports the number of queued items. It is a racy snapshot (tickets
// claimed but not yet published count as queued), good for telemetry and
// backpressure heuristics only.
func (q *Queue[T]) Len() int {
	d := q.tail.Load() - q.head.Load()
	if d < 0 {
		return 0
	}
	if d > int64(len(q.buf)) {
		return len(q.buf)
	}
	return int(d)
}
