package mpsc

import (
	"runtime"
	"sync"
	"testing"
)

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {64, 64}, {100, 128},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestPushPopFIFO(t *testing.T) {
	q := New[int](8)
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
	for i := 0; i < 8; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) on non-full queue failed", i)
		}
	}
	if q.Push(99) {
		t.Fatal("Push on full queue succeeded")
	}
	if got := q.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	for i := 0; i < 8; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on drained queue reported ok")
	}
}

// TestWrapAround exercises many laps around a tiny ring so the sequence
// arithmetic is tested far past the first lap.
func TestWrapAround(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 10_000; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) failed on empty ring", i)
		}
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
}

func TestPopBatch(t *testing.T) {
	q := New[int](16)
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	buf := make([]int, 4)
	if n := q.PopBatch(buf); n != 4 {
		t.Fatalf("PopBatch = %d, want 4", n)
	}
	for i, v := range buf {
		if v != i {
			t.Fatalf("buf[%d] = %d, want %d", i, v, i)
		}
	}
	if n := q.PopBatch(buf[:2]); n != 2 || buf[0] != 4 || buf[1] != 5 {
		t.Fatalf("second PopBatch = %d (%v), want 2 (4 5)", n, buf[:2])
	}
	if n := q.PopBatch(buf); n != 4 {
		t.Fatalf("third PopBatch = %d, want 4", n)
	}
	if n := q.PopBatch(buf); n != 0 {
		t.Fatalf("PopBatch on empty = %d, want 0", n)
	}
}

// TestPoppedValuesNotRetained checks that Pop and PopBatch zero the cell so
// the ring does not pin popped pointers against the GC.
func TestPoppedValuesNotRetained(t *testing.T) {
	q := New[*int](4)
	x := new(int)
	q.Push(x)
	q.Pop()
	for i := range q.buf {
		if q.buf[i].val != nil {
			t.Fatal("Pop left a pointer behind in the ring")
		}
	}
	q.Push(x)
	q.PopBatch(make([]*int, 1))
	for i := range q.buf {
		if q.buf[i].val != nil {
			t.Fatal("PopBatch left a pointer behind in the ring")
		}
	}
}

// TestConcurrentFIFO drives many producers against one consumer and checks
// (a) nothing is lost or duplicated, (b) each producer's items arrive in
// its own program order (per-producer FIFO is what the serve layer's fuzz
// oracle observes). Run with -race for the memory-model teeth.
func TestConcurrentFIFO(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
	)
	type item struct{ prod, seq int }
	q := New[item](64)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for s := 0; s < perProd; s++ {
				for !q.Push(item{p, s}) {
					runtime.Gosched() // full: let the consumer drain
				}
			}
		}(p)
	}

	got := make([][]int, producers)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]item, 32)
		total := 0
		for total < producers*perProd {
			n := q.PopBatch(buf)
			if n == 0 {
				v, ok := q.Pop()
				if !ok {
					runtime.Gosched()
					continue
				}
				buf[0], n = v, 1
			}
			for _, it := range buf[:n] {
				got[it.prod] = append(got[it.prod], it.seq)
			}
			total += n
		}
	}()
	wg.Wait()
	<-done

	for p := 0; p < producers; p++ {
		if len(got[p]) != perProd {
			t.Fatalf("producer %d: received %d items, want %d", p, len(got[p]), perProd)
		}
		for s, v := range got[p] {
			if v != s {
				t.Fatalf("producer %d: item %d out of order (got seq %d)", p, s, v)
			}
		}
	}
}

// TestConcurrentBounded checks the full-queue backpressure path under
// producer contention: Len never exceeds Cap and rejected pushes are
// eventually admitted.
func TestConcurrentBounded(t *testing.T) {
	q := New[int](4)
	var wg sync.WaitGroup
	const perProd = 500
	var rejects, accepts int64
	var mu sync.Mutex
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			localRej, localAcc := int64(0), int64(0)
			for s := 0; s < perProd; s++ {
				for !q.Push(s) {
					localRej++
					runtime.Gosched()
				}
				localAcc++
				if l := q.Len(); l > q.Cap() {
					t.Errorf("Len %d exceeds Cap %d", l, q.Cap())
					return
				}
			}
			mu.Lock()
			rejects += localRej
			accepts += localAcc
			mu.Unlock()
		}()
	}
	drained := 0
	for drained < 4*perProd {
		if _, ok := q.Pop(); ok {
			drained++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
	if accepts != 4*perProd {
		t.Fatalf("accepted %d pushes, want %d (%d rejects)", accepts, 4*perProd, rejects)
	}
}
