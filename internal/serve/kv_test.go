package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"tbwf/internal/rt"
	"tbwf/internal/shard"
)

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func TestParseAdmission(t *testing.T) {
	a, err := ParseAdmission("")
	if err != nil || a.RefillEvery != 0 || a.MaxInFlight != 0 {
		t.Fatalf("empty spec: %+v, %v", a, err)
	}
	a, err = ParseAdmission("rate=100,burst=5,inflight=32")
	if err != nil {
		t.Fatal(err)
	}
	if a.RefillEvery != int64(1e9)/100 || a.Burst != 5 || a.MaxInFlight != 32 {
		t.Fatalf("parsed %+v", a)
	}
	// Fractional rates are allowed (one token per 1/rate seconds).
	if a, err = ParseAdmission("rate=0.5"); err != nil || a.RefillEvery != int64(2e9) {
		t.Fatalf("rate=0.5: %+v, %v", a, err)
	}
	for _, bad := range []string{
		"burst=2",           // burst needs a rate
		"rate=0", "rate=-1", // non-positive rate
		"rate=abc",   //
		"inflight=0", //
		"tokens=5",   // unknown key
		"rate",       // not key=value
	} {
		if _, err := ParseAdmission(bad); err == nil {
			t.Errorf("ParseAdmission(%q) accepted", bad)
		}
	}
}

func TestShardConfigValidation(t *testing.T) {
	// Shard tuning flags without shards are a config error, not silence.
	for _, cfg := range []Config{
		{N: 2, Object: "counter", MaxBatch: 8},
		{N: 2, Object: "counter", ShardElector: "nerio"},
		{N: 2, Object: "counter", Admission: "rate=10"},
		{N: 2, Object: "counter", Shards: -1},
		{N: 2, Object: "counter", Shards: 2, ShardElector: "quantum"},
		{N: 2, Object: "counter", Shards: 2, Admission: "rate=no"},
		{N: 2, Object: "counter", Shards: 2, Substrate: "net"},
	} {
		if s, err := New(cfg); err == nil {
			s.Stop()
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestKVUnshardedGuard: the keyed endpoints refuse cleanly on a server
// started without shards.
func TestKVUnshardedGuard(t *testing.T) {
	_, ts := startServer(t, Config{N: 2, Object: "counter"})
	code, out := postJSON(t, ts.URL+"/v1/kv/invoke", map[string]any{
		"key": "k", "op": map[string]any{"kind": "add", "delta": 1},
	})
	if code != http.StatusBadRequest || out["ok"] != false {
		t.Fatalf("kv invoke on unsharded server: %d %v", code, out)
	}
	resp, err := http.Get(ts.URL + "/v1/kv/read?key=k")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("kv read on unsharded server: %d", resp.StatusCode)
	}
}

// TestKVSingleShardParity: with one shard the keyed API is the unsharded
// path plus a key column — a deterministic sequential op sequence folds
// exactly like the model map, every op landing on shard 0.
func TestKVSingleShardParity(t *testing.T) {
	_, ts := startServer(t, Config{N: 2, Object: "counter", Shards: 1})
	model := map[string]int64{}
	step := func(key string, op map[string]any, wantPrev int64, wantSwapped bool) {
		t.Helper()
		code, out := postJSON(t, ts.URL+"/v1/kv/invoke", map[string]any{"key": key, "op": op})
		if code != http.StatusOK || out["ok"] != true {
			t.Fatalf("kv %v on %q: %d %v", op, key, code, out)
		}
		if sh := out["shard"].(float64); sh != 0 {
			t.Fatalf("one shard, got shard %v", sh)
		}
		resp := out["resp"].(map[string]any)
		if int64(resp["prev"].(float64)) != wantPrev {
			t.Fatalf("kv %v on %q: prev %v, want %d", op, key, resp["prev"], wantPrev)
		}
		if resp["swapped"] != wantSwapped {
			t.Fatalf("kv %v on %q: swapped %v, want %v", op, key, resp["swapped"], wantSwapped)
		}
	}
	step("a", map[string]any{"kind": "put", "value": 5}, model["a"], false)
	model["a"] = 5
	step("b", map[string]any{"kind": "add", "delta": 3}, model["b"], false)
	model["b"] += 3
	step("a", map[string]any{"kind": "add", "delta": -2}, model["a"], false)
	model["a"] -= 2
	step("a", map[string]any{"kind": "cas", "old": 3, "new": 9}, model["a"], true)
	model["a"] = 9
	step("a", map[string]any{"kind": "cas", "old": 3, "new": 11}, model["a"], false)
	step("b", map[string]any{"kind": "get"}, model["b"], false)

	// The read endpoint is a keyed get.
	resp, err := http.Get(ts.URL + "/v1/kv/read?key=a")
	if err != nil {
		t.Fatal(err)
	}
	var read kvInvokeResponse
	if err := json.NewDecoder(resp.Body).Decode(&read); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !read.OK || read.Resp.Prev != model["a"] || !read.Resp.Found {
		t.Fatalf("kv read a: %+v, model %v", read, model)
	}

	// Stats surface the keyed vocabulary for load generators.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsReport
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Shards != 1 || len(stats.KVKinds) != 4 || stats.KVServed != 7 {
		t.Fatalf("stats: shards %d kinds %v kv_served %d", stats.Shards, stats.KVKinds, stats.KVServed)
	}
}

// TestKVRateLimited429: an exhausted token bucket answers 429 with
// Retry-After — the client's fault, distinct from the 503 overload
// signals — and shows up as a rate-limit shed, not a queue-full one.
func TestKVRateLimited429(t *testing.T) {
	s, ts := startServer(t, Config{
		N: 2, Object: "counter", Shards: 2,
		Admission: "rate=0.001,burst=2", // refill is ~17min away: only the burst admits
	})
	for i := 0; i < 2; i++ {
		code, out := postJSON(t, ts.URL+"/v1/kv/invoke", map[string]any{
			"key": "hot", "op": map[string]any{"kind": "add", "delta": 1},
		})
		if code != http.StatusOK {
			t.Fatalf("burst op %d: %d %v", i, code, out)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/kv/invoke", "application/json",
		jsonBody(t, map[string]any{"key": "hot", "op": map[string]any{"kind": "add", "delta": 1}}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-burst op: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	sh := s.kv.ShardFor("hot")
	if st := s.kv.Stats(sh); st.ShedRateLimit != 1 || st.ShedQueueFull != 0 || st.ShedInFlight != 0 {
		t.Fatalf("shard %d stats %+v: want exactly one rate-limit shed", sh, st)
	}
	rep := s.report()
	if rep.Shards[sh].ShedRL != 1 {
		t.Fatalf("metrics shard %d: %+v", sh, rep.Shards[sh])
	}
}

// stalledKVServer starts a sharded server whose replicas never step:
// queued keyed ops are admitted but can never complete, so queue and
// in-flight occupancy are fully test-controlled. Stop interrupts the
// pacing gates, so teardown stays prompt.
func stalledKVServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Pacing = []rt.Profile{rt.Steady(time.Hour), rt.Steady(time.Hour)}
	s, ts := startServer(t, cfg)
	// Let the workers reach their first pacing gate: each pops at most one
	// batch, then stalls inside the invocation for the rest of the test.
	time.Sleep(100 * time.Millisecond)
	return s, ts.URL
}

// fillQueues direct-submits until every replica queue of key's shard is
// full, returning how many ops were admitted.
func fillQueues(t *testing.T, s *Server, key string) int {
	t.Helper()
	admitted, full := 0, 0
	for i := 0; full < 2*s.N(); i++ {
		if i > 10_000 {
			t.Fatal("queues never filled")
		}
		_, _, err := s.kv.Submit(key, -1, shard.Op{Kind: shard.Add, Val: 1}, shard.NewPending())
		switch err {
		case nil:
			admitted, full = admitted+1, 0
		case shard.ErrQueueFull:
			full++
		default:
			t.Fatalf("fill: %v", err)
		}
	}
	return admitted
}

// TestKVQueueFull503: a full replica queue answers 503 (service
// overloaded), not 429.
func TestKVQueueFull503(t *testing.T) {
	s, url := stalledKVServer(t, Config{N: 2, Object: "counter", Shards: 1, QueueDepth: 2, MaxBatch: 2})
	fillQueues(t, s, "k")
	resp, err := http.Post(url+"/v1/kv/invoke", "application/json",
		jsonBody(t, map[string]any{"key": "k", "op": map[string]any{"kind": "add", "delta": 1}}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full queues: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if st := s.kv.Stats(0); st.ShedQueueFull == 0 || st.ShedRateLimit != 0 {
		t.Fatalf("stats %+v: want queue-full sheds only", st)
	}
}

// TestKVInFlightCap503: the global in-flight cap answers 503 once
// admitted operations stop completing.
func TestKVInFlightCap503(t *testing.T) {
	s, url := stalledKVServer(t, Config{
		N: 2, Object: "counter", Shards: 2, QueueDepth: 8,
		Admission: "inflight=3",
	})
	for i := 0; i < 3; i++ {
		if _, _, err := s.kv.Submit("k", -1, shard.Op{Kind: shard.Add, Val: 1}, shard.NewPending()); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	resp, err := http.Post(url+"/v1/kv/invoke", "application/json",
		jsonBody(t, map[string]any{"key": "other", "op": map[string]any{"kind": "get"}}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped in-flight cap: %d, want 503", resp.StatusCode)
	}
	if s.kv.InFlight() != 3 {
		t.Fatalf("in-flight %d, want 3", s.kv.InFlight())
	}
	var shed int64
	for sh := 0; sh < s.kv.Shards(); sh++ {
		shed += s.kv.Stats(sh).ShedInFlight
	}
	if shed != 1 {
		t.Fatalf("in-flight sheds %d, want 1", shed)
	}
}

// TestKVShardElectorCycle: the shard elector list cycles and surfaces in
// the metrics report.
func TestKVShardElectorCycle(t *testing.T) {
	s, _ := startServer(t, Config{N: 2, Object: "counter", Shards: 3, ShardElector: "atomic,nerio"})
	rep := s.report()
	if len(rep.Shards) != 3 {
		t.Fatalf("%d shard sections", len(rep.Shards))
	}
	want := []string{"atomic", "nerio", "atomic"}
	for i, sm := range rep.Shards {
		if sm.Elector != want[i] {
			t.Fatalf("shard %d elector %q, want %q", i, sm.Elector, want[i])
		}
		if len(sm.Leaders) != 2 || len(sm.QueueDepth) != 2 {
			t.Fatalf("shard %d: %+v", i, sm)
		}
	}
}
