package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"
)

// kvHistoryOp is one acknowledged keyed add, as observed by its client:
// wall-clock invoke/response bounds plus the server's claimed prev.
type kvHistoryOp struct {
	key      string
	shard    int
	delta    int64
	prev     int64
	invoke   time.Time
	response time.Time
}

// TestShardedKeyspaceIntegration is the headline end-to-end check: 1024
// closed-loop clients fire a zipfian keyed add mix at an 8-shard server
// and the full HTTP history must be per-shard linearizable.
//
// The oracle leans on two facts. First, ops on different keys commute
// under the KV spec, so a per-shard linearization exists iff a
// per-(shard,key) one does — checking each key's history suffices.
// Second, every delta is strictly positive, so a key's acked prevs must
// be pairwise distinct and, sorted, form the exact chain
// prev_0 = 0, prev_{i+1} = prev_i + delta_i: that sorted order is the
// only candidate linearization, and it must also respect real time
// (an op that responded before another was invoked must precede it).
//
// The test also demands the tentpole's amortization be visible: the
// hottest shard's mean batch size must exceed 1 in /v1/metrics.
func TestShardedKeyspaceIntegration(t *testing.T) {
	const (
		clients   = 1024
		opsPerCli = 3
		keys      = 48
		shards    = 8
	)
	s, ts := startServer(t, Config{
		N:          4,
		Object:     "counter",
		Shards:     shards,
		MaxBatch:   32,
		QueueDepth: 256,
	})

	var (
		mu      sync.Mutex
		history []kvHistoryOp
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			zipf := rand.NewZipf(rng, 1.2, 1, keys-1)
			for i := 0; i < opsPerCli; i++ {
				key := fmt.Sprintf("k%04d", zipf.Uint64())
				delta := 1 + rng.Int63n(1000)
				var (
					code int
					out  kvInvokeResponse
					inv  time.Time
				)
				for attempt := 0; ; attempt++ {
					inv = time.Now()
					resp, err := http.Post(ts.URL+"/v1/kv/invoke", "application/json",
						jsonBody(t, map[string]any{
							"key": key,
							"op":  map[string]any{"kind": "add", "delta": delta},
						}))
					if err != nil {
						errs <- fmt.Errorf("client %d op %d: %v", c, i, err)
						return
					}
					code = resp.StatusCode
					err = json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if code == http.StatusOK {
						if err != nil {
							errs <- fmt.Errorf("client %d op %d: decode: %v", c, i, err)
							return
						}
						break
					}
					if code != http.StatusServiceUnavailable && code != http.StatusTooManyRequests {
						errs <- fmt.Errorf("client %d op %d: status %d", c, i, code)
						return
					}
					if attempt > 100 {
						errs <- fmt.Errorf("client %d op %d: %d sheds in a row", c, i, attempt)
						return
					}
					time.Sleep(time.Millisecond)
				}
				op := kvHistoryOp{
					key:      key,
					shard:    out.Shard,
					delta:    delta,
					prev:     out.Resp.Prev,
					invoke:   inv,
					response: time.Now(),
				}
				mu.Lock()
				history = append(history, op)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(history) != clients*opsPerCli {
		t.Fatalf("acked %d ops, want %d", len(history), clients*opsPerCli)
	}

	// The metrics report must expose every shard, and the hot shard must
	// show real batching amortization.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var rep MetricsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rep.Shards) != shards {
		t.Fatalf("metrics report %d shards, want %d", len(rep.Shards), shards)
	}
	hot := 0
	var accepted, served int64
	for i, sm := range rep.Shards {
		accepted += sm.Accepted
		served += sm.Served
		if sm.Accepted > rep.Shards[hot].Accepted {
			hot = i
		}
		if len(sm.Leaders) != 4 {
			t.Fatalf("shard %d leader vector %v", i, sm.Leaders)
		}
	}
	if accepted != served || served != int64(len(history)) {
		t.Fatalf("accepted %d served %d acked %d: lost or phantom ops", accepted, served, len(history))
	}
	if mb := rep.Shards[hot].MeanBatch; mb <= 1 {
		t.Fatalf("hot shard %d mean batch %.3f: batching never amortized (hist %v)",
			hot, mb, rep.Shards[hot].BatchHist)
	}
	t.Logf("hot shard %d: accepted %d, mean batch %.2f",
		hot, rep.Shards[hot].Accepted, rep.Shards[hot].MeanBatch)

	// Per-(shard,key) linearizability over the full acked history.
	byKey := map[string][]kvHistoryOp{}
	for _, op := range history {
		byKey[op.key] = append(byKey[op.key], op)
	}
	sums := map[string]int64{}
	for key, ops := range byKey {
		for _, op := range ops[1:] {
			if op.shard != ops[0].shard {
				t.Fatalf("key %q served by shards %d and %d", key, ops[0].shard, op.shard)
			}
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i].prev < ops[j].prev })
		want := int64(0)
		for i, op := range ops {
			if op.prev != want {
				t.Fatalf("key %q op %d: prev %d, want %d — no linearization of the adds exists",
					key, i, op.prev, want)
			}
			want += op.delta
			sums[key] = want
		}
		// Real-time order: in the (unique) linearization, nobody may be
		// placed after an op whose invoke postdates their response.
		minRespAfter := make([]time.Time, len(ops)+1)
		minRespAfter[len(ops)] = time.Now().Add(time.Hour)
		for i := len(ops) - 1; i >= 0; i-- {
			minRespAfter[i] = ops[i].response
			if minRespAfter[i+1].Before(minRespAfter[i]) {
				minRespAfter[i] = minRespAfter[i+1]
			}
		}
		for i, op := range ops {
			if minRespAfter[i+1].Before(op.invoke) {
				t.Fatalf("key %q: linearization order contradicts real time at op %d", key, i)
			}
		}
	}

	// Final reads agree with the acked sums.
	for key, want := range sums {
		resp, err := http.Get(ts.URL + "/v1/kv/read?key=" + key)
		if err != nil {
			t.Fatal(err)
		}
		var read kvInvokeResponse
		if err := json.NewDecoder(resp.Body).Decode(&read); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !read.OK || read.Resp.Prev != want {
			t.Fatalf("final read of %q: %+v, want %d", key, read, want)
		}
	}
	_ = s // stopped by startServer's cleanup
}
