package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseProfile(t *testing.T) {
	good := []string{"steady", "steady:100us", "growing:400:2ms:1.5", "growing:1:1ns:1"}
	for _, spec := range good {
		if _, err := ParseProfile(spec); err != nil {
			t.Errorf("ParseProfile(%q): %v", spec, err)
		}
	}
	bad := []string{"", "warp", "steady:-1ms", "steady:1ms:2ms", "growing", "growing:0:1ms:2",
		"growing:10:bogus:2", "growing:10:1ms:0.5", "growing:10:1ms:2:extra"}
	for _, spec := range bad {
		if _, err := ParseProfile(spec); err == nil {
			t.Errorf("ParseProfile(%q) accepted", spec)
		}
	}
}

func TestParsePacing(t *testing.T) {
	profs, err := ParsePacing("*:steady:10us;2:growing:400:2ms:1.5", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 4 {
		t.Fatalf("got %d profiles", len(profs))
	}
	if d := profs[0](1); d != 10*time.Microsecond {
		t.Errorf("process 0 step delay = %v", d)
	}
	// Process 2's growing profile yields zero during its burst.
	if d := profs[2](1); d != 0 {
		t.Errorf("process 2 first burst step delay = %v", d)
	}
	if _, err := ParsePacing("9:steady", 4); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := ParsePacing("junk", 4); err == nil {
		t.Error("entry without profile accepted")
	}
	if profs, err = ParsePacing("  ", 3); err != nil || len(profs) != 3 {
		t.Errorf("blank pacing: %v, %d profiles", err, len(profs))
	}
}

func TestObjectsList(t *testing.T) {
	names := Objects()
	want := map[string]bool{"counter": true, "register": true, "snapshot": true, "jobqueue": true}
	if len(names) != len(want) {
		t.Fatalf("Objects() = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected object %q", n)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{N: 1, Object: "counter"}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(Config{N: 3, Object: "philosopher"}); err == nil {
		t.Error("unknown object accepted")
	}
	if _, err := New(Config{N: 3, Object: "counter", Omega: "quantum"}); err == nil {
		t.Error("unknown omega kind accepted")
	}
	short, err := ParsePacing("", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{N: 3, Object: "counter", Pacing: short}); err == nil {
		t.Error("mismatched pacing length accepted")
	}
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		if err := s.Stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func TestInvokeReadStatsCounter(t *testing.T) {
	_, ts := startServer(t, Config{N: 2, Object: "counter"})

	// Three adds, round-robin routed.
	for i := 0; i < 3; i++ {
		code, out := postJSON(t, ts.URL+"/v1/invoke", map[string]any{
			"replica": -1, "op": map[string]any{"kind": "add", "delta": 1},
		})
		if code != http.StatusOK || out["ok"] != true {
			t.Fatalf("invoke %d: %d %v", i, code, out)
		}
	}
	// A read observes the three increments.
	resp, err := http.Get(ts.URL + "/v1/read?replica=0")
	if err != nil {
		t.Fatal(err)
	}
	var read invokeResponse
	if err := json.NewDecoder(resp.Body).Decode(&read); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	m, ok := read.Resp.(map[string]any)
	if !ok || m["prev"] != float64(3) {
		t.Fatalf("read after 3 adds: %+v", read)
	}
	if read.Replica != 0 {
		t.Fatalf("read routed to replica %d", read.Replica)
	}

	// Stats reflect the served operations.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsReport
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var served int64
	for _, v := range stats.Served {
		served += v
	}
	if served != 4 || stats.Object != "counter" || stats.N != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Omega != "atomic-registers" {
		t.Fatalf("stats omega = %q, want atomic-registers", stats.Omega)
	}
	if stats.Elector != "atomic" {
		t.Fatalf("stats elector = %q, want atomic", stats.Elector)
	}
}

// The service must run on the abortable-register Ω∆ too (Theorem 15 live):
// operations complete, /v1/stats reports the kind, and the metrics report
// has no fault matrix (Figures 4–6 have no monitors).
func TestAbortableOmegaServes(t *testing.T) {
	s, ts := startServer(t, Config{N: 2, Object: "counter", Omega: "abortable"})
	for i := 0; i < 3; i++ {
		code, out := postJSON(t, ts.URL+"/v1/invoke", map[string]any{
			"replica": -1, "op": map[string]any{"kind": "add", "delta": 1},
		})
		if code != http.StatusOK || out["ok"] != true {
			t.Fatalf("invoke %d: %d %v", i, code, out)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsReport
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Omega != "abortable-registers" {
		t.Fatalf("stats omega = %q, want abortable-registers", stats.Omega)
	}
	if stats.Elector != "abortable" {
		t.Fatalf("stats elector = %q, want abortable", stats.Elector)
	}
	// The fault block must say "not supported" explicitly — never a nil
	// matrix masquerading as "no faults yet" — and carry no trajectory.
	rep := s.report()
	if rep.Faults.Supported {
		t.Fatalf("abortable Ω∆ claims fault-matrix support: %+v", rep.Faults)
	}
	if len(rep.Faults.Matrix) != 0 || len(rep.Faults.Trajectory) != 0 {
		t.Fatalf("unsupported fault block carries data: %+v", rep.Faults)
	}
	// And the rendered /v1/metrics document says so too.
	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	faults, ok := doc["faults"].(map[string]any)
	if !ok {
		t.Fatalf("metrics document has no faults block: %v", doc)
	}
	if faults["supported"] != false {
		t.Fatalf("metrics faults.supported = %v, want false", faults["supported"])
	}
	if _, present := faults["matrix"]; present {
		t.Fatalf("unsupported faults block renders a matrix: %v", faults)
	}
}

// The two imported electors serve live traffic through the same seam:
// operations complete, the stats and metrics documents name the elector,
// and both maintain a real fault/penalty matrix.
func TestImportedElectorsServe(t *testing.T) {
	for _, name := range []string{"nerio", "reputation"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s, ts := startServer(t, Config{N: 2, Object: "counter", Elector: name})
			for i := 0; i < 3; i++ {
				code, out := postJSON(t, ts.URL+"/v1/invoke", map[string]any{
					"replica": -1, "op": map[string]any{"kind": "add", "delta": 1},
				})
				if code != http.StatusOK || out["ok"] != true {
					t.Fatalf("invoke %d: %d %v", i, code, out)
				}
			}
			resp, err := http.Get(ts.URL + "/v1/stats")
			if err != nil {
				t.Fatal(err)
			}
			var stats statsReport
			if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if stats.Elector != name {
				t.Fatalf("stats elector = %q, want %q", stats.Elector, name)
			}
			rep := s.report()
			if rep.Elector != name {
				t.Fatalf("metrics elector = %q, want %q", rep.Elector, name)
			}
			if !rep.Faults.Supported || len(rep.Faults.Matrix) != 2 {
				t.Fatalf("%s fault block: %+v", name, rep.Faults)
			}
		})
	}
}

// Config.Elector and the legacy Config.Omega arbitrate exactly like the
// CLI flags: agreement is fine, conflict is a construction error.
func TestElectorOmegaConfigArbitration(t *testing.T) {
	s, err := New(Config{N: 2, Object: "counter", Elector: "nerio", Omega: "nerio-lease"})
	if err != nil {
		t.Fatalf("agreeing spellings rejected: %v", err)
	}
	s.Stop()
	if _, err := New(Config{N: 2, Object: "counter", Elector: "nerio", Omega: "abortable"}); err == nil {
		t.Fatal("conflicting elector/omega accepted")
	}
	if _, err := New(Config{N: 2, Object: "counter", Elector: "warp"}); err == nil {
		t.Fatal("unknown elector accepted")
	}
}

func TestInvokeValidation(t *testing.T) {
	_, ts := startServer(t, Config{N: 2, Object: "jobqueue"})

	// Unknown kind.
	code, _ := postJSON(t, ts.URL+"/v1/invoke", map[string]any{
		"op": map[string]any{"kind": "launch"},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown kind: %d", code)
	}
	// Replica out of range.
	code, _ = postJSON(t, ts.URL+"/v1/invoke", map[string]any{
		"replica": 7, "op": map[string]any{"kind": "enq", "value": 1},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("bad replica: %d", code)
	}
	// jobqueue has no read-only op.
	resp, err := http.Get(ts.URL + "/v1/read")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("jobqueue read: %d", resp.StatusCode)
	}
	// GET on invoke.
	resp, err = http.Get(ts.URL + "/v1/invoke")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET invoke: %d", resp.StatusCode)
	}
}

func TestJobQueueFIFO(t *testing.T) {
	_, ts := startServer(t, Config{N: 2, Object: "jobqueue"})
	for _, v := range []int{11, 22, 33} {
		code, out := postJSON(t, ts.URL+"/v1/invoke", map[string]any{
			"replica": 0, "op": map[string]any{"kind": "enq", "value": v},
		})
		if code != http.StatusOK {
			t.Fatalf("enq %d: %d %v", v, code, out)
		}
	}
	for _, want := range []float64{11, 22, 33} {
		code, out := postJSON(t, ts.URL+"/v1/invoke", map[string]any{
			"replica": 1, "op": map[string]any{"kind": "deq"},
		})
		if code != http.StatusOK {
			t.Fatalf("deq: %d %v", code, out)
		}
		resp := out["resp"].(map[string]any)
		if resp["ok"] != true || resp["value"] != want {
			t.Fatalf("deq got %v, want %v", resp, want)
		}
	}
}

func TestSnapshotUpdateScan(t *testing.T) {
	_, ts := startServer(t, Config{N: 2, Object: "snapshot", SnapshotComponents: 3})
	code, out := postJSON(t, ts.URL+"/v1/invoke", map[string]any{
		"replica": 0, "op": map[string]any{"kind": "update", "index": 2, "value": 42},
	})
	if code != http.StatusOK {
		t.Fatalf("update: %d %v", code, out)
	}
	code, out = postJSON(t, ts.URL+"/v1/invoke", map[string]any{
		"replica": 1, "op": map[string]any{"kind": "scan"},
	})
	if code != http.StatusOK {
		t.Fatalf("scan: %d %v", code, out)
	}
	view := out["resp"].(map[string]any)["view"].([]any)
	if len(view) != 3 || view[2] != float64(42) {
		t.Fatalf("scan view: %v", view)
	}
	// Out-of-range update rejected at the wire.
	code, _ = postJSON(t, ts.URL+"/v1/invoke", map[string]any{
		"op": map[string]any{"kind": "update", "index": 9, "value": 1},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("oob update: %d", code)
	}
}

func TestFaultEndpointRetunesProfile(t *testing.T) {
	s, ts := startServer(t, Config{N: 2, Object: "counter"})

	code, out := postJSON(t, ts.URL+"/v1/fault", map[string]any{
		"process": 1, "spec": "growing:100:5ms:1.2",
	})
	if code != http.StatusOK || out["ok"] != true {
		t.Fatalf("fault: %d %v", code, out)
	}
	// Bad spec and bad process rejected.
	if code, _ := postJSON(t, ts.URL+"/v1/fault", map[string]any{"process": 1, "spec": "warp:9"}); code != http.StatusBadRequest {
		t.Fatalf("bad spec: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/fault", map[string]any{"process": 5, "spec": "steady"}); code != http.StatusBadRequest {
		t.Fatalf("bad process: %d", code)
	}
	// The injection is in the metrics report.
	rep := fetchMetrics(t, ts.URL)
	if len(rep.Injections) != 1 || rep.Injections[0].Process != 1 || rep.Injections[0].Spec != "growing:100:5ms:1.2" {
		t.Fatalf("injections: %+v", rep.Injections)
	}
	_ = s
}

func fetchMetrics(t *testing.T, base string) MetricsReport {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep MetricsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestMetricsShape(t *testing.T) {
	_, ts := startServer(t, Config{N: 3, Object: "counter", SampleEvery: time.Millisecond, TrajectoryEvery: 5 * time.Millisecond})
	for i := 0; i < 6; i++ {
		code, out := postJSON(t, ts.URL+"/v1/invoke", map[string]any{
			"replica": i % 3, "op": map[string]any{"kind": "add", "delta": 2},
		})
		if code != http.StatusOK {
			t.Fatalf("invoke: %d %v", code, out)
		}
	}
	time.Sleep(20 * time.Millisecond) // let the sampler tick
	rep := fetchMetrics(t, ts.URL)
	if rep.Object != "counter" || rep.N != 3 || len(rep.Processes) != 3 {
		t.Fatalf("report head: %+v", rep)
	}
	var served, completed int64
	for _, p := range rep.Processes {
		served += p.Served
		completed += p.Client.Completed
		if p.Served > 0 && p.Latency.Count != p.Served {
			t.Errorf("process %d: latency count %d != served %d", p.P, p.Latency.Count, p.Served)
		}
		if p.Steps <= 0 {
			t.Errorf("process %d took no steps", p.P)
		}
		if _, ok := p.PerOp["add"]; !ok {
			t.Errorf("process %d missing per-op histogram", p.P)
		}
	}
	if served != 6 {
		t.Fatalf("served = %d", served)
	}
	if completed < 6 {
		t.Fatalf("completed = %d", completed)
	}
	if rep.QASlots < 6 {
		t.Fatalf("qa slots = %d", rep.QASlots)
	}
	if len(rep.Leader.PerProcess) != 3 {
		t.Fatalf("leader vector: %+v", rep.Leader)
	}
	if !rep.Faults.Supported || len(rep.Faults.Matrix) != 3 {
		t.Fatalf("fault matrix: %+v", rep.Faults)
	}
	if rep.Elector != "atomic" {
		t.Fatalf("metrics elector = %q, want atomic", rep.Elector)
	}
	if len(rep.Faults.Trajectory) == 0 || len(rep.Leader.History) == 0 {
		t.Fatalf("sampler produced no trajectories")
	}
}

// Filling a replica's queue beyond capacity must backpressure with 503,
// not block or buffer unboundedly.
func TestBackpressure(t *testing.T) {
	s, err := New(Config{N: 2, Object: "counter", QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	// Stall replica 0 so its queue cannot drain.
	s.Runtime().SetProfile(0, func(int64) time.Duration { return 50 * time.Millisecond })

	full := 0
	for i := 0; i < 30; i++ {
		pd := NewPending("add")
		if err := s.backend.Submit(0, WireOp{Kind: "add", Delta: 1}, pd); err == ErrQueueFull {
			full++
		}
	}
	if full == 0 {
		t.Fatal("no submission was backpressured")
	}
	rep := s.report()
	if rep.Processes[0].Rejected == 0 {
		t.Fatalf("rejected counter not bumped: %+v", rep.Processes[0])
	}
}

func TestStopIsIdempotentAndFast(t *testing.T) {
	s, err := New(Config{N: 2, Object: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	// Put one process into a long gap; Stop must still return promptly
	// because gap sleeps are interruptible.
	s.Runtime().SetProfile(1, func(int64) time.Duration { return 10 * time.Second })
	time.Sleep(5 * time.Millisecond)
	start := time.Now()
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("stop took %v", d)
	}
	if err := s.Stop(); err != nil {
		t.Fatal("second stop errored:", err)
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	s, ts := startServer(t, Config{N: 3, Object: "counter"})
	seen := map[int]bool{}
	for i := 0; i < 9; i++ {
		code, out := postJSON(t, ts.URL+"/v1/invoke", map[string]any{
			"op": map[string]any{"kind": "add", "delta": 1},
		})
		if code != http.StatusOK {
			t.Fatalf("invoke: %d %v", code, out)
		}
		seen[int(out["replica"].(float64))] = true
	}
	if len(seen) != s.N() {
		t.Fatalf("round-robin hit %v of %d replicas", seen, s.N())
	}
}

func ExampleParseProfile() {
	prof, _ := ParseProfile("growing:2:1ms:2")
	var gaps []time.Duration
	for i := int64(0); i < 6; i++ {
		if d := prof(i); d > 0 {
			gaps = append(gaps, d)
		}
	}
	fmt.Println(gaps)
	// Output: [1ms 2ms 4ms]
}
