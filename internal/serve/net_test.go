package serve

import (
	"encoding/json"
	stdnet "net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// The service runs unchanged on the net substrate: a loopback deploy
// hosts all replica nodes in-process, every register operation is an ABD
// quorum round over real TCP sockets, and the wire protocol, stats, and
// metrics documents all still work — now naming the substrate and
// carrying quorum/transport telemetry.
func TestNetSubstrateServes(t *testing.T) {
	if testing.Short() {
		t.Skip("quorum-register serve needs elector stabilization over TCP; skipped in -short mode")
	}
	_, ts := startServer(t, Config{N: 3, Object: "counter", Substrate: "net"})
	for i := 0; i < 3; i++ {
		code, out := postJSON(t, ts.URL+"/v1/invoke", map[string]any{
			"replica": -1, "op": map[string]any{"kind": "add", "delta": 1},
		})
		if code != http.StatusOK || out["ok"] != true {
			t.Fatalf("invoke %d: %d %v", i, code, out)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/read?replica=0")
	if err != nil {
		t.Fatal(err)
	}
	var read invokeResponse
	if err := json.NewDecoder(resp.Body).Decode(&read); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m, ok := read.Resp.(map[string]any); !ok || m["prev"] != float64(3) {
		t.Fatalf("read after 3 adds: %+v", read)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsReport
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Substrate != "net" {
		t.Fatalf("stats substrate = %q, want net", stats.Substrate)
	}

	rep := fetchMetrics(t, ts.URL)
	if rep.Substrate != "net" {
		t.Fatalf("metrics substrate = %q, want net", rep.Substrate)
	}
	if rep.Net == nil {
		t.Fatal("metrics carry no net block on the net substrate")
	}
	if rep.Net.ReadQuorum != 2 || rep.Net.WriteQuorum != 2 {
		t.Fatalf("quorums %d/%d, want majority 2/2", rep.Net.ReadQuorum, rep.Net.WriteQuorum)
	}
	if rep.Net.Sent == 0 {
		t.Fatal("transport sent no messages while serving quorum operations")
	}
}

// /v1/netfault blocks one replica link live: with a majority still
// reachable operations keep completing and the transport records drops;
// the injection lands in the metrics history; the rt substrate rejects
// the endpoint outright.
func TestNetFaultEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("quorum-register serve needs elector stabilization over TCP; skipped in -short mode")
	}
	_, ts := startServer(t, Config{N: 3, Object: "counter", Substrate: "net"})

	code, out := postJSON(t, ts.URL+"/v1/netfault", map[string]any{"node": 2, "blocked": true})
	if code != http.StatusOK || out["ok"] != true {
		t.Fatalf("netfault: %d %v", code, out)
	}
	// Majority (nodes 0, 1) still reachable: operations complete.
	code, out = postJSON(t, ts.URL+"/v1/invoke", map[string]any{
		"replica": 0, "op": map[string]any{"kind": "add", "delta": 1},
	})
	if code != http.StatusOK || out["ok"] != true {
		t.Fatalf("invoke with one node blocked: %d %v", code, out)
	}
	code, _ = postJSON(t, ts.URL+"/v1/netfault", map[string]any{"node": 2, "blocked": false})
	if code != http.StatusOK {
		t.Fatalf("unblock: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/netfault", map[string]any{"node": 9, "blocked": true}); code != http.StatusBadRequest {
		t.Fatalf("out-of-range node: %d", code)
	}

	rep := fetchMetrics(t, ts.URL)
	if rep.Net == nil || rep.Net.Dropped == 0 {
		t.Fatalf("blocked link recorded no drops: %+v", rep.Net)
	}
	var seen int
	for _, inj := range rep.Injections {
		if inj.Process == 2 && (inj.Spec == "net-block=true" || inj.Spec == "net-block=false") {
			seen++
		}
	}
	if seen != 2 {
		t.Fatalf("net injections not in history: %+v", rep.Injections)
	}

	// The rt substrate has no links to sever.
	_, rts := startServer(t, Config{N: 2, Object: "counter"})
	if code, _ := postJSON(t, rts.URL+"/v1/netfault", map[string]any{"node": 0, "blocked": true}); code != http.StatusBadRequest {
		t.Fatalf("rt netfault: %d", code)
	}
}

// Config validation for the substrate seam: unknown substrates and
// ill-formed net options are construction errors, not latent deploys.
func TestNetConfigValidation(t *testing.T) {
	if _, err := New(Config{N: 2, Object: "counter", Substrate: "sim"}); err == nil {
		t.Error("substrate sim accepted (the simulation kernel is not a live substrate)")
	}
	if _, err := New(Config{N: 3, Object: "counter", Substrate: "net",
		Net: NetOptions{Peers: []string{"127.0.0.1:1"}}}); err == nil {
		t.Error("peer list shorter than n accepted")
	}
	if _, err := New(Config{N: 3, Object: "counter", Substrate: "net",
		Net: NetOptions{Peers: []string{"a", "b", "c"}, Node: 5}}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

// freePorts reserves n distinct loopback ports by binding and closing
// listeners; the brief close-to-rebind window is the standard test
// compromise for coordinating peer addresses up front.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]stdnet.Listener, n)
	for i := range addrs {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// Three Servers, each hosting one replica node and animating only its own
// process — the in-binary version of the README's three-terminal TCP
// quickstart. Each process serves only its own replica, requests for
// other replicas are refused with a pointer to the owning process, and an
// operation issued on any of them settles through cross-process quorums.
func TestNetDistributedDeploy(t *testing.T) {
	if testing.Short() {
		t.Skip("three full stacks over TCP; skipped in -short mode")
	}
	peers := freePorts(t, 3)
	fronts := make([]*httptest.Server, 3)
	for i := range fronts {
		srv, err := New(Config{
			N: 3, Object: "counter", Substrate: "net",
			Net: NetOptions{Peers: peers, Node: i},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		fronts[i] = ts
		t.Cleanup(func() {
			ts.Close()
			srv.Stop()
		})
	}
	for i, ts := range fronts {
		code, out := postJSON(t, ts.URL+"/v1/invoke", map[string]any{
			"replica": -1, "op": map[string]any{"kind": "add", "delta": 1},
		})
		if code != http.StatusOK || out["ok"] != true {
			t.Fatalf("process %d invoke: %d %v", i, code, out)
		}
		if int(out["replica"].(float64)) != i {
			t.Fatalf("process %d served replica %v", i, out["replica"])
		}
	}
	// A replica owned by a peer is refused.
	code, _ := postJSON(t, fronts[0].URL+"/v1/invoke", map[string]any{
		"replica": 2, "op": map[string]any{"kind": "add", "delta": 1},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("foreign replica accepted: %d", code)
	}
	// The counter saw all three adds: a read on any process observes 3.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(fronts[1].URL + "/v1/read")
		if err != nil {
			t.Fatal(err)
		}
		var read invokeResponse
		err = json.NewDecoder(resp.Body).Decode(&read)
		resp.Body.Close()
		if err == nil {
			if m, ok := read.Resp.(map[string]any); ok && m["prev"] == float64(3) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("read never observed 3 adds: %+v", read)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
