package serve

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"tbwf/internal/rt"
)

// ParseProfile parses a pacing-profile spec into an rt.Profile:
//
//	steady            — full speed (cooperative yield per step)
//	steady:<dur>      — constant per-step delay, e.g. steady:100us
//	growing:<burst>:<first>:<factor>
//	                  — run <burst> steps, then pause; pauses start at
//	                    <first> and grow by <factor> each time, e.g.
//	                    growing:400:2ms:1.5 — the paper's untimely process
//
// Durations use Go syntax (ns, us, ms, s).
func ParseProfile(spec string) (rt.Profile, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	switch parts[0] {
	case "steady":
		switch len(parts) {
		case 1:
			return rt.Steady(0), nil
		case 2:
			d, err := time.ParseDuration(parts[1])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("serve: bad steady delay %q", parts[1])
			}
			return rt.Steady(d), nil
		}
		return nil, fmt.Errorf("serve: steady takes at most one argument, got %q", spec)
	case "growing":
		if len(parts) != 4 {
			return nil, fmt.Errorf("serve: growing needs burst:first:factor, got %q", spec)
		}
		burst, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || burst <= 0 {
			return nil, fmt.Errorf("serve: bad growing burst %q", parts[1])
		}
		first, err := time.ParseDuration(parts[2])
		if err != nil || first <= 0 {
			return nil, fmt.Errorf("serve: bad growing first gap %q", parts[2])
		}
		factor, err := strconv.ParseFloat(parts[3], 64)
		if err != nil || factor < 1 {
			return nil, fmt.Errorf("serve: bad growing factor %q (need ≥ 1)", parts[3])
		}
		return rt.GrowingGaps(burst, first, factor), nil
	}
	return nil, fmt.Errorf("serve: unknown profile %q (want steady[:dur] or growing:burst:first:factor)", parts[0])
}

// ParsePacing parses a per-process pacing assignment for n processes:
// semicolon-separated entries of the form <target>:<profile-spec>, where
// <target> is a process id or "*" (all processes). Later entries override
// earlier ones, so "*:steady:10us;2:growing:400:2ms:1.5" paces everyone at
// 10µs/step except process 2, which degrades. An empty string means all
// processes run at full speed. Entries for out-of-range processes are
// rejected.
func ParsePacing(s string, n int) ([]rt.Profile, error) {
	out := make([]rt.Profile, n)
	for i := range out {
		out[i] = rt.Steady(0)
	}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		target, rest, found := strings.Cut(entry, ":")
		if !found {
			return nil, fmt.Errorf("serve: pacing entry %q has no profile (want target:profile)", entry)
		}
		if target == "*" {
			// Each process needs its own profile instance: profiles keep
			// internal state.
			for p := range out {
				prof, err := ParseProfile(rest)
				if err != nil {
					return nil, err
				}
				out[p] = prof
			}
			continue
		}
		p, err := strconv.Atoi(target)
		if err != nil {
			return nil, fmt.Errorf("serve: pacing target %q is neither a process id nor *", target)
		}
		if p < 0 || p >= n {
			return nil, fmt.Errorf("serve: pacing target %d out of range [0,%d)", p, n)
		}
		prof, err := ParseProfile(rest)
		if err != nil {
			return nil, err
		}
		out[p] = prof
	}
	return out, nil
}
