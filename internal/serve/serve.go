// Package serve is the live TBWF service layer: it deploys a
// TBWF-replicated object (internal/core over internal/qa and internal/omega)
// on the real-time substrate (internal/rt) and exposes it over HTTP.
//
// Each of the n processes is one replica: it runs its share of the Ω∆ and
// monitor tasks plus a single worker task that drains a bounded request
// queue through the process's TBWF client — so a request's latency is
// exactly the time for that replica, at its current timeliness, to push
// the operation through the paper's Figure 7 protocol. A full queue
// produces immediate backpressure (ErrQueueFull → HTTP 503) instead of
// unbounded buffering.
//
// The JSON API:
//
//	POST /v1/invoke  {"replica":0,"op":{"kind":"add","delta":1}}
//	GET  /v1/read?replica=0        — the object's read-only op, if any
//	GET  /v1/stats                 — light liveness snapshot
//	GET  /v1/metrics               — full MetricsReport (latency histograms,
//	                                 leader churn, step gaps, fault counters)
//	POST /v1/fault   {"process":2,"spec":"growing:400:2ms:1.5"}
//
// The fault endpoint retunes a live process's pacing profile, so the
// paper's degradation story can be triggered and watched on a running
// service: the retuned replica's latency collapses, the timely replicas'
// p99 stays bounded.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tbwf/internal/deploy"
	"tbwf/internal/elector"
	"tbwf/internal/rt"
)


// Config sizes a server.
type Config struct {
	// N is the number of replicas (processes), at least 2.
	N int
	// Object names the deployed type: one of Objects().
	Object string
	// Elector selects the Ω∆ implementation by flag name: "atomic"
	// (default, Figure 3 from atomic registers), "abortable" (Figures 4–6,
	// Theorem 15's abortable-registers-only construction), "nerio"
	// (epoch/lease) or "reputation" (penalty scores) — any name
	// elector.Parse accepts.
	Elector string
	// Omega is the legacy alias for Elector (the old -omega flag
	// vocabulary). Setting both to different electors is an error.
	Omega string
	// QueueDepth bounds each replica's request queue (default 64).
	QueueDepth int
	// SnapshotComponents sizes the snapshot object (default N).
	SnapshotComponents int
	// Pacing assigns each process's initial profile (nil: all full speed).
	Pacing []rt.Profile
	// SampleEvery is the leader-churn sampling period (default 2ms);
	// TrajectoryEvery the fault/leader trajectory period (default 100ms).
	SampleEvery, TrajectoryEvery time.Duration
}

// Server is a deployed TBWF object behind an HTTP handler. Create with
// New, serve via any http.Server (it implements http.Handler), stop with
// Stop.
type Server struct {
	cfg Config
	// electorFlag is the resolved elector's canonical flag name, surfaced
	// in /v1/stats and /v1/metrics next to the implementation name.
	electorFlag string
	rt          *rt.Runtime
	backend     Backend
	metrics     *metrics
	mux         *http.ServeMux

	rr          atomic.Int64 // round-robin replica cursor
	stopping    chan struct{}
	stopOnce    sync.Once
	samplerDone chan struct{}
}

// New builds the runtime, deploys the object, starts the replica workers
// and the telemetry sampler.
func New(cfg Config) (*Server, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("serve: n = %d, need at least 2 replicas", cfg.N)
	}
	builder, err := elector.Resolve(cfg.Elector, cfg.Omega)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 2 * time.Millisecond
	}
	if cfg.TrajectoryEvery <= 0 {
		cfg.TrajectoryEvery = 100 * time.Millisecond
	}
	if cfg.Pacing != nil && len(cfg.Pacing) != cfg.N {
		return nil, fmt.Errorf("serve: %d pacing profiles for %d processes", len(cfg.Pacing), cfg.N)
	}
	s := &Server{
		cfg:         cfg,
		electorFlag: builder.FlagName(),
		rt:          rt.New(cfg.N, nil),
		stopping:    make(chan struct{}),
		samplerDone: make(chan struct{}),
	}
	for p, prof := range cfg.Pacing {
		s.rt.SetProfile(p, prof)
	}
	// The hooks close over s; s.metrics is installed before Start spawns
	// the workers, so no event can fire while it is still nil.
	b, err := NewBackend(s.rt, BackendConfig{
		Object:             cfg.Object,
		QueueDepth:         cfg.QueueDepth,
		SnapshotComponents: cfg.SnapshotComponents,
		Build:              deploy.BuildConfig{Elector: builder},
	}, Hooks{
		Served:   func(p int, pd *Pending, lat time.Duration) { s.metrics.recordServed(p, pd.Kind, lat) },
		Rejected: func(p int) { s.metrics.recordRejected(p) },
	})
	if err != nil {
		return nil, err
	}
	s.backend = b
	s.metrics = newMetrics(cfg.N, b.Kinds())
	b.Start()
	go s.sample()

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/invoke", s.handleInvoke)
	s.mux.HandleFunc("/v1/read", s.handleRead)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/fault", s.handleFault)
	return s, nil
}

// N returns the replica count.
func (s *Server) N() int { return s.cfg.N }

// Runtime exposes the underlying substrate (tests retune profiles through
// it directly; external callers use the fault endpoint).
func (s *Server) Runtime() *rt.Runtime { return s.rt }

// Stop shuts the service down: pending handlers return 503, workers and
// the sampler exit, and the runtime's tasks unwind. Idempotent.
func (s *Server) Stop() error {
	s.stopOnce.Do(func() { close(s.stopping) })
	err := s.rt.Stop()
	<-s.samplerDone
	return err
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"ok": false, "error": fmt.Sprintf(format, args...)})
}

type invokeRequest struct {
	// Replica routes the operation; nil or -1 round-robins.
	Replica *int   `json:"replica"`
	Op      WireOp `json:"op"`
}

type invokeResponse struct {
	OK        bool    `json:"ok"`
	Replica   int     `json:"replica"`
	Resp      any     `json:"resp"`
	LatencyUS float64 `json:"latency_us"`
}

func (s *Server) pickReplica(req *int) (int, error) {
	if req == nil || *req < 0 {
		return int(s.rr.Add(1)-1) % s.cfg.N, nil
	}
	if *req >= s.cfg.N {
		return 0, fmt.Errorf("replica %d out of range [0,%d)", *req, s.cfg.N)
	}
	return *req, nil
}

// dispatch enqueues op on replica p and waits for its completion, the
// client's disconnect, or shutdown.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, p int, op WireOp) {
	pd := NewPending(op.Kind)
	if err := s.backend.Submit(p, op, pd); err != nil {
		if err == ErrQueueFull {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "replica %d backpressured: %v", p, err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	select {
	case res := <-pd.Done():
		writeJSON(w, http.StatusOK, invokeResponse{
			OK:        true,
			Replica:   p,
			Resp:      res.Resp,
			LatencyUS: float64(res.Latency) / 1e3,
		})
	case <-r.Context().Done():
		// Client gone; the worker will still complete the operation (it is
		// already queued) and the buffered done channel absorbs the result.
	case <-s.stopping:
		writeError(w, http.StatusServiceUnavailable, "server stopping")
	}
}

func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req invokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	p, err := s.pickReplica(req.Replica)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.dispatch(w, r, p, req.Op)
}

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	op, err := s.backend.ReadOp()
	if err != nil {
		writeError(w, http.StatusBadRequest, "object %s: %v", s.cfg.Object, err)
		return
	}
	replica := (*int)(nil)
	if q := r.URL.Query().Get("replica"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad replica %q", q)
			return
		}
		replica = &v
	}
	p, err := s.pickReplica(replica)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.dispatch(w, r, p, op)
}

// statsReport is the light /v1/stats document. Omega carries the
// elector's implementation name (kept under the historical key for
// consumers of the old document); Elector its canonical flag name.
type statsReport struct {
	Object    string   `json:"object"`
	N         int      `json:"n"`
	Omega     string   `json:"omega"`
	Elector   string   `json:"elector"`
	UptimeMS  int64    `json:"uptime_ms"`
	Kinds     []string `json:"kinds"`
	Served    []int64  `json:"served"`
	Rejected  []int64  `json:"rejected"`
	Queued    []int    `json:"queued"`
	Completed []int64  `json:"completed"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	rep := statsReport{
		Object:   s.cfg.Object,
		N:        s.cfg.N,
		Omega:    s.backend.ElectorName(),
		Elector:  s.electorFlag,
		UptimeMS: time.Since(s.metrics.start).Milliseconds(),
		Kinds:    s.backend.Kinds(),
	}
	for p := 0; p < s.cfg.N; p++ {
		rep.Served = append(rep.Served, s.metrics.served[p].Load())
		rep.Rejected = append(rep.Rejected, s.metrics.rejected[p].Load())
		rep.Queued = append(rep.Queued, s.backend.QueueDepth(p))
		rep.Completed = append(rep.Completed, s.backend.ClientStats(p).Completed)
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.report())
}

type faultRequest struct {
	Process int    `json:"process"`
	Spec    string `json:"spec"`
}

func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req faultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Process < 0 || req.Process >= s.cfg.N {
		writeError(w, http.StatusBadRequest, "process %d out of range [0,%d)", req.Process, s.cfg.N)
		return
	}
	prof, err := ParseProfile(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.rt.SetProfile(req.Process, prof)
	inj := Injection{
		AtMS:    time.Since(s.metrics.start).Milliseconds(),
		Process: req.Process,
		Spec:    req.Spec,
	}
	s.metrics.recordInjection(inj)
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "injection": inj})
}
