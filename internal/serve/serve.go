// Package serve is the live TBWF service layer: it deploys a
// TBWF-replicated object (internal/core over internal/qa and internal/omega)
// on the real-time substrate (internal/rt) and exposes it over HTTP.
//
// Each of the n processes is one replica: it runs its share of the Ω∆ and
// monitor tasks plus a single worker task that drains a bounded request
// queue through the process's TBWF client — so a request's latency is
// exactly the time for that replica, at its current timeliness, to push
// the operation through the paper's Figure 7 protocol. A full queue
// produces immediate backpressure (ErrQueueFull → HTTP 503) instead of
// unbounded buffering.
//
// The JSON API:
//
//	POST /v1/invoke  {"replica":0,"op":{"kind":"add","delta":1}}
//	GET  /v1/read?replica=0        — the object's read-only op, if any
//	GET  /v1/stats                 — light liveness snapshot
//	GET  /v1/metrics               — full MetricsReport (latency histograms,
//	                                 leader churn, step gaps, fault counters)
//	POST /v1/fault   {"process":2,"spec":"growing:400:2ms:1.5"}
//
// The fault endpoint retunes a live process's pacing profile, so the
// paper's degradation story can be triggered and watched on a running
// service: the retuned replica's latency collapses, the timely replicas'
// p99 stays bounded.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tbwf/internal/deploy"
	"tbwf/internal/elector"
	"tbwf/internal/net"
	"tbwf/internal/prim"
	"tbwf/internal/rt"
	"tbwf/internal/shard"
)

// Config sizes a server.
type Config struct {
	// N is the number of replicas (processes), at least 2.
	N int
	// Object names the deployed type: one of Objects().
	Object string
	// Elector selects the Ω∆ implementation by flag name: "atomic"
	// (default, Figure 3 from atomic registers), "abortable" (Figures 4–6,
	// Theorem 15's abortable-registers-only construction), "nerio"
	// (epoch/lease) or "reputation" (penalty scores) — any name
	// elector.Parse accepts.
	Elector string
	// Omega is the legacy alias for Elector (the old -omega flag
	// vocabulary). Setting both to different electors is an error.
	Omega string
	// QueueDepth bounds each replica's request queue (default 64).
	QueueDepth int
	// SnapshotComponents sizes the snapshot object (default N).
	SnapshotComponents int
	// Pacing assigns each process's initial profile (nil: all full speed).
	Pacing []rt.Profile
	// SampleEvery is the leader-churn sampling period (default 2ms);
	// TrajectoryEvery the fault/leader trajectory period (default 100ms).
	SampleEvery, TrajectoryEvery time.Duration
	// Substrate selects the execution substrate: "rt" (default; the
	// in-process shared-memory runtime) or "net" (ABD quorum registers
	// over TCP, one replica node per process — see internal/net).
	Substrate string
	// Net configures the net substrate; ignored unless Substrate is "net".
	Net NetOptions

	// Shards > 0 additionally deploys a sharded keyspace (internal/shard)
	// next to the unsharded object: Shards independent TBWF stacks over
	// the same N replicas, served on /v1/kv/*. Only on the rt substrate.
	Shards int
	// ShardElector is a comma-separated elector list cycled across shards
	// (shard s gets entry s mod len); empty inherits Elector/Omega for
	// every shard. Requires Shards > 0.
	ShardElector string
	// MaxBatch bounds how many queued keyed ops one worker turn folds into
	// a single QA round (default 16; 1 disables batching). Requires
	// Shards > 0.
	MaxBatch int
	// Admission is the keyed API's overload policy, in ParseAdmission's
	// "rate=R,burst=B,inflight=M" vocabulary; empty admits everything.
	// Requires Shards > 0.
	Admission string
}

// NetOptions shapes a net-substrate deploy.
type NetOptions struct {
	// Peers lists the N replica node addresses of a distributed deploy.
	// Empty means loopback mode: the server hosts all N replica nodes
	// in-process on ephemeral loopback ports.
	Peers []string
	// Node is this OS process's replica index in a distributed deploy
	// (Peers set): the server hosts that one node, animates only that
	// process's tasks, and serves only that replica.
	Node int
	// Listen is the node's listen address in a distributed deploy
	// (default: the Node entry of Peers).
	Listen string
	// RetransmitEvery overrides the quorum retransmit interval (default
	// 5ms in loopback mode, the transport's 50ms distributed).
	RetransmitEvery time.Duration
}

// Server is a deployed TBWF object behind an HTTP handler. Create with
// New, serve via any http.Server (it implements http.Handler), stop with
// Stop.
type Server struct {
	cfg Config
	// electorFlag is the resolved elector's canonical flag name, surfaced
	// in /v1/stats and /v1/metrics next to the implementation name.
	electorFlag string
	rt          *rt.Runtime
	backend     Backend
	metrics     *metrics
	// kv is the sharded keyspace behind /v1/kv/*; nil when Shards is 0.
	kv  *shard.Map
	mux *http.ServeMux

	// netSub/tcp/nodes are set when the stack runs on the net substrate:
	// the quorum substrate, its transport (the /v1/netfault hook), and the
	// replica node servers this OS process hosts. only is the single
	// locally-served replica of a distributed deploy, -1 otherwise.
	netSub *net.Substrate
	tcp    *net.TCP
	nodes  []*net.NodeServer
	only   int

	rr          atomic.Int64 // round-robin replica cursor
	stopping    chan struct{}
	stopOnce    sync.Once
	samplerDone chan struct{}
}

// New builds the runtime, deploys the object, starts the replica workers
// and the telemetry sampler.
func New(cfg Config) (*Server, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("serve: n = %d, need at least 2 replicas", cfg.N)
	}
	builder, err := elector.Resolve(cfg.Elector, cfg.Omega)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 2 * time.Millisecond
	}
	if cfg.TrajectoryEvery <= 0 {
		cfg.TrajectoryEvery = 100 * time.Millisecond
	}
	if cfg.Pacing != nil && len(cfg.Pacing) != cfg.N {
		return nil, fmt.Errorf("serve: %d pacing profiles for %d processes", len(cfg.Pacing), cfg.N)
	}
	switch cfg.Substrate {
	case "", "rt":
		cfg.Substrate = "rt"
	case "net":
	default:
		return nil, fmt.Errorf("serve: unknown substrate %q (want rt or net)", cfg.Substrate)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("serve: shards = %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		if cfg.ShardElector != "" || cfg.MaxBatch != 0 || cfg.Admission != "" {
			return nil, fmt.Errorf("serve: shard-elector/batch/admission need shards > 0")
		}
	} else if cfg.Substrate != "rt" {
		return nil, fmt.Errorf("serve: sharded keyspace needs the rt substrate, not %q", cfg.Substrate)
	}
	shardElectors := []elector.Builder{builder}
	if cfg.ShardElector != "" {
		shardElectors = shardElectors[:0]
		for _, name := range strings.Split(cfg.ShardElector, ",") {
			eb, err := elector.Parse(strings.TrimSpace(name))
			if err != nil {
				return nil, fmt.Errorf("serve: shard elector: %w", err)
			}
			shardElectors = append(shardElectors, eb)
		}
	}
	admission, err := ParseAdmission(cfg.Admission)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		electorFlag: builder.FlagName(),
		rt:          rt.New(cfg.N, nil),
		only:        -1,
		stopping:    make(chan struct{}),
		samplerDone: make(chan struct{}),
	}
	// fail unwinds a partially-built server: the sampler is not running
	// yet, so Stop's samplerDone wait would hang — tear down by hand.
	fail := func(err error) (*Server, error) {
		s.rt.Stop()
		for _, nd := range s.nodes {
			nd.Close()
		}
		return nil, err
	}
	for p, prof := range cfg.Pacing {
		s.rt.SetProfile(p, prof)
	}
	var sub prim.Substrate = s.rt
	if cfg.Substrate == "net" {
		var err error
		if sub, err = s.buildNet(); err != nil {
			return fail(err)
		}
	}
	// The hooks close over s; s.metrics is installed before Start spawns
	// the workers, so no event can fire while it is still nil.
	b, err := NewBackend(sub, BackendConfig{
		Object:             cfg.Object,
		QueueDepth:         cfg.QueueDepth,
		SnapshotComponents: cfg.SnapshotComponents,
		// Only the fuzzer's linearizability oracle consumes Result.Raw;
		// the HTTP path drops it to keep the live path boxing-free.
		DropRaw: true,
		Build:   deploy.BuildConfig{Elector: builder},
	}, Hooks{
		Served:   func(p int, pd *Pending, lat time.Duration) { s.metrics.recordServed(p, pd.Kind, lat) },
		Rejected: func(p int) { s.metrics.recordRejected(p) },
	})
	if err != nil {
		return fail(err)
	}
	s.backend = b
	if cfg.Shards > 0 {
		kv, err := shard.New(sub, shard.Config{
			Shards:     cfg.Shards,
			QueueDepth: cfg.QueueDepth,
			MaxBatch:   cfg.MaxBatch,
			Electors:   shardElectors,
			Admission:  admission,
			Hooks: shard.Hooks{
				Served: func(sh, p int, pd *shard.Pending, batch int, lat time.Duration) {
					s.metrics.recordShardServed(sh, lat)
				},
			},
		})
		if err != nil {
			return fail(err)
		}
		s.kv = kv
	}
	s.metrics = newMetrics(cfg.N, b.Kinds(), cfg.Shards)
	b.Start()
	if s.kv != nil {
		s.kv.Start()
	}
	go s.sample()

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/invoke", s.handleInvoke)
	s.mux.HandleFunc("/v1/read", s.handleRead)
	s.mux.HandleFunc("/v1/kv/invoke", s.handleKVInvoke)
	s.mux.HandleFunc("/v1/kv/read", s.handleKVRead)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/fault", s.handleFault)
	s.mux.HandleFunc("/v1/netfault", s.handleNetFault)
	return s, nil
}

// buildNet assembles the net substrate: ABD quorum registers over TCP,
// hosted on the server's runtime. With no peer list the server hosts all
// N replica nodes in-process on loopback ports (a one-binary deploy whose
// registers still go through real sockets); with one, this OS process
// hosts node cfg.Net.Node, animates only that process's tasks, and serves
// only that replica.
func (s *Server) buildNet() (prim.Substrate, error) {
	opts := s.cfg.Net
	peers := opts.Peers
	ncfg := net.Config{}
	retransmit := opts.RetransmitEvery
	if len(peers) == 0 {
		for i := 0; i < s.cfg.N; i++ {
			srv, err := net.ListenNode("127.0.0.1:0", net.NewNode(i))
			if err != nil {
				return nil, fmt.Errorf("serve: node %d: %w", i, err)
			}
			s.nodes = append(s.nodes, srv)
			peers = append(peers, srv.Addr())
		}
		if retransmit <= 0 {
			retransmit = 5 * time.Millisecond // loopback RTTs are microseconds
		}
	} else {
		if len(peers) != s.cfg.N {
			return nil, fmt.Errorf("serve: %d net peers for %d replicas", len(peers), s.cfg.N)
		}
		if opts.Node < 0 || opts.Node >= s.cfg.N {
			return nil, fmt.Errorf("serve: net node %d out of range [0,%d)", opts.Node, s.cfg.N)
		}
		listen := opts.Listen
		if listen == "" {
			listen = peers[opts.Node]
		}
		srv, err := net.ListenNode(listen, net.NewNode(opts.Node))
		if err != nil {
			return nil, fmt.Errorf("serve: node %d: %w", opts.Node, err)
		}
		s.nodes = append(s.nodes, srv)
		ncfg = net.Config{Restrict: true, Only: opts.Node}
		s.only = opts.Node
	}
	sub, tcp, err := net.NewTCP(s.rt, s.rt.Stopping(), net.TCPConfig{
		Peers:           peers,
		RetransmitEvery: retransmit,
	}, ncfg)
	if err != nil {
		return nil, err
	}
	s.netSub, s.tcp = sub, tcp
	return sub, nil
}

// N returns the replica count.
func (s *Server) N() int { return s.cfg.N }

// Runtime exposes the underlying substrate (tests retune profiles through
// it directly; external callers use the fault endpoint).
func (s *Server) Runtime() *rt.Runtime { return s.rt }

// Stop shuts the service down: pending handlers return 503, workers and
// the sampler exit, and the runtime's tasks unwind. Idempotent.
func (s *Server) Stop() error {
	s.stopOnce.Do(func() { close(s.stopping) })
	err := s.rt.Stop()
	for _, nd := range s.nodes {
		nd.Close()
	}
	<-s.samplerDone
	return err
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"ok": false, "error": fmt.Sprintf(format, args...)})
}

type invokeRequest struct {
	// Replica routes the operation; nil or -1 round-robins.
	Replica *int   `json:"replica"`
	Op      WireOp `json:"op"`
}

type invokeResponse struct {
	OK        bool    `json:"ok"`
	Replica   int     `json:"replica"`
	Resp      any     `json:"resp"`
	LatencyUS float64 `json:"latency_us"`
}

func (s *Server) pickReplica(req *int) (int, error) {
	if s.only >= 0 {
		// Distributed net deploy: this process animates exactly one
		// replica; its peers serve the others.
		if req != nil && *req >= 0 && *req != s.only {
			return 0, fmt.Errorf("replica %d is served by its own process (this process serves %d)", *req, s.only)
		}
		return s.only, nil
	}
	if req == nil || *req < 0 {
		return int(s.rr.Add(1)-1) % s.cfg.N, nil
	}
	if *req >= s.cfg.N {
		return 0, fmt.Errorf("replica %d out of range [0,%d)", *req, s.cfg.N)
	}
	return *req, nil
}

// dispatch enqueues op on replica p and waits for its completion, the
// client's disconnect, or shutdown.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, p int, op WireOp) {
	pd := NewPending(op.Kind)
	if err := s.backend.Submit(p, op, pd); err != nil {
		if err == ErrQueueFull {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "replica %d backpressured: %v", p, err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	select {
	case res := <-pd.Done():
		writeJSON(w, http.StatusOK, invokeResponse{
			OK:        true,
			Replica:   p,
			Resp:      res.Resp,
			LatencyUS: float64(res.Latency) / 1e3,
		})
		// This handler consumed the Result, so it owns the pooled parts.
		ReleaseResult(res)
		pd.Release()
	case <-r.Context().Done():
		// Client gone; the worker will still complete the operation (it is
		// already queued) and the buffered done channel absorbs the result.
		// The abandoned Pending must NOT be released — the worker still
		// holds it; it is garbage-collected instead.
	case <-s.stopping:
		writeError(w, http.StatusServiceUnavailable, "server stopping")
	}
}

func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req invokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	p, err := s.pickReplica(req.Replica)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.dispatch(w, r, p, req.Op)
}

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	op, err := s.backend.ReadOp()
	if err != nil {
		writeError(w, http.StatusBadRequest, "object %s: %v", s.cfg.Object, err)
		return
	}
	replica := (*int)(nil)
	if q := r.URL.Query().Get("replica"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad replica %q", q)
			return
		}
		replica = &v
	}
	p, err := s.pickReplica(replica)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.dispatch(w, r, p, op)
}

// statsReport is the light /v1/stats document. Omega carries the
// elector's implementation name (kept under the historical key for
// consumers of the old document); Elector its canonical flag name.
type statsReport struct {
	Object    string   `json:"object"`
	N         int      `json:"n"`
	Substrate string   `json:"substrate"`
	Omega     string   `json:"omega"`
	Elector   string   `json:"elector"`
	UptimeMS  int64    `json:"uptime_ms"`
	Kinds     []string `json:"kinds"`
	Served    []int64  `json:"served"`
	Rejected  []int64  `json:"rejected"`
	Queued    []int    `json:"queued"`
	Completed []int64  `json:"completed"`
	// Shards is the sharded keyspace's stack count (0: not sharded);
	// KVKinds its op vocabulary, KVServed/KVShed its aggregate counters.
	Shards   int      `json:"shards"`
	KVKinds  []string `json:"kv_kinds,omitempty"`
	KVServed int64    `json:"kv_served,omitempty"`
	KVShed   int64    `json:"kv_shed,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	rep := statsReport{
		Object:    s.cfg.Object,
		N:         s.cfg.N,
		Substrate: s.cfg.Substrate,
		Omega:     s.backend.ElectorName(),
		Elector:   s.electorFlag,
		UptimeMS:  time.Since(s.metrics.start).Milliseconds(),
		Kinds:     s.backend.Kinds(),
	}
	for p := 0; p < s.cfg.N; p++ {
		rep.Served = append(rep.Served, s.metrics.served[p].Load())
		rep.Rejected = append(rep.Rejected, s.metrics.rejected[p].Load())
		rep.Queued = append(rep.Queued, s.backend.QueueDepth(p))
		rep.Completed = append(rep.Completed, s.backend.ClientStats(p).Completed)
	}
	if s.kv != nil {
		rep.Shards = s.kv.Shards()
		rep.KVKinds = KVKinds()
		for sh := 0; sh < s.kv.Shards(); sh++ {
			st := s.kv.Stats(sh)
			rep.KVServed += st.Served
			rep.KVShed += st.ShedRateLimit + st.ShedQueueFull + st.ShedInFlight
		}
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.report())
}

type faultRequest struct {
	Process int    `json:"process"`
	Spec    string `json:"spec"`
}

func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req faultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Process < 0 || req.Process >= s.cfg.N {
		writeError(w, http.StatusBadRequest, "process %d out of range [0,%d)", req.Process, s.cfg.N)
		return
	}
	prof, err := ParseProfile(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.rt.SetProfile(req.Process, prof)
	inj := Injection{
		AtMS:    time.Since(s.metrics.start).Milliseconds(),
		Process: req.Process,
		Spec:    req.Spec,
	}
	s.metrics.recordInjection(inj)
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "injection": inj})
}

type netFaultRequest struct {
	Node    int  `json:"node"`
	Blocked bool `json:"blocked"`
}

// handleNetFault severs or restores this process's transport link to one
// replica node — the network-fault analogue of /v1/fault's pacing retune.
// Blocking a minority leaves the quorum registers (and so the service)
// live; blocking a majority stalls operations until a heal. Only
// meaningful on the net substrate.
func (s *Server) handleNetFault(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.tcp == nil {
		writeError(w, http.StatusBadRequest, "substrate %s has no network links (start with substrate net)", s.cfg.Substrate)
		return
	}
	var req netFaultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Node < 0 || req.Node >= s.cfg.N {
		writeError(w, http.StatusBadRequest, "node %d out of range [0,%d)", req.Node, s.cfg.N)
		return
	}
	s.tcp.Block(req.Node, req.Blocked)
	inj := Injection{
		AtMS:    time.Since(s.metrics.start).Milliseconds(),
		Process: req.Node,
		Spec:    fmt.Sprintf("net-block=%v", req.Blocked),
	}
	s.metrics.recordInjection(inj)
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "node": req.Node, "blocked": req.Blocked})
}
