package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tbwf/internal/lincheck"
	"tbwf/internal/objtype"
)

// TestLiveDegradationIntegration is the PR's end-to-end check: an
// in-process service is driven by three concurrent HTTP clients while one
// replica's pacing profile degrades mid-run to growing gaps. It asserts
// the paper's service-level claims:
//
//   - safety survives the degradation: the complete history of every
//     operation that returned, timestamped client-side, linearizes
//     against the sequential counter spec (Wing–Gong check);
//   - timeliness-based wait-freedom: the clients pinned to the timely
//     replicas complete their full workload while the slow replica is
//     degraded;
//   - telemetry tells the story: the served counts, latency histograms,
//     step-gap estimates, injection log and monitor/leader trajectories
//     on /v1/metrics are consistent with what the clients did.
func TestLiveDegradationIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	_, ts := startServer(t, Config{
		N:               3,
		Object:          "counter",
		QueueDepth:      32,
		SampleEvery:     time.Millisecond,
		TrajectoryEvery: 10 * time.Millisecond,
	})

	const (
		timelyOpsPhaseA = 6  // per timely client, before the injection
		timelyOpsPhaseB = 12 // per timely client, while degraded
		slowOpsPhaseA   = 6
		slowOpsPhaseB   = 2
	)

	var mu sync.Mutex
	var history []lincheck.Op[objtype.CounterOp, int64]

	// invoke posts one op pinned to replica == client and appends the
	// completed operation to the shared history. It runs on client
	// goroutines, so it reports errors instead of failing the test itself.
	invoke := func(client int, op WireOp) error {
		arg := objtype.CounterOp{Delta: op.Delta}
		reqBody, err := json.Marshal(map[string]any{"replica": client, "op": op})
		if err != nil {
			return err
		}
		t0 := time.Now().UnixNano()
		resp, err := http.Post(ts.URL+"/v1/invoke", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			return fmt.Errorf("client %d: %w", client, err)
		}
		t1 := time.Now().UnixNano()
		defer resp.Body.Close()
		var body struct {
			OK   bool `json:"ok"`
			Resp struct {
				Prev *int64 `json:"prev"`
			} `json:"resp"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return fmt.Errorf("client %d: bad response: %w", client, err)
		}
		if resp.StatusCode != http.StatusOK || !body.OK || body.Resp.Prev == nil {
			return fmt.Errorf("client %d: HTTP %d ok=%v err=%q", client, resp.StatusCode, body.OK, body.Error)
		}
		mu.Lock()
		history = append(history, lincheck.Op[objtype.CounterOp, int64]{
			Proc:     client,
			Invoke:   t0,
			Response: t1,
			Arg:      arg,
			Resp:     *body.Resp.Prev,
		})
		mu.Unlock()
		return nil
	}

	runClient := func(client, ops int, errs chan<- error) {
		for i := 0; i < ops; i++ {
			// Distinct deltas make responses tell the linearization apart.
			delta := int64(client*1000 + i + 1)
			if err := invoke(client, WireOp{Kind: "add", Delta: delta}); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}

	phase := func(opsPerTimely, opsPerSlow int) {
		t.Helper()
		errs := make(chan error, 3)
		for c := 0; c < 2; c++ {
			go runClient(c, opsPerTimely, errs)
		}
		go runClient(2, opsPerSlow, errs)
		for i := 0; i < 3; i++ {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase A: everyone timely.
	phase(timelyOpsPhaseA, slowOpsPhaseA)

	// Inject growing gaps into replica 2 through the public fault endpoint.
	status, body := postJSON(t, ts.URL+"/v1/fault",
		map[string]any{"process": 2, "spec": "growing:500:2ms:1.3"})
	if status != http.StatusOK {
		t.Fatalf("fault injection failed: HTTP %d: %v", status, body)
	}

	// Phase B: replica 2 is degrading. The timely clients must still
	// complete their full workload (the t.Fatal path inside phase enforces
	// completion; the test deadline bounds the wall-clock).
	phaseBStart := time.Now()
	phase(timelyOpsPhaseB, slowOpsPhaseB)
	phaseBElapsed := time.Since(phaseBStart)

	// Restore replica 2 so shutdown is prompt, then read the final value.
	status, body = postJSON(t, ts.URL+"/v1/fault",
		map[string]any{"process": 2, "spec": "steady"})
	if status != http.StatusOK {
		t.Fatalf("fault restore failed: HTTP %d: %v", status, body)
	}
	if err := invoke(0, WireOp{Kind: "read"}); err != nil {
		t.Fatal(err)
	}

	// The read went last and alone, so its response must be the sum of
	// every delta — a direct check before the full linearizability search.
	var want int64
	for _, op := range history[:len(history)-1] {
		want += op.Arg.Delta
	}
	if got := history[len(history)-1].Resp; got != want {
		t.Fatalf("final read = %d, want %d", got, want)
	}

	totalOps := 2*(timelyOpsPhaseA+timelyOpsPhaseB) + slowOpsPhaseA + slowOpsPhaseB + 1
	if len(history) != totalOps {
		t.Fatalf("history has %d ops, want %d", len(history), totalOps)
	}
	if _, ok, err := lincheck.Check[int64](objtype.Counter{}, history, lincheck.Options[int64, int64]{}); err != nil {
		t.Fatalf("lincheck: %v", err)
	} else if !ok {
		t.Fatalf("history of %d ops does not linearize", len(history))
	}

	// Telemetry consistency.
	rep := fetchMetrics(t, ts.URL)
	if rep.Object != "counter" || rep.N != 3 || len(rep.Processes) != 3 {
		t.Fatalf("report header: %+v", rep)
	}
	var served int64
	for _, pm := range rep.Processes {
		served += pm.Served
		if pm.Latency.Count != pm.Served {
			t.Errorf("process %d: histogram count %d != served %d", pm.P, pm.Latency.Count, pm.Served)
		}
		var perOp int64
		for _, s := range pm.PerOp {
			perOp += s.Count
		}
		if perOp != pm.Served {
			t.Errorf("process %d: per-op sum %d != served %d", pm.P, perOp, pm.Served)
		}
		if pm.Client.Completed < pm.Served {
			t.Errorf("process %d: client completed %d < served %d", pm.P, pm.Client.Completed, pm.Served)
		}
		if pm.Client.Aborts < 0 || pm.QA.Proposals < 0 {
			t.Errorf("process %d: negative counters: %+v", pm.P, pm)
		}
	}
	if served != int64(totalOps) {
		t.Errorf("served %d != completed ops %d", served, totalOps)
	}
	if rep.QASlots < int64(totalOps) {
		t.Errorf("qa slots %d < ops %d", rep.QASlots, totalOps)
	}
	// The injected replica observed its growing gaps: its max step gap must
	// be at least the first injected pause.
	if rep.Processes[2].MaxGapUS < 2000 {
		t.Errorf("process 2 max gap %.0fµs, want ≥ 2000µs (injected 2ms pauses)", rep.Processes[2].MaxGapUS)
	}
	if len(rep.Injections) != 2 {
		t.Fatalf("injections = %+v, want the degrade and the restore", rep.Injections)
	}
	if rep.Injections[0].Process != 2 || !strings.HasPrefix(rep.Injections[0].Spec, "growing:") {
		t.Errorf("first injection = %+v", rep.Injections[0])
	}
	if len(rep.Leader.PerProcess) != 3 {
		t.Errorf("leader vector = %v", rep.Leader.PerProcess)
	}
	if len(rep.Leader.History) == 0 || len(rep.Faults.Trajectory) == 0 {
		t.Errorf("empty trajectories: leader=%d fault=%d",
			len(rep.Leader.History), len(rep.Faults.Trajectory))
	}
	if len(rep.Faults.Matrix) != 3 || len(rep.Faults.Matrix[0]) != 3 {
		t.Errorf("fault matrix shape: %v", rep.Faults.Matrix)
	}

	// The degraded phase must not have stalled the timely clients: sanity
	// log for the record (the hard bound is the test deadline).
	t.Logf("phase B: %d timely ops in %v with replica 2 degraded", 2*timelyOpsPhaseB, phaseBElapsed)
	if doc, err := json.Marshal(rep); err != nil || len(doc) == 0 {
		t.Fatalf("metrics report does not marshal: %v", err)
	}
}
