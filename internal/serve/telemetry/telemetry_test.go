package telemetry

import (
	"sync"
	"testing"
	"time"
)

// Every value must land in a bucket whose range contains it, and bucket
// indices must be monotone in the value.
func TestBucketMapping(t *testing.T) {
	vals := []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 100, 1_000, 65_535, 1 << 20, 1 << 40, 1<<62 + 12345}
	prevIdx := -1
	for _, v := range vals {
		idx := bucketOf(v)
		if idx < prevIdx {
			t.Fatalf("bucketOf not monotone: bucketOf(%d) = %d < %d", v, idx, prevIdx)
		}
		prevIdx = idx
		upper := bucketUpper(idx)
		if v > upper {
			t.Fatalf("value %d above its bucket's upper bound %d (idx %d)", v, upper, idx)
		}
		if idx > 0 && v <= bucketUpper(idx-1) {
			t.Fatalf("value %d also fits bucket %d (upper %d)", v, idx-1, bucketUpper(idx-1))
		}
	}
	// Relative error bound: upper/lower ≤ 1 + 2/subCount for large values.
	for idx := subCount; idx < numBuckets-1; idx++ {
		lo, hi := bucketUpper(idx-1)+1, bucketUpper(idx)
		if float64(hi-lo) > float64(lo)/subCount+1 {
			t.Fatalf("bucket %d too wide: [%d,%d]", idx, lo, hi)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 µs uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.90, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want || float64(got) > float64(c.want)*(1+2.0/subCount) {
			t.Errorf("q%.2f = %v, want within [%v, %v+%.0f%%]", c.q, got, c.want, c.want, 200.0/subCount)
		}
	}
	if s.Max != time.Millisecond {
		t.Errorf("max = %v, want 1ms", s.Max)
	}
	if m := s.Mean(); m < 450*time.Microsecond || m > 550*time.Microsecond {
		t.Errorf("mean = %v", m)
	}
	sum := h.Summary()
	if sum.P99US < 990 || sum.MaxUS != 1000 {
		t.Errorf("summary %+v", sum)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram must read 0")
	}
	h.Record(-time.Second) // clamps to 0
	if s := h.Snapshot(); s.Count != 1 || s.Max != 0 {
		t.Fatalf("negative record: %+v", s)
	}
}

// Concurrent recording must neither lose counts nor race (run under -race).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var c Counter
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Record(time.Duration(w*1000+i) * time.Nanosecond)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("lost records: %d != %d", h.Count(), workers*each)
	}
	if c.Load() != workers*each {
		t.Fatalf("lost counts: %d", c.Load())
	}
}

func TestSeriesRing(t *testing.T) {
	s := NewSeries(3)
	for i := int64(0); i < 5; i++ {
		s.Append([]int64{i})
	}
	got := s.Samples()
	if len(got) != 3 || s.Total() != 5 {
		t.Fatalf("len=%d total=%d", len(got), s.Total())
	}
	for i, want := range []int64{2, 3, 4} {
		if got[i].Values[0] != want {
			t.Fatalf("ring order wrong: %v", got)
		}
	}
}
