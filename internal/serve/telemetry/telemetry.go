// Package telemetry provides the allocation-free measurement primitives
// of the live service layer (internal/serve): atomic counters, lock-free
// log-linear latency histograms, and small bounded sample series.
//
// Everything on the record path is wait-free in the practical sense: a
// Record or Add is a handful of atomic operations, never allocates, and
// never takes a lock — instrumentation must not introduce the very
// contention and blocking the TBWF stack is built to tolerate. Snapshots
// copy the counters out and are approximate under concurrent recording
// (each bucket is read atomically, the set of buckets is not), which is
// the usual and acceptable trade for metrics.
package telemetry

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is an allocation-free atomic event counter. The zero value is
// ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Histogram bucketing: log-linear ("HDR-style"). Values below subCount
// nanoseconds get exact buckets; above that, each power-of-two octave is
// split into subCount linear sub-buckets, so the relative quantile error
// is at most 1/subCount ≈ 6%.
const (
	subBits  = 4
	subCount = 1 << subBits // linear sub-buckets per octave
	// numBuckets covers the full int64 nanosecond range (≈292 years):
	// the largest int64 maps to bucket subCount*(64-subBits) - 1.
	numBuckets = subCount * (64 - subBits)
)

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(v int64) int {
	if v < subCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - subBits - 1
	sub := int(v>>uint(e)) - subCount
	return subCount*(e+1) + sub
}

// bucketUpper returns the largest value mapping to bucket idx — the
// (conservative) representative used when reading quantiles back out.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	e := idx/subCount - 1
	sub := idx % subCount
	return (int64(subCount+sub+1) << uint(e)) - 1
}

// Histogram is a lock-free log-linear latency histogram. Record is
// allocation-free and safe for any number of concurrent recorders. The
// zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Record adds one observation. Negative durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Merge folds other's current contents into h, bucket by bucket. Both
// histograms may have concurrent recorders; the result then reflects some
// consistent interleaving of the adds.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.buckets {
		if c := other.buckets[i].Load(); c > 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	m := other.max.Load()
	for {
		cur := h.max.Load()
		if m <= cur || h.max.CompareAndSwap(cur, m) {
			return
		}
	}
}

// Snapshot copies the histogram out for quantile queries.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			s.buckets = append(s.buckets, bucketCount{idx: i, n: c})
		}
	}
	return s
}

// Summary returns the standard latency digest of the histogram's current
// contents.
func (h *Histogram) Summary() Summary { return h.Snapshot().Summary() }

type bucketCount struct {
	idx int
	n   int64
}

// Snapshot is a point-in-time copy of a histogram.
type Snapshot struct {
	Count   int64
	Sum     time.Duration
	Max     time.Duration
	buckets []bucketCount // non-empty buckets, ascending index
}

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1) of the
// recorded values, within one bucket's width. It returns 0 for an empty
// snapshot.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for _, b := range s.buckets {
		seen += b.n
		if seen >= rank {
			u := bucketUpper(b.idx)
			if time.Duration(u) > s.Max {
				return s.Max // the last bucket's upper bound can overshoot
			}
			return time.Duration(u)
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the recorded values.
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Summary condenses a snapshot to the digest the service layer reports.
func (s Snapshot) Summary() Summary {
	return Summary{
		Count:  s.Count,
		MeanUS: float64(s.Mean()) / 1e3,
		P50US:  float64(s.Quantile(0.50)) / 1e3,
		P90US:  float64(s.Quantile(0.90)) / 1e3,
		P99US:  float64(s.Quantile(0.99)) / 1e3,
		MaxUS:  float64(s.Max) / 1e3,
	}
}

// Summary is the JSON-ready latency digest: count plus mean/p50/p90/p99/max
// in microseconds.
type Summary struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// Sample is one point of a Series.
type Sample struct {
	// UnixMS is the sample's wall-clock timestamp in milliseconds.
	UnixMS int64 `json:"t_ms"`
	// Values is the sampled vector (meaning is the series owner's).
	Values []int64 `json:"values"`
}

// Series is a bounded ring of timestamped vector samples — used for the
// low-rate trajectories (monitor fault counters, leader history) exposed
// on the metrics endpoint. Unlike the hot-path types above it takes a
// mutex: sampling happens a few times per second, not per operation.
type Series struct {
	mu    sync.Mutex
	cap   int
	ring  []Sample
	next  int
	total int
}

// NewSeries returns a series keeping the last capacity samples (minimum 1).
func NewSeries(capacity int) *Series {
	if capacity < 1 {
		capacity = 1
	}
	return &Series{cap: capacity, ring: make([]Sample, 0, capacity)}
}

// Append records a sample with the current wall-clock time. The values
// slice is copied.
func (s *Series) Append(values []int64) {
	v := make([]int64, len(values))
	copy(v, values)
	smp := Sample{UnixMS: time.Now().UnixMilli(), Values: v}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, smp)
	} else {
		s.ring[s.next] = smp
		s.next = (s.next + 1) % s.cap
	}
	s.total++
}

// Samples returns the retained samples, oldest first.
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// Total returns how many samples were ever appended.
func (s *Series) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
