package serve

import (
	"sync"
	"time"

	"tbwf/internal/omega"
	"tbwf/internal/serve/telemetry"
)

// metrics holds the server's hot-path instrumentation: all histograms and
// counters are preallocated per (replica, op-kind) at startup so the
// record path never allocates or locks.
type metrics struct {
	start   time.Time
	kinds   []string
	kindIdx map[string]int

	perOp    [][]*telemetry.Histogram // [replica][kind]
	perProc  []*telemetry.Histogram   // [replica], all kinds
	served   []telemetry.Counter
	rejected []telemetry.Counter
	shardLat []*telemetry.Histogram // [shard], keyed-API latency; empty unsharded

	leaderChanges telemetry.Counter
	leaderHist    *telemetry.Series
	faultTraj     *telemetry.Series

	mu         sync.Mutex
	injections []Injection
}

func newMetrics(n int, kinds []string, shards int) *metrics {
	m := &metrics{
		start:      time.Now(),
		kinds:      kinds,
		kindIdx:    make(map[string]int, len(kinds)),
		perOp:      make([][]*telemetry.Histogram, n),
		perProc:    make([]*telemetry.Histogram, n),
		served:     make([]telemetry.Counter, n),
		rejected:   make([]telemetry.Counter, n),
		leaderHist: telemetry.NewSeries(256),
		faultTraj:  telemetry.NewSeries(256),
	}
	for i, k := range kinds {
		m.kindIdx[k] = i
	}
	for p := 0; p < n; p++ {
		m.perProc[p] = &telemetry.Histogram{}
		m.perOp[p] = make([]*telemetry.Histogram, len(kinds))
		for i := range kinds {
			m.perOp[p][i] = &telemetry.Histogram{}
		}
	}
	for sh := 0; sh < shards; sh++ {
		m.shardLat = append(m.shardLat, &telemetry.Histogram{})
	}
	return m
}

func (m *metrics) recordShardServed(sh int, lat time.Duration) {
	m.shardLat[sh].Record(lat)
}

func (m *metrics) recordServed(p int, kind string, lat time.Duration) {
	m.perProc[p].Record(lat)
	if i, ok := m.kindIdx[kind]; ok {
		m.perOp[p][i].Record(lat)
	}
	m.served[p].Inc()
}

func (m *metrics) recordRejected(p int) { m.rejected[p].Inc() }

func (m *metrics) recordInjection(inj Injection) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.injections = append(m.injections, inj)
}

func (m *metrics) injectionList() []Injection {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Injection, len(m.injections))
	copy(out, m.injections)
	return out
}

// Injection records one live profile retune performed through the fault
// endpoint.
type Injection struct {
	// AtMS is milliseconds since server start.
	AtMS int64 `json:"at_ms"`
	// Process is the retuned process; Spec the applied profile spec.
	Process int    `json:"process"`
	Spec    string `json:"spec"`
}

// MetricsReport is the full JSON document served on /v1/metrics: latency
// histograms per process and per operation, the TBWF stack's timeliness
// telemetry (leader identity and churn from Ω∆, step-gap estimates, abort
// counts, monitor fault-counter trajectories), and the injection history.
type MetricsReport struct {
	Object string `json:"object"`
	N      int    `json:"n"`
	// Substrate names the execution substrate ("rt" or "net").
	Substrate string `json:"substrate"`
	// Omega is the elector's implementation name (historical key);
	// Elector its canonical flag name.
	Omega     string           `json:"omega"`
	Elector   string           `json:"elector"`
	UptimeMS  int64            `json:"uptime_ms"`
	Processes []ProcessMetrics `json:"processes"`
	Leader    LeaderMetrics    `json:"leader"`
	Faults    FaultMetrics     `json:"faults"`
	// QASlots is the number of operation-log slots allocated so far.
	QASlots    int64       `json:"qa_slots"`
	Injections []Injection `json:"injections"`
	// Net carries quorum/transport telemetry on the net substrate and is
	// absent on rt.
	Net *NetMetrics `json:"net,omitempty"`
	// Shards is the sharded keyspace's per-stack telemetry (batching,
	// admission sheds, per-shard leader vectors); absent when unsharded.
	// KVInFlight is the keyed API's admitted-but-incomplete count.
	Shards     []ShardMetrics `json:"shards,omitempty"`
	KVInFlight int64          `json:"kv_in_flight,omitempty"`
}

// ShardMetrics is one keyspace shard's slice of the report: its own
// TBWF stack's elector and leader vector, its queue occupancy per
// replica, the batching amortization (MeanBatch > 1 means multiple ops
// rode one QA round), and the admission shed split (rate-limit sheds
// answer 429, queue-full and in-flight sheds 503).
type ShardMetrics struct {
	Shard      int               `json:"shard"`
	Omega      string            `json:"omega"`
	Elector    string            `json:"elector"`
	Leaders    []int             `json:"leaders"`
	QueueDepth []int             `json:"queue_depth"`
	Accepted   int64             `json:"accepted"`
	Served     int64             `json:"served"`
	Batches    int64             `json:"batches"`
	MeanBatch  float64           `json:"mean_batch"`
	BatchHist  []int64           `json:"batch_hist"`
	ShedRL     int64             `json:"shed_rate_limit"`
	ShedQF     int64             `json:"shed_queue_full"`
	ShedIF     int64             `json:"shed_in_flight"`
	QASlots    int64             `json:"qa_slots"`
	Latency    telemetry.Summary `json:"latency"`
}

// NetMetrics is the net substrate's slice of the report: the effective
// quorum sizes and the transport's send/drop counters (drops count dead,
// blocked, and backpressured peers; retransmission recovers them).
type NetMetrics struct {
	ReadQuorum  int   `json:"read_quorum"`
	WriteQuorum int   `json:"write_quorum"`
	Sent        int64 `json:"sent"`
	Dropped     int64 `json:"dropped"`
}

// ProcessMetrics is one replica's slice of the report.
type ProcessMetrics struct {
	P int `json:"p"`
	// Steps and the gap estimates come from the rt substrate: MaxGapUS is
	// the largest observed wall-clock gap between the process's steps,
	// AvgGapUS an EWMA, SinceLastStepUS the age of the latest step.
	Steps           int64   `json:"steps"`
	MaxGapUS        float64 `json:"max_gap_us"`
	AvgGapUS        float64 `json:"avg_gap_us"`
	SinceLastStepUS float64 `json:"since_last_step_us"`
	// QueueDepth is the replica's current bounded-queue occupancy;
	// Served/Rejected count accepted and backpressured requests.
	QueueDepth int   `json:"queue_depth"`
	Served     int64 `json:"served"`
	Rejected   int64 `json:"rejected"`
	// Client mirrors core.Client's counters; Aborts is the ⊥ count.
	Client ClientMetrics `json:"client"`
	// QA mirrors the process's query-abortable handle counters.
	QA QAMetrics `json:"qa"`
	// Latency digests all of the replica's operations; PerOp splits by
	// operation kind.
	Latency telemetry.Summary            `json:"latency"`
	PerOp   map[string]telemetry.Summary `json:"per_op"`
}

// ClientMetrics is the wire form of core.Stats.
type ClientMetrics struct {
	Completed            int64   `json:"completed"`
	Invokes              int64   `json:"invokes"`
	Queries              int64   `json:"queries"`
	Aborts               int64   `json:"aborts"`
	SinceLastCompletedMS float64 `json:"since_last_completed_ms"`
}

// QAMetrics is the wire form of qa.HandleStats.
type QAMetrics struct {
	Proposals     int64 `json:"proposals"`
	NopProposals  int64 `json:"nop_proposals"`
	SlotsReplayed int64 `json:"slots_replayed"`
}

// LeaderMetrics reports Ω∆'s live outputs.
type LeaderMetrics struct {
	// Current is the leader every process currently agrees on, or -1.
	Current int `json:"current"`
	// PerProcess is each process's own leader output (-1 is the paper's ?).
	PerProcess []int `json:"per_process"`
	// Changes counts leader-output transitions since start (election
	// churn), sampled at the server's sampling period.
	Changes int64 `json:"changes"`
	// History is the sampled leader-vector trajectory.
	History []telemetry.Sample `json:"history"`
}

// FaultMetrics reports the elector's per-pair fault/penalty state.
type FaultMetrics struct {
	// Supported is false when the elector maintains no fault matrix (the
	// abortable-registers Ω∆); Matrix and Trajectory are then absent
	// rather than nil-meaning-something.
	Supported bool `json:"supported"`
	// Matrix[p][q] is the elector's fault counter of p against q now
	// (suspicions, penalties, or depositions, per the implementation).
	Matrix [][]int64 `json:"matrix,omitempty"`
	// Trajectory samples, for each process q, the total faults charged to
	// q summed over all processes — the degradation signature of an
	// untimely process is its column climbing.
	Trajectory []telemetry.Sample `json:"trajectory,omitempty"`
}

// sample runs the low-rate sampler: leader churn at cfg.SampleEvery,
// trajectory snapshots at cfg.TrajectoryEvery. It owns prev between
// iterations; everything it reads is a lock-free or Var-guarded tap. When
// the elector maintains no fault matrix the fault trajectory stays empty.
func (s *Server) sample() {
	defer close(s.samplerDone)
	tick := time.NewTicker(s.cfg.SampleEvery)
	defer tick.Stop()
	trajEvery := int(s.cfg.TrajectoryEvery / s.cfg.SampleEvery)
	if trajEvery < 1 {
		trajEvery = 1
	}
	prev := s.backend.Leaders()
	for i := 0; ; i++ {
		select {
		case <-s.stopping:
			return
		case <-tick.C:
		}
		cur := s.backend.Leaders()
		for p := range cur {
			if cur[p] != prev[p] {
				s.metrics.leaderChanges.Inc()
			}
		}
		prev = cur
		if i%trajEvery == 0 {
			vec := make([]int64, len(cur))
			for p, l := range cur {
				vec[p] = int64(l)
			}
			s.metrics.leaderHist.Append(vec)
			if m, ok := s.backend.FaultMatrix(); ok {
				s.metrics.faultTraj.Append(columnSums(m))
			}
		}
	}
}

// columnSums reduces the fault matrix to per-monitored-process totals.
func columnSums(m [][]int64) []int64 {
	out := make([]int64, len(m))
	for _, row := range m {
		for q, v := range row {
			out[q] += v
		}
	}
	return out
}

// report assembles the full metrics document.
func (s *Server) report() MetricsReport {
	n := s.cfg.N
	now := time.Now()
	rep := MetricsReport{
		Object:     s.cfg.Object,
		N:          n,
		Substrate:  s.cfg.Substrate,
		Omega:      s.backend.ElectorName(),
		Elector:    s.electorFlag,
		UptimeMS:   now.Sub(s.metrics.start).Milliseconds(),
		Processes:  make([]ProcessMetrics, n),
		QASlots:    s.backend.Slots(),
		Injections: s.metrics.injectionList(),
	}
	if s.netSub != nil {
		rq, wq := s.netSub.Quorums()
		rep.Net = &NetMetrics{
			ReadQuorum:  rq,
			WriteQuorum: wq,
			Sent:        s.tcp.Sent(),
			Dropped:     s.tcp.Dropped(),
		}
	}
	for p := 0; p < n; p++ {
		ps := s.rt.ProcStats(p)
		cs := s.backend.ClientStats(p)
		qs := s.backend.QAStats(p)
		pm := ProcessMetrics{
			P:               p,
			Steps:           ps.Steps,
			MaxGapUS:        float64(ps.MaxGap) / 1e3,
			AvgGapUS:        float64(ps.AvgGap) / 1e3,
			SinceLastStepUS: float64(ps.SinceLastStep) / 1e3,
			QueueDepth:      s.backend.QueueDepth(p),
			Served:          s.metrics.served[p].Load(),
			Rejected:        s.metrics.rejected[p].Load(),
			Client: ClientMetrics{
				Completed: cs.Completed,
				Invokes:   cs.Invokes,
				Queries:   cs.Queries,
				Aborts:    cs.Aborts,
			},
			QA: QAMetrics{
				Proposals:     qs.Proposals,
				NopProposals:  qs.NopProposals,
				SlotsReplayed: qs.SlotsReplayed,
			},
			Latency: s.metrics.perProc[p].Summary(),
			PerOp:   make(map[string]telemetry.Summary, len(s.metrics.kinds)),
		}
		if cs.LastCompletedUnixNano > 0 {
			pm.Client.SinceLastCompletedMS = float64(now.UnixNano()-cs.LastCompletedUnixNano) / 1e6
		}
		for i, k := range s.metrics.kinds {
			pm.PerOp[k] = s.metrics.perOp[p][i].Summary()
		}
		rep.Processes[p] = pm
	}
	leaders := s.backend.Leaders()
	agreed := leaders[0]
	for _, l := range leaders {
		if l != agreed {
			agreed = omega.NoLeader
			break
		}
	}
	rep.Leader = LeaderMetrics{
		Current:    agreed,
		PerProcess: leaders,
		Changes:    s.metrics.leaderChanges.Load(),
		History:    s.metrics.leaderHist.Samples(),
	}
	if m, ok := s.backend.FaultMatrix(); ok {
		rep.Faults = FaultMetrics{
			Supported:  true,
			Matrix:     m,
			Trajectory: s.metrics.faultTraj.Samples(),
		}
	} else {
		rep.Faults = FaultMetrics{Supported: false}
	}
	if s.kv != nil {
		rep.KVInFlight = s.kv.InFlight()
		for sh := 0; sh < s.kv.Shards(); sh++ {
			st := s.kv.Stats(sh)
			sm := ShardMetrics{
				Shard:     sh,
				Omega:     s.kv.ElectorName(sh),
				Elector:   s.kv.ElectorFlag(sh),
				Leaders:   s.kv.Leaders(sh),
				Accepted:  st.Accepted,
				Served:    st.Served,
				Batches:   st.Batches,
				MeanBatch: s.kv.MeanBatch(sh),
				BatchHist: s.kv.BatchHist(sh),
				ShedRL:    st.ShedRateLimit,
				ShedQF:    st.ShedQueueFull,
				ShedIF:    st.ShedInFlight,
				QASlots:   s.kv.Slots(sh),
				Latency:   s.metrics.shardLat[sh].Summary(),
			}
			for p := 0; p < n; p++ {
				sm.QueueDepth = append(sm.QueueDepth, s.kv.QueueDepth(sh, p))
			}
			rep.Shards = append(rep.Shards, sm)
		}
	}
	return rep
}
