// Package loadgen drives a running tbwf-serve instance with closed-loop
// workers and produces a JSON latency/throughput report.
//
// Each client worker is pinned to one replica (client i → replica i mod n)
// and issues one operation at a time, so offered load tracks service
// capacity and per-client latency is a clean probe of that replica's
// timeliness. An optional fault injection retunes one replica's pacing
// profile mid-run through the service's /v1/fault endpoint; the report
// then splits latency digests into the timely clients (pinned elsewhere)
// and the slow clients (pinned to the degraded replica), which is the
// service-level view of the paper's graceful-degradation claim.
package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tbwf/internal/serve"
	"tbwf/internal/serve/telemetry"
	"tbwf/internal/shard"
)

// Injection schedules one mid-run fault: After the given delay, Process's
// pacing profile is retuned to Spec via POST /v1/fault.
type Injection struct {
	Process int
	Spec    string
	After   time.Duration
}

// Config parameterises one load run.
type Config struct {
	// BaseURL locates the service, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of closed-loop workers (default 8).
	Clients int
	// Duration is the measurement window (default 5s).
	Duration time.Duration
	// Mix is a weighted operation mix, e.g. "add=9,read=1". Kinds must be
	// operations of the deployed object (validated against /v1/stats), or
	// of the keyed API when Dist is set.
	Mix string
	// Dist switches the run to the sharded keyed API (/v1/kv/invoke) and
	// names the key distribution: "uniform", "zipf:θ", or "hot:f" (see
	// ParseDist). Empty keeps the legacy unkeyed /v1/invoke path. Requires
	// a server started with shards.
	Dist string
	// Keys sizes the keyspace in keyed mode (default 64).
	Keys int
	// SnapshotIndexes bounds the index used by snapshot update ops
	// (default 1, i.e. every update hits component 0).
	SnapshotIndexes int
	// Inject, if non-nil, schedules a mid-run fault injection.
	Inject *Injection
	// Timeout bounds each request (default 15s). It also bounds the run's
	// tail: a client whose replica degrades mid-run gives up on its last
	// operation after at most this long (counted under Timeouts).
	Timeout time.Duration
	// Client is the HTTP client to use (default: one with Timeout).
	Client *http.Client
}

// Report is the JSON document a run produces.
type Report struct {
	Object string `json:"object"`
	N      int    `json:"n"`
	// Substrate is the service's execution substrate ("rt" or "net"),
	// echoed from /v1/stats so a saved report identifies what it measured.
	Substrate string `json:"substrate"`
	// Omega is the service's Ω∆ implementation name; Elector its canonical
	// flag name — both echoed from /v1/stats so a saved report identifies
	// which elector it measured.
	Omega      string  `json:"omega"`
	Elector    string  `json:"elector"`
	Clients    int     `json:"clients"`
	Mix        string  `json:"mix"`
	DurationMS int64   `json:"duration_ms"`
	TotalOps   int64   `json:"total_ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Distribution, Keys, and Shards describe a keyed run (Dist set): the
	// key distribution, the keyspace size, and the server's shard count.
	// All zero on a legacy unkeyed run.
	Distribution string `json:"distribution,omitempty"`
	Keys         int    `json:"keys,omitempty"`
	Shards       int    `json:"shards,omitempty"`
	// Backpressure counts 503 responses (full replica queues or a tripped
	// in-flight cap); RateLimited counts 429s (keyed admission); Timeouts
	// counts requests that outlived Config.Timeout (expected for clients
	// of a degraded replica); Errors counts every other non-200 outcome.
	Backpressure int64 `json:"backpressure"`
	RateLimited  int64 `json:"rate_limited"`
	Timeouts     int64 `json:"timeouts"`
	Errors       int64 `json:"errors"`

	Overall telemetry.Summary            `json:"overall"`
	PerKind map[string]telemetry.Summary `json:"per_kind"`

	// Timely digests the clients pinned to non-injected replicas; Slow the
	// clients pinned to the injected one. Without an injection every client
	// is timely and Slow.Count is 0.
	Timely telemetry.Summary `json:"timely"`
	Slow   telemetry.Summary `json:"slow"`
	// TimelyP99US is Timely's p99 in microseconds, surfaced at the top
	// level so shell pipelines can assert on it directly.
	TimelyP99US float64 `json:"timely_p99_us"`

	Injection *InjectionRecord `json:"injection,omitempty"`
	PerClient []ClientReport   `json:"per_client"`
	// PerShard breaks a keyed run down by target shard; absent unkeyed.
	PerShard []ShardLoad `json:"per_shard,omitempty"`
}

// ShardLoad is one shard's slice of a keyed run, with the timely/slow
// split (clients pinned to the injected replica are the slow ones)
// carried per shard so a hot shard's tail can be read off directly.
type ShardLoad struct {
	Shard        int               `json:"shard"`
	Ops          int64             `json:"ops"`
	Backpressure int64             `json:"backpressure"`
	RateLimited  int64             `json:"rate_limited"`
	Timely       telemetry.Summary `json:"timely"`
	Slow         telemetry.Summary `json:"slow"`
	TimelyP99US  float64           `json:"timely_p99_us"`
}

// InjectionRecord describes the fault that was actually applied.
type InjectionRecord struct {
	Process int    `json:"process"`
	Spec    string `json:"spec"`
	AtMS    int64  `json:"at_ms"`
	Error   string `json:"error,omitempty"`
}

// ClientReport is one worker's slice of the report.
type ClientReport struct {
	Client       int               `json:"client"`
	Replica      int               `json:"replica"`
	Ops          int64             `json:"ops"`
	Backpressure int64             `json:"backpressure"`
	RateLimited  int64             `json:"rate_limited,omitempty"`
	Timeouts     int64             `json:"timeouts"`
	Errors       int64             `json:"errors"`
	Latency      telemetry.Summary `json:"latency"`
}

type weightedKind struct {
	kind   string
	weight int
}

// parseMix parses "add=9,read=1" into an ordered weighted kind list.
func parseMix(s string) ([]weightedKind, error) {
	var out []weightedKind
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, w, found := strings.Cut(entry, "=")
		weight := 1
		if found {
			v, err := strconv.Atoi(w)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("loadgen: bad mix weight %q (want kind=positive-int)", entry)
			}
			weight = v
		}
		if kind == "" {
			return nil, fmt.Errorf("loadgen: empty op kind in mix entry %q", entry)
		}
		out = append(out, weightedKind{kind: kind, weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	return out, nil
}

// pickKind draws one kind from the mix using rng.
func pickKind(mix []weightedKind, rng *rand.Rand) string {
	total := 0
	for _, wk := range mix {
		total += wk.weight
	}
	r := rng.Intn(total)
	for _, wk := range mix {
		r -= wk.weight
		if r < 0 {
			return wk.kind
		}
	}
	return mix[len(mix)-1].kind
}

// fillOp builds the wire operation for one request. Values are unique per
// (client, seq) so enq/write payloads are distinguishable downstream.
func fillOp(kind string, client int, seq int64, snapIndexes int) serve.WireOp {
	op := serve.WireOp{Kind: kind}
	val := int64(client)<<32 | (seq & 0xffffffff)
	switch kind {
	case "add":
		op.Delta = 1
	case "write", "enq":
		op.Value = val
	case "cas":
		op.Old = 0
		op.New = val
	case "update":
		op.Index = client % snapIndexes
		op.Value = val
	}
	return op
}

type serverInfo struct {
	Object    string   `json:"object"`
	N         int      `json:"n"`
	Substrate string   `json:"substrate"`
	Omega     string   `json:"omega"`
	Elector   string   `json:"elector"`
	Kinds     []string `json:"kinds"`
	Shards    int      `json:"shards"`
	KVKinds   []string `json:"kv_kinds"`
}

// fetchInfo reads /v1/stats to learn the replica count and op kinds.
func fetchInfo(hc *http.Client, baseURL string) (serverInfo, error) {
	var info serverInfo
	resp, err := hc.Get(baseURL + "/v1/stats")
	if err != nil {
		return info, fmt.Errorf("loadgen: cannot reach %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("loadgen: %s/v1/stats: HTTP %d", baseURL, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return info, fmt.Errorf("loadgen: bad stats document: %w", err)
	}
	if info.N < 1 {
		return info, fmt.Errorf("loadgen: stats reports n = %d", info.N)
	}
	return info, nil
}

type invokeResult struct {
	OK bool `json:"ok"`
}

// worker is one closed-loop client; it owns its histogram and counters.
type worker struct {
	client   int
	replica  int
	ops      int64
	bp       int64
	rl       int64
	timeouts int64
	errs     int64
	hist     telemetry.Histogram
}

// shardAgg accumulates one shard's slice of a keyed run; histograms and
// counters are concurrency-safe, so workers record into it directly.
type shardAgg struct {
	ops    telemetry.Counter
	bp     telemetry.Counter
	rl     telemetry.Counter
	timely telemetry.Histogram
	slow   telemetry.Histogram
}

// fillKVOp builds the keyed wire operation for one request.
func fillKVOp(kind string, client int, seq int64) serve.WireOp {
	op := serve.WireOp{Kind: kind}
	val := int64(client)<<32 | (seq & 0xffffffff)
	switch kind {
	case "add":
		op.Delta = 1
	case "put":
		op.Value = val
	case "cas":
		op.Old = 0
		op.New = val
	}
	return op
}

// Run executes the configured load against a live service and assembles
// the report. It is synchronous: it returns after Duration plus the tail
// of in-flight requests.
func Run(cfg Config) (*Report, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.SnapshotIndexes <= 0 {
		cfg.SnapshotIndexes = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 15 * time.Second
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: cfg.Timeout}
	}
	baseURL := strings.TrimSuffix(cfg.BaseURL, "/")
	if baseURL == "" {
		return nil, fmt.Errorf("loadgen: empty base URL")
	}
	mix, err := parseMix(cfg.Mix)
	if err != nil {
		return nil, err
	}
	keyed := cfg.Dist != ""
	if cfg.Keys <= 0 {
		cfg.Keys = 64
	}
	var sampler KeySampler
	if keyed {
		if sampler, err = ParseDist(cfg.Dist, cfg.Keys); err != nil {
			return nil, err
		}
	}
	info, err := fetchInfo(hc, baseURL)
	if err != nil {
		return nil, err
	}
	servedKinds := info.Kinds
	if keyed {
		if info.Shards <= 0 {
			return nil, fmt.Errorf("loadgen: keyed load (dist %q) needs a sharded server; %s reports shards = 0 (start tbwf-serve with -shards)",
				cfg.Dist, baseURL)
		}
		servedKinds = info.KVKinds
	}
	known := make(map[string]bool, len(servedKinds))
	for _, k := range servedKinds {
		known[k] = true
	}
	for _, wk := range mix {
		if !known[wk.kind] {
			return nil, fmt.Errorf("loadgen: mix kind %q not served by object %s (have %v)",
				wk.kind, info.Object, servedKinds)
		}
	}
	if inj := cfg.Inject; inj != nil {
		if inj.Process < 0 || inj.Process >= info.N {
			return nil, fmt.Errorf("loadgen: inject process %d out of range [0,%d)", inj.Process, info.N)
		}
		if _, err := serve.ParseProfile(inj.Spec); err != nil {
			return nil, err
		}
	}

	workers := make([]*worker, cfg.Clients)
	for i := range workers {
		workers[i] = &worker{client: i, replica: i % info.N}
	}
	var perShard []*shardAgg
	if keyed {
		perShard = make([]*shardAgg, info.Shards)
		for i := range perShard {
			perShard[i] = &shardAgg{}
		}
	}
	var timely, slow telemetry.Histogram
	perKind := make(map[string]*telemetry.Histogram, len(mix))
	var perKindMu sync.Mutex
	for _, wk := range mix {
		perKind[wk.kind] = &telemetry.Histogram{}
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var injRec *InjectionRecord
	var injWG sync.WaitGroup
	if inj := cfg.Inject; inj != nil {
		injRec = &InjectionRecord{Process: inj.Process, Spec: inj.Spec}
		injWG.Add(1)
		go func() {
			defer injWG.Done()
			time.Sleep(inj.After)
			body, _ := json.Marshal(map[string]any{"process": inj.Process, "spec": inj.Spec})
			resp, err := hc.Post(baseURL+"/v1/fault", "application/json", bytes.NewReader(body))
			injRec.AtMS = time.Since(start).Milliseconds()
			if err != nil {
				injRec.Error = err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				injRec.Error = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
			}
		}()
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w.client)*7919 + 1))
			isSlow := cfg.Inject != nil && w.replica == cfg.Inject.Process
			var seq int64
			for time.Now().Before(deadline) {
				kind := pickKind(mix, rng)
				var (
					body []byte
					path string
					sh   = -1
				)
				if keyed {
					key := KeyName(sampler(rng))
					sh = shard.KeyShard(key, info.Shards)
					body, _ = json.Marshal(map[string]any{
						"key": key, "replica": w.replica, "op": fillKVOp(kind, w.client, seq),
					})
					path = "/v1/kv/invoke"
				} else {
					op := fillOp(kind, w.client, seq, cfg.SnapshotIndexes)
					body, _ = json.Marshal(map[string]any{"replica": w.replica, "op": op})
					path = "/v1/invoke"
				}
				seq++
				t0 := time.Now()
				resp, err := hc.Post(baseURL+path, "application/json", bytes.NewReader(body))
				if err != nil {
					var ue *url.Error
					if errors.As(err, &ue) && ue.Timeout() {
						w.timeouts++
					} else {
						w.errs++
					}
					continue
				}
				lat := time.Since(t0)
				func() {
					defer resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						var res invokeResult
						if json.NewDecoder(resp.Body).Decode(&res) != nil || !res.OK {
							w.errs++
							return
						}
						w.ops++
						w.hist.Record(lat)
						if isSlow {
							slow.Record(lat)
						} else {
							timely.Record(lat)
						}
						if sh >= 0 {
							perShard[sh].ops.Inc()
							if isSlow {
								perShard[sh].slow.Record(lat)
							} else {
								perShard[sh].timely.Record(lat)
							}
						}
						perKindMu.Lock()
						perKind[kind].Record(lat)
						perKindMu.Unlock()
					case http.StatusServiceUnavailable:
						w.bp++
						if sh >= 0 {
							perShard[sh].bp.Inc()
						}
						// Backpressured: the replica queue is full, give the
						// worker loop a beat before re-offering.
						time.Sleep(time.Millisecond)
					case http.StatusTooManyRequests:
						// Rate limited: the shard's admission bucket says this
						// client should slow down. Do so, briefly.
						w.rl++
						if sh >= 0 {
							perShard[sh].rl.Inc()
						}
						time.Sleep(time.Millisecond)
					default:
						w.errs++
					}
				}()
			}
		}()
	}
	wg.Wait()
	injWG.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Object:     info.Object,
		N:          info.N,
		Substrate:  info.Substrate,
		Omega:      info.Omega,
		Elector:    info.Elector,
		Clients:    cfg.Clients,
		Mix:        cfg.Mix,
		DurationMS: elapsed.Milliseconds(),
		Overall:    telemetry.Summary{},
		PerKind:    make(map[string]telemetry.Summary, len(perKind)),
		Timely:     timely.Summary(),
		Slow:       slow.Summary(),
		Injection:  injRec,
	}
	rep.TimelyP99US = rep.Timely.P99US
	if keyed {
		rep.Distribution = cfg.Dist
		rep.Keys = cfg.Keys
		rep.Shards = info.Shards
		for i, agg := range perShard {
			sl := ShardLoad{
				Shard:        i,
				Ops:          agg.ops.Load(),
				Backpressure: agg.bp.Load(),
				RateLimited:  agg.rl.Load(),
				Timely:       agg.timely.Summary(),
				Slow:         agg.slow.Summary(),
			}
			sl.TimelyP99US = sl.Timely.P99US
			rep.PerShard = append(rep.PerShard, sl)
		}
	}
	var overall telemetry.Histogram
	for _, w := range workers {
		rep.TotalOps += w.ops
		rep.Backpressure += w.bp
		rep.RateLimited += w.rl
		rep.Timeouts += w.timeouts
		rep.Errors += w.errs
		rep.PerClient = append(rep.PerClient, ClientReport{
			Client:       w.client,
			Replica:      w.replica,
			Ops:          w.ops,
			Backpressure: w.bp,
			RateLimited:  w.rl,
			Timeouts:     w.timeouts,
			Errors:       w.errs,
			Latency:      w.hist.Summary(),
		})
	}
	// Overall merges the timely and slow populations, which partition all
	// recorded operations.
	overall.Merge(&timely)
	overall.Merge(&slow)
	rep.Overall = overall.Summary()
	for k, h := range perKind {
		rep.PerKind[k] = h.Summary()
	}
	if elapsed > 0 {
		rep.OpsPerSec = float64(rep.TotalOps) / elapsed.Seconds()
	}
	return rep, nil
}

// Format renders a short human-readable digest of the report.
func Format(r *Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "object=%s n=%d substrate=%s elector=%s clients=%d mix=%s\n",
		r.Object, r.N, r.Substrate, r.Elector, r.Clients, r.Mix)
	if r.Distribution != "" {
		fmt.Fprintf(&sb, "keyed dist=%s keys=%d shards=%d\n", r.Distribution, r.Keys, r.Shards)
	}
	fmt.Fprintf(&sb, "ops=%d (%.0f/s) backpressure=%d rate_limited=%d timeouts=%d errors=%d in %dms\n",
		r.TotalOps, r.OpsPerSec, r.Backpressure, r.RateLimited, r.Timeouts, r.Errors, r.DurationMS)
	fmt.Fprintf(&sb, "overall  p50=%.0fµs p90=%.0fµs p99=%.0fµs max=%.0fµs\n",
		r.Overall.P50US, r.Overall.P90US, r.Overall.P99US, r.Overall.MaxUS)
	if r.Injection != nil {
		fmt.Fprintf(&sb, "injected %s on process %d at %dms\n",
			r.Injection.Spec, r.Injection.Process, r.Injection.AtMS)
		fmt.Fprintf(&sb, "timely   p50=%.0fµs p99=%.0fµs (%d ops)\n",
			r.Timely.P50US, r.Timely.P99US, r.Timely.Count)
		fmt.Fprintf(&sb, "slow     p50=%.0fµs p99=%.0fµs (%d ops)\n",
			r.Slow.P50US, r.Slow.P99US, r.Slow.Count)
	}
	kinds := make([]string, 0, len(r.PerKind))
	for k := range r.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		s := r.PerKind[k]
		fmt.Fprintf(&sb, "%-8s p50=%.0fµs p99=%.0fµs (%d ops)\n", k, s.P50US, s.P99US, s.Count)
	}
	for _, sl := range r.PerShard {
		fmt.Fprintf(&sb, "shard %-2d ops=%d bp=%d rl=%d timely_p99=%.0fµs slow_ops=%d\n",
			sl.Shard, sl.Ops, sl.Backpressure, sl.RateLimited, sl.TimelyP99US, sl.Slow.Count)
	}
	return sb.String()
}
