package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// KeySampler draws one key index from a distribution.
type KeySampler func(*rand.Rand) int

// ParseDist compiles a key-distribution spec over a keyspace of the
// given size:
//
//	uniform      every key equally likely
//	zipf:θ       rank-frequency skew p(rank i) ∝ 1/i^θ, any θ > 0
//	hot:f        fraction f of the traffic on key 0, the rest uniform
//
// Unlike math/rand's Zipf, the zipfian sampler accepts any positive θ
// (the interesting sweep range for shard skew includes θ < 1): the
// keyspace is small, so an explicit CDF with binary search is exact
// and cheap.
func ParseDist(dist string, keys int) (KeySampler, error) {
	if keys <= 0 {
		return nil, fmt.Errorf("loadgen: keyspace of %d keys", keys)
	}
	switch {
	case dist == "" || dist == "uniform":
		return func(rng *rand.Rand) int { return rng.Intn(keys) }, nil
	case strings.HasPrefix(dist, "zipf:"):
		theta, err := strconv.ParseFloat(strings.TrimPrefix(dist, "zipf:"), 64)
		if err != nil || math.IsNaN(theta) || theta <= 0 {
			return nil, fmt.Errorf("loadgen: zipf theta %q (want a positive number, e.g. zipf:1.2)",
				strings.TrimPrefix(dist, "zipf:"))
		}
		cdf := make([]float64, keys)
		sum := 0.0
		for i := 0; i < keys; i++ {
			sum += 1 / math.Pow(float64(i+1), theta)
			cdf[i] = sum
		}
		return func(rng *rand.Rand) int {
			r := rng.Float64() * sum
			return sort.SearchFloat64s(cdf, r)
		}, nil
	case strings.HasPrefix(dist, "hot:"):
		frac, err := strconv.ParseFloat(strings.TrimPrefix(dist, "hot:"), 64)
		if err != nil || math.IsNaN(frac) || frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("loadgen: hot fraction %q (want a number in (0,1], e.g. hot:0.5)",
				strings.TrimPrefix(dist, "hot:"))
		}
		return func(rng *rand.Rand) int {
			if keys == 1 || rng.Float64() < frac {
				return 0
			}
			return 1 + rng.Intn(keys-1)
		}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown distribution %q (want uniform, zipf:θ, or hot:f)", dist)
	}
}

// KeyName renders key index i in the load generator's keyspace naming.
func KeyName(i int) string { return fmt.Sprintf("k%04d", i) }

// ValidateMix checks an operation-mix spec without running anything, so
// flag parsing can reject bad input with a clear error.
func ValidateMix(mix string) error {
	_, err := parseMix(mix)
	return err
}
