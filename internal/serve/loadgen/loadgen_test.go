package loadgen

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"tbwf/internal/serve"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("add=9,read=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].kind != "add" || mix[0].weight != 9 || mix[1].kind != "read" || mix[1].weight != 1 {
		t.Fatalf("parseMix = %+v", mix)
	}
	if mix, err := parseMix("deq"); err != nil || mix[0].weight != 1 {
		t.Fatalf("bare kind: mix=%+v err=%v", mix, err)
	}
	for _, bad := range []string{"", "add=0", "add=-1", "add=x", "=3"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestPickKindRespectsWeights(t *testing.T) {
	mix, err := parseMix("add=9,read=1")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[pickKind(mix, rng)]++
	}
	if counts["add"] < 8500 || counts["read"] < 500 {
		t.Fatalf("weighted pick skewed: %v", counts)
	}
}

func TestFillOp(t *testing.T) {
	if op := fillOp("add", 3, 7, 1); op.Delta != 1 {
		t.Fatalf("add: %+v", op)
	}
	if op := fillOp("write", 3, 7, 1); op.Value != int64(3)<<32|7 {
		t.Fatalf("write: %+v", op)
	}
	if op := fillOp("update", 5, 1, 2); op.Index != 1 {
		t.Fatalf("update index: %+v", op)
	}
	if op := fillOp("read", 0, 0, 1); op != (serve.WireOp{Kind: "read"}) {
		t.Fatalf("read: %+v", op)
	}
}

// TestRunAgainstLiveServer drives a real in-process service briefly and
// checks the report adds up.
func TestRunAgainstLiveServer(t *testing.T) {
	srv, err := serve.New(serve.Config{N: 3, Object: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rep, err := Run(Config{
		BaseURL:  ts.URL,
		Clients:  3,
		Duration: 400 * time.Millisecond,
		Mix:      "add=4,read=1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Object != "counter" || rep.N != 3 || rep.Clients != 3 {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Elector != "atomic" || rep.Omega != "atomic-registers" {
		t.Fatalf("report elector = %q / omega = %q, want atomic / atomic-registers", rep.Elector, rep.Omega)
	}
	if rep.TotalOps == 0 {
		t.Fatal("no operations completed")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors", rep.Errors)
	}
	if rep.Overall.Count != rep.TotalOps {
		t.Fatalf("overall count %d != total ops %d", rep.Overall.Count, rep.TotalOps)
	}
	if rep.Timely.Count != rep.TotalOps || rep.Slow.Count != 0 {
		t.Fatalf("no injection, but timely=%d slow=%d of %d",
			rep.Timely.Count, rep.Slow.Count, rep.TotalOps)
	}
	var perClient int64
	for _, c := range rep.PerClient {
		perClient += c.Ops
		if c.Replica != c.Client%3 {
			t.Fatalf("client %d pinned to replica %d", c.Client, c.Replica)
		}
	}
	if perClient != rep.TotalOps {
		t.Fatalf("per-client sum %d != total %d", perClient, rep.TotalOps)
	}
	var perKind int64
	for _, s := range rep.PerKind {
		perKind += s.Count
	}
	if perKind != rep.TotalOps {
		t.Fatalf("per-kind sum %d != total %d", perKind, rep.TotalOps)
	}
	if out := Format(rep); out == "" {
		t.Fatal("empty Format output")
	}
}

// TestRunWithInjection checks the mid-run fault path: the injection is
// applied, recorded, and the slow population is the injected replica's.
func TestRunWithInjection(t *testing.T) {
	srv, err := serve.New(serve.Config{N: 3, Object: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rep, err := Run(Config{
		BaseURL:  ts.URL,
		Clients:  3,
		Duration: 500 * time.Millisecond,
		Mix:      "add",
		Inject:   &Injection{Process: 1, Spec: "steady:500us", After: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injection == nil || rep.Injection.Error != "" {
		t.Fatalf("injection not applied: %+v", rep.Injection)
	}
	if rep.Injection.Process != 1 || rep.Injection.AtMS < 100 {
		t.Fatalf("injection record: %+v", rep.Injection)
	}
	if rep.Timely.Count == 0 || rep.Slow.Count == 0 {
		t.Fatalf("expected both populations: timely=%d slow=%d", rep.Timely.Count, rep.Slow.Count)
	}
	if rep.TimelyP99US != rep.Timely.P99US {
		t.Fatalf("TimelyP99US %v != Timely.P99US %v", rep.TimelyP99US, rep.Timely.P99US)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	srv, err := serve.New(serve.Config{N: 2, Object: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if _, err := Run(Config{BaseURL: "", Mix: "add"}); err == nil {
		t.Error("empty base URL accepted")
	}
	if _, err := Run(Config{BaseURL: ts.URL, Mix: "enq"}); err == nil {
		t.Error("mix kind foreign to the object accepted")
	}
	if _, err := Run(Config{BaseURL: ts.URL, Mix: "add=x"}); err == nil {
		t.Error("bad mix accepted")
	}
	if _, err := Run(Config{BaseURL: ts.URL, Mix: "add",
		Inject: &Injection{Process: 9, Spec: "steady"}}); err == nil {
		t.Error("out-of-range inject process accepted")
	}
	if _, err := Run(Config{BaseURL: ts.URL, Mix: "add",
		Inject: &Injection{Process: 0, Spec: "nope"}}); err == nil {
		t.Error("bad inject spec accepted")
	}
}

func TestParseDist(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	uni, err := ParseDist("uniform", 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for i := 0; i < 4000; i++ {
		k := uni(rng)
		if k < 0 || k >= 8 {
			t.Fatalf("uniform out of range: %d", k)
		}
		seen[k]++
	}
	if len(seen) != 8 {
		t.Fatalf("uniform hit %d of 8 keys", len(seen))
	}

	// Zipfian skew: rank 0 must dominate, and θ < 1 must be accepted
	// (math/rand's Zipf cannot do that; ours can).
	for _, theta := range []float64{0.8, 1.2} {
		z, err := ParseDist(fmt.Sprintf("zipf:%g", theta), 16)
		if err != nil {
			t.Fatalf("zipf:%g: %v", theta, err)
		}
		counts := make([]int, 16)
		for i := 0; i < 8000; i++ {
			counts[z(rng)]++
		}
		if counts[0] <= counts[8] || counts[0] <= 8000/16 {
			t.Fatalf("zipf:%g not skewed: %v", theta, counts)
		}
	}

	hot, err := ParseDist("hot:0.9", 4)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 2000; i++ {
		if hot(rng) == 0 {
			hits++
		}
	}
	if hits < 1700 {
		t.Fatalf("hot:0.9 sent only %d/2000 to key 0", hits)
	}

	for _, bad := range []string{
		"zipf:0", "zipf:-1", "zipf:NaN", "zipf:x", "zipf:",
		"hot:0", "hot:1.5", "hot:-0.1", "hot:x",
		"pareto", "zipf", "hot",
	} {
		if _, err := ParseDist(bad, 8); err == nil {
			t.Errorf("ParseDist(%q) accepted", bad)
		}
	}
	if _, err := ParseDist("uniform", 0); err == nil {
		t.Error("empty keyspace accepted")
	}
}

func TestValidateMix(t *testing.T) {
	if err := ValidateMix("add=9,get=1"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "add=0", "add=x"} {
		if err := ValidateMix(bad); err == nil {
			t.Errorf("ValidateMix(%q) accepted", bad)
		}
	}
}

// TestKeyedRunAgainstShardedServer drives the keyed API end to end: the
// report must carry the distribution and a per-shard breakdown whose
// totals reconcile with the run.
func TestKeyedRunAgainstShardedServer(t *testing.T) {
	srv, err := serve.New(serve.Config{N: 2, Object: "counter", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rep, err := Run(Config{
		BaseURL:  ts.URL,
		Clients:  4,
		Duration: 400 * time.Millisecond,
		Mix:      "add=8,get=2",
		Dist:     "zipf:1.0",
		Keys:     32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Distribution != "zipf:1.0" || rep.Keys != 32 || rep.Shards != 4 {
		t.Fatalf("keyed header: dist=%q keys=%d shards=%d", rep.Distribution, rep.Keys, rep.Shards)
	}
	if rep.TotalOps == 0 || rep.Errors != 0 {
		t.Fatalf("ops=%d errors=%d", rep.TotalOps, rep.Errors)
	}
	if len(rep.PerShard) != 4 {
		t.Fatalf("%d per-shard entries", len(rep.PerShard))
	}
	var shardOps, shardTimely int64
	for _, sl := range rep.PerShard {
		shardOps += sl.Ops
		shardTimely += sl.Timely.Count
		if sl.Slow.Count != 0 {
			t.Fatalf("no injection but shard %d has %d slow ops", sl.Shard, sl.Slow.Count)
		}
	}
	if shardOps != rep.TotalOps || shardTimely != rep.TotalOps {
		t.Fatalf("per-shard ops %d / timely %d != total %d", shardOps, shardTimely, rep.TotalOps)
	}
	if out := Format(rep); out == "" {
		t.Fatal("empty Format output")
	}
}

// TestKeyedRunNeedsShardedServer: pointing a keyed run at an unsharded
// server is a clear config error, not a stream of 400s.
func TestKeyedRunNeedsShardedServer(t *testing.T) {
	srv, err := serve.New(serve.Config{N: 2, Object: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if _, err := Run(Config{BaseURL: ts.URL, Mix: "add", Dist: "uniform"}); err == nil {
		t.Fatal("keyed run against unsharded server accepted")
	}
	// And a keyed mix kind foreign to the KV vocabulary is rejected.
	srv2, err := serve.New(serve.Config{N: 2, Object: "counter", Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Stop()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	if _, err := Run(Config{BaseURL: ts2.URL, Mix: "read", Dist: "uniform"}); err == nil {
		t.Fatal("unkeyed mix kind accepted for a keyed run")
	}
	if _, err := Run(Config{BaseURL: ts2.URL, Mix: "add", Dist: "zipf:0"}); err == nil {
		t.Fatal("bad zipf theta accepted")
	}
}
