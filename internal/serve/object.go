package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tbwf/internal/core"
	"tbwf/internal/deploy"
	"tbwf/internal/mpsc"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/qa"
)

// WireOp is the object-agnostic JSON encoding of one operation. Kind
// selects the operation; the other fields are read per object:
//
//	counter:  add(delta), read
//	register: read, write(value), cas(old,new)
//	snapshot: update(index,value), scan
//	jobqueue: enq(value), deq
type WireOp struct {
	Kind  string `json:"kind"`
	Delta int64  `json:"delta,omitempty"`
	Value int64  `json:"value,omitempty"`
	Old   int64  `json:"old,omitempty"`
	New   int64  `json:"new,omitempty"`
	Index int    `json:"index,omitempty"`
}

// ErrQueueFull is returned by a backend when a replica's bounded request
// queue is full — the service's backpressure signal (HTTP 503).
var ErrQueueFull = errors.New("serve: replica queue full")

// errNoReadOp marks objects without a read-only operation.
var errNoReadOp = errors.New("serve: object has no read-only operation")

// Pending is one in-flight request. Create with NewPending, Submit it,
// then either block on Done (the HTTP path) or Poll from a cooperative
// task (the simulation path — sim tasks must never block on channels).
type Pending struct {
	// Kind is the wire operation kind, for per-kind telemetry.
	Kind string
	// Tag is caller correlation data, carried through untouched (the
	// fuzzer's serve targets stamp submit-order sequence numbers here).
	Tag any

	start time.Time
	done  chan Result
}

// pendingPool recycles Pending slots (and their buffered completion
// channels), so the steady-state submit path allocates nothing.
// Ownership rule: a Pending may be Released only by the caller that
// received its Result — a caller that abandons a request (e.g. HTTP
// context cancellation while the op is queued) must NOT Release, because
// the worker still holds the Pending and will complete it; the abandoned
// Pending is simply garbage-collected.
var pendingPool = sync.Pool{
	New: func() any { return &Pending{done: make(chan Result, 1)} },
}

// NewPending prepares an in-flight request slot for one operation. The
// slot comes from a pool; callers that consume the Result may hand the
// slot back with Release.
func NewPending(kind string) *Pending {
	pd := pendingPool.Get().(*Pending)
	pd.Kind = kind
	pd.Tag = nil
	pd.start = time.Now()
	return pd
}

// Release returns the Pending to the pool. Only the caller that received
// the Result may call it, exactly once, and must not touch pd after.
func (pd *Pending) Release() {
	pd.Tag = nil
	pendingPool.Put(pd)
}

// Done exposes the completion channel; exactly one Result arrives.
func (pd *Pending) Done() <-chan Result { return pd.done }

// Poll returns the result without blocking; ok is false while the
// operation is still in flight.
func (pd *Pending) Poll() (Result, bool) {
	select {
	case r := <-pd.done:
		return r, true
	default:
		return Result{}, false
	}
}

// Result is one completed operation.
type Result struct {
	// Resp is the wire-encoded response (what /v1/invoke returns). It may
	// implement Releaser; the consumer that finishes with it (after JSON
	// encoding) should then hand it back to its pool.
	Resp any
	// Raw is the typed response R of the object's sequential type — the
	// fuzzer's linearizability oracle consumes this. Backends built with
	// DropRaw leave it nil to keep the live path free of interface boxing.
	Raw any
	// Latency is submit-to-completion wall time (meaningful on the live
	// substrate; on the simulation kernel it reflects host time, not
	// simulated steps).
	Latency time.Duration
}

// Releaser is implemented by pooled wire-response values; calling Release
// returns the value to its pool. Consumers must not touch the value
// afterwards.
type Releaser interface{ Release() }

// ReleaseResult returns the Result's pooled parts (currently the Resp
// struct) to their pools. Safe on any Result; the zero Result is a no-op.
func ReleaseResult(r Result) {
	if rel, ok := r.Resp.(Releaser); ok {
		rel.Release()
	}
}

// Hooks observe backend events. Both are optional and are called from
// substrate tasks (Served) or the submitter (Rejected), so they must not
// block.
type Hooks struct {
	// Served fires after replica p completes pd, before the result is
	// delivered.
	Served func(p int, pd *Pending, lat time.Duration)
	// Rejected fires when replica p's queue backpressures a submission.
	Rejected func(p int)
}

// Backend is the object-type-erased face of a deployed TBWF stack on any
// substrate; the generic tbwfBackend implements it for each sequential
// type.
type Backend interface {
	// Start spawns the per-replica worker tasks on the substrate.
	Start()
	// Submit decodes op and enqueues it for replica p; ErrQueueFull means
	// backpressure, other errors are bad requests. On success the result
	// arrives on pd.Done.
	Submit(p int, op WireOp, pd *Pending) error
	// ReadOp returns the object's canonical read-only operation, if any.
	ReadOp() (WireOp, error)
	// Kinds lists the operation kinds the object accepts.
	Kinds() []string
	QueueDepth(p int) int
	ClientStats(p int) core.Stats
	QAStats(p int) qa.HandleStats
	Slots() int64
	// Leaders is each process's current Ω∆ leader output (telemetry tap).
	Leaders() []int
	// FaultMatrix is the elector's per-pair fault/penalty matrix; ok is
	// false when the elector maintains none (e.g. abortable-registers Ω∆).
	FaultMatrix() (matrix [][]int64, ok bool)
	// ElectorName reports which Ω∆ implementation the stack runs on
	// ("atomic-registers", "abortable-registers", "nerio-lease", ...).
	ElectorName() string
}

// BackendConfig sizes a backend deployment.
type BackendConfig struct {
	// Object names the deployed type: one of Objects().
	Object string
	// QueueDepth bounds each replica's request queue (default 64).
	QueueDepth int
	// SnapshotComponents sizes the snapshot object (default: the
	// substrate's process count).
	SnapshotComponents int
	// DropRaw leaves Result.Raw nil. The HTTP path sets it: only the
	// fuzzer's linearizability oracle reads Raw, and boxing every typed
	// response into an interface is an allocation per op.
	DropRaw bool
	// Build configures the TBWF stack (elector, register options).
	Build deploy.BuildConfig
}

// NewBackend deploys the named object's TBWF stack on the substrate and
// returns its wire-protocol face. Call Start to spawn the replica
// workers.
func NewBackend(sub prim.Substrate, cfg BackendConfig, hooks Hooks) (Backend, error) {
	build, ok := objectBuilders[cfg.Object]
	if !ok {
		return nil, fmt.Errorf("serve: unknown object %q (have %v)", cfg.Object, Objects())
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.SnapshotComponents <= 0 {
		cfg.SnapshotComponents = sub.N()
	}
	return build(sub, cfg, hooks)
}

// queued pairs a decoded operation with its in-flight slot inside a
// replica's request queue. The queue itself is the repo's single bounded
// MPSC implementation (internal/mpsc): lock-free pushes from any number
// of submitters, pop order exactly equal to linearized push order (the
// fuzzer's FIFO oracle), and non-blocking polls so simulation-kernel
// tasks never block outside the kernel's own scheduling (the cardinal
// sim rule).
type queued[O any] struct {
	op O
	pd *Pending
}

// tbwfBackend adapts one deploy.Stack to the wire protocol: a bounded
// request queue and a single worker task per replica (a process's
// operations must all flow through its one client, from its own task).
// The worker polls its ring and spends a substrate step when the ring is
// empty — the paper's model has no idle wait, a process either takes
// protocol steps or it is untimely, and the poll loop makes the worker's
// timeliness directly observable by Ω∆ on both substrates.
type tbwfBackend[S, O, R any] struct {
	sub     prim.Substrate
	hooks   Hooks
	stack   *deploy.Stack[S, O, R]
	decode  func(WireOp) (O, error)
	encode  func(R) any
	read    *WireOp // nil: no read-only op
	kindsL  []string
	dropRaw bool
	queues  []*mpsc.Queue[queued[O]]
}

// workerBatch bounds how many queued items one worker wake drains before
// re-checking its queue: enough to amortize the queue poll, small enough
// to keep a replica's latency tail bounded under bursts.
const workerBatch = 32

func newBackend[S, O, R any](sub prim.Substrate, cfg BackendConfig, hooks Hooks, typ qa.Type[S, O, R],
	decode func(WireOp) (O, error), encode func(R) any, read *WireOp, kinds []string) (*tbwfBackend[S, O, R], error) {
	stack, err := deploy.Build[S, O, R](sub, typ, cfg.Build)
	if err != nil {
		return nil, err
	}
	b := &tbwfBackend[S, O, R]{
		sub:     sub,
		hooks:   hooks,
		stack:   stack,
		decode:  decode,
		encode:  encode,
		read:    read,
		kindsL:  kinds,
		dropRaw: cfg.DropRaw,
		queues:  make([]*mpsc.Queue[queued[O]], sub.N()),
	}
	for p := range b.queues {
		b.queues[p] = mpsc.New[queued[O]](cfg.QueueDepth)
	}
	return b, nil
}

func (b *tbwfBackend[S, O, R]) Start() {
	for p := 0; p < b.sub.N(); p++ {
		p := p
		q := b.queues[p]
		client := b.stack.Clients[p]
		b.sub.Spawn(p, fmt.Sprintf("serve-worker[%d]", p), func(pp prim.Proc) {
			batch := make([]queued[O], workerBatch)
			for {
				n := q.PopBatch(batch)
				if n == 0 {
					pp.Step() // unwinds via prim.ExitTask on stop/crash/budget
					continue
				}
				// One queue wake services the whole run of queued ops,
				// mirroring internal/shard's batch amortization; each op
				// still gets its own Invoke (the serve layer's objects are
				// not batch-typed).
				for i := 0; i < n; i++ {
					item := batch[i]
					batch[i] = queued[O]{} // don't retain the Pending
					r := client.Invoke(pp, item.op)
					lat := time.Since(item.pd.start)
					if b.hooks.Served != nil {
						b.hooks.Served(p, item.pd, lat)
					}
					res := Result{Resp: b.encode(r), Latency: lat}
					if !b.dropRaw {
						res.Raw = r
					}
					item.pd.done <- res
				}
			}
		})
	}
}

func (b *tbwfBackend[S, O, R]) Submit(p int, op WireOp, pd *Pending) error {
	decoded, err := b.decode(op)
	if err != nil {
		return err
	}
	if !b.queues[p].Push(queued[O]{op: decoded, pd: pd}) {
		if b.hooks.Rejected != nil {
			b.hooks.Rejected(p)
		}
		return ErrQueueFull
	}
	return nil
}

func (b *tbwfBackend[S, O, R]) ReadOp() (WireOp, error) {
	if b.read == nil {
		return WireOp{}, errNoReadOp
	}
	return *b.read, nil
}

func (b *tbwfBackend[S, O, R]) Kinds() []string      { return b.kindsL }
func (b *tbwfBackend[S, O, R]) QueueDepth(p int) int { return b.queues[p].Len() }
func (b *tbwfBackend[S, O, R]) ClientStats(p int) core.Stats {
	return b.stack.Clients[p].Stats()
}
func (b *tbwfBackend[S, O, R]) QAStats(p int) qa.HandleStats {
	return b.stack.Object.Handle(p).Stats()
}
func (b *tbwfBackend[S, O, R]) Slots() int64   { return b.stack.Object.Slots() }
func (b *tbwfBackend[S, O, R]) Leaders() []int { return b.stack.Leaders() }
func (b *tbwfBackend[S, O, R]) FaultMatrix() ([][]int64, bool) {
	return b.stack.FaultMatrix()
}
func (b *tbwfBackend[S, O, R]) ElectorName() string { return b.stack.Elector.Name() }

// Objects returns the deployable object names, sorted.
func Objects() []string {
	names := make([]string, 0, len(objectBuilders))
	for name := range objectBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var objectBuilders = map[string]func(sub prim.Substrate, cfg BackendConfig, hooks Hooks) (Backend, error){
	"counter":  buildCounter,
	"register": buildRegister,
	"snapshot": buildSnapshot,
	"jobqueue": buildJobQueue,
}

// Pooled wire-response structs. The builders' encode closures used to
// allocate a map[string]… per served op; these produce the identical JSON
// shapes from pooled values that the HTTP handler releases after
// encoding (see ReleaseResult), so a steady-state op allocates nothing.

type counterResp struct {
	Prev int64 `json:"prev"`
}

var counterRespPool = sync.Pool{New: func() any { return new(counterResp) }}

func (c *counterResp) Release() { counterRespPool.Put(c) }

type registerResp struct {
	Prev    int64 `json:"prev"`
	Swapped bool  `json:"swapped"`
}

var registerRespPool = sync.Pool{New: func() any { return new(registerResp) }}

func (c *registerResp) Release() { registerRespPool.Put(c) }

type snapViewResp struct {
	View []int64 `json:"view"`
}

var snapViewRespPool = sync.Pool{New: func() any { return new(snapViewResp) }}

func (c *snapViewResp) Release() { c.View = nil; snapViewRespPool.Put(c) }

type snapPrevResp struct {
	Prev int64 `json:"prev"`
}

var snapPrevRespPool = sync.Pool{New: func() any { return new(snapPrevResp) }}

func (c *snapPrevResp) Release() { snapPrevRespPool.Put(c) }

type jobqueueResp struct {
	Value int64 `json:"value"`
	Ok    bool  `json:"ok"`
}

var jobqueueRespPool = sync.Pool{New: func() any { return new(jobqueueResp) }}

func (c *jobqueueResp) Release() { jobqueueRespPool.Put(c) }

func buildCounter(sub prim.Substrate, cfg BackendConfig, hooks Hooks) (Backend, error) {
	readOp := WireOp{Kind: "read"}
	return newBackend[int64, objtype.CounterOp, int64](sub, cfg, hooks, objtype.Counter{},
		func(op WireOp) (objtype.CounterOp, error) {
			switch op.Kind {
			case "add":
				return objtype.CounterOp{Delta: op.Delta}, nil
			case "read":
				return objtype.CounterOp{}, nil
			}
			return objtype.CounterOp{}, fmt.Errorf("serve: counter op kind %q (want add or read)", op.Kind)
		},
		func(r int64) any {
			c := counterRespPool.Get().(*counterResp)
			c.Prev = r
			return c
		},
		&readOp, []string{"add", "read"})
}

func buildRegister(sub prim.Substrate, cfg BackendConfig, hooks Hooks) (Backend, error) {
	readOp := WireOp{Kind: "read"}
	return newBackend[int64, objtype.RegOp, objtype.RegResp](sub, cfg, hooks, objtype.Register{},
		func(op WireOp) (objtype.RegOp, error) {
			switch op.Kind {
			case "read":
				return objtype.RegOp{Kind: objtype.RegRead}, nil
			case "write":
				return objtype.RegOp{Kind: objtype.RegWrite, New: op.Value}, nil
			case "cas":
				return objtype.RegOp{Kind: objtype.RegCAS, Old: op.Old, New: op.New}, nil
			}
			return objtype.RegOp{}, fmt.Errorf("serve: register op kind %q (want read, write or cas)", op.Kind)
		},
		func(r objtype.RegResp) any {
			c := registerRespPool.Get().(*registerResp)
			c.Prev, c.Swapped = r.Prev, r.Swapped
			return c
		},
		&readOp, []string{"read", "write", "cas"})
}

func buildSnapshot(sub prim.Substrate, cfg BackendConfig, hooks Hooks) (Backend, error) {
	m := cfg.SnapshotComponents
	readOp := WireOp{Kind: "scan"}
	return newBackend[[]int64, objtype.SnapOp, objtype.SnapResp](sub, cfg, hooks, objtype.Snapshot{Components: m},
		func(op WireOp) (objtype.SnapOp, error) {
			switch op.Kind {
			case "update":
				if op.Index < 0 || op.Index >= m {
					return objtype.SnapOp{}, fmt.Errorf("serve: snapshot index %d out of range [0,%d)", op.Index, m)
				}
				return objtype.SnapOp{Update: true, Index: op.Index, V: op.Value}, nil
			case "scan":
				return objtype.SnapOp{}, nil
			}
			return objtype.SnapOp{}, fmt.Errorf("serve: snapshot op kind %q (want update or scan)", op.Kind)
		},
		func(r objtype.SnapResp) any {
			if r.View != nil {
				c := snapViewRespPool.Get().(*snapViewResp)
				c.View = r.View
				return c
			}
			c := snapPrevRespPool.Get().(*snapPrevResp)
			c.Prev = r.Prev
			return c
		},
		&readOp, []string{"update", "scan"})
}

func buildJobQueue(sub prim.Substrate, cfg BackendConfig, hooks Hooks) (Backend, error) {
	return newBackend[[]int64, objtype.QueueOp, objtype.QueueResp](sub, cfg, hooks, objtype.Queue{},
		func(op WireOp) (objtype.QueueOp, error) {
			switch op.Kind {
			case "enq":
				return objtype.QueueOp{Enq: true, V: op.Value}, nil
			case "deq":
				return objtype.QueueOp{}, nil
			}
			return objtype.QueueOp{}, fmt.Errorf("serve: jobqueue op kind %q (want enq or deq)", op.Kind)
		},
		func(r objtype.QueueResp) any {
			c := jobqueueRespPool.Get().(*jobqueueResp)
			c.Value, c.Ok = r.V, r.Ok
			return c
		},
		nil, []string{"enq", "deq"})
}
