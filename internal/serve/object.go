package serve

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tbwf/internal/core"
	"tbwf/internal/objtype"
	"tbwf/internal/omega"
	"tbwf/internal/prim"
	"tbwf/internal/qa"
	"tbwf/internal/rt"
)

// WireOp is the object-agnostic JSON encoding of one operation. Kind
// selects the operation; the other fields are read per object:
//
//	counter:  add(delta), read
//	register: read, write(value), cas(old,new)
//	snapshot: update(index,value), scan
//	jobqueue: enq(value), deq
type WireOp struct {
	Kind  string `json:"kind"`
	Delta int64  `json:"delta,omitempty"`
	Value int64  `json:"value,omitempty"`
	Old   int64  `json:"old,omitempty"`
	New   int64  `json:"new,omitempty"`
	Index int    `json:"index,omitempty"`
}

// ErrQueueFull is returned by a backend when a replica's bounded request
// queue is full — the service's backpressure signal (HTTP 503).
var ErrQueueFull = errors.New("serve: replica queue full")

// errNoReadOp marks objects without a read-only operation.
var errNoReadOp = errors.New("serve: object has no read-only operation")

// pending is one in-flight request: filled in by the replica worker.
type pending struct {
	replica int
	kind    string
	start   time.Time
	done    chan result
}

type result struct {
	resp    any
	latency time.Duration
}

// backend is the object-type-erased face of a deployed TBWF stack; the
// generic tbwfBackend implements it for each sequential type.
type backend interface {
	// start spawns the per-replica worker tasks on the runtime.
	start()
	// submit decodes op and enqueues it for replica p; ErrQueueFull means
	// backpressure, other errors are bad requests. On success the result
	// arrives on pd.done.
	submit(p int, op WireOp, pd *pending) error
	// readOp returns the object's canonical read-only operation, or
	// errNoReadOp.
	readOp() (WireOp, error)
	// kinds lists the operation kinds the object accepts.
	kinds() []string
	queueDepth(p int) int
	clientStats(p int) core.Stats
	qaStats(p int) qa.HandleStats
	slots() int64
	deployment() *omega.Deployment
}

// tbwfBackend adapts one rt.TBWFStack to the wire protocol: a bounded
// request queue and a single worker task per replica (a process's
// operations must all flow through its one client, from its own task).
type tbwfBackend[S, O, R any] struct {
	srv    *Server
	stack  *rt.TBWFStack[S, O, R]
	decode func(WireOp) (O, error)
	encode func(R) any
	read   *WireOp // nil: no read-only op
	kindsL []string
	queues []chan queued[O]
}

type queued[O any] struct {
	op O
	pd *pending
}

func newBackend[S, O, R any](srv *Server, typ qa.Type[S, O, R],
	decode func(WireOp) (O, error), encode func(R) any, read *WireOp, kinds []string) (*tbwfBackend[S, O, R], error) {
	stack, err := rt.BuildTBWF[S, O, R](srv.rt, typ)
	if err != nil {
		return nil, err
	}
	b := &tbwfBackend[S, O, R]{
		srv:    srv,
		stack:  stack,
		decode: decode,
		encode: encode,
		read:   read,
		kindsL: kinds,
		queues: make([]chan queued[O], srv.cfg.N),
	}
	for p := range b.queues {
		b.queues[p] = make(chan queued[O], srv.cfg.QueueDepth)
	}
	return b, nil
}

func (b *tbwfBackend[S, O, R]) start() {
	for p := 0; p < b.srv.cfg.N; p++ {
		p := p
		q := b.queues[p]
		client := b.stack.Clients[p]
		b.srv.rt.Spawn(p, fmt.Sprintf("serve-worker[%d]", p), func(pp prim.Proc) {
			for {
				select {
				case item := <-q:
					r := client.Invoke(pp, item.op)
					lat := time.Since(item.pd.start)
					b.srv.metrics.recordServed(p, item.pd.kind, lat)
					item.pd.done <- result{resp: b.encode(r), latency: lat}
				case <-b.srv.rt.Stopping():
					return
				}
			}
		})
	}
}

func (b *tbwfBackend[S, O, R]) submit(p int, op WireOp, pd *pending) error {
	decoded, err := b.decode(op)
	if err != nil {
		return err
	}
	select {
	case b.queues[p] <- queued[O]{op: decoded, pd: pd}:
		return nil
	default:
		b.srv.metrics.recordRejected(p)
		return ErrQueueFull
	}
}

func (b *tbwfBackend[S, O, R]) readOp() (WireOp, error) {
	if b.read == nil {
		return WireOp{}, errNoReadOp
	}
	return *b.read, nil
}

func (b *tbwfBackend[S, O, R]) kinds() []string      { return b.kindsL }
func (b *tbwfBackend[S, O, R]) queueDepth(p int) int { return len(b.queues[p]) }
func (b *tbwfBackend[S, O, R]) clientStats(p int) core.Stats {
	return b.stack.Clients[p].Stats()
}
func (b *tbwfBackend[S, O, R]) qaStats(p int) qa.HandleStats {
	return b.stack.Object.Handle(p).Stats()
}
func (b *tbwfBackend[S, O, R]) slots() int64                  { return b.stack.Object.Slots() }
func (b *tbwfBackend[S, O, R]) deployment() *omega.Deployment { return b.stack.Omega }

// Objects returns the deployable object names, sorted.
func Objects() []string {
	names := make([]string, 0, len(objectBuilders))
	for name := range objectBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var objectBuilders = map[string]func(srv *Server) (backend, error){
	"counter":  buildCounter,
	"register": buildRegister,
	"snapshot": buildSnapshot,
	"jobqueue": buildJobQueue,
}

func buildCounter(srv *Server) (backend, error) {
	readOp := WireOp{Kind: "read"}
	return newBackend[int64, objtype.CounterOp, int64](srv, objtype.Counter{},
		func(op WireOp) (objtype.CounterOp, error) {
			switch op.Kind {
			case "add":
				return objtype.CounterOp{Delta: op.Delta}, nil
			case "read":
				return objtype.CounterOp{}, nil
			}
			return objtype.CounterOp{}, fmt.Errorf("serve: counter op kind %q (want add or read)", op.Kind)
		},
		func(r int64) any { return map[string]int64{"prev": r} },
		&readOp, []string{"add", "read"})
}

func buildRegister(srv *Server) (backend, error) {
	readOp := WireOp{Kind: "read"}
	return newBackend[int64, objtype.RegOp, objtype.RegResp](srv, objtype.Register{},
		func(op WireOp) (objtype.RegOp, error) {
			switch op.Kind {
			case "read":
				return objtype.RegOp{Kind: objtype.RegRead}, nil
			case "write":
				return objtype.RegOp{Kind: objtype.RegWrite, New: op.Value}, nil
			case "cas":
				return objtype.RegOp{Kind: objtype.RegCAS, Old: op.Old, New: op.New}, nil
			}
			return objtype.RegOp{}, fmt.Errorf("serve: register op kind %q (want read, write or cas)", op.Kind)
		},
		func(r objtype.RegResp) any {
			return map[string]any{"prev": r.Prev, "swapped": r.Swapped}
		},
		&readOp, []string{"read", "write", "cas"})
}

func buildSnapshot(srv *Server) (backend, error) {
	m := srv.cfg.SnapshotComponents
	if m <= 0 {
		m = srv.cfg.N
	}
	readOp := WireOp{Kind: "scan"}
	return newBackend[[]int64, objtype.SnapOp, objtype.SnapResp](srv, objtype.Snapshot{Components: m},
		func(op WireOp) (objtype.SnapOp, error) {
			switch op.Kind {
			case "update":
				if op.Index < 0 || op.Index >= m {
					return objtype.SnapOp{}, fmt.Errorf("serve: snapshot index %d out of range [0,%d)", op.Index, m)
				}
				return objtype.SnapOp{Update: true, Index: op.Index, V: op.Value}, nil
			case "scan":
				return objtype.SnapOp{}, nil
			}
			return objtype.SnapOp{}, fmt.Errorf("serve: snapshot op kind %q (want update or scan)", op.Kind)
		},
		func(r objtype.SnapResp) any {
			if r.View != nil {
				return map[string]any{"view": r.View}
			}
			return map[string]any{"prev": r.Prev}
		},
		&readOp, []string{"update", "scan"})
}

func buildJobQueue(srv *Server) (backend, error) {
	return newBackend[[]int64, objtype.QueueOp, objtype.QueueResp](srv, objtype.Queue{},
		func(op WireOp) (objtype.QueueOp, error) {
			switch op.Kind {
			case "enq":
				return objtype.QueueOp{Enq: true, V: op.Value}, nil
			case "deq":
				return objtype.QueueOp{}, nil
			}
			return objtype.QueueOp{}, fmt.Errorf("serve: jobqueue op kind %q (want enq or deq)", op.Kind)
		},
		func(r objtype.QueueResp) any {
			return map[string]any{"value": r.V, "ok": r.Ok}
		},
		nil, []string{"enq", "deq"})
}
