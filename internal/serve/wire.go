package serve

import (
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/qa"
)

// The qa log's vote and decision registers carry Accepted[O]/Decision[O]
// values as `any`; on the net substrate's TCP transport those cross gob
// frames, which needs every concrete instantiation registered. The serve
// layer is the composition root that knows which object types deploy, so
// the registrations live here — one pair per deployable operation type.
func init() {
	prim.RegisterWireType(qa.Accepted[objtype.CounterOp]{})
	prim.RegisterWireType(qa.Decision[objtype.CounterOp]{})
	prim.RegisterWireType(qa.Accepted[objtype.RegOp]{})
	prim.RegisterWireType(qa.Decision[objtype.RegOp]{})
	prim.RegisterWireType(qa.Accepted[objtype.QueueOp]{})
	prim.RegisterWireType(qa.Decision[objtype.QueueOp]{})
	prim.RegisterWireType(qa.Accepted[objtype.SnapOp]{})
	prim.RegisterWireType(qa.Decision[objtype.SnapOp]{})
}
