package serve

// The sharded keyed API. With Config.Shards > 0 the server deploys an
// internal/shard.Map next to the unsharded backend: S independent TBWF
// stacks over the same N replicas, a hash of the key picking the stack.
// Replica workers fold queued keyed ops into batches — one Ω∆ leader
// read and one QA agreement round per batch — and admission control
// sheds overload before it reaches a queue:
//
//	POST /v1/kv/invoke  {"key":"k42","op":{"kind":"add","delta":1}}
//	GET  /v1/kv/read?key=k42
//
// A rate-limited submission answers 429 (the client should slow down);
// a full replica queue or a tripped global in-flight cap answers 503
// (the service is overloaded). Both carry Retry-After.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"tbwf/internal/shard"
)

// KVKinds lists the keyed API's operation kinds, in wire order. Surfaced
// in /v1/stats so load generators can validate a mix before opening fire.
func KVKinds() []string { return []string{"get", "put", "add", "cas"} }

// ParseAdmission compiles an admission spec of comma-separated
// key=value terms into a shard.Admission:
//
//	rate=R       token-bucket refill rate, ops/sec (fractional ok)
//	burst=B      bucket capacity (needs rate; default 1)
//	inflight=M   global cap on admitted-but-incomplete operations
//
// The empty spec admits everything.
func ParseAdmission(spec string) (shard.Admission, error) {
	var a shard.Admission
	if spec == "" {
		return a, nil
	}
	var rate float64
	for _, term := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok {
			return a, fmt.Errorf("serve: admission term %q: want key=value", term)
		}
		switch k {
		case "rate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				return a, fmt.Errorf("serve: admission rate %q: want a positive ops/sec", v)
			}
			rate = f
		case "burst":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				return a, fmt.Errorf("serve: admission burst %q: want a positive integer", v)
			}
			a.Burst = n
		case "inflight":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				return a, fmt.Errorf("serve: admission inflight %q: want a positive integer", v)
			}
			a.MaxInFlight = n
		default:
			return a, fmt.Errorf("serve: unknown admission key %q (want rate, burst, or inflight)", k)
		}
	}
	if a.Burst > 0 && rate == 0 {
		return a, fmt.Errorf("serve: admission burst without rate")
	}
	if rate > 0 {
		a.RefillEvery = int64(1e9 / rate)
		if a.RefillEvery < 1 {
			a.RefillEvery = 1
		}
	}
	return a, nil
}

// decodeKVOp maps a WireOp onto the keyed object's vocabulary, reusing
// the unsharded API's field names: add carries delta, put value, cas
// old and new.
func decodeKVOp(op WireOp) (shard.Op, error) {
	switch op.Kind {
	case "get":
		return shard.Op{Kind: shard.Get}, nil
	case "put":
		return shard.Op{Kind: shard.Put, Val: op.Value}, nil
	case "add":
		return shard.Op{Kind: shard.Add, Val: op.Delta}, nil
	case "cas":
		return shard.Op{Kind: shard.CAS, Old: op.Old, Val: op.New}, nil
	default:
		return shard.Op{}, fmt.Errorf("serve: kv op kind %q (want one of %v)", op.Kind, KVKinds())
	}
}

type kvInvokeRequest struct {
	Key string `json:"key"`
	// Replica routes the operation; nil or -1 round-robins in the shard.
	Replica *int   `json:"replica"`
	Op      WireOp `json:"op"`
}

type kvWireResp struct {
	Prev    int64 `json:"prev"`
	Found   bool  `json:"found"`
	Swapped bool  `json:"swapped"`
}

type kvInvokeResponse struct {
	OK        bool       `json:"ok"`
	Shard     int        `json:"shard"`
	Replica   int        `json:"replica"`
	Resp      kvWireResp `json:"resp"`
	LatencyUS float64    `json:"latency_us"`
}

// dispatchKV runs one admitted-or-shed keyed operation to completion.
func (s *Server) dispatchKV(w http.ResponseWriter, r *http.Request, key string, replica int, op shard.Op) {
	pd := shard.NewPending()
	sh, p, err := s.kv.Submit(key, replica, op, pd)
	if err != nil {
		switch err {
		case shard.ErrRateLimited:
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"ok": false, "shard": sh, "error": err.Error(),
			})
		case shard.ErrQueueFull, shard.ErrInFlight:
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"ok": false, "shard": sh, "error": err.Error(),
			})
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	select {
	case res := <-pd.Done():
		writeJSON(w, http.StatusOK, kvInvokeResponse{
			OK:      true,
			Shard:   sh,
			Replica: p,
			Resp: kvWireResp{
				Prev:    res.Resp.Prev,
				Found:   res.Resp.Found,
				Swapped: res.Resp.Swapped,
			},
			LatencyUS: float64(res.Latency) / 1e3,
		})
	case <-r.Context().Done():
		// Client gone; the batch worker still completes the queued op and
		// the buffered done channel absorbs the result.
	case <-s.stopping:
		writeError(w, http.StatusServiceUnavailable, "server stopping")
	}
}

// kvGuard rejects keyed calls on an unsharded server.
func (s *Server) kvGuard(w http.ResponseWriter) bool {
	if s.kv == nil {
		writeError(w, http.StatusBadRequest, "server is not sharded (start with shards > 0)")
		return false
	}
	return true
}

func (s *Server) handleKVInvoke(w http.ResponseWriter, r *http.Request) {
	if !s.kvGuard(w) {
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req kvInvokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Key == "" {
		writeError(w, http.StatusBadRequest, "missing key")
		return
	}
	op, err := decodeKVOp(req.Op)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	replica := -1
	if req.Replica != nil {
		replica = *req.Replica
	}
	s.dispatchKV(w, r, req.Key, replica, op)
}

func (s *Server) handleKVRead(w http.ResponseWriter, r *http.Request) {
	if !s.kvGuard(w) {
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, "missing key")
		return
	}
	replica := -1
	if q := r.URL.Query().Get("replica"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad replica %q", q)
			return
		}
		replica = v
	}
	s.dispatchKV(w, r, key, replica, shard.Op{Kind: shard.Get})
}
