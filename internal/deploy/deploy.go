// Package deploy is the single composition root for TBWF object stacks:
// one generic Build that wires Ω∆ (any registered elector), the
// query-abortable object, and the per-process clients on *any*
// prim.Substrate — the deterministic simulation kernel (via Sim) or the
// live real-time runtime (rt.Runtime is itself a Substrate).
//
// The point, per the paper and per Alistarh et al.'s observation that
// progress is a property of the scheduler as much as of the code, is that
// exactly the same wiring runs under both schedulers: tests and the
// schedule-space fuzzer explore the very stack the service layer runs
// hot. Before this package, internal/core (sim) and internal/rt (live)
// each had their own divergent builder; both now delegate here or are
// gone.
//
// Which Ω∆ implementation backs the stack is an open extension point, not
// an enum: BuildConfig carries an elector.Builder, and the stack exposes
// only the elector.Elector telemetry surface. deploy itself contains no
// elector-specific code.
package deploy

import (
	"fmt"

	"tbwf/internal/core"
	"tbwf/internal/elector"
	"tbwf/internal/omega"
	"tbwf/internal/prim"
	"tbwf/internal/qa"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// Sim adapts a simulation kernel to prim.Substrate. It is
// register.Substrate re-exported under the deployment vocabulary:
// deploy.Build(deploy.Sim(k), ...) is the sim composition root.
func Sim(k *sim.Kernel) prim.Substrate { return register.Substrate(k) }

// BuildConfig configures a TBWF stack.
type BuildConfig struct {
	// Elector builds the stack's Ω∆ implementation; nil defaults to
	// elector.Atomic (the paper's Figure 3 construction).
	Elector elector.Builder
	// NonCanonical disables the Figure 7 line 2 wait (experiment E7 only).
	NonCanonical bool
	// RegisterOptions apply to every abortable register in the stack
	// (the qa object's, and Ω∆'s when the elector uses abortable
	// registers).
	RegisterOptions []register.AbOption
}

// Stack is a fully wired TBWF object deployment: Ω∆ (its tasks already
// spawned), the underlying query-abortable object, and one client per
// process. Client *tasks* are not spawned — the caller drives
// Clients[p].Invoke from its own workload tasks.
type Stack[S, O, R any] struct {
	// Elector is the deployed Ω∆ implementation; telemetry layers tap
	// leader outputs and fault counters through it.
	Elector elector.Elector
	// Instances[p] is process p's Ω∆ endpoint.
	Instances []*omega.Instance
	// Object is the shared query-abortable object.
	Object *qa.SharedObject[S, O, R]
	// Clients[p] is process p's TBWF endpoint.
	Clients []*core.Client[S, O, R]
}

// Build wires a TBWF object of the given sequential type for every
// process of the substrate.
func Build[S, O, R any](sub prim.Substrate, typ qa.Type[S, O, R], cfg BuildConfig) (*Stack[S, O, R], error) {
	builder := cfg.Elector
	if builder == nil {
		builder = elector.Atomic
	}
	n := sub.N()
	el, err := builder.Build(sub, elector.Config{RegisterOptions: cfg.RegisterOptions})
	if err != nil {
		return nil, fmt.Errorf("deploy: build elector %s: %w", builder.FlagName(), err)
	}
	st := &Stack[S, O, R]{Elector: el, Instances: el.Instances()}
	if len(st.Instances) != n {
		return nil, fmt.Errorf("deploy: elector %s deployed %d endpoints on an n=%d substrate",
			el.Name(), len(st.Instances), n)
	}

	obj, err := qa.New(typ, n, qa.SubstrateFactories[O](sub, cfg.RegisterOptions...), 0)
	if err != nil {
		return nil, fmt.Errorf("deploy: build qa object: %w", err)
	}
	st.Object = obj

	st.Clients = make([]*core.Client[S, O, R], n)
	for p := 0; p < n; p++ {
		var c *core.Client[S, O, R]
		var err error
		if cfg.NonCanonical {
			c, err = core.NewClientNonCanonical(st.Instances[p], obj.Handle(p))
		} else {
			c, err = core.NewClient(st.Instances[p], obj.Handle(p))
		}
		if err != nil {
			return nil, fmt.Errorf("deploy: client %d: %w", p, err)
		}
		st.Clients[p] = c
	}
	return st, nil
}

// CompletedOps returns each client's completed-operation count.
func (st *Stack[S, O, R]) CompletedOps() []int64 {
	out := make([]int64, len(st.Clients))
	for p, c := range st.Clients {
		out[p] = c.Completed()
	}
	return out
}

// Leaders returns the current leader output of every process — a
// telemetry tap; it consumes no process steps. It works for every
// elector.
func (st *Stack[S, O, R]) Leaders() []int { return st.Elector.Leaders() }

// FaultMatrix returns the elector's per-pair fault/penalty matrix, or
// ok=false when the elector maintains none (the Figure 4–6 construction
// has no fault counters).
func (st *Stack[S, O, R]) FaultMatrix() ([][]int64, bool) {
	return st.Elector.FaultMatrix()
}
