// Package deploy is the single composition root for TBWF object stacks:
// one generic Build that wires Ω∆ (either implementation), the
// query-abortable object, and the per-process clients on *any*
// prim.Substrate — the deterministic simulation kernel (via Sim) or the
// live real-time runtime (rt.Runtime is itself a Substrate).
//
// The point, per the paper and per Alistarh et al.'s observation that
// progress is a property of the scheduler as much as of the code, is that
// exactly the same wiring runs under both schedulers: tests and the
// schedule-space fuzzer explore the very stack the service layer runs
// hot. Before this package, internal/core (sim) and internal/rt (live)
// each had their own divergent builder; both now delegate here or are
// gone.
package deploy

import (
	"fmt"

	"tbwf/internal/core"
	"tbwf/internal/omega"
	"tbwf/internal/omegaab"
	"tbwf/internal/prim"
	"tbwf/internal/qa"
	"tbwf/internal/register"
	"tbwf/internal/sim"
)

// Sim adapts a simulation kernel to prim.Substrate. It is
// register.Substrate re-exported under the deployment vocabulary:
// deploy.Build(deploy.Sim(k), ...) is the sim composition root.
func Sim(k *sim.Kernel) prim.Substrate { return register.Substrate(k) }

// OmegaKind selects which Ω∆ implementation a TBWF stack runs on.
type OmegaKind int

const (
	// OmegaRegisters is the Figure 3 implementation from activity
	// monitors and atomic registers (Section 5).
	OmegaRegisters OmegaKind = iota + 1
	// OmegaAbortable is the Figure 4–6 implementation from abortable
	// registers only (Section 6). Together with the qa construction it
	// realizes Theorem 15: a TBWF object of any type from abortable
	// registers alone.
	OmegaAbortable
)

// String names the kind.
func (k OmegaKind) String() string {
	switch k {
	case OmegaRegisters:
		return "atomic-registers"
	case OmegaAbortable:
		return "abortable-registers"
	default:
		return fmt.Sprintf("OmegaKind(%d)", int(k))
	}
}

// ParseOmegaKind maps the user-facing flag vocabulary ("atomic",
// "abortable"; "" defaults to atomic) to an OmegaKind, with an error that
// lists the accepted values.
func ParseOmegaKind(s string) (OmegaKind, error) {
	switch s {
	case "", "atomic":
		return OmegaRegisters, nil
	case "abortable":
		return OmegaAbortable, nil
	default:
		return 0, fmt.Errorf("unknown omega kind %q (accepted values: atomic, abortable)", s)
	}
}

// BuildConfig configures a TBWF stack.
type BuildConfig struct {
	// Kind selects the Ω∆ implementation; default OmegaRegisters.
	Kind OmegaKind
	// NonCanonical disables the Figure 7 line 2 wait (experiment E7 only).
	NonCanonical bool
	// RegisterOptions apply to every abortable register in the stack
	// (the qa object's, and Ω∆'s when Kind is OmegaAbortable).
	RegisterOptions []register.AbOption
}

// Stack is a fully wired TBWF object deployment: Ω∆ (its tasks already
// spawned), the underlying query-abortable object, and one client per
// process. Client *tasks* are not spawned — the caller drives
// Clients[p].Invoke from its own workload tasks.
type Stack[S, O, R any] struct {
	Kind OmegaKind
	// Instances[p] is process p's Ω∆ endpoint.
	Instances []*omega.Instance
	// Object is the shared query-abortable object.
	Object *qa.SharedObject[S, O, R]
	// Clients[p] is process p's TBWF endpoint.
	Clients []*core.Client[S, O, R]
	// Omega is the full atomic-register Ω∆ deployment (monitors
	// included), non-nil iff Kind is OmegaRegisters; telemetry layers tap
	// leader outputs and fault counters through it.
	Omega *omega.Deployment
	// OmegaAb is the abortable-register Ω∆ system, non-nil iff Kind is
	// OmegaAbortable.
	OmegaAb *omegaab.System
}

// Build wires a TBWF object of the given sequential type for every
// process of the substrate.
func Build[S, O, R any](sub prim.Substrate, typ qa.Type[S, O, R], cfg BuildConfig) (*Stack[S, O, R], error) {
	if cfg.Kind == 0 {
		cfg.Kind = OmegaRegisters
	}
	n := sub.N()
	st := &Stack[S, O, R]{Kind: cfg.Kind}
	switch cfg.Kind {
	case OmegaRegisters:
		dep, err := omega.BuildWith(n, sub, func(name string, init int64) prim.Register[int64] {
			return register.SubstrateAtomic(sub, name, init)
		}, omega.BuildOptions{})
		if err != nil {
			return nil, fmt.Errorf("deploy: build Ω∆ (registers): %w", err)
		}
		st.Instances = dep.Instances
		st.Omega = dep
	case OmegaAbortable:
		sys, err := omegaab.Build(sub, cfg.RegisterOptions...)
		if err != nil {
			return nil, fmt.Errorf("deploy: build Ω∆ (abortable): %w", err)
		}
		st.Instances = sys.Instances
		st.OmegaAb = sys
	default:
		return nil, fmt.Errorf("deploy: unknown omega kind %d", int(cfg.Kind))
	}

	obj, err := qa.New(typ, n, qa.SubstrateFactories[O](sub, cfg.RegisterOptions...), 0)
	if err != nil {
		return nil, fmt.Errorf("deploy: build qa object: %w", err)
	}
	st.Object = obj

	st.Clients = make([]*core.Client[S, O, R], n)
	for p := 0; p < n; p++ {
		var c *core.Client[S, O, R]
		var err error
		if cfg.NonCanonical {
			c, err = core.NewClientNonCanonical(st.Instances[p], obj.Handle(p))
		} else {
			c, err = core.NewClient(st.Instances[p], obj.Handle(p))
		}
		if err != nil {
			return nil, fmt.Errorf("deploy: client %d: %w", p, err)
		}
		st.Clients[p] = c
	}
	return st, nil
}

// CompletedOps returns each client's completed-operation count.
func (st *Stack[S, O, R]) CompletedOps() []int64 {
	out := make([]int64, len(st.Clients))
	for p, c := range st.Clients {
		out[p] = c.Completed()
	}
	return out
}

// Leaders returns the current leader output of every process — a
// telemetry tap; it consumes no process steps. It works for either Ω∆
// kind.
func (st *Stack[S, O, R]) Leaders() []int {
	out := make([]int, len(st.Instances))
	for p := range out {
		out[p] = st.Instances[p].Leader.Get()
	}
	return out
}

// FaultMatrix returns the activity monitors' fault-counter matrix, or nil
// when the stack's Ω∆ runs on abortable registers (Figures 4–6 have no
// fault counters).
func (st *Stack[S, O, R]) FaultMatrix() [][]int64 {
	if st.Omega == nil {
		return nil
	}
	return st.Omega.FaultMatrix()
}
