package deploy

import (
	"fmt"
	"testing"

	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// The whole stack is deterministic: two runs with the same seeds produce
// identical schedules, identical completion counts, and identical response
// streams — the property that makes every number in EXPERIMENTS.md
// reproducible.
func TestFullStackDeterminism(t *testing.T) {
	run := func() ([]int64, []int64) {
		const n = 3
		k := sim.New(n, sim.WithSchedule(sim.Random(31, nil)))
		st, err := Build[int64, objtype.CounterOp, int64](Sim(k), objtype.Counter{}, BuildConfig{})
		if err != nil {
			t.Fatal(err)
		}
		var responses []int64
		for p := 0; p < n; p++ {
			p := p
			k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
				for {
					responses = append(responses, st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1}))
				}
			})
		}
		if _, err := k.Run(600_000); err != nil {
			t.Fatal(err)
		}
		k.Shutdown()
		return st.CompletedOps(), responses
	}
	ops1, resp1 := run()
	ops2, resp2 := run()
	for p := range ops1 {
		if ops1[p] != ops2[p] {
			t.Fatalf("completion counts diverge at process %d: %v vs %v", p, ops1, ops2)
		}
	}
	if len(resp1) != len(resp2) {
		t.Fatalf("response streams have different lengths: %d vs %d", len(resp1), len(resp2))
	}
	for i := range resp1 {
		if resp1[i] != resp2[i] {
			t.Fatalf("response streams diverge at %d: %d vs %d", i, resp1[i], resp2[i])
		}
	}
}

// Soak: everything at once for a long run — an untimely process, a crash,
// a flickering-but-timely process, and continuous contention. Checked per
// segment: the healthy clients never stop progressing; globally: perfect
// fetch-and-add linearizability of all 10k+ responses.
func TestSoakMixedChurnAndCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n = 6
	k := sim.New(n, sim.WithSchedule(sim.Restrict(sim.Random(77, nil), map[int]sim.Availability{
		0: sim.GrowingGaps(500, 2_000, 1.5), // untimely forever
		2: sim.Flicker(20_000, 5_000, 0),    // bursty but timely
	})))
	st, err := Build[int64, objtype.CounterOp, int64](Sim(k), objtype.Counter{}, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	responses := make([][]int64, n)
	for p := 0; p < n; p++ {
		p := p
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			for {
				responses[p] = append(responses[p], st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1}))
			}
		})
	}
	k.CrashAt(1, 3_000_000)

	healthy := []int{3, 4, 5} // always-timely, never-crashed clients
	prev := make([]int64, n)
	for segment := 1; segment <= 5; segment++ {
		if _, err := k.Run(4_000_000); err != nil {
			t.Fatal(err)
		}
		for _, p := range healthy {
			got := st.Clients[p].Completed()
			if got == prev[p] {
				t.Fatalf("segment %d: healthy client %d made no progress (stuck at %d)", segment, p, got)
			}
			prev[p] = got
		}
	}
	k.Shutdown()

	seen := make(map[int64]bool, 1<<14)
	total := 0
	for p := 0; p < n; p++ {
		for _, r := range responses[p] {
			if seen[r] {
				t.Fatalf("duplicate fetch-and-add response %d after 20M steps", r)
			}
			seen[r] = true
			total++
		}
	}
	if total < 1000 {
		t.Fatalf("soak completed only %d ops; expected thousands", total)
	}
	t.Logf("soak: %d operations, all responses distinct; per-process %v", total, st.CompletedOps())
}
