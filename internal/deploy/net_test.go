package deploy

import (
	"fmt"
	"testing"

	"tbwf/internal/elector"
	"tbwf/internal/net"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// runNetStack builds a TBWF stack of one sequential type on a fabric-
// backed net substrate with the given elector, runs ops operations per
// process, and fails the test if any client falls short. It is the
// acceptance check that deploy.Build assembles the full stack on the
// message-passing substrate with zero algorithm-code changes.
func runNetStack[S, O, R any](t *testing.T, typ interface {
	Init() S
	Apply(S, O) (S, R)
}, eb elector.Builder, mkOp func(p int, i int64) O) {
	t.Helper()
	const n, ops = 3, 2
	k := sim.New(n)
	sub, _, err := net.NewFabric(k, net.FabricConfig{Seed: 11, MaxDelay: 2}, net.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build[S, O, R](sub, typ, BuildConfig{Elector: eb})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		p := p
		sub.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			for i := int64(0); i < ops; i++ {
				st.Clients[p].Invoke(pp, mkOp(p, i))
			}
		})
	}
	if _, err := k.Run(8_000_000); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()
	for p, c := range st.CompletedOps() {
		if c != ops {
			t.Errorf("process %d completed %d/%d ops", p, c, ops)
		}
	}
}

// Every object type assembles and settles on the net substrate with the
// default elector, and the counter assembles with every registered
// elector: both axes of the deploy matrix, third substrate.
func TestNetSubstrateAssemblesAllStacks(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-step fabric deployments skipped in -short mode")
	}
	t.Run("counter", func(t *testing.T) {
		t.Parallel()
		runNetStack[int64, objtype.CounterOp, int64](t, objtype.Counter{}, nil,
			func(p int, i int64) objtype.CounterOp { return objtype.CounterOp{Delta: 1} })
	})
	t.Run("register", func(t *testing.T) {
		t.Parallel()
		runNetStack[int64, objtype.RegOp, objtype.RegResp](t, objtype.Register{}, nil,
			func(p int, i int64) objtype.RegOp {
				return objtype.RegOp{Kind: objtype.RegWrite, New: int64(p*10) + i}
			})
	})
	t.Run("jobqueue", func(t *testing.T) {
		t.Parallel()
		runNetStack[[]int64, objtype.QueueOp, objtype.QueueResp](t, objtype.Queue{}, nil,
			func(p int, i int64) objtype.QueueOp {
				return objtype.QueueOp{Enq: i%2 == 0, V: int64(p*10) + i}
			})
	})
	t.Run("snapshot", func(t *testing.T) {
		t.Parallel()
		runNetStack[[]int64, objtype.SnapOp, objtype.SnapResp](t, objtype.Snapshot{Components: 3}, nil,
			func(p int, i int64) objtype.SnapOp {
				return objtype.SnapOp{Update: i%2 == 0, Index: p, V: i}
			})
	})
	for _, name := range elector.Names() {
		name := name
		t.Run("elector-"+name, func(t *testing.T) {
			t.Parallel()
			eb, err := elector.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			runNetStack[int64, objtype.CounterOp, int64](t, objtype.Counter{}, eb,
				func(p int, i int64) objtype.CounterOp { return objtype.CounterOp{Delta: 1} })
		})
	}
}
