package deploy

import (
	"fmt"
	"testing"

	"tbwf/internal/elector"
	"tbwf/internal/elector/electortest"
	"tbwf/internal/omega"
	"tbwf/internal/sim"
)

// Every registered elector passes the elector conformance suite on the
// simulation substrate. The harness pumps the kernel in slices; elector
// tasks loop forever, so an idle kernel means the deployment wedged.
func TestElectorConformanceSim(t *testing.T) {
	for _, name := range elector.Names() {
		builder, err := elector.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			electortest.Run(t, builder, func(t *testing.T) *electortest.Harness {
				k := sim.New(3)
				return &electortest.Harness{
					Sub: Sim(k),
					Run: func(done func() bool) error {
						for i := 0; i < 100; i++ {
							res, err := k.Run(100_000)
							if err != nil {
								return err
							}
							if done() {
								return nil
							}
							if res.Idle {
								return fmt.Errorf("kernel idle at step %d with the elector unsettled", res.Steps)
							}
						}
						return fmt.Errorf("step budget exhausted at %d with the elector unsettled", k.Step())
					},
				}
			})
		})
	}
}

// Every registered elector satisfies Definition 5 on a deterministic
// round-robin run with process 0 a permanent non-candidate: the recorded
// leader outputs, classified against the kernel's schedule, pass
// Recorder.CheckDefinition5 over the run's second half. This is the
// deterministic companion of the explore elector-* fuzz targets (which
// sweep adversarial schedules over the same scenario).
func TestElectorDefinition5Sim(t *testing.T) {
	const budget = 400_000
	for _, name := range elector.Names() {
		builder, err := elector.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			k := sim.New(3)
			el, err := builder.Build(Sim(k), elector.Config{})
			if err != nil {
				t.Fatal(err)
			}
			rec := omega.NewRecorder(el.Instances())
			obs := omega.NewObserver(el.Instances())
			k.AfterStep(rec.Sample)
			k.AfterStep(obs.Sample)
			for _, inst := range el.Instances()[1:] {
				inst.Candidate.Set(true)
			}
			if _, err := k.Run(budget); err != nil {
				t.Fatal(err)
			}
			const half = budget / 2
			if at := obs.StabilizedAt(); at > half {
				t.Fatalf("%s still settling at step %d (window from %d)", el.Name(), at, half)
			}
			rep := sim.Analyze(k.Trace().Schedule(), k.N())
			if viols := rec.CheckDefinition5(rep, 64, half, k.Crashed); len(viols) > 0 {
				t.Fatalf("%s violates Definition 5: %v", el.Name(), viols)
			}
		})
	}
}
