package deploy

import (
	"fmt"
	"testing"

	"tbwf/internal/elector"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// Failure-injection sweep: random schedules, random crash points — crashes
// may hit a process while it is the leader, mid-register-operation, or
// mid-protocol. Safety (distinct fetch-and-add responses) must hold in
// every run, and the surviving timely clients must keep completing
// operations after the crashes.
func TestCrashInjectionSweep(t *testing.T) {
	const n = 4
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			k := sim.New(n, sim.WithSchedule(sim.Random(seed, nil)))
			st, err := Build[int64, objtype.CounterOp, int64](Sim(k), objtype.Counter{}, BuildConfig{})
			if err != nil {
				t.Fatal(err)
			}
			var mu = make([][]int64, n)
			for p := 0; p < n; p++ {
				p := p
				k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
					for {
						r := st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
						mu[p] = append(mu[p], r)
					}
				})
			}
			// Two crashes at pseudo-random points derived from the seed —
			// deliberately while the system is busy.
			victim1 := int(seed % n)
			victim2 := int((seed + 2) % n)
			k.CrashAt(victim1, 100_000+10_000*seed)
			if victim2 != victim1 {
				k.CrashAt(victim2, 400_000+20_000*seed)
			}

			if _, err := k.Run(1_500_000); err != nil {
				t.Fatal(err)
			}
			mark := make([]int64, n)
			for p := 0; p < n; p++ {
				mark[p] = st.Clients[p].Completed()
			}
			if _, err := k.Run(1_500_000); err != nil {
				t.Fatal(err)
			}
			k.Shutdown()

			// Safety: all responses globally distinct.
			seen := map[int64]bool{}
			for p := 0; p < n; p++ {
				for _, r := range mu[p] {
					if seen[r] {
						t.Fatalf("duplicate fetch-and-add response %d (crash broke linearizability)", r)
					}
					seen[r] = true
				}
			}
			// Liveness: every surviving client progressed in the second
			// half, after all crashes were long absorbed.
			for p := 0; p < n; p++ {
				if k.Crashed(p) {
					continue
				}
				if got := st.Clients[p].Completed() - mark[p]; got == 0 {
					t.Errorf("survivor %d made no progress after the crashes (total %d)", p, st.Clients[p].Completed())
				}
			}
		})
	}
}

// The same sweep over the abortable-register stack, smaller and fewer
// seeds (it is an order of magnitude slower), with one crash.
func TestCrashInjectionAbortableStack(t *testing.T) {
	const n = 3
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			k := sim.New(n)
			st, err := Build[int64, objtype.CounterOp, int64](Sim(k), objtype.Counter{}, BuildConfig{Elector: elector.Abortable})
			if err != nil {
				t.Fatal(err)
			}
			resps := make([][]int64, n)
			for p := 0; p < n; p++ {
				p := p
				k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
					for {
						r := st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
						resps[p] = append(resps[p], r)
					}
				})
			}
			victim := int(seed % n)
			k.CrashAt(victim, 200_000*seed)
			if _, err := k.Run(4_000_000); err != nil {
				t.Fatal(err)
			}
			mark := make([]int64, n)
			for p := 0; p < n; p++ {
				mark[p] = st.Clients[p].Completed()
			}
			if _, err := k.Run(4_000_000); err != nil {
				t.Fatal(err)
			}
			k.Shutdown()

			seen := map[int64]bool{}
			for p := 0; p < n; p++ {
				for _, r := range resps[p] {
					if seen[r] {
						t.Fatalf("duplicate response %d", r)
					}
					seen[r] = true
				}
			}
			for p := 0; p < n; p++ {
				if !k.Crashed(p) && st.Clients[p].Completed() == mark[p] {
					t.Errorf("survivor %d stalled after crash of %d", p, victim)
				}
			}
		})
	}
}
