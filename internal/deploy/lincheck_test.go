package deploy

import (
	"fmt"
	"testing"

	"tbwf/internal/elector"
	"tbwf/internal/lincheck"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// The independent safety check: drive a TBWF register (write/CAS/read)
// with concurrent clients, record the real invocation/response step
// timestamps of every completed operation, and hand the history to the
// Wing–Gong checker, which knows nothing about the implementation's
// operation log.
func TestTBWFRegisterHistoryLinearizes(t *testing.T) {
	const n, opsEach = 3, 7
	k := sim.New(n, sim.WithSchedule(sim.Random(13, nil)))
	st, err := Build[int64, objtype.RegOp, objtype.RegResp](Sim(k), objtype.Register{}, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}

	var history []lincheck.Op[objtype.RegOp, objtype.RegResp]
	for p := 0; p < n; p++ {
		p := p
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			for i := 0; i < opsEach; i++ {
				var op objtype.RegOp
				switch i % 3 {
				case 0:
					op = objtype.RegOp{Kind: objtype.RegWrite, New: int64(100*p + i)}
				case 1:
					op = objtype.RegOp{Kind: objtype.RegRead}
				default:
					// CAS against whatever we last read is racy on
					// purpose; the response tells us whether it won.
					op = objtype.RegOp{Kind: objtype.RegCAS, Old: int64(100*p + i - 2), New: int64(100*p + i)}
				}
				invoke := k.Step()
				resp := st.Clients[p].Invoke(pp, op)
				history = append(history, lincheck.Op[objtype.RegOp, objtype.RegResp]{
					Proc: p, Invoke: invoke, Response: k.Step(), Arg: op, Resp: resp,
				})
			}
		})
	}
	if _, err := k.Run(8_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()

	if len(history) != n*opsEach {
		t.Fatalf("collected %d ops, want %d (clients did not finish)", len(history), n*opsEach)
	}
	order, ok, err := lincheck.Check[int64](objtype.Register{}, history, lincheck.Options[int64, objtype.RegResp]{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("TBWF register history is not linearizable:\n%+v", history)
	}
	if len(order) != len(history) {
		t.Fatalf("linearization covers %d of %d ops", len(order), len(history))
	}
}

// Same check for the abortable-register stack (Theorem 15 end to end) on a
// smaller history.
func TestTBWFAbortableStackHistoryLinearizes(t *testing.T) {
	const n, opsEach = 3, 4
	k := sim.New(n)
	st, err := Build[int64, objtype.CounterOp, int64](Sim(k), objtype.Counter{}, BuildConfig{Elector: elector.Abortable})
	if err != nil {
		t.Fatal(err)
	}
	var history []lincheck.Op[objtype.CounterOp, int64]
	for p := 0; p < n; p++ {
		p := p
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			for i := 0; i < opsEach; i++ {
				invoke := k.Step()
				resp := st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
				history = append(history, lincheck.Op[objtype.CounterOp, int64]{
					Proc: p, Invoke: invoke, Response: k.Step(),
					Arg: objtype.CounterOp{Delta: 1}, Resp: resp,
				})
			}
		})
	}
	if _, err := k.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if len(history) != n*opsEach {
		t.Fatalf("collected %d ops, want %d", len(history), n*opsEach)
	}
	_, ok, err := lincheck.Check[int64](objtype.Counter{}, history, lincheck.Options[int64, int64]{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("abortable-stack counter history is not linearizable:\n%+v", history)
	}
}
