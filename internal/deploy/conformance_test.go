package deploy

import (
	"fmt"
	"testing"

	"tbwf/internal/prim/primtest"
	"tbwf/internal/sim"
)

// The simulation substrate (a kernel behind the register adapter, exactly
// what deploy.Build receives from Sim) passes the prim conformance suite.
// The harness pumps the kernel in slices so tests that finish early do not
// pay for the full budget, and treats an idle kernel whose done condition
// is unmet as a stall.
func TestSimSubstrateConformance(t *testing.T) {
	primtest.Run(t, func(t *testing.T) *primtest.Harness {
		k := sim.New(3)
		return &primtest.Harness{
			Sub: Sim(k),
			Run: func(done func() bool) error {
				for i := 0; i < 100; i++ {
					res, err := k.Run(100_000)
					if err != nil {
						return err
					}
					if done() {
						return nil
					}
					if res.Idle {
						return fmt.Errorf("kernel idle at step %d with work unfinished", res.Steps)
					}
				}
				return fmt.Errorf("step budget exhausted at %d with work unfinished", k.Step())
			},
			Crash: k.Crash,
		}
	})
}
