package deploy_test

import (
	"fmt"
	"sort"

	"tbwf/internal/deploy"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// The complete TBWF stack in a dozen lines: two timely processes share a
// fetch-and-add counter; each completes three operations, and the six
// responses are exactly 0..5 — every increment linearized.
func ExampleBuild() {
	k := sim.New(2)
	st, err := deploy.Build[int64, objtype.CounterOp, int64](deploy.Sim(k), objtype.Counter{}, deploy.BuildConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var responses []int64
	for p := 0; p < 2; p++ {
		p := p
		k.Spawn(p, "client", func(pp prim.Proc) {
			for i := 0; i < 3; i++ {
				responses = append(responses, st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1}))
			}
		})
	}
	if _, err := k.Run(2_000_000); err != nil {
		fmt.Println("error:", err)
		return
	}
	k.Shutdown()

	sort.Slice(responses, func(i, j int) bool { return responses[i] < responses[j] })
	fmt.Println("responses:", responses)
	// Output:
	// responses: [0 1 2 3 4 5]
}
