package deploy

import (
	"fmt"
	"testing"

	"tbwf/internal/core"
	"tbwf/internal/elector"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// spawnCounterClients gives each process a task that performs wanted[p]
// fetch-and-add(1) operations through its TBWF client, recording responses.
func spawnCounterClients(k *sim.Kernel, st *Stack[int64, objtype.CounterOp, int64], wanted []int64) [][]int64 {
	resps := make([][]int64, k.N())
	for p := 0; p < k.N(); p++ {
		p := p
		if wanted[p] == 0 {
			continue
		}
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			for i := int64(0); i < wanted[p]; i++ {
				r := st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
				resps[p] = append(resps[p], r)
			}
		})
	}
	return resps
}

func buildCounterStack(t *testing.T, k *sim.Kernel, cfg BuildConfig) *Stack[int64, objtype.CounterOp, int64] {
	t.Helper()
	st, err := Build[int64, objtype.CounterOp, int64](Sim(k), objtype.Counter{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// checkDistinctResponses asserts the global fetch-and-add responses are
// pairwise distinct (each op observed a unique previous value) — the
// linearizability signal for the counter workload.
func checkDistinctResponses(t *testing.T, resps [][]int64) {
	t.Helper()
	seen := map[int64]bool{}
	for p, rs := range resps {
		for _, r := range rs {
			if seen[r] {
				t.Fatalf("process %d: duplicate fetch-and-add response %d", p, r)
			}
			seen[r] = true
		}
	}
}

// All processes timely (round-robin): the TBWF object is wait-free in this
// run — every client finishes every operation (Section 1.1's limit case).
func TestAllTimelyIsWaitFree(t *testing.T) {
	const n = 4
	k := sim.New(n)
	st := buildCounterStack(t, k, BuildConfig{})
	wanted := []int64{10, 10, 10, 10}
	resps := spawnCounterClients(k, st, wanted)
	if _, err := k.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()

	rep, err := core.Evaluate(sim.Analyze(k.Trace().Schedule(), n), st.CompletedOps(), wanted, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TBWFHolds() {
		t.Fatalf("TBWF violated:\n%s", rep)
	}
	for p, c := range st.CompletedOps() {
		if c != wanted[p] {
			t.Errorf("process %d completed %d/%d ops", p, c, wanted[p])
		}
	}
	checkDistinctResponses(t, resps)
}

// The heart of the paper (E1's single point): with k timely and the rest
// untimely-but-competing, the timely clients must all finish; the untimely
// ones cannot hinder them.
func TestTimelyClientsUnhinderedByUntimelyOnes(t *testing.T) {
	const n = 4
	// Processes 0 and 1 have geometrically growing gaps: correct, always
	// competing, but untimely. 2 and 3 are timely.
	k := sim.New(n, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{
		0: sim.GrowingGaps(500, 1000, 1.5),
		1: sim.GrowingGaps(500, 1500, 1.5),
	})))
	st := buildCounterStack(t, k, BuildConfig{})
	wanted := []int64{1000, 1000, 8, 8} // untimely ones want more than they can get
	resps := spawnCounterClients(k, st, wanted)
	if _, err := k.Run(6_000_000); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()

	for _, p := range []int{2, 3} {
		if got := st.Clients[p].Completed(); got != wanted[p] {
			t.Errorf("timely process %d completed %d/%d ops", p, got, wanted[p])
		}
	}
	checkDistinctResponses(t, resps)

	// The report must classify 2,3 as timely and satisfied; 0,1 as
	// untimely (whatever they managed).
	rep, err := core.Evaluate(sim.Analyze(k.Trace().Schedule(), n), st.CompletedOps(), wanted, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, pp := range rep.Procs {
		switch pp.Proc {
		case 0, 1:
			if pp.Timely {
				t.Errorf("process %d classified timely with bound %d", pp.Proc, pp.Bound)
			}
		case 2, 3:
			if !pp.Timely {
				t.Errorf("process %d classified untimely with bound %d", pp.Proc, pp.Bound)
			}
		}
	}
	if !rep.TBWFHolds() {
		t.Fatalf("TBWF violated:\n%s", rep)
	}
}

// Obstruction-freedom limit case: a client that eventually runs solo
// completes its operations, however slow it is in real time (timeliness is
// relative — a solo process is timely by definition).
func TestSoloSuffixCompletes(t *testing.T) {
	const n = 3
	// After step 200k, only process 2 is scheduled.
	k := sim.New(n, sim.WithSchedule(sim.SoloAfter(sim.RoundRobin(), 2, 200_000)))
	st := buildCounterStack(t, k, BuildConfig{})
	wanted := []int64{0, 0, 5}
	spawnCounterClients(k, st, wanted)
	if _, err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()
	if got := st.Clients[2].Completed(); got != 5 {
		t.Fatalf("solo client completed %d/5 ops", got)
	}
}

// Theorem 15 end to end: the full stack from abortable registers only
// (Ω∆ of Figures 4–6 + the qa construction), strongest abort adversary,
// all processes timely — everyone finishes.
func TestAbortableStackAllTimely(t *testing.T) {
	const n = 3
	k := sim.New(n)
	st := buildCounterStack(t, k, BuildConfig{Elector: elector.Abortable})
	wanted := []int64{5, 5, 5}
	resps := spawnCounterClients(k, st, wanted)
	if _, err := k.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()
	for p, c := range st.CompletedOps() {
		if c != wanted[p] {
			t.Errorf("process %d completed %d/%d ops", p, c, wanted[p])
		}
	}
	checkDistinctResponses(t, resps)
}

// Canonical use is load-bearing (Section 7): without the line 2 wait, a
// greedy timely client monopolizes the object; with it, access is fair.
func TestCanonicalUsePreventsMonopolization(t *testing.T) {
	run := func(nonCanonical bool) []int64 {
		const n = 3
		k := sim.New(n)
		st := buildCounterStack(t, k, BuildConfig{NonCanonical: nonCanonical})
		// Everyone wants effectively unbounded ops; the question is how
		// completions are distributed at the end of the budget.
		wanted := []int64{1 << 30, 1 << 30, 1 << 30}
		spawnCounterClients(k, st, wanted)
		if _, err := k.Run(3_000_000); err != nil {
			t.Fatal(err)
		}
		k.Shutdown()
		return st.CompletedOps()
	}

	canonical := run(false)
	for p, c := range canonical {
		if c == 0 {
			t.Errorf("canonical: process %d starved (0 ops; distribution %v)", p, canonical)
		}
	}

	greedy := run(true)
	// Non-canonical: the paper predicts a monopolizer. Identify the top
	// client and require the others to be (nearly) starved relative to it.
	var maxP int
	var total int64
	for p, c := range greedy {
		total += c
		if c > greedy[maxP] {
			maxP = p
		}
	}
	if total == 0 {
		t.Fatal("non-canonical run made no progress at all")
	}
	if frac := float64(greedy[maxP]) / float64(total); frac < 0.9 {
		t.Errorf("non-canonical: expected monopolization, got distribution %v (top fraction %.2f)", greedy, frac)
	}
}

func TestClientWiringValidation(t *testing.T) {
	if _, err := core.NewClient[int64, objtype.CounterOp, int64](nil, nil); err == nil {
		t.Error("nil wiring accepted")
	}
}

func TestDefaultElectorIsAtomic(t *testing.T) {
	k := sim.New(2)
	defer k.Shutdown()
	st := buildCounterStack(t, k, BuildConfig{})
	if got := st.Elector.Name(); got != "atomic-registers" {
		t.Errorf("default elector %q, want atomic-registers", got)
	}
	if _, ok := st.FaultMatrix(); !ok {
		t.Error("atomic elector reports no fault matrix")
	}
}
