package deploy

import (
	"fmt"
	"testing"

	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// "Any type T" (Theorem 15) includes atomic snapshots: every process
// updates its own component and scans; each scan must be an instantaneous
// view — for single-writer components, per-component monotone and
// cross-component consistent with real time. We check the strongest easy
// consequence: the sequence of views each process observes is monotone in
// every component (no view can go backwards), and a process's own
// component always reflects its latest completed update.
func TestTBWFSnapshotObject(t *testing.T) {
	const n, rounds = 3, 6
	k := sim.New(n, sim.WithSchedule(sim.Random(41, nil)))
	st, err := Build[[]int64, objtype.SnapOp, objtype.SnapResp](Sim(k),
		objtype.Snapshot{Components: n}, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	views := make([][][]int64, n)
	for p := 0; p < n; p++ {
		p := p
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			for i := 1; i <= rounds; i++ {
				st.Clients[p].Invoke(pp, objtype.SnapOp{Update: true, Index: p, V: int64(i)})
				r := st.Clients[p].Invoke(pp, objtype.SnapOp{})
				views[p] = append(views[p], r.View)
				// Own component must reflect the update that just
				// completed before this scan.
				if r.View[p] != int64(i) {
					t.Errorf("process %d scan %d: own component = %d, want %d", p, i, r.View[p], i)
				}
			}
		})
	}
	if _, err := k.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()

	for p := 0; p < n; p++ {
		if len(views[p]) != rounds {
			t.Fatalf("process %d completed %d/%d scans", p, len(views[p]), rounds)
		}
		for i := 1; i < len(views[p]); i++ {
			for c := 0; c < n; c++ {
				if views[p][i][c] < views[p][i-1][c] {
					t.Fatalf("process %d: component %d went backwards between scans %d and %d: %v -> %v",
						p, c, i-1, i, views[p][i-1], views[p][i])
				}
			}
		}
	}
}
