package prim

import "sync"

// The wire-type registry: substrates that serialize register values (the
// net substrate's TCP transport encodes them with gob) need every
// concrete type that crosses a register as `any`. Packages that define
// such types register a zero value from init(); the transport drains the
// registry once at startup. This keeps prim dependency-free while letting
// the concrete-type knowledge live with the types themselves.

var (
	wireMu    sync.Mutex
	wireTypes []any
)

// RegisterWireType records a concrete value type that may cross a
// register on a serializing substrate. Safe to call from init().
func RegisterWireType(v any) {
	wireMu.Lock()
	wireTypes = append(wireTypes, v)
	wireMu.Unlock()
}

// WireTypes returns a snapshot of all registered wire types.
func WireTypes() []any {
	wireMu.Lock()
	defer wireMu.Unlock()
	return append([]any(nil), wireTypes...)
}
