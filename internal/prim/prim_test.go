package prim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestVarZeroValueReady(t *testing.T) {
	var v Var[int]
	if v.Get() != 0 {
		t.Fatal("zero Var should hold the zero value")
	}
	v.Set(42)
	if v.Get() != 42 {
		t.Fatal("Set/Get round trip failed")
	}
}

func TestNewVarInitialValue(t *testing.T) {
	v := NewVar("hello")
	if v.Get() != "hello" {
		t.Fatalf("got %q", v.Get())
	}
}

func TestVarSlice(t *testing.T) {
	s := VarSlice(4, int64(7))
	if len(s) != 4 {
		t.Fatalf("len = %d", len(s))
	}
	for i, v := range s {
		if v.Get() != 7 {
			t.Fatalf("slot %d = %d", i, v.Get())
		}
	}
	s[0].Set(1)
	if s[1].Get() != 7 {
		t.Fatal("VarSlice slots alias each other")
	}
}

func TestVarConcurrentAccess(t *testing.T) {
	v := NewVar(int64(0))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.Set(v.Get() + 0) // reads+writes interleave; race detector is the assertion
			}
		}()
	}
	wg.Wait()
}

func TestVarRoundTripProperty(t *testing.T) {
	v := NewVar(0)
	f := func(x int) bool {
		v.Set(x)
		return v.Get() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExitTaskSentinel(t *testing.T) {
	caught := false
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("ExitTask did not panic")
			}
			if !RecoverTaskExit(r) {
				t.Fatalf("sentinel not recognized: %v", r)
			}
			caught = true
		}()
		ExitTask("test")
	}()
	if !caught {
		t.Fatal("sentinel never recovered")
	}
	if RecoverTaskExit("some other panic") {
		t.Fatal("foreign panic value misidentified as task exit")
	}
	if RecoverTaskExit(nil) {
		t.Fatal("nil misidentified as task exit")
	}
}
