// Package prim defines the substrate-neutral primitives that the paper's
// algorithms are written against.
//
// The same algorithm code (activity monitors, Ω∆, the TBWF universal
// transformation) runs on two substrates:
//
//   - internal/sim — a deterministic, step-sequenced simulation kernel used
//     by tests and benchmarks, where timeliness is controlled and measured
//     exactly as in the paper's model;
//   - internal/rt — a real-time runtime on plain goroutines, used by the
//     runnable examples.
//
// prim holds only what both substrates share: the process handle (Proc),
// register interfaces, intra-process shared variables (Var), and the task
// exit mechanism.
package prim

// Proc is the handle a task holds on its own process.
//
// In the paper's model (Section 3) a process takes discrete steps: invoking a
// register operation, receiving its response, or "just changing state". Step
// charges one state-change step to the process; register operations charge
// their own steps internally. Busy-wait loops such as the paper's
// "while candidate = false do skip" must call Step once per iteration so
// that spinning consumes the process's schedule allocation, exactly as in
// the model.
type Proc interface {
	// ID returns the process identifier, in [0, n).
	ID() int
	// Step consumes one scheduled step. It may not return: if the process
	// has crashed or the run's step budget is exhausted, Step unwinds the
	// task via ExitTask.
	Step()
}

// Spawner starts tasks on a substrate's processes. Both the simulation
// kernel (sim.Kernel) and the real-time runtime (rt.Runtime) implement it,
// so wiring code that assembles the paper's stacks can be written once.
type Spawner interface {
	// Spawn adds a task named name to process proc.
	Spawn(proc int, name string, fn func(p Proc))
}

// Register is an atomic read/write register.
//
// Operations are linearizable. On the simulation substrate each operation
// takes two steps (invocation and response) and linearizes at the response.
type Register[T any] interface {
	// Read returns the register's current value.
	Read() T
	// Write replaces the register's value.
	Write(v T)
}

// AbortableRegister is an abortable register in the sense of Aguilera et al.
// (PODC'07), the only shared-object primitive used in Section 6 of the
// paper. It behaves like an atomic register except that an operation that is
// concurrent with another operation on the same register may abort.
//
// Read reports ok=false when the read aborted (the paper's ⊥); no value is
// conveyed. Write reports false when the write aborted; an aborted write
// may or may not have taken effect, and the writer cannot tell which.
// Non-aborted operations are linearizable.
type AbortableRegister[T any] interface {
	Read() (v T, ok bool)
	Write(v T) (ok bool)
}
