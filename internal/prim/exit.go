package prim

import "fmt"

// taskExit is the sentinel carried by the panic that unwinds a task when its
// process crashes or the run halts. Algorithm code never recovers; only the
// substrate's task wrapper does, via RecoverTaskExit.
type taskExit struct {
	reason string
}

func (e taskExit) String() string {
	return fmt.Sprintf("prim: task exit (%s)", e.reason)
}

// ExitTask unwinds the calling task. The paper's algorithms are infinite
// loops ("repeat forever"); the substrates stop them by making the next
// Step or register operation call ExitTask. The resulting panic carries a
// private sentinel that the substrate's task wrapper recovers with
// RecoverTaskExit, so a task exit is invisible to user code and distinct
// from a genuine panic (which propagates).
func ExitTask(reason string) {
	panic(taskExit{reason: reason})
}

// RecoverTaskExit reports whether r (a value returned by recover) is the
// task-exit sentinel. Substrate task wrappers call it in a deferred
// function:
//
//	defer func() {
//		if r := recover(); r != nil && !prim.RecoverTaskExit(r) {
//			panic(r) // a real bug; re-raise
//		}
//	}()
func RecoverTaskExit(r any) bool {
	_, ok := r.(taskExit)
	return ok
}
