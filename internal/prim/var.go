package prim

import "sync"

// Var is a local variable shared between the tasks of a single process.
//
// The paper's algorithms communicate between a process's concurrent
// activities through local variables: Ω∆ reads the input variable candidate_p
// and writes the output variable leader_p, the activity monitor A(p,q) reads
// monitoring_p[q] and writes status_p[q] and faultCntr_p[q] (Figure 1).
// These are process-local — they are never shared across processes — but on
// the real-time substrate the tasks of one process are separate goroutines,
// so access must still be synchronized.
//
// The zero value of Var[T] is ready to use and holds the zero value of T.
type Var[T any] struct {
	mu sync.RWMutex
	v  T
}

// NewVar returns a Var initialized to v.
func NewVar[T any](v T) *Var[T] {
	return &Var[T]{v: v}
}

// Get returns the current value.
func (x *Var[T]) Get() T {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.v
}

// Set replaces the current value.
func (x *Var[T]) Set(v T) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.v = v
}

// VarSlice returns a slice of n freshly allocated Vars, each initialized
// to v. It is a convenience for the paper's per-peer variable vectors such
// as monitoring_p[q] and active-for_q[p].
func VarSlice[T any](n int, v T) []*Var[T] {
	s := make([]*Var[T], n)
	for i := range s {
		s[i] = NewVar(v)
	}
	return s
}
