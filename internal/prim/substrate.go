package prim

// This file defines the substrate-neutral deployment surface: the policy
// and option vocabulary shared by every register implementation, and the
// Substrate interface that lets one composition root (internal/deploy)
// wire the paper's stacks on either the simulation kernel or the
// real-time runtime.
//
// Register factories on Substrate are type-erased (Register[any]) because
// Go interfaces cannot carry generic methods. Algorithm code never sees
// the erasure: it goes through the typed adapters NewRegister /
// NewAbortable below, or through the typed fast paths in
// internal/register, which hand back the substrate's concrete register
// types whenever the substrate exposes them.

// Stats counts the operations performed on one register.
type Stats struct {
	Reads       int64
	Writes      int64
	ReadAborts  int64
	WriteAborts int64
}

// Op describes one register operation for policy decisions.
type Op struct {
	// Register is the register's name.
	Register string
	// Proc is the invoking process (-1 when the substrate cannot tell,
	// as on the real-time runtime where any goroutine may call in).
	Proc int
	// IsWrite distinguishes writes from reads.
	IsWrite bool
	// Step is the step at which the operation completes. On the
	// simulation kernel this is the global step counter; on the real-time
	// runtime it is the register's own operation sequence number.
	Step int64
}

// AbortPolicy decides whether a contended operation on an abortable
// register aborts. It is consulted only for operations that actually
// overlapped another operation on the same register; non-contended
// operations never abort.
type AbortPolicy interface {
	Abort(op Op) bool
}

// EffectPolicy decides whether an aborted write takes effect. The paper:
// "a write operation that aborts may or may not take effect and, since the
// writer gets back ⊥ in either case, it does not know whether its write
// operation succeeded or not."
type EffectPolicy interface {
	TakesEffect(op Op) bool
}

// AbortPolicyFunc adapts a function to AbortPolicy.
type AbortPolicyFunc func(op Op) bool

// Abort implements AbortPolicy.
func (f AbortPolicyFunc) Abort(op Op) bool { return f(op) }

// EffectPolicyFunc adapts a function to EffectPolicy.
type EffectPolicyFunc func(op Op) bool

// TakesEffect implements EffectPolicy.
func (f EffectPolicyFunc) TakesEffect(op Op) bool { return f(op) }

// AlwaysAbort aborts every contended operation: the strongest adversary and
// the default.
func AlwaysAbort() AbortPolicy {
	return AbortPolicyFunc(func(Op) bool { return true })
}

// NeverAbort never aborts; the abortable register then behaves atomically.
// Useful as a sanity baseline in tests.
func NeverAbort() AbortPolicy {
	return AbortPolicyFunc(func(Op) bool { return false })
}

// AbortWrites aborts only contended writes; contended reads succeed.
// An ablation policy for tests.
func AbortWrites() AbortPolicy {
	return AbortPolicyFunc(func(op Op) bool { return op.IsWrite })
}

// NoEffect makes aborted writes never take effect (default).
func NoEffect() EffectPolicy {
	return EffectPolicyFunc(func(Op) bool { return false })
}

// AlwaysEffect makes aborted writes always take effect.
func AlwaysEffect() EffectPolicy {
	return EffectPolicyFunc(func(Op) bool { return true })
}

// AbOption configures an abortable register.
type AbOption struct {
	abort  AbortPolicy
	effect EffectPolicy
	writer int
	reader int
	set    uint8
}

const (
	setAbort uint8 = 1 << iota
	setEffect
	setRoles
)

// WithAbortPolicy overrides the abort policy (default AlwaysAbort).
func WithAbortPolicy(p AbortPolicy) AbOption { return AbOption{abort: p, set: setAbort} }

// WithEffectPolicy overrides the effect policy for aborted writes
// (default NoEffect).
func WithEffectPolicy(p EffectPolicy) AbOption { return AbOption{effect: p, set: setEffect} }

// WithRoles restricts the register to one writer and one reader process
// (single-writer single-reader), as in Section 6. The simulation substrate
// enforces roles (a wrong-process access panics); the real-time substrate
// records them for telemetry without enforcement, since its registers
// cannot attribute an operation to a process.
func WithRoles(writer, reader int) AbOption {
	return AbOption{writer: writer, reader: reader, set: setRoles}
}

// AbConfig is the resolved form of a register's options: what every
// substrate's abortable register implementation consumes.
type AbConfig struct {
	Abort  AbortPolicy
	Effect EffectPolicy
	// Writer and Reader are the SWSR roles; -1 means unrestricted.
	Writer, Reader int
}

// ApplyAbOptions folds options over the defaults (AlwaysAbort, NoEffect,
// unrestricted roles) in order.
func ApplyAbOptions(opts ...AbOption) AbConfig {
	cfg := AbConfig{Abort: AlwaysAbort(), Effect: NoEffect(), Writer: -1, Reader: -1}
	for _, o := range opts {
		if o.set&setAbort != 0 {
			cfg.Abort = o.abort
		}
		if o.set&setEffect != 0 {
			cfg.Effect = o.effect
		}
		if o.set&setRoles != 0 {
			cfg.Writer, cfg.Reader = o.writer, o.reader
		}
	}
	return cfg
}

// Substrate is a place the paper's stacks can be deployed on: it spawns
// tasks onto processes and manufactures the two shared-register flavors.
// Both sim.Kernel (via register.Substrate / deploy.Sim) and rt.Runtime
// implement it, so the composition root in internal/deploy is written
// once.
type Substrate interface {
	Spawner
	// N returns the number of processes.
	N() int
	// SubstrateName identifies the substrate ("sim", "rt") for telemetry.
	SubstrateName() string
	// NewRegisterAny creates a named atomic register holding values of
	// init's dynamic type. Use the typed adapter NewRegister, or the
	// typed fast paths in internal/register, rather than calling this
	// directly.
	NewRegisterAny(name string, init any) Register[any]
	// NewAbortableAny creates a named abortable register. Same erasure
	// caveat as NewRegisterAny; use NewAbortable.
	NewAbortableAny(name string, init any, opts ...AbOption) AbortableRegister[any]
}

// NewRegister creates a typed atomic register on the substrate. The
// returned register forwards Name and Stats from the substrate's
// implementation when it has them.
func NewRegister[T any](s Substrate, name string, init T) Register[T] {
	return typedRegister[T]{inner: s.NewRegisterAny(name, init)}
}

// NewAbortable creates a typed abortable register on the substrate.
func NewAbortable[T any](s Substrate, name string, init T, opts ...AbOption) AbortableRegister[T] {
	return typedAbortable[T]{inner: s.NewAbortableAny(name, init, opts...)}
}

type typedRegister[T any] struct{ inner Register[any] }

func (r typedRegister[T]) Read() T      { return r.inner.Read().(T) }
func (r typedRegister[T]) Write(v T)    { r.inner.Write(v) }
func (r typedRegister[T]) Name() string { return RegisterName(r.inner) }
func (r typedRegister[T]) Stats() Stats {
	s, _ := RegisterStats(r.inner)
	return s
}

type typedAbortable[T any] struct{ inner AbortableRegister[any] }

func (r typedAbortable[T]) Read() (T, bool) {
	v, ok := r.inner.Read()
	if !ok {
		var zero T
		return zero, false
	}
	return v.(T), true
}
func (r typedAbortable[T]) Write(v T) bool { return r.inner.Write(v) }
func (r typedAbortable[T]) Name() string   { return RegisterName(r.inner) }
func (r typedAbortable[T]) Stats() Stats {
	s, _ := RegisterStats(r.inner)
	return s
}

// RegisterName returns a register's name if its implementation exposes
// one, else "".
func RegisterName(r any) string {
	if n, ok := r.(interface{ Name() string }); ok {
		return n.Name()
	}
	return ""
}

// RegisterStats returns a register's operation counters if its
// implementation exposes them.
func RegisterStats(r any) (Stats, bool) {
	if s, ok := r.(interface{ Stats() Stats }); ok {
		return s.Stats(), true
	}
	return Stats{}, false
}
